// Command nntsp explores nearest-neighbour TSP tours on tree metrics — the
// combinatorial quantity behind the paper's queuing upper bound
// (Theorem 4.1, Lemmas 4.3–4.10).
//
// Usage:
//
//	nntsp -tree list -n 256 -density 0.5 -trials 20
//	nntsp -tree binary -levels 8
//	nntsp -tree mary -m 3 -levels 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bounds"
	"repro/internal/nntsp"
	"repro/internal/tree"
)

func main() {
	treeKind := flag.String("tree", "list", "tree type: list|binary|mary")
	n := flag.Int("n", 256, "list length (tree=list)")
	levels := flag.Int("levels", 8, "tree levels (tree=binary|mary)")
	m := flag.Int("m", 3, "arity (tree=mary)")
	density := flag.Float64("density", 0.5, "request density")
	trials := flag.Int("trials", 20, "number of random trials")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	var tr *tree.Tree
	switch *treeKind {
	case "list":
		order := make([]int, *n)
		for i := range order {
			order[i] = i
		}
		var err error
		tr, err = tree.PathTree(order)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nntsp:", err)
			os.Exit(1)
		}
	case "binary":
		tr = tree.Perfect(2, *levels)
	case "mary":
		tr = tree.Perfect(*m, *levels)
	default:
		fmt.Fprintf(os.Stderr, "nntsp: unknown tree %q\n", *treeKind)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	size := tr.N()
	fmt.Printf("tree=%s n=%d height=%d maxdeg=%d\n", *treeKind, size, tr.Height(), tr.MaxDegree())
	maxCost, maxRatio := 0, 0.0
	for trial := 0; trial < *trials; trial++ {
		var reqs []int
		for v := 0; v < size; v++ {
			if rng.Float64() < *density {
				reqs = append(reqs, v)
			}
		}
		if len(reqs) == 0 {
			continue
		}
		start := tr.Root()
		tour, err := nntsp.Greedy(tr, reqs, start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nntsp:", err)
			os.Exit(1)
		}
		steiner := nntsp.SteinerEdges(tr, reqs, start)
		ratio := 0.0
		if steiner > 0 {
			ratio = float64(tour.Cost) / float64(steiner)
		}
		if tour.Cost > maxCost {
			maxCost = tour.Cost
		}
		if ratio > maxRatio {
			maxRatio = ratio
		}
		fmt.Printf("trial %2d: |R|=%4d cost=%5d steiner=%5d cost/steiner=%.2f\n",
			trial, len(reqs), tour.Cost, steiner, ratio)
		if *treeKind == "list" {
			rd := nntsp.DecomposeListTour(tour.Order, start)
			if err := rd.CheckLemma44(); err != nil {
				fmt.Fprintln(os.Stderr, "nntsp: run inequality violated:", err)
				os.Exit(1)
			}
		}
		if *treeKind == "binary" {
			if err := nntsp.CheckLemma49(tr, tour); err != nil {
				fmt.Fprintln(os.Stderr, "nntsp: depth budget violated:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("max cost %d over %d trials (cost/n = %.2f, worst cost/steiner = %.2f)\n",
		maxCost, *trials, float64(maxCost)/float64(size), maxRatio)
	switch *treeKind {
	case "list":
		fmt.Printf("Lemma 4.3 bound 3n = %d — %v\n", bounds.QueuingUpperBoundList(size), maxCost <= 3*size)
	case "binary":
		b := bounds.QueuingUpperBoundPerfectBinary(size, tr.Height())
		fmt.Printf("Theorem 4.7 budget 2d(d+1)+8n = %d — %v\n", b, maxCost <= b)
	}
}
