package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/countq"
)

// compareCampaignCmd runs a campaign: the positional structure specs under
// one scenario's byte-identical phase sequence and a shared seed, printing
// per-phase metrics plus delta ratios against the baseline spec.
func compareCampaignCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	scenario := fs.String("scenario", "", "scenario spec, composable with ';' (e.g. 'ramp?gmax=8;spike'); empty for one steady phase")
	queue := fs.String("queue", "", "queue spec paired with every counter spec (mixed workloads); empty compares pure counting")
	queues := fs.Bool("queues", false, "treat the positional specs as queue specs (pure queuing comparison)")
	baseline := fs.String("baseline", "", "the spec deltas are computed against (default: the first spec)")
	g := fs.Int("g", 0, "goroutines (0 = GOMAXPROCS); scenarios treat this as the contention ceiling")
	ops := fs.Int("ops", 1<<17, "total operation budget per structure (scenarios split it across phases)")
	dur := fs.Duration("dur", 0, "run each structure for a duration instead of an ops budget")
	mix := fs.Float64("mix", 0.5, "fraction of operations that count when -queue is set (the rest enqueue)")
	batch := fs.Int("batch", 0, "issue counter ops as IncN block grants of this size (requires BatchIncrementer counters)")
	sample := fs.Int("sample", 0, "time every Kth operation for per-op latency (0 = default 64)")
	arrival := fs.String("arrival", "closed", "arrival pattern: closed|uniform|bursty")
	seed := fs.Int64("seed", 1, "workload seed, shared by every structure (identical op and arrival schedules)")
	asCSV := fs.Bool("csv", false, "emit the comparison as CSV")
	asMD := fs.Bool("md", false, "emit the comparison as a Markdown table")
	asJSON := fs.Bool("json", false, "emit the full Comparison as JSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: countq compare [flags] <spec> <spec> ...")
		fmt.Fprintln(os.Stderr, "runs every spec under the same phase sequence and seed; Δ columns are")
		fmt.Fprintln(os.Stderr, "this-structure / baseline ratios (Δns/op and Δp99 below 1 are faster,")
		fmt.Fprintln(os.Stderr, "Δtput above 1 is higher throughput).")
		fmt.Fprintln(os.Stderr, "")
		fmt.Fprintln(os.Stderr, "The fair column is min/max per-worker ops (1 = perfectly fair service).")
		fmt.Fprintln(os.Stderr, "On a single-core host (GOMAXPROCS=1) closed-loop phases legitimately")
		fmt.Fprintln(os.Stderr, "report fairness ≈ 0 — one worker drains the shared op pool per")
		fmt.Fprintln(os.Stderr, "timeslice, which is the scheduler's doing, not the structure's. Compare")
		fmt.Fprintln(os.Stderr, "fairness across structures only when GOMAXPROCS > 1 (e.g. run with")
		fmt.Fprintln(os.Stderr, "GOMAXPROCS=8) and read single-core values as 'not meaningful'.")
		fmt.Fprintln(os.Stderr, "")
		fmt.Fprintln(os.Stderr, "flags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	specs := fs.Args()
	if len(specs) < 2 {
		fmt.Fprintln(os.Stderr, "countq compare: need at least two structure specs to compare")
		fs.Usage()
		os.Exit(2)
	}
	arr, err := countq.ParseArrival(*arrival)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq compare:", err)
		os.Exit(2)
	}
	if *queues && *queue != "" {
		fmt.Fprintln(os.Stderr, "countq compare: -queues (positional queue specs) and -queue (shared queue) are mutually exclusive")
		os.Exit(2)
	}
	c := countq.Campaign{
		Base: countq.Workload{
			Scenario:      *scenario,
			Goroutines:    *g,
			Ops:           *ops,
			Batch:         *batch,
			LatencySample: *sample,
			Arrival:       arr,
			Seed:          *seed,
		},
	}
	if *dur > 0 {
		c.Base.Duration = *dur // replaces the ops budget
	}
	if *queue != "" {
		c.Base.Mix = *mix
	}
	baselineIdx := -1
	for i, spec := range specs {
		e := countq.Entry{Counter: spec, Queue: *queue}
		if *queues {
			e = countq.Entry{Queue: spec}
		}
		if *baseline != "" && (spec == *baseline || e.Label() == *baseline) {
			baselineIdx = i
		}
		c.Entries = append(c.Entries, e)
	}
	switch {
	case baselineIdx >= 0:
		c.Baseline = baselineIdx
	case *baseline != "":
		fmt.Fprintf(os.Stderr, "countq compare: -baseline %q is not among the compared specs %v\n", *baseline, specs)
		os.Exit(2)
	}
	cmp, err := c.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq compare:", err)
		os.Exit(1)
	}
	switch {
	case *asJSON:
		printJSON(cmp)
	case *asCSV:
		out, err := cmp.MarshalCSV()
		if err != nil {
			fmt.Fprintln(os.Stderr, "countq compare:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
	case *asMD:
		out, err := cmp.MarshalMarkdown()
		if err != nil {
			fmt.Fprintln(os.Stderr, "countq compare:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
	default:
		printComparison(os.Stdout, cmp)
	}
}

// printComparison renders the campaign's human-readable per-phase delta
// table: every structure under the identical phase sequence, with ratio
// columns against the baseline.
func printComparison(w io.Writer, cmp *countq.Comparison) {
	scenario := cmp.Scenario
	if scenario == "" {
		scenario = "steady"
	}
	fmt.Fprintf(w, "campaign scenario=%s goroutines=%d seed=%d baseline=%s\n",
		scenario, cmp.Goroutines, cmp.Seed, cmp.Baseline)
	fmt.Fprintf(w, "%-28s %-12s %8s %9s %8s %8s %8s %5s  %7s %7s %7s\n",
		"structure", "phase", "ops", "ns/op", "Mops/s", "p50", "p99", "fair", "Δns/op", "Δp99", "Δtput")
	cell := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", v)
	}
	row := func(label, phase string, ops int, nsPerOp, opsPerSec float64, cl, ql *countq.LatencyStats, fair float64, d countq.Delta) {
		lat := cl
		if lat == nil {
			lat = ql
		}
		p50, p99 := "-", "-"
		if lat != nil {
			p50, p99 = fmt.Sprintf("%.0f", lat.P50Ns), fmt.Sprintf("%.0f", lat.P99Ns)
		}
		fmt.Fprintf(w, "%-28s %-12s %8d %9.1f %8.2f %8s %8s %5.2f  %7s %7s %7s\n",
			label, phase, ops, nsPerOp, opsPerSec/1e6, p50, p99, fair,
			cell(d.NsPerOpRatio), cell(d.P99Ratio), cell(d.ThroughputRatio))
	}
	hasWarmup := false
	for i := range cmp.Results {
		r := &cmp.Results[i]
		label := r.Label
		if r.Baseline {
			label += "*"
		}
		for j := range r.Metrics.Phases {
			p := &r.Metrics.Phases[j]
			name := p.Name
			if p.Warmup {
				name += "~"
				hasWarmup = true
			}
			row(label, name, p.Ops, p.NsPerOp(), p.OpsPerSec(), p.CounterLat, p.QueueLat, p.Fairness, r.PhaseDeltas[j])
		}
		a := &r.Metrics.Aggregate
		row(label, "aggregate", a.Ops, a.NsPerOp(), a.OpsPerSec(), a.CounterLat, a.QueueLat, a.Fairness, r.AggregateDelta)
	}
	notes := []string{"(*) baseline structure; Δ columns are this/baseline ratios"}
	if hasWarmup {
		notes = append(notes, "(~) warmup phase, excluded from the aggregate")
	}
	fmt.Fprintln(w, strings.Join(notes, "; "))
	fmt.Fprintln(w, "every structure validated independently: counts distinct and gap-free, predecessors one total order")
	fmt.Fprintln(w, "fairness is min/max worker ops; ≈ 0 on a single-core host is the scheduler, not the structure (see compare -h)")
}
