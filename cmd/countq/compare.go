package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/countq"
)

// parseInterleaved parses args with fs, allowing flags and positional
// arguments in any order ("countq compare SPEC -scenario ramp" works like
// "countq compare -scenario ramp SPEC"): the standard flag package stops
// at the first positional, so each stop collects it and parsing resumes.
func parseInterleaved(fs *flag.FlagSet, args []string) ([]string, error) {
	var positional []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		rest := fs.Args()
		if len(rest) == 0 {
			return positional, nil
		}
		positional = append(positional, rest[0])
		args = rest[1:]
	}
}

// parseEntry turns one positional compare argument into a campaign entry:
// a structure spec, optionally followed by '@'-separated per-entry
// overrides ("sharded?shards=8@batch=64@g=4"). Overrides declare
// asymmetric comparisons — batched vs unbatched, pipelined vs synchronous
// — at equal op budgets; batch=1 forces the single-Inc path even when the
// campaign base batches.
//
// A spec naming a queue-only structure becomes a pure queue entry even
// without -queues, so cross-kind campaigns read naturally:
// `countq compare "sim-counter,sim-arrow-queue,sim-tree-counter"` prices
// counting against queuing under one phase sequence — the paper's
// separation as one command.
func parseEntry(arg, sharedQueue string, asQueue bool) (countq.Entry, error) {
	parts := strings.Split(arg, "@")
	e := countq.Entry{Counter: parts[0], Queue: sharedQueue}
	if asQueue {
		e = countq.Entry{Queue: parts[0]}
	} else if sharedQueue == "" {
		name, _, _ := strings.Cut(parts[0], "?")
		_, isCounter := countq.LookupStructure(name, countq.KindCounter)
		_, isQueue := countq.LookupStructure(name, countq.KindQueue)
		if isQueue && !isCounter {
			e = countq.Entry{Queue: parts[0]}
		}
	}
	for _, ov := range parts[1:] {
		k, v, ok := strings.Cut(ov, "=")
		if !ok || v == "" {
			return countq.Entry{}, fmt.Errorf("malformed per-entry override %q (want g=N, batch=N or inflight=N)", ov)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return countq.Entry{}, fmt.Errorf("per-entry override %q is not a positive integer", ov)
		}
		switch k {
		case "g":
			e.Goroutines = n
		case "batch":
			e.Batch = n
		case "inflight":
			e.Inflight = n
		default:
			return countq.Entry{}, fmt.Errorf("unknown per-entry override %q (g|batch|inflight)", k)
		}
	}
	return e, nil
}

// compareCampaignCmd runs a campaign: the positional structure specs under
// one scenario's byte-identical phase sequence and a shared seed, printing
// per-phase metrics plus delta ratios against the baseline spec. Specs are
// given as separate arguments or comma-separated in one
// ("sharded?shards=8,sim-counter?hoplat=1us"); flags may follow them.
// -sweep fans one base spec into entries instead.
func compareCampaignCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	scenario := fs.String("scenario", "", "scenario spec, composable with ';' (e.g. 'ramp?gmax=8;spike'); empty for one steady phase")
	queue := fs.String("queue", "", "queue spec paired with every counter spec (mixed workloads); empty compares pure counting")
	queues := fs.Bool("queues", false, "treat the positional specs as queue specs (pure queuing comparison)")
	baseline := fs.String("baseline", "", "the spec deltas are computed against (default: the first spec)")
	sweep := fs.String("sweep", "", "fan ONE base spec into campaign entries varying a param: 'param=v1,v2,...' (baseline: the first value)")
	g := fs.Int("g", 0, "goroutines (0 = GOMAXPROCS); scenarios treat this as the contention ceiling")
	ops := fs.Int("ops", 1<<17, "total operation budget per structure (scenarios split it across phases)")
	dur := fs.Duration("dur", 0, "run each structure for a duration instead of an ops budget")
	mix := fs.Float64("mix", 0.5, "fraction of operations that count when -queue is set (the rest enqueue)")
	batch := fs.Int("batch", 0, "issue counter ops as IncN block grants of this size (requires the batch capability)")
	inflight := fs.Int("inflight", 0, "keep this many ops outstanding per worker (requires the async capability; 0/1 = synchronous)")
	sample := fs.Int("sample", 0, "time every Kth operation for per-op latency (0 = default 64)")
	arrival := fs.String("arrival", "closed", "arrival pattern: closed|uniform|bursty|fairshare")
	seed := fs.Int64("seed", 1, "workload seed, shared by every structure (identical op and arrival schedules)")
	asCSV := fs.Bool("csv", false, "emit the comparison as CSV")
	asMD := fs.Bool("md", false, "emit the comparison as a Markdown table")
	asJSON := fs.Bool("json", false, "emit the full Comparison as JSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: countq compare [flags] <spec>[@g=N][@batch=N][@inflight=N] <spec> ...")
		fmt.Fprintln(os.Stderr, "specs may also be comma-separated in one argument, and flags may follow them.")
		fmt.Fprintln(os.Stderr, "runs every spec under the same phase sequence and seed; Δ columns are")
		fmt.Fprintln(os.Stderr, "this-structure / baseline ratios (Δns/op and Δp99 below 1 are faster,")
		fmt.Fprintln(os.Stderr, "Δtput above 1 is higher throughput). '@' overrides declare per-entry")
		fmt.Fprintln(os.Stderr, "asymmetries (batched vs unbatched, pipelined vs sync) at equal budgets;")
		fmt.Fprintln(os.Stderr, "-sweep fans one base spec over a parameter list instead.")
		fmt.Fprintln(os.Stderr, "")
		fmt.Fprintln(os.Stderr, "cp50/cp99 are coordinated-omission-corrected quantiles: completion time")
		fmt.Fprintln(os.Stderr, "against the intended start of the arrival schedule, recorded under open")
		fmt.Fprintln(os.Stderr, "arrivals (uniform|bursty) and -inflight pipelining; '-' for plain closed")
		fmt.Fprintln(os.Stderr, "loops, where they would equal the service-time quantiles.")
		fmt.Fprintln(os.Stderr, "")
		fmt.Fprintln(os.Stderr, "allocs/op is heap allocations per operation, measured over the whole")
		fmt.Fprintln(os.Stderr, "phase via runtime GC counters; the driver preallocates its own state")
		fmt.Fprintln(os.Stderr, "before each phase's start barrier, so the number is the structure's")
		fmt.Fprintln(os.Stderr, "allocation cost, and allocation-free structures report 0.00. Δalloc is")
		fmt.Fprintln(os.Stderr, "this/baseline; '-' when either side allocates nothing. -csv adds")
		fmt.Fprintln(os.Stderr, "alloc_bytes_per_op and live_peak_bytes (peak sampled live heap).")
		fmt.Fprintln(os.Stderr, "")
		fmt.Fprintln(os.Stderr, "The fair column is min/max per-worker ops (1 = perfectly fair service).")
		fmt.Fprintln(os.Stderr, "On a single-core host (GOMAXPROCS=1) closed-loop phases legitimately")
		fmt.Fprintln(os.Stderr, "report fairness ≈ 0 — one worker drains the shared op pool per")
		fmt.Fprintln(os.Stderr, "timeslice, which is the scheduler's doing, not the structure's. Compare")
		fmt.Fprintln(os.Stderr, "fairness across structures only when GOMAXPROCS > 1 (e.g. run with")
		fmt.Fprintln(os.Stderr, "GOMAXPROCS=8), or use -arrival fairshare, whose rotating per-worker")
		fmt.Fprintln(os.Stderr, "grant makes the number scheduler-independent on any host.")
		fmt.Fprintln(os.Stderr, "")
		fmt.Fprintln(os.Stderr, "flags:")
		fs.PrintDefaults()
	}
	positional, err := parseInterleaved(fs, args)
	if err != nil {
		os.Exit(2) // unreachable with ExitOnError; kept for other policies
	}
	arr, err := countq.ParseArrival(*arrival)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq compare:", err)
		os.Exit(2)
	}
	if *queues && *queue != "" {
		fmt.Fprintln(os.Stderr, "countq compare: -queues (positional queue specs) and -queue (shared queue) are mutually exclusive")
		os.Exit(2)
	}
	// Expand comma-separated spec lists, then '@' overrides.
	var specArgs []string
	for _, arg := range positional {
		for _, part := range strings.Split(arg, ",") {
			if part == "" {
				fmt.Fprintf(os.Stderr, "countq compare: empty spec in %q\n", arg)
				os.Exit(2)
			}
			specArgs = append(specArgs, part)
		}
	}
	if *sweep != "" {
		if len(specArgs) != 1 {
			fmt.Fprintf(os.Stderr, "countq compare: -sweep fans one base spec into entries; got %d specs %v\n", len(specArgs), specArgs)
			os.Exit(2)
		}
		if err := checkSweepShadow(*sweep, *scenario); err != nil {
			fmt.Fprintln(os.Stderr, "countq compare:", err)
			os.Exit(2)
		}
		base, overrides, _ := strings.Cut(specArgs[0], "@")
		swept, err := sweepSpecs(base, *sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "countq compare:", err)
			os.Exit(2)
		}
		specArgs = specArgs[:0]
		for _, s := range swept {
			if overrides != "" {
				s += "@" + overrides
			}
			specArgs = append(specArgs, s)
		}
	}
	if len(specArgs) < 2 {
		fmt.Fprintln(os.Stderr, "countq compare: need at least two structure specs to compare")
		fs.Usage()
		os.Exit(2)
	}
	c := countq.Campaign{
		Base: countq.Workload{
			Scenario:      *scenario,
			Goroutines:    *g,
			Ops:           *ops,
			Batch:         *batch,
			Inflight:      *inflight,
			LatencySample: *sample,
			Arrival:       arr,
			Seed:          *seed,
		},
	}
	if *dur > 0 {
		c.Base.Duration = *dur // replaces the ops budget
	}
	if *queue != "" {
		c.Base.Mix = *mix
	}
	baselineIdx := -1
	for i, arg := range specArgs {
		e, err := parseEntry(arg, *queue, *queues)
		if err != nil {
			fmt.Fprintln(os.Stderr, "countq compare:", err)
			os.Exit(2)
		}
		if *baseline != "" && (arg == *baseline || e.Label() == *baseline) {
			baselineIdx = i
		}
		c.Entries = append(c.Entries, e)
	}
	switch {
	case baselineIdx >= 0:
		c.Baseline = baselineIdx
	case *baseline != "":
		fmt.Fprintf(os.Stderr, "countq compare: -baseline %q is not among the compared specs %v\n", *baseline, specArgs)
		os.Exit(2)
	}
	cmp, err := c.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq compare:", err)
		os.Exit(1)
	}
	switch {
	case *asJSON:
		printJSON(cmp)
	case *asCSV:
		out, err := cmp.MarshalCSV()
		if err != nil {
			fmt.Fprintln(os.Stderr, "countq compare:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
	case *asMD:
		out, err := cmp.MarshalMarkdown()
		if err != nil {
			fmt.Fprintln(os.Stderr, "countq compare:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
	default:
		printComparison(os.Stdout, cmp)
	}
}

// printComparison renders the campaign's human-readable per-phase delta
// table: every structure under the identical phase sequence, with
// corrected-latency columns and ratio columns against the baseline.
func printComparison(w io.Writer, cmp *countq.Comparison) {
	scenario := cmp.Scenario
	if scenario == "" {
		scenario = "steady"
	}
	fmt.Fprintf(w, "campaign scenario=%s goroutines=%d seed=%d baseline=%s\n",
		scenario, cmp.Goroutines, cmp.Seed, cmp.Baseline)
	fmt.Fprintf(w, "%-28s %-12s %8s %9s %8s %8s %8s %8s %8s %5s %9s  %7s %7s %7s %7s\n",
		"structure", "phase", "ops", "ns/op", "Mops/s", "p50", "p99", "cp50", "cp99", "fair", "allocs/op", "Δns/op", "Δp99", "Δtput", "Δalloc")
	cell := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", v)
	}
	latPair := func(c, q *countq.LatencyStats) (string, string) {
		lat := countq.PickLatency(c, q)
		if lat == nil {
			return "-", "-"
		}
		return fmt.Sprintf("%.0f", lat.P50Ns), fmt.Sprintf("%.0f", lat.P99Ns)
	}
	row := func(label, phase string, ops int, nsPerOp, opsPerSec float64, cl, ql, cc, qc *countq.LatencyStats, fair, allocs float64, d countq.Delta) {
		p50, p99 := latPair(cl, ql)
		cp50, cp99 := latPair(cc, qc)
		fmt.Fprintf(w, "%-28s %-12s %8d %9.1f %8.2f %8s %8s %8s %8s %5.2f %9.2f  %7s %7s %7s %7s\n",
			label, phase, ops, nsPerOp, opsPerSec/1e6, p50, p99, cp50, cp99, fair, allocs,
			cell(d.NsPerOpRatio), cell(d.P99Ratio), cell(d.ThroughputRatio), cell(d.AllocsRatio))
	}
	hasWarmup := false
	for i := range cmp.Results {
		r := &cmp.Results[i]
		label := r.Label
		if r.Baseline {
			label += "*"
		}
		for j := range r.Metrics.Phases {
			p := &r.Metrics.Phases[j]
			name := p.Name
			if p.Warmup {
				name += "~"
				hasWarmup = true
			}
			row(label, name, p.Ops, p.NsPerOp(), p.OpsPerSec(), p.CounterLat, p.QueueLat, p.CounterCorr, p.QueueCorr, p.Fairness, p.AllocsPerOp, r.PhaseDeltas[j])
		}
		a := &r.Metrics.Aggregate
		row(label, "aggregate", a.Ops, a.NsPerOp(), a.OpsPerSec(), a.CounterLat, a.QueueLat, a.CounterCorr, a.QueueCorr, a.Fairness, a.AllocsPerOp, r.AggregateDelta)
	}
	notes := []string{"(*) baseline structure; Δ columns are this/baseline ratios"}
	if hasWarmup {
		notes = append(notes, "(~) warmup phase, excluded from the aggregate")
	}
	fmt.Fprintln(w, strings.Join(notes, "; "))
	fmt.Fprintln(w, "cp50/cp99 are coordinated-omission-corrected quantiles (completion vs intended start); '-' for plain closed loops")
	fmt.Fprintln(w, "allocs/op is heap allocations per operation (workers preallocate, so allocation-free structures report 0.00; Δalloc '-' when either side is 0)")
	fmt.Fprintln(w, "every structure validated independently: counts distinct and gap-free, predecessors one total order")
	fmt.Fprintln(w, "fairness is min/max worker ops; ≈ 0 on a single-core host is the scheduler, not the structure (see compare -h)")
}
