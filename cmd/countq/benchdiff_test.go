package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/countq"
)

// mkBenchFile writes a benchjson file with one campaign of hand-built
// aggregates, returning its path. opsPerSec is encoded via Ops/Elapsed.
func mkBenchFile(t *testing.T, name string, points map[string]struct{ p99, opsPerSec, allocs float64 }) string {
	t.Helper()
	cmp := &countq.Comparison{Name: "camp", Baseline: "a"}
	for label, pt := range points {
		elapsed := time.Second
		ops := int(pt.opsPerSec)
		cmp.Results = append(cmp.Results, countq.StructureResult{
			Label: label,
			Metrics: &countq.Metrics{
				Counter: label,
				Aggregate: countq.Aggregate{
					Ops:         ops,
					Elapsed:     elapsed,
					CounterLat:  &countq.LatencyStats{Samples: 1, P99Ns: pt.p99},
					AllocsPerOp: pt.allocs,
				},
			},
		})
	}
	f := benchFile{GoMaxProcs: 1, Ops: 1000, Comparisons: []*countq.Comparison{cmp}}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchdiffDetectsRegressions(t *testing.T) {
	type pt = struct{ p99, opsPerSec, allocs float64 }
	old := mkBenchFile(t, "old.json", map[string]pt{
		"a": {p99: 100, opsPerSec: 1000},
		"b": {p99: 100, opsPerSec: 1000},
		"c": {p99: 100, opsPerSec: 1000},
	})
	// a: p99 regressed 50%; b: throughput regressed 50%; c: within band.
	new := mkBenchFile(t, "new.json", map[string]pt{
		"a": {p99: 150, opsPerSec: 1000},
		"b": {p99: 100, opsPerSec: 500},
		"c": {p99: 105, opsPerSec: 980},
	})
	var b strings.Builder
	n, err := diffBenchFiles(&b, old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("regressions = %d, want 2 in:\n%s", n, b.String())
	}
	if c := strings.Count(b.String(), "REGRESSION"); c != 2 {
		t.Errorf("REGRESSION flagged %d times, want 2:\n%s", c, b.String())
	}
	// A wide band forgives both.
	b.Reset()
	n, err = diffBenchFiles(&b, old, new, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("regressions with 100%% band = %d, want 0:\n%s", n, b.String())
	}
	// Improvements never count as regressions, whichever direction the
	// files are given in… swapping makes the old regressions improvements
	// and c's small drift a non-event.
	b.Reset()
	if n, err = diffBenchFiles(&b, new, old, 0.10); err != nil || n != 0 {
		t.Errorf("reverse diff: n=%d err=%v\n%s", n, err, b.String())
	}
}

// TestBenchdiffAllocRegressions pins the allocs/op gate: the noise band
// applies multiplicatively like the other metrics, plus an absolute
// half-alloc grace so counter jitter near zero never trips it — but a
// structure going from allocation-free to one real object per op does.
func TestBenchdiffAllocRegressions(t *testing.T) {
	type pt = struct{ p99, opsPerSec, allocs float64 }
	old := mkBenchFile(t, "old.json", map[string]pt{
		"a": {100, 1000, 0},  // zero-alloc baseline…
		"b": {100, 1000, 0},  // …with jitter headroom
		"c": {100, 1000, 10}, // allocating baseline, within band
		"d": {100, 1000, 10}, // allocating baseline, beyond band
	})
	new := mkBenchFile(t, "new.json", map[string]pt{
		"a": {100, 1000, 2},    // 0 → 2: a real object on the hot path
		"b": {100, 1000, 0.3},  // 0 → 0.3: counter jitter, forgiven
		"c": {100, 1000, 11.4}, // ≤ 10×1.1 + 0.5
		"d": {100, 1000, 12},   // > 10×1.1 + 0.5
	})
	var b strings.Builder
	n, err := diffBenchFiles(&b, old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("alloc regressions = %d, want 2 (a and d):\n%s", n, b.String())
	}
}

func TestBenchdiffToleratesDisjointRecords(t *testing.T) {
	type pt = struct{ p99, opsPerSec, allocs float64 }
	old := mkBenchFile(t, "old.json", map[string]pt{"a": {100, 1000, 0}, "gone": {100, 1000, 0}})
	new := mkBenchFile(t, "new.json", map[string]pt{"a": {100, 1000, 0}, "added": {100, 1000, 0}})
	var b strings.Builder
	n, err := diffBenchFiles(&b, old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("disjoint records regressed: %d\n%s", n, b.String())
	}
	for _, want := range []string{"only in old", "only in new"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("diff output missing %q:\n%s", want, b.String())
		}
	}
}

func TestBenchdiffRejectsLegacyFormat(t *testing.T) {
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"gomaxprocs":1,"ops_per_run":100,"results":[{"seed":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := loadBenchFile(legacy)
	if err == nil {
		t.Fatal("legacy benchjson accepted")
	}
	if !strings.Contains(err.Error(), "regenerate") {
		t.Errorf("legacy error lacks the regeneration hint: %v", err)
	}
	if _, err := loadBenchFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestBenchdiffSelfOnRealCampaign runs a real tiny campaign, marshals it
// the way TestBenchJSON does, and checks a self-diff reports no
// regressions at zero noise — the format round-trips through the gate.
func TestBenchdiffSelfOnRealCampaign(t *testing.T) {
	cmp, err := countq.Campaign{
		Name:    "self",
		Base:    countq.Workload{Goroutines: 2, Ops: 2000, Seed: 1},
		Entries: []countq.Entry{{Counter: "atomic"}, {Counter: "sharded"}},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := benchFile{GoMaxProcs: 1, Ops: 2000, Comparisons: []*countq.Comparison{cmp}}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "self.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	n, err := diffBenchFiles(&b, path, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("self-diff regressed: %d\n%s", n, b.String())
	}
}
