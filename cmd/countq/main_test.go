package main

import (
	"strings"
	"testing"

	"repro/countq"
)

// TestListIsRegistryDriven checks that the listing is generated from the
// two registries: every experiment ID and every registered protocol —
// including the sharded and funnel counters — appears, with no
// hand-maintained roster to fall out of date.
func TestListIsRegistryDriven(t *testing.T) {
	var b strings.Builder
	listCmd(&b, false)
	out := b.String()
	for _, want := range []string{"E1", "E11", "E16", "sharded", "funnel", "atomic", "combining", "network", "swap"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
	for _, info := range countq.Counters() {
		if !strings.Contains(out, info.Name) {
			t.Errorf("registered counter %q not listed", info.Name)
		}
	}
	for _, info := range countq.Queues() {
		if !strings.Contains(out, info.Name) {
			t.Errorf("registered queue %q not listed", info.Name)
		}
	}
}

// TestListVerboseShowsParams checks that list -v prints every declared
// parameter of every registered structure, straight from the registry.
func TestListVerboseShowsParams(t *testing.T) {
	var b strings.Builder
	listCmd(&b, true)
	out := b.String()
	for _, want := range []string{"shards", "batch", "width", "depth", "spin", "leaves", "pending"} {
		if !strings.Contains(out, want) {
			t.Errorf("verbose list missing param %q", want)
		}
	}
	for _, info := range countq.Counters() {
		for _, p := range info.Params {
			if !strings.Contains(out, p.Name) || !strings.Contains(out, p.Doc) {
				t.Errorf("verbose list missing declared param %s.%s", info.Name, p.Name)
			}
		}
	}
	// The terse listing stays terse.
	var terse strings.Builder
	listCmd(&terse, false)
	if strings.Contains(terse.String(), "default") {
		t.Error("non-verbose list leaks param documentation")
	}
}

// TestDriveRegistryResolution runs the driver end-to-end over a registered
// pair — including a parameterized spec, the acceptance-criteria path —
// as the drive subcommand does.
func TestDriveRegistryResolution(t *testing.T) {
	res, err := countq.Run(countq.Workload{
		Counter: "sharded", Queue: "swap", Goroutines: 4, Ops: 2000, Mix: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Ops != 2000 {
		t.Errorf("ops = %d, want 2000", res.Aggregate.Ops)
	}
	res, err = countq.Run(countq.Workload{
		Counter: "sharded?shards=4&batch=16", Queue: "swap",
		Goroutines: 4, Ops: 2000, Mix: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter != "sharded?shards=4&batch=16" {
		t.Errorf("result spec = %q", res.Counter)
	}
}

// TestScenariosListIsRegistryDriven checks that the scenario listing is
// generated from the scenario registry — every canonical scenario appears,
// and -v prints every declared parameter.
func TestScenariosListIsRegistryDriven(t *testing.T) {
	var b strings.Builder
	scenariosCmd(&b, false)
	out := b.String()
	for _, want := range []string{"steady", "ramp", "spike", "mixshift", "batched"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenarios output missing %q", want)
		}
	}
	if strings.Contains(out, "default") {
		t.Error("non-verbose scenarios listing leaks param documentation")
	}
	var v strings.Builder
	scenariosCmd(&v, true)
	for _, info := range countq.Scenarios() {
		for _, p := range info.Params {
			if !strings.Contains(v.String(), p.Name) || !strings.Contains(v.String(), p.Doc) {
				t.Errorf("verbose scenarios missing declared param %s.%s", info.Name, p.Name)
			}
		}
	}
}

// TestDriveScenarioMetrics runs the acceptance-criteria path — drive with
// a scenario — and checks the rendered table carries the per-phase
// quantities (quantiles, fairness, warmup marker) the engine produces.
func TestDriveScenarioMetrics(t *testing.T) {
	m, err := countq.Run(countq.Workload{
		Counter: "sharded", Queue: "swap", Scenario: "ramp?gmax=4",
		Goroutines: 4, Ops: 4000, Mix: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	printMetrics(&b, m)
	out := b.String()
	for _, want := range []string{"scenario=ramp?gmax=4", "g=1", "g=2", "g=4", "aggregate", "fair", "p50/p99", "validated"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table missing %q in:\n%s", want, out)
		}
	}
	// Warmup phases are flagged and footnoted.
	m, err = countq.Run(countq.Workload{Counter: "atomic", Scenario: "steady", Ops: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	printMetrics(&b, m)
	if !strings.Contains(b.String(), "warmup*") || !strings.Contains(b.String(), "excluded from the aggregate") {
		t.Errorf("warmup marker missing in:\n%s", b.String())
	}
}

func TestSweepSpecs(t *testing.T) {
	specs, err := sweepSpecs("sharded?shards=4", "batch=16,64,256")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"sharded?batch=16&shards=4",
		"sharded?batch=64&shards=4",
		"sharded?batch=256&shards=4",
	}
	if len(specs) != len(want) {
		t.Fatalf("specs = %v", specs)
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("specs[%d] = %q, want %q", i, specs[i], want[i])
		}
	}
	// Each swept spec must actually construct and run.
	for _, spec := range specs {
		if _, err := countq.Run(countq.Workload{Counter: spec, Ops: 200, Seed: 1}); err != nil {
			t.Errorf("swept spec %q failed: %v", spec, err)
		}
	}
	for _, bad := range []struct{ counter, sweep string }{
		{"", "batch=1,2"},
		{"sharded", "batch"},
		{"sharded", "=1,2"},
		{"sharded", "batch=1,,2"},
		{"?x=1", "batch=1"},
	} {
		if _, err := sweepSpecs(bad.counter, bad.sweep); err == nil {
			t.Errorf("sweepSpecs(%q, %q) accepted", bad.counter, bad.sweep)
		}
	}
}

// TestCompareCampaignTable runs the acceptance-criteria path — a campaign
// over two structure specs under a composed scenario — and checks the
// rendered delta table, CSV and Markdown all carry both structures under
// identical phase sequences.
func TestCompareCampaignTable(t *testing.T) {
	cmp, err := countq.Campaign{
		Base:    countq.Workload{Scenario: "ramp?gmax=2;spike?cycles=1", Goroutines: 2, Ops: 8000, Seed: 1},
		Entries: []countq.Entry{{Counter: "atomic"}, {Counter: "sharded?shards=64"}},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	printComparison(&b, cmp)
	out := b.String()
	for _, want := range []string{
		"scenario=ramp?gmax=2;spike?cycles=1", "baseline=atomic",
		"atomic*", "sharded?shards=64", "g=1", "g=2", "spike-1", "calm-1",
		"aggregate", "Δp99", "validated", "fairness is min/max",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q in:\n%s", want, out)
		}
	}
	// Identical phase sequences: the same per-phase op budgets on both.
	a, s := cmp.Results[0].Metrics, cmp.Results[1].Metrics
	for i := range a.Phases {
		if a.Phases[i].Ops != s.Phases[i].Ops || a.Phases[i].Name != s.Phases[i].Name {
			t.Errorf("phase %d diverges: %s/%d vs %s/%d",
				i, a.Phases[i].Name, a.Phases[i].Ops, s.Phases[i].Name, s.Phases[i].Ops)
		}
	}
	if _, err := cmp.MarshalCSV(); err != nil {
		t.Errorf("CSV export: %v", err)
	}
	if _, err := cmp.MarshalMarkdown(); err != nil {
		t.Errorf("Markdown export: %v", err)
	}
}

// TestCheckSweepShadow pins the fail-loudly rule for sweeps under composed
// scenarios: a segment pinning the swept parameter is rejected instead of
// silently overriding every swept value.
func TestCheckSweepShadow(t *testing.T) {
	// A composed scenario whose segment pins the swept parameter fails.
	err := checkSweepShadow("gmax=2,4,8", "ramp?gmax=8;spike")
	if err == nil {
		t.Fatal("shadowed sweep accepted")
	}
	for _, want := range []string{"ramp", "gmax=8", "shadow"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("shadow error %q does not mention %q", err, want)
		}
	}
	// Later segments are checked too.
	if err := checkSweepShadow("cycles=1,2", "ramp;spike?cycles=3"); err == nil {
		t.Error("shadow in the second segment accepted")
	}
	// No shadowing: composed scenario with disjoint params, single-segment
	// scenarios (even pinning the name), and no scenario at all.
	for _, ok := range []struct{ sweep, scenario string }{
		{"batch=16,64", "ramp?gmax=8;spike"},
		{"gmax=2,4", "ramp?gmax=8"}, // single segment keeps existing behavior
		{"batch=16,64", ""},
		{"malformed", "ramp;spike"}, // sweepSpecs reports the malformed sweep itself
	} {
		if err := checkSweepShadow(ok.sweep, ok.scenario); err != nil {
			t.Errorf("checkSweepShadow(%q, %q) = %v, want nil", ok.sweep, ok.scenario, err)
		}
	}
	// An invalid composition surfaces its own error.
	if err := checkSweepShadow("gmax=2,4", "ramp;;spike"); err == nil {
		t.Error("invalid composition accepted")
	}
}

func TestBuildTopology(t *testing.T) {
	cases := []struct {
		topo      string
		n         int
		wantN     int
		connected bool
	}{
		{"complete", 32, 32, true},
		{"list", 40, 40, true},
		{"star", 12, 12, true},
		{"mesh2d", 256, 256, true},
		{"mesh3d", 64, 64, true},
		{"hypercube", 100, 64, true}, // rounds down to 2^6
		{"mary", 40, 40, true},       // 3-ary with 1+3+9+27 = 40 nodes
		{"caterpillar", 50, 50, true},
		{"ccc", 200, 160, true}, // CCC(5): 5·32 = 160 ≤ 200
		{"debruijn", 100, 64, true},
	}
	for _, c := range cases {
		g, err := buildTopology(c.topo, c.n)
		if err != nil {
			t.Errorf("%s: %v", c.topo, err)
			continue
		}
		if g.N() != c.wantN {
			t.Errorf("%s: n = %d, want %d", c.topo, g.N(), c.wantN)
		}
		if g.IsConnected() != c.connected {
			t.Errorf("%s: connectivity mismatch", c.topo)
		}
	}
	if _, err := buildTopology("klein-bottle", 10); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestIntRoots(t *testing.T) {
	if intSqrt(255) != 15 || intSqrt(256) != 16 || intSqrt(1) != 1 {
		t.Error("intSqrt wrong")
	}
	if intCbrt(26) != 2 || intCbrt(27) != 3 || intCbrt(1000) != 10 {
		t.Error("intCbrt wrong")
	}
}
