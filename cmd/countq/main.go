// Command countq runs the experiments reproducing Busch & Tirthapura,
// "Concurrent counting is harder than queuing" (IPDPS 2006 / TCS 2010).
//
// Usage:
//
//	countq list                 # list all experiments
//	countq run E1 E6 ...        # run selected experiments
//	countq run all              # run the full suite
//	countq compare -topo mesh2d -n 256
//
// Flags for run: -quick (small sizes), -seed N (workload seed).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, s := range core.Experiments() {
			fmt.Printf("%-4s %-70s %s\n", s.ID, s.Title, s.Ref)
		}
	case "run":
		runCmd(os.Args[2:])
	case "compare":
		compareCmd(os.Args[2:])
	case "trace":
		traceCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: countq {list | run [-quick] [-seed N] <ids...|all> | compare [-topo T] [-n N] | trace [-n N] [-reqs K]}")
}

func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	n := fs.Int("n", 15, "tree size (perfect binary levels chosen to fit)")
	k := fs.Int("reqs", 6, "number of lock/queue requests")
	width := fs.Int("width", 72, "chart width")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	out, err := core.TraceDemo(*n, *k, *width, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq trace:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	quick := fs.Bool("quick", false, "use the small problem sizes")
	seed := fs.Int64("seed", 1, "workload seed")
	format := fs.String("format", "text", "output format: text|csv|json|markdown")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "countq run: no experiment ids given (try 'all')")
		os.Exit(2)
	}
	var specs []*core.Spec
	if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
		specs = core.Experiments()
	} else {
		for _, id := range ids {
			s := core.Lookup(id)
			if s == nil {
				fmt.Fprintf(os.Stderr, "countq run: unknown experiment %q\n", id)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}
	cfg := core.Config{Quick: *quick, Seed: *seed}
	for _, s := range specs {
		tbl, err := s.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "countq run %s: %v\n", s.ID, err)
			os.Exit(1)
		}
		out, err := tbl.Format(*format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "countq run:", err)
			os.Exit(2)
		}
		fmt.Println(out)
	}
}

func compareCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	topo := fs.String("topo", "mesh2d", "topology: complete|mesh2d|mesh3d|hypercube|list|star|mary|caterpillar|ccc|debruijn")
	n := fs.Int("n", 256, "approximate number of nodes")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	g, err := buildTopology(*topo, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq compare:", err)
		os.Exit(2)
	}
	tbl, err := core.CompareOn(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq compare:", err)
		os.Exit(1)
	}
	fmt.Println(tbl.Render())
}

// buildTopology constructs the requested topology with roughly n nodes.
func buildTopology(topo string, n int) (*graph.Graph, error) {
	switch topo {
	case "complete":
		return graph.Complete(n), nil
	case "list":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "mesh2d":
		side := intSqrt(n)
		return graph.Mesh(side, side), nil
	case "mesh3d":
		side := intCbrt(n)
		return graph.Mesh(side, side, side), nil
	case "hypercube":
		d := 0
		for 1<<uint(d+1) <= n {
			d++
		}
		return graph.Hypercube(d), nil
	case "mary":
		levels := 1
		for size := 1; size*3+1 <= n; {
			size = size*3 + 1
			levels++
		}
		return graph.PerfectMAryTree(3, levels), nil
	case "caterpillar":
		return graph.Caterpillar(n, 0.75), nil
	case "ccc":
		d := 3
		for (d+1)*(1<<uint(d+1)) <= n {
			d++
		}
		return graph.CubeConnectedCycles(d), nil
	case "debruijn":
		d := 1
		for 1<<uint(d+1) <= n {
			d++
		}
		return graph.DeBruijn(d), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

func intCbrt(n int) int {
	s := 1
	for (s+1)*(s+1)*(s+1) <= n {
		s++
	}
	return s
}
