// Command countq runs the experiments reproducing Busch & Tirthapura,
// "Concurrent counting is harder than queuing" (IPDPS 2006 / TCS 2010),
// and drives the registered counter/queuer implementations directly.
//
// Usage:
//
//	countq list [-v]            # list experiments and registered protocols (-v: declared params)
//	countq scenarios [-v]       # list registered workload scenarios (-v: declared params)
//	countq run E1 E6 ...        # run selected experiments
//	countq run all              # run the full suite
//	countq compare -scenario 'ramp;spike' atomic 'sharded?shards=64'
//	countq benchdiff -noise 0.10 BENCH_old.json BENCH_new.json
//	countq topo -topo mesh2d -n 256
//	countq drive -counter 'sharded?shards=4&batch=16' -queue swap -g 8 -ops 100000
//	countq drive -counter sharded -scenario 'ramp?gmax=16' -json
//	countq drive -counter sharded -sweep batch=16,64,256,1024
//
// Structures and scenarios are named by spec: a bare registry name
// constructs the declared defaults, "name?param=value&..." tunes the
// declared parameters (list -v and scenarios -v print them). Scenario
// specs compose: "ramp?gmax=8;spike" sequences registered scenarios, with
// reserved per-segment weight= (budget share) and warmup= (mark the
// segment warmup) parameters. -scenario runs the workload as the named
// phase sequence and reports per-phase metrics — latency quantiles, a
// throughput timeline, worker fairness. -sweep varies one counter
// parameter over a list of values and reports one configuration per line.
//
// compare runs a campaign: several structure specs under one scenario's
// byte-identical phase sequence and a shared seed, reporting per-phase
// metrics plus delta ratios against a baseline spec (table, -csv, -md or
// -json). Alongside latency and throughput every table carries memory
// columns — allocs/op and the live-heap peak with its windowed timeline —
// so coordination cost and allocation cost read side by side. benchdiff
// compares two -benchjson files on p99, throughput and allocs/op within
// a noise band and exits nonzero on regression. topo compares the
// distributed protocols on a chosen topology.
//
// Experiments, protocols and scenarios all come from registries
// (internal/core's spec registry and the public repro/countq registries),
// so new entries appear here without touching this command.
//
// Flags for run: -quick (small sizes), -seed N (workload seed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/countq"
	"repro/internal/core"
	"repro/internal/graph"
	_ "repro/internal/shm" // register the shared-memory counters and queues
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		listArgs(os.Args[2:])
	case "scenarios":
		scenariosArgs(os.Args[2:])
	case "run":
		runCmd(os.Args[2:])
	case "compare":
		compareCampaignCmd(os.Args[2:])
	case "benchdiff":
		benchdiffCmd(os.Args[2:])
	case "topo":
		topoCmd(os.Args[2:])
	case "trace":
		traceCmd(os.Args[2:])
	case "drive":
		driveCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: countq {list [-v] | scenarios [-v] | run [-quick] [-seed N] <ids...|all>
              | compare [-scenario SPEC] [-queue SPEC] [-baseline SPEC] [-sweep P=V1,V2,...] [-g N] [-ops N] [-dur D] [-mix F] [-batch N] [-inflight K] [-sample K] [-arrival A] [-seed N] [-csv|-md|-json] <spec>[@g=N][@batch=N][@inflight=K] ...
              | benchdiff [-noise F] OLD.json NEW.json
              | topo [-topo T] [-n N] | trace [-n N] [-reqs K]
              | drive [-counter SPEC] [-queue SPEC] [-scenario SPEC] [-g N] [-ops N] [-dur D] [-mix F] [-batch N] [-inflight K] [-sample K] [-arrival A] [-seed N] [-sweep P=V1,V2,...] [-json]}`)
}

// scenariosArgs parses the scenarios flags and prints the listing.
func scenariosArgs(args []string) {
	fs := flag.NewFlagSet("scenarios", flag.ExitOnError)
	verbose := fs.Bool("v", false, "also print each scenario's declared parameters")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	scenariosCmd(os.Stdout, *verbose)
}

// scenariosCmd prints the scenario registry; like the structure listing,
// every line comes from registry declarations, never a hand-kept roster.
func scenariosCmd(w io.Writer, verbose bool) {
	fmt.Fprintln(w, "scenarios (countq registry):")
	for _, info := range countq.Scenarios() {
		fmt.Fprintf(w, "  %-12s %s\n", info.Name, info.Summary)
		if verbose {
			listParams(w, info.Params)
		}
	}
}

// listArgs parses the list flags and prints the listing.
func listArgs(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	verbose := fs.Bool("v", false, "also print each structure's declared construction parameters")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	listCmd(os.Stdout, *verbose)
}

// listCmd prints the experiment suite and the protocol registries; every
// line — including the per-structure parameter documentation — is
// generated from registry declarations, never hand-maintained.
func listCmd(w io.Writer, verbose bool) {
	fmt.Fprintln(w, "experiments:")
	for _, s := range core.Experiments() {
		fmt.Fprintf(w, "  %-4s %-70s %s\n", s.ID, s.Title, s.Ref)
	}
	fmt.Fprintln(w, "\ncounters (countq registry):")
	for _, info := range countq.Counters() {
		consistency := "quiescent"
		if info.Linearizable {
			consistency = "linearizable"
		}
		fmt.Fprintf(w, "  %-12s %-13s %s\n", info.Name, consistency, info.Summary)
		if verbose {
			listParams(w, info.Params)
		}
	}
	fmt.Fprintln(w, "\nqueues (countq registry):")
	for _, info := range countq.Queues() {
		fmt.Fprintf(w, "  %-12s %-13s %s\n", info.Name, "linearizable", info.Summary)
		if verbose {
			listParams(w, info.Params)
		}
	}
	fmt.Fprintln(w, "\nstructures (countq registry v3; kinds and session capabilities):")
	for _, info := range countq.Structures() {
		fmt.Fprintf(w, "  %-12s %-14s caps=%-14s %s\n", info.Name, info.Kinds, info.Caps, info.Summary)
		if verbose {
			listParams(w, info.Params)
		}
	}
}

// listParams prints one structure's declared parameters, -v style.
func listParams(w io.Writer, params []countq.ParamInfo) {
	for _, p := range params {
		fmt.Fprintf(w, "      %-8s default %-12s %s\n", p.Name, p.Default, p.Doc)
	}
}

// driveCmd runs the workload driver — one steady phase or a registered
// scenario's phase sequence — over any registered protocol pair, named by
// spec ("sharded?shards=4&batch=16"). With -sweep it varies one counter
// parameter over a list of values and reports one configuration per line.
// Both paths run through the campaign layer: a plain drive is the
// 1-structure campaign, a sweep is a campaign whose baseline is the first
// swept value.
func driveCmd(args []string) {
	fs := flag.NewFlagSet("drive", flag.ExitOnError)
	counter := fs.String("counter", "atomic", "counter spec, e.g. 'sharded?shards=4&batch=16' (empty for a pure queue workload)")
	queue := fs.String("queue", "swap", "queue spec (empty for a pure counter workload)")
	scenario := fs.String("scenario", "", "scenario spec, e.g. 'ramp?gmax=16' (empty for one steady phase; see countq scenarios)")
	g := fs.Int("g", 0, "goroutines (0 = GOMAXPROCS); scenarios treat this as the contention ceiling")
	ops := fs.Int("ops", 1<<17, "total operation budget (scenarios split it across phases)")
	dur := fs.Duration("dur", 0, "run for a duration instead of an ops budget")
	mix := fs.Float64("mix", 0.5, "fraction of operations that count (the rest enqueue; 0 = pure queue)")
	batch := fs.Int("batch", 0, "issue counter ops as IncN block grants of this size (requires the batch capability)")
	inflight := fs.Int("inflight", 0, "keep this many ops outstanding per worker (requires the async capability; 0/1 = synchronous)")
	sample := fs.Int("sample", 0, "time every Kth operation for per-op latency (0 = default 64)")
	arrival := fs.String("arrival", "closed", "arrival pattern: closed|uniform|bursty|fairshare")
	seed := fs.Int64("seed", 1, "workload seed")
	sweep := fs.String("sweep", "", "sweep one counter param over values, e.g. 'batch=16,64,256'")
	asJSON := fs.Bool("json", false, "emit the full metrics as JSON")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	arr, err := countq.ParseArrival(*arrival)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq drive:", err)
		os.Exit(2)
	}
	base := countq.Workload{
		Scenario:      *scenario,
		Goroutines:    *g,
		Ops:           *ops,
		Mix:           *mix,
		Batch:         *batch,
		Inflight:      *inflight,
		LatencySample: *sample,
		Arrival:       arr,
		Seed:          *seed,
	}
	if *dur > 0 {
		base.Duration = *dur // replaces the ops budget
	}
	if *sweep != "" {
		if err := checkSweepShadow(*sweep, *scenario); err != nil {
			fmt.Fprintln(os.Stderr, "countq drive:", err)
			os.Exit(2)
		}
		specs, err := sweepSpecs(*counter, *sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "countq drive:", err)
			os.Exit(2)
		}
		c := countq.Campaign{Base: base, Name: "sweep"}
		for _, spec := range specs {
			c.Entries = append(c.Entries, countq.Entry{Counter: spec, Queue: *queue})
		}
		cmp, err := c.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "countq drive:", err)
			os.Exit(1)
		}
		if *asJSON {
			printJSON(cmp)
			return
		}
		for i := range cmp.Results {
			r := &cmp.Results[i]
			m := r.Metrics
			line := fmt.Sprintf("%-40s %10.1f ns/op overall", m.Counter, m.NsPerOp())
			if l := m.Aggregate.CounterLat; l != nil {
				line += fmt.Sprintf("   counting p50 %8.1f  p99 %8.1f", l.P50Ns, l.P99Ns)
			}
			if !r.Baseline && r.AggregateDelta.P99Ratio > 0 {
				line += fmt.Sprintf("   p99 %5.2fx vs %s", r.AggregateDelta.P99Ratio, cmp.Baseline)
			}
			fmt.Println(line)
		}
		return
	}
	c := countq.Campaign{Base: base, Entries: []countq.Entry{{Counter: *counter, Queue: *queue}}}
	cmp, err := c.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq drive:", err)
		os.Exit(1)
	}
	m := cmp.Results[0].Metrics
	if *asJSON {
		printJSON(m)
		return
	}
	printMetrics(os.Stdout, m)
}

// checkSweepShadow rejects a sweep whose parameter name a composed
// scenario segment also pins. The namespaces differ — -sweep varies the
// *counter spec*, segment parameters shape the *scenario* — but the name
// collision is exactly the case where a user who meant to sweep the
// scenario knob would instead silently measure the pinned segment value
// on every run, so the ambiguity fails loudly instead. Single-segment
// scenarios keep the existing behavior — the sweep varies the counter
// spec, the scenario keeps its own parameters.
func checkSweepShadow(sweep, scenario string) error {
	if scenario == "" || !strings.Contains(scenario, ";") {
		return nil
	}
	param, _, ok := strings.Cut(sweep, "=")
	if !ok || param == "" {
		return nil // sweepSpecs reports the malformed sweep itself
	}
	segs, err := countq.Segments(scenario)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		if v, set := seg.Options.Lookup(param); set {
			return fmt.Errorf("ambiguous sweep: -sweep varies the counter parameter %q, but scenario segment %d (%s) pins a parameter of the same name (%s=%s), which a sweep never varies — if you meant to sweep the scenario knob, that stays fixed at %s; drop the segment parameter or sweep a differently-named one to disambiguate (shadowing)", param, i+1, seg.Name, param, v, v)
		}
	}
	return nil
}

// printMetrics renders a run's metrics as the human-readable per-phase
// table: latency quantiles per op kind, throughput, and worker fairness,
// then the aggregate over the measured phases.
func printMetrics(w io.Writer, m *countq.Metrics) {
	head := fmt.Sprintf("counter=%s queue=%s", m.Counter, m.Queue)
	if m.Scenario != "" {
		head += " scenario=" + m.Scenario
	}
	fmt.Fprintf(w, "%s goroutines=%d seed=%d elapsed=%v\n", head, m.Goroutines, m.Seed, m.Elapsed.Round(time.Microsecond))
	fmt.Fprintf(w, "%-12s %5s %5s %8s %9s %10s  %-30s %-30s %-24s %5s %9s\n",
		"phase", "g", "mix", "ops", "ns/op", "Mops/s", "counting p50/p99/p999", "queuing p50/p99/p999", "corrected p50/p99", "fair", "allocs/op")
	row := func(name string, g int, mix string, ops int, nsPerOp, mopsPerSec float64, cl, ql, cc, qc *countq.LatencyStats, fair string, allocs float64) {
		fmt.Fprintf(w, "%-12s %5d %5s %8d %9.1f %10.2f  %-30s %-30s %-24s %5s %9.2f\n",
			name, g, mix, ops, nsPerOp, mopsPerSec, latCell(cl), latCell(ql), corrCell(cc, qc), fair, allocs)
	}
	hasCorr := false
	for i := range m.Phases {
		p := &m.Phases[i]
		name := p.Name
		if p.Warmup {
			name += "*"
		}
		tput := 0.0
		if p.Elapsed > 0 {
			tput = float64(p.Ops) / p.Elapsed.Seconds() / 1e6
		}
		if p.CounterCorr != nil || p.QueueCorr != nil {
			hasCorr = true
		}
		row(name, p.Goroutines, fmt.Sprintf("%.2f", p.Mix), p.Ops, p.NsPerOp(), tput, p.CounterLat, p.QueueLat, p.CounterCorr, p.QueueCorr, fmt.Sprintf("%.2f", p.Fairness), p.AllocsPerOp)
	}
	a := &m.Aggregate
	tput := 0.0
	if a.Elapsed > 0 {
		tput = float64(a.Ops) / a.Elapsed.Seconds() / 1e6
	}
	row("aggregate", m.Goroutines, "", a.Ops, a.NsPerOp(), tput, a.CounterLat, a.QueueLat, a.CounterCorr, a.QueueCorr, fmt.Sprintf("%.2f", a.Fairness), a.AllocsPerOp)
	if len(a.Timeline) > 1 {
		fmt.Fprintf(w, "throughput timeline (Mops/s): %s\n", timelineCells(a.Timeline))
	}
	if a.LivePeakBytes > 0 {
		fmt.Fprintf(w, "live heap peak: %s", byteCell(a.LivePeakBytes))
		if len(a.MemTimeline) > 1 {
			fmt.Fprintf(w, "   timeline: %s", memTimelineCells(a.MemTimeline))
		}
		fmt.Fprintln(w)
	}
	for i := range m.Phases {
		if m.Phases[i].Warmup {
			fmt.Fprintln(w, "(*) warmup phase, excluded from the aggregate")
			break
		}
	}
	if hasCorr {
		fmt.Fprintln(w, "corrected p50/p99: coordinated-omission-corrected (completion vs the arrival schedule's intended start)")
	}
	fmt.Fprintln(w, "validated: counts distinct and gap-free, predecessors form one total order")
}

// latCell renders one op kind's latency quantiles, or "-" when the run
// had no operations of that kind.
func latCell(l *countq.LatencyStats) string {
	if l == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f/%.0f/%.0f ns", l.P50Ns, l.P99Ns, l.P999Ns)
}

// corrCell renders the coordinated-omission-corrected quantiles, counter
// side first (the paper's expensive side), or "-" for plain closed loops
// where none were recorded.
func corrCell(c, q *countq.LatencyStats) string {
	l := countq.PickLatency(c, q)
	if l == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f/%.0f ns", l.P50Ns, l.P99Ns)
}

// byteCell renders a byte count human-readably.
func byteCell(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	}
}

// memTimelineCells renders the live-heap timeline as one peak per window.
func memTimelineCells(tl []countq.MemWindow) string {
	var b strings.Builder
	for i, win := range tl {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(byteCell(win.PeakBytes))
	}
	return b.String()
}

// timelineCells renders the aggregate throughput timeline as one number
// per window.
func timelineCells(tl []countq.Window) string {
	var b strings.Builder
	for i, win := range tl {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f", win.OpsPerSec()/1e6)
	}
	return b.String()
}

// sweepSpecs expands a base counter spec and a "param=v1,v2,..." sweep
// argument into one spec per value.
func sweepSpecs(counter, sweep string) ([]string, error) {
	if counter == "" {
		return nil, fmt.Errorf("-sweep needs a -counter to vary")
	}
	param, list, ok := strings.Cut(sweep, "=")
	if !ok || param == "" || list == "" {
		return nil, fmt.Errorf("malformed -sweep %q (want param=v1,v2,...)", sweep)
	}
	base, err := countq.ParseSpec(counter)
	if err != nil {
		return nil, err
	}
	var specs []string
	for _, v := range strings.Split(list, ",") {
		if v == "" {
			return nil, fmt.Errorf("malformed -sweep %q: empty value", sweep)
		}
		specs = append(specs, base.With(param, v).String())
	}
	return specs, nil
}

// printJSON writes v as indented JSON to stdout.
func printJSON(v interface{}) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq drive:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	n := fs.Int("n", 15, "tree size (perfect binary levels chosen to fit)")
	k := fs.Int("reqs", 6, "number of lock/queue requests")
	width := fs.Int("width", 72, "chart width")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	out, err := core.TraceDemo(*n, *k, *width, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq trace:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	quick := fs.Bool("quick", false, "use the small problem sizes")
	seed := fs.Int64("seed", 1, "workload seed")
	format := fs.String("format", "text", "output format: text|csv|json|markdown")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "countq run: no experiment ids given (try 'all')")
		os.Exit(2)
	}
	var specs []*core.Spec
	if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
		specs = core.Experiments()
	} else {
		for _, id := range ids {
			s := core.Lookup(id)
			if s == nil {
				fmt.Fprintf(os.Stderr, "countq run: unknown experiment %q\n", id)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}
	cfg := core.Config{Quick: *quick, Seed: *seed}
	for _, s := range specs {
		tbl, err := s.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "countq run %s: %v\n", s.ID, err)
			os.Exit(1)
		}
		out, err := tbl.Format(*format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "countq run:", err)
			os.Exit(2)
		}
		fmt.Println(out)
	}
}

// topoCmd (formerly `compare`) contrasts the distributed protocols on a
// chosen message-passing topology; `compare` now names the shared-memory
// campaign comparison.
func topoCmd(args []string) {
	fs := flag.NewFlagSet("topo", flag.ExitOnError)
	topo := fs.String("topo", "mesh2d", "topology: complete|mesh2d|mesh3d|hypercube|list|star|mary|caterpillar|ccc|debruijn")
	n := fs.Int("n", 256, "approximate number of nodes")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	g, err := buildTopology(*topo, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq topo:", err)
		os.Exit(2)
	}
	tbl, err := core.CompareOn(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq topo:", err)
		os.Exit(1)
	}
	fmt.Println(tbl.Render())
}

// buildTopology constructs the requested topology with roughly n nodes.
func buildTopology(topo string, n int) (*graph.Graph, error) {
	switch topo {
	case "complete":
		return graph.Complete(n), nil
	case "list":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "mesh2d":
		side := intSqrt(n)
		return graph.Mesh(side, side), nil
	case "mesh3d":
		side := intCbrt(n)
		return graph.Mesh(side, side, side), nil
	case "hypercube":
		d := 0
		for 1<<uint(d+1) <= n {
			d++
		}
		return graph.Hypercube(d), nil
	case "mary":
		levels := 1
		for size := 1; size*3+1 <= n; {
			size = size*3 + 1
			levels++
		}
		return graph.PerfectMAryTree(3, levels), nil
	case "caterpillar":
		return graph.Caterpillar(n, 0.75), nil
	case "ccc":
		d := 3
		for (d+1)*(1<<uint(d+1)) <= n {
			d++
		}
		return graph.CubeConnectedCycles(d), nil
	case "debruijn":
		d := 1
		for 1<<uint(d+1) <= n {
			d++
		}
		return graph.DeBruijn(d), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

func intCbrt(n int) int {
	s := 1
	for (s+1)*(s+1)*(s+1) <= n {
		s++
	}
	return s
}
