package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/countq"
)

// benchFile mirrors the -benchjson output of TestBenchJSON: campaign
// Comparisons, one per registry sweep group.
type benchFile struct {
	GoMaxProcs  int                  `json:"gomaxprocs"`
	Ops         int                  `json:"ops_per_run"`
	Comparisons []*countq.Comparison `json:"comparisons"`
}

// benchPoint is one record's regression-relevant numbers: aggregate p99
// per op kind, aggregate throughput, and aggregate allocations per op.
type benchPoint struct {
	counterP99 float64
	queueP99   float64
	opsPerSec  float64
	allocsOp   float64
}

// benchdiffCmd implements `countq benchdiff [-noise F] OLD.json NEW.json`:
// it matches records across two -benchjson files by campaign name and
// structure label, compares p99 latency and throughput within a
// multiplicative noise band, prints the deltas, and exits nonzero when any
// record regressed beyond the band — the perf regression gate.
func benchdiffCmd(args []string) {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	noise := fs.Float64("noise", 0.10, "allowed fractional regression before failing (0.10 = 10%; CI diffing across machines wants a much wider band)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: countq benchdiff [-noise F] OLD.json NEW.json")
		os.Exit(2)
	}
	if *noise < 0 {
		fmt.Fprintf(os.Stderr, "countq benchdiff: negative noise band %v\n", *noise)
		os.Exit(2)
	}
	regressions, err := diffBenchFiles(os.Stdout, fs.Arg(0), fs.Arg(1), *noise)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countq benchdiff:", err)
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "countq benchdiff: %d metric(s) regressed beyond the %.0f%% noise band\n", regressions, *noise*100)
		os.Exit(1)
	}
}

// loadBenchFile reads and decodes one -benchjson file, rejecting the
// pre-campaign format (a top-level "results" array of bare Metrics) with
// a regeneration hint instead of silently diffing nothing.
func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Comparisons) == 0 {
		var legacy struct {
			Results []json.RawMessage `json:"results"`
		}
		if json.Unmarshal(data, &legacy) == nil && len(legacy.Results) > 0 {
			return nil, fmt.Errorf("%s is a pre-campaign benchjson file (flat \"results\"); regenerate it with `go test -run TestBenchJSON -benchjson %s .`", path, path)
		}
		return nil, fmt.Errorf("%s has no comparisons", path)
	}
	return &f, nil
}

// benchPoints flattens a bench file into points keyed by
// "campaign/structure-label".
func benchPoints(f *benchFile) map[string]benchPoint {
	points := make(map[string]benchPoint)
	for _, cmp := range f.Comparisons {
		for i := range cmp.Results {
			r := &cmp.Results[i]
			a := &r.Metrics.Aggregate
			pt := benchPoint{opsPerSec: a.OpsPerSec(), allocsOp: a.AllocsPerOp}
			if a.CounterLat != nil {
				pt.counterP99 = a.CounterLat.P99Ns
			}
			if a.QueueLat != nil {
				pt.queueP99 = a.QueueLat.P99Ns
			}
			points[cmp.Name+"/"+r.Label] = pt
		}
	}
	return points
}

// diffBenchFiles compares the two files' shared records and reports the
// number of metrics that regressed beyond the noise band. Records present
// in only one file are listed but never fail the diff — a new structure
// must not need a baseline edit to land, and a removed one must not wedge
// the gate.
func diffBenchFiles(w io.Writer, oldPath, newPath string, noise float64) (int, error) {
	oldFile, err := loadBenchFile(oldPath)
	if err != nil {
		return 0, err
	}
	newFile, err := loadBenchFile(newPath)
	if err != nil {
		return 0, err
	}
	oldPts, newPts := benchPoints(oldFile), benchPoints(newFile)
	keys := make([]string, 0, len(oldPts))
	for k := range oldPts {
		if _, ok := newPts[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "benchdiff %s (gomaxprocs %d, %d ops) -> %s (gomaxprocs %d, %d ops), noise band %.0f%%\n",
		oldPath, oldFile.GoMaxProcs, oldFile.Ops, newPath, newFile.GoMaxProcs, newFile.Ops, noise*100)
	fmt.Fprintf(w, "%-54s %-14s %12s %12s %8s\n", "record", "metric", "old", "new", "delta")
	regressions := 0
	check := func(key, metric string, old, new float64, higherIsBetter bool) {
		if old <= 0 || new <= 0 {
			return // not measured on both sides
		}
		delta := new/old - 1
		flag := ""
		regressed := false
		if higherIsBetter {
			regressed = new < old/(1+noise)
		} else {
			regressed = new > old*(1+noise)
		}
		if regressed {
			flag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-54s %-14s %12.1f %12.1f %+7.1f%%%s\n", key, metric, old, new, delta*100, flag)
	}
	// Allocations per op use the same noise band plus an absolute
	// half-alloc grace: the whole-process GC counters jitter near zero
	// (timer resets, GC bookkeeping), so 0 → 0.3 is measurement noise
	// while 0 → 1 is a real object on the hot path — exactly the
	// regression the zero-allocation gates exist to catch. Unlike the
	// ratio metrics, an old value of 0 still participates.
	checkAllocs := func(key string, old, new float64) {
		if old < 0 || new < 0 {
			return
		}
		flag := ""
		if new > old*(1+noise)+0.5 {
			flag = "  REGRESSION"
			regressions++
		}
		deltaCell := "     new"
		if old > 0 {
			deltaCell = fmt.Sprintf("%+7.1f%%", (new/old-1)*100)
		} else if new == 0 {
			deltaCell = "       ="
		}
		fmt.Fprintf(w, "%-54s %-14s %12.2f %12.2f %s%s\n", key, "allocs/op", old, new, deltaCell, flag)
	}
	for _, k := range keys {
		o, n := oldPts[k], newPts[k]
		check(k, "counter p99", o.counterP99, n.counterP99, false)
		check(k, "queue p99", o.queueP99, n.queueP99, false)
		check(k, "ops/sec", o.opsPerSec, n.opsPerSec, true)
		checkAllocs(k, o.allocsOp, n.allocsOp)
	}
	reportOnly := func(pts map[string]benchPoint, other map[string]benchPoint, which string) {
		var only []string
		for k := range pts {
			if _, ok := other[k]; !ok {
				only = append(only, k)
			}
		}
		sort.Strings(only)
		for _, k := range only {
			fmt.Fprintf(w, "%-54s only in %s file (not compared)\n", k, which)
		}
	}
	reportOnly(oldPts, newPts, "old")
	reportOnly(newPts, oldPts, "new")
	return regressions, nil
}
