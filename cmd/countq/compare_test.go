package main

import (
	"flag"
	"strings"
	"testing"

	"repro/countq"
)

// TestParseInterleaved pins the flags-after-positionals behavior the
// acceptance invocation relies on:
// countq compare "spec,spec" -scenario "ramp?gmax=8".
func TestParseInterleaved(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	scenario := fs.String("scenario", "", "")
	ops := fs.Int("ops", 0, "")
	pos, err := parseInterleaved(fs, []string{"a,b", "-scenario", "ramp?gmax=8", "c", "-ops", "42"})
	if err != nil {
		t.Fatal(err)
	}
	if *scenario != "ramp?gmax=8" || *ops != 42 {
		t.Errorf("flags not parsed: scenario=%q ops=%d", *scenario, *ops)
	}
	if len(pos) != 2 || pos[0] != "a,b" || pos[1] != "c" {
		t.Errorf("positionals = %v", pos)
	}
	// A malformed flag is returned as an error, not an os.Exit, so
	// ContinueOnError callers (tests included) keep control.
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	fs2.SetOutput(&strings.Builder{})
	fs2.Int("ops", 0, "")
	if _, err := parseInterleaved(fs2, []string{"spec", "-ops", "banana"}); err == nil {
		t.Error("malformed flag value accepted")
	}
}

func TestParseEntry(t *testing.T) {
	e, err := parseEntry("sharded?shards=8@batch=64@g=4", "", false)
	if err != nil {
		t.Fatal(err)
	}
	want := countq.Entry{Counter: "sharded?shards=8", Batch: 64, Goroutines: 4}
	if e != want {
		t.Errorf("entry = %+v, want %+v", e, want)
	}
	if got := e.Label(); got != "sharded?shards=8@g=4@batch=64" {
		t.Errorf("label = %q", got)
	}
	e, err = parseEntry("sim-counter?hoplat=1us@inflight=16", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if e.Inflight != 16 || e.Counter != "sim-counter?hoplat=1us" {
		t.Errorf("entry = %+v", e)
	}
	// Queue-side positional specs.
	e, err = parseEntry("swap@g=2", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if e.Queue != "swap" || e.Counter != "" || e.Goroutines != 2 {
		t.Errorf("queue entry = %+v", e)
	}
	// Shared queue pairing.
	e, err = parseEntry("atomic", "swap", false)
	if err != nil {
		t.Fatal(err)
	}
	if e.Counter != "atomic" || e.Queue != "swap" {
		t.Errorf("paired entry = %+v", e)
	}
	for _, bad := range []string{"atomic@", "atomic@g", "atomic@g=", "atomic@g=0", "atomic@g=x", "atomic@turbo=9"} {
		if _, err := parseEntry(bad, "", false); err == nil {
			t.Errorf("parseEntry(%q) accepted", bad)
		}
	}
}

// TestCompareBridgeCampaign runs the acceptance-criteria campaign through
// the library path the CLI uses: the sim bridge against a shared-memory
// counter under the ramp scenario, both validated, with the corrected
// columns present in every export format.
func TestCompareBridgeCampaign(t *testing.T) {
	entries := []countq.Entry{}
	for _, part := range strings.Split("sharded?shards=8,sim-counter?hoplat=0", ",") {
		e, err := parseEntry(part, "", false)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	cmp, err := countq.Campaign{
		Base:    countq.Workload{Scenario: "ramp?gmax=4", Ops: 6000, Goroutines: 4, Seed: 1},
		Entries: entries,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	printComparison(&b, cmp)
	out := b.String()
	for _, want := range []string{"sim-counter?hoplat=0", "sharded?shards=8*", "cp50", "cp99", "validated"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q in:\n%s", want, out)
		}
	}
	csv, err := cmp.MarshalCSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "counter_corr_p99_ns") {
		t.Error("CSV export lacks the corrected columns")
	}
	md, err := cmp.MarshalMarkdown()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "corr p99") {
		t.Error("Markdown export lacks the corrected columns")
	}
}
