// Command countqlint runs the repo's custom static analyzer suite
// (internal/lint) over the packages matching the given patterns.
//
// Usage:
//
//	countqlint [-json] [-list] [-only a,b] [patterns ...]
//
// Patterns default to ./... so the bare invocation audits the whole
// module, the way CI runs it between staticcheck and the build. -only
// restricts the run to the named analyzers (-analyzers is the historical
// alias; passing both is an error). Exit status: 0 when every invariant
// holds, 1 when there are findings, 2 when the tree does not load (a
// package fails to compile, a pattern matches nothing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("countqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array of {file,line,col,analyzer,message}")
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	alias := fs.String("analyzers", "", "alias for -only, kept for old CI configs")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *only != "" && *alias != "" {
		fmt.Fprintln(stderr, "countqlint: -only and -analyzers are the same flag; pass one")
		return 2
	}
	selection := only
	if *alias != "" {
		selection = alias
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *selection != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*selection, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "countqlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "countqlint: %v\n", err)
		return 2
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "countqlint: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "countqlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
