package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestList prints every analyzer with its doc.
func TestList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(out.String(), a.Name+": ") {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
}

// TestCleanPackage exits 0 with empty output on a package that holds every
// invariant — this very command.
func TestCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"."}, &out, &errb); code != 0 {
		t.Fatalf("exited %d on a clean package: %s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestJSONOutput emits a well-formed (possibly empty) findings array.
func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "."}, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	var findings []lint.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("expected no findings, got %d", len(findings))
	}
}

// TestOnlySelects runs just the named analyzers: a selection that
// excludes every analyzer with findings on the target must exit 0.
func TestOnlySelects(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "hotpath,simdet", "."}, &out, &errb); code != 0 {
		t.Fatalf("-only exited %d: %s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestOnlyUnknown rejects unknown names through the new spelling too.
func TestOnlyUnknown(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nope", "."}, &out, &errb); code != 2 {
		t.Fatalf("expected exit 2 for unknown analyzer, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", errb.String())
	}
}

// TestOnlyAnalyzersConflict refuses the flag under both names at once.
func TestOnlyAnalyzersConflict(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "hotpath", "-analyzers", "simdet", "."}, &out, &errb); code != 2 {
		t.Fatalf("expected exit 2 when both -only and -analyzers are set, got %d", code)
	}
	if !strings.Contains(errb.String(), "same flag") {
		t.Errorf("stderr missing explanation: %s", errb.String())
	}
}

// TestUnknownAnalyzer is a usage error, distinct from lint failure.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "nope", "."}, &out, &errb); code != 2 {
		t.Fatalf("expected exit 2 for unknown analyzer, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", errb.String())
	}
}

// TestLoadFailure surfaces unloadable patterns as exit 2.
func TestLoadFailure(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./does-not-exist"}, &out, &errb); code != 2 {
		t.Fatalf("expected exit 2 for a bad pattern, got %d", code)
	}
}
