// Command bounds prints the paper's symbolic bounds as numeric tables: the
// tower function and log*, the exact influence recurrences a(t), b(t) of
// Lemmas 3.2–3.4, and the counting lower bounds of Theorems 3.5/3.6 next
// to the queuing upper bounds of Section 4.
package main

import (
	"flag"
	"fmt"

	"repro/internal/bounds"
)

func main() {
	maxN := flag.Int("maxn", 1<<20, "largest n in the bound tables")
	flag.Parse()

	fmt.Println("tower function and log*:")
	for j := 0; j <= 5; j++ {
		tw := bounds.Tow(j)
		if tw.BitLen() > 64 {
			fmt.Printf("  tow(%d) = 2^65536 (%d bits)\n", j, tw.BitLen())
			continue
		}
		fmt.Printf("  tow(%d) = %v  (log* = %d)\n", j, tw, bounds.LogStarInt(int(tw.Int64())))
	}

	fmt.Println("\nexact influence recurrences (Lemmas 3.2–3.4):")
	fmt.Println("  t   a(t)                  b(t)")
	r := bounds.NewRecurrence(5)
	for t := 0; t <= 5; t++ {
		fmt.Printf("  %d   %-20s  %s\n", t, trunc(r.A[t].String()), trunc(r.B[t].String()))
	}

	fmt.Println("\nmin rounds to output count k (Lemma 3.1 + recurrence):")
	for _, k := range []int64{1, 2, 10, 100, 10000, 1 << 30, 1 << 62} {
		fmt.Printf("  k=%-12d t ≥ %d\n", k, bounds.MinRoundsForCount(k))
	}

	fmt.Println("\ncounting lower bounds vs queuing upper bounds (all-request):")
	fmt.Println("  n        LB thm3.5   LB exact   2×(3n) list UB   2×O(n log n) UB")
	for n := 16; n <= *maxN; n *= 4 {
		fmt.Printf("  %-8d %-11d %-10d %-16d %d\n",
			n,
			bounds.CountingLowerBoundTheorem35(n),
			bounds.CountingLowerBoundExact(n),
			2*bounds.QueuingUpperBoundList(n),
			2*bounds.QueuingUpperBoundGeneral(n))
	}

	fmt.Println("\ndiameter lower bound Ω(α²) (Theorem 3.6):")
	for _, alpha := range []int{10, 100, 1000, 10000} {
		fmt.Printf("  α=%-6d LB = %d\n", alpha, bounds.DiameterLowerBound(alpha))
	}
}

func trunc(s string) string {
	if len(s) > 20 {
		return s[:17] + "..."
	}
	return s
}
