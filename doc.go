// Package repro is a Go reproduction of Costas Busch and Srikanta
// Tirthapura, "Concurrent counting is harder than queuing" (IEEE IPDPS
// 2006; Theoretical Computer Science 411, 2010).
//
// The repository contains a synchronous message-passing network simulator
// implementing the paper's machine model, the arrow distributed queuing
// protocol, a portfolio of distributed counting protocols (central,
// aggregating tree, bitonic counting network), the nearest-neighbour TSP
// machinery behind the queuing upper bound, exact evaluators for the
// paper's lower bounds, and an experiment harness (E1–E16) that reproduces
// every theorem and figure as a measurable table. See DESIGN.md for the
// system inventory; `go run ./cmd/countq run all` regenerates the
// paper-versus-measured tables.
//
// # Quickstart: specs, the countq registry, and the workload driver
//
// The public package repro/countq exposes the shared-memory counting and
// queuing structures behind one registry. Implementations self-register on
// import (database/sql style) and are constructed from specs: a bare name
// builds the declared defaults, and a DSN-style parameter list tunes the
// knobs that control each structure's coordination cost — the quantity the
// paper's lower bound is about:
//
//	import (
//		"repro/countq"
//
//		_ "repro/internal/shm" // register the shared-memory implementations
//	)
//
//	c, _ := countq.NewCounter("sharded?shards=4&batch=16")
//	q, _ := countq.NewQueue("swap")
//
// Every parameter is declared by its implementation (CounterInfo.Params),
// so unknown keys and mistyped values are rejected, `countq list -v`
// prints the full catalogue, and Spec.With fans a base spec out into a
// sweep. Counters may also advertise two capability interfaces:
// HandleMaker (per-goroutine handles whose fast path is uncontended) and
// BatchIncrementer (IncN — a block of counts for one coordination round).
//
// The scenario engine runs the paper's counting-versus-queuing contrast
// over any registered pair — as one steady phase or as a registered
// scenario (steady, ramp, spike, mixshift, batched) whose phases reshape
// mix, contention, arrival and batching while the structures persist.
// Scenario specs compose with ';' ("ramp?gmax=8;spike", or
// countq.Compose("ramp?gmax=8").Then("spike")), with reserved per-segment
// weight and warmup parameters. Every run is validated once across all
// phases (counts distinct and gap-free, block grants included,
// predecessors one total order) and reports structured Metrics: per-phase
// latency quantiles (p50/p90/p99/p999/max) per op kind from log-bucketed
// histograms, a windowed throughput timeline, and per-worker fairness:
//
//	m, err := countq.Run(countq.Workload{
//		Counter:    "sharded?shards=4&batch=16",
//		Queue:      "swap",
//		Scenario:   "ramp?gmax=8",
//		Goroutines: 8,
//		Ops:        1 << 20,
//		Mix:        0.5,
//	})
//
// The campaign layer runs several structure specs under one scenario's
// byte-identical phase sequence and a shared seed, returning per-structure
// Metrics plus delta ratios against a declared baseline, exportable as
// CSV or Markdown:
//
//	cmp, err := countq.Campaign{
//		Base:    countq.Workload{Scenario: "ramp?gmax=8;spike", Ops: 1 << 20},
//		Entries: []countq.Entry{{Counter: "atomic"}, {Counter: "sharded?shards=64"}},
//	}.Run()
//
// The same engine is exposed on the command line, including the campaign
// comparison, a one-flag parameter sweep, the scenario catalogue, and the
// benchjson perf regression gate:
//
//	go run ./cmd/countq list -v                               # experiments + protocols + tunables
//	go run ./cmd/countq scenarios -v                          # scenario catalogue + declared params
//	go run ./cmd/countq drive -counter sharded -queue swap -scenario 'ramp?gmax=8' -json
//	go run ./cmd/countq drive -counter sharded -sweep batch=16,64,256,1024
//	go run ./cmd/countq compare -scenario 'ramp;spike' atomic 'sharded?shards=64'
//	go run ./cmd/countq benchdiff -noise 0.10 BENCH_old.json BENCH_new.json
//
// Benchmarks in bench_test.go iterate the registry and sweep the declared
// tunables as named campaigns, so every registered implementation is
// measured — with cross-structure deltas — for free:
//
//	go test -bench=. -benchmem
//	go test -run TestBenchJSON -benchjson BENCH_now.json .    # tail-latency surface + deltas
//
// The cmd/countq, cmd/nntsp and cmd/bounds executables expose the same
// functionality on the command line, and examples/ holds runnable
// walkthroughs (quickstart, a spec-API sweep, the scenario engine, a
// campaign comparison, ordered multicast, distributed locking, a ticket
// office, and a topology atlas).
package repro
