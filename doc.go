// Package repro is a Go reproduction of Costas Busch and Srikanta
// Tirthapura, "Concurrent counting is harder than queuing" (IEEE IPDPS
// 2006; Theoretical Computer Science 411, 2010).
//
// The repository contains a synchronous message-passing network simulator
// implementing the paper's machine model, the arrow distributed queuing
// protocol, a portfolio of distributed counting protocols (central,
// aggregating tree, bitonic counting network), the nearest-neighbour TSP
// machinery behind the queuing upper bound, exact evaluators for the
// paper's lower bounds, and an experiment harness (E1–E16) that reproduces
// every theorem and figure as a measurable table. See DESIGN.md for the
// system inventory; `go run ./cmd/countq run all` regenerates the
// paper-versus-measured tables.
//
// # Quickstart: the countq registry and workload driver
//
// The public package repro/countq exposes the shared-memory counting and
// queuing structures behind one registry. Implementations self-register on
// import (database/sql style), so constructing one by name takes two
// lines:
//
//	import (
//		"repro/countq"
//
//		_ "repro/internal/shm" // register the shared-memory implementations
//	)
//
//	c, _ := countq.NewCounter("sharded") // or atomic | mutex | combining |
//	                                     // funnel | network | diffracting
//	q, _ := countq.NewQueue("swap")      // or list | mutex
//
// The workload driver runs the paper's counting-versus-queuing contrast
// over any registered pair — operation mix, arrival pattern, goroutine
// count and ops/duration budget are all configurable, and every run is
// validated (counts distinct and gap-free, predecessors one total order):
//
//	res, err := countq.Run(countq.Workload{
//		Counter:     "sharded",
//		Queue:       "swap",
//		Goroutines:  8,
//		Ops:         1 << 20,
//		CounterFrac: 0.5,
//		Arrival:     countq.Bursty,
//	})
//
// The same driver is exposed on the command line:
//
//	go run ./cmd/countq list                                  # experiments + registered protocols
//	go run ./cmd/countq drive -counter sharded -queue swap -g 8 -ops 1000000 -json
//
// Benchmarks in bench_test.go iterate the registry, so every registered
// implementation is measured for free:
//
//	go test -bench=. -benchmem
//	go test -run TestBenchJSON -benchjson BENCH_now.json .    # machine-readable sweep
//
// The cmd/countq, cmd/nntsp and cmd/bounds executables expose the same
// functionality on the command line, and examples/ holds runnable
// walkthroughs (quickstart, ordered multicast, distributed locking, a
// ticket office, and a topology atlas).
package repro
