// Package repro is a Go reproduction of Costas Busch and Srikanta
// Tirthapura, "Concurrent counting is harder than queuing" (IEEE IPDPS
// 2006; Theoretical Computer Science 411, 2010).
//
// The repository contains a synchronous message-passing network simulator
// implementing the paper's machine model, the arrow distributed queuing
// protocol, a portfolio of distributed counting protocols (central,
// aggregating tree, bitonic counting network), the nearest-neighbour TSP
// machinery behind the queuing upper bound, exact evaluators for the
// paper's lower bounds, and an experiment harness (E1–E12) that reproduces
// every theorem and figure as a measurable table. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-versus-measured results.
//
// Benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=. -benchmem
//
// The cmd/countq, cmd/nntsp and cmd/bounds executables expose the same
// functionality on the command line, and examples/ holds four runnable
// walkthroughs (quickstart, ordered multicast, distributed locking, and a
// topology atlas).
package repro
