// Package repro is a Go reproduction of Costas Busch and Srikanta
// Tirthapura, "Concurrent counting is harder than queuing" (IEEE IPDPS
// 2006; Theoretical Computer Science 411, 2010).
//
// The repository contains a synchronous message-passing network simulator
// implementing the paper's machine model, the arrow distributed queuing
// protocol, a portfolio of distributed counting protocols (central,
// aggregating tree, bitonic counting network), the nearest-neighbour TSP
// machinery behind the queuing upper bound, exact evaluators for the
// paper's lower bounds, and an experiment harness (E1–E16) that reproduces
// every theorem and figure as a measurable table. See DESIGN.md for the
// system inventory; `go run ./cmd/countq run all` regenerates the
// paper-versus-measured tables.
//
// # Quickstart: specs, the countq registry, and the workload driver
//
// The public package repro/countq exposes the shared-memory counting and
// queuing structures behind one registry. Implementations self-register on
// import (database/sql style) and are constructed from specs: a bare name
// builds the declared defaults, and a DSN-style parameter list tunes the
// knobs that control each structure's coordination cost — the quantity the
// paper's lower bound is about:
//
//	import (
//		"repro/countq"
//
//		_ "repro/internal/shm" // register the shared-memory implementations
//	)
//
//	c, _ := countq.NewCounter("sharded?shards=4&batch=16")
//	q, _ := countq.NewQueue("swap")
//
// Every parameter is declared by its implementation (CounterInfo.Params),
// so unknown keys and mistyped values are rejected, `countq list -v`
// prints the full catalogue, and Spec.With fans a base spec out into a
// sweep. Counters may also advertise two capability interfaces:
// HandleMaker (per-goroutine handles whose fast path is uncontended) and
// BatchIncrementer (IncN — a block of counts for one coordination round).
//
// The scenario engine runs the paper's counting-versus-queuing contrast
// over any registered pair — as one steady phase or as a registered
// scenario (steady, ramp, spike, mixshift, batched) whose phases reshape
// mix, contention, arrival and batching while the structures persist.
// Every run is validated once across all phases (counts distinct and
// gap-free, block grants included, predecessors one total order) and
// reports structured Metrics: per-phase latency quantiles
// (p50/p90/p99/p999/max) per op kind from log-bucketed histograms, a
// windowed throughput timeline, and per-worker fairness:
//
//	m, err := countq.Run(countq.Workload{
//		Counter:    "sharded?shards=4&batch=16",
//		Queue:      "swap",
//		Scenario:   "ramp?gmax=8",
//		Goroutines: 8,
//		Ops:        1 << 20,
//		Mix:        0.5,
//	})
//
// The same engine is exposed on the command line, including a one-flag
// parameter sweep and the scenario catalogue:
//
//	go run ./cmd/countq list -v                               # experiments + protocols + tunables
//	go run ./cmd/countq scenarios -v                          # scenario catalogue + declared params
//	go run ./cmd/countq drive -counter sharded -queue swap -scenario 'ramp?gmax=8' -json
//	go run ./cmd/countq drive -counter sharded -sweep batch=16,64,256,1024
//
// Benchmarks in bench_test.go iterate the registry and sweep the declared
// tunables, so every registered implementation is measured for free:
//
//	go test -bench=. -benchmem
//	go test -run TestBenchJSON -benchjson BENCH_now.json .    # machine-readable tail-latency surface
//
// The cmd/countq, cmd/nntsp and cmd/bounds executables expose the same
// functionality on the command line, and examples/ holds runnable
// walkthroughs (quickstart, a spec-API sweep, the scenario engine,
// ordered multicast, distributed locking, a ticket office, and a
// topology atlas).
package repro
