// Package repro is a Go reproduction of Costas Busch and Srikanta
// Tirthapura, "Concurrent counting is harder than queuing" (IEEE IPDPS
// 2006; Theoretical Computer Science 411, 2010).
//
// The repository contains a synchronous message-passing network simulator
// implementing the paper's machine model, the arrow distributed queuing
// protocol, a portfolio of distributed counting protocols (central,
// aggregating tree, bitonic counting network), the nearest-neighbour TSP
// machinery behind the queuing upper bound, exact evaluators for the
// paper's lower bounds, and an experiment harness (E1–E16) that reproduces
// every theorem and figure as a measurable table. See DESIGN.md for the
// system inventory; `go run ./cmd/countq run all` regenerates the
// paper-versus-measured tables.
//
// # Quickstart: sessions, structures, and the registry (core API v2)
//
// The public package repro/countq exposes every counting and queuing
// backend behind one registry of Structures. A Structure is a session
// factory; a Session is one worker's conversation with it, and
// Session.Inc(ctx) / Session.Enqueue(ctx, id) are the canonical
// operations — context-aware and fallible, so backends whose coordination
// round is not a synchronous shared-memory call (the message-passing sim
// bridge) are first-class citizens:
//
//	import (
//		"repro/countq"
//
//		_ "repro/internal/shm" // register the shared-memory zoo
//		_ "repro/internal/sim" // register the sim bridge (sim-counter, sim-queue)
//	)
//
//	st, _ := countq.NewStructure("sim-counter?hoplat=1us", countq.KindCounter)
//	sess, _ := st.NewSession()
//	defer sess.Close()
//	count, err := sess.Inc(ctx)
//
// Structures declare their kinds (counter, queue), construction params,
// and session capabilities in the registry: CapBatch sessions implement
// BatchSession (IncN block grants — a range of counts for one
// coordination round), CapAsync sessions implement AsyncSession
// (Submit/Completions — keep K operations in flight per worker, the
// pipeline that overlaps coordination rounds). Capabilities are demanded,
// not hinted: a workload that asks for Batch or Inflight against a
// structure without the capability is rejected before any goroutine runs.
//
// Legacy implementations register unchanged: RegisterCounter and
// RegisterQueue lift a Counter/Queuer (with its HandleMaker,
// BatchIncrementer and Drainer capability interfaces) into the structure
// registry through thin session adapters, probing and declaring its caps.
// NewCounter/NewQueue remain as the synchronous compatibility view.
//
// Migration, legacy → v2:
//
//	NewCounter(spec).Inc()            → NewStructure(spec, KindCounter); sess.Inc(ctx)
//	NewQueue(spec).Enqueue(id)        → NewStructure(spec, KindQueue); sess.Enqueue(ctx, id)
//	HandleMaker / CounterHandle       → NewSession / Session (handles are the sync special case)
//	BatchIncrementer.IncN(n)          → BatchSession.IncN(ctx, n)     [CapBatch]
//	(inexpressible)                   → AsyncSession.Submit/Completions [CapAsync]
//	Drainer.Drain()                   → DrainCounts(structure)
//	Counters() / Queues()             → Structures() (legacy listings remain, sync-view only)
//
// The scenario engine runs the paper's counting-versus-queuing contrast
// over any registered pair — as one steady phase or as a registered
// scenario (steady, ramp, spike, mixshift, batched) whose phases reshape
// mix, contention, arrival, batching and pipelining while the structures
// persist. Scenario specs compose with ';' ("ramp?gmax=8;spike"), with
// reserved per-segment weight and warmup parameters. Every run is
// validated once across all phases (counts distinct and gap-free, block
// grants included, predecessors one total order) and reports structured
// Metrics: per-phase latency quantiles (p50/p90/p99/p999/max) per op kind,
// coordinated-omission-corrected quantiles under open-loop arrivals
// (uniform, bursty) and async pipelining, a windowed throughput timeline,
// and per-worker fairness (the fairshare arrival pattern makes that number
// scheduler-independent on single-core hosts):
//
//	m, err := countq.Run(countq.Workload{
//		Counter:    "sim-counter?hoplat=1us",
//		Scenario:   "ramp?gmax=8",
//		Goroutines: 8,
//		Ops:        1 << 20,
//		Inflight:   16, // 16 ops outstanding per worker (CapAsync)
//	})
//
// The campaign layer runs several structure specs under one scenario's
// byte-identical phase sequence and a shared seed, returning per-structure
// Metrics plus delta ratios against a declared baseline, exportable as CSV
// or Markdown. Entries may declare per-entry Goroutines/Batch/Inflight
// overrides for asymmetric comparisons (batched vs unbatched, pipelined vs
// synchronous) at equal budgets:
//
//	cmp, err := countq.Campaign{
//		Base: countq.Workload{Scenario: "ramp?gmax=8", Ops: 1 << 20},
//		Entries: []countq.Entry{
//			{Counter: "sharded?shards=8"},
//			{Counter: "sim-counter?hoplat=1us"},
//			{Counter: "sim-counter?hoplat=1us", Inflight: 16},
//		},
//	}.Run()
//
// The same engine is exposed on the command line, including the campaign
// comparison (comma-separated specs and '@' per-entry overrides), the
// parameter sweep, the scenario catalogue, and the benchjson perf
// regression gate:
//
//	go run ./cmd/countq list -v                               # structures, kinds, caps, tunables
//	go run ./cmd/countq scenarios -v                          # scenario catalogue + declared params
//	go run ./cmd/countq drive -counter sim-counter -inflight 16 -scenario 'ramp?gmax=8' -json
//	go run ./cmd/countq compare "sharded?shards=8,sim-counter?hoplat=1us" -scenario "ramp?gmax=8"
//	go run ./cmd/countq compare -sweep shards=2,8,32 sharded
//	go run ./cmd/countq benchdiff -noise 0.10 BENCH_old.json BENCH_now.json
//
// Benchmarks in bench_test.go iterate the registry and sweep the declared
// tunables as named campaigns — including the bridge's async pipeline
// surface — so every registered implementation is measured, with
// cross-structure deltas, for free:
//
//	go test -bench=. -benchmem
//	go test -run TestBenchJSON -benchjson BENCH_now.json .    # tail-latency surface + deltas
//
// The measured invariants are also proved statically: cmd/countqlint runs
// the repo's own analyzers (internal/lint) over the tree — functions
// marked //countq:hotpath must be allocation-free with a declared clock
// budget, registry Params/Caps declarations must match what constructors
// read and sessions implement, sync/atomic fields must be accessed
// atomically everywhere, and exported context-taking methods must consult
// their context before blocking. Three interprocedural analyzers over a
// CHA call graph add the concurrency-protocol contracts: ringrole checks
// //countq:role=producer|consumer annotations against the ring methods
// each function can reach (one goroutine per SPSC side, lossless parks),
// grantlife proves every BridgeProtocol.Issue settles its grant token
// exactly once on every path, and simdet proves everything reachable
// from the simulator's round loop deterministic — no clocks, unseeded
// rand, map iteration, or goroutine/channel operations, so golden traces
// stay byte-identical by construction. CI runs
// `go run ./cmd/countqlint ./...` on every push (`-only a,b` selects
// analyzers); see DESIGN.md ("Static invariants") for the contract.
//
// The cmd/countq, cmd/nntsp and cmd/bounds executables expose the same
// functionality on the command line, and examples/ holds runnable
// walkthroughs (quickstart, a spec-API sweep, the scenario engine, a
// campaign comparison, the async sim bridge, ordered multicast,
// distributed locking, a ticket office, and a topology atlas).
package repro
