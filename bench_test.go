package repro_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/countq"
	"repro/internal/arrow"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/nntsp"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/tree"
)

// --- One benchmark per experiment table (E1–E12). Each bench runs the
// experiment exactly as the harness does (quick sizes so the full bench
// suite stays fast); the experiment functions validate the paper's
// invariants internally and fail the benchmark on any violation. -----------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec := core.Lookup(id)
	if spec == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := spec.Run(core.Config{Quick: true, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1CountingLowerBound(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2DiameterLowerBound(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3ArrowVsNNTSP(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4ListNNTSP(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE5TreeNNTSP(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE6HamiltonGraphs(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7MAryTrees(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8HighDiameter(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Star(b *testing.B)               { benchExperiment(b, "E9") }
func BenchmarkE10Fig1Semantics(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11SharedMemory(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Ablations(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkE13LongLived(b *testing.B)         { benchExperiment(b, "E13") }
func BenchmarkE14AsyncLinks(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15WorstCase(b *testing.B)         { benchExperiment(b, "E15") }
func BenchmarkE16Addition(b *testing.B)          { benchExperiment(b, "E16") }

// --- Protocol micro-benchmarks: the building blocks at fixed sizes. -------

func allReq(n int) []bool {
	r := make([]bool, n)
	for i := range r {
		r[i] = true
	}
	return r
}

func BenchmarkArrowOneShot(b *testing.B) {
	cases := []struct {
		name string
		g    *graph.Graph
		mk   func() *tree.Tree
	}{
		{"list256", graph.Path(256), func() *tree.Tree {
			order := make([]int, 256)
			for i := range order {
				order[i] = i
			}
			t, _ := tree.PathTree(order)
			return t
		}},
		{"hypercube8", graph.Hypercube(8), func() *tree.Tree {
			t, _ := tree.PathTree(graph.HypercubeHamiltonPath(8))
			return t
		}},
		{"binary255", graph.PerfectMAryTree(2, 8), func() *tree.Tree {
			t, _ := tree.BFSTree(graph.PerfectMAryTree(2, 8), 0)
			return t
		}},
	}
	for _, c := range cases {
		tr := c.mk()
		req := allReq(c.g.N())
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := arrow.RunOneShot(c.g, tr, tr.Root(), req, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTreeCount(b *testing.B) {
	for _, side := range []int{8, 16} {
		g := graph.Mesh(side, side)
		tr, err := tree.BFSTree(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		req := allReq(g.N())
		b.Run(fmt.Sprintf("mesh%dx%d", side, side), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc, err := counting.NewTreeCount(tr, req)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := counting.Run(g, tc, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCountingNetwork(b *testing.B) {
	g := graph.Complete(64)
	parent := make([]int, 64)
	for v := 1; v < 64; v++ {
		parent[v] = (v - 1) / 2
	}
	tr := tree.MustFromParents(0, parent)
	req := allReq(64)
	for _, w := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cn, err := counting.NewCountNet(tr, req, w, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := counting.Run(g, cn, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNNTSP(b *testing.B) {
	order := make([]int, 1024)
	for i := range order {
		order[i] = i
	}
	list, err := tree.PathTree(order)
	if err != nil {
		b.Fatal(err)
	}
	binary := tree.Perfect(2, 10)
	reqsOf := func(n int) []int {
		var reqs []int
		for v := 0; v < n; v += 2 {
			reqs = append(reqs, v)
		}
		return reqs
	}
	b.Run("list1024", func(b *testing.B) {
		reqs := reqsOf(1024)
		for i := 0; i < b.N; i++ {
			if _, err := nntsp.Greedy(list, reqs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary1023", func(b *testing.B) {
		reqs := reqsOf(binary.N())
		for i := 0; i < b.N; i++ {
			if _, err := nntsp.Greedy(binary, reqs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBitonicQuiescent(b *testing.B) {
	for _, w := range []int{8, 32} {
		bn, err := counting.Bitonic(w)
		if err != nil {
			b.Fatal(err)
		}
		in := make([]int, w)
		for i := range in {
			in[i] = 16
		}
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bn.Quiescent(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Shared-memory structures under real parallelism (RunParallel). -------
// The rosters come from the countq registry (populated by importing
// internal/shm), so every newly registered implementation is benchmarked
// without touching this file.

func BenchmarkShmCounters(b *testing.B) {
	for _, info := range countq.Counters() {
		info := info
		b.Run(info.Name, func(b *testing.B) {
			c, err := info.New(countq.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					c.Inc()
				}
			})
		})
	}
}

// tunableSpecs are the canonical non-default parameterizations swept by
// the benchmarks and by TestBenchJSON, shared with E11 and enforced
// complete (and free of stale names) by internal/shm's registry
// round-trip test — so the recorded numbers trace a perf surface over the
// coordination knobs instead of a single default point.
var tunableSpecs = shm.VariantSpecs()

// BenchmarkShmCounterTunables sweeps the declared tunables of every
// parameterized counter via the public spec API.
func BenchmarkShmCounterTunables(b *testing.B) {
	for _, info := range countq.Counters() {
		for _, spec := range tunableSpecs[info.Name] {
			spec := spec
			b.Run(spec, func(b *testing.B) {
				c, err := countq.NewCounter(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						c.Inc()
					}
				})
			})
		}
	}
}

// BenchmarkShmCounterBatch measures the IncN batching escape hatch on the
// counters that grant blocks in one coordination round.
func BenchmarkShmCounterBatch(b *testing.B) {
	for _, name := range []string{"atomic", "mutex", "sharded"} {
		name := name
		for _, n := range []int64{16, 256} {
			n := n
			b.Run(fmt.Sprintf("%s/n%d", name, n), func(b *testing.B) {
				c, err := countq.NewCounter(name)
				if err != nil {
					b.Fatal(err)
				}
				bi, ok := c.(countq.BatchIncrementer)
				if !ok {
					b.Fatalf("%s does not implement BatchIncrementer", name)
				}
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						bi.IncN(n)
					}
				})
			})
		}
	}
}

// BenchmarkSessionCounters measures the session layer's overhead over the
// raw Counter interface: each parallel worker drives one Session (the
// handle fast path included, where the structure has one) through the
// context-taking v2 API.
func BenchmarkSessionCounters(b *testing.B) {
	for _, name := range []string{"atomic", "sharded", "async-funnel"} {
		name := name
		st, err := countq.NewStructure(name, countq.KindCounter)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			ctx := context.Background()
			b.RunParallel(func(pb *testing.PB) {
				sess, err := st.NewSession()
				if err != nil {
					b.Error(err)
					return
				}
				defer sess.Close()
				for pb.Next() {
					if _, err := sess.Inc(ctx); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkSimBridge measures the bridge's free-running round trip — the
// simulation and pump overhead with hop latency taken out — synchronously
// and through an 8-deep async pipeline.
func BenchmarkSimBridge(b *testing.B) {
	for _, bc := range []struct {
		name     string
		inflight int
	}{{"sync", 0}, {"inflight8", 8}} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			st, err := countq.NewStructure("sim-counter?hoplat=0", countq.KindCounter)
			if err != nil {
				b.Fatal(err)
			}
			defer st.(io.Closer).Close()
			sess, err := st.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			ctx := context.Background()
			if bc.inflight == 0 {
				for i := 0; i < b.N; i++ {
					if _, err := sess.Inc(ctx); err != nil {
						b.Fatal(err)
					}
				}
				return
			}
			as := sess.(countq.AsyncSession)
			outstanding := 0
			for i := 0; i < b.N; i++ {
				for outstanding >= bc.inflight {
					if c := <-as.Completions(); c.Err != nil {
						b.Fatal(c.Err)
					}
					outstanding--
				}
				if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
					b.Fatal(err)
				}
				outstanding++
			}
			for outstanding > 0 {
				if c := <-as.Completions(); c.Err != nil {
					b.Fatal(c.Err)
				}
				outstanding--
			}
		})
	}
}

// grantAtIssueProto grants every operation the moment Issue runs, routing
// zero messages — a round trip through it exercises only the bridge
// transport: submit-lane push, pump lane sweep, grant-ring (or completion
// buffer) return and the session's spin-then-park wait. BenchmarkSimBridge
// minus this is the cost of the protocol's simulated rounds; this alone is
// the transport floor the ring rewrite is gated on, and it must stay at
// 0 B/op.
type grantAtIssueProto struct {
	grants sim.Grants
	next   int64
}

func (p *grantAtIssueProto) Start(*sim.Env, int) {}

func (p *grantAtIssueProto) Issue(env *sim.Env, node int, token int, op countq.Op) {
	p.next++
	p.grants.Grant(token, p.next)
}

func (p *grantAtIssueProto) Deliver(*sim.Env, int, sim.Message) {}

// BenchmarkBridgeTransport measures the bridge transport in isolation —
// the protocol grants at Issue, so no simulated message ever travels —
// synchronously and through an 8-deep async pipeline.
func BenchmarkBridgeTransport(b *testing.B) {
	for _, bc := range []struct {
		name     string
		inflight int
	}{{"sync", 0}, {"inflight8", 8}} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			br, err := sim.NewBridge(sim.BridgeConfig{
				HopLat: 0,
				Proto: func(g *graph.Graph, tr *tree.Tree, grants sim.Grants) (sim.BridgeProtocol, error) {
					return &grantAtIssueProto{grants: grants}, nil
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer br.Close()
			sess, err := br.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			ctx := context.Background()
			if bc.inflight == 0 {
				// Warm the lane, grant ring and park/wake state so the
				// steady state is what gets timed.
				for i := 0; i < 64; i++ {
					if _, err := sess.Inc(ctx); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sess.Inc(ctx); err != nil {
						b.Fatal(err)
					}
				}
				return
			}
			as := sess.(countq.AsyncSession)
			for i := 0; i < 64; i++ {
				if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
					b.Fatal(err)
				}
				if c := <-as.Completions(); c.Err != nil {
					b.Fatal(c.Err)
				}
			}
			b.ResetTimer()
			outstanding := 0
			for i := 0; i < b.N; i++ {
				for outstanding >= bc.inflight {
					if c := <-as.Completions(); c.Err != nil {
						b.Fatal(c.Err)
					}
					outstanding--
				}
				if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
					b.Fatal(err)
				}
				outstanding++
			}
			for outstanding > 0 {
				if c := <-as.Completions(); c.Err != nil {
					b.Fatal(c.Err)
				}
				outstanding--
			}
		})
	}
}

// echoProto saturates a star: the hub echoes every message back to its
// sender and each leaf immediately re-requests, so every round moves
// 2*(n-1) messages through the engine's deliver/receive/send machinery
// with no protocol logic on top. The Step loop it drives is the engine's
// scheduling-and-queueing floor — the number the engine-v2 rewrite is
// gated on (rounds/sec and msgs/sec at zero hop latency).
type echoProto struct{ hub int }

func (p echoProto) Start(env *sim.Env, node int) {
	if node != p.hub {
		env.Send(node, p.hub, sim.Message{From: node, To: p.hub, Kind: 1})
	}
}

func (p echoProto) Deliver(env *sim.Env, node int, m sim.Message) {
	env.Send(node, m.From, sim.Message{From: node, To: m.From, Kind: 1})
}

func BenchmarkSimEngineStep(b *testing.B) {
	for _, bc := range []struct {
		name  string
		n     int
		delay sim.DelayModel
	}{
		{"star9-unit", 9, nil},
		{"star9-jitter3", 9, sim.JitterDelay{Seed: 1, Max: 3}},
		{"star33-unit", 33, nil},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			g := graph.Star(bc.n)
			nw := sim.New(sim.Config{Graph: g, Capacity: bc.n - 1, Delay: bc.delay}, echoProto{hub: 0})
			if err := nw.Begin(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := nw.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "rounds/sec")
				b.ReportMetric(float64(2*(bc.n-1))*float64(b.N)/secs, "msgs/sec")
			}
		})
	}
}

func BenchmarkShmLocks(b *testing.B) {
	b.Run("clh", func(b *testing.B) {
		l := shm.NewCLHLock()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h := l.Lock()
				l.Unlock(h)
			}
		})
	})
	b.Run("mcs", func(b *testing.B) {
		l := shm.NewMCSLock()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h := l.Lock()
				l.Unlock(h)
			}
		})
	})
}

func BenchmarkShmQueuers(b *testing.B) {
	for _, info := range countq.Queues() {
		info := info
		b.Run(info.Name, func(b *testing.B) {
			q, err := info.New(countq.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				id := int64(0)
				for pb.Next() {
					q.Enqueue(id)
					id++
				}
			})
		})
	}
}

// --- Machine-readable perf trajectory. -------------------------------------

// benchJSON, when set, makes TestBenchJSON sweep every registered counter
// and queuer — at defaults, over the declared tunables (tunableSpecs),
// through the IncN batching path, and through the canonical `ramp`
// scenario — as named campaigns through the countq campaign API, writing
// the validated Comparisons as JSON (e.g. BENCH_2026_07.json). Each record
// carries full Metrics per structure — latency quantiles
// (p50/p90/p99/p999/max) per op kind, a windowed throughput timeline,
// per-phase worker fairness — plus delta ratios against the campaign's
// baseline (atomic for counting, swap for queuing), so successive PRs
// track a *tail-latency surface with cross-structure deltas* over the
// coordination knobs and contention levels, not a table of means.
// `countq benchdiff` consumes two such files as the perf regression gate:
//
//	go test -run TestBenchJSON -benchjson BENCH_now.json .
//	go run ./cmd/countq benchdiff BENCH_2026_07.json BENCH_now.json
//
// -benchops shrinks the per-run budget for smoke runs (CI uses a tiny one).
var (
	benchJSON = flag.String("benchjson", "", "write registry-wide campaign comparisons to this JSON file")
	benchOps  = flag.Int("benchops", 50000, "operation budget per TestBenchJSON run")
)

func TestBenchJSON(t *testing.T) {
	if *benchJSON == "" {
		t.Skip("no -benchjson output path given")
	}
	type sweep struct {
		GoMaxProcs  int                  `json:"gomaxprocs"`
		Ops         int                  `json:"ops_per_run"`
		Comparisons []*countq.Comparison `json:"comparisons"`
	}
	ops := *benchOps
	out := sweep{GoMaxProcs: runtime.GOMAXPROCS(0), Ops: ops}
	run := func(c countq.Campaign) {
		t.Helper()
		c.Base.Ops, c.Base.Seed = ops, 1
		cmp, err := c.Run()
		if err != nil {
			t.Fatalf("campaign %s: %v", c.Name, err)
		}
		for i := range cmp.Results {
			m := cmp.Results[i].Metrics
			if m.Aggregate.CounterLat == nil && m.Aggregate.QueueLat == nil {
				t.Fatalf("campaign %s %s: no latency distribution recorded", c.Name, cmp.Results[i].Label)
			}
		}
		out.Comparisons = append(out.Comparisons, cmp)
	}
	// The ramp ceiling caps at 8 so the recorded surface is comparable
	// across machines with different core counts.
	gmax := runtime.GOMAXPROCS(0)
	if gmax > 8 {
		gmax = 8
	}
	ramp := fmt.Sprintf("ramp?gmax=%d", gmax)
	// The entry rosters come straight from the registry; the loops below
	// only collect entries — every run goes through the campaign API, so
	// each record carries deltas against the declared baseline.
	steady := countq.Campaign{Name: "counters-steady"}
	rampC := countq.Campaign{Name: "counters-ramp", Base: countq.Workload{Scenario: ramp, Goroutines: gmax}}
	batch := countq.Campaign{Name: "counters-batch", Base: countq.Workload{Batch: 64}}
	for _, info := range countq.Counters() {
		if info.Name == "atomic" {
			steady.Baseline = len(steady.Entries)
			rampC.Baseline = len(rampC.Entries)
		}
		steady.Entries = append(steady.Entries, countq.Entry{Counter: info.Name})
		rampC.Entries = append(rampC.Entries, countq.Entry{Counter: info.Name})
		for _, spec := range tunableSpecs[info.Name] {
			steady.Entries = append(steady.Entries, countq.Entry{Counter: spec})
		}
		if c, err := countq.NewCounter(info.Name); err == nil {
			if _, ok := c.(countq.BatchIncrementer); ok {
				// Baseline index keyed to the entry actually appended, so
				// it cannot silently drift if a structure's capability set
				// changes.
				if info.Name == "atomic" {
					batch.Baseline = len(batch.Entries)
				}
				batch.Entries = append(batch.Entries, countq.Entry{Counter: info.Name})
			}
		}
	}
	queues := countq.Campaign{Name: "queues-steady"}
	queuesRamp := countq.Campaign{Name: "queues-ramp", Base: countq.Workload{Scenario: ramp, Goroutines: gmax}}
	for _, info := range countq.Queues() {
		if info.Name == "swap" {
			queues.Baseline = len(queues.Entries)
			queuesRamp.Baseline = len(queuesRamp.Entries)
		}
		queues.Entries = append(queues.Entries, countq.Entry{Queue: info.Name})
		queuesRamp.Entries = append(queuesRamp.Entries, countq.Entry{Queue: info.Name})
	}
	// The sim bridge's perf surface: the synchronous round trip as the
	// baseline, against deepening async pipelines — recorded so the file
	// tracks how much of the coordination round pipelining recovers. The
	// bridge has no legacy view, so it never appears in the registry
	// campaigns above; this one names it explicitly.
	async := countq.Campaign{
		Name: "counters-async",
		Entries: []countq.Entry{
			{Counter: "sim-counter?hoplat=200ns"},
			{Counter: "sim-counter?hoplat=200ns", Inflight: 8},
			{Counter: "sim-counter?hoplat=200ns", Inflight: 32},
		},
	}
	// The native combining backends: the synchronous combining funnel as
	// the baseline against the natively-async funnel, synchronous and
	// pipelined. Open (uniform) arrivals so the corrected quantiles are
	// recorded — the async entry's claim is precisely that overlapping
	// the combining round improves completion-vs-intended tail latency,
	// which a closed loop cannot see. Like the sim bridge, these register
	// through RegisterStructure only, so the legacy rosters above never
	// pick them up.
	nativeAsync := countq.Campaign{
		Name: "counters-native-async",
		Base: countq.Workload{Arrival: countq.Uniform},
		Entries: []countq.Entry{
			{Counter: "funnel"},
			{Counter: "async-funnel"},
			{Counter: "async-funnel", Inflight: 8},
		},
	}
	queuesNative := countq.Campaign{
		Name: "queues-native-async",
		Base: countq.Workload{Arrival: countq.Uniform},
		Entries: []countq.Entry{
			{Queue: "swap"},
			{Queue: "elim"},
			{Queue: "elim", Inflight: 8},
		},
	}
	// The paper's separation end-to-end: the central protocol against the
	// distributed arrow queue and the combining-tree counter under the
	// identical ramp, with the hop as the cost unit. The entries are
	// cross-kind on purpose — counting priced against queuing under one
	// phase sequence is the paper's question; latency ratios across kinds
	// are omitted, ns/op and throughput ratios carry the comparison.
	simProtocols := countq.Campaign{
		Name: "sim-protocols-ramp",
		Base: countq.Workload{Scenario: ramp, Goroutines: gmax},
		Entries: []countq.Entry{
			{Counter: "sim-counter?hoplat=200ns"},
			{Queue: "sim-arrow-queue?hoplat=200ns"},
			{Counter: "sim-tree-counter?hoplat=200ns"},
		},
	}
	for _, c := range []countq.Campaign{steady, rampC, batch, queues, queuesRamp, async, nativeAsync, queuesNative, simProtocols} {
		run(c)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d campaign comparisons to %s", len(out.Comparisons), *benchJSON)
}
