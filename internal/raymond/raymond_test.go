package raymond

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/tree"
)

func pathTree(t *testing.T, n int) (*graph.Graph, *tree.Tree) {
	t.Helper()
	g := graph.Path(n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	tr, err := tree.PathTree(order)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr
}

func TestSingleRequestAtTokenHolder(t *testing.T) {
	g, tr := pathTree(t, 5)
	p, _, err := Run(g, tr, 2, 3, []Request{{Node: 2, Time: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Acquired(0) != 0 {
		t.Errorf("acquired at %d, want 0 (token already local)", p.Acquired(0))
	}
	if p.Released(0) != 3 {
		t.Errorf("released at %d, want 3", p.Released(0))
	}
}

func TestSingleRemoteRequest(t *testing.T) {
	g, tr := pathTree(t, 6)
	// Token at 0, request at 5: REQUEST travels 5 hops, TOKEN 5 back.
	p, _, err := Run(g, tr, 0, 2, []Request{{Node: 5, Time: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Latency(0) != 10 {
		t.Errorf("latency = %d, want 10", p.Latency(0))
	}
}

func TestConcurrentRequestsAllServed(t *testing.T) {
	g := graph.PerfectMAryTree(2, 5)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 20; k++ {
		reqs = append(reqs, Request{Node: rng.Intn(g.N()), Time: 0})
	}
	p, _, err := Run(g, tr, 0, 2, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of latencies is positive and every op was served (Verify ran).
	total := 0
	for op := range reqs {
		total += p.Latency(op)
	}
	if total <= 0 {
		t.Error("no latency accumulated")
	}
}

func TestRepeatRequestsSameNode(t *testing.T) {
	g, tr := pathTree(t, 4)
	reqs := []Request{{Node: 3, Time: 0}, {Node: 3, Time: 0}, {Node: 3, Time: 1}}
	p, _, err := Run(g, tr, 0, 1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Served in FIFO order: acquisitions strictly increase.
	if !(p.Acquired(0) < p.Acquired(1) && p.Acquired(1) < p.Acquired(2)) {
		t.Errorf("acquisitions not ordered: %d, %d, %d", p.Acquired(0), p.Acquired(1), p.Acquired(2))
	}
}

func TestValidation(t *testing.T) {
	_, tr := pathTree(t, 4)
	if _, err := New(tr, 9, 1, nil); err == nil {
		t.Error("bad token node accepted")
	}
	if _, err := New(tr, 0, 0, nil); err == nil {
		t.Error("zero-length CS accepted")
	}
	if _, err := New(tr, 0, 1, []Request{{Node: -1}}); err == nil {
		t.Error("bad request node accepted")
	}
	if _, err := New(tr, 0, 1, []Request{{Node: 1, Time: -1}}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestStaggeredLoad(t *testing.T) {
	g := graph.Mesh(4, 4)
	tr, err := tree.BFSTree(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	rng := rand.New(rand.NewSource(77))
	for k := 0; k < 30; k++ {
		reqs = append(reqs, Request{Node: rng.Intn(16), Time: rng.Intn(60)})
	}
	if _, _, err := Run(g, tr, 5, 3, reqs); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMutualExclusionAndCompleteness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr := tree.MustFromParents(0, parent)
		b := graph.NewBuilder("rt", n)
		for v := 1; v < n; v++ {
			b.MustAddEdge(v, parent[v])
		}
		g := b.Build()
		var reqs []Request
		for k := 0; k < rng.Intn(25); k++ {
			reqs = append(reqs, Request{Node: rng.Intn(n), Time: rng.Intn(20)})
		}
		_, _, err := Run(g, tr, rng.Intn(n), 1+rng.Intn(3), reqs)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
