// Package raymond implements Raymond's tree-based token algorithm for
// distributed mutual exclusion (ACM TOCS 1989) — reference [9] of Busch &
// Tirthapura and the origin of the path-reversal idea behind the arrow
// protocol.
//
// A single privilege token lives at one node of a spanning tree. Every node
// keeps a holder pointer toward the token and a FIFO queue of directions
// (neighbors, or itself) that want the token. Requests travel toward the
// token; the token travels back along the request trail, draining queues in
// FIFO order. The package runs the algorithm on the synchronous simulator,
// verifies mutual exclusion and completeness, and reports per-request
// acquisition latencies.
package raymond

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Message kinds.
const (
	kindRequest = iota + 1
	kindToken
)

// Request asks for one critical section at node Node starting no earlier
// than round Time.
type Request struct {
	Node, Time int
}

// Protocol is one Raymond execution. Construct with New and run under
// sim.New; then read Acquired/Released per request.
type Protocol struct {
	tree     *tree.Tree
	reqs     []Request
	csRounds int

	byTime map[int][]int
	lastT  int

	holder []int
	asked  []bool
	queue  [][]int // FIFO of directions; -1 means "self"
	using  []bool
	until  []int

	pendingOps [][]int // per node: op ids awaiting their critical section
	runningOp  []int   // per node: op currently in its critical section
	acquired   []int   // per op
	released   []int   // per op
	inCS       int     // global CS occupancy, for the safety check
	maxInCS    int
	timerMax   int
}

// New prepares a Raymond run: the token starts at tokenAt, each critical
// section lasts csRounds (≥ 1).
func New(t *tree.Tree, tokenAt, csRounds int, reqs []Request) (*Protocol, error) {
	n := t.N()
	if tokenAt < 0 || tokenAt >= n {
		return nil, fmt.Errorf("raymond: token node %d out of range", tokenAt)
	}
	if csRounds < 1 {
		return nil, fmt.Errorf("raymond: critical section must last ≥ 1 round, got %d", csRounds)
	}
	router := t.NewRouter()
	p := &Protocol{
		tree:       t,
		reqs:       append([]Request(nil), reqs...),
		csRounds:   csRounds,
		byTime:     make(map[int][]int),
		holder:     make([]int, n),
		asked:      make([]bool, n),
		queue:      make([][]int, n),
		using:      make([]bool, n),
		until:      make([]int, n),
		pendingOps: make([][]int, n),
		runningOp:  make([]int, n),
		acquired:   make([]int, len(reqs)),
		released:   make([]int, len(reqs)),
	}
	for op, r := range p.reqs {
		if r.Node < 0 || r.Node >= n {
			return nil, fmt.Errorf("raymond: request %d node %d out of range", op, r.Node)
		}
		if r.Time < 0 {
			return nil, fmt.Errorf("raymond: request %d time negative", op)
		}
		p.byTime[r.Time] = append(p.byTime[r.Time], op)
		if r.Time > p.lastT {
			p.lastT = r.Time
		}
		p.acquired[op] = -1
		p.released[op] = -1
	}
	for v := 0; v < n; v++ {
		if v == tokenAt {
			p.holder[v] = v
		} else {
			p.holder[v] = router.NextHop(v, tokenAt)
		}
	}
	return p, nil
}

// PendingUntil implements sim.Scheduler: the protocol stays live until the
// last scheduled request and the end of any running critical section.
func (p *Protocol) PendingUntil() int {
	if p.timerMax > p.lastT {
		return p.timerMax
	}
	return p.lastT
}

// Start issues round-zero requests.
func (p *Protocol) Start(env *sim.Env, node int) {
	p.issueDue(env, node)
}

// Tick issues due requests and ends expired critical sections.
func (p *Protocol) Tick(env *sim.Env, node int) {
	if p.using[node] && env.Round() >= p.until[node] {
		p.exitCS(env, node)
	}
	p.issueDue(env, node)
}

func (p *Protocol) issueDue(env *sim.Env, node int) {
	for _, op := range p.byTime[env.Round()] {
		if p.reqs[op].Node != node {
			continue
		}
		p.pendingOps[node] = append(p.pendingOps[node], op)
		p.queue[node] = append(p.queue[node], -1) // self entry
		p.makeProgress(env, node)
	}
}

// makeProgress runs Raymond's two standard steps at node: assign the
// privilege if we hold a free token and someone queues, and ask for the
// token if we queue but do not hold it.
func (p *Protocol) makeProgress(env *sim.Env, node int) {
	if p.holder[node] == node && !p.using[node] && len(p.queue[node]) > 0 {
		head := p.queue[node][0]
		p.queue[node] = p.queue[node][1:]
		if head == -1 {
			p.enterCS(env, node)
		} else {
			p.holder[node] = head
			p.asked[node] = false
			env.Send(node, head, sim.Message{Kind: kindToken})
			if len(p.queue[node]) > 0 {
				env.Send(node, head, sim.Message{Kind: kindRequest})
				p.asked[node] = true
			}
		}
	}
	if p.holder[node] != node && len(p.queue[node]) > 0 && !p.asked[node] {
		env.Send(node, p.holder[node], sim.Message{Kind: kindRequest})
		p.asked[node] = true
	}
}

func (p *Protocol) enterCS(env *sim.Env, node int) {
	if len(p.pendingOps[node]) == 0 {
		env.Fail(fmt.Errorf("raymond: node %d granted privilege with no pending op", node))
		return
	}
	op := p.pendingOps[node][0]
	p.pendingOps[node] = p.pendingOps[node][1:]
	p.using[node] = true
	p.until[node] = env.Round() + p.csRounds
	if p.until[node] > p.timerMax {
		p.timerMax = p.until[node]
	}
	p.acquired[op] = env.Round()
	p.inCS++
	if p.inCS > p.maxInCS {
		p.maxInCS = p.inCS
	}
	if p.inCS > 1 {
		env.Fail(fmt.Errorf("raymond: mutual exclusion violated: %d nodes in CS", p.inCS))
	}
	// Remember which op is running so exitCS can record it.
	p.runningOp[node] = op
}

func (p *Protocol) exitCS(env *sim.Env, node int) {
	p.using[node] = false
	p.inCS--
	p.released[p.runningOp[node]] = env.Round()
	p.makeProgress(env, node)
}

// Deliver handles request and token messages.
func (p *Protocol) Deliver(env *sim.Env, node int, m sim.Message) {
	switch m.Kind {
	case kindRequest:
		p.queue[node] = append(p.queue[node], m.From)
		p.makeProgress(env, node)
	case kindToken:
		p.holder[node] = node
		p.asked[node] = false
		p.makeProgress(env, node)
	default:
		env.Fail(fmt.Errorf("raymond: unexpected kind %d", m.Kind))
	}
}

// Acquired returns the round op entered its critical section, or -1.
func (p *Protocol) Acquired(op int) int { return p.acquired[op] }

// Released returns the round op left its critical section, or -1.
func (p *Protocol) Released(op int) int { return p.released[op] }

// Latency returns acquisition round minus request round, or -1.
func (p *Protocol) Latency(op int) int {
	if p.acquired[op] < 0 {
		return -1
	}
	return p.acquired[op] - p.reqs[op].Time
}

// Verify checks that every request entered and left its critical section
// and that no two critical sections ever overlapped.
func (p *Protocol) Verify() error {
	for op := range p.reqs {
		if p.acquired[op] < 0 {
			return fmt.Errorf("raymond: op %d never acquired", op)
		}
		if p.released[op] < 0 {
			return fmt.Errorf("raymond: op %d never released", op)
		}
		if p.released[op]-p.acquired[op] != p.csRounds {
			return fmt.Errorf("raymond: op %d held for %d rounds, want %d", op, p.released[op]-p.acquired[op], p.csRounds)
		}
	}
	if p.maxInCS > 1 {
		return fmt.Errorf("raymond: %d nodes were in the CS simultaneously", p.maxInCS)
	}
	return nil
}

// Run executes the protocol on g and verifies it.
func Run(g *graph.Graph, t *tree.Tree, tokenAt, csRounds int, reqs []Request) (*Protocol, sim.Stats, error) {
	p, err := New(t, tokenAt, csRounds, reqs)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	if err := t.IsSpanningOf(g); err != nil {
		return nil, sim.Stats{}, err
	}
	stats, err := sim.New(sim.Config{Graph: g}, p).Run()
	if err != nil {
		return nil, stats, err
	}
	if err := p.Verify(); err != nil {
		return nil, stats, err
	}
	return p, stats, nil
}
