package raymond

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

func TestRaymondUnderJitter(t *testing.T) {
	// Mutual exclusion and completeness must survive asynchronous links.
	g := graph.PerfectMAryTree(2, 5)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	var reqs []Request
	for k := 0; k < 15; k++ {
		reqs = append(reqs, Request{Node: rng.Intn(g.N()), Time: rng.Intn(30)})
	}
	p, err := New(tr, 0, 2, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Graph: g, Delay: sim.JitterDelay{Seed: 12, Max: 4}}
	if _, err := sim.New(cfg, p).Run(); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRaymondHotSpotIsOnTokenPath(t *testing.T) {
	// With all requests at one leaf and the token at the root, the
	// traffic concentrates on the root–leaf path.
	g := graph.Path(8)
	order := []int{0, 1, 2, 3, 4, 5, 6, 7}
	tr, err := tree.PathTree(order)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{{Node: 7, Time: 0}, {Node: 7, Time: 1}, {Node: 7, Time: 2}}
	p, err := New(tr, 0, 1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Graph: g, TrackPerNode: true}
	stats, err := sim.New(cfg, p).Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	// Raymond sends exactly one REQUEST toward the token for the three
	// queued ops at node 7 (asked-flag suppression) until the token
	// moves; the token then travels once and serves all three locally.
	if stats.MessagesSent > 20 {
		t.Errorf("messages = %d; asked-flag suppression seems broken", stats.MessagesSent)
	}
	if p.Acquired(2) <= p.Acquired(1) || p.Acquired(1) <= p.Acquired(0) {
		t.Error("local FIFO broken")
	}
}
