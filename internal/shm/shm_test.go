package shm

import (
	"sync"
	"testing"
)

func counters(t *testing.T) map[string]Counter {
	t.Helper()
	nc, err := NewNetworkCounter(8)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Counter{
		"atomic":    NewAtomicCounter(),
		"mutex":     NewMutexCounter(),
		"combining": NewCombiningCounter(64),
		"network":   nc,
	}
}

func TestCountersSequential(t *testing.T) {
	for name, c := range counters(t) {
		var got []int64
		for i := 0; i < 100; i++ {
			got = append(got, c.Inc())
		}
		if err := ValidateCounts(got); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCountersConcurrent(t *testing.T) {
	const goroutines, opsPerG = 8, 200
	for name, c := range counters(t) {
		results := make([][]int64, goroutines)
		var wg sync.WaitGroup
		for gi := 0; gi < goroutines; gi++ {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				vals := make([]int64, opsPerG)
				for i := range vals {
					vals[i] = c.Inc()
				}
				results[gi] = vals
			}(gi)
		}
		wg.Wait()
		var all []int64
		for _, vs := range results {
			all = append(all, vs...)
		}
		if err := ValidateCounts(all); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestNetworkCounterWidths(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		nc, err := NewNetworkCounter(w)
		if err != nil {
			t.Fatal(err)
		}
		var got []int64
		for i := 0; i < 3*w+5; i++ {
			got = append(got, nc.Inc())
		}
		if err := ValidateCounts(got); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
	if _, err := NewNetworkCounter(6); err == nil {
		t.Error("non-power width accepted")
	}
}

func queuers() map[string]Queuer {
	return map[string]Queuer{
		"swap":  NewSwapQueue(),
		"mutex": NewMutexQueue(),
		"list":  NewListQueue(),
	}
}

func TestQueuersSequential(t *testing.T) {
	for name, q := range queuers() {
		var ids, preds []int64
		for i := int64(0); i < 50; i++ {
			ids = append(ids, i)
			preds = append(preds, q.Enqueue(i))
		}
		if err := ValidateOrder(ids, preds); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Sequential enqueues must chain in order.
		if preds[0] != Head || preds[7] != 6 {
			t.Errorf("%s: sequential preds wrong: %v", name, preds[:8])
		}
	}
}

func TestQueuersConcurrent(t *testing.T) {
	const goroutines, opsPerG = 8, 200
	for name, q := range queuers() {
		m, err := MeasureQueuer(name, q, goroutines, opsPerG)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.Ops != goroutines*opsPerG {
			t.Errorf("%s: ops = %d", name, m.Ops)
		}
	}
}

func TestMeasureCounterValidates(t *testing.T) {
	m, err := MeasureCounter("atomic", NewAtomicCounter(), 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops != 400 || m.NsPerOp() <= 0 {
		t.Errorf("measurement: %+v", m)
	}
}

func TestValidateCountsRejects(t *testing.T) {
	if err := ValidateCounts([]int64{1, 2, 2}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := ValidateCounts([]int64{0, 1, 2}); err == nil {
		t.Error("zero accepted")
	}
	if err := ValidateCounts([]int64{1, 2, 4}); err == nil {
		t.Error("gap accepted")
	}
	if err := ValidateCounts(nil); err != nil {
		t.Error("empty rejected")
	}
}

func TestValidateOrderRejects(t *testing.T) {
	if err := ValidateOrder([]int64{0, 1}, []int64{Head, Head}); err == nil {
		t.Error("double head accepted")
	}
	if err := ValidateOrder([]int64{0, 1}, []int64{Head}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Cycle: 0←1, 1←0 with no head.
	if err := ValidateOrder([]int64{0, 1}, []int64{1, 0}); err == nil {
		t.Error("cycle accepted")
	}
	if err := ValidateOrder([]int64{0, 1, 2}, []int64{Head, 0, 1}); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
}

func TestMeasurementZeroOps(t *testing.T) {
	if (Measurement{}).NsPerOp() != 0 {
		t.Error("zero-op measurement should report 0")
	}
}
