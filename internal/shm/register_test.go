package shm

import (
	"testing"

	"repro/countq"
)

// TestRegistryRoundTrip proves every registered structure constructs and
// validates through the public spec API, both at declared defaults and —
// for every structure with params — at every canonical non-default
// variant (VariantSpecs, shared with E11 and the benchmarks). Runs under
// -race in CI, so this is also the zoo-wide concurrency check for the
// spec-constructed configurations.
func TestRegistryRoundTrip(t *testing.T) {
	variants := VariantSpecs()
	counterNames := make(map[string]bool)
	for _, info := range countq.Counters() {
		counterNames[info.Name] = true
		res, err := countq.Run(countq.Workload{Counter: info.Name, Goroutines: 4, Ops: 2000, Seed: 1})
		if err != nil {
			t.Errorf("%s at defaults: %v", info.Name, err)
		} else if res.Aggregate.CounterOps != 2000 {
			t.Errorf("%s at defaults: %d ops", info.Name, res.Aggregate.CounterOps)
		}
		specs := variants[info.Name]
		if len(info.Params) > 0 && len(specs) == 0 {
			t.Errorf("%s declares params but has no variant in VariantSpecs", info.Name)
			continue
		}
		for _, spec := range specs {
			// The variant must really be parameterized, not a stale bare name.
			s, err := countq.ParseSpec(spec)
			if err != nil || s.Name != info.Name || s.Options.Len() == 0 {
				t.Errorf("VariantSpecs[%s] entry %q is not a parameterized spec of that structure", info.Name, spec)
				continue
			}
			res, err := countq.Run(countq.Workload{Counter: spec, Goroutines: 4, Ops: 2000, Seed: 1})
			if err != nil {
				t.Errorf("%s: %v", spec, err)
			} else if res.Aggregate.CounterOps != 2000 {
				t.Errorf("%s: %d ops", spec, res.Aggregate.CounterOps)
			}
		}
	}
	for _, info := range countq.Queues() {
		res, err := countq.Run(countq.Workload{Queue: info.Name, Goroutines: 4, Ops: 2000, Seed: 1})
		if err != nil {
			t.Errorf("queue %s at defaults: %v", info.Name, err)
		} else if res.Aggregate.QueueOps != 2000 {
			t.Errorf("queue %s: %d ops", info.Name, res.Aggregate.QueueOps)
		}
		if len(info.Params) > 0 && len(variants[info.Name]) == 0 {
			t.Errorf("queue %s declares params but has no variant in VariantSpecs", info.Name)
		}
		counterNames[info.Name] = true // registered queue names are live too
	}
	// This package's native session structures (no legacy Counter/Queuer
	// view) go through the same defaults + canonical-variants sweep, driven
	// by spec. Listed explicitly: the registry also holds structures from
	// other packages (the sim bridge) that own their variant sets elsewhere.
	shmNative := map[string]bool{"async-funnel": true, "elim": true}
	for _, info := range countq.Structures() {
		if counterNames[info.Name] || !shmNative[info.Name] {
			continue // legacy-covered, or not this package's structure
		}
		counterNames[info.Name] = true
		w := countq.Workload{Goroutines: 4, Ops: 2000, Seed: 1}
		specs := append([]string{info.Name}, variants[info.Name]...)
		if len(info.Params) > 0 && len(variants[info.Name]) == 0 {
			t.Errorf("%s declares params but has no variant in VariantSpecs", info.Name)
		}
		for _, spec := range specs {
			w := w
			if info.Kinds.Has(countq.KindCounter) {
				w.Counter = spec
			} else {
				w.Queue = spec
			}
			res, err := countq.Run(w)
			if err != nil {
				t.Errorf("%s: %v", spec, err)
			} else if res.Aggregate.Ops != 2000 {
				t.Errorf("%s: %d ops", spec, res.Aggregate.Ops)
			}
		}
	}
	// The other direction: a renamed or removed structure must not leave a
	// stale variant entry behind (it would silently vanish from every
	// sweep that looks variants up by registry name).
	for name := range variants {
		if !counterNames[name] {
			t.Errorf("VariantSpecs names %q, which is not a registered structure", name)
		}
	}
}

// TestRegistryRejectsExplicitZeroParams: the constructors treat 0 as "use
// the default", so the registration shims must reject explicit zeros
// rather than silently reinterpreting them — a swept spin=0 data point
// must not quietly measure spin=32.
func TestRegistryRejectsExplicitZeroParams(t *testing.T) {
	for _, spec := range []string{
		"funnel?spin=0", "funnel?width=0", "funnel?depth=-1",
		"sharded?batch=0", "sharded?shards=0",
		"diffracting?spin=0", "diffracting?leaves=0",
		"combining?pending=0", "network?width=0",
	} {
		if _, err := countq.NewCounter(spec); err == nil {
			t.Errorf("%s accepted (would silently run at the default)", spec)
		}
	}
	// Native structures have no legacy view; reject nonsense via the
	// structure constructor (spin=0 is a real value for them, not a
	// default sentinel, so only genuinely invalid settings appear here).
	for _, spec := range []string{
		"async-funnel?pipeline=0", "async-funnel?spin=-1", "elim?pipeline=0",
	} {
		if _, err := countq.NewStructure(spec, 0); err == nil {
			t.Errorf("%s accepted (invalid combining parameters)", spec)
		}
	}
}

// TestRegistryCapabilities pins which structures advertise the optional
// capability interfaces the driver exploits.
func TestRegistryCapabilities(t *testing.T) {
	batchers := map[string]bool{"atomic": true, "mutex": true, "sharded": true}
	handlers := map[string]bool{"sharded": true}
	for _, info := range countq.Counters() {
		c, err := info.New(countq.Options{})
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if _, ok := c.(countq.BatchIncrementer); ok != batchers[info.Name] {
			t.Errorf("%s: BatchIncrementer = %v, want %v", info.Name, ok, batchers[info.Name])
		}
		if _, ok := c.(countq.HandleMaker); ok != handlers[info.Name] {
			t.Errorf("%s: HandleMaker = %v, want %v", info.Name, ok, handlers[info.Name])
		}
	}
	// The batch path validates end to end through the driver.
	res, err := countq.Run(countq.Workload{Counter: "sharded?shards=2&batch=16", Ops: 3000, Batch: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases[0].Batch != 32 || res.Aggregate.CounterOps != 3000 {
		t.Errorf("sharded batch run: batch=%d ops=%d", res.Phases[0].Batch, res.Aggregate.CounterOps)
	}
}
