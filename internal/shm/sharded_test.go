package shm

import (
	"runtime"
	"sync"
	"testing"

	"repro/countq"
)

// shardedAll runs goroutines×opsPerG increments and returns the handed-out
// counts together with the drained remainder.
func shardedAll(t *testing.T, c *ShardedCounter, goroutines, opsPerG int) (handed, drained []int64) {
	t.Helper()
	results := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			vals := make([]int64, opsPerG)
			for i := range vals {
				vals[i] = c.Inc()
			}
			results[gi] = vals
		}(gi)
	}
	wg.Wait()
	for _, vs := range results {
		handed = append(handed, vs...)
	}
	return handed, c.Drain()
}

// TestShardedCounterDistinctNoGaps is the sharded counter's correctness
// check under -race: counts handed out concurrently are distinct, and
// together with the drained lease remainders they cover 1..max without
// gaps.
func TestShardedCounterDistinctNoGaps(t *testing.T) {
	for _, cfg := range []struct{ shards, batch int }{
		{1, 1}, {2, 8}, {4, 64}, {8, 17},
	} {
		c, err := NewShardedCounter(cfg.shards, int64(cfg.batch))
		if err != nil {
			t.Fatal(err)
		}
		handed, drained := shardedAll(t, c, 8, 500)
		if len(handed) != 8*500 {
			t.Fatalf("shards=%d batch=%d: %d counts handed out", cfg.shards, cfg.batch, len(handed))
		}
		if err := ValidateCounts(append(append([]int64(nil), handed...), drained...)); err != nil {
			t.Errorf("shards=%d batch=%d: %v", cfg.shards, cfg.batch, err)
		}
	}
}

// TestShardedCounterReconcile checks that reconciled remainders are
// reissued — after Reconcile, new increments consume the pooled ranges
// before touching the global high-water mark, so a fully-drained counter
// still covers 1..max exactly.
func TestShardedCounterReconcile(t *testing.T) {
	// One shard keeps the lease sequence deterministic (sync.Pool
	// affinity is randomized under -race).
	c, err := NewShardedCounter(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	var all []int64
	for i := 0; i < 10; i++ {
		all = append(all, c.Inc())
	}
	c.Reconcile() // pools the 54 unused counts of the first lease
	for i := 0; i < 100; i++ {
		all = append(all, c.Inc())
	}
	if err := ValidateCounts(append(append([]int64(nil), all...), c.Drain()...)); err != nil {
		t.Fatal(err)
	}
	// The pooled remainder must be reissued rather than leaked: 110 ops
	// consume the first lease's 64 counts plus one fresh batch, so no
	// count can exceed 128.
	max := int64(0)
	for _, v := range all {
		if v > max {
			max = v
		}
	}
	if max > 128 {
		t.Errorf("high-water mark %d suggests reconciled ranges were not reissued", max)
	}
}

// TestShardedCounterQuiescentNotLinearizable documents the sharded
// counter's consistency level: validity (distinct, gap-free after drain)
// always holds, while linearizability is not guaranteed — shards hold
// blocks from different eras, exactly like a counting network's output
// wires.
func TestShardedCounterQuiescentNotLinearizable(t *testing.T) {
	c, err := NewShardedCounter(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	spans := RecordSpans(c, 8, 500)
	vals := make([]int64, len(spans))
	for i, s := range spans {
		vals[i] = s.Value
	}
	if err := ValidateCounts(append(vals, c.Drain()...)); err != nil {
		t.Fatalf("sharded validity: %v", err)
	}
	if err := CheckLinearizable(spans); err != nil {
		t.Logf("expected behavior (quiescent consistency only): %v", err)
	} else {
		t.Log("no linearizability violation observed in this run (the property is not guaranteed either way)")
	}
}

func TestShardedCounterRejectsBadBatch(t *testing.T) {
	if _, err := NewShardedCounter(2, -3); err == nil {
		t.Error("negative batch accepted")
	}
}

// TestShardedCounterHandles exercises the explicit per-worker lease path
// (countq.HandleMaker) under -race: every worker Incs through its own
// handle, Close surrenders the remainders, and handed ∪ drained must tile
// 1..max exactly.
func TestShardedCounterHandles(t *testing.T) {
	c, err := NewShardedCounter(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, opsPerG = 8, 501 // odd count forces partial leases
	results := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			h := c.NewHandle()
			defer h.Close()
			vals := make([]int64, opsPerG)
			for i := range vals {
				vals[i] = h.Inc()
			}
			results[gi] = vals
		}(gi)
	}
	wg.Wait()
	var all []int64
	for _, vs := range results {
		all = append(all, vs...)
	}
	if len(all) != goroutines*opsPerG {
		t.Fatalf("%d counts handed out", len(all))
	}
	if err := ValidateCounts(append(all, c.Drain()...)); err != nil {
		t.Errorf("handles: %v", err)
	}
}

// TestShardedCounterHandlesMixed runs handle holders, plain Inc callers
// and IncN batchers concurrently: all three allocation paths share one
// high-water mark and must still jointly tile 1..max.
func TestShardedCounterHandlesMixed(t *testing.T) {
	c, err := NewShardedCounter(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		singles []int64
		blocks  []countq.CountRange
	)
	for gi := 0; gi < 9; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			var mine []int64
			var myBlocks []countq.CountRange
			switch gi % 3 {
			case 0: // handle path
				h := c.NewHandle()
				defer h.Close()
				for i := 0; i < 400; i++ {
					mine = append(mine, h.Inc())
				}
			case 1: // plain shard path
				for i := 0; i < 400; i++ {
					mine = append(mine, c.Inc())
				}
			case 2: // batch path
				for i := 0; i < 40; i++ {
					myBlocks = append(myBlocks, countq.CountRange{First: c.IncN(10), N: 10})
				}
			}
			mu.Lock()
			singles = append(singles, mine...)
			blocks = append(blocks, myBlocks...)
			mu.Unlock()
		}(gi)
	}
	wg.Wait()
	if err := countq.ValidateCountRanges(append(singles, c.Drain()...), blocks); err != nil {
		t.Errorf("mixed allocation paths: %v", err)
	}
}

func TestShardedCounterIncN(t *testing.T) {
	c, err := NewShardedCounter(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	first := c.IncN(5)
	if first != 1 {
		t.Errorf("first block starts at %d, want 1", first)
	}
	second := c.IncN(3)
	if second != 6 {
		t.Errorf("second block starts at %d, want 6", second)
	}
	defer func() {
		if recover() == nil {
			t.Error("IncN(0) did not panic")
		}
	}()
	c.IncN(0)
}

func TestFunnelCounterValidates(t *testing.T) {
	for _, cfg := range []struct{ width, depth, spin int }{
		{1, 1, 4}, {2, 2, 16}, {4, 3, 8}, {0, 0, 0},
	} {
		c, err := NewFunnelCounter(cfg.width, cfg.depth, cfg.spin)
		if err != nil {
			t.Fatal(err)
		}
		results := make([][]int64, 8)
		var wg sync.WaitGroup
		for gi := 0; gi < 8; gi++ {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				vals := make([]int64, 300)
				for i := range vals {
					vals[i] = c.Inc()
				}
				results[gi] = vals
			}(gi)
		}
		wg.Wait()
		var all []int64
		for _, vs := range results {
			all = append(all, vs...)
		}
		if err := ValidateCounts(all); err != nil {
			t.Errorf("funnel %+v: %v", cfg, err)
		}
	}
	if _, err := NewFunnelCounter(-1, 0, 0); err == nil {
		t.Error("negative width accepted")
	}
}

// TestFunnelCounterLinearizable: a batch's fetch-and-add happens after
// every member has started, so the funnel — unlike the counting network —
// preserves real-time order.
func TestFunnelCounterLinearizable(t *testing.T) {
	c, err := NewFunnelCounter(2, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	spans := RecordSpans(c, 8, 300)
	if err := CheckLinearizable(spans); err != nil {
		t.Errorf("funnel counter: %v", err)
	}
}

// TestShardedDefaultShards pins the constructor default: the shard array
// sizes itself from GOMAXPROCS at construction (the `shards` param still
// overrides), so the per-P affinity scheme has one shard per P to land on.
func TestShardedDefaultShards(t *testing.T) {
	c, err := NewShardedCounter(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Shards(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default shard count = %d, want GOMAXPROCS = %d", got, want)
	}
}
