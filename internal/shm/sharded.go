package shm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/countq"
)

// ShardedCounter spreads increments over per-P shards: each shard leases a
// block of counts from the global high-water mark with one fetch-and-add,
// then hands them out under a shard-local mutex, so the hot global word is
// touched only once per batch instead of once per operation. Shard
// affinity rides on a sync.Pool, whose per-P caches keep a goroutine on
// the shard owned by the P it is running on.
//
// Distinctness is unconditional. The no-gaps property holds at
// reconciliation points: Reconcile returns partially-used leases to a
// shared free pool (where any shard can pick them up), and Drain
// additionally empties that pool, returning every leased-but-unused count
// so that handed-out ∪ drained = 1..max exactly. Like the counting
// network, the counter is quiescently consistent rather than linearizable:
// two shards may hold blocks from different eras, so a later operation can
// return a smaller count than an earlier completed one.
type ShardedCounter struct {
	next     atomic.Int64 // high-water mark of leased counts
	batch    int64
	shards   []countShard
	affinity sync.Pool // *int shard index with per-P locality
	assign   atomic.Int64
	poolMu   sync.Mutex
	free     []countRange // reconciled, not-yet-reissued leases
}

type countShard struct {
	mu     sync.Mutex
	lo, hi int64    // current lease: counts [lo, hi) remain
	_      [40]byte // keep adjacent shards off one cache line
}

// countRange is the half-open interval of counts [lo, hi).
type countRange struct{ lo, hi int64 }

// NewShardedCounter builds a sharded counter with the given shard count
// (default GOMAXPROCS) and lease batch size (default 64).
func NewShardedCounter(shards int, batch int64) (*ShardedCounter, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if batch == 0 {
		batch = 64
	}
	if batch < 1 {
		return nil, fmt.Errorf("shm: sharded counter batch %d < 1", batch)
	}
	c := &ShardedCounter{batch: batch, shards: make([]countShard, shards)}
	c.affinity.New = func() interface{} {
		i := int(c.assign.Add(1)-1) % len(c.shards)
		return &i
	}
	return c, nil
}

// Inc implements Counter.
//
//countq:hotpath clocks=0
func (c *ShardedCounter) Inc() int64 {
	idx := c.affinity.Get().(*int)
	s := &c.shards[*idx]
	c.affinity.Put(idx)
	s.mu.Lock()
	if s.lo == s.hi {
		s.lo, s.hi = c.lease()
	}
	v := s.lo
	s.lo++
	s.mu.Unlock()
	return v
}

// lease obtains the next block of counts: a reconciled range when one is
// pooled, otherwise a fresh batch off the global high-water mark.
//
//countq:hotpath clocks=0
func (c *ShardedCounter) lease() (lo, hi int64) {
	c.poolMu.Lock()
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free = c.free[:n-1]
		c.poolMu.Unlock()
		return r.lo, r.hi
	}
	c.poolMu.Unlock()
	hi = c.next.Add(c.batch) + 1
	return hi - c.batch, hi
}

// IncN implements countq.BatchIncrementer: it leases the n consecutive
// counts first..first+n-1 straight off the global high-water mark — one
// fetch-and-add for the whole block, bypassing the shards entirely. The
// grant is the caller's to account for; it is never pooled or reissued,
// so handed-out singles ∪ granted blocks ∪ drained remainders still tile
// 1..max exactly.
//
//countq:hotpath clocks=0
func (c *ShardedCounter) IncN(n int64) int64 {
	if n < 1 {
		panic(fmt.Sprintf("shm: sharded IncN(%d), want n ≥ 1", n))
	}
	return c.next.Add(n) - n + 1
}

// NewHandle implements countq.HandleMaker: the handle makes the per-worker
// lease explicit. Where Inc pays a sync.Pool lookup and a shard mutex per
// operation, a handle holds its own private lease and refills it from the
// shared structure only once per batch — the uncontended fast path is a
// plain increment. The handle is owned by one goroutine; Close returns the
// unused lease remainder to the shared free pool so Drain still closes the
// range.
func (c *ShardedCounter) NewHandle() countq.CounterHandle {
	return &shardedHandle{c: c}
}

type shardedHandle struct {
	c      *ShardedCounter
	lo, hi int64 // private lease: counts [lo, hi) remain
}

// Inc implements countq.CounterHandle.
//
//countq:hotpath clocks=0
func (h *shardedHandle) Inc() int64 {
	if h.lo == h.hi {
		h.lo, h.hi = h.c.lease()
	}
	v := h.lo
	h.lo++
	return v
}

// Close implements countq.CounterHandle, surrendering the lease remainder.
func (h *shardedHandle) Close() {
	if h.lo < h.hi {
		h.c.poolMu.Lock()
		h.c.free = append(h.c.free, countRange{h.lo, h.hi})
		h.c.poolMu.Unlock()
	}
	h.lo, h.hi = 0, 0
}

// Reconcile moves every shard's unused lease remainder into the shared
// free pool, where the next refill — by any shard — reissues it. Calling
// it periodically keeps idle shards from sitting on count ranges (the
// source of gaps) without losing any counts.
func (c *ShardedCounter) Reconcile() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		lo, hi := s.lo, s.hi
		s.lo, s.hi = 0, 0
		s.mu.Unlock()
		if lo < hi {
			c.poolMu.Lock()
			c.free = append(c.free, countRange{lo, hi})
			c.poolMu.Unlock()
		}
	}
}

// Drain implements countq.Drainer: it reconciles all shards, empties the
// free pool, and returns every leased-but-unused count. The counts handed
// out so far plus the returned slice form exactly 1..max; drained counts
// are never reissued.
func (c *ShardedCounter) Drain() []int64 {
	c.Reconcile()
	c.poolMu.Lock()
	free := c.free
	c.free = nil
	c.poolMu.Unlock()
	var out []int64
	for _, r := range free {
		for v := r.lo; v < r.hi; v++ {
			out = append(out, v)
		}
	}
	return out
}

// Shards reports the shard count.
func (c *ShardedCounter) Shards() int { return len(c.shards) }
