// Package shm reproduces the paper's thesis — counting is harder than
// queuing — on a real parallel substrate: goroutines over shared memory.
//
// The counting side offers a plain atomic fetch-and-increment, a mutex
// counter, a flat-combining counter (batching concurrent increments, in the
// spirit of software combining trees), a combining-funnel variant, a
// bitonic counting network with per-balancer locks, a diffracting tree,
// and a sharded per-P counter with leased count blocks. The queuing side
// is the telling contrast: learning your predecessor needs a single atomic
// swap (the "distributed swap" of Herlihy, Tirthapura and Wattenhofer),
// with no validation, no retry and no multi-location coordination.
//
// Two structures implement the session API's async capability natively
// rather than through the driver's adapter: "async-funnel", a combining
// counter whose flat-combining engine batches submitted increments and
// completes them on a shared channel, and "elim", an elimination/back-off
// queue whose enqueues either combine with a concurrent partner or fall
// back to the swap path. Both declare CapAsync and accept pipeline=
// (completion-ring depth) and spin= (combiner back-off) parameters; under
// open arrivals they show what native pipelining buys on corrected tail
// latency.
//
// Every implementation registers itself with the public repro/countq
// registry on import (see register.go), so importing this package for its
// side effects makes the whole zoo constructible by name via
// countq.NewCounter / countq.NewQueue.
package shm

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/countq"
	"repro/internal/counting"
)

// Counter hands out distinct counts 1, 2, 3, … to concurrent callers. It
// is an alias of the public countq.Counter, so shm implementations satisfy
// the registry interface directly.
type Counter = countq.Counter

// AtomicCounter is the hardware fetch-and-increment baseline.
type AtomicCounter struct {
	v atomic.Int64
}

// NewAtomicCounter returns a counter backed by a single atomic word.
func NewAtomicCounter() *AtomicCounter { return &AtomicCounter{} }

// Inc implements Counter.
//
//countq:hotpath clocks=0
func (c *AtomicCounter) Inc() int64 { return c.v.Add(1) }

// IncN implements countq.BatchIncrementer: one fetch-and-add grants the
// whole block first..first+n-1.
//
//countq:hotpath clocks=0
func (c *AtomicCounter) IncN(n int64) int64 { return c.v.Add(n) - n + 1 }

// MutexCounter serializes increments behind a mutex.
type MutexCounter struct {
	mu sync.Mutex
	v  int64
}

// NewMutexCounter returns a mutex-protected counter.
func NewMutexCounter() *MutexCounter { return &MutexCounter{} }

// Inc implements Counter.
//
//countq:hotpath clocks=0
func (c *MutexCounter) Inc() int64 {
	c.mu.Lock()
	c.v++
	v := c.v
	c.mu.Unlock()
	return v
}

// IncN implements countq.BatchIncrementer: one critical section grants the
// whole block first..first+n-1.
//
//countq:hotpath clocks=0
func (c *MutexCounter) IncN(n int64) int64 {
	c.mu.Lock()
	c.v += n
	first := c.v - n + 1
	c.mu.Unlock()
	return first
}

// CombiningCounter batches concurrent increments: callers publish requests
// into a queue and one caller at a time becomes the combiner (TryLock),
// applying the whole batch with a single pass — the flat-combining
// realization of a software combining tree.
type CombiningCounter struct {
	pending chan chan int64
	mu      sync.Mutex // combiner role
	v       int64
}

// NewCombiningCounter returns a flat-combining counter able to absorb up to
// maxConcurrency simultaneous publishers.
func NewCombiningCounter(maxConcurrency int) *CombiningCounter {
	if maxConcurrency < 1 {
		maxConcurrency = 1
	}
	return &CombiningCounter{pending: make(chan chan int64, maxConcurrency)}
}

// Inc implements Counter.
func (c *CombiningCounter) Inc() int64 {
	resp := make(chan int64, 1)
	c.pending <- resp
	for {
		select {
		case v := <-resp:
			return v
		default:
		}
		if c.mu.TryLock() {
			c.drain()
			c.mu.Unlock()
			select {
			case v := <-resp:
				return v
			default:
			}
		} else {
			runtime.Gosched()
		}
	}
}

// drain applies every published increment; the caller holds the combiner
// role.
func (c *CombiningCounter) drain() {
	for {
		select {
		case resp := <-c.pending:
			c.v++
			resp <- c.v
		default:
			return
		}
	}
}

// NetworkCounter is a bitonic counting network with a lock per balancer and
// a counter per output wire: a token traverses Θ(log² w) balancers and
// leaves with count = logical-output + w·(tokens already out on that wire).
// Contention spreads over the balancers instead of one hot word — the
// classic trade of latency for scalability the paper's counting side makes.
type NetworkCounter struct {
	width   int
	net     *counting.BalancerNetwork
	balBy   [][]int // layer → wire → balancer index
	toggles [][]balancerState
	exits   []atomic.Int64 // per logical output wire
	logical []int          // physical wire → logical output
	entropy sync.Pool      // per-P randomness for input-wire choice
}

type balancerState struct {
	mu     sync.Mutex
	toggle bool
	_      [40]byte // avoid false sharing between adjacent balancers
}

var entropySeed atomic.Int64

// NewNetworkCounter builds a bitonic network counter of the given width
// (a power of two).
func NewNetworkCounter(width int) (*NetworkCounter, error) {
	net, err := counting.Bitonic(width)
	if err != nil {
		return nil, err
	}
	nc := &NetworkCounter{
		width:   width,
		net:     net,
		balBy:   make([][]int, net.Depth()),
		toggles: make([][]balancerState, net.Depth()),
		exits:   make([]atomic.Int64, width),
		logical: make([]int, width),
	}
	for li, layer := range net.Layers {
		nc.balBy[li] = make([]int, width)
		nc.toggles[li] = make([]balancerState, len(layer))
		for w := range nc.balBy[li] {
			nc.balBy[li][w] = -1
		}
		for bi, b := range layer {
			nc.balBy[li][b.Top] = bi
			nc.balBy[li][b.Bottom] = bi
		}
	}
	for li, w := range net.OutPerm {
		nc.logical[w] = li
	}
	nc.entropy.New = func() interface{} {
		return rand.New(rand.NewSource(entropySeed.Add(1)))
	}
	return nc, nil
}

// Inc implements Counter: the caller's token enters on an arbitrary wire
// (correctness does not depend on the choice) and traverses the network.
func (nc *NetworkCounter) Inc() int64 {
	rng := nc.entropy.Get().(*rand.Rand)
	wire := rng.Intn(nc.width)
	nc.entropy.Put(rng)
	for li := range nc.toggles {
		bi := nc.balBy[li][wire]
		if bi < 0 {
			continue
		}
		b := &nc.toggles[li][bi]
		spec := nc.net.Layers[li][bi]
		b.mu.Lock()
		if !b.toggle {
			wire = spec.Top
		} else {
			wire = spec.Bottom
		}
		b.toggle = !b.toggle
		b.mu.Unlock()
	}
	li := nc.logical[wire]
	k := nc.exits[li].Add(1) - 1
	return int64(li) + int64(nc.width)*k + 1
}

// ValidateCounts checks that values is a permutation of 1..len(values) —
// the counting correctness condition. It delegates to the public
// countq.ValidateCounts.
func ValidateCounts(values []int64) error { return countq.ValidateCounts(values) }
