package shm

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// FunnelCounter is a combining funnel (Shavit & Zemach): operations fall
// through layers of rendezvous slots, and when two meet in a slot one
// captures the other — the captive parks, the captor carries the combined
// increment onward. Whoever reaches the bottom applies its whole batch
// with a single fetch-and-add and distributes sub-ranges back up the
// capture tree. Under contention the hot word absorbs one RMW per batch.
// The trade-off is the rendezvous wait: an operation that finds no
// partner parks and spins in each layer before falling through, so low
// concurrency pays latency for combining opportunities that never come —
// the funnel earns its keep only once partners are plentiful.
//
// Unlike the counting network and the sharded counter, the funnel is
// linearizable: a batch's fetch-and-add happens after every member of the
// batch has started, so real-time order is preserved.
type FunnelCounter struct {
	v       atomic.Int64
	layers  [][]funnelSlot
	spin    int
	entropy sync.Pool // per-P randomness for slot choice
	ops     sync.Pool // recycled funnelOps: steady-state Inc allocates nothing
}

type funnelSlot struct {
	mu      sync.Mutex
	waiting *funnelOp
	_       [40]byte // keep adjacent slots off one cache line
}

// funnelOp is one operation's combining record: its own increment plus
// everything it has captured on the way down.
type funnelOp struct {
	count    int64
	children []*funnelOp
	got      chan int64 // receives the exclusive base of the assigned range
}

var funnelSeed atomic.Int64

// NewFunnelCounter builds a combining funnel. width is the top layer's
// slot count (default max(1, GOMAXPROCS/2)); each deeper of the depth
// layers (default 2) halves it; spin is how long an operation waits in a
// slot for a partner before moving on (default 32).
func NewFunnelCounter(width, depth, spin int) (*FunnelCounter, error) {
	if width < 0 || depth < 0 || spin < 0 {
		return nil, fmt.Errorf("shm: funnel parameters must be non-negative, got width=%d depth=%d spin=%d", width, depth, spin)
	}
	if width == 0 {
		width = runtime.GOMAXPROCS(0) / 2
		if width < 1 {
			width = 1
		}
	}
	if depth == 0 {
		depth = 2
	}
	if spin == 0 {
		spin = 32
	}
	f := &FunnelCounter{spin: spin, layers: make([][]funnelSlot, depth)}
	for l := range f.layers {
		w := width >> uint(l)
		if w < 1 {
			w = 1
		}
		f.layers[l] = make([]funnelSlot, w)
	}
	f.entropy.New = func() interface{} {
		return rand.New(rand.NewSource(funnelSeed.Add(1)))
	}
	f.ops.New = func() interface{} {
		return &funnelOp{got: make(chan int64, 1)}
	}
	return f, nil
}

// Inc implements Counter.
func (f *FunnelCounter) Inc() int64 {
	op := f.ops.Get().(*funnelOp)
	op.count = 1
	op.children = op.children[:0]
	rng := f.entropy.Get().(*rand.Rand)
	for l := range f.layers {
		layer := f.layers[l]
		slot := &layer[rng.Intn(len(layer))]
		slot.mu.Lock()
		if w := slot.waiting; w != nil {
			// Capture the parked operation and carry its batch down.
			slot.waiting = nil
			slot.mu.Unlock()
			op.children = append(op.children, w)
			op.count += w.count
			continue
		}
		slot.waiting = op
		slot.mu.Unlock()
		for i := 0; i < f.spin; i++ {
			select {
			case base := <-op.got:
				f.entropy.Put(rng)
				return f.finish(op, base)
			default:
				runtime.Gosched()
			}
		}
		slot.mu.Lock()
		if slot.waiting == op {
			// No partner showed up: withdraw and keep falling.
			slot.waiting = nil
			slot.mu.Unlock()
			continue
		}
		slot.mu.Unlock()
		// A captor removed us between the spin and the lock; its batch
		// will deliver our range.
		f.entropy.Put(rng)
		return f.finish(op, <-op.got)
	}
	f.entropy.Put(rng)
	// Reached the bottom as a carrier: apply the whole batch at once.
	base := f.v.Add(op.count) - op.count
	return f.finish(op, base)
}

// finish distributes the batch's range and recycles the operation record.
// The op is safe to recycle here: a captor stops touching a child the
// moment it has sent the child's base (see deliver), and a carrier's own
// op was withdrawn from every slot it parked in.
func (f *FunnelCounter) finish(op *funnelOp, base int64) int64 {
	v := op.deliver(base)
	f.ops.Put(op)
	return v
}

// deliver hands the half-open count range (base, base+op.count] to the
// operation and its capture tree, returning the operation's own count.
func (op *funnelOp) deliver(base int64) int64 {
	cur := base + 1 // op takes the first count itself
	for _, ch := range op.children {
		// Read the child's count BEFORE handing it its base: the moment the
		// send lands, the child's owner may finish and recycle ch.
		n := ch.count
		ch.got <- cur
		cur += n
	}
	return base + 1
}
