package shm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DiffractingCounter is a diffracting tree (Shavit & Zemach): a binary tree
// of balancers where concurrent tokens meeting at a node "diffract" — one
// goes left, one right — without touching the node's toggle bit, and only
// unpaired tokens serialize on the toggle. Tokens exit at one of L leaves;
// leaf i hands out counts i + L·k + 1 via a per-leaf counter.
//
// The prism here is a single rendezvous slot guarded by a small mutex: a
// waiting token parks its channel in the slot, a partner commits to it
// under the lock and hands it a direction. That keeps the classic
// structure (pairs bypass the toggle) with simple, provable correctness;
// production diffracting trees use lock-free multi-slot prisms.
type DiffractingCounter struct {
	leaves []atomic.Int64
	nodes  []diffNode // heap indexing: node 1 is the root
	rank   []int      // leaf position → output rank (bit-reversed index)
	width  int
	spin   int
}

type diffNode struct {
	pmu     sync.Mutex
	waiting chan int // parked token's direction channel, or nil
	tmu     sync.Mutex
	toggle  bool
}

// NewDiffractingCounter builds a diffracting tree with the given number of
// leaves (a power of two ≥ 1; 0 defaults to the next power of two ≥
// GOMAXPROCS, sizing the stripe count to the machine's real parallelism
// the way the sharded counter sizes its shard array). spin controls how
// long a token waits for a diffraction partner before falling back to the
// toggle (0 uses a default).
func NewDiffractingCounter(leaves, spin int) (*DiffractingCounter, error) {
	if leaves == 0 {
		leaves = 1
		for leaves < runtime.GOMAXPROCS(0) {
			leaves <<= 1
		}
	}
	if leaves < 1 || leaves&(leaves-1) != 0 {
		return nil, fmt.Errorf("shm: diffracting tree needs a power-of-two leaf count, got %d", leaves)
	}
	if spin <= 0 {
		spin = 16
	}
	d := &DiffractingCounter{
		leaves: make([]atomic.Int64, leaves),
		nodes:  make([]diffNode, 2*leaves), // 1..leaves-1 used
		rank:   make([]int, leaves),
		width:  leaves,
		spin:   spin,
	}
	// A tree of alternating balancers delivers the k-th token to the leaf
	// whose root-to-leaf direction bits, read MSB-first, are the binary
	// digits of k LSB-first — i.e. leaf positions rank in bit-reversed
	// order. Leaf p therefore hands out counts rev(p) + L·k + 1.
	bits := 0
	for p := 1; p < leaves; p <<= 1 {
		bits++
	}
	for p := 0; p < leaves; p++ {
		r := 0
		for b := 0; b < bits; b++ {
			if p&(1<<uint(b)) != 0 {
				r |= 1 << uint(bits-1-b)
			}
		}
		d.rank[p] = r
	}
	return d, nil
}

// Inc implements Counter.
func (d *DiffractingCounter) Inc() int64 {
	node := 1
	for node < d.width {
		node = 2*node + d.traverse(&d.nodes[node])
	}
	leaf := node - d.width
	k := d.leaves[leaf].Add(1) - 1
	return int64(d.rank[leaf]) + int64(d.width)*k + 1
}

// traverse returns the direction (0 = left, 1 = right) the calling token
// takes at nd, by diffraction when a partner is available and by the
// toggle otherwise.
func (d *DiffractingCounter) traverse(nd *diffNode) int {
	nd.pmu.Lock()
	if w := nd.waiting; w != nil {
		// Commit to the parked partner: it goes left, we go right.
		nd.waiting = nil
		nd.pmu.Unlock()
		w <- 0
		return 1
	}
	me := make(chan int, 1)
	nd.waiting = me
	nd.pmu.Unlock()

	for i := 0; i < d.spin; i++ {
		select {
		case dir := <-me:
			return dir
		default:
			runtime.Gosched()
		}
	}
	nd.pmu.Lock()
	if nd.waiting == me {
		// Nobody committed: withdraw and use the toggle.
		nd.waiting = nil
		nd.pmu.Unlock()
		nd.tmu.Lock()
		t := nd.toggle
		nd.toggle = !t
		nd.tmu.Unlock()
		if t {
			return 1
		}
		return 0
	}
	// A partner committed to us between the spin and the lock.
	nd.pmu.Unlock()
	return <-me
}

// Width reports the number of leaves.
func (d *DiffractingCounter) Width() int { return d.width }
