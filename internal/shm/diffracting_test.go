package shm

import (
	"runtime"
	"sync"
	"testing"
)

func TestDiffractingSequential(t *testing.T) {
	for _, leaves := range []int{1, 2, 4, 8} {
		d, err := NewDiffractingCounter(leaves, 2)
		if err != nil {
			t.Fatal(err)
		}
		var got []int64
		for i := 0; i < 5*leaves+3; i++ {
			got = append(got, d.Inc())
		}
		if err := ValidateCounts(got); err != nil {
			t.Errorf("leaves=%d: %v", leaves, err)
		}
	}
}

func TestDiffractingRejectsBadWidth(t *testing.T) {
	for _, leaves := range []int{3, 12, -2} {
		if _, err := NewDiffractingCounter(leaves, 0); err == nil {
			t.Errorf("leaf count %d accepted", leaves)
		}
	}
}

// TestDiffractingDefaultLeaves pins the constructor default: like the
// sharded counter's shard array, the tree sizes itself from GOMAXPROCS —
// rounded up to the power of two the balancer tree needs. (The registry
// shim still rejects an explicit leaves=0 spec; 0 is the constructor's
// "use the default" sentinel, not a spec value.)
func TestDiffractingDefaultLeaves(t *testing.T) {
	d, err := NewDiffractingCounter(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1
	for want < runtime.GOMAXPROCS(0) {
		want <<= 1
	}
	if d.Width() != want {
		t.Errorf("default leaves = %d, want %d (GOMAXPROCS=%d rounded up to a power of two)",
			d.Width(), want, runtime.GOMAXPROCS(0))
	}
}

func TestDiffractingConcurrent(t *testing.T) {
	const goroutines, opsPerG = 8, 300
	for _, leaves := range []int{2, 8} {
		d, err := NewDiffractingCounter(leaves, 32)
		if err != nil {
			t.Fatal(err)
		}
		results := make([][]int64, goroutines)
		var wg sync.WaitGroup
		for gi := 0; gi < goroutines; gi++ {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				vals := make([]int64, opsPerG)
				for i := range vals {
					vals[i] = d.Inc()
				}
				results[gi] = vals
			}(gi)
		}
		wg.Wait()
		var all []int64
		for _, vs := range results {
			all = append(all, vs...)
		}
		if err := ValidateCounts(all); err != nil {
			t.Errorf("leaves=%d: %v", leaves, err)
		}
	}
}

func TestDiffractingMeasured(t *testing.T) {
	d, err := NewDiffractingCounter(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureCounter("diffracting", d, 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops != 800 {
		t.Errorf("ops = %d", m.Ops)
	}
}

func TestCLHLockMutualExclusion(t *testing.T) {
	l := NewCLHLock()
	const goroutines, opsPerG = 8, 2000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				h := l.Lock()
				counter++
				l.Unlock(h)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*opsPerG {
		t.Errorf("counter = %d, want %d (lost updates ⇒ broken mutual exclusion)", counter, goroutines*opsPerG)
	}
}

func TestMCSLockMutualExclusion(t *testing.T) {
	l := NewMCSLock()
	const goroutines, opsPerG = 8, 2000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				h := l.Lock()
				counter++
				l.Unlock(h)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*opsPerG {
		t.Errorf("counter = %d, want %d", counter, goroutines*opsPerG)
	}
}

func TestLocksSequentialReuse(t *testing.T) {
	clh := NewCLHLock()
	for i := 0; i < 100; i++ {
		h := clh.Lock()
		clh.Unlock(h)
	}
	mcs := NewMCSLock()
	for i := 0; i < 100; i++ {
		h := mcs.Lock()
		mcs.Unlock(h)
	}
}
