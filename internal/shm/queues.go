package shm

import (
	"sync"
	"sync/atomic"

	"repro/countq"
)

// Head is the predecessor reported to the first enqueued operation.
const Head = countq.Head

// Queuer organizes concurrent operations into a total order, telling each
// caller the identity of its predecessor — the shared-memory face of
// distributed queuing. Operation ids must be distinct and non-negative.
// It is an alias of the public countq.Queuer.
type Queuer = countq.Queuer

// SwapQueue is the whole point of the comparison: one atomic swap yields
// your predecessor. No retries, no multi-word coordination, no validation —
// the "distributed swap" primitive behind queue locks (CLH/MCS) and the
// queuing-based ordered multicast of Herlihy et al.
type SwapQueue struct {
	tail atomic.Int64
}

// NewSwapQueue returns an empty swap-based queue.
func NewSwapQueue() *SwapQueue {
	q := &SwapQueue{}
	q.tail.Store(Head)
	return q
}

// Enqueue implements Queuer with a single atomic exchange.
//
//countq:hotpath clocks=0
func (q *SwapQueue) Enqueue(id int64) int64 { return q.tail.Swap(id) }

// MutexQueue is the lock-based baseline for queuing.
type MutexQueue struct {
	mu   sync.Mutex
	tail int64
}

// NewMutexQueue returns an empty mutex-based queue.
func NewMutexQueue() *MutexQueue { return &MutexQueue{tail: Head} }

// Enqueue implements Queuer.
//
//countq:hotpath clocks=0
func (q *MutexQueue) Enqueue(id int64) int64 {
	q.mu.Lock()
	pred := q.tail
	q.tail = id
	q.mu.Unlock()
	return pred
}

// ListQueue is a linked variant (the CLH-lock skeleton): each operation
// installs a node with a swap and reads its predecessor's id from the node
// it displaced. Functionally equivalent to SwapQueue but exercising the
// pointer-based structure used by queue locks.
type ListQueue struct {
	tail atomic.Pointer[listNode]
}

type listNode struct {
	id int64
}

// NewListQueue returns an empty linked queue.
func NewListQueue() *ListQueue {
	q := &ListQueue{}
	q.tail.Store(&listNode{id: Head})
	return q
}

// Enqueue implements Queuer.
func (q *ListQueue) Enqueue(id int64) int64 {
	n := &listNode{id: id}
	prev := q.tail.Swap(n)
	return prev.id
}

// ValidateOrder checks the queuing correctness condition on a set of
// (id, predecessor) pairs: predecessors are distinct, exactly one operation
// queued behind Head, and the successor chain covers every operation. It
// delegates to the public countq.ValidateOrder.
func ValidateOrder(ids, preds []int64) error { return countq.ValidateOrder(ids, preds) }
