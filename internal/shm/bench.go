package shm

import (
	"sync"
	"time"

	"repro/countq"
)

// Measurement is one throughput measurement of a counter or queuer.
type Measurement struct {
	Name       string
	Goroutines int
	Ops        int
	Elapsed    time.Duration
}

// NsPerOp reports average nanoseconds per operation.
func (m Measurement) NsPerOp() float64 {
	if m.Ops == 0 {
		return 0
	}
	return float64(m.Elapsed.Nanoseconds()) / float64(m.Ops)
}

// MeasureCounter runs goroutines×opsPerG increments against the counter and
// validates that the counts form a permutation of 1..total.
func MeasureCounter(name string, c Counter, goroutines, opsPerG int) (Measurement, error) {
	total := goroutines * opsPerG
	results := make([][]int64, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			vals := make([]int64, opsPerG)
			for i := range vals {
				vals[i] = c.Inc()
			}
			results[gi] = vals
		}(gi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []int64
	for _, vs := range results {
		all = append(all, vs...)
	}
	// Counters that lease count blocks to shards surrender the unused
	// remainder here, so the no-gaps check sees the full range.
	if d, ok := c.(countq.Drainer); ok {
		all = append(all, d.Drain()...)
	}
	if err := ValidateCounts(all); err != nil {
		return Measurement{}, err
	}
	return Measurement{Name: name, Goroutines: goroutines, Ops: total, Elapsed: elapsed}, nil
}

// MeasureQueuer runs goroutines×opsPerG enqueues with globally unique ids
// and validates the resulting total order.
func MeasureQueuer(name string, q Queuer, goroutines, opsPerG int) (Measurement, error) {
	total := goroutines * opsPerG
	ids := make([][]int64, goroutines)
	preds := make([][]int64, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			myIDs := make([]int64, opsPerG)
			myPreds := make([]int64, opsPerG)
			for i := range myIDs {
				id := int64(gi*opsPerG + i)
				myIDs[i] = id
				myPreds[i] = q.Enqueue(id)
			}
			ids[gi] = myIDs
			preds[gi] = myPreds
		}(gi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var allIDs, allPreds []int64
	for gi := range ids {
		allIDs = append(allIDs, ids[gi]...)
		allPreds = append(allPreds, preds[gi]...)
	}
	if err := ValidateOrder(allIDs, allPreds); err != nil {
		return Measurement{}, err
	}
	return Measurement{Name: name, Goroutines: goroutines, Ops: total, Elapsed: elapsed}, nil
}
