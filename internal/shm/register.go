package shm

import "repro/countq"

// The shared-memory zoo registers itself with the public countq registry,
// database/sql style: importing this package (even blank) makes every
// implementation constructible by name, and new entries added here show up
// automatically in cmd/countq's listing, core's E11 experiment, and the
// top-level benchmarks.
func init() {
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "atomic",
		Summary:      "hardware fetch-and-increment on one shared word",
		Linearizable: true,
		New:          func() (countq.Counter, error) { return NewAtomicCounter(), nil },
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "mutex",
		Summary:      "increments serialized behind a single mutex",
		Linearizable: true,
		New:          func() (countq.Counter, error) { return NewMutexCounter(), nil },
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "combining",
		Summary:      "flat combiner: one caller applies the whole pending batch",
		Linearizable: true,
		New:          func() (countq.Counter, error) { return NewCombiningCounter(1024), nil },
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "funnel",
		Summary:      "combining funnel: rendezvous layers batch increments into one fetch-and-add",
		Linearizable: true,
		New:          func() (countq.Counter, error) { return NewFunnelCounter(0, 0, 0) },
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "network",
		Summary:      "bitonic counting network (w=8) with per-balancer locks",
		Linearizable: false,
		New:          func() (countq.Counter, error) { return NewNetworkCounter(8) },
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "diffracting",
		Summary:      "diffracting tree (L=8): paired tokens bypass the toggles",
		Linearizable: false,
		New:          func() (countq.Counter, error) { return NewDiffractingCounter(8, 0) },
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "sharded",
		Summary:      "per-P shards leasing count blocks, reconciled on demand",
		Linearizable: false,
		New:          func() (countq.Counter, error) { return NewShardedCounter(0, 0) },
	})

	countq.RegisterQueue(countq.QueueInfo{
		Name:    "swap",
		Summary: "one atomic swap yields your predecessor (distributed swap)",
		New:     func() (countq.Queuer, error) { return NewSwapQueue(), nil },
	})
	countq.RegisterQueue(countq.QueueInfo{
		Name:    "list",
		Summary: "CLH-style linked nodes installed with a swap",
		New:     func() (countq.Queuer, error) { return NewListQueue(), nil },
	})
	countq.RegisterQueue(countq.QueueInfo{
		Name:    "mutex",
		Summary: "tail pointer updated under a mutex",
		New:     func() (countq.Queuer, error) { return NewMutexQueue(), nil },
	})
}
