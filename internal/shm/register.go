package shm

import (
	"fmt"

	"repro/countq"
)

// variantSpecs is the canonical set of non-default parameterizations for
// every registered structure that declares params: one small/serializing
// configuration and one wide/spread one per structure. E11, the top-level
// benchmarks and TestBenchJSON all sweep this list, and the registry
// round-trip test enforces it both ways (every parameterized structure has
// variants; every variant names a live structure), so the recorded perf
// surface can't silently narrow back to defaults when the zoo changes.
var variantSpecs = map[string][]string{
	"combining":    {"combining?pending=16", "combining?pending=4096"},
	"funnel":       {"funnel?width=4&depth=3&spin=8", "funnel?width=8&depth=3"},
	"network":      {"network?width=4", "network?width=16"},
	"diffracting":  {"diffracting?leaves=4&spin=4", "diffracting?leaves=16"},
	"sharded":      {"sharded?shards=2&batch=8", "sharded?shards=16&batch=256"},
	"async-funnel": {"async-funnel?pipeline=8", "async-funnel?spin=64"},
	"elim":         {"elim?pipeline=8&spin=16", "elim?pipeline=1024"},
}

// VariantSpecs returns the canonical non-default spec strings for each
// parameterized structure, keyed by registry name. The map is a copy;
// mutating it does not affect the canonical set.
func VariantSpecs() map[string][]string {
	out := make(map[string][]string, len(variantSpecs))
	for name, specs := range variantSpecs {
		out[name] = append([]string(nil), specs...)
	}
	return out
}

// requireAtLeast1 rejects parameters the spec set explicitly to a value
// below 1. The constructors treat 0 as "use the default", so without this
// check an explicit funnel?spin=0 would silently run at spin=32 — the
// opposite of the spec contract (mistyped values fail loudly, never
// silently defaulted).
func requireAtLeast1(o *countq.Options, keys ...string) error {
	for _, k := range keys {
		if _, set := o.Lookup(k); set && o.Int64(k, 1) < 1 {
			v, _ := o.Lookup(k)
			return fmt.Errorf("shm: param %s=%s must be ≥ 1 (omit it for the default)", k, v)
		}
	}
	return o.Err()
}

// The shared-memory zoo registers itself with the public countq registry,
// database/sql style: importing this package (even blank) makes every
// implementation constructible by spec — "name" for the declared defaults,
// "name?param=value&…" to tune the knobs that control its coordination
// cost — and new entries added here show up automatically in cmd/countq's
// listing, core's E11 experiment, and the top-level benchmarks. Every
// tunable is declared as a ParamInfo, so unknown spec keys are rejected
// and `countq list -v` self-documents the zoo.
func init() {
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "atomic",
		Summary:      "hardware fetch-and-increment on one shared word",
		Linearizable: true,
		New: func(o countq.Options) (countq.Counter, error) {
			return NewAtomicCounter(), nil
		},
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "mutex",
		Summary:      "increments serialized behind a single mutex",
		Linearizable: true,
		New: func(o countq.Options) (countq.Counter, error) {
			return NewMutexCounter(), nil
		},
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "combining",
		Summary:      "flat combiner: one caller applies the whole pending batch",
		Linearizable: true,
		Params: []countq.ParamInfo{
			{Name: "pending", Default: "1024", Doc: "publication queue capacity (max simultaneous publishers absorbed)"},
		},
		New: func(o countq.Options) (countq.Counter, error) {
			pending := o.Int("pending", 1024)
			if err := requireAtLeast1(&o, "pending"); err != nil {
				return nil, err
			}
			return NewCombiningCounter(pending), nil
		},
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "funnel",
		Summary:      "combining funnel: rendezvous layers batch increments into one fetch-and-add",
		Linearizable: true,
		Params: []countq.ParamInfo{
			{Name: "width", Default: "GOMAXPROCS/2", Doc: "top layer's rendezvous slot count (each deeper layer halves it)"},
			{Name: "depth", Default: "2", Doc: "number of rendezvous layers"},
			{Name: "spin", Default: "32", Doc: "how long an operation waits in a slot for a partner"},
		},
		New: func(o countq.Options) (countq.Counter, error) {
			width := o.Int("width", 0)
			depth := o.Int("depth", 0)
			spin := o.Int("spin", 0)
			if err := requireAtLeast1(&o, "width", "depth", "spin"); err != nil {
				return nil, err
			}
			return NewFunnelCounter(width, depth, spin)
		},
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "network",
		Summary:      "bitonic counting network with per-balancer locks",
		Linearizable: false,
		Params: []countq.ParamInfo{
			{Name: "width", Default: "8", Doc: "network width (wires; a power of two) — Θ(log² w) balancers per count"},
		},
		New: func(o countq.Options) (countq.Counter, error) {
			width := o.Int("width", 8)
			if err := o.Err(); err != nil {
				return nil, err
			}
			return NewNetworkCounter(width)
		},
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "diffracting",
		Summary:      "diffracting tree: paired tokens bypass the toggles",
		Linearizable: false,
		Params: []countq.ParamInfo{
			{Name: "leaves", Default: "pow2 ≥ GOMAXPROCS", Doc: "leaf count (a power of two); each leaf owns a counter stripe"},
			{Name: "spin", Default: "16", Doc: "how long a token waits at a prism for a diffraction partner"},
		},
		New: func(o countq.Options) (countq.Counter, error) {
			leaves := o.Int("leaves", 0)
			spin := o.Int("spin", 0)
			if err := requireAtLeast1(&o, "leaves", "spin"); err != nil {
				return nil, err
			}
			return NewDiffractingCounter(leaves, spin)
		},
	})
	countq.RegisterCounter(countq.CounterInfo{
		Name:         "sharded",
		Summary:      "per-P shards leasing count blocks, reconciled on demand",
		Linearizable: false,
		Params: []countq.ParamInfo{
			{Name: "shards", Default: "GOMAXPROCS", Doc: "number of shards, each leasing count blocks independently"},
			{Name: "batch", Default: "64", Doc: "counts leased from the global high-water mark per refill"},
		},
		New: func(o countq.Options) (countq.Counter, error) {
			shards := o.Int("shards", 0)
			batch := o.Int64("batch", 0)
			if err := requireAtLeast1(&o, "shards", "batch"); err != nil {
				return nil, err
			}
			return NewShardedCounter(shards, batch)
		},
	})

	countq.RegisterQueue(countq.QueueInfo{
		Name:    "swap",
		Summary: "one atomic swap yields your predecessor (distributed swap)",
		New: func(o countq.Options) (countq.Queuer, error) {
			return NewSwapQueue(), nil
		},
	})
	countq.RegisterQueue(countq.QueueInfo{
		Name:    "list",
		Summary: "CLH-style linked nodes installed with a swap",
		New: func(o countq.Options) (countq.Queuer, error) {
			return NewListQueue(), nil
		},
	})
	countq.RegisterQueue(countq.QueueInfo{
		Name:    "mutex",
		Summary: "tail pointer updated under a mutex",
		New: func(o countq.Options) (countq.Queuer, error) {
			return NewMutexQueue(), nil
		},
	})
}
