package shm

import (
	"context"
	"sync"
	"testing"

	"repro/countq"
)

// The adversarial half of the native-async coverage: the conformance suite
// in countq exercises the session contract generically; these tests hammer
// the combining engine's own invariants — gap-free counts and a single
// total order — under deliberately nasty mixes of sync calls, deep
// pipelines, block grants and session churn, and run under -race in CI.

// TestAsyncFunnelAdversarial floods the funnel from many sessions, each
// interleaving pipelined Submits, sync Incs and IncN blocks, then checks
// the handed-out counts plus block grants tile 1..max exactly.
func TestAsyncFunnelAdversarial(t *testing.T) {
	st, err := countq.NewStructure("async-funnel?pipeline=16", countq.KindCounter)
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 8, 200
	ctx := context.Background()
	var mu sync.Mutex
	var counts []int64
	var blocks []countq.CountRange
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := st.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			as := sess.(countq.AsyncSession)
			bs := sess.(countq.BatchSession)
			var myCounts []int64
			var myBlocks []countq.CountRange
			outstanding := 0
			reap := func(min int) {
				for outstanding > min {
					c := <-as.Completions()
					if c.Err != nil {
						t.Error(c.Err)
						return
					}
					if c.Op.N > 1 {
						myBlocks = append(myBlocks, countq.CountRange{First: c.Value, N: c.Op.N})
					} else {
						myCounts = append(myCounts, c.Value)
					}
					outstanding--
				}
			}
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0, 1: // pipelined singles
					if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
						t.Error(err)
						return
					}
					outstanding++
					reap(8) // keep up to 8 in flight
				case 2: // sync ops through the same session
					if i%8 == 2 { // sync block grant via the batch surface
						first, err := bs.IncN(ctx, 2)
						if err != nil {
							t.Error(err)
							return
						}
						myBlocks = append(myBlocks, countq.CountRange{First: first, N: 2})
						continue
					}
					v, err := sess.Inc(ctx)
					if err != nil {
						t.Error(err)
						return
					}
					myCounts = append(myCounts, v)
				case 3: // pipelined block grant
					if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 3}); err != nil {
						t.Error(err)
						return
					}
					outstanding++
				}
			}
			reap(0)
			mu.Lock()
			counts = append(counts, myCounts...)
			blocks = append(blocks, myBlocks...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := countq.ValidateCountRanges(counts, blocks); err != nil {
		t.Fatal(err)
	}
}

// TestElimQueueAdversarialOrder floods the elimination queue from many
// sessions mixing pipelined and sync enqueues, then validates that the
// predecessor reports form one total order over every id — the property a
// mis-linked combined batch (or a double-swapped tail) would break.
func TestElimQueueAdversarialOrder(t *testing.T) {
	st, err := countq.NewStructure("elim?pipeline=8&spin=4", countq.KindQueue)
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 8, 200
	ctx := context.Background()
	var mu sync.Mutex
	var ids, preds []int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := st.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			as := sess.(countq.AsyncSession)
			var myIDs, myPreds []int64
			outstanding := 0
			reap := func(min int) {
				for outstanding > min {
					c := <-as.Completions()
					if c.Err != nil {
						t.Error(c.Err)
						return
					}
					myIDs = append(myIDs, c.Op.ID)
					myPreds = append(myPreds, c.Value)
					outstanding--
				}
			}
			for i := 0; i < rounds; i++ {
				id := int64(w*rounds + i)
				if i%3 == 2 {
					pr, err := sess.Enqueue(ctx, id)
					if err != nil {
						t.Error(err)
						return
					}
					myIDs = append(myIDs, id)
					myPreds = append(myPreds, pr)
					continue
				}
				if err := as.Submit(ctx, countq.Op{Kind: countq.OpEnqueue, ID: id}); err != nil {
					t.Error(err)
					return
				}
				outstanding++
				reap(4)
			}
			reap(0)
			mu.Lock()
			ids = append(ids, myIDs...)
			preds = append(preds, myPreds...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := countq.ValidateOrder(ids, preds); err != nil {
		t.Fatal(err)
	}
}

// TestCombinePipelineBound pins the Submit contract: the pipeline rejects
// rather than blocks when full, and frees as completions are reaped.
func TestCombinePipelineBound(t *testing.T) {
	st, err := countq.NewStructure("async-funnel?pipeline=4&spin=1000000", countq.KindCounter)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	as := sess.(countq.AsyncSession)
	ctx := context.Background()
	// With a huge spin the single-threaded submitter parks ops without
	// combining (pending never reaches 0 while ours waits)… except the
	// back-off loop yields, so on one P the combiner may still be us.
	// Either way, accepted + completed must stay within the bound.
	accepted := 0
	for i := 0; i < 64 && accepted < 16; i++ {
		if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
			break
		}
		accepted++
	}
	for i := 0; i < accepted; i++ {
		c := <-as.Completions()
		if c.Err != nil {
			t.Fatal(c.Err)
		}
	}
	// The pipeline must be fully usable again after draining.
	for i := 0; i < 4; i++ {
		if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
			t.Fatalf("submit %d after drain: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		<-as.Completions()
	}
}

// TestCombineKindGating pins the wrong-kind error contract on both the
// sync and submit surfaces of the native structures.
func TestCombineKindGating(t *testing.T) {
	ctx := context.Background()
	cs, err := countq.NewStructure("async-funnel", countq.KindCounter)
	if err != nil {
		t.Fatal(err)
	}
	csess, _ := cs.NewSession()
	defer csess.Close()
	if _, err := csess.Enqueue(ctx, 1); err == nil {
		t.Error("Enqueue on async-funnel succeeded")
	}
	if err := csess.(countq.AsyncSession).Submit(ctx, countq.Op{Kind: countq.OpEnqueue, ID: 1}); err == nil {
		t.Error("Submit(enqueue) on async-funnel succeeded")
	}
	qs, err := countq.NewStructure("elim", countq.KindQueue)
	if err != nil {
		t.Fatal(err)
	}
	qsess, _ := qs.NewSession()
	defer qsess.Close()
	if _, err := qsess.Inc(ctx); err == nil {
		t.Error("Inc on elim succeeded")
	}
	if err := qsess.(countq.AsyncSession).Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err == nil {
		t.Error("Submit(inc) on elim succeeded")
	}
}
