package shm

import "testing"

func TestCheckLinearizableAccepts(t *testing.T) {
	spans := []Span{
		{Start: 1, End: 2, Value: 1},
		{Start: 3, End: 4, Value: 2},
		{Start: 3, End: 5, Value: 3}, // concurrent with the previous: fine
	}
	if err := CheckLinearizable(spans); err != nil {
		t.Error(err)
	}
}

func TestCheckLinearizableRejects(t *testing.T) {
	spans := []Span{
		{Start: 1, End: 2, Value: 5}, // completed with value 5...
		{Start: 3, End: 4, Value: 1}, // ...then a later op returned 1
	}
	if err := CheckLinearizable(spans); err == nil {
		t.Error("real-time inversion accepted")
	}
}

func TestAtomicCounterLinearizable(t *testing.T) {
	spans := RecordSpans(NewAtomicCounter(), 8, 500)
	if err := CheckLinearizable(spans); err != nil {
		t.Errorf("atomic counter: %v", err)
	}
}

func TestMutexCounterLinearizable(t *testing.T) {
	spans := RecordSpans(NewMutexCounter(), 8, 500)
	if err := CheckLinearizable(spans); err != nil {
		t.Errorf("mutex counter: %v", err)
	}
}

func TestCombiningCounterLinearizable(t *testing.T) {
	// Flat combining applies batched operations inside one combiner
	// critical section; each response is handed out after its increment
	// took effect, so real-time order is preserved.
	spans := RecordSpans(NewCombiningCounter(64), 8, 300)
	if err := CheckLinearizable(spans); err != nil {
		t.Errorf("combining counter: %v", err)
	}
}

func TestNetworkCounterQuiescentButMaybeNotLinearizable(t *testing.T) {
	// Counting networks guarantee quiescent consistency, not
	// linearizability: a token overtaken inside the network can return a
	// smaller count after a larger one completed. The validity
	// (permutation) property must hold regardless; linearizability is
	// reported but not required.
	nc, err := NewNetworkCounter(8)
	if err != nil {
		t.Fatal(err)
	}
	spans := RecordSpans(nc, 8, 500)
	vals := make([]int64, len(spans))
	for i, s := range spans {
		vals[i] = s.Value
	}
	if err := ValidateCounts(vals); err != nil {
		t.Fatalf("network counter validity: %v", err)
	}
	if err := CheckLinearizable(spans); err != nil {
		t.Logf("expected behavior (quiescent consistency only): %v", err)
	} else {
		t.Log("no linearizability violation observed in this run (the property is not guaranteed either way)")
	}
}

func TestDiffractingCounterValiditySpans(t *testing.T) {
	d, err := NewDiffractingCounter(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	spans := RecordSpans(d, 8, 300)
	vals := make([]int64, len(spans))
	for i, s := range spans {
		vals[i] = s.Value
	}
	if err := ValidateCounts(vals); err != nil {
		t.Fatalf("diffracting validity: %v", err)
	}
}
