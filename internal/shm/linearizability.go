package shm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Span records one counter operation's observation window against a global
// logical clock: the operation started at tick Start, finished at tick End,
// and returned Value.
type Span struct {
	Start, End, Value int64
}

// RecordSpans runs goroutines×opsPerG increments against c, bracketing each
// with ticks from a shared logical clock.
func RecordSpans(c Counter, goroutines, opsPerG int) []Span {
	var clock atomic.Int64
	spans := make([][]Span, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			out := make([]Span, opsPerG)
			for i := range out {
				s := clock.Add(1)
				v := c.Inc()
				e := clock.Add(1)
				out[i] = Span{Start: s, End: e, Value: v}
			}
			spans[gi] = out
		}(gi)
	}
	wg.Wait()
	var all []Span
	for _, s := range spans {
		all = append(all, s...)
	}
	return all
}

// CheckLinearizable verifies the real-time ordering condition for a
// counter: if operation A finished before operation B started, A's value
// must be smaller. Plain fetch-and-increment satisfies this; counting
// networks famously do not (they guarantee only quiescent consistency) —
// the tests demonstrate both.
func CheckLinearizable(spans []Span) error {
	byStart := append([]Span(nil), spans...)
	sort.Slice(byStart, func(i, j int) bool { return byStart[i].Start < byStart[j].Start })
	byEnd := append([]Span(nil), spans...)
	sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].End < byEnd[j].End })
	var maxDone int64 = -1 // largest value among ops completed so far
	k := 0
	for _, b := range byStart {
		for k < len(byEnd) && byEnd[k].End < b.Start {
			if byEnd[k].Value > maxDone {
				maxDone = byEnd[k].Value
			}
			k++
		}
		if maxDone >= b.Value {
			return fmt.Errorf("shm: not linearizable: value %d issued after a completed op returned %d", b.Value, maxDone)
		}
	}
	return nil
}
