package shm

import (
	"runtime"
	"sync/atomic"
)

// The queue locks below are the practical payoff of cheap queuing: a single
// atomic swap appends a thread to a wait queue and tells it (implicitly or
// explicitly) who its predecessor is — the exact structure of distributed
// queuing, used here for mutual exclusion with local spinning.

// CLHLock is the Craig / Landin–Hagersten queue lock. Lock returns a handle
// that must be passed to Unlock. Each thread spins on its predecessor's
// node only.
type CLHLock struct {
	tail atomic.Pointer[clhNode]
}

type clhNode struct {
	locked atomic.Bool
}

// NewCLHLock returns an unlocked CLH lock.
func NewCLHLock() *CLHLock {
	l := &CLHLock{}
	l.tail.Store(&clhNode{}) // initial node: unlocked
	return l
}

// Lock acquires the lock and returns the handle to release it with.
func (l *CLHLock) Lock() *clhNode {
	me := &clhNode{}
	me.locked.Store(true)
	pred := l.tail.Swap(me) // queuing: one swap, predecessor identity out
	for pred.locked.Load() {
		runtime.Gosched()
	}
	return me
}

// Unlock releases the lock acquired with handle.
func (l *CLHLock) Unlock(handle *clhNode) {
	handle.locked.Store(false)
}

// MCSLock is the Mellor-Crummey–Scott queue lock: like CLH but with
// explicit successor pointers, so each thread spins on its own node.
type MCSLock struct {
	tail atomic.Pointer[mcsNode]
}

type mcsNode struct {
	next   atomic.Pointer[mcsNode]
	locked atomic.Bool
}

// NewMCSLock returns an unlocked MCS lock.
func NewMCSLock() *MCSLock { return &MCSLock{} }

// Lock acquires the lock and returns the handle to release it with.
func (l *MCSLock) Lock() *mcsNode {
	me := &mcsNode{}
	pred := l.tail.Swap(me)
	if pred != nil {
		me.locked.Store(true)
		pred.next.Store(me)
		for me.locked.Load() {
			runtime.Gosched()
		}
	}
	return me
}

// Unlock releases the lock acquired with handle.
func (l *MCSLock) Unlock(handle *mcsNode) {
	next := handle.next.Load()
	if next == nil {
		// No visible successor: try to close the queue.
		if l.tail.CompareAndSwap(handle, nil) {
			return
		}
		// A successor is linking itself in; wait for the pointer.
		for {
			if next = handle.next.Load(); next != nil {
				break
			}
			runtime.Gosched()
		}
	}
	next.locked.Store(false)
}
