package shm

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/countq"
	"repro/internal/ring"
)

// This file holds the native-AsyncSession backends: structures whose
// sessions are driven through Submit/Completions *by construction*, not
// through the synchronous adapter. Both ride one flat-combining engine:
//
//   - submissions land in a per-session SPSC lane (internal/ring — the
//     same audited ring the sim bridge's transport runs on),
//   - one session at a time becomes the combiner (mutex TryLock),
//   - the combiner sweeps every ring, applies the whole batch to the
//     shared structure with a single atomic RMW, and fires completions
//     as the combined round reaches the root.
//
// With Inflight > 1 a worker keeps several submissions parked in its slot
// while earlier ones ride a combine round — the aggregation round the
// paper charges counting with genuinely overlaps, which is exactly what
// the synchronous adapters cannot express.
//
// Memory-ordering protocol (all Go atomics are sequentially consistent):
// a submitter increments core.pending BEFORE publishing into its ring, and
// a combiner re-checks pending AFTER releasing the lock, re-acquiring if
// anything landed meanwhile. A published entry can therefore never strand:
// if the publisher's TryLock fails, somebody held the lock at that moment,
// and in the single total order of atomic operations some holder's
// post-unlock pending check (or in-sweep pending load) must observe the
// increment. The proof needs TryLock's failure to imply "locked right
// now", which holds because nothing ever blocks in Lock() on this mutex —
// so the starvation bit that would make TryLock fail spuriously is never
// set. Keep it that way.

// asyncEntry is one parked submission: the op, where its completion goes,
// and the owning session (for outstanding accounting on async entries).
type asyncEntry struct {
	op    countq.Op
	out   chan countq.Completion
	sess  *combineSession
	async bool
}

// combineCore is the flat-combining engine shared by the async funnel
// counter and the elimination queue. Each session publishes into a
// private ring.Lanes lane; the combiner sweeps a snapshot of all lanes.
// apply sees each combined batch in submission-sweep order and must
// deliver every entry's completion.
type combineCore struct {
	mu      sync.Mutex // combiner lock: TryLock only, never Lock
	pending atomic.Int64
	lanes   *ring.Lanes[asyncEntry]
	scratch []asyncEntry // combiner-owned batch buffer, reused across sweeps
	ringCap int
	spin    int
	apply   func(batch []asyncEntry)
}

func newCombineCore(pipeline, spin int, apply func([]asyncEntry)) *combineCore {
	return &combineCore{
		lanes:   ring.NewLanes[asyncEntry](),
		ringCap: pipeline,
		spin:    spin,
		apply:   apply,
	}
}

// combine makes the calling goroutine the combiner if nobody else is, and
// keeps re-acquiring until no published-but-unconsumed submission remains
// (see the stranding protocol at the top of the file).
//
//countq:hotpath clocks=0
func (c *combineCore) combine() {
	for {
		if !c.mu.TryLock() {
			return // an active combiner will sweep our submission
		}
		c.sweep()
		c.mu.Unlock()
		if c.pending.Load() == 0 {
			return
		}
		// A submission landed between the final sweep and the unlock; its
		// publisher may have seen the lock held and left. Take another turn.
	}
}

// sweep consumes every parked submission until pending drains, applying
// each collected batch to the shared structure in one round. Runs with the
// combiner lock held; scratch is reused so steady state allocates nothing.
//
//countq:hotpath clocks=0
//countq:role=consumer
func (c *combineCore) sweep() {
	for c.pending.Load() > 0 {
		c.scratch = c.scratch[:0]
		for _, lane := range c.lanes.Snapshot() {
			c.scratch = lane.DrainTo(c.scratch)
		}
		if len(c.scratch) == 0 {
			// pending > 0 but nothing published yet: a submitter is between
			// its increment and its ring publish. Yield and look again.
			runtime.Gosched()
			continue
		}
		c.pending.Add(-int64(len(c.scratch)))
		c.apply(c.scratch)
	}
}

// deliver fires one completion and releases its async accounting.
//
//countq:hotpath clocks=0
func deliver(e *asyncEntry, v int64) {
	e.out <- countq.Completion{Op: e.op, Value: v}
	if e.async {
		e.sess.outstanding.Add(-1)
	}
}

// combineSession is the per-worker session of a combining structure. Owned
// by one goroutine; Submit publishes into the session's private ring and
// the combiner — this goroutine or another — fires the completion.
type combineSession struct {
	core    *combineCore
	slot    *ring.SPSC[asyncEntry]
	kinds   countq.Kind
	out     chan countq.Completion
	syncOut chan countq.Completion
	// outstanding counts async submissions not yet delivered to out; with
	// len(out) it bounds the pipeline so the combiner never blocks on a
	// completion send.
	outstanding atomic.Int64
	closed      bool
}

func newCombineSession(core *combineCore, kinds countq.Kind) *combineSession {
	s := &combineSession{
		core:    core,
		kinds:   kinds,
		slot:    core.lanes.NewLane(core.ringCap),
		out:     make(chan countq.Completion, core.ringCap),
		syncOut: make(chan countq.Completion, 1),
	}
	return s
}

var errSessionClosed = fmt.Errorf("shm: session is closed")

// publish parks one entry in the session's lane, reporting false when the
// lane is full (only possible with unconsumed async submissions ahead).
// pending is incremented before the tail moves — the stranding protocol —
// and rolled back on a full lane before anything was published.
//
//countq:hotpath clocks=0
//countq:role=producer
func (s *combineSession) publish(e asyncEntry) bool {
	s.core.pending.Add(1)
	if !s.slot.Push(e) {
		s.core.pending.Add(-1)
		return false
	}
	return true
}

// backoff lets an active combiner pick the freshly published entry up
// before the publisher fights for the lock itself — the back-off half of
// elimination/back-off. spin = 0 goes straight to combining.
//
//countq:hotpath clocks=0
func (s *combineSession) backoff() {
	for i := 0; i < s.core.spin; i++ {
		if s.core.pending.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
	s.core.combine()
}

// roundTrip is the synchronous op path: publish, help combine, wait on the
// session's dedicated reply channel (capacity 1, reused — one sync op at a
// time per single-owner session, so it is always empty here).
//
//countq:hotpath clocks=0
func (s *combineSession) roundTrip(ctx context.Context, op countq.Op) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if s.closed {
		return 0, errSessionClosed
	}
	for !s.publish(asyncEntry{op: op, out: s.syncOut, sess: s}) {
		// Ring full of parked async submissions: help drain, then retry.
		s.core.combine()
		runtime.Gosched()
	}
	s.backoff()
	for {
		select {
		case c := <-s.syncOut:
			return c.Value, c.Err
		default:
			// Self-help instead of parking: combining is cheap and this
			// keeps sync ops live even under adversarial scheduling.
			s.core.combine()
			runtime.Gosched()
		}
	}
}

// Inc implements countq.Session.
//
//countq:hotpath clocks=0
func (s *combineSession) Inc(ctx context.Context) (int64, error) {
	if !s.kinds.Has(countq.KindCounter) {
		return 0, fmt.Errorf("shm: Inc on a queue-only combining structure: %w", countq.ErrUnsupported)
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpInc, N: 1})
}

// IncN implements countq.BatchSession: the block grant is just a combined
// entry with N > 1 — the combiner assigns it a consecutive range.
//
//countq:hotpath clocks=0
func (s *combineSession) IncN(ctx context.Context, n int64) (int64, error) {
	if !s.kinds.Has(countq.KindCounter) {
		return 0, fmt.Errorf("shm: IncN on a queue-only combining structure: %w", countq.ErrUnsupported)
	}
	if n < 1 {
		return 0, fmt.Errorf("shm: IncN(%d), want n ≥ 1", n)
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpInc, N: n})
}

// Enqueue implements countq.Session.
//
//countq:hotpath clocks=0
func (s *combineSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	if !s.kinds.Has(countq.KindQueue) {
		return 0, fmt.Errorf("shm: Enqueue on a counter-only combining structure: %w", countq.ErrUnsupported)
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpEnqueue, ID: id})
}

// Submit implements countq.AsyncSession: park the op, nudge the combiner,
// return. The completion fires on Completions() when a combine round
// carries the op to the root.
//
//countq:hotpath clocks=0
func (s *combineSession) Submit(ctx context.Context, op countq.Op) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.closed {
		return errSessionClosed
	}
	switch op.Kind {
	case countq.OpInc:
		if !s.kinds.Has(countq.KindCounter) {
			return fmt.Errorf("shm: submitted inc to a queue-only combining structure: %w", countq.ErrUnsupported)
		}
	case countq.OpEnqueue:
		if !s.kinds.Has(countq.KindQueue) {
			return fmt.Errorf("shm: submitted enqueue to a counter-only combining structure: %w", countq.ErrUnsupported)
		}
	default:
		return fmt.Errorf("shm: submitted unknown op kind %v: %w", op.Kind, countq.ErrUnsupported)
	}
	// Bound undelivered + unread completions by the pipeline so the
	// combiner can always send without blocking. The len read is racy but
	// only ever conservative: a concurrent delivery is double-counted for
	// an instant, never missed.
	if s.outstanding.Load()+int64(len(s.out)) >= int64(s.core.ringCap) {
		return fmt.Errorf("shm: combining pipeline full (%d outstanding)", s.core.ringCap)
	}
	s.outstanding.Add(1)
	if !s.publish(asyncEntry{op: op, out: s.out, sess: s, async: true}) {
		s.outstanding.Add(-1)
		return fmt.Errorf("shm: combining pipeline full (%d outstanding)", s.core.ringCap)
	}
	s.backoff()
	return nil
}

// Completions implements countq.AsyncSession.
//
//countq:hotpath clocks=0
func (s *combineSession) Completions() <-chan countq.Completion {
	return s.out
}

// Close implements countq.Session: help until every accepted submission
// has completed, drain abandoned completions (their grants are lost to
// validation — the documented AsyncSession contract), and leave the sweep
// set.
func (s *combineSession) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	for s.outstanding.Load() > 0 {
		s.core.combine()
		runtime.Gosched()
	}
	for {
		select {
		case <-s.out:
		default:
			s.core.lanes.Remove(s.slot)
			return nil
		}
	}
}

// AsyncFunnelCounter is the combining funnel rebuilt around sessions: the
// slot array plays the funnel's layers, a combine round is the walk to the
// root, and one fetch-and-add grants the whole batch consecutive counts.
type AsyncFunnelCounter struct {
	core *combineCore
	v    atomic.Int64
}

// NewAsyncFunnelCounter builds the native-async combining counter.
// pipeline bounds each session's outstanding submissions (and sizes its
// slot ring); spin is the submitter's back-off before it competes to
// combine (0 = combine immediately).
func NewAsyncFunnelCounter(pipeline, spin int) (*AsyncFunnelCounter, error) {
	if err := checkCombineParams(pipeline, spin); err != nil {
		return nil, err
	}
	f := &AsyncFunnelCounter{}
	f.core = newCombineCore(pipeline, spin, f.applyBatch)
	return f, nil
}

//countq:hotpath clocks=0
func (f *AsyncFunnelCounter) applyBatch(batch []asyncEntry) {
	var total int64
	for i := range batch {
		n := batch[i].op.N
		if n < 1 {
			n = 1
		}
		total += n
	}
	cur := f.v.Add(total) - total // one RMW for the whole combined batch
	for i := range batch {
		n := batch[i].op.N
		if n < 1 {
			n = 1
		}
		deliver(&batch[i], cur+1)
		cur += n
	}
}

// NewSession implements countq.Structure.
func (f *AsyncFunnelCounter) NewSession() (countq.Session, error) {
	return newCombineSession(f.core, countq.KindCounter), nil
}

// ElimQueue is the elimination/back-off queue: sessions park enqueues in
// their slot of the back-off array, and a combine round links the batch
// locally — each entry's predecessor is its batch neighbour — touching the
// shared tail with exactly one atomic swap per round. Pairs of concurrent
// enqueues thus eliminate their coordination against the shared structure
// entirely, the queue-side analogue of what the funnel must still pay an
// aggregation round for.
type ElimQueue struct {
	core *combineCore
	tail atomic.Int64
}

// NewElimQueue builds the native-async elimination queue; parameters as in
// NewAsyncFunnelCounter.
func NewElimQueue(pipeline, spin int) (*ElimQueue, error) {
	if err := checkCombineParams(pipeline, spin); err != nil {
		return nil, err
	}
	q := &ElimQueue{}
	q.tail.Store(countq.Head)
	q.core = newCombineCore(pipeline, spin, q.applyBatch)
	return q, nil
}

//countq:hotpath clocks=0
func (q *ElimQueue) applyBatch(batch []asyncEntry) {
	pred := q.tail.Swap(batch[len(batch)-1].op.ID) // the round's only RMW
	for i := range batch {
		deliver(&batch[i], pred)
		pred = batch[i].op.ID
	}
}

// NewSession implements countq.Structure.
func (q *ElimQueue) NewSession() (countq.Session, error) {
	return newCombineSession(q.core, countq.KindQueue), nil
}

func checkCombineParams(pipeline, spin int) error {
	if pipeline < 1 {
		return fmt.Errorf("shm: combining pipeline %d < 1", pipeline)
	}
	if pipeline > 1<<15 {
		return fmt.Errorf("shm: combining pipeline %d > %d", pipeline, 1<<15)
	}
	if spin < 0 {
		return fmt.Errorf("shm: combining spin %d < 0", spin)
	}
	return nil
}

func init() {
	params := []countq.ParamInfo{
		{Name: "pipeline", Default: "256", Doc: "per-session outstanding-submission bound (sizes the slot ring and completion buffer)"},
		{Name: "spin", Default: "0", Doc: "submitter back-off rounds before competing to combine (0 = combine immediately)"},
	}
	parseCombine := func(o countq.Options) (pipeline, spin int, err error) {
		pipeline = o.Int("pipeline", 256)
		spin = o.Int("spin", 0)
		if err = o.Err(); err != nil {
			return 0, 0, err
		}
		return pipeline, spin, nil
	}
	countq.RegisterStructure(countq.StructureInfo{
		Name:         "async-funnel",
		Summary:      "native-async combining funnel: submissions park in per-session slots, one combiner sweeps them and grants the batch with a single fetch-and-add; Inflight>1 overlaps the aggregation round",
		Kinds:        countq.KindCounter,
		Linearizable: true,
		Params:       params,
		Caps:         countq.CapHandle | countq.CapBatch | countq.CapAsync,
		New: func(o countq.Options) (countq.Structure, error) {
			pipeline, spin, err := parseCombine(o)
			if err != nil {
				return nil, err
			}
			return NewAsyncFunnelCounter(pipeline, spin)
		},
	})
	countq.RegisterStructure(countq.StructureInfo{
		Name:         "elim",
		Summary:      "native-async elimination/back-off queue: enqueues pair up in per-session slots and link locally, touching the shared tail with one swap per combined round",
		Kinds:        countq.KindQueue,
		Linearizable: true,
		Params:       params,
		Caps:         countq.CapHandle | countq.CapAsync,
		New: func(o countq.Options) (countq.Structure, error) {
			pipeline, spin, err := parseCombine(o)
			if err != nil {
				return nil, err
			}
			return NewElimQueue(pipeline, spin)
		},
	})
}
