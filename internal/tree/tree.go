// Package tree provides rooted spanning trees of graphs, the structure on
// which both the arrow protocol (queuing upper bound, Section 4 of the
// paper) and the tree-based counting protocols run.
//
// A Tree records, for each vertex of the host graph, its parent in the tree
// (the root is its own parent), the children lists, and depths. Distances on
// the tree metric are answered in O(log n) via binary-lifting LCA; the
// nearest-neighbour TSP analysis of Lemmas 4.3–4.10 is computed on this
// metric.
package tree

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// Tree is a rooted spanning tree over vertices 0..N-1. Construct with
// FromParents, BFSTree, PathTree, or Perfect; the zero value is not useful.
type Tree struct {
	root     int
	parent   []int   // parent[v]; parent[root] == root
	children [][]int // children[v], in ascending order
	depth    []int   // depth[root] == 0
	order    []int   // vertices in BFS order from the root
	up       [][]int // binary lifting table: up[k][v] = 2^k-th ancestor
}

// FromParents builds a Tree from a parent array. parent[root] must equal
// root and every other vertex must reach the root by following parents.
func FromParents(root int, parent []int) (*Tree, error) {
	n := len(parent)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("tree: root %d out of range [0,%d)", root, n)
	}
	if parent[root] != root {
		return nil, fmt.Errorf("tree: parent[root=%d] = %d, want %d", root, parent[root], root)
	}
	t := &Tree{
		root:     root,
		parent:   append([]int(nil), parent...),
		children: make([][]int, n),
		depth:    make([]int, n),
	}
	for v := 0; v < n; v++ {
		if parent[v] < 0 || parent[v] >= n {
			return nil, fmt.Errorf("tree: parent[%d] = %d out of range", v, parent[v])
		}
		if v != root {
			t.children[parent[v]] = append(t.children[parent[v]], v)
		}
	}
	// BFS from the root assigns depths and detects unreachable vertices
	// (which would indicate a cycle or a second component).
	t.order = make([]int, 0, n)
	seen := make([]bool, n)
	seen[root] = true
	t.order = append(t.order, root)
	for i := 0; i < len(t.order); i++ {
		u := t.order[i]
		for _, c := range t.children[u] {
			if seen[c] {
				return nil, fmt.Errorf("tree: vertex %d reached twice", c)
			}
			seen[c] = true
			t.depth[c] = t.depth[u] + 1
			t.order = append(t.order, c)
		}
	}
	if len(t.order) != n {
		return nil, fmt.Errorf("tree: only %d of %d vertices reachable from root", len(t.order), n)
	}
	t.buildLifting()
	return t, nil
}

// MustFromParents is FromParents but panics on error; for use by
// constructors whose parent arrays are correct by construction.
func MustFromParents(root int, parent []int) *Tree {
	t, err := FromParents(root, parent)
	if err != nil {
		panic(err)
	}
	return t
}

// BFSTree returns the breadth-first spanning tree of g rooted at root.
// g must be connected.
func BFSTree(g *graph.Graph, root int) (*Tree, error) {
	_, parent := g.BFS(root)
	for v, p := range parent {
		if p < 0 {
			return nil, fmt.Errorf("tree: vertex %d unreachable from root %d", v, root)
		}
	}
	return FromParents(root, parent)
}

// PathTree returns the spanning tree that is the given path (typically a
// Hamilton path of the host graph), rooted at its first vertex. Theorem 4.5
// runs the arrow protocol on exactly this tree.
func PathTree(order []int) (*Tree, error) {
	n := len(order)
	if n == 0 {
		return nil, fmt.Errorf("tree: empty path")
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[order[0]] = order[0]
	for i := 1; i < n; i++ {
		v := order[i]
		if v < 0 || v >= n || parent[v] != -1 {
			return nil, fmt.Errorf("tree: path is not a permutation at position %d", i)
		}
		parent[v] = order[i-1]
	}
	return FromParents(order[0], parent)
}

// Perfect returns the perfect m-ary tree with the given number of levels in
// heap numbering (root 0, children of v are m·v+1 … m·v+m).
func Perfect(m, levels int) *Tree {
	if m < 2 || levels < 1 {
		panic(fmt.Sprintf("tree: bad perfect tree shape m=%d levels=%d", m, levels))
	}
	n := 0
	for i, p := 0, 1; i < levels; i, p = i+1, p*m {
		n += p
	}
	parent := make([]int, n)
	parent[0] = 0
	for v := 1; v < n; v++ {
		parent[v] = (v - 1) / m
	}
	return MustFromParents(0, parent)
}

// N reports the number of vertices.
func (t *Tree) N() int { return len(t.parent) }

// Root reports the root vertex.
func (t *Tree) Root() int { return t.root }

// Parent reports the tree parent of v (the root is its own parent).
func (t *Tree) Parent(v int) int { return t.parent[v] }

// Children returns the children of v in ascending order. The slice is shared
// and must not be modified.
func (t *Tree) Children(v int) []int { return t.children[v] }

// Depth reports the depth of v (root has depth 0).
func (t *Tree) Depth(v int) int { return t.depth[v] }

// Height reports the maximum depth of any vertex.
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.depth {
		if d > h {
			h = d
		}
	}
	return h
}

// BFSOrder returns the vertices in breadth-first order from the root. The
// slice is shared and must not be modified.
func (t *Tree) BFSOrder() []int { return t.order }

// TreeDegree reports the degree of v in the tree (children plus parent).
func (t *Tree) TreeDegree(v int) int {
	d := len(t.children[v])
	if v != t.root {
		d++
	}
	return d
}

// MaxDegree reports the maximum tree degree. The arrow protocol's expanded
// time steps multiply delays by (at most) this constant; Theorem 4.1 requires
// it to be bounded.
func (t *Tree) MaxDegree() int {
	max := 0
	for v := range t.parent {
		if d := t.TreeDegree(v); d > max {
			max = d
		}
	}
	return max
}

// buildLifting fills the binary-lifting ancestor table.
func (t *Tree) buildLifting() {
	n := t.N()
	levels := 1
	if n > 1 {
		levels = bits.Len(uint(n - 1))
	}
	t.up = make([][]int, levels)
	t.up[0] = t.parent
	for k := 1; k < levels; k++ {
		prev := t.up[k-1]
		cur := make([]int, n)
		for v := 0; v < n; v++ {
			cur[v] = prev[prev[v]]
		}
		t.up[k] = cur
	}
}

// LCA returns the lowest common ancestor of u and v.
func (t *Tree) LCA(u, v int) int {
	if t.depth[u] < t.depth[v] {
		u, v = v, u
	}
	diff := t.depth[u] - t.depth[v]
	for k := 0; diff != 0; k++ {
		if diff&1 == 1 {
			u = t.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return u
	}
	for k := len(t.up) - 1; k >= 0; k-- {
		if t.up[k][u] != t.up[k][v] {
			u = t.up[k][u]
			v = t.up[k][v]
		}
	}
	return t.parent[u]
}

// Dist returns the number of tree edges on the path between u and v — the
// tree metric used by the nearest-neighbour TSP analysis.
func (t *Tree) Dist(u, v int) int {
	l := t.LCA(u, v)
	return t.depth[u] + t.depth[v] - 2*t.depth[l]
}

// PathBetween returns the sequence of vertices on the tree path from u to v,
// inclusive of both endpoints.
func (t *Tree) PathBetween(u, v int) []int {
	l := t.LCA(u, v)
	var upPart []int
	for x := u; x != l; x = t.parent[x] {
		upPart = append(upPart, x)
	}
	upPart = append(upPart, l)
	var downPart []int
	for x := v; x != l; x = t.parent[x] {
		downPart = append(downPart, x)
	}
	for i := len(downPart) - 1; i >= 0; i-- {
		upPart = append(upPart, downPart[i])
	}
	return upPart
}

// NextHop returns the neighbor of from that is one step closer to target on
// the tree (from must differ from target).
func (t *Tree) NextHop(from, to int) int {
	if from == to {
		panic("tree: NextHop with from == to")
	}
	l := t.LCA(from, to)
	if from != l {
		return t.parent[from]
	}
	// from is an ancestor of to: step down toward to.
	x := to
	for t.parent[x] != from {
		x = t.parent[x]
	}
	return x
}

// IsSpanningOf reports whether every tree edge exists in g and the tree
// covers exactly g's vertices — i.e. whether t is a spanning tree of g.
func (t *Tree) IsSpanningOf(g *graph.Graph) error {
	if t.N() != g.N() {
		return fmt.Errorf("tree: has %d vertices, graph has %d", t.N(), g.N())
	}
	for v := 0; v < t.N(); v++ {
		if v == t.root {
			continue
		}
		if !g.HasEdge(v, t.parent[v]) {
			return fmt.Errorf("tree: edge (%d,%d) not in graph", v, t.parent[v])
		}
	}
	return nil
}

// SubtreeSizes returns, for every vertex, the number of vertices in its
// subtree (including itself).
func (t *Tree) SubtreeSizes() []int {
	size := make([]int, t.N())
	for i := len(t.order) - 1; i >= 0; i-- {
		v := t.order[i]
		size[v] = 1
		for _, c := range t.children[v] {
			size[v] += size[c]
		}
	}
	return size
}

// Leaves returns the vertices with no children, in ascending order.
func (t *Tree) Leaves() []int {
	var ls []int
	for v := 0; v < t.N(); v++ {
		if len(t.children[v]) == 0 {
			ls = append(ls, v)
		}
	}
	return ls
}
