package tree

import "sort"

// Router answers next-hop queries on the tree in O(log deg) time using
// Euler-tour intervals, for protocols that route messages hop by hop along
// tree paths (the counting and queuing protocols of the experiments).
type Router struct {
	t         *Tree
	tin, tout []int // DFS entry/exit times; subtree(v) = [tin[v], tout[v])
}

// NewRouter precomputes the routing structure in O(n).
func (t *Tree) NewRouter() *Router {
	n := t.N()
	r := &Router{t: t, tin: make([]int, n), tout: make([]int, n)}
	// Iterative DFS in child order.
	type frame struct{ v, idx int }
	clock := 0
	stack := []frame{{t.root, 0}}
	r.tin[t.root] = clock
	clock++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := t.children[f.v]
		if f.idx < len(kids) {
			c := kids[f.idx]
			f.idx++
			r.tin[c] = clock
			clock++
			stack = append(stack, frame{c, 0})
			continue
		}
		r.tout[f.v] = clock
		stack = stack[:len(stack)-1]
	}
	return r
}

// inSubtree reports whether x lies in the subtree rooted at v.
func (r *Router) inSubtree(x, v int) bool {
	return r.tin[v] <= r.tin[x] && r.tin[x] < r.tout[v]
}

// NextHop returns the tree neighbor of from that is one hop closer to to.
// It panics if from == to.
func (r *Router) NextHop(from, to int) int {
	if from == to {
		panic("tree: Router.NextHop with from == to")
	}
	if !r.inSubtree(to, from) {
		return r.t.parent[from]
	}
	// Binary search the child whose interval contains tin[to]. Children
	// intervals are disjoint and ordered by tin.
	kids := r.t.children[from]
	i := sort.Search(len(kids), func(i int) bool { return r.tout[kids[i]] > r.tin[to] })
	return kids[i]
}

// Dist returns the tree distance (delegates to the tree's LCA structure).
func (r *Router) Dist(u, v int) int { return r.t.Dist(u, v) }
