package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestFromParentsValidation(t *testing.T) {
	if _, err := FromParents(0, []int{0, 0, 1}); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	if _, err := FromParents(5, []int{0, 0, 1}); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := FromParents(0, []int{1, 0}); err == nil {
		t.Error("root not self-parented accepted")
	}
	if _, err := FromParents(0, []int{0, 2, 1}); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := FromParents(0, []int{0, 5}); err == nil {
		t.Error("out-of-range parent accepted")
	}
}

func TestBFSTreeOnMesh(t *testing.T) {
	g := graph.Mesh(5, 5)
	tr, err := BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.IsSpanningOf(g); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != 0 {
		t.Errorf("root = %d", tr.Root())
	}
	// BFS tree depths equal graph distances.
	dist, _ := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		if tr.Depth(v) != dist[v] {
			t.Errorf("depth(%d) = %d, want %d", v, tr.Depth(v), dist[v])
		}
	}
}

func TestBFSTreeDisconnected(t *testing.T) {
	b := graph.NewBuilder("islands", 4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	if _, err := BFSTree(b.Build(), 0); err == nil {
		t.Error("BFS tree of disconnected graph accepted")
	}
}

func TestPathTree(t *testing.T) {
	order := []int{3, 1, 4, 0, 2}
	tr, err := PathTree(order)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root() != 3 {
		t.Errorf("root = %d, want 3", tr.Root())
	}
	if tr.Height() != 4 {
		t.Errorf("height = %d, want 4", tr.Height())
	}
	if tr.MaxDegree() != 2 {
		t.Errorf("path tree max degree = %d, want 2", tr.MaxDegree())
	}
	if tr.Dist(3, 2) != 4 {
		t.Errorf("dist(ends) = %d, want 4", tr.Dist(3, 2))
	}
	if tr.Dist(1, 0) != 2 {
		t.Errorf("dist(1,0) = %d, want 2", tr.Dist(1, 0))
	}
	if _, err := PathTree([]int{0, 0, 1}); err == nil {
		t.Error("non-permutation path accepted")
	}
	if _, err := PathTree(nil); err == nil {
		t.Error("empty path accepted")
	}
}

func TestPerfectShape(t *testing.T) {
	tr := Perfect(2, 4)
	if tr.N() != 15 {
		t.Fatalf("perfect(2,4) n = %d, want 15", tr.N())
	}
	if tr.Height() != 3 {
		t.Errorf("height = %d, want 3", tr.Height())
	}
	if got := len(tr.Leaves()); got != 8 {
		t.Errorf("leaves = %d, want 8", got)
	}
	if tr.MaxDegree() != 3 {
		t.Errorf("max degree = %d, want 3", tr.MaxDegree())
	}
	tr3 := Perfect(3, 3)
	if tr3.N() != 13 {
		t.Fatalf("perfect(3,3) n = %d, want 13", tr3.N())
	}
	if tr3.MaxDegree() != 4 {
		t.Errorf("ternary max degree = %d, want 4", tr3.MaxDegree())
	}
}

func TestLCADistAgainstBFS(t *testing.T) {
	// Tree distances computed by LCA must agree with BFS distances on the
	// tree's own edge set, for several tree shapes.
	shapes := []*Tree{
		Perfect(2, 5),
		Perfect(3, 4),
		mustPathTree(t, 33),
		randomTree(64, 11),
	}
	for _, tr := range shapes {
		g := treeAsGraph(tr)
		for _, src := range []int{0, tr.N() / 2, tr.N() - 1} {
			dist, _ := g.BFS(src)
			for v := 0; v < tr.N(); v++ {
				if got := tr.Dist(src, v); got != dist[v] {
					t.Fatalf("n=%d: Dist(%d,%d) = %d, want %d", tr.N(), src, v, got, dist[v])
				}
			}
		}
	}
}

func TestDistProperties(t *testing.T) {
	tr := randomTree(40, 3)
	f := func(a, b uint8) bool {
		u := int(a) % tr.N()
		v := int(b) % tr.N()
		d := tr.Dist(u, v)
		switch {
		case d != tr.Dist(v, u): // symmetry
			return false
		case u == v && d != 0:
			return false
		case u != v && d <= 0:
			return false
		}
		// Triangle inequality through a random third vertex.
		w := (u + v) % tr.N()
		return tr.Dist(u, v) <= tr.Dist(u, w)+tr.Dist(w, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPathBetween(t *testing.T) {
	tr := Perfect(2, 4)
	p := tr.PathBetween(7, 9) // two leaves: 7 under 3 under 1; 9 under 4 under 1
	want := []int{7, 3, 1, 4, 9}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	// Path between a vertex and itself is the single vertex.
	if p := tr.PathBetween(5, 5); len(p) != 1 || p[0] != 5 {
		t.Errorf("self path = %v", p)
	}
	// Path length always Dist+1.
	for u := 0; u < tr.N(); u++ {
		for v := 0; v < tr.N(); v++ {
			if got := len(tr.PathBetween(u, v)); got != tr.Dist(u, v)+1 {
				t.Fatalf("path len (%d,%d) = %d, want %d", u, v, got, tr.Dist(u, v)+1)
			}
		}
	}
}

func TestNextHop(t *testing.T) {
	tr := Perfect(2, 4)
	for u := 0; u < tr.N(); u++ {
		for v := 0; v < tr.N(); v++ {
			if u == v {
				continue
			}
			h := tr.NextHop(u, v)
			if tr.Dist(h, v) != tr.Dist(u, v)-1 {
				t.Fatalf("NextHop(%d,%d) = %d does not approach", u, v, h)
			}
			// The hop must be a tree neighbor.
			if tr.Parent(u) != h {
				ok := false
				for _, c := range tr.Children(u) {
					if c == h {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("NextHop(%d,%d) = %d is not a tree neighbor", u, v, h)
				}
			}
		}
	}
}

func TestSubtreeSizes(t *testing.T) {
	tr := Perfect(2, 4)
	size := tr.SubtreeSizes()
	if size[0] != 15 {
		t.Errorf("root subtree = %d, want 15", size[0])
	}
	if size[1] != 7 || size[2] != 7 {
		t.Errorf("level-1 subtrees = %d, %d, want 7, 7", size[1], size[2])
	}
	for _, leaf := range tr.Leaves() {
		if size[leaf] != 1 {
			t.Errorf("leaf %d subtree = %d", leaf, size[leaf])
		}
	}
}

func TestIsSpanningOfRejectsForeignTree(t *testing.T) {
	g := graph.Path(4) // edges 0-1-2-3
	parent := []int{0, 0, 0, 2}
	tr := MustFromParents(0, parent) // uses edge (0,2) not in path
	if err := tr.IsSpanningOf(g); err == nil {
		t.Error("tree with non-graph edge accepted as spanning")
	}
}

// --- helpers ---

func mustPathTree(t *testing.T, n int) *Tree {
	t.Helper()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	tr, err := PathTree(order)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// randomTree builds a random recursive tree on n vertices, deterministically.
func randomTree(n int, seed int64) *Tree {
	rng := rand.New(rand.NewSource(seed))
	parent := make([]int, n)
	parent[0] = 0
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	return MustFromParents(0, parent)
}

// treeAsGraph converts the tree's edges into a Graph.
func treeAsGraph(tr *Tree) *graph.Graph {
	b := graph.NewBuilder("astree", tr.N())
	for v := 0; v < tr.N(); v++ {
		if v != tr.Root() {
			b.MustAddEdge(v, tr.Parent(v))
		}
	}
	return b.Build()
}
