package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLCAIsCommonAncestor(t *testing.T) {
	tr := randomTree(60, 13)
	isAncestor := func(a, v int) bool {
		for x := v; ; x = tr.Parent(x) {
			if x == a {
				return true
			}
			if x == tr.Root() {
				return a == tr.Root()
			}
		}
	}
	f := func(a, b uint8) bool {
		u, v := int(a)%tr.N(), int(b)%tr.N()
		l := tr.LCA(u, v)
		if !isAncestor(l, u) || !isAncestor(l, v) {
			return false
		}
		// Deepest: the parent of l (if l isn't the root) must not be a
		// deeper common ancestor, and no child of l can be an ancestor
		// of both unless it is on the path of only one.
		for _, c := range tr.Children(l) {
			if isAncestor(c, u) && isAncestor(c, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestBFSOrderCoversAllOnce(t *testing.T) {
	for _, tr := range []*Tree{Perfect(3, 4), randomTree(77, 3)} {
		seen := make([]bool, tr.N())
		for _, v := range tr.BFSOrder() {
			if seen[v] {
				t.Fatalf("vertex %d repeated in BFS order", v)
			}
			seen[v] = true
		}
		for v, s := range seen {
			if !s {
				t.Fatalf("vertex %d missing from BFS order", v)
			}
		}
		// Depths are non-decreasing along the order.
		prev := 0
		for _, v := range tr.BFSOrder() {
			if tr.Depth(v) < prev {
				t.Fatal("BFS order depths decrease")
			}
			prev = tr.Depth(v)
		}
	}
}

func TestSubtreeSizesSumAtRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(50)
		tr := randomTree(n, rng.Int63())
		sizes := tr.SubtreeSizes()
		if sizes[tr.Root()] != n {
			t.Fatalf("root subtree = %d, want %d", sizes[tr.Root()], n)
		}
		// Each node's size = 1 + sum of children sizes.
		for v := 0; v < n; v++ {
			sum := 1
			for _, c := range tr.Children(v) {
				sum += sizes[c]
			}
			if sizes[v] != sum {
				t.Fatalf("size invariant broken at %d", v)
			}
		}
	}
}

func TestLeavesPlusInternalEqualsN(t *testing.T) {
	tr := Perfect(3, 4)
	internal := 0
	for v := 0; v < tr.N(); v++ {
		if len(tr.Children(v)) > 0 {
			internal++
		}
	}
	if len(tr.Leaves())+internal != tr.N() {
		t.Error("leaves + internal != n")
	}
}
