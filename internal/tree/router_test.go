package tree

import (
	"testing"
)

func TestRouterMatchesNextHop(t *testing.T) {
	shapes := []*Tree{
		Perfect(2, 5),
		Perfect(4, 3),
		randomTree(80, 21),
		mustPathTree(t, 25),
	}
	for _, tr := range shapes {
		r := tr.NewRouter()
		for u := 0; u < tr.N(); u++ {
			for v := 0; v < tr.N(); v++ {
				if u == v {
					continue
				}
				if got, want := r.NextHop(u, v), tr.NextHop(u, v); got != want {
					t.Fatalf("n=%d: Router.NextHop(%d,%d) = %d, want %d", tr.N(), u, v, got, want)
				}
			}
		}
	}
}

func TestRouterSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NextHop(v,v) did not panic")
		}
	}()
	Perfect(2, 3).NewRouter().NextHop(1, 1)
}

func TestRouterWalkTerminates(t *testing.T) {
	tr := randomTree(200, 5)
	r := tr.NewRouter()
	// Walking hop by hop from u must reach v in exactly Dist(u,v) steps.
	for _, pair := range [][2]int{{0, 199}, {150, 3}, {77, 78}} {
		u, v := pair[0], pair[1]
		steps := 0
		for x := u; x != v; x = r.NextHop(x, v) {
			steps++
			if steps > tr.N() {
				t.Fatalf("walk %d→%d did not terminate", u, v)
			}
		}
		if steps != tr.Dist(u, v) {
			t.Errorf("walk %d→%d took %d steps, want %d", u, v, steps, tr.Dist(u, v))
		}
	}
}
