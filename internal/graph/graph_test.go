package graph

import (
	"testing"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder("t", 3)
	if err := b.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := b.AddEdge(-1, 1); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder("empty", 0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("empty graph has n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Error("empty graph should count as connected")
	}
	if g.MaxDegree() != 0 {
		t.Error("empty graph max degree should be 0")
	}
}

func TestSingleVertex(t *testing.T) {
	g := NewBuilder("one", 1).Build()
	if !g.IsConnected() {
		t.Error("single vertex should be connected")
	}
	if g.Diameter() != 0 {
		t.Errorf("single-vertex diameter = %d, want 0", g.Diameter())
	}
}

func TestCompleteGraph(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		g := Complete(n)
		if g.N() != n {
			t.Fatalf("K_%d has %d vertices", n, g.N())
		}
		if want := n * (n - 1) / 2; g.M() != want {
			t.Errorf("K_%d has %d edges, want %d", n, g.M(), want)
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != n-1 {
				t.Errorf("K_%d: degree(%d) = %d", n, v, g.Degree(v))
			}
		}
		if n > 1 && g.Diameter() != 1 {
			t.Errorf("K_%d diameter = %d, want 1", n, g.Diameter())
		}
	}
}

func TestPathGraph(t *testing.T) {
	g := Path(10)
	if g.M() != 9 {
		t.Errorf("path(10) has %d edges, want 9", g.M())
	}
	if g.Diameter() != 9 {
		t.Errorf("path(10) diameter = %d, want 9", g.Diameter())
	}
	if !g.HasEdge(3, 4) || g.HasEdge(3, 5) {
		t.Error("path adjacency wrong")
	}
}

func TestRingGraph(t *testing.T) {
	g := Ring(8)
	if g.M() != 8 {
		t.Errorf("ring(8) has %d edges, want 8", g.M())
	}
	if g.Diameter() != 4 {
		t.Errorf("ring(8) diameter = %d, want 4", g.Diameter())
	}
	for v := 0; v < 8; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("ring degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestStarGraph(t *testing.T) {
	g := Star(9)
	if g.M() != 8 {
		t.Errorf("star(9) has %d edges, want 8", g.M())
	}
	if g.Degree(0) != 8 {
		t.Errorf("star center degree = %d, want 8", g.Degree(0))
	}
	if g.Diameter() != 2 {
		t.Errorf("star(9) diameter = %d, want 2", g.Diameter())
	}
}

func TestMesh2D(t *testing.T) {
	g := Mesh(4, 5)
	if g.N() != 20 {
		t.Fatalf("mesh(4x5) n = %d", g.N())
	}
	// Edges: rows 4*(5-1) + cols 5*(4-1) = 16 + 15 = 31.
	if g.M() != 31 {
		t.Errorf("mesh(4x5) m = %d, want 31", g.M())
	}
	if g.Diameter() != 3+4 {
		t.Errorf("mesh(4x5) diameter = %d, want 7", g.Diameter())
	}
	// Corner degree 2, edge 3, interior 4.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %d, want 2", g.Degree(0))
	}
	if g.Degree(6) != 4 { // (1,1) interior
		t.Errorf("interior degree = %d, want 4", g.Degree(6))
	}
}

func TestMesh3D(t *testing.T) {
	g := Mesh(3, 3, 3)
	if g.N() != 27 {
		t.Fatalf("mesh(3x3x3) n = %d", g.N())
	}
	// Each axis contributes 3*3*(3-1) = 18 edges, total 54.
	if g.M() != 54 {
		t.Errorf("mesh(3^3) m = %d, want 54", g.M())
	}
	if g.Diameter() != 6 {
		t.Errorf("mesh(3^3) diameter = %d, want 6", g.Diameter())
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("torus(4x4) n=%d m=%d, want 16, 32", g.N(), g.M())
	}
	for v := 0; v < 16; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("torus degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if g.Diameter() != 4 {
		t.Errorf("torus(4x4) diameter = %d, want 4", g.Diameter())
	}
}

func TestHypercube(t *testing.T) {
	for d := 0; d <= 6; d++ {
		g := Hypercube(d)
		if g.N() != 1<<d {
			t.Fatalf("Q_%d n = %d", d, g.N())
		}
		if want := d * (1 << d) / 2; g.M() != want {
			t.Errorf("Q_%d m = %d, want %d", d, g.M(), want)
		}
		if d > 0 && g.Diameter() != d {
			t.Errorf("Q_%d diameter = %d, want %d", d, g.Diameter(), d)
		}
	}
}

func TestPerfectMAryTree(t *testing.T) {
	g := PerfectMAryTree(2, 4) // depth 3 binary: 15 nodes
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("perfect binary tree n=%d m=%d, want 15, 14", g.N(), g.M())
	}
	if g.Diameter() != 6 {
		t.Errorf("perfect binary depth-3 diameter = %d, want 6", g.Diameter())
	}
	g3 := PerfectMAryTree(3, 3) // 1 + 3 + 9 = 13 nodes
	if g3.N() != 13 || g3.M() != 12 {
		t.Fatalf("perfect ternary n=%d m=%d, want 13, 12", g3.N(), g3.M())
	}
	// Root degree m, internal degree m+1, leaf degree 1.
	if g3.Degree(0) != 3 {
		t.Errorf("ternary root degree = %d, want 3", g3.Degree(0))
	}
	if g3.Degree(1) != 4 {
		t.Errorf("ternary internal degree = %d, want 4", g3.Degree(1))
	}
	if g3.Degree(12) != 1 {
		t.Errorf("ternary leaf degree = %d, want 1", g3.Degree(12))
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(100, 0.75)
	if g.N() != 100 {
		t.Fatalf("caterpillar n = %d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("caterpillar disconnected")
	}
	if g.M() != 99 {
		t.Errorf("caterpillar should be a tree: m = %d, want 99", g.M())
	}
	// Diameter should be close to the spine length (~31 for n=100, exp=.75).
	if d := g.Diameter(); d < 25 || d > 40 {
		t.Errorf("caterpillar diameter = %d, want ≈31", d)
	}
	// Constant-ish degree: spine vertices carry ≤ spine+legs neighbors.
	if g.MaxDegree() > 8 {
		t.Errorf("caterpillar max degree = %d, too high", g.MaxDegree())
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(50, 3, 42)
	if g.N() != 50 {
		t.Fatalf("random regular n = %d", g.N())
	}
	for v := 0; v < 50; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("random 3-regular degree(%d) = %d", v, g.Degree(v))
		}
	}
	// Determinism: same seed gives the identical graph.
	h := RandomRegular(50, 3, 42)
	for v := 0; v < 50; v++ {
		a, b := g.Neighbors(v), h.Neighbors(v)
		if len(a) != len(b) {
			t.Fatal("seeded graphs differ")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("seeded graphs differ")
			}
		}
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := Path(6)
	dist, parent := g.BFS(2)
	want := []int{2, 1, 0, 1, 2, 3}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
	if parent[2] != 2 {
		t.Errorf("parent of source = %d, want 2", parent[2])
	}
	if parent[0] != 1 || parent[5] != 4 {
		t.Errorf("parents wrong: %v", parent)
	}
}

func TestDisconnected(t *testing.T) {
	b := NewBuilder("two-islands", 4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	g := b.Build()
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Errorf("disconnected diameter = %d, want -1", g.Diameter())
	}
}

func TestDoubleSweepOnTrees(t *testing.T) {
	// Double sweep is exact on trees.
	for _, g := range []*Graph{Path(17), PerfectMAryTree(2, 5), Caterpillar(64, 0.6)} {
		if got, want := g.DiameterDoubleSweep(), g.Diameter(); got != want {
			t.Errorf("%s: double sweep %d != exact %d", g.Name(), got, want)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := Star(5).DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Errorf("star(5) histogram = %v", h)
	}
}
