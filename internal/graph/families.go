package graph

import "fmt"

// CubeConnectedCycles returns CCC(d): each vertex of the d-dimensional
// hypercube is replaced by a cycle of d vertices, with cycle position p of
// corner x connected to cycle position p of corner x ⊕ 2^p. The result has
// n = d·2^d vertices, constant degree 3, and diameter Θ(d) = Θ(log n) —
// a constant-degree stand-in for the hypercube, so Corollary 4.2's
// O(n log n) queuing bound applies directly.
//
// Vertex numbering: (x, p) ↦ x·d + p.
func CubeConnectedCycles(d int) *Graph {
	if d < 3 {
		panic(fmt.Sprintf("graph: CCC needs dimension ≥ 3, got %d", d))
	}
	corners := 1 << uint(d)
	b := NewBuilder(fmt.Sprintf("ccc(%d)", d), d*corners)
	id := func(x, p int) int { return x*d + p }
	for x := 0; x < corners; x++ {
		for p := 0; p < d; p++ {
			b.MustAddEdge(id(x, p), id(x, (p+1)%d)) // cycle edge
			y := x ^ (1 << uint(p))
			if x < y {
				b.MustAddEdge(id(x, p), id(y, p)) // cube edge
			}
		}
	}
	return b.Build()
}

// DeBruijn returns the undirected binary de Bruijn graph on 2^d vertices:
// u is adjacent to (2u) mod n and (2u+1) mod n (self-loops and duplicate
// edges skipped). Degree ≤ 4, diameter d = log₂ n — another constant-degree
// low-diameter family for the queuing-versus-counting comparison.
func DeBruijn(d int) *Graph {
	if d < 1 || d > 24 {
		panic(fmt.Sprintf("graph: de Bruijn dimension %d out of range", d))
	}
	n := 1 << uint(d)
	b := NewBuilder(fmt.Sprintf("debruijn(%d)", d), n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < 2; bit++ {
			v := (2*u + bit) % n
			if u != v && !b.has(u, v) {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// has reports whether the builder already contains edge {u, v}.
func (b *Builder) has(u, v int) bool { return b.seen[edgeKey(u, v)] }
