package graph

import "fmt"

// HamiltonPath returns a Hamilton path — a permutation of the vertices in
// which consecutive vertices are adjacent — for the topologies for which the
// paper establishes one (Lemma 4.6): the complete graph, d-dimensional
// meshes/tori, hypercubes, paths and rings. It reports an error for
// topologies where no constructive path is implemented.
//
// The arrow protocol of Theorem 4.5 uses this path as its spanning tree;
// combined with Lemma 4.3 (nearest-neighbour TSP on a list costs ≤ 3n) that
// makes the queuing complexity O(n) on all of these graphs.
func HamiltonPath(g *Graph) ([]int, error) {
	switch {
	case isCompleteShape(g):
		return identityOrder(g.N()), nil
	case isPathShape(g):
		return pathEndpointsOrder(g)
	default:
		// Structured constructions first, then a generic search for
		// small graphs.
		if order, ok := hamiltonByName(g); ok {
			return order, nil
		}
		if g.N() <= 16 {
			if order, ok := hamiltonBacktrack(g); ok {
				return order, nil
			}
		}
		return nil, fmt.Errorf("graph: no Hamilton path construction for %s", g.Name())
	}
}

// VerifyHamiltonPath reports whether order is a Hamilton path of g: a
// permutation of 0..n-1 whose consecutive entries are adjacent in g.
func VerifyHamiltonPath(g *Graph, order []int) error {
	n := g.N()
	if len(order) != n {
		return fmt.Errorf("graph: order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n {
			return fmt.Errorf("graph: vertex %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("graph: vertex %d repeated", v)
		}
		seen[v] = true
	}
	for i := 1; i < len(order); i++ {
		if !g.HasEdge(order[i-1], order[i]) {
			return fmt.Errorf("graph: consecutive vertices %d,%d not adjacent", order[i-1], order[i])
		}
	}
	return nil
}

// MeshHamiltonPath returns the boustrophedon ("snake") Hamilton path of the
// d-dimensional mesh with the given side lengths, following the inductive
// proof of Lemma 4.6: a d-dimensional mesh is a stack of (d-1)-dimensional
// meshes; traverse each slab with the inductively constructed path,
// alternating its direction so consecutive slab traversals abut.
func MeshHamiltonPath(dims ...int) []int {
	if len(dims) == 0 {
		return []int{0}
	}
	inner := MeshHamiltonPath(dims[1:]...)
	stride := len(inner) // vertices per slab = product of trailing dims
	order := make([]int, 0, stride*dims[0])
	for i := 0; i < dims[0]; i++ {
		base := i * stride
		if i%2 == 0 {
			for _, off := range inner {
				order = append(order, base+off)
			}
		} else {
			for j := len(inner) - 1; j >= 0; j-- {
				order = append(order, base+inner[j])
			}
		}
	}
	return order
}

// HypercubeHamiltonPath returns the Gray-code Hamilton path of the
// d-dimensional hypercube: vertex i of the path is i ^ (i >> 1).
func HypercubeHamiltonPath(d int) []int {
	n := 1 << d
	order := make([]int, n)
	for i := 0; i < n; i++ {
		order[i] = i ^ (i >> 1)
	}
	return order
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// isCompleteShape reports whether every vertex has degree n-1.
func isCompleteShape(g *Graph) bool {
	n := g.N()
	if n == 0 {
		return false
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != n-1 {
			return false
		}
	}
	return true
}

// isPathShape reports whether g is itself a path graph.
func isPathShape(g *Graph) bool {
	n := g.N()
	if n == 1 {
		return true
	}
	ones := 0
	for v := 0; v < n; v++ {
		switch g.Degree(v) {
		case 1:
			ones++
		case 2:
		default:
			return false
		}
	}
	return ones == 2 && g.IsConnected()
}

// pathEndpointsOrder walks a path graph from one endpoint to the other.
func pathEndpointsOrder(g *Graph) ([]int, error) {
	n := g.N()
	if n == 1 {
		return []int{0}, nil
	}
	start := -1
	for v := 0; v < n; v++ {
		if g.Degree(v) == 1 {
			start = v
			break
		}
	}
	order := make([]int, 0, n)
	prev, cur := -1, start
	for len(order) < n {
		order = append(order, cur)
		next := -1
		for _, w := range g.Neighbors(cur) {
			if w != prev {
				next = w
				break
			}
		}
		if next == -1 {
			break
		}
		prev, cur = cur, next
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: walk covered %d of %d vertices", len(order), n)
	}
	return order, nil
}

// hamiltonByName dispatches on the topology name for the structured
// constructions (mesh, torus, hypercube, ring).
func hamiltonByName(g *Graph) ([]int, bool) {
	var d int
	if n, _ := fmt.Sscanf(g.Name(), "hypercube(%d)", &d); n == 1 {
		return HypercubeHamiltonPath(d), true
	}
	if dims, ok := parseDims(g.Name(), "mesh("); ok {
		return MeshHamiltonPath(dims...), true
	}
	if dims, ok := parseDims(g.Name(), "torus("); ok {
		return MeshHamiltonPath(dims...), true // mesh snake works on torus too
	}
	if n := g.N(); g.Name() == fmt.Sprintf("ring(%d)", n) {
		return identityOrder(n), true
	}
	return nil, false
}

// parseDims parses "prefixAxBxC)" into []int{A,B,C}.
func parseDims(name, prefix string) ([]int, bool) {
	if len(name) < len(prefix) || name[:len(prefix)] != prefix {
		return nil, false
	}
	body := name[len(prefix) : len(name)-1]
	var dims []int
	cur := 0
	have := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c >= '0' && c <= '9':
			cur = cur*10 + int(c-'0')
			have = true
		case c == 'x' && have:
			dims = append(dims, cur)
			cur, have = 0, false
		default:
			return nil, false
		}
	}
	if !have {
		return nil, false
	}
	dims = append(dims, cur)
	return dims, true
}

// hamiltonBacktrack searches for a Hamilton path by depth-first backtracking.
// Exponential; only used for small graphs in tests.
func hamiltonBacktrack(g *Graph) ([]int, bool) {
	n := g.N()
	used := make([]bool, n)
	order := make([]int, 0, n)
	var dfs func(v int) bool
	dfs = func(v int) bool {
		used[v] = true
		order = append(order, v)
		if len(order) == n {
			return true
		}
		for _, w := range g.Neighbors(v) {
			if !used[w] && dfs(w) {
				return true
			}
		}
		used[v] = false
		order = order[:len(order)-1]
		return false
	}
	for s := 0; s < n; s++ {
		if dfs(s) {
			return order, true
		}
	}
	return nil, false
}
