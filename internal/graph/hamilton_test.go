package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHamiltonPathComplete(t *testing.T) {
	for _, n := range []int{1, 2, 7, 32} {
		g := Complete(n)
		order, err := HamiltonPath(g)
		if err != nil {
			t.Fatalf("K_%d: %v", n, err)
		}
		if err := VerifyHamiltonPath(g, order); err != nil {
			t.Errorf("K_%d: %v", n, err)
		}
	}
}

func TestHamiltonPathMesh(t *testing.T) {
	cases := [][]int{{1}, {5}, {2, 3}, {4, 4}, {3, 5}, {2, 3, 4}, {3, 3, 3}, {2, 2, 2, 2}}
	for _, dims := range cases {
		g := Mesh(dims...)
		order := MeshHamiltonPath(dims...)
		if err := VerifyHamiltonPath(g, order); err != nil {
			t.Errorf("mesh%v: %v", dims, err)
		}
		// And via the generic entry point.
		order2, err := HamiltonPath(g)
		if err != nil {
			t.Fatalf("mesh%v: %v", dims, err)
		}
		if err := VerifyHamiltonPath(g, order2); err != nil {
			t.Errorf("mesh%v via HamiltonPath: %v", dims, err)
		}
	}
}

func TestHamiltonPathMeshProperty(t *testing.T) {
	// Property: for random small dimension vectors, the snake order is a
	// valid Hamilton path (Lemma 4.6's induction, checked exhaustively).
	f := func(a, b, c uint8) bool {
		dims := []int{int(a%4) + 1, int(b%4) + 1, int(c%4) + 1}
		g := Mesh(dims...)
		return VerifyHamiltonPath(g, MeshHamiltonPath(dims...)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHamiltonPathHypercube(t *testing.T) {
	for d := 0; d <= 8; d++ {
		g := Hypercube(d)
		order := HypercubeHamiltonPath(d)
		if err := VerifyHamiltonPath(g, order); err != nil {
			t.Errorf("Q_%d: %v", d, err)
		}
		order2, err := HamiltonPath(g)
		if err != nil {
			t.Fatalf("Q_%d: %v", d, err)
		}
		if err := VerifyHamiltonPath(g, order2); err != nil {
			t.Errorf("Q_%d via HamiltonPath: %v", d, err)
		}
	}
}

func TestHamiltonPathTorusAndRing(t *testing.T) {
	g := Torus(4, 5)
	order, err := HamiltonPath(g)
	if err != nil {
		t.Fatalf("torus: %v", err)
	}
	if err := VerifyHamiltonPath(g, order); err != nil {
		t.Errorf("torus: %v", err)
	}
	r := Ring(9)
	order, err = HamiltonPath(r)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	if err := VerifyHamiltonPath(r, order); err != nil {
		t.Errorf("ring: %v", err)
	}
}

func TestHamiltonPathOnPathGraph(t *testing.T) {
	g := Path(12)
	order, err := HamiltonPath(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyHamiltonPath(g, order); err != nil {
		t.Error(err)
	}
}

func TestHamiltonPathStarFails(t *testing.T) {
	// The star on ≥ 4 vertices has no Hamilton path; the generic search
	// must report an error rather than fabricate one.
	if _, err := HamiltonPath(Star(6)); err == nil {
		t.Error("star(6) should have no Hamilton path")
	}
}

func TestHamiltonBacktrackSmall(t *testing.T) {
	// Petersen-like random graphs: backtracking must agree with Verify.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(6)
		b := NewBuilder("rand", n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					b.MustAddEdge(u, v)
				}
			}
		}
		g := b.Build()
		if order, ok := hamiltonBacktrack(g); ok {
			if err := VerifyHamiltonPath(g, order); err != nil {
				t.Errorf("backtrack returned invalid path: %v", err)
			}
		}
	}
}

func TestVerifyHamiltonPathRejects(t *testing.T) {
	g := Path(4)
	if err := VerifyHamiltonPath(g, []int{0, 1, 2}); err == nil {
		t.Error("short order accepted")
	}
	if err := VerifyHamiltonPath(g, []int{0, 1, 1, 2}); err == nil {
		t.Error("repeated vertex accepted")
	}
	if err := VerifyHamiltonPath(g, []int{0, 2, 1, 3}); err == nil {
		t.Error("non-adjacent consecutive pair accepted")
	}
	if err := VerifyHamiltonPath(g, []int{0, 1, 2, 4}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestParseDims(t *testing.T) {
	dims, ok := parseDims("mesh(3x4x5)", "mesh(")
	if !ok || len(dims) != 3 || dims[0] != 3 || dims[1] != 4 || dims[2] != 5 {
		t.Errorf("parseDims = %v, %v", dims, ok)
	}
	if _, ok := parseDims("mesh(x3)", "mesh("); ok {
		t.Error("malformed dims accepted")
	}
	if _, ok := parseDims("torus(3)", "mesh("); ok {
		t.Error("wrong prefix accepted")
	}
}
