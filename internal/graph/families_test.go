package graph

import "testing"

func TestCubeConnectedCycles(t *testing.T) {
	for _, d := range []int{3, 4, 5} {
		g := CubeConnectedCycles(d)
		if want := d * (1 << uint(d)); g.N() != want {
			t.Fatalf("CCC(%d): n = %d, want %d", d, g.N(), want)
		}
		// Every vertex has degree exactly 3 (two cycle + one cube edge).
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != 3 {
				t.Fatalf("CCC(%d): degree(%d) = %d, want 3", d, v, g.Degree(v))
			}
		}
		if !g.IsConnected() {
			t.Errorf("CCC(%d) disconnected", d)
		}
		// Diameter is Θ(d): for CCC(3) the exact diameter is 6.
		if d == 3 {
			if got := g.Diameter(); got != 6 {
				t.Errorf("CCC(3) diameter = %d, want 6", got)
			}
		}
	}
}

func TestCCCSmallDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CCC(2) did not panic")
		}
	}()
	CubeConnectedCycles(2)
}

func TestDeBruijn(t *testing.T) {
	for _, d := range []int{2, 3, 4, 6, 8} {
		g := DeBruijn(d)
		if g.N() != 1<<uint(d) {
			t.Fatalf("deBruijn(%d): n = %d", d, g.N())
		}
		if !g.IsConnected() {
			t.Errorf("deBruijn(%d) disconnected", d)
		}
		if g.MaxDegree() > 4 {
			t.Errorf("deBruijn(%d): max degree %d > 4", d, g.MaxDegree())
		}
		// Diameter is at most d (shift in one bit per hop).
		if diam := g.Diameter(); diam > d {
			t.Errorf("deBruijn(%d): diameter %d > %d", d, diam, d)
		}
	}
}

func TestDeBruijnAdjacency(t *testing.T) {
	g := DeBruijn(3) // 8 vertices
	// Vertex 3 (011) shifts to 6 (110) and 7 (111).
	if !g.HasEdge(3, 6) || !g.HasEdge(3, 7) {
		t.Error("shift edges of vertex 3 missing")
	}
	// 0 shifts to 0 (self, skipped) and 1.
	if !g.HasEdge(0, 1) {
		t.Error("edge 0-1 missing")
	}
	if g.HasEdge(0, 0) {
		t.Error("self loop present")
	}
}
