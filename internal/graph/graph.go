// Package graph provides undirected graphs and the interconnection
// topologies studied in Busch & Tirthapura, "Concurrent counting is harder
// than queuing" (TCS 411, 2010): the complete graph, the list, the
// d-dimensional mesh, the hypercube, the star, perfect m-ary trees, and a
// high-diameter caterpillar family.
//
// Vertices are the integers 0..N-1. Graphs are immutable after construction
// through the Builder; all topology constructors return fully built graphs.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable, connected or unconnected, simple undirected graph.
// The zero value is the empty graph with no vertices.
type Graph struct {
	name string
	adj  [][]int // adjacency lists, each sorted ascending
	m    int     // number of edges
}

// Builder accumulates edges for a Graph. Duplicate edges and self-loops are
// rejected. A Builder must be created with NewBuilder.
type Builder struct {
	name string
	n    int
	adj  [][]int
	seen map[[2]int]bool
}

// NewBuilder returns a Builder for a graph with n vertices named name.
// It panics if n is negative; an empty graph (n == 0) is allowed.
func NewBuilder(name string, n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Builder{
		name: name,
		n:    n,
		adj:  make([][]int, n),
		seen: make(map[[2]int]bool),
	}
}

// AddEdge inserts the undirected edge {u, v}. It returns an error if either
// endpoint is out of range, if u == v, or if the edge already exists.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	key := edgeKey(u, v)
	if b.seen[key] {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	b.seen[key] = true
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
	return nil
}

// MustAddEdge is AddEdge but panics on error. Topology constructors use it
// for edges that are correct by construction.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Build finalizes the graph. The Builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	for _, a := range b.adj {
		sort.Ints(a)
	}
	g := &Graph{name: b.name, adj: b.adj, m: len(b.seen)}
	b.adj = nil
	b.seen = nil
	return g
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// Name reports the topology name given at construction (e.g. "hypercube(8)").
func (g *Graph) Name() string { return g.name }

// N reports the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M reports the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree reports the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree reports the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// Neighbors returns the sorted adjacency list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() || u == v {
		return false
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// String returns a short description such as "mesh(8x8): n=64 m=112".
func (g *Graph) String() string {
	return fmt.Sprintf("%s: n=%d m=%d", g.name, g.N(), g.M())
}
