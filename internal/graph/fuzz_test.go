package graph

import "testing"

// FuzzParseDims hammers the topology-name parser: it must never panic and
// must only accept well-formed dimension lists.
func FuzzParseDims(f *testing.F) {
	f.Add("mesh(3x4x5)")
	f.Add("mesh()")
	f.Add("mesh(x)")
	f.Add("mesh(3x)")
	f.Add("torus(2x2)")
	f.Add("")
	f.Fuzz(func(t *testing.T, name string) {
		dims, ok := parseDims(name, "mesh(")
		if !ok {
			return
		}
		if len(dims) == 0 {
			t.Fatalf("accepted %q with no dimensions", name)
		}
		for _, d := range dims {
			if d < 0 {
				t.Fatalf("accepted %q with negative dimension", name)
			}
		}
	})
}

// FuzzVerifyHamiltonPath checks the validator never panics on arbitrary
// order slices derived from fuzz bytes.
func FuzzVerifyHamiltonPath(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{3, 3, 3})
	f.Add([]byte{})
	g := Path(4)
	f.Fuzz(func(t *testing.T, data []byte) {
		order := make([]int, len(data))
		for i, b := range data {
			order[i] = int(b) - 8 // include out-of-range values
		}
		_ = VerifyHamiltonPath(g, order) // must not panic
	})
}
