package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Complete returns K_n, the complete graph on n vertices (n ≥ 1). This is
// the most powerful communication graph; the paper's general counting lower
// bound (Theorem 3.5) is proved on K_n and transfers to every other graph.
func Complete(n int) *Graph {
	b := NewBuilder(fmt.Sprintf("complete(%d)", n), n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Build()
}

// Path returns the list (path graph) on n vertices: 0-1-2-…-(n-1).
// The paper calls this topology "the list"; its diameter is n-1, which
// drives the Ω(n²) counting lower bound of Theorem 3.6.
func Path(n int) *Graph {
	b := NewBuilder(fmt.Sprintf("path(%d)", n), n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(v-1, v)
	}
	return b.Build()
}

// Ring returns the cycle on n vertices (n ≥ 3).
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: ring needs n ≥ 3, got %d", n))
	}
	b := NewBuilder(fmt.Sprintf("ring(%d)", n), n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(v-1, v)
	}
	b.MustAddEdge(n-1, 0)
	return b.Build()
}

// Star returns the star on n vertices with center 0. The paper's conclusion
// uses the star as the topology where counting is NOT harder than queuing:
// contention at the center forces Θ(n²) for both.
func Star(n int) *Graph {
	b := NewBuilder(fmt.Sprintf("star(%d)", n), n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, v)
	}
	return b.Build()
}

// Mesh returns the d-dimensional mesh with the given side lengths, e.g.
// Mesh(8, 8) is the 8×8 two-dimensional mesh. Vertices are numbered in
// row-major order. Every mesh has a Hamilton path (Lemma 4.6), constructed
// by HamiltonPath.
func Mesh(dims ...int) *Graph {
	n := 1
	for _, d := range dims {
		if d < 1 {
			panic(fmt.Sprintf("graph: mesh dimension %d < 1", d))
		}
		n *= d
	}
	name := "mesh("
	for i, d := range dims {
		if i > 0 {
			name += "x"
		}
		name += fmt.Sprint(d)
	}
	name += ")"
	b := NewBuilder(name, n)
	coord := make([]int, len(dims))
	for v := 0; v < n; v++ {
		meshCoords(v, dims, coord)
		for axis, d := range dims {
			if coord[axis]+1 < d {
				b.MustAddEdge(v, v+meshStride(dims, axis))
			}
		}
	}
	return b.Build()
}

// Torus returns the d-dimensional torus (mesh with wrap-around links).
// Side lengths must be ≥ 3 so that wrap edges do not duplicate mesh edges.
func Torus(dims ...int) *Graph {
	n := 1
	for _, d := range dims {
		if d < 3 {
			panic(fmt.Sprintf("graph: torus dimension %d < 3", d))
		}
		n *= d
	}
	name := "torus("
	for i, d := range dims {
		if i > 0 {
			name += "x"
		}
		name += fmt.Sprint(d)
	}
	name += ")"
	b := NewBuilder(name, n)
	coord := make([]int, len(dims))
	for v := 0; v < n; v++ {
		meshCoords(v, dims, coord)
		for axis, d := range dims {
			stride := meshStride(dims, axis)
			if coord[axis]+1 < d {
				b.MustAddEdge(v, v+stride)
			} else {
				b.MustAddEdge(v, v-(d-1)*stride)
			}
		}
	}
	return b.Build()
}

// meshStride returns the vertex-number stride of one step along axis.
func meshStride(dims []int, axis int) int {
	stride := 1
	for i := len(dims) - 1; i > axis; i-- {
		stride *= dims[i]
	}
	return stride
}

// meshCoords fills coord with the coordinates of vertex v (row-major).
func meshCoords(v int, dims []int, coord []int) {
	for i := len(dims) - 1; i >= 0; i-- {
		coord[i] = v % dims[i]
		v /= dims[i]
	}
}

// Hypercube returns the hypercube of dimension d (n = 2^d vertices);
// vertices are adjacent iff their labels differ in exactly one bit.
func Hypercube(d int) *Graph {
	if d < 0 || d > 30 {
		panic(fmt.Sprintf("graph: hypercube dimension %d out of range", d))
	}
	n := 1 << d
	b := NewBuilder(fmt.Sprintf("hypercube(%d)", d), n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.MustAddEdge(v, w)
			}
		}
	}
	return b.Build()
}

// PerfectMAryTree returns the perfect m-ary tree with the given number of
// full levels (levels ≥ 1 gives a single root). Every internal node has
// exactly m children and all leaves share the same depth, levels-1.
// Vertex 0 is the root and children of v are m·v+1 … m·v+m (heap order).
func PerfectMAryTree(m, levels int) *Graph {
	if m < 2 {
		panic(fmt.Sprintf("graph: m-ary tree needs m ≥ 2, got %d", m))
	}
	if levels < 1 {
		panic(fmt.Sprintf("graph: m-ary tree needs ≥ 1 level, got %d", levels))
	}
	n := perfectTreeSize(m, levels)
	b := NewBuilder(fmt.Sprintf("perfect%darytree(depth=%d)", m, levels-1), n)
	for v := 0; ; v++ {
		first := m*v + 1
		if first >= n {
			break
		}
		for c := first; c < first+m && c < n; c++ {
			b.MustAddEdge(v, c)
		}
	}
	return b.Build()
}

// perfectTreeSize returns (m^levels - 1)/(m - 1), the number of nodes of a
// perfect m-ary tree with the given number of levels.
func perfectTreeSize(m, levels int) int {
	n := 0
	p := 1
	for i := 0; i < levels; i++ {
		n += p
		p *= m
	}
	return n
}

// Caterpillar returns the high-diameter family used for Theorem 4.13:
// spine = ⌊n^spineExp⌋ vertices form a path and the remaining n−spine
// vertices hang off the spine in balanced bunches (round-robin), so each
// spine vertex carries ⌈(n−spine)/spine⌉ legs at most. With spineExp ≥ 1/2
// the maximum degree — and hence the BFS spanning tree degree — stays
// bounded by a small constant while the diameter is Θ(n^spineExp),
// realizing the paper's "diameter Ω(n^{1/2+δ}) with a constant-degree
// spanning tree" hypothesis (δ = spineExp − 1/2).
func Caterpillar(n int, spineExp float64) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: caterpillar needs n ≥ 2, got %d", n))
	}
	if spineExp <= 0 || spineExp > 1 {
		panic(fmt.Sprintf("graph: caterpillar spine exponent %v out of (0,1]", spineExp))
	}
	spine := int(math.Pow(float64(n), spineExp))
	if spine < 1 {
		spine = 1
	}
	if spine > n {
		spine = n
	}
	b := NewBuilder(fmt.Sprintf("caterpillar(%d,exp=%.2f)", n, spineExp), n)
	for v := 1; v < spine; v++ {
		b.MustAddEdge(v-1, v)
	}
	// Hang the remaining vertices off spine vertices round-robin so the
	// legs per spine vertex differ by at most one.
	for v := spine; v < n; v++ {
		b.MustAddEdge(v, (v-spine)%spine)
	}
	return b.Build()
}

// RandomRegular returns a random d-regular simple graph on n vertices built
// by the pairing model with retries, seeded deterministically. n·d must be
// even and d < n. The result is not guaranteed connected for tiny n, so
// callers should check IsConnected; for d ≥ 3 and n ≥ 10 it almost always is.
func RandomRegular(n, d int, seed int64) *Graph {
	if n*d%2 != 0 {
		panic(fmt.Sprintf("graph: random regular needs n·d even, got n=%d d=%d", n, d))
	}
	if d >= n {
		panic(fmt.Sprintf("graph: random regular needs d < n, got n=%d d=%d", n, d))
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; ; attempt++ {
		if g, ok := tryPairing(n, d, rng); ok {
			return g
		}
		if attempt > 1000 {
			panic("graph: random regular pairing failed repeatedly")
		}
	}
}

func tryPairing(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := NewBuilder(fmt.Sprintf("random%dregular(%d)", d, n), n)
	for i := 0; i < len(stubs); i += 2 {
		if b.AddEdge(stubs[i], stubs[i+1]) != nil {
			return nil, false // self-loop or duplicate: resample
		}
	}
	return b.Build(), true
}
