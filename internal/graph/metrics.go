package graph

// BFS returns the distance (in hops) from src to every vertex, with -1 for
// unreachable vertices, together with a BFS parent array (parent[src] = src,
// parent[v] = -1 for unreachable v). Neighbors are visited in ascending
// order, so the result is deterministic.
func (g *Graph) BFS(src int) (dist, parent []int) {
	n := g.N()
	dist = make([]int, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// IsConnected reports whether the graph is connected. The empty graph and
// the single vertex are connected.
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum distance from v to any vertex, or -1 if
// some vertex is unreachable from v.
func (g *Graph) Eccentricity(v int) int {
	dist, _ := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter by running a BFS from every vertex
// (O(n·m)); it returns -1 for disconnected graphs. Intended for the problem
// sizes used in the experiments (n up to a few thousand).
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return 0
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		ecc := g.Eccentricity(v)
		if ecc < 0 {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// DiameterDoubleSweep returns a fast lower bound on the diameter using the
// double-sweep heuristic (exact on trees). Useful for large instances where
// the exact all-pairs computation is too slow.
func (g *Graph) DiameterDoubleSweep() int {
	if g.N() == 0 {
		return 0
	}
	dist, _ := g.BFS(0)
	far := argmax(dist)
	dist2, _ := g.BFS(far)
	return dist2[argmax(dist2)]
}

func argmax(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		h[g.Degree(v)]++
	}
	return h
}
