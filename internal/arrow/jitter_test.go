package arrow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

func TestOneShotUnderJitterOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr := tree.MustFromParents(0, parent)
		b := graph.NewBuilder("rt", n)
		for v := 1; v < n; v++ {
			b.MustAddEdge(v, parent[v])
		}
		g := b.Build()
		req := make([]bool, n)
		for i := range req {
			req[i] = rng.Intn(2) == 0
		}
		cfg := sim.Config{Delay: sim.JitterDelay{Seed: seed, Max: 1 + rng.Intn(6)}}
		res, err := RunOneShotConfig(g, tr, rng.Intn(n), req, cfg)
		if err != nil {
			return false
		}
		want := 0
		for _, r := range req {
			if r {
				want++
			}
		}
		return len(res.Order) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWithResponseDelayIncludesReturnPath(t *testing.T) {
	// Single remote requester: default delay = dist(v, tail); response
	// mode = 2×dist (request there, response back).
	g, tr := pathSetup(t, 12)
	req := reqSet(12, 11)
	base, err := RunOneShot(g, tr, 0, req, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := RunOneShot(g, tr, 0, req, 1, WithResponse())
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalDelay != 11 {
		t.Errorf("base delay = %d, want 11", base.TotalDelay)
	}
	if resp.TotalDelay != 22 {
		t.Errorf("response delay = %d, want 22", resp.TotalDelay)
	}
}

func TestJitterSlowsButPreservesTotalOrderSemantics(t *testing.T) {
	g, tr := pathSetup(t, 24)
	req := reqAll(24)
	unit, err := RunOneShot(g, tr, 0, req, 1)
	if err != nil {
		t.Fatal(err)
	}
	jit, err := RunOneShotConfig(g, tr, 0, req, sim.Config{Delay: sim.JitterDelay{Seed: 2, Max: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if jit.TotalDelay < unit.TotalDelay {
		t.Errorf("jitter total %d below unit-delay total %d", jit.TotalDelay, unit.TotalDelay)
	}
	if len(jit.Order) != len(unit.Order) {
		t.Errorf("order sizes differ: %d vs %d", len(jit.Order), len(unit.Order))
	}
}
