package arrow

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/tree"
)

// Request is one queuing operation in a long-lived execution: node Node
// issues an operation at round Time. Operation identifiers are indices into
// the request slice.
type Request struct {
	Node, Time int
}

// LongLived runs the arrow protocol in the long-lived setting analyzed by
// Kuhn & Wattenhofer (SPAA 2004, reference [8] of the paper): queuing
// requests arrive over time rather than all at time zero. Path reversal
// needs no modification — this type exists to schedule issuance, keep
// per-operation bookkeeping when nodes issue repeatedly, and verify the
// real-time consistency of the resulting order.
type LongLived struct {
	tree        *tree.Tree
	router      *tree.Router
	initialTail int
	reqs        []Request

	byTime map[int][]int // issue round → op ids
	lastT  int

	link []int
	id   []int // id[v] = last op id originated at v (or Head at tail)
	pred []int // per op
	done []int // per op: completion round, -1 until then
}

// NewLongLived prepares a long-lived arrow execution on spanning tree t.
// Requests may share nodes and times; issuance at one node in one round is
// processed in slice order.
func NewLongLived(t *tree.Tree, initialTail int, reqs []Request) (*LongLived, error) {
	n := t.N()
	if initialTail < 0 || initialTail >= n {
		return nil, fmt.Errorf("arrow: initial tail %d out of range", initialTail)
	}
	p := &LongLived{
		tree:        t,
		router:      t.NewRouter(),
		initialTail: initialTail,
		reqs:        append([]Request(nil), reqs...),
		byTime:      make(map[int][]int),
		link:        make([]int, n),
		id:          make([]int, n),
		pred:        make([]int, len(reqs)),
		done:        make([]int, len(reqs)),
	}
	for op, r := range p.reqs {
		if r.Node < 0 || r.Node >= n {
			return nil, fmt.Errorf("arrow: request %d node %d out of range", op, r.Node)
		}
		if r.Time < 0 {
			return nil, fmt.Errorf("arrow: request %d time %d negative", op, r.Time)
		}
		p.byTime[r.Time] = append(p.byTime[r.Time], op)
		if r.Time > p.lastT {
			p.lastT = r.Time
		}
		p.pred[op] = None
		p.done[op] = -1
	}
	for v := 0; v < n; v++ {
		if v == initialTail {
			p.link[v] = v
		} else {
			p.link[v] = p.router.NextHop(v, initialTail)
		}
		p.id[v] = None
	}
	p.id[initialTail] = Head
	return p, nil
}

// PendingUntil implements sim.Scheduler.
func (p *LongLived) PendingUntil() int { return p.lastT }

// Start issues the requests scheduled for round zero.
func (p *LongLived) Start(env *sim.Env, node int) {
	p.issueDue(env, node)
}

// Tick issues the requests scheduled for the current round.
func (p *LongLived) Tick(env *sim.Env, node int) {
	p.issueDue(env, node)
}

func (p *LongLived) issueDue(env *sim.Env, node int) {
	for _, op := range p.byTime[env.Round()] {
		if p.reqs[op].Node == node {
			p.issue(env, node, op)
		}
	}
}

// issue performs the atomic arrow issuance step for op at node.
func (p *LongLived) issue(env *sim.Env, node, op int) {
	target := p.link[node]
	prev := p.id[node]
	p.id[node] = op
	if target == node {
		// The node holds the tail pointer (initially, or because its
		// own previous operation is the current tail).
		p.pred[op] = prev
		p.done[op] = env.Round()
		return
	}
	p.link[node] = node
	env.Send(node, target, sim.Message{Kind: kindQueue, A: op})
}

// Deliver handles chasing queue messages exactly as in the one-shot case.
func (p *LongLived) Deliver(env *sim.Env, node int, m sim.Message) {
	if m.Kind != kindQueue {
		env.Fail(fmt.Errorf("arrow: long-lived got unexpected kind %d", m.Kind))
		return
	}
	op := m.A
	old := p.link[node]
	p.link[node] = m.From
	if old == node {
		p.pred[op] = p.id[node]
		p.done[op] = env.Round()
		return
	}
	env.Send(node, old, sim.Message{Kind: kindQueue, A: op})
}

// Pred returns the predecessor op of op (Head for the first), or None.
func (p *LongLived) Pred(op int) int { return p.pred[op] }

// CompletedAt returns the round op found its predecessor, or -1.
func (p *LongLived) CompletedAt(op int) int { return p.done[op] }

// Latency returns completion round minus issue round, or -1 if incomplete.
func (p *LongLived) Latency(op int) int {
	if p.done[op] < 0 {
		return -1
	}
	return p.done[op] - p.reqs[op].Time
}

// TotalLatency sums the latencies of all operations.
func (p *LongLived) TotalLatency() int {
	total := 0
	for op := range p.reqs {
		total += p.Latency(op)
	}
	return total
}

// Order reconstructs the total order of operation ids from the predecessor
// pointers.
func (p *LongLived) Order() ([]int, error) {
	succ := make(map[int]int, len(p.reqs))
	for op := range p.reqs {
		pr := p.pred[op]
		if pr == None {
			return nil, fmt.Errorf("arrow: op %d incomplete", op)
		}
		if _, dup := succ[pr]; dup {
			return nil, fmt.Errorf("arrow: two ops claim predecessor %d", pr)
		}
		succ[pr] = op
	}
	order := make([]int, 0, len(p.reqs))
	for cur, ok := succ[Head]; ok; cur, ok = succ[cur] {
		order = append(order, cur)
	}
	if len(order) != len(p.reqs) {
		return nil, fmt.Errorf("arrow: chain covers %d of %d ops", len(order), len(p.reqs))
	}
	return order, nil
}

// VerifyRealTimeOrder checks the real-time guarantee distributed queuing
// actually provides: ordering is preserved across *quiescent points*. If at
// the moment operation b is issued every earlier-issued operation has
// already completed, then b must appear after all of them in the queue.
//
// Note the deliberately weaker premise than "a completed before b was
// issued": in the arrow protocol an operation can learn its predecessor
// while that predecessor's own queue message is still chasing, so its
// *position* in the chain is not anchored at its completion time. A
// stronger per-pair real-time check is genuinely violated by correct
// executions (our property tests found such interleavings); queuing's
// specification orders concurrent operations arbitrarily.
func (p *LongLived) VerifyRealTimeOrder() error {
	order, err := p.Order()
	if err != nil {
		return err
	}
	pos := make([]int, len(p.reqs))
	for i, op := range order {
		pos[op] = i
	}
	// Scan ops by issue time, looking for quiescent points.
	byIssue := make([]int, len(p.reqs))
	for op := range byIssue {
		byIssue[op] = op
	}
	sort.Slice(byIssue, func(i, j int) bool {
		return p.reqs[byIssue[i]].Time < p.reqs[byIssue[j]].Time
	})
	maxDone := -1
	maxPos := -1
	for i := 0; i < len(byIssue); {
		// Group ops sharing an issue time.
		j := i
		t := p.reqs[byIssue[i]].Time
		for j < len(byIssue) && p.reqs[byIssue[j]].Time == t {
			j++
		}
		if i > 0 && maxDone < t {
			// Quiescent point: everything issued before t also
			// completed before t, so it must all precede this group.
			for _, op := range byIssue[i:j] {
				if pos[op] < maxPos {
					return fmt.Errorf("arrow: op %d issued at quiescent time %d placed at %d, before an earlier completed op at %d",
						op, t, pos[op], maxPos)
				}
			}
		}
		for _, op := range byIssue[i:j] {
			if p.done[op] > maxDone {
				maxDone = p.done[op]
			}
			if pos[op] > maxPos {
				maxPos = pos[op]
			}
		}
		i = j
	}
	return nil
}
