package arrow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/nntsp"
	"repro/internal/sim"
	"repro/internal/tree"
)

// pathSetup builds the list graph and its identity path tree.
func pathSetup(t *testing.T, n int) (*graph.Graph, *tree.Tree) {
	t.Helper()
	g := graph.Path(n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	tr, err := tree.PathTree(order)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr
}

func reqAll(n int) []bool {
	r := make([]bool, n)
	for i := range r {
		r[i] = true
	}
	return r
}

func reqSet(n int, vs ...int) []bool {
	r := make([]bool, n)
	for _, v := range vs {
		r[v] = true
	}
	return r
}

func TestSingleRequesterDelayEqualsDistance(t *testing.T) {
	g, tr := pathSetup(t, 10)
	for _, v := range []int{0, 3, 9} {
		res, err := RunOneShot(g, tr, 0, reqSet(10, v), 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalDelay != v { // dist(v, tail=0) = v on the list
			t.Errorf("requester %d: delay %d, want %d", v, res.TotalDelay, v)
		}
		if len(res.Order) != 1 || res.Order[0] != v {
			t.Errorf("order = %v", res.Order)
		}
	}
}

func TestTailHolderInstant(t *testing.T) {
	g, tr := pathSetup(t, 5)
	res, err := RunOneShot(g, tr, 2, reqSet(5, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDelay != 0 {
		t.Errorf("tail holder delay = %d, want 0", res.TotalDelay)
	}
}

func TestAllRequestPathOrder(t *testing.T) {
	g, tr := pathSetup(t, 3)
	p, err := New(tr, 0, reqAll(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Graph: g}, p).Run(); err != nil {
		t.Fatal(err)
	}
	if p.Pred(0) != Head || p.Pred(1) != 0 || p.Pred(2) != 1 {
		t.Errorf("preds = %d, %d, %d", p.Pred(0), p.Pred(1), p.Pred(2))
	}
	if p.Delay(0) != 0 || p.Delay(1) != 1 || p.Delay(2) != 1 {
		t.Errorf("delays = %d, %d, %d", p.Delay(0), p.Delay(1), p.Delay(2))
	}
	order, err := p.Order()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestChasingMessages(t *testing.T) {
	// Requests at 0 and 1 with the tail at the far end: queue(0) catches
	// node 1's reversed arrow and terminates there; queue(1) travels on
	// to the tail. Known delays: 1 and 3.
	g, tr := pathSetup(t, 5)
	p, err := New(tr, 4, reqSet(5, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Graph: g}, p).Run(); err != nil {
		t.Fatal(err)
	}
	if p.Pred(0) != 1 || p.Pred(1) != Head {
		t.Errorf("preds: pred(0)=%d pred(1)=%d", p.Pred(0), p.Pred(1))
	}
	if p.Delay(0) != 1 || p.Delay(1) != 3 {
		t.Errorf("delays: %d, %d", p.Delay(0), p.Delay(1))
	}
}

func TestNoRequests(t *testing.T) {
	g, tr := pathSetup(t, 4)
	res, err := RunOneShot(g, tr, 0, make([]bool, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDelay != 0 || len(res.Order) != 0 || res.Stats.MessagesSent != 0 {
		t.Errorf("empty run: %+v", res)
	}
}

func TestValidation(t *testing.T) {
	_, tr := pathSetup(t, 4)
	if _, err := New(tr, 9, reqAll(4)); err == nil {
		t.Error("bad tail accepted")
	}
	if _, err := New(tr, 0, make([]bool, 3)); err == nil {
		t.Error("short request vector accepted")
	}
	// Tree not spanning the graph.
	g2 := graph.Star(4)
	if _, err := RunOneShot(g2, tr, 0, reqAll(4), 1); err == nil {
		t.Error("non-spanning tree accepted")
	}
}

func TestWithResponseDominatesDefault(t *testing.T) {
	g, tr := pathSetup(t, 16)
	req := reqSet(16, 2, 5, 9, 15)
	base, err := RunOneShot(g, tr, 0, req, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := RunOneShot(g, tr, 0, req, 1, WithResponse())
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalDelay < base.TotalDelay {
		t.Errorf("response-mode delay %d below base %d", resp.TotalDelay, base.TotalDelay)
	}
	// Orders must agree: the response only reports, never reorders.
	if len(resp.Order) != len(base.Order) {
		t.Fatalf("order lengths differ")
	}
	for i := range base.Order {
		if base.Order[i] != resp.Order[i] {
			t.Errorf("orders diverge at %d", i)
		}
	}
}

func TestPerfectBinaryTreeOrderValid(t *testing.T) {
	g := graph.PerfectMAryTree(2, 5)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOneShot(g, tr, 0, reqAll(g.N()), tr.MaxDegree())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != g.N() {
		t.Errorf("order covers %d of %d", len(res.Order), g.N())
	}
}

func TestTheorem41ArrowWithinTwiceNNTSP(t *testing.T) {
	// Theorem 4.1: with constant-degree trees and expanded steps
	// (capacity = max tree degree), the total arrow delay is at most
	// twice the nearest-neighbour TSP cost visiting R from the tail.
	rng := rand.New(rand.NewSource(77))
	shapes := []struct {
		name string
		g    *graph.Graph
		mk   func() *tree.Tree
	}{
		{"path64", graph.Path(64), func() *tree.Tree {
			order := make([]int, 64)
			for i := range order {
				order[i] = i
			}
			tr, _ := tree.PathTree(order)
			return tr
		}},
		{"perfect2x6", graph.PerfectMAryTree(2, 6), func() *tree.Tree {
			tr, _ := tree.BFSTree(graph.PerfectMAryTree(2, 6), 0)
			return tr
		}},
		{"perfect3x4", graph.PerfectMAryTree(3, 4), func() *tree.Tree {
			tr, _ := tree.BFSTree(graph.PerfectMAryTree(3, 4), 0)
			return tr
		}},
	}
	for _, sh := range shapes {
		tr := sh.mk()
		n := sh.g.N()
		for trial := 0; trial < 20; trial++ {
			req := make([]bool, n)
			var reqList []int
			for v := 0; v < n; v++ {
				if rng.Intn(3) == 0 {
					req[v] = true
					reqList = append(reqList, v)
				}
			}
			if len(reqList) == 0 {
				continue
			}
			tail := rng.Intn(n)
			res, err := RunOneShot(sh.g, tr, tail, req, tr.MaxDegree())
			if err != nil {
				t.Fatal(err)
			}
			tour, err := nntsp.Greedy(tr, reqList, tail)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalDelay > 2*tour.Cost {
				t.Errorf("%s trial %d: arrow %d > 2×NNTSP %d (|R|=%d)",
					sh.name, trial, res.TotalDelay, 2*tour.Cost, len(reqList))
			}
		}
	}
}

func TestOrderPropertyRandomTrees(t *testing.T) {
	// Property: on random trees with random request sets the arrow
	// protocol always produces a valid total order, under both unit and
	// expanded capacity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr := tree.MustFromParents(0, parent)
		b := graph.NewBuilder("rt", n)
		for v := 1; v < n; v++ {
			b.MustAddEdge(v, parent[v])
		}
		g := b.Build()
		req := make([]bool, n)
		for v := range req {
			req[v] = rng.Intn(2) == 0
		}
		tail := rng.Intn(n)
		for _, cap := range []int{1, tr.MaxDegree()} {
			res, err := RunOneShot(g, tr, tail, req, cap)
			if err != nil {
				return false
			}
			want := 0
			for _, r := range req {
				if r {
					want++
				}
			}
			if len(res.Order) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	g, tr := pathSetup(t, 32)
	req := reqSet(32, 1, 5, 8, 13, 21, 30)
	r1, err := RunOneShot(g, tr, 4, req, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunOneShot(g, tr, 4, req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalDelay != r2.TotalDelay || r1.Stats.Rounds != r2.Stats.Rounds ||
		r1.Stats.MessagesSent != r2.Stats.MessagesSent {
		t.Errorf("replay diverged: %+v vs %+v", r1, r2)
	}
}
