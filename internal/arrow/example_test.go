package arrow_test

import (
	"fmt"
	"log"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/tree"
)

// ExampleRunOneShot runs the arrow protocol on a small list: three nodes
// issue queuing operations at time zero and each learns its predecessor.
func ExampleRunOneShot() {
	g := graph.Path(6)
	order := []int{0, 1, 2, 3, 4, 5}
	tr, err := tree.PathTree(order)
	if err != nil {
		log.Fatal(err)
	}
	requests := make([]bool, 6)
	requests[1], requests[3], requests[5] = true, true, true

	res, err := arrow.RunOneShot(g, tr, 0, requests, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("queue order:", res.Order)
	fmt.Println("total delay:", res.TotalDelay)
	// Output:
	// queue order: [1 3 5]
	// total delay: 5
}

// ExampleNewLongLived schedules requests over time; the protocol still
// produces one global order.
func ExampleNewLongLived() {
	tr, err := tree.PathTree([]int{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	p, err := arrow.NewLongLived(tr, 0, []arrow.Request{
		{Node: 3, Time: 0},
		{Node: 1, Time: 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = p // run it with sim.New(sim.Config{Graph: g}, p).Run()
	fmt.Println("ops scheduled:", 2)
	// Output:
	// ops scheduled: 2
}
