package arrow

import (
	"context"
	"sync"
	"testing"

	"repro/countq"
	"repro/internal/sim"
)

// newTestBridge builds a free-running arrow-queue bridge on the given
// topology.
func newTestBridge(t *testing.T, topo string, nodes int, delay sim.DelayModel) *sim.Bridge {
	t.Helper()
	b, err := sim.NewBridge(sim.BridgeConfig{
		Topo:  topo,
		Nodes: nodes,
		Queue: true,
		Proto: newQueueBridge,
		Delay: delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// TestBridgeQueueOrder drives concurrent sessions through the arrow
// bridge and checks the queuing correctness condition: all (id, pred)
// pairs form one total order behind Head. Exercised on the star (chases
// collide at the hub), the list (chases travel the diameter) and under
// jitter (chase messages reorder in flight; per-link FIFO must still
// yield one chain).
func TestBridgeQueueOrder(t *testing.T) {
	for _, tc := range []struct {
		name  string
		topo  string
		nodes int
		delay sim.DelayModel
	}{
		{"star9", "star", 9, nil},
		{"list6", "list", 6, nil},
		{"star9-jitter3", "star", 9, sim.JitterDelay{Seed: 7, Max: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := newTestBridge(t, tc.topo, tc.nodes, tc.delay)
			const workers, perWorker = 4, 32
			ids := make([][]int64, workers)
			preds := make([][]int64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				sess, err := b.NewSession()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(w int, sess countq.Session) {
					defer wg.Done()
					defer sess.Close()
					for i := 0; i < perWorker; i++ {
						id := int64(w*perWorker + i + 1)
						pred, err := sess.Enqueue(context.Background(), id)
						if err != nil {
							t.Error(err)
							return
						}
						ids[w] = append(ids[w], id)
						preds[w] = append(preds[w], pred)
					}
				}(w, sess)
			}
			wg.Wait()
			var allIDs, allPreds []int64
			for w := 0; w < workers; w++ {
				allIDs = append(allIDs, ids[w]...)
				allPreds = append(allPreds, preds[w]...)
			}
			if len(allIDs) != workers*perWorker {
				t.Fatalf("completed %d ops, want %d", len(allIDs), workers*perWorker)
			}
			if err := countq.ValidateOrder(allIDs, allPreds); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBridgeQueueLocalTail checks the protocol's fast path: consecutive
// operations from one session find the tail locally after the first chase
// — the ordering point migrated to the requester, so no further messages
// are needed while it holds the tail.
func TestBridgeQueueLocalTail(t *testing.T) {
	b := newTestBridge(t, "star", 9, nil)
	sess, err := b.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()
	// First op chases to the initial tail holder (the root).
	if pred, err := sess.Enqueue(ctx, 1); err != nil || pred != countq.Head {
		t.Fatalf("first enqueue: pred=%d err=%v, want Head", pred, err)
	}
	_, msgsAfterFirst := b.SimStats()
	// Subsequent ops from the same node hold the tail: predecessor chains
	// locally and no protocol message is sent.
	for i := int64(2); i <= 10; i++ {
		pred, err := sess.Enqueue(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if pred != i-1 {
			t.Fatalf("op %d: pred=%d, want %d (local tail chain)", i, pred, i-1)
		}
	}
	if _, msgs := b.SimStats(); msgs != msgsAfterFirst {
		t.Errorf("local-tail ops sent %d messages, want 0 (fast path routes nothing)", msgs-msgsAfterFirst)
	}
}

// TestBridgeQueueSimStats checks the bridge reports simulated rounds
// alongside wall latency: a chase over the list topology's diameter costs
// at least that many rounds.
func TestBridgeQueueSimStats(t *testing.T) {
	b := newTestBridge(t, "list", 8, nil)
	sess, err := b.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Enqueue(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	rounds, msgs := b.SimStats()
	if rounds < 1 || msgs < 1 {
		t.Errorf("SimStats = (%d rounds, %d msgs) after a routed op, want both ≥ 1", rounds, msgs)
	}
}
