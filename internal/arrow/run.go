package arrow

import (
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Result summarizes a one-shot arrow execution.
type Result struct {
	Stats      sim.Stats
	TotalDelay int
	MaxDelay   int
	Order      []int // operations in queue order
}

// RunOneShot executes the arrow protocol on spanning tree t of graph g with
// the given initial tail and request set, under the model's per-round
// send/receive capacity (0 means 1; pass t.MaxDegree() for the paper's
// "expanded time step" accounting used by Theorem 4.1).
func RunOneShot(g *graph.Graph, t *tree.Tree, tail int, requests []bool, capacity int, opts ...Option) (*Result, error) {
	return RunOneShotConfig(g, t, tail, requests, sim.Config{Capacity: capacity}, opts...)
}

// RunOneShotConfig is RunOneShot with full simulator configuration (link
// delay models, strict mode, round bounds); cfg.Graph is overridden by g.
func RunOneShotConfig(g *graph.Graph, t *tree.Tree, tail int, requests []bool, cfg sim.Config, opts ...Option) (*Result, error) {
	p, err := New(t, tail, requests, opts...)
	if err != nil {
		return nil, err
	}
	if err := t.IsSpanningOf(g); err != nil {
		return nil, err
	}
	cfg.Graph = g
	nw := sim.New(cfg, p)
	stats, err := nw.Run()
	if err != nil {
		return nil, err
	}
	order, err := p.Order()
	if err != nil {
		return nil, err
	}
	return &Result{
		Stats:      stats,
		TotalDelay: p.TotalDelay(),
		MaxDelay:   p.MaxDelay(),
		Order:      order,
	}, nil
}
