// Package arrow implements the arrow distributed queuing protocol of
// Raymond (1989) and Demmer–Herlihy (1998) on the synchronous network
// simulator, in the one-shot concurrent setting analyzed in Section 4 of
// Busch & Tirthapura.
//
// The protocol runs on a spanning tree T of the communication graph. Every
// node v keeps an arrow link(v) pointing to the tree neighbor through which
// the current queue tail can be reached (or to v itself if v holds the
// tail), and id(v), the identifier of the last operation that originated at
// v. A queuing operation sends a queue(a) message that chases the arrows,
// reversing each one it crosses; when it reaches a node whose arrow points
// to itself, the operation is queued behind that node's last operation.
//
// One-shot operation identifiers are the originating node ids. The delay of
// an operation is, by default, the round in which its queue message
// terminates (the accounting used by Theorem 4.1); with WithResponse set,
// an explicit response message is routed back over the tree and the delay is
// its delivery round.
package arrow

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tree"
)

// Message kinds.
const (
	kindQueue    = iota + 1 // A = operation id (origin node)
	kindResponse            // A = operation id, B = predecessor op id
)

// Head is the pseudo-identifier of the queue head: the predecessor reported
// to the first operation in the total order.
const Head = -1

// None marks a node with no completed operation.
const None = -2

// Protocol is the arrow protocol state for one one-shot execution.
// Construct with New, run it under sim.New, then inspect Pred/Delay.
type Protocol struct {
	tree        *tree.Tree
	router      *tree.Router
	initialTail int
	requests    []bool
	withResp    bool

	link  []int
	id    []int
	pred  []int // pred[v] = predecessor of v's op; None if absent/incomplete
	delay []int // delay[v] = completion round of v's op; -1 if incomplete
}

// Option configures a Protocol.
type Option func(*Protocol)

// WithResponse makes the terminating node route an explicit response back
// to the operation's origin; delays then include the return path and its
// contention. Theorem 4.1's accounting (the default) charges only the
// queue-message path.
func WithResponse() Option { return func(p *Protocol) { p.withResp = true } }

// New prepares a one-shot arrow execution on spanning tree t with the given
// initial tail node and request set (requests[v] reports whether v issues a
// queuing operation at time zero).
func New(t *tree.Tree, initialTail int, requests []bool, opts ...Option) (*Protocol, error) {
	n := t.N()
	if len(requests) != n {
		return nil, fmt.Errorf("arrow: request vector has %d entries, want %d", len(requests), n)
	}
	if initialTail < 0 || initialTail >= n {
		return nil, fmt.Errorf("arrow: initial tail %d out of range", initialTail)
	}
	p := &Protocol{
		tree:        t,
		router:      t.NewRouter(),
		initialTail: initialTail,
		requests:    append([]bool(nil), requests...),
		link:        make([]int, n),
		id:          make([]int, n),
		pred:        make([]int, n),
		delay:       make([]int, n),
	}
	for _, o := range opts {
		o(p)
	}
	// Initialization (free, per the paper's model): arrows point toward
	// the initial tail; id(v) is None everywhere except the tail, which
	// holds the queue-head pseudo-operation.
	for v := 0; v < n; v++ {
		if v == initialTail {
			p.link[v] = v
		} else {
			p.link[v] = p.router.NextHop(v, initialTail)
		}
		p.id[v] = None
		p.pred[v] = None
		p.delay[v] = -1
	}
	p.id[initialTail] = Head
	return p, nil
}

// Start issues node's queuing operation at time zero.
func (p *Protocol) Start(env *sim.Env, node int) {
	if !p.requests[node] {
		return
	}
	target := p.link[node]
	prev := p.id[node] // Head iff node is the initial tail
	p.id[node] = node
	if target == node {
		// The node holds the tail: its operation queues behind the
		// head pseudo-operation instantly, with zero delay.
		p.complete(env, node, node, prev)
		return
	}
	p.link[node] = node
	env.Send(node, target, sim.Message{Kind: kindQueue, A: node})
}

// Deliver handles queue and response messages.
func (p *Protocol) Deliver(env *sim.Env, node int, m sim.Message) {
	switch m.Kind {
	case kindQueue:
		op := m.A
		old := p.link[node]
		p.link[node] = m.From
		if old == node {
			// Terminated: op is queued behind id(node).
			p.complete(env, node, op, p.id[node])
			return
		}
		env.Send(node, old, sim.Message{Kind: kindQueue, A: op})
	case kindResponse:
		if m.B == None {
			env.Fail(fmt.Errorf("arrow: response with no predecessor"))
			return
		}
		if node != m.A {
			// Route onward toward the origin.
			env.Send(node, p.router.NextHop(node, m.A), m)
			return
		}
		p.pred[node] = m.B
		p.delay[node] = env.Round()
	}
}

// complete records that op's predecessor was determined at node `at`.
func (p *Protocol) complete(env *sim.Env, at, op, pred int) {
	if !p.withResp || at == op {
		p.pred[op] = pred
		p.delay[op] = env.Round()
		return
	}
	env.Send(at, p.router.NextHop(at, op), sim.Message{Kind: kindResponse, A: op, B: pred})
}

// Pred returns the predecessor operation of node v's operation (Head for
// the first in the order), or None if v issued no operation.
func (p *Protocol) Pred(v int) int { return p.pred[v] }

// Delay returns the completion round of v's operation, or -1.
func (p *Protocol) Delay(v int) int { return p.delay[v] }

// TotalDelay sums the delays of all requests (the paper's concurrent delay
// complexity for this request set).
func (p *Protocol) TotalDelay() int {
	total := 0
	for v, req := range p.requests {
		if req {
			total += p.delay[v]
		}
	}
	return total
}

// MaxDelay returns the largest single-operation delay.
func (p *Protocol) MaxDelay() int {
	max := 0
	for v, req := range p.requests {
		if req && p.delay[v] > max {
			max = p.delay[v]
		}
	}
	return max
}

// Order reconstructs the total order of operations from the predecessor
// pointers, starting at the queue head.
func (p *Protocol) Order() ([]int, error) {
	succ := make(map[int]int)
	count := 0
	for v, req := range p.requests {
		if !req {
			continue
		}
		count++
		pr := p.pred[v]
		if pr == None {
			return nil, fmt.Errorf("arrow: operation %d incomplete", v)
		}
		if _, dup := succ[pr]; dup {
			return nil, fmt.Errorf("arrow: two operations claim predecessor %d", pr)
		}
		succ[pr] = v
	}
	order := make([]int, 0, count)
	cur, ok := succ[Head]
	for ok {
		order = append(order, cur)
		cur, ok = succ[cur]
	}
	if len(order) != count {
		return nil, fmt.Errorf("arrow: predecessor chain covers %d of %d operations", len(order), count)
	}
	return order, nil
}

// VerifyOrder checks that the predecessor pointers of all requests form a
// single total order starting at the queue head — the correctness condition
// of distributed queuing.
func (p *Protocol) VerifyOrder() error {
	_, err := p.Order()
	return err
}
