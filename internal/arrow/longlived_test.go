package arrow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

func runLongLived(t *testing.T, g *graph.Graph, tr *tree.Tree, tail int, reqs []Request) *LongLived {
	t.Helper()
	p, err := NewLongLived(tr, tail, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Graph: g}, p).Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLongLivedSequentialRequests(t *testing.T) {
	g, tr := pathSetup(t, 8)
	// Three requests far apart in time: strictly sequential behavior.
	reqs := []Request{{Node: 7, Time: 0}, {Node: 3, Time: 40}, {Node: 5, Time: 80}}
	p := runLongLived(t, g, tr, 0, reqs)
	order, err := p.Order()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 1, 2} {
		if order[i] != want {
			t.Errorf("order[%d] = %d, want %d", i, order[i], want)
		}
	}
	// Latency of op 0 = dist(7, tail 0) = 7. Op 1 chases to node 7:
	// dist(3,7) = 4. Op 2: dist(5,3) = 2.
	for op, want := range []int{7, 4, 2} {
		if got := p.Latency(op); got != want {
			t.Errorf("latency(op%d) = %d, want %d", op, got, want)
		}
	}
	if err := p.VerifyRealTimeOrder(); err != nil {
		t.Error(err)
	}
}

func TestLongLivedSameNodeRepeats(t *testing.T) {
	g, tr := pathSetup(t, 6)
	reqs := []Request{
		{Node: 4, Time: 0},
		{Node: 4, Time: 0},  // same node, same round: chains locally
		{Node: 4, Time: 10}, // later op from the same node
	}
	p := runLongLived(t, g, tr, 0, reqs)
	if p.Pred(1) != 0 {
		t.Errorf("pred(op1) = %d, want 0 (local chaining)", p.Pred(1))
	}
	if p.Latency(1) != 0 {
		t.Errorf("latency(op1) = %d, want 0", p.Latency(1))
	}
	if p.Pred(2) != 1 {
		t.Errorf("pred(op2) = %d, want 1", p.Pred(2))
	}
	if err := p.VerifyRealTimeOrder(); err != nil {
		t.Error(err)
	}
}

func TestLongLivedConcurrentBursts(t *testing.T) {
	g := graph.PerfectMAryTree(2, 5)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var reqs []Request
	for burst := 0; burst < 5; burst++ {
		when := burst * 9
		for k := 0; k < 6; k++ {
			reqs = append(reqs, Request{Node: rng.Intn(g.N()), Time: when})
		}
	}
	p := runLongLived(t, g, tr, 0, reqs)
	if _, err := p.Order(); err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyRealTimeOrder(); err != nil {
		t.Error(err)
	}
	if p.TotalLatency() < 0 {
		t.Error("negative total latency")
	}
}

func TestLongLivedValidation(t *testing.T) {
	_, tr := pathSetup(t, 4)
	if _, err := NewLongLived(tr, 9, nil); err == nil {
		t.Error("bad tail accepted")
	}
	if _, err := NewLongLived(tr, 0, []Request{{Node: 9, Time: 0}}); err == nil {
		t.Error("bad node accepted")
	}
	if _, err := NewLongLived(tr, 0, []Request{{Node: 1, Time: -2}}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestLongLivedEmptySchedule(t *testing.T) {
	g, tr := pathSetup(t, 4)
	p := runLongLived(t, g, tr, 0, nil)
	order, err := p.Order()
	if err != nil || len(order) != 0 {
		t.Errorf("empty schedule: order=%v err=%v", order, err)
	}
}

func TestLongLivedMatchesOneShotAtTimeZero(t *testing.T) {
	// With every request at time 0, long-lived must reproduce the
	// one-shot execution exactly (same total order, same delays).
	g, tr := pathSetup(t, 16)
	nodes := []int{2, 5, 9, 14}
	var reqs []Request
	reqVec := make([]bool, 16)
	for _, v := range nodes {
		reqs = append(reqs, Request{Node: v, Time: 0})
		reqVec[v] = true
	}
	ll := runLongLived(t, g, tr, 0, reqs)
	os, err := New(tr, 0, reqVec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Graph: g}, os).Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range nodes {
		llPred := ll.Pred(i)
		var llPredNode int
		if llPred == Head {
			llPredNode = Head
		} else {
			llPredNode = reqs[llPred].Node
		}
		if osPred := os.Pred(v); osPred != llPredNode {
			t.Errorf("node %d: one-shot pred %d, long-lived pred node %d", v, osPred, llPredNode)
		}
		if ll.CompletedAt(i) != os.Delay(v) {
			t.Errorf("node %d: delays differ: %d vs %d", v, ll.CompletedAt(i), os.Delay(v))
		}
	}
}

func TestLongLivedPropertyValidOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr := tree.MustFromParents(0, parent)
		b := graph.NewBuilder("rt", n)
		for v := 1; v < n; v++ {
			b.MustAddEdge(v, parent[v])
		}
		g := b.Build()
		var reqs []Request
		for k := 0; k < rng.Intn(25); k++ {
			reqs = append(reqs, Request{Node: rng.Intn(n), Time: rng.Intn(30)})
		}
		p, err := NewLongLived(tr, rng.Intn(n), reqs)
		if err != nil {
			return false
		}
		if _, err := sim.New(sim.Config{Graph: g}, p).Run(); err != nil {
			return false
		}
		return p.VerifyRealTimeOrder() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLongLivedUnderJitter(t *testing.T) {
	// Asynchronous links (bounded jitter) must not break the total order
	// or real-time consistency.
	g := graph.Mesh(5, 5)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	var reqs []Request
	for k := 0; k < 30; k++ {
		reqs = append(reqs, Request{Node: rng.Intn(25), Time: rng.Intn(40)})
	}
	p, err := NewLongLived(tr, 12, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Graph: g, Delay: sim.JitterDelay{Seed: 3, Max: 5}}
	if _, err := sim.New(cfg, p).Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Order(); err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyRealTimeOrder(); err != nil {
		t.Error(err)
	}
}
