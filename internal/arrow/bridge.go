package arrow

import (
	"fmt"
	"time"

	"repro/countq"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

// The bridge adapter runs the long-lived arrow protocol under the sim
// bridge, registering it as the `sim-arrow-queue` structure. This is the
// paper's fast side of the separation made campaign-measurable: where
// sim-queue routes every Enqueue to a central root (Θ(n²) contention on
// the star), arrow orders operations by distributed path reversal — each
// request chases the moving tail over at most D hops and the ordering
// point migrates to the requester, so there is no fixed hot spot. One
//
//	countq compare "sim-queue,sim-arrow-queue" -scenario "ramp?gmax=8"
//
// puts Theorem 4.1's low-congestion queuing next to the naive baseline
// under identical hop latency and capacity.

// kindChase is the bridge chase message: A = operation token. The
// terminating node reads the predecessor locally, so the chase carries
// nothing else.
const kindChase = 121

// queueBridge implements sim.BridgeProtocol with the long-lived arrow
// protocol, open to operations injected at any time (unlike LongLived's
// fixed request schedule).
type queueBridge struct {
	grants sim.Grants
	link   []int   // arrow pointers: self at a sink, else next hop tailward
	lastID []int64 // lastID[v] = user id of the last op issued at v (or Head)
}

func newQueueBridge(g *graph.Graph, tr *tree.Tree, grants sim.Grants) (sim.BridgeProtocol, error) {
	router := tr.NewRouter()
	root := tr.Root()
	n := g.N()
	p := &queueBridge{
		grants: grants,
		link:   make([]int, n),
		lastID: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		if v == root {
			p.link[v] = v
		} else {
			p.link[v] = router.NextHop(v, root)
		}
		p.lastID[v] = countq.Head
	}
	return p, nil
}

func (p *queueBridge) Start(*sim.Env, int) {}

// Issue performs the atomic arrow issuance step for the operation at its
// session's node: flip the local arrow to self and chase the old target.
// If the node already holds the tail (initially, or because its own
// previous operation is the current tail) the predecessor is local and the
// operation completes without a single message — the protocol's fast path,
// which no central protocol can offer.
//
//countq:hotpath
func (p *queueBridge) Issue(env *sim.Env, node int, token int, op countq.Op) {
	target := p.link[node]
	prev := p.lastID[node]
	p.lastID[node] = op.ID
	if target == node {
		p.grants.Grant(token, prev)
		return
	}
	p.link[node] = node
	env.Send(node, target, sim.Message{Kind: kindChase, A: token})
}

// Deliver handles chasing messages exactly as in the one-shot protocol:
// reverse the local arrow toward the sender; a sink terminates the chase
// and grants the op the id of the tail recorded there.
//
//countq:hotpath
func (p *queueBridge) Deliver(env *sim.Env, node int, m sim.Message) {
	if m.Kind != kindChase {
		failKind(env, m.Kind)
		return
	}
	old := p.link[node]
	p.link[node] = m.From
	if old == node {
		p.grants.Grant(m.A, p.lastID[node])
		return
	}
	env.Send(node, old, sim.Message{Kind: kindChase, A: m.A})
}

// failKind aborts the simulation on a foreign message kind — out of line
// so the annotated Deliver stays free of cold fmt work.
func failKind(env *sim.Env, kind int) {
	env.Fail(fmt.Errorf("arrow: bridge got unexpected message kind %d", kind))
}

func init() {
	countq.RegisterStructure(countq.StructureInfo{
		Name:         "sim-arrow-queue",
		Summary:      "distributed queuing via arrow path reversal over the simulated network (requests chase the moving tail; the ordering point migrates to the requester — no fixed hot spot)",
		Kinds:        countq.KindQueue,
		Linearizable: true,
		Params: []countq.ParamInfo{
			{Name: "hoplat", Default: "1us", Doc: "wall-clock cost of one simulated round (one message hop); 0 = free-running"},
			{Name: "nodes", Default: "9", Doc: "network size (root + leaves; sessions pin round-robin to non-root nodes)"},
			{Name: "topo", Default: "star", Doc: "topology: star (hub contention) | list (diameter) | mesh2d"},
			{Name: "cap", Default: "1", Doc: "per-node per-round send/receive capacity — the paper's c"},
			{Name: "jitter", Default: "0", Doc: "max per-message link delay in rounds (0 = deterministic unit delay)"},
			{Name: "seed", Default: "1", Doc: "seed for the jitter delay model (ignored when jitter=0)"},
			{Name: "pipeline", Default: "1024", Doc: "per-session transport depth: submit-lane capacity, completion buffer and outstanding-operation bound"},
		},
		Caps: countq.CapAsync,
		New: func(o countq.Options) (countq.Structure, error) {
			cfg := sim.BridgeConfig{
				Topo:     o.String("topo", "star"),
				Nodes:    o.Int("nodes", 0),
				HopLat:   o.Duration("hoplat", time.Microsecond),
				Capacity: o.Int("cap", 0),
				Pipeline: o.Int("pipeline", 0),
				Queue:    true,
				Proto:    newQueueBridge,
			}
			seed := o.Int("seed", 1)
			if jitter := o.Int("jitter", 0); jitter > 0 {
				cfg.Delay = sim.JitterDelay{Seed: int64(seed), Max: jitter}
			}
			if err := o.Err(); err != nil {
				return nil, err
			}
			return sim.NewBridge(cfg)
		},
	})
}
