package sim_test

// Determinism regression goldens for the round engine. Each seeded run
// records every delivery the protocol observes — round, receiving node,
// message envelope and payload — plus the final Stats and the protocol's
// own results, and the rendered trace is compared byte-for-byte against a
// committed golden file. The goldens were captured from the pre-v2 engine
// (arrivals map + per-round sort.Slice), so they pin the exact delivery
// order the timing-wheel engine must reproduce: same per-link FIFO, same
// global seq tie-breaking, same Stats — including under non-unit delay
// models, where the FIFO clamp interacts with the wheel.
//
// Regenerate with: go test ./internal/sim -run TestGoldenTraces -update
// (only legitimate after an intentional, reviewed semantics change).

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arrow"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// tracer wraps a Protocol and records every delivery in execution order.
type tracer struct {
	inner sim.Protocol
	buf   *bytes.Buffer
}

func (t *tracer) Start(env *sim.Env, node int) { t.inner.Start(env, node) }

func (t *tracer) Deliver(env *sim.Env, node int, m sim.Message) {
	fmt.Fprintf(t.buf, "r=%d node=%d from=%d to=%d sent=%d kind=%d a=%d b=%d c=%d\n",
		env.Round(), node, m.From, m.To, m.SentAt(), m.Kind, m.A, m.B, m.C)
	t.inner.Deliver(env, node, m)
}

// tracerTS additionally forwards the Ticker and Scheduler extensions, for
// long-lived protocols that inject work over time.
type tracerTS struct{ tracer }

func (t *tracerTS) Tick(env *sim.Env, node int) { t.inner.(sim.Ticker).Tick(env, node) }
func (t *tracerTS) PendingUntil() int           { return t.inner.(sim.Scheduler).PendingUntil() }

// runTraced executes cfg's protocol under the tracer and appends the final
// stats plus the protocol-specific result summary.
func runTraced(t *testing.T, cfg sim.Config, proto sim.Protocol, results func(buf *bytes.Buffer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := &tracer{inner: proto, buf: &buf}
	var wrapped sim.Protocol = tr
	_, isTicker := proto.(sim.Ticker)
	_, isSched := proto.(sim.Scheduler)
	if isTicker && isSched {
		wrapped = &tracerTS{tracer: *tr}
	} else if isTicker || isSched {
		t.Fatalf("tracer supports Ticker+Scheduler together only; got ticker=%v scheduler=%v", isTicker, isSched)
	}
	nw := sim.New(cfg, wrapped)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "stats rounds=%d sent=%d inbox=%d outbox=%d recv=%v\n",
		stats.Rounds, stats.MessagesSent, stats.MaxInboxBacklog, stats.MaxOutboxBacklog, stats.Received)
	results(&buf)
	return buf.Bytes()
}

func allRequests(n int) []bool {
	req := make([]bool, n)
	for i := range req {
		req[i] = true
	}
	return req
}

func mustBFS(t *testing.T, g *graph.Graph) *tree.Tree {
	t.Helper()
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGoldenTraces(t *testing.T) {
	type spec struct {
		name  string
		trace func(t *testing.T) []byte
	}
	star9 := func() *graph.Graph { return graph.Star(9) }
	mesh9 := func() *graph.Graph { return graph.Mesh(3, 3) }
	mesh16 := func() *graph.Graph { return graph.Mesh(4, 4) }

	centralRun := func(t *testing.T, g *graph.Graph, cfg sim.Config) []byte {
		tr := mustBFS(t, g)
		p, err := counting.NewCentral(tr, allRequests(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Graph = g
		cfg.TrackPerNode = true
		return runTraced(t, cfg, p, func(buf *bytes.Buffer) {
			for v := 0; v < g.N(); v++ {
				fmt.Fprintf(buf, "count[%d]=%d delay=%d\n", v, p.Count(v), p.Delay(v))
			}
		})
	}
	arrowRun := func(t *testing.T, g *graph.Graph, cfg sim.Config) []byte {
		tr := mustBFS(t, g)
		p, err := arrow.New(tr, 0, allRequests(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Graph = g
		cfg.TrackPerNode = true
		return runTraced(t, cfg, p, func(buf *bytes.Buffer) {
			for v := 0; v < g.N(); v++ {
				fmt.Fprintf(buf, "pred[%d]=%d delay=%d\n", v, p.Pred(v), p.Delay(v))
			}
			fmt.Fprintf(buf, "order-ok=%v\n", p.VerifyOrder() == nil)
		})
	}
	treeRun := func(t *testing.T, g *graph.Graph, cfg sim.Config) []byte {
		tr := mustBFS(t, g)
		p, err := counting.NewTreeCount(tr, allRequests(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Graph = g
		cfg.TrackPerNode = true
		return runTraced(t, cfg, p, func(buf *bytes.Buffer) {
			for v := 0; v < g.N(); v++ {
				fmt.Fprintf(buf, "count[%d]=%d delay=%d\n", v, p.Count(v), p.Delay(v))
			}
		})
	}
	staggered := func(n, ops int) []arrow.Request {
		reqs := make([]arrow.Request, ops)
		for i := range reqs {
			reqs[i] = arrow.Request{Node: (i*3 + 1) % n, Time: i / 2}
		}
		return reqs
	}

	specs := []spec{
		{"central-star9-unit", func(t *testing.T) []byte {
			return centralRun(t, star9(), sim.Config{})
		}},
		{"central-star9-cap2", func(t *testing.T) []byte {
			return centralRun(t, star9(), sim.Config{Capacity: 2})
		}},
		{"central-star9-jitter4", func(t *testing.T) []byte {
			return centralRun(t, star9(), sim.Config{Delay: sim.JitterDelay{Seed: 7, Max: 4}})
		}},
		{"central-mesh16-weighted", func(t *testing.T) []byte {
			// Per-edge fixed weights: the FIFO clamp must bind when a
			// later message takes a faster edge draw than its predecessor
			// took earlier — here delays differ per edge parity.
			w := sim.EdgeWeightDelay{Weight: func(u, v int) int { return 1 + (u+v)%3 }}
			return centralRun(t, mesh16(), sim.Config{Delay: w})
		}},
		{"arrow-mesh9-unit", func(t *testing.T) []byte {
			return arrowRun(t, mesh9(), sim.Config{})
		}},
		{"arrow-mesh9-jitter3", func(t *testing.T) []byte {
			return arrowRun(t, mesh9(), sim.Config{Delay: sim.JitterDelay{Seed: 11, Max: 3}})
		}},
		{"arrowll-path8-jitter2", func(t *testing.T) []byte {
			g := graph.Path(8)
			tr := mustBFS(t, g)
			p, err := arrow.NewLongLived(tr, 0, staggered(8, 20))
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.Config{Graph: g, TrackPerNode: true, Delay: sim.JitterDelay{Seed: 5, Max: 2}}
			return runTraced(t, cfg, p, func(buf *bytes.Buffer) {
				for op := 0; op < 20; op++ {
					fmt.Fprintf(buf, "pred[%d]=%d done=%d\n", op, p.Pred(op), p.CompletedAt(op))
				}
				fmt.Fprintf(buf, "rt-ok=%v\n", p.VerifyRealTimeOrder() == nil)
			})
		}},
		{"tree-mesh16-unit", func(t *testing.T) []byte {
			return treeRun(t, mesh16(), sim.Config{})
		}},
		{"tree-mesh16-jitter5", func(t *testing.T) []byte {
			return treeRun(t, mesh16(), sim.Config{Delay: sim.JitterDelay{Seed: 3, Max: 5}})
		}},
		{"combining-star9-jitter3", func(t *testing.T) []byte {
			g := star9()
			tr := mustBFS(t, g)
			reqs := make([]counting.Request, 24)
			for i := range reqs {
				reqs[i] = counting.Request{Node: 1 + (i*5)%8, Time: i / 3}
			}
			p, err := counting.NewCombining(tr, reqs)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.Config{Graph: g, TrackPerNode: true, Delay: sim.JitterDelay{Seed: 13, Max: 3}}
			return runTraced(t, cfg, p, func(buf *bytes.Buffer) {
				for op := range reqs {
					fmt.Fprintf(buf, "value[%d]=%d done=%d\n", op, p.ValueOf(op), p.CompletedAt(op))
				}
			})
		}},
	}

	for _, s := range specs {
		s := s
		t.Run(s.name, func(t *testing.T) {
			got := s.trace(t)
			path := filepath.Join("testdata", "golden", s.name+".trace")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to capture): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("trace diverged from the committed golden (%d vs %d bytes); the engine is no longer behavior-identical", len(got), len(want))
				// Report the first diverging line for diagnosis.
				gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
				for i := 0; i < len(gl) && i < len(wl); i++ {
					if !bytes.Equal(gl[i], wl[i]) {
						t.Errorf("first divergence at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
						break
					}
				}
			}
		})
	}
}
