package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/countq"
	"repro/internal/graph"
	"repro/internal/tree"
)

// The bridge runs a message-passing protocol as a countq Structure — the
// first backend only the session API can express. Sessions are pinned to
// leaf nodes of a simulated network; every Inc/Enqueue becomes an
// operation issued into the protocol, which routes whatever messages it
// needs and eventually grants a value back. A single pump goroutine
// advances the simulation one round per configured hop latency, so the
// coordination cost the paper reasons about — hops to the point of
// serialization, contention at its receive capacity — shows up as real
// wall-clock latency in the scenario engine's histograms, comparable in
// one campaign against the shared-memory zoo.
//
// The protocol behind the bridge is pluggable (BridgeProtocol): the
// default is the naive central protocol (internal/sim/central.go), whose
// root serializes everything — Θ(n²) hub behavior on the star. The
// paper's good protocols register themselves through ProtoMaker:
// internal/arrow routes queuing through distributed path reversal
// (sim-arrow-queue) and internal/counting routes counting through the
// combining tree (sim-tree-counter), which makes the paper's
// counting-vs-queuing separation directly measurable in one campaign.
//
// Sessions support the synchronous Session calls (each blocks for its
// round trip), BatchSession (one request grants a block), and
// AsyncSession (Submit/Completions — the pipeline that overlaps round
// trips, which no synchronous interface could express).

// bridgePipeline is the per-session completion buffer and the cap on
// operations one session may keep outstanding.
const bridgePipeline = 1024

// Grants is the completion sink a BridgeProtocol resolves operations
// into: Grant completes the operation issued under token with the granted
// value (a count-block start, or a queue predecessor id). Granting an
// unknown or already-granted token is a no-op.
type Grants interface {
	Grant(token int, value int64)
}

// BridgeProtocol is a message-passing protocol routable by the bridge.
// Implementations own all protocol state; the bridge owns sessions,
// tokens and completion delivery. Everything runs on the single pump
// goroutine, so no synchronization is needed. A protocol may additionally
// implement BridgeTicker for per-round work.
type BridgeProtocol interface {
	// Start seeds per-node protocol state before the first round.
	Start(env *Env, node int)
	// Issue injects the operation op, identified by token, at node. The
	// protocol must eventually Grant the token (the pump keeps stepping
	// rounds while any token is outstanding).
	Issue(env *Env, node int, token int, op countq.Op)
	// Deliver handles one protocol message at node.
	Deliver(env *Env, node int, m Message)
}

// BridgeTicker is an optional BridgeProtocol extension mirroring Ticker:
// Tick runs for every node after each round's receive phase — combining
// protocols use it to flush batches once per round.
type BridgeTicker interface {
	Tick(env *Env, node int)
}

// ProtoMaker builds a BridgeProtocol for the bridge's graph and spanning
// tree, resolving completions into grants. Packages register bridge specs
// by passing a ProtoMaker in BridgeConfig.Proto.
type ProtoMaker func(g *graph.Graph, tr *tree.Tree, grants Grants) (BridgeProtocol, error)

// BridgeConfig describes a bridge instance.
type BridgeConfig struct {
	// Topo is the network topology: "star" (default; hub contention),
	// "list" (diameter), or "mesh2d".
	Topo string
	// Nodes is the network size (default 9: a hub plus 8 leaves on the
	// star). Must be ≥ 2; sessions are assigned round-robin to the
	// non-root nodes.
	Nodes int
	// HopLat is the wall-clock cost of one simulated round — one message
	// hop (default 1µs). 0 advances rounds as fast as the pump can spin.
	HopLat time.Duration
	// Capacity is the per-node per-round send/receive budget, the paper's
	// c (default 1).
	Capacity int
	// Queue selects queuing semantics (sessions serve Enqueue) instead of
	// counting semantics (sessions serve Inc).
	Queue bool
	// Proto overrides the routed protocol; nil selects the central
	// protocol matching Queue.
	Proto ProtoMaker
	// Delay overrides the link delay model; nil means UnitDelay.
	Delay DelayModel
}

// Bridge runs a message-passing protocol as a countq.Structure. Close
// stops the network pump; the workload driver closes it when a run
// finishes.
type Bridge struct {
	cfg      BridgeConfig
	submit   chan bridgeOp
	done     chan struct{} // closed by Close: stop accepting, drain, exit
	pumpExit chan struct{} // closed when the pump has exited
	stop     sync.Once
	nextLeaf atomic.Uint64
	leaves   []int
	// Simulated-time mirror of the network stats, refreshed by the pump
	// once per round so callers can report simulated rounds and message
	// counts alongside wall latency without touching pump-owned state.
	simRounds atomic.Int64
	simMsgs   atomic.Int64
	// closeMu fences submission against Close: senders hold the read
	// side across the closed-flag check and the channel send, so once
	// Close holds the write side no send can be in flight — every
	// accepted operation is then either with the pump or in the buffer
	// Close drains, and the AsyncSession contract (one Completion per
	// accepted Submit) holds through shutdown.
	closeMu sync.RWMutex
	closed  bool
}

// bridgeOp is one operation in flight from a session to the pump.
type bridgeOp struct {
	node int
	op   countq.Op
	out  chan<- countq.Completion
	sess *bridgeSession // non-nil for async ops: outstanding accounting
}

// settle delivers c for o and releases the session's outstanding slot.
// Completion channels are always buffered deep enough (per-session reply
// channels hold 1; pipelines cap outstanding at their buffer), so this
// never blocks the pump.
//
//countq:hotpath
func settle(o bridgeOp, c countq.Completion) {
	o.out <- c
	if o.sess != nil {
		o.sess.outstanding.Add(-1)
	}
}

// grantTable is the pump's pending-operation store: a slot slice indexed
// by token with a free list, so steady-state issue/grant cycles reuse
// slots with no map traffic and no allocation.
type grantTable struct {
	slots []bridgeOp
	free  []int
	live  int
}

// add stores o and returns its token.
//
//countq:hotpath
func (t *grantTable) add(o bridgeOp) int {
	t.live++
	if k := len(t.free) - 1; k >= 0 {
		tok := t.free[k]
		t.free = t.free[:k]
		t.slots[tok] = o
		return tok
	}
	t.slots = append(t.slots, o)
	return len(t.slots) - 1
}

// Grant implements Grants: it completes the operation under tok with val.
//
//countq:hotpath
func (t *grantTable) Grant(tok int, val int64) {
	if tok < 0 || tok >= len(t.slots) {
		return
	}
	o := t.slots[tok]
	if o.out == nil {
		return
	}
	t.slots[tok] = bridgeOp{}
	t.free = append(t.free, tok)
	t.live--
	settle(o, countq.Completion{Op: o.op, Value: val})
}

// failAll resolves every pending operation with err — the pump's
// fail-loudly path when the simulation itself errors.
func (t *grantTable) failAll(err error) {
	for tok := range t.slots {
		o := t.slots[tok]
		if o.out == nil {
			continue
		}
		t.slots[tok] = bridgeOp{}
		t.free = append(t.free, tok)
		t.live--
		settle(o, countq.Completion{Op: o.op, Err: err})
	}
}

// NewBridge builds the network, constructs the protocol and starts the
// pump.
func NewBridge(cfg BridgeConfig) (*Bridge, error) {
	n := cfg.Nodes
	if n == 0 {
		n = 9
	}
	if n < 2 {
		return nil, fmt.Errorf("sim: bridge needs ≥ 2 nodes (a root and a leaf), got %d", n)
	}
	var g *graph.Graph
	switch cfg.Topo {
	case "", "star":
		g = graph.Star(n)
	case "list":
		g = graph.Path(n)
	case "mesh2d":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		if side*side != n {
			return nil, fmt.Errorf("sim: mesh2d needs a perfect-square node count, got %d (nearest: %d or %d)", n, side*side, (side+1)*(side+1))
		}
		g = graph.Mesh(side, side)
	default:
		return nil, fmt.Errorf("sim: unknown bridge topology %q (star|list|mesh2d)", cfg.Topo)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("sim: negative bridge capacity %d", cfg.Capacity)
	}
	if cfg.HopLat < 0 {
		return nil, fmt.Errorf("sim: negative hop latency %v", cfg.HopLat)
	}
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		return nil, fmt.Errorf("sim: bridge spanning tree: %w", err)
	}
	leaves := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != tr.Root() {
			leaves = append(leaves, v)
		}
	}
	b := &Bridge{
		cfg:      cfg,
		submit:   make(chan bridgeOp, 256),
		done:     make(chan struct{}),
		pumpExit: make(chan struct{}),
		leaves:   leaves,
	}
	table := &grantTable{}
	var bp BridgeProtocol
	if cfg.Proto != nil {
		bp, err = cfg.Proto(g, tr, table)
		if err != nil {
			return nil, fmt.Errorf("sim: bridge protocol: %w", err)
		}
	} else {
		bp = newCentralProto(tr, cfg.Queue, table)
	}
	var netp Protocol = bridgeNetProto{bp}
	if t, ok := bp.(BridgeTicker); ok {
		netp = bridgeNetProtoTick{bridgeNetProto{bp}, t}
	}
	nw := New(Config{Graph: g, Capacity: cfg.Capacity, Delay: cfg.Delay}, netp)
	go b.pump(nw, bp, table)
	return b, nil
}

// bridgeNetProto adapts a BridgeProtocol to the engine's Protocol; the
// Tick variant is used only when the protocol wants per-round callbacks,
// so non-ticking protocols pay no per-node Tick loop.
type bridgeNetProto struct{ p BridgeProtocol }

func (a bridgeNetProto) Start(env *Env, node int)              { a.p.Start(env, node) }
func (a bridgeNetProto) Deliver(env *Env, node int, m Message) { a.p.Deliver(env, node, m) }

type bridgeNetProtoTick struct {
	bridgeNetProto
	t BridgeTicker
}

func (a bridgeNetProtoTick) Tick(env *Env, node int) { a.t.Tick(env, node) }

// SimStats reports the simulated rounds stepped and protocol messages
// sent so far — the simulated-time cost behind the wall-clock latencies,
// refreshed once per round by the pump. Safe from any goroutine.
func (b *Bridge) SimStats() (rounds, messages int64) {
	return b.simRounds.Load(), b.simMsgs.Load()
}

// Close stops the pump after it drains every accepted operation, then
// fails anything that raced into the submit buffer against the shutdown.
// Safe to call more than once.
func (b *Bridge) Close() error {
	b.closeMu.Lock()
	b.closed = true
	b.closeMu.Unlock()
	b.stop.Do(func() { close(b.done) })
	<-b.pumpExit
	// No sender can be mid-send now (the closed flag is checked under
	// closeMu before every send, and the pump stayed alive until the
	// flag flipped), so the buffer holds only operations that beat the
	// flag; complete them with the close error.
	for {
		select {
		case o := <-b.submit:
			settle(o, countq.Completion{Op: o.op, Err: errBridgeClosed})
		default:
			return nil
		}
	}
}

// send hands an operation to the pump, fenced against Close. An error
// means the operation was not accepted and no Completion will arrive.
//
//countq:hotpath
func (s *bridgeSession) send(ctx context.Context, o bridgeOp) error {
	s.b.closeMu.RLock()
	if s.b.closed {
		s.b.closeMu.RUnlock()
		return errBridgeClosed
	}
	// The pump is alive for as long as this read lock is held (Close
	// flips the flag before signalling it to exit), so a full buffer
	// drains and this send cannot block indefinitely.
	select {
	case s.b.submit <- o:
		s.b.closeMu.RUnlock()
		return nil
	case <-ctx.Done():
		s.b.closeMu.RUnlock()
		return ctx.Err()
	}
}

// NewSession pins a new session to the next leaf node round-robin. Several
// sessions may share a leaf; their operations are distinguished by token.
func (b *Bridge) NewSession() (countq.Session, error) {
	i := b.nextLeaf.Add(1) - 1
	return &bridgeSession{
		b:     b,
		node:  b.leaves[int(i%uint64(len(b.leaves)))],
		out:   make(chan countq.Completion, bridgePipeline),
		reply: make(chan countq.Completion, 1),
	}, nil
}

// pump is the network clock: it injects submitted operations, advances one
// simulated round per hop latency, and exits — after draining everything
// accepted — when the bridge is closed.
func (b *Bridge) pump(nw *Network, bp BridgeProtocol, table *grantTable) {
	defer close(b.pumpExit)
	b.pumpLoop(nw, bp, table)
}

// pumpLoop is the pump's steady state: allocation-free once the grant
// table and the engine's buffers have grown to the workload's high-water
// mark.
//
//countq:hotpath
func (b *Bridge) pumpLoop(nw *Network, bp BridgeProtocol, table *grantTable) {
	env := nw.Env()
	if err := nw.Begin(); err != nil {
		b.fail(table, err)
		return
	}
	closing := false
	for {
		if !closing && table.live == 0 && nw.Quiescent() {
			// Idle: block until there is work or the bridge closes.
			select {
			case o := <-b.submit:
				bp.Issue(env, o.node, table.add(o), o.op)
			case <-b.done:
				closing = true
			}
		}
		if !closing {
			// Drain every waiting submission in batches before the round,
			// so concurrent sessions contend inside the simulation (queued
			// at the protocol's capacity) rather than in this channel.
			for n := len(b.submit); n > 0; n = len(b.submit) {
				for i := 0; i < n; i++ {
					o := <-b.submit
					bp.Issue(env, o.node, table.add(o), o.op)
				}
			}
		}
		if table.live == 0 && nw.Quiescent() {
			if closing {
				// Fail any submission still buffered (Close repeats this
				// drain once the pump is gone, so nothing accepted under
				// the closeMu fence is ever left without a Completion).
				b.drainClosed()
				return
			}
			// Everything submitted was granted without routing (a
			// protocol fast path, e.g. arrow's local tail): nothing to
			// step, so spend no hop latency and go back to idle.
			continue
		}
		b.sleepHop()
		if err := nw.Step(); err != nil {
			b.fail(table, err)
			return
		}
		st := nw.Stats()
		b.simRounds.Store(int64(st.Rounds))
		b.simMsgs.Store(int64(st.MessagesSent))
		if !closing {
			// Re-check shutdown so a Close with an idle network exits
			// promptly even while sessions keep the submit channel empty.
			select {
			case <-b.done:
				closing = true
			default:
			}
		}
	}
}

// drainClosed fails whatever is still buffered at shutdown.
func (b *Bridge) drainClosed() {
	for {
		select {
		case o := <-b.submit:
			settle(o, countq.Completion{Op: o.op, Err: errBridgeClosed})
		default:
			return
		}
	}
}

// fail resolves everything pending with err and then answers every further
// submission with it until the bridge is closed.
func (b *Bridge) fail(table *grantTable, err error) {
	table.failAll(err)
	for {
		select {
		case o := <-b.submit:
			settle(o, countq.Completion{Op: o.op, Err: err})
		case <-b.done:
			return
		}
	}
}

// sleepHop spends one hop latency of wall time. Short latencies spin with
// Gosched (time.Sleep's timer floor would inflate sub-50µs hops by an
// order of magnitude); long ones sleep.
//
//countq:hotpath clocks=2
func (b *Bridge) sleepHop() {
	d := b.cfg.HopLat
	switch {
	case d <= 0:
		runtime.Gosched()
	case d < 50*time.Microsecond:
		t0 := time.Now()
		for time.Since(t0) < d {
			runtime.Gosched()
		}
	default:
		time.Sleep(d)
	}
}

// bridgeSession is one worker's conversation with the bridge. Owned by one
// goroutine, like every Session.
type bridgeSession struct {
	b    *Bridge
	node int
	out  chan countq.Completion
	// reply serves every synchronous round trip of this session — one
	// op is in flight at a time, so the channel is reused instead of
	// allocated per op. When a round trip abandons its completion (ctx
	// cancellation, bridge shutdown race) the channel is tainted to nil:
	// the straggler completion lands harmlessly in the old channel's
	// buffer and the next round trip makes a fresh one.
	reply       chan countq.Completion
	outstanding atomic.Int64
}

// errBridgeClosed reports operations against a closed bridge.
var errBridgeClosed = fmt.Errorf("sim: bridge is closed")

// roundTrip submits op on the session's reply channel and blocks for its
// completion — the synchronous view of the asynchronous protocol.
//
//countq:hotpath
func (s *bridgeSession) roundTrip(ctx context.Context, op countq.Op) (int64, error) {
	reply := s.reply
	if reply == nil {
		reply = s.renewReply()
	}
	if err := s.send(ctx, bridgeOp{node: s.node, op: op, out: reply}); err != nil {
		return 0, err
	}
	select {
	case c := <-reply:
		return c.Value, c.Err
	case <-ctx.Done():
		// The operation was accepted and will still execute; its grant is
		// abandoned (see AsyncSession's contract on cancellation) and the
		// reply channel with it, so the straggler can't leak into a later
		// round trip.
		s.reply = nil
		return 0, ctx.Err()
	case <-s.b.pumpExit:
		// The pump exited; prefer a completion that beat it out the door.
		select {
		case c := <-reply:
			return c.Value, c.Err
		default:
			s.reply = nil
			return 0, errBridgeClosed
		}
	}
}

// renewReply replaces an abandoned reply channel — the cold path after a
// cancelled round trip.
func (s *bridgeSession) renewReply() chan countq.Completion {
	s.reply = make(chan countq.Completion, 1)
	return s.reply
}

// Inc implements countq.Session (counting bridges only).
//
//countq:hotpath
func (s *bridgeSession) Inc(ctx context.Context) (int64, error) {
	if s.b.cfg.Queue {
		return 0, s.wrongKind(countq.Op{Kind: countq.OpInc})
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpInc, N: 1})
}

// IncN implements countq.BatchSession: one request message grants the
// whole block in a single round trip — the batching escape hatch priced at
// exactly one coordination round.
func (s *bridgeSession) IncN(ctx context.Context, n int64) (int64, error) {
	if s.b.cfg.Queue {
		return 0, s.wrongKind(countq.Op{Kind: countq.OpInc})
	}
	if n < 1 {
		return 0, fmt.Errorf("sim: IncN(%d): block size must be ≥ 1", n)
	}
	if int64(int(n)) != n {
		return 0, fmt.Errorf("sim: IncN(%d): block size overflows the message payload", n)
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpInc, N: n})
}

// Enqueue implements countq.Session (queue bridges only).
//
//countq:hotpath
func (s *bridgeSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	if !s.b.cfg.Queue {
		return 0, s.wrongKind(countq.Op{Kind: countq.OpEnqueue})
	}
	if int64(int(id)) != id || id < 0 {
		return 0, s.badID(id)
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpEnqueue, ID: id})
}

// wrongKind reports an operation against the wrong bridge side.
func (s *bridgeSession) wrongKind(op countq.Op) error {
	side := "counter"
	if s.b.cfg.Queue {
		side = "queue"
	}
	return fmt.Errorf("sim: %v on a %s bridge session: %w", op.Kind, side, countq.ErrUnsupported)
}

// badID reports an enqueue id outside the message payload range.
func (s *bridgeSession) badID(id int64) error {
	return fmt.Errorf("sim: Enqueue id %d outside the message payload range", id)
}

// Submit implements countq.AsyncSession: the operation is queued for
// injection and its Completion arrives on Completions. An error means the
// operation was not accepted.
//
//countq:hotpath
func (s *bridgeSession) Submit(ctx context.Context, op countq.Op) error {
	if s.b.cfg.Queue != (op.Kind == countq.OpEnqueue) {
		return s.wrongKind(op)
	}
	if op.Kind == countq.OpEnqueue && (int64(int(op.ID)) != op.ID || op.ID < 0) {
		return s.badID(op.ID)
	}
	if op.Kind == countq.OpInc && int64(int(op.N)) != op.N {
		return fmt.Errorf("sim: IncN(%d): block size overflows the message payload", op.N)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.outstanding.Load() >= bridgePipeline {
		return fmt.Errorf("sim: bridge session pipeline full (%d operations outstanding)", bridgePipeline)
	}
	s.outstanding.Add(1)
	if err := s.send(ctx, bridgeOp{node: s.node, op: op, out: s.out, sess: s}); err != nil {
		s.outstanding.Add(-1)
		return err
	}
	return nil
}

// Completions implements countq.AsyncSession.
func (s *bridgeSession) Completions() <-chan countq.Completion {
	return s.out
}

// Close drains any unconsumed async completions (their operations have
// executed; abandoning them is the caller's choice) and detaches the
// session. The channel itself is never closed — consumers track their own
// outstanding count.
func (s *bridgeSession) Close() error {
	if s.outstanding.Load() > 0 {
		// outstanding is decremented after the completion push, so a brief
		// wait between observing the count and the arrival is expected;
		// re-check on a reused timer rather than allocating one per poll.
		timer := time.NewTimer(10 * time.Millisecond)
		defer timer.Stop()
		for s.outstanding.Load() > 0 {
			select {
			case <-s.out:
				if !timer.Stop() {
					<-timer.C
				}
			case <-s.b.pumpExit:
				return nil // pump gone; nothing more will arrive
			case <-timer.C:
			}
			timer.Reset(10 * time.Millisecond)
		}
	}
	for {
		select {
		case <-s.out:
		default:
			return nil
		}
	}
}
