package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/countq"
	"repro/internal/graph"
	"repro/internal/ring"
	"repro/internal/tree"
)

// The bridge runs a message-passing protocol as a countq Structure — the
// first backend only the session API can express. Sessions are pinned to
// leaf nodes of a simulated network; every Inc/Enqueue becomes an
// operation issued into the protocol, which routes whatever messages it
// needs and eventually grants a value back. A single pump goroutine
// advances the simulation one round per configured hop latency, so the
// coordination cost the paper reasons about — hops to the point of
// serialization, contention at its receive capacity — shows up as real
// wall-clock latency in the scenario engine's histograms, comparable in
// one campaign against the shared-memory zoo.
//
// The protocol behind the bridge is pluggable (BridgeProtocol): the
// default is the naive central protocol (internal/sim/central.go), whose
// root serializes everything — Θ(n²) hub behavior on the star. The
// paper's good protocols register themselves through ProtoMaker:
// internal/arrow routes queuing through distributed path reversal
// (sim-arrow-queue) and internal/counting routes counting through the
// combining tree (sim-tree-counter), which makes the paper's
// counting-vs-queuing separation directly measurable in one campaign.
//
// Sessions support the synchronous Session calls (each blocks for its
// round trip), BatchSession (one request grants a block), and
// AsyncSession (Submit/Completions — the pipeline that overlaps round
// trips, which no synchronous interface could express).
//
// Transport (see DESIGN.md, "Bridge transport"): sessions publish
// operations into private SPSC lanes (internal/ring) that the pump sweeps
// once per round in session-registration order, and sync grants return
// through a per-session completion ring with an eventcount park/wake —
// the uncontended sync round trip spins through the pump's turn instead
// of paying two channel handoffs and a scheduler wakeup per op.

// defaultPipeline is the default per-session transport depth: the submit
// lane capacity, the async completion buffer, and the cap on operations
// one session may keep outstanding. Override per spec with pipeline=.
const defaultPipeline = 1024

// maxPipeline bounds pipeline= so a typo cannot ask for a gigabyte of
// lanes (mirrors the shm combining backends' bound).
const maxPipeline = 1 << 15

// syncWindow sizes the per-session sync-grant ring: one live round trip
// plus up to syncWindow-1 abandoned stragglers whose grants are still in
// flight after their round trips were cancelled.
const syncWindow = 8

// syncSpin is how many scheduler yields a sync round trip spends polling
// its grant ring before parking on the eventcount — enough for the pump
// to take its turn on a busy machine, so the steady uncontended path
// never parks.
const syncSpin = 128

// pumpIdleSpin is how many scheduler yields an idle pump spends polling
// its lanes before parking — back-to-back sync ops from a spinning
// session land within the budget, so neither side pays a wakeup.
const pumpIdleSpin = 128

// freeRunYield is how many back-to-back rounds a free-running (hoplat=0)
// pump steps before yielding the processor once. Short grant chains
// (a few rounds) never yield mid-chain, which is what makes the spinning
// round trip two switches total on one core; a protocol that withholds a
// grant for many rounds still lets waiters run every freeRunYield rounds
// instead of starving them until the runtime preempts.
const freeRunYield = 64

// Grants is the completion sink a BridgeProtocol resolves operations
// into: Grant completes the operation issued under token with the granted
// value (a count-block start, or a queue predecessor id). Granting an
// unknown or already-granted token is a no-op.
type Grants interface {
	Grant(token int, value int64)
}

// BridgeProtocol is a message-passing protocol routable by the bridge.
// Implementations own all protocol state; the bridge owns sessions,
// tokens and completion delivery. Everything runs on the single pump
// goroutine, so no synchronization is needed. A protocol may additionally
// implement BridgeTicker for per-round work.
type BridgeProtocol interface {
	// Start seeds per-node protocol state before the first round.
	Start(env *Env, node int)
	// Issue injects the operation op, identified by token, at node. The
	// protocol must eventually Grant the token (the pump keeps stepping
	// rounds while any token is outstanding).
	Issue(env *Env, node int, token int, op countq.Op)
	// Deliver handles one protocol message at node.
	Deliver(env *Env, node int, m Message)
}

// BridgeTicker is an optional BridgeProtocol extension mirroring Ticker:
// Tick runs for every node after each round's receive phase — combining
// protocols use it to flush batches once per round.
type BridgeTicker interface {
	Tick(env *Env, node int)
}

// ProtoMaker builds a BridgeProtocol for the bridge's graph and spanning
// tree, resolving completions into grants. Packages register bridge specs
// by passing a ProtoMaker in BridgeConfig.Proto.
type ProtoMaker func(g *graph.Graph, tr *tree.Tree, grants Grants) (BridgeProtocol, error)

// BridgeConfig describes a bridge instance.
type BridgeConfig struct {
	// Topo is the network topology: "star" (default; hub contention),
	// "list" (diameter), or "mesh2d".
	Topo string
	// Nodes is the network size (default 9: a hub plus 8 leaves on the
	// star). Must be ≥ 2; sessions are assigned round-robin to the
	// non-root nodes.
	Nodes int
	// HopLat is the wall-clock cost of one simulated round — one message
	// hop (default 1µs). 0 advances rounds as fast as the pump can spin.
	HopLat time.Duration
	// Capacity is the per-node per-round send/receive budget, the paper's
	// c (default 1).
	Capacity int
	// Pipeline is the per-session transport depth: the submit lane
	// capacity, the async completion buffer, and the bound on operations
	// one session may keep outstanding (default 1024, max 32768).
	Pipeline int
	// Queue selects queuing semantics (sessions serve Enqueue) instead of
	// counting semantics (sessions serve Inc).
	Queue bool
	// Proto overrides the routed protocol; nil selects the central
	// protocol matching Queue.
	Proto ProtoMaker
	// Delay overrides the link delay model; nil means UnitDelay.
	Delay DelayModel
}

// Bridge runs a message-passing protocol as a countq.Structure. Close
// stops the network pump; the workload driver closes it when a run
// finishes.
type Bridge struct {
	cfg      BridgeConfig
	pipeline int
	// sub aggregates the per-session submit lanes; the pump sweeps a
	// snapshot of them once per round and parks on the aggregate's
	// eventcount when everything is idle.
	sub        *ring.Lanes[bridgeOp]
	scratch    []bridgeOp    // pump-owned sweep buffer, reused across rounds
	spinRounds int           // pump-owned: free-running rounds since last yield
	done       chan struct{} // closed by Close: stop accepting, drain, exit
	pumpExit   chan struct{} // closed when the pump has exited
	stop       sync.Once
	drainOnce  sync.Once
	nextLeaf   atomic.Uint64
	leaves     []int
	// Simulated-time mirror of the network stats, refreshed by the pump
	// once per round so callers can report simulated rounds and message
	// counts alongside wall latency without touching pump-owned state.
	simRounds atomic.Int64
	simMsgs   atomic.Int64
	// closeMu fences submission against Close: senders hold the read
	// side across the closed-flag check and the lane publish, so once
	// Close holds the write side no publish can be in flight — every
	// accepted operation is then either with the pump or in a lane the
	// close path sweeps, and the AsyncSession contract (one Completion
	// per accepted Submit) holds through shutdown.
	closeMu sync.RWMutex
	closed  bool
}

// bridgeOp is one operation in flight from a session to the pump.
type bridgeOp struct {
	node  int
	op    countq.Op
	sess  *bridgeSession
	seq   uint64 // sync round-trip sequence; 0 for async ops
	async bool
}

// syncGrant is one granted sync round trip riding the session's grant
// ring back from the pump.
type syncGrant struct {
	seq uint64
	val int64
	err error
}

// settle resolves o with c: async completions go to the session's
// completion channel (buffered to the pipeline depth, so this never
// blocks the pump); sync grants ride the session's grant ring and wake
// the parked waiter. A sync grant whose round trip was already abandoned
// (ctx cancellation) is dropped here — the drop is counted so the
// session's straggler window stays balanced.
//
//countq:hotpath
//countq:role=producer
func settle(o bridgeOp, c countq.Completion) {
	s := o.sess
	if o.async {
		s.out <- c
		s.outstanding.Add(-1)
		return
	}
	if o.seq <= s.abandonSeq.Load() {
		s.dropped.Add(1)
		return
	}
	// The push cannot fail: the ring holds one live round trip plus
	// abandoned stragglers, and waitStragglers keeps those under
	// syncWindow-1 before a new op is sent.
	s.grants.Push(syncGrant{seq: o.seq, val: c.Value, err: c.Err})
	s.ev.Wake()
}

// grantTable is the pump's pending-operation store: a slot slice indexed
// by token with a free list, so steady-state issue/grant cycles reuse
// slots with no map traffic and no allocation.
type grantTable struct {
	slots []bridgeOp
	free  []int
	live  int
}

// add stores o and returns its token.
//
//countq:hotpath
func (t *grantTable) add(o bridgeOp) int {
	t.live++
	if k := len(t.free) - 1; k >= 0 {
		tok := t.free[k]
		t.free = t.free[:k]
		t.slots[tok] = o
		return tok
	}
	t.slots = append(t.slots, o)
	return len(t.slots) - 1
}

// Grant implements Grants: it completes the operation under tok with val.
//
//countq:hotpath
func (t *grantTable) Grant(tok int, val int64) {
	if tok < 0 || tok >= len(t.slots) {
		return
	}
	o := t.slots[tok]
	if o.sess == nil {
		return
	}
	t.slots[tok] = bridgeOp{}
	t.free = append(t.free, tok)
	t.live--
	settle(o, countq.Completion{Op: o.op, Value: val})
}

// failAll resolves every pending operation with err — the pump's
// fail-loudly path when the simulation itself errors.
func (t *grantTable) failAll(err error) {
	for tok := range t.slots {
		o := t.slots[tok]
		if o.sess == nil {
			continue
		}
		t.slots[tok] = bridgeOp{}
		t.free = append(t.free, tok)
		t.live--
		settle(o, countq.Completion{Op: o.op, Err: err})
	}
}

// NewBridge builds the network, constructs the protocol and starts the
// pump.
func NewBridge(cfg BridgeConfig) (*Bridge, error) {
	n := cfg.Nodes
	if n == 0 {
		n = 9
	}
	if n < 2 {
		return nil, fmt.Errorf("sim: bridge needs ≥ 2 nodes (a root and a leaf), got %d", n)
	}
	var g *graph.Graph
	switch cfg.Topo {
	case "", "star":
		g = graph.Star(n)
	case "list":
		g = graph.Path(n)
	case "mesh2d":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		if side*side != n {
			return nil, fmt.Errorf("sim: mesh2d needs a perfect-square node count, got %d (nearest: %d or %d)", n, side*side, (side+1)*(side+1))
		}
		g = graph.Mesh(side, side)
	default:
		return nil, fmt.Errorf("sim: unknown bridge topology %q (star|list|mesh2d)", cfg.Topo)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("sim: negative bridge capacity %d", cfg.Capacity)
	}
	if cfg.HopLat < 0 {
		return nil, fmt.Errorf("sim: negative hop latency %v", cfg.HopLat)
	}
	pipeline := cfg.Pipeline
	if pipeline == 0 {
		pipeline = defaultPipeline
	}
	if pipeline < 1 {
		return nil, fmt.Errorf("sim: bridge pipeline %d < 1", cfg.Pipeline)
	}
	if pipeline > maxPipeline {
		return nil, fmt.Errorf("sim: bridge pipeline %d > %d", cfg.Pipeline, maxPipeline)
	}
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		return nil, fmt.Errorf("sim: bridge spanning tree: %w", err)
	}
	leaves := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != tr.Root() {
			leaves = append(leaves, v)
		}
	}
	b := &Bridge{
		cfg:      cfg,
		pipeline: pipeline,
		sub:      ring.NewLanes[bridgeOp](),
		done:     make(chan struct{}),
		pumpExit: make(chan struct{}),
		leaves:   leaves,
	}
	table := &grantTable{}
	var bp BridgeProtocol
	if cfg.Proto != nil {
		bp, err = cfg.Proto(g, tr, table)
		if err != nil {
			return nil, fmt.Errorf("sim: bridge protocol: %w", err)
		}
	} else {
		bp = newCentralProto(tr, cfg.Queue, table)
	}
	var netp Protocol = bridgeNetProto{bp}
	if t, ok := bp.(BridgeTicker); ok {
		netp = bridgeNetProtoTick{bridgeNetProto{bp}, t}
	}
	nw := New(Config{Graph: g, Capacity: cfg.Capacity, Delay: cfg.Delay}, netp)
	go b.pump(nw, bp, table)
	return b, nil
}

// bridgeNetProto adapts a BridgeProtocol to the engine's Protocol; the
// Tick variant is used only when the protocol wants per-round callbacks,
// so non-ticking protocols pay no per-node Tick loop.
type bridgeNetProto struct{ p BridgeProtocol }

func (a bridgeNetProto) Start(env *Env, node int)              { a.p.Start(env, node) }
func (a bridgeNetProto) Deliver(env *Env, node int, m Message) { a.p.Deliver(env, node, m) }

type bridgeNetProtoTick struct {
	bridgeNetProto
	t BridgeTicker
}

func (a bridgeNetProtoTick) Tick(env *Env, node int) { a.t.Tick(env, node) }

// SimStats reports the simulated rounds stepped and protocol messages
// sent so far — the simulated-time cost behind the wall-clock latencies,
// refreshed once per round by the pump. Safe from any goroutine.
func (b *Bridge) SimStats() (rounds, messages int64) {
	return b.simRounds.Load(), b.simMsgs.Load()
}

// Close stops the pump after it drains every accepted operation, then
// fails anything that raced into the submit lanes against the shutdown.
// Safe to call more than once.
func (b *Bridge) Close() error {
	b.closeMu.Lock()
	b.closed = true
	b.closeMu.Unlock()
	b.stop.Do(func() { close(b.done) })
	<-b.pumpExit
	// No sender can be mid-publish now (the closed flag is checked under
	// closeMu before every publish, and the pump stayed alive until the
	// flag flipped), so the lanes hold only operations that beat the
	// flag; complete them with the close error. The pump is gone, so this
	// goroutine is the lanes' consumer; drainOnce keeps concurrent Close
	// calls from sweeping the same lanes twice.
	b.drainOnce.Do(func() { b.failLanes(errBridgeClosed) })
	return nil
}

// send publishes an operation into the session's lane, fenced against
// Close. An error means the operation was not accepted and no Completion
// will arrive.
//
//countq:hotpath
//countq:role=producer
func (s *bridgeSession) send(ctx context.Context, o bridgeOp) error {
	s.b.closeMu.RLock()
	if s.b.closed {
		s.b.closeMu.RUnlock()
		return errBridgeClosed
	}
	// The pump is alive for as long as this read lock is held (Close
	// flips the flag before signalling it to exit), so a full lane
	// drains and this publish cannot spin indefinitely.
	for !s.lane.Push(o) {
		if err := ctx.Err(); err != nil {
			s.b.closeMu.RUnlock()
			return err
		}
		s.b.sub.Wake()
		runtime.Gosched()
	}
	s.b.sub.Wake()
	s.b.closeMu.RUnlock()
	return nil
}

// NewSession pins a new session to the next leaf node round-robin. Several
// sessions may share a leaf; their operations are distinguished by token.
func (b *Bridge) NewSession() (countq.Session, error) {
	i := b.nextLeaf.Add(1) - 1
	s := &bridgeSession{
		b:      b,
		node:   b.leaves[int(i%uint64(len(b.leaves)))],
		out:    make(chan countq.Completion, b.pipeline),
		grants: ring.New[syncGrant](syncWindow),
	}
	s.ev.Init()
	s.lane = b.sub.NewLane(b.pipeline)
	return s, nil
}

// pump is the network clock: it injects submitted operations, advances one
// simulated round per hop latency, and exits — after draining everything
// accepted — when the bridge is closed.
func (b *Bridge) pump(nw *Network, bp BridgeProtocol, table *grantTable) {
	defer close(b.pumpExit)
	b.pumpLoop(nw, bp, table)
}

// inject sweeps every session lane once — in lane-registration order,
// which is session-creation order, so injection stays deterministic for a
// fixed session set — and issues the swept batch into the protocol.
//
//countq:hotpath
//countq:role=consumer
func (b *Bridge) inject(env *Env, bp BridgeProtocol, table *grantTable) int {
	injected := 0
	for _, lane := range b.sub.Snapshot() {
		b.scratch = lane.DrainTo(b.scratch[:0])
		for i := range b.scratch {
			bp.Issue(env, b.scratch[i].node, table.add(b.scratch[i]), b.scratch[i].op)
		}
		injected += len(b.scratch)
	}
	return injected
}

// pumpLoop is the pump's steady state: allocation-free once the grant
// table, the scratch buffer and the engine's buffers have grown to the
// workload's high-water mark. One lane sweep per round batch-injects
// every waiting submission, so concurrent sessions contend inside the
// simulation (queued at the protocol's capacity) rather than in the
// transport; when everything is idle the pump spins briefly and then
// parks on the lanes' eventcount.
//
//countq:hotpath
//countq:role=consumer
func (b *Bridge) pumpLoop(nw *Network, bp BridgeProtocol, table *grantTable) {
	env := nw.Env()
	if err := nw.Begin(); err != nil {
		b.fail(table, err)
		return
	}
	closing := false
	idle := 0
	for {
		injected := b.inject(env, bp, table)
		if table.live == 0 && nw.Quiescent() {
			if closing {
				if injected == 0 {
					// Closed, drained, quiescent: the lanes were empty on
					// this very sweep and no publish can start once the
					// closed flag is up, so exit. Close sweeps once more
					// for operations that beat the flag.
					return
				}
				continue
			}
			if injected > 0 {
				// Everything injected was granted without routing (a
				// protocol fast path, e.g. arrow's local tail): nothing to
				// step, so spend no hop latency and sweep again.
				idle = 0
				continue
			}
			// Idle: spin a little (a spinning sync session's next op lands
			// within the budget), then park on the eventcount.
			select {
			case <-b.done:
				closing = true
				continue
			default:
			}
			if idle < pumpIdleSpin {
				idle++
				runtime.Gosched()
				continue
			}
			b.sub.Prepare()
			if b.inject(env, bp, table) > 0 {
				// Work raced in before the parked flag was visible; its
				// publisher saw no parked consumer and sent no signal.
				b.sub.Unpark()
				idle = 0
				continue
			}
			select {
			case <-b.sub.WakeChan():
				idle = 0
			case <-b.done:
				b.sub.Unpark()
				closing = true
			}
			continue
		}
		idle = 0
		b.sleepHop()
		if err := nw.Step(); err != nil {
			b.fail(table, err)
			return
		}
		st := nw.Stats()
		b.simRounds.Store(int64(st.Rounds))
		b.simMsgs.Store(int64(st.MessagesSent))
		if !closing {
			// Re-check shutdown so a Close with an idle network exits
			// promptly even while sessions keep the lanes empty.
			select {
			case <-b.done:
				closing = true
			default:
			}
		}
	}
}

// failLanes sweeps every session lane and resolves the swept operations
// with err. Runs on whichever goroutine currently owns the consumer role
// (the pump, or Close after the pump exited).
//
//countq:role=consumer
func (b *Bridge) failLanes(err error) {
	for _, lane := range b.sub.Snapshot() {
		b.scratch = lane.DrainTo(b.scratch[:0])
		for i := range b.scratch {
			settle(b.scratch[i], countq.Completion{Op: b.scratch[i].op, Err: err})
		}
	}
}

// fail resolves everything pending with err and then answers every further
// submission with it until the bridge is closed.
//
//countq:role=consumer
func (b *Bridge) fail(table *grantTable, err error) {
	table.failAll(err)
	for {
		b.failLanes(err)
		b.sub.Prepare()
		b.failLanes(err) // re-sweep: a publish may have raced the parked flag
		select {
		case <-b.sub.WakeChan():
		case <-b.done:
			b.sub.Unpark()
			// done closed ⟹ the closed flag is up and no publish is in
			// flight; one final sweep leaves the lanes empty for Close.
			b.failLanes(err)
			return
		}
	}
}

// sleepHop spends one hop latency of wall time. Zero latency spends
// nearly nothing — the pump runs rounds back to back, yielding only
// every freeRunYield rounds, which on a loaded single-core box is what
// lets a spinning session's short round trip finish in two scheduler
// switches while still letting waiters run under a grant the protocol
// holds across many rounds. Short latencies spin with Gosched
// (time.Sleep's timer floor would inflate sub-50µs hops by an order of
// magnitude); long ones sleep.
//
//countq:hotpath clocks=2
func (b *Bridge) sleepHop() {
	d := b.cfg.HopLat
	switch {
	case d <= 0:
		b.spinRounds++
		if b.spinRounds >= freeRunYield {
			b.spinRounds = 0
			runtime.Gosched()
		}
	case d < 50*time.Microsecond:
		t0 := time.Now()
		for time.Since(t0) < d {
			runtime.Gosched()
		}
	default:
		time.Sleep(d)
	}
}

// bridgeSession is one worker's conversation with the bridge. Owned by one
// goroutine, like every Session.
type bridgeSession struct {
	b    *Bridge
	node int
	// lane is the session's private submit ring; the pump sweeps it once
	// per round.
	lane *ring.SPSC[bridgeOp]
	out  chan countq.Completion
	// grants carries sync round-trip results back from the pump; ev is
	// the parked-waiter signal for it. One op is live at a time (sessions
	// are single-owner), so the ring holds that op's grant plus at most
	// syncWindow-1 stragglers from abandoned round trips.
	grants *ring.SPSC[syncGrant]
	ev     ring.Event
	// syncSeq numbers sync round trips; abandonSeq is the highest
	// abandoned sequence, published to the pump so straggler grants are
	// dropped at the source. abandoned/reaped/dropped balance the
	// straggler window: abandoned counts cancelled round trips, reaped
	// the stale grants this session discarded from its ring, dropped the
	// ones the pump discarded before the push.
	syncSeq     uint64
	abandoned   int
	reaped      int
	dropped     atomic.Int64
	abandonSeq  atomic.Uint64
	outstanding atomic.Int64
}

// errBridgeClosed reports operations against a closed bridge.
var errBridgeClosed = fmt.Errorf("sim: bridge is closed")

// abandon records a cancelled round trip: its grant, when it arrives, is
// dropped by the pump or reaped from the ring by a later round trip.
func (s *bridgeSession) abandon(seq uint64) {
	s.abandoned++
	s.abandonSeq.Store(seq)
}

// waitStragglers keeps the sync-grant ring from overflowing after a burst
// of cancellations: it blocks a new round trip until enough abandoned
// grants have resolved (dropped or reaped) that the live grant plus every
// straggler still in flight fits the ring. Cold — only runs after
// syncWindow-1 round trips were cancelled with their grants unresolved.
//
//countq:role=consumer
func (s *bridgeSession) waitStragglers(ctx context.Context) error {
	for s.abandoned-s.reaped-int(s.dropped.Load()) >= syncWindow {
		if _, ok := s.grants.Pop(); ok {
			// Whatever is buffered here is stale: no round trip is live.
			s.reaped++
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-s.b.pumpExit:
			return errBridgeClosed
		default:
		}
		runtime.Gosched()
	}
	return nil
}

// roundTrip submits op and blocks for its grant — the synchronous view of
// the asynchronous protocol. The wait spins through the pump's turn
// first (the uncontended path completes without parking), then parks on
// the session eventcount.
//
//countq:hotpath
//countq:role=consumer
func (s *bridgeSession) roundTrip(ctx context.Context, op countq.Op) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	// Whatever is buffered here is a straggler from an abandoned round
	// trip (no round trip is live); reap before reusing the ring.
	for {
		if _, ok := s.grants.Pop(); !ok {
			break
		}
		s.reaped++
	}
	if s.abandoned-s.reaped-int(s.dropped.Load()) >= syncWindow {
		if err := s.waitStragglers(ctx); err != nil {
			return 0, err
		}
	}
	s.syncSeq++
	seq := s.syncSeq
	if err := s.send(ctx, bridgeOp{node: s.node, op: op, sess: s, seq: seq}); err != nil {
		// Not accepted: no grant will ever carry this sequence, so it
		// needs no abandon accounting.
		return 0, err
	}
	spins := 0
	for {
		if g, ok := s.grants.Pop(); ok {
			if g.seq == seq {
				return g.val, g.err
			}
			s.reaped++
			continue
		}
		if spins < syncSpin {
			spins++
			runtime.Gosched()
			continue
		}
		s.ev.Prepare()
		if g, ok := s.grants.Pop(); ok {
			// The grant raced in before the parked flag was visible.
			s.ev.Unpark()
			if g.seq == seq {
				return g.val, g.err
			}
			s.reaped++
			spins = 0
			continue
		}
		select {
		case <-s.ev.WakeChan():
			spins = 0
		case <-ctx.Done():
			// The operation was accepted and will still execute; its grant
			// is abandoned (see AsyncSession's contract on cancellation)
			// and dropped or reaped when it lands.
			s.ev.Unpark()
			s.abandon(seq)
			return 0, ctx.Err()
		case <-s.b.pumpExit:
			// The pump exited; prefer a grant that beat it out the door.
			s.ev.Unpark()
			for {
				g, ok := s.grants.Pop()
				if !ok {
					break
				}
				if g.seq == seq {
					return g.val, g.err
				}
				s.reaped++
			}
			s.abandon(seq)
			return 0, errBridgeClosed
		}
	}
}

// Inc implements countq.Session (counting bridges only).
//
//countq:hotpath
func (s *bridgeSession) Inc(ctx context.Context) (int64, error) {
	if s.b.cfg.Queue {
		return 0, s.wrongKind(countq.Op{Kind: countq.OpInc})
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpInc, N: 1})
}

// IncN implements countq.BatchSession: one request message grants the
// whole block in a single round trip — the batching escape hatch priced at
// exactly one coordination round.
func (s *bridgeSession) IncN(ctx context.Context, n int64) (int64, error) {
	if s.b.cfg.Queue {
		return 0, s.wrongKind(countq.Op{Kind: countq.OpInc})
	}
	if n < 1 {
		return 0, fmt.Errorf("sim: IncN(%d): block size must be ≥ 1", n)
	}
	if int64(int(n)) != n {
		return 0, fmt.Errorf("sim: IncN(%d): block size overflows the message payload", n)
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpInc, N: n})
}

// Enqueue implements countq.Session (queue bridges only).
//
//countq:hotpath
func (s *bridgeSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	if !s.b.cfg.Queue {
		return 0, s.wrongKind(countq.Op{Kind: countq.OpEnqueue})
	}
	if int64(int(id)) != id || id < 0 {
		return 0, s.badID(id)
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpEnqueue, ID: id})
}

// wrongKind reports an operation against the wrong bridge side.
func (s *bridgeSession) wrongKind(op countq.Op) error {
	side := "counter"
	if s.b.cfg.Queue {
		side = "queue"
	}
	return fmt.Errorf("sim: %v on a %s bridge session: %w", op.Kind, side, countq.ErrUnsupported)
}

// badID reports an enqueue id outside the message payload range.
func (s *bridgeSession) badID(id int64) error {
	return fmt.Errorf("sim: Enqueue id %d outside the message payload range", id)
}

// Submit implements countq.AsyncSession: the operation is queued for
// injection and its Completion arrives on Completions. An error means the
// operation was not accepted.
//
//countq:hotpath
func (s *bridgeSession) Submit(ctx context.Context, op countq.Op) error {
	if s.b.cfg.Queue != (op.Kind == countq.OpEnqueue) {
		return s.wrongKind(op)
	}
	if op.Kind == countq.OpEnqueue && (int64(int(op.ID)) != op.ID || op.ID < 0) {
		return s.badID(op.ID)
	}
	if op.Kind == countq.OpInc && int64(int(op.N)) != op.N {
		return fmt.Errorf("sim: IncN(%d): block size overflows the message payload", op.N)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.outstanding.Load() >= int64(s.b.pipeline) {
		return fmt.Errorf("sim: bridge session pipeline full (%d operations outstanding)", s.b.pipeline)
	}
	s.outstanding.Add(1)
	if err := s.send(ctx, bridgeOp{node: s.node, op: op, sess: s, async: true}); err != nil {
		s.outstanding.Add(-1)
		return err
	}
	return nil
}

// Completions implements countq.AsyncSession.
func (s *bridgeSession) Completions() <-chan countq.Completion {
	return s.out
}

// Close drains any unconsumed async completions (their operations have
// executed; abandoning them is the caller's choice), unregisters the
// session's lane from the pump's sweep set and detaches the session. The
// channel itself is never closed — consumers track their own outstanding
// count.
func (s *bridgeSession) Close() error {
	if s.outstanding.Load() > 0 {
		// outstanding is decremented after the completion push, so a brief
		// wait between observing the count and the arrival is expected;
		// re-check on a reused timer rather than allocating one per poll.
		timer := time.NewTimer(10 * time.Millisecond)
		defer timer.Stop()
		for s.outstanding.Load() > 0 {
			select {
			case <-s.out:
				if !timer.Stop() {
					<-timer.C
				}
			case <-s.b.pumpExit:
				// Pump gone; the bridge's close sweep settles whatever is
				// still in the lane, so leave it registered.
				return nil
			case <-timer.C:
			}
			timer.Reset(10 * time.Millisecond)
		}
	}
	for {
		select {
		case <-s.out:
		default:
			s.b.sub.Remove(s.lane)
			return nil
		}
	}
}
