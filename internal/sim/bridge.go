package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/countq"
	"repro/internal/graph"
	"repro/internal/tree"
)

// The bridge runs a message-passing protocol as a countq Structure — the
// first backend only the session API can express. Sessions are pinned to
// leaf nodes of a simulated network; every Inc/Enqueue becomes a request
// message routed over the spanning tree to the root (which owns the
// counter or the queue tail), and a grant routed back. A single pump
// goroutine advances the simulation one round per configured hop latency,
// so the coordination cost the paper reasons about — hops to the point of
// serialization, contention at its receive capacity — shows up as real
// wall-clock latency in the scenario engine's histograms, comparable in
// one campaign against the shared-memory zoo.
//
// The bridge is deliberately the *central* protocol: the naive baseline
// whose root serializes everything. On the star it realizes the Θ(n²)
// hub behavior of the paper's conclusions; on the list it pays the
// diameter. Sessions support the synchronous Session calls (each blocks
// for its round trip), BatchSession (one request grants a block), and
// AsyncSession (Submit/Completions — the pipeline that overlaps round
// trips, which no synchronous interface could express).

// Message kinds used by the bridge protocol.
const (
	bkReq   = 101 // A = token, B = origin node, C = block size or op id
	bkGrant = 102 // A = token, B = origin node, C = count or predecessor
)

// bridgePipeline is the per-session completion buffer and the cap on
// operations one session may keep outstanding.
const bridgePipeline = 1024

// BridgeConfig describes a bridge instance.
type BridgeConfig struct {
	// Topo is the network topology: "star" (default; hub contention),
	// "list" (diameter), or "mesh2d".
	Topo string
	// Nodes is the network size (default 9: a hub plus 8 leaves on the
	// star). Must be ≥ 2; sessions are assigned round-robin to the
	// non-root nodes.
	Nodes int
	// HopLat is the wall-clock cost of one simulated round — one message
	// hop (default 1µs). 0 advances rounds as fast as the pump can spin.
	HopLat time.Duration
	// Capacity is the per-node per-round send/receive budget, the paper's
	// c (default 1).
	Capacity int
	// Queue selects the queuing protocol (sessions serve Enqueue) instead
	// of the counting protocol (sessions serve Inc).
	Queue bool
}

// Bridge runs the central message-passing protocol as a countq.Structure.
// Close stops the network pump; the workload driver closes it when a run
// finishes.
type Bridge struct {
	cfg      BridgeConfig
	submit   chan bridgeOp
	done     chan struct{} // closed by Close: stop accepting, drain, exit
	pumpExit chan struct{} // closed when the pump has exited
	stop     sync.Once
	nextLeaf atomic.Uint64
	leaves   []int
	// closeMu fences submission against Close: senders hold the read
	// side across the closed-flag check and the channel send, so once
	// Close holds the write side no send can be in flight — every
	// accepted operation is then either with the pump or in the buffer
	// Close drains, and the AsyncSession contract (one Completion per
	// accepted Submit) holds through shutdown.
	closeMu sync.RWMutex
	closed  bool
}

// bridgeOp is one operation in flight from a session to the pump.
type bridgeOp struct {
	node    int
	op      countq.Op
	out     chan<- countq.Completion
	settled func() // decrements the session's outstanding count (async ops)
}

// NewBridge builds the network and starts the pump.
func NewBridge(cfg BridgeConfig) (*Bridge, error) {
	n := cfg.Nodes
	if n == 0 {
		n = 9
	}
	if n < 2 {
		return nil, fmt.Errorf("sim: bridge needs ≥ 2 nodes (a root and a leaf), got %d", n)
	}
	var g *graph.Graph
	switch cfg.Topo {
	case "", "star":
		g = graph.Star(n)
	case "list":
		g = graph.Path(n)
	case "mesh2d":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		if side*side != n {
			return nil, fmt.Errorf("sim: mesh2d needs a perfect-square node count, got %d (nearest: %d or %d)", n, side*side, (side+1)*(side+1))
		}
		g = graph.Mesh(side, side)
	default:
		return nil, fmt.Errorf("sim: unknown bridge topology %q (star|list|mesh2d)", cfg.Topo)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("sim: negative bridge capacity %d", cfg.Capacity)
	}
	if cfg.HopLat < 0 {
		return nil, fmt.Errorf("sim: negative hop latency %v", cfg.HopLat)
	}
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		return nil, fmt.Errorf("sim: bridge spanning tree: %w", err)
	}
	leaves := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != tr.Root() {
			leaves = append(leaves, v)
		}
	}
	b := &Bridge{
		cfg:      cfg,
		submit:   make(chan bridgeOp, 256),
		done:     make(chan struct{}),
		pumpExit: make(chan struct{}),
		leaves:   leaves,
	}
	go b.pump(g, tr)
	return b, nil
}

// Close stops the pump after it drains every accepted operation, then
// fails anything that raced into the submit buffer against the shutdown.
// Safe to call more than once.
func (b *Bridge) Close() error {
	b.closeMu.Lock()
	b.closed = true
	b.closeMu.Unlock()
	b.stop.Do(func() { close(b.done) })
	<-b.pumpExit
	// No sender can be mid-send now (the closed flag is checked under
	// closeMu before every send, and the pump stayed alive until the
	// flag flipped), so the buffer holds only operations that beat the
	// flag; complete them with the close error.
	for {
		select {
		case o := <-b.submit:
			o.out <- countq.Completion{Op: o.op, Err: errBridgeClosed}
			if o.settled != nil {
				o.settled()
			}
		default:
			return nil
		}
	}
}

// send hands an operation to the pump, fenced against Close. An error
// means the operation was not accepted and no Completion will arrive.
func (s *bridgeSession) send(ctx context.Context, o bridgeOp) error {
	s.b.closeMu.RLock()
	defer s.b.closeMu.RUnlock()
	if s.b.closed {
		return errBridgeClosed
	}
	// The pump is alive for as long as this read lock is held (Close
	// flips the flag before signalling it to exit), so a full buffer
	// drains and this send cannot block indefinitely.
	select {
	case s.b.submit <- o:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NewSession pins a new session to the next leaf node round-robin. Several
// sessions may share a leaf; their operations are distinguished by token.
func (b *Bridge) NewSession() (countq.Session, error) {
	i := b.nextLeaf.Add(1) - 1
	return &bridgeSession{
		b:    b,
		node: b.leaves[int(i%uint64(len(b.leaves)))],
		out:  make(chan countq.Completion, bridgePipeline),
	}, nil
}

// bridgeProto is the central protocol: requests route to the root, which
// assigns counts (or remembers the queue tail) and routes grants back.
type bridgeProto struct {
	router  *tree.Router
	root    int
	queue   bool
	next    int64 // counter high-water mark at the root
	last    int64 // queue predecessor at the root
	seq     int   // injection tokens
	pending map[int]bridgeOp
}

func (p *bridgeProto) Start(*Env, int) {}

// issue injects an operation at its session's node: root-adjacent state is
// never touched directly — even a root-co-located op would pay the message
// round trip, but sessions are only assigned to non-root nodes.
func (p *bridgeProto) issue(env *Env, o bridgeOp) {
	tok := p.seq
	p.seq++
	p.pending[tok] = o
	payload := int(o.op.N)
	if p.queue {
		payload = int(o.op.ID)
	}
	env.Send(o.node, p.router.NextHop(o.node, p.root), Message{Kind: bkReq, A: tok, B: o.node, C: payload})
}

func (p *bridgeProto) Deliver(env *Env, node int, m Message) {
	switch m.Kind {
	case bkReq:
		if node != p.root {
			env.Send(node, p.router.NextHop(node, p.root), m)
			return
		}
		var val int64
		if p.queue {
			val = p.last
			p.last = int64(m.C)
		} else {
			n := int64(m.C)
			if n < 1 {
				n = 1
			}
			val = p.next + 1
			p.next += n
		}
		env.Send(node, p.router.NextHop(node, m.B), Message{Kind: bkGrant, A: m.A, B: m.B, C: int(val)})
	case bkGrant:
		if node != m.B {
			env.Send(node, p.router.NextHop(node, m.B), m)
			return
		}
		p.complete(m.A, int64(m.C), nil)
	default:
		env.Fail(fmt.Errorf("sim: bridge got unexpected message kind %d", m.Kind))
	}
}

// complete resolves a pending operation. The completion channel is always
// buffered deep enough (per-op reply channels hold 1; session pipelines
// cap outstanding at their buffer), so this never blocks the pump.
func (p *bridgeProto) complete(tok int, val int64, err error) {
	o, ok := p.pending[tok]
	if !ok {
		return
	}
	delete(p.pending, tok)
	o.out <- countq.Completion{Op: o.op, Value: val, Err: err}
	if o.settled != nil {
		o.settled()
	}
}

// failAll resolves every pending operation with err — the pump's
// fail-loudly path when the simulation itself errors.
func (p *bridgeProto) failAll(err error) {
	for tok := range p.pending {
		p.complete(tok, 0, err)
	}
}

// pump is the network clock: it injects submitted operations, advances one
// simulated round per hop latency, and exits — after draining everything
// accepted — when the bridge is closed.
func (b *Bridge) pump(g *graph.Graph, tr *tree.Tree) {
	defer close(b.pumpExit)
	proto := &bridgeProto{
		router:  tr.NewRouter(),
		root:    tr.Root(),
		queue:   b.cfg.Queue,
		last:    countq.Head,
		pending: make(map[int]bridgeOp),
	}
	nw := New(Config{Graph: g, Capacity: b.cfg.Capacity}, proto)
	env := nw.Env()
	if err := nw.Begin(); err != nil {
		b.fail(proto, err)
		return
	}
	closing := false
	for {
		if !closing && nw.Quiescent() && len(proto.pending) == 0 {
			// Idle: block until there is work or the bridge closes.
			select {
			case o := <-b.submit:
				proto.issue(env, o)
			case <-b.done:
				closing = true
			}
		}
		// Opportunistically drain every waiting submission before the
		// round, so concurrent sessions contend inside the simulation
		// (queued at the root's capacity) rather than in this channel.
		for !closing {
			select {
			case o := <-b.submit:
				proto.issue(env, o)
				continue
			default:
			}
			break
		}
		if closing && nw.Quiescent() && len(proto.pending) == 0 {
			// Fail any submission still buffered (Close repeats this
			// drain once the pump is gone, so nothing accepted under the
			// closeMu fence is ever left without a Completion).
			for {
				select {
				case o := <-b.submit:
					o.out <- countq.Completion{Op: o.op, Err: errBridgeClosed}
					if o.settled != nil {
						o.settled()
					}
				default:
					return
				}
			}
		}
		b.sleepHop()
		if err := nw.Step(); err != nil {
			b.fail(proto, err)
			return
		}
		if !closing {
			// Re-check shutdown so a Close with an idle network exits
			// promptly even while sessions keep the submit channel empty.
			select {
			case <-b.done:
				closing = true
			default:
			}
		}
	}
}

// fail resolves everything pending with err and then answers every further
// submission with it until the bridge is closed.
func (b *Bridge) fail(proto *bridgeProto, err error) {
	proto.failAll(err)
	for {
		select {
		case o := <-b.submit:
			o.out <- countq.Completion{Op: o.op, Err: err}
			if o.settled != nil {
				o.settled()
			}
		case <-b.done:
			return
		}
	}
}

// sleepHop spends one hop latency of wall time. Short latencies spin with
// Gosched (time.Sleep's timer floor would inflate sub-50µs hops by an
// order of magnitude); long ones sleep.
func (b *Bridge) sleepHop() {
	d := b.cfg.HopLat
	switch {
	case d <= 0:
		runtime.Gosched()
	case d < 50*time.Microsecond:
		t0 := time.Now()
		for time.Since(t0) < d {
			runtime.Gosched()
		}
	default:
		time.Sleep(d)
	}
}

// bridgeSession is one worker's conversation with the bridge. Owned by one
// goroutine, like every Session.
type bridgeSession struct {
	b           *Bridge
	node        int
	out         chan countq.Completion
	outstanding atomic.Int64
}

// errBridgeClosed reports operations against a closed bridge.
var errBridgeClosed = fmt.Errorf("sim: bridge is closed")

// roundTrip submits op on a fresh reply channel and blocks for its
// completion — the synchronous view of the asynchronous protocol.
func (s *bridgeSession) roundTrip(ctx context.Context, op countq.Op) (int64, error) {
	reply := make(chan countq.Completion, 1)
	if err := s.send(ctx, bridgeOp{node: s.node, op: op, out: reply}); err != nil {
		return 0, err
	}
	select {
	case c := <-reply:
		return c.Value, c.Err
	case <-ctx.Done():
		// The operation was accepted and will still execute; its grant is
		// abandoned (see AsyncSession's contract on cancellation).
		return 0, ctx.Err()
	case <-s.b.pumpExit:
		// The pump exited; prefer a completion that beat it out the door.
		select {
		case c := <-reply:
			return c.Value, c.Err
		default:
			return 0, errBridgeClosed
		}
	}
}

// Inc implements countq.Session (counting bridges only).
func (s *bridgeSession) Inc(ctx context.Context) (int64, error) {
	if s.b.cfg.Queue {
		return 0, fmt.Errorf("sim: Inc on a queue bridge session: %w", countq.ErrUnsupported)
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpInc, N: 1})
}

// IncN implements countq.BatchSession: one request message grants the
// whole block in a single round trip — the batching escape hatch priced at
// exactly one coordination round.
func (s *bridgeSession) IncN(ctx context.Context, n int64) (int64, error) {
	if s.b.cfg.Queue {
		return 0, fmt.Errorf("sim: IncN on a queue bridge session: %w", countq.ErrUnsupported)
	}
	if n < 1 {
		return 0, fmt.Errorf("sim: IncN(%d): block size must be ≥ 1", n)
	}
	if int64(int(n)) != n {
		return 0, fmt.Errorf("sim: IncN(%d): block size overflows the message payload", n)
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpInc, N: n})
}

// Enqueue implements countq.Session (queue bridges only).
func (s *bridgeSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	if !s.b.cfg.Queue {
		return 0, fmt.Errorf("sim: Enqueue on a counter bridge session: %w", countq.ErrUnsupported)
	}
	if int64(int(id)) != id || id < 0 {
		return 0, fmt.Errorf("sim: Enqueue id %d outside the message payload range", id)
	}
	return s.roundTrip(ctx, countq.Op{Kind: countq.OpEnqueue, ID: id})
}

// Submit implements countq.AsyncSession: the operation is queued for
// injection and its Completion arrives on Completions. An error means the
// operation was not accepted.
func (s *bridgeSession) Submit(ctx context.Context, op countq.Op) error {
	if s.b.cfg.Queue != (op.Kind == countq.OpEnqueue) {
		return fmt.Errorf("sim: %v on a %s bridge session: %w", op.Kind, map[bool]string{true: "queue", false: "counter"}[s.b.cfg.Queue], countq.ErrUnsupported)
	}
	if op.Kind == countq.OpEnqueue && (int64(int(op.ID)) != op.ID || op.ID < 0) {
		return fmt.Errorf("sim: Enqueue id %d outside the message payload range", op.ID)
	}
	if op.Kind == countq.OpInc && int64(int(op.N)) != op.N {
		return fmt.Errorf("sim: IncN(%d): block size overflows the message payload", op.N)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.outstanding.Load() >= bridgePipeline {
		return fmt.Errorf("sim: bridge session pipeline full (%d operations outstanding)", bridgePipeline)
	}
	s.outstanding.Add(1)
	if err := s.send(ctx, bridgeOp{node: s.node, op: op, out: s.out, settled: func() { s.outstanding.Add(-1) }}); err != nil {
		s.outstanding.Add(-1)
		return err
	}
	return nil
}

// Completions implements countq.AsyncSession.
func (s *bridgeSession) Completions() <-chan countq.Completion {
	return s.out
}

// Close drains any unconsumed async completions (their operations have
// executed; abandoning them is the caller's choice) and detaches the
// session. The channel itself is never closed — consumers track their own
// outstanding count.
func (s *bridgeSession) Close() error {
	for s.outstanding.Load() > 0 {
		select {
		case <-s.out:
		case <-s.b.pumpExit:
			return nil // pump gone; nothing more will arrive
		case <-time.After(10 * time.Millisecond):
			// outstanding is decremented after the push, so a brief wait
			// between observing the count and the arrival is expected;
			// loop and re-check.
		}
	}
	for {
		select {
		case <-s.out:
		default:
			return nil
		}
	}
}
