// Package sim is a deterministic synchronous message-passing network
// simulator implementing the machine model of Section 2.1 of Busch &
// Tirthapura: a connected undirected graph of processors with reliable FIFO
// links of delay one, where each processor sends at most c and receives at
// most c messages per time step (c = 1 in the paper's base model; c = deg
// reproduces the "expanded time step" device used for the arrow protocol).
//
// Each round proceeds as: deliver messages sent last round into per-node
// inbox queues; each node receives up to c queued messages (handler runs);
// optional per-round tick; each node sends up to c queued outgoing messages.
// A message received in round t can therefore be forwarded in round t, and
// arrives at the neighbor in round t+1 — information travels at most one hop
// per round, the speed assumed by the paper's latency lower bounds.
//
// Messages that arrive beyond the receive capacity queue up FIFO: the
// simulator measures contention rather than wishing it away, which is what
// makes the star-graph experiment come out Θ(n²) by measurement.
//
// The round engine (engine v2) is steady-state allocation-free: in-flight
// messages live on a power-of-two timing wheel indexed by arrival round,
// buckets are kept in global sequence order by a back-scan insertion at
// send time (so deliverPhase never sorts), per-directed-link FIFO clamps
// read a dense CSR-indexed array instead of a map (and are skipped
// entirely under unit delays, where they can never bind), and quiescence
// is three counters rather than a scan. See DESIGN.md "Engine v2".
package sim

import (
	"fmt"

	"repro/internal/graph"
)

// Message is a network message. From/To are set by Send; Kind and the
// integer payload fields are protocol-defined. Using plain ints keeps the
// hot loop allocation-free.
type Message struct {
	From, To int
	Kind     int
	A, B, C  int // protocol payload (e.g. operation id, origin, count)
	sentAt   int // round the message entered the wire
	seq      int // global sequence number, for deterministic ordering
}

// SentAt reports the round in which the message was transmitted.
func (m Message) SentAt() int { return m.sentAt }

// Protocol is the per-node behavior run by the simulator. Start runs once
// for every node before round 1 (the paper's "time zero", where one-shot
// operations are issued). Deliver runs when a node receives a message.
// Handlers communicate only through Env.
type Protocol interface {
	Start(env *Env, node int)
	Deliver(env *Env, node int, m Message)
}

// Ticker is an optional extension: Tick runs for every node each round after
// the receive phase, for protocols that act on timeouts rather than messages.
type Ticker interface {
	Tick(env *Env, node int)
}

// Scheduler is an optional extension for long-lived protocols that inject
// work at future times (usually from Tick): the network keeps running until
// PendingUntil even if it is momentarily quiescent. PendingUntil is
// re-polled every round, so protocols with internal timers (token holding,
// critical sections) can extend it as they run.
type Scheduler interface {
	// PendingUntil returns the last round at which the protocol will
	// spontaneously create work, as currently known.
	PendingUntil() int
}

// Config describes a simulation instance.
type Config struct {
	Graph    *graph.Graph
	Capacity int // per-node send and receive budget per round; 0 means 1
	// Strict makes Run fail if any message ever has to queue behind the
	// capacity limit — i.e. if the protocol violates the at-most-c model
	// of Section 2.1 instead of merely being slowed by it.
	Strict bool
	// MaxRounds bounds the simulation; 0 means a generous default
	// proportional to n². Run fails if the bound is hit before quiescence.
	MaxRounds int
	// Delay chooses the link-delay model; nil means UnitDelay (the
	// paper's synchronous model). FIFO order per directed link is
	// preserved under every model.
	Delay DelayModel
	// TrackPerNode enables the per-node received-message counts in Stats.
	TrackPerNode bool
}

// Stats summarizes a run. Step keeps Rounds current after every round, so
// step-driven callers (the countq bridge) can read simulated time through
// Network.Stats at any point, not just after Run.
type Stats struct {
	Rounds           int // rounds executed so far (until quiescence for Run)
	MessagesSent     int
	MaxInboxBacklog  int // worst queue behind the receive capacity
	MaxOutboxBacklog int // worst queue behind the send capacity
	// Received counts messages delivered per node — the load profile
	// that exposes hot spots (e.g. the star hub, a counting root).
	// Populated only when Config.TrackPerNode is set.
	Received []int
}

// HottestNode returns the node with the most received messages and its
// count, or (-1, 0) when per-node tracking was off or nothing was received.
func (s Stats) HottestNode() (node, received int) {
	node = -1
	for v, r := range s.Received {
		if r > received {
			node, received = v, r
		}
	}
	return node, received
}

// Env is the interface handlers use to interact with the network.
type Env struct {
	g        *graph.Graph
	n        int     // g.N(), cached for the hot paths
	adj      [][]int // g.Neighbors(v) for every v — graphs are immutable
	capacity int
	strict   bool
	delay    DelayModel
	// unitDelay marks the paper's synchronous model (every delay is
	// exactly 1). Then arrival rounds are monotone per link by
	// construction, so the FIFO clamp can never bind and the per-edge
	// state is skipped entirely on the send path.
	unitDelay bool
	round     int
	seq       int

	inbox  []msgQueue
	outbox []msgQueue

	// Per-inbox sort floor for the unit-delay direct-delivery path: the
	// seq back-scan may only reorder messages inserted for the upcoming
	// round (arrival round round+1), never earlier arrivals — and the
	// receive phase must not touch entries above the floor, which have
	// not arrived yet. inStamp[v] records which arrival round inFloor[v]
	// belongs to.
	inFloor []int
	inStamp []int

	// Per-node send budget already spent this round via the direct
	// Send fast path (unit delay, no outbox leftovers): sendPhase drains
	// only capacity-sendUsed more. sendStamp[v] keys sendUsed[v] to a
	// round, avoiding an O(n) reset every round.
	sendUsed  []int
	sendStamp []int

	// Timing wheel: wheel[at&wheelMask] holds the messages arriving in
	// round at. Every in-flight message satisfies round < at ≤
	// round+len(wheel) (growWheel maintains this), so each bucket holds
	// messages of exactly one arrival round and deliverPhase drains one
	// bucket per round in O(bucket). Buckets are kept seq-sorted by
	// insertion, so no per-round sort is needed.
	wheel     [][]Message
	wheelMask int

	// O(1) quiescence: counters instead of scanning every queue.
	flying    int // scheduled on the wheel, not yet delivered
	queuedIn  int // total inbox backlog
	queuedOut int // total outbox backlog

	// Dense per-directed-edge FIFO clamp state (non-unit delays only):
	// last scheduled arrival for edge (v, Neighbors(v)[k]) lives at
	// edgeLast[edgeOff[v]+k], with k found by binary search over the
	// sorted neighbor list.
	edgeOff  []int
	edgeLast []int

	stats Stats
	err   error
}

// msgQueue is a FIFO of messages with an amortized O(1) pop.
type msgQueue struct {
	buf  []Message
	head int
}

func (q *msgQueue) push(m Message) { q.buf = append(q.buf, m) }

func (q *msgQueue) pop() (Message, bool) {
	if q.head >= len(q.buf) {
		return Message{}, false
	}
	m := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m, true
}

func (q *msgQueue) len() int { return len(q.buf) - q.head }

// initialWheel is the starting wheel size; it covers every delay the
// bundled models produce at their defaults and doubles on demand.
const initialWheel = 16

// New prepares a simulation of p on the configured graph.
func New(cfg Config, p Protocol) *Network {
	if cfg.Graph == nil {
		panic("sim: nil graph")
	}
	cap := cfg.Capacity
	if cap <= 0 {
		cap = 1
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		n := cfg.Graph.N()
		maxRounds = 100*n*n + 10000
	}
	delay := cfg.Delay
	if delay == nil {
		delay = UnitDelay{}
	}
	_, unit := delay.(UnitDelay)
	n := cfg.Graph.N()
	nw := &Network{
		proto:     p,
		maxRounds: maxRounds,
		env: Env{
			g:         cfg.Graph,
			n:         n,
			capacity:  cap,
			strict:    cfg.Strict,
			delay:     delay,
			unitDelay: unit,
			inbox:     make([]msgQueue, n),
			outbox:    make([]msgQueue, n),
			inFloor:   make([]int, n),
			inStamp:   make([]int, n),
			sendUsed:  make([]int, n),
			sendStamp: make([]int, n),
			wheel:     make([][]Message, initialWheel),
			wheelMask: initialWheel - 1,
		},
	}
	nw.env.adj = make([][]int, n)
	for v := 0; v < n; v++ {
		nw.env.adj[v] = cfg.Graph.Neighbors(v)
	}
	if !unit {
		e := &nw.env
		e.edgeOff = make([]int, n+1)
		for v := 0; v < n; v++ {
			e.edgeOff[v+1] = e.edgeOff[v] + len(cfg.Graph.Neighbors(v))
		}
		e.edgeLast = make([]int, e.edgeOff[n])
	}
	if cfg.TrackPerNode {
		nw.env.stats.Received = make([]int, n)
	}
	nw.ticker, _ = p.(Ticker)
	nw.sched, _ = p.(Scheduler)
	return nw
}

// Network couples a Protocol with an Env and executes rounds — to
// quiescence with Run, or one round at a time with Begin/Step/Quiescent
// for drivers that advance the simulation on their own clock (the countq
// bridge maps each Step to a configurable wall-clock hop latency).
type Network struct {
	proto     Protocol
	ticker    Ticker    // proto's Ticker view, nil if not implemented
	sched     Scheduler // proto's Scheduler view, nil if not implemented
	maxRounds int
	env       Env
}

// Env exposes the environment, for protocols that need to inspect state
// after the run (e.g. to read rounds for delay accounting).
func (nw *Network) Env() *Env { return &nw.env }

// Stats returns a snapshot of the run statistics so far. Step keeps
// Stats.Rounds current, so step-driven callers can report simulated rounds
// without waiting for quiescence. The Received slice (when per-node
// tracking is on) is shared with the live run, not copied.
func (nw *Network) Stats() Stats { return nw.env.stats }

// Begin runs round 0: the protocol's Start hook for every node, then the
// initial send phase. Run calls it implicitly; step-driven callers invoke
// it once before the first Step.
func (nw *Network) Begin() error {
	e := &nw.env
	for v := 0; v < e.g.N(); v++ {
		nw.proto.Start(e, v)
		if e.err != nil {
			return e.err
		}
	}
	e.sendPhase()
	return e.err
}

// Step executes one simulation round unconditionally: deliver messages
// whose flight ends this round, let each node receive up to capacity (the
// protocol's Deliver runs), tick, then send up to capacity per node. It
// reports a protocol failure or strict-mode violation; callers impose
// their own round bounds.
//
//countq:hotpath
func (nw *Network) Step() error {
	e := &nw.env
	n := e.n
	e.round++
	e.stats.Rounds = e.round
	if !e.unitDelay {
		e.deliverPhase()
	}
	// Receive phase: each node handles up to capacity messages that have
	// arrived. Under unit delay Send inserts next-round messages directly
	// into inboxes mid-phase, so eligibility is capped at the floor —
	// entries above it arrive next round. The inbox is drained in place;
	// handlers can only append (via Send), never consume.
	for v := 0; v < n; v++ {
		q := &e.inbox[v]
		avail := q.len()
		if e.inStamp[v] == e.round+1 {
			avail = e.inFloor[v] - q.head
		}
		take := avail
		if take > e.capacity {
			take = e.capacity
		}
		if e.stats.Received != nil && take > 0 {
			e.stats.Received[v] += take
		}
		for k := 0; k < take; k++ {
			m := q.buf[q.head]
			q.head++
			nw.proto.Deliver(e, v, m)
			if e.err != nil {
				if e.stats.Received != nil {
					e.stats.Received[v] -= take - k - 1
				}
				e.queuedIn -= k + 1
				return e.err
			}
		}
		e.queuedIn -= take
		if q.head == len(q.buf) {
			q.buf = q.buf[:0]
			q.head = 0
		} else if q.head > 32 && q.head*2 >= len(q.buf) {
			// The consumed prefix can't be reclaimed by the drained-queue
			// reset when direct inserts keep the tail non-empty; slide the
			// live region down once the dead prefix dominates.
			h := q.head
			live := copy(q.buf, q.buf[h:])
			q.buf = q.buf[:live]
			q.head = 0
			if e.inStamp[v] == e.round+1 {
				e.inFloor[v] -= h
			}
		}
		if backlog := avail - take; backlog > e.stats.MaxInboxBacklog {
			e.stats.MaxInboxBacklog = backlog
			if e.strict {
				e.strictViolation("inbox", v, backlog)
				return e.err
			}
		}
	}
	if nw.ticker != nil {
		for v := 0; v < n; v++ {
			nw.ticker.Tick(e, v)
			if e.err != nil {
				return e.err
			}
		}
	}
	e.sendPhase()
	return e.err
}

// Quiescent reports whether no message is queued or in flight.
func (nw *Network) Quiescent() bool { return nw.env.quiescent() }

// Run executes the protocol until the network is quiescent (no queued or
// in-flight messages). It returns the run statistics, or an error if the
// round bound was hit or a strict-mode violation occurred.
func (nw *Network) Run() (Stats, error) {
	e := &nw.env
	if err := nw.Begin(); err != nil {
		return e.stats, err
	}
	for !e.quiescent() || (nw.sched != nil && e.round < nw.sched.PendingUntil()) {
		if e.round+1 > nw.maxRounds {
			return e.stats, fmt.Errorf("sim: round bound %d exceeded (livelock?)", nw.maxRounds)
		}
		if err := nw.Step(); err != nil {
			return e.stats, err
		}
	}
	e.stats.Rounds = e.round
	return e.stats, nil
}

// quiescent reports whether no message is queued or in flight — O(1) via
// the flight and backlog counters.
//
//countq:hotpath
func (e *Env) quiescent() bool {
	return e.flying == 0 && e.queuedIn == 0 && e.queuedOut == 0
}

// strictViolation is the cold failure path for Strict mode.
func (e *Env) strictViolation(queue string, v, backlog int) {
	e.err = fmt.Errorf("sim: strict violation: node %d %s backlog %d in round %d", v, queue, backlog, e.round)
}

// deliverPhase moves messages whose flight ends this round into inbox
// queues. The wheel bucket is already in global sequence order (schedule
// inserts sorted), so delivery is a single pass with no sort.
//
//countq:hotpath
func (e *Env) deliverPhase() {
	b := &e.wheel[e.round&e.wheelMask]
	due := *b
	if len(due) == 0 {
		return
	}
	for i := range due {
		e.inbox[due[i].To].push(due[i])
	}
	e.queuedIn += len(due)
	e.flying -= len(due)
	*b = due[:0]
}

// sendPhase moves up to capacity messages per node from outboxes onto the
// wire. Arrival rounds come from the delay model, clamped so that FIFO
// order per directed link is never violated; under unit delays every
// message lands in the same next-round bucket and the clamp cannot bind,
// so the whole phase runs against one hoisted bucket slice.
//
//countq:hotpath
func (e *Env) sendPhase() {
	if e.unitDelay {
		e.sendPhaseUnit()
		return
	}
	for v := range e.outbox {
		for k := 0; k < e.capacity; k++ {
			m, ok := e.outbox[v].pop()
			if !ok {
				break
			}
			e.queuedOut--
			m.sentAt = e.round
			at := e.round + 1
			if d := e.delay.Delay(m.From, m.To, m.seq); d > 1 {
				at = e.round + d
			}
			idx := e.edgeOff[m.From] + edgeRank(e.adj[m.From], m.To)
			if prev := e.edgeLast[idx]; at < prev {
				at = prev // preserve per-link FIFO
			}
			e.edgeLast[idx] = at
			e.schedule(m, at)
			e.stats.MessagesSent++
		}
		if backlog := e.outbox[v].len(); backlog > e.stats.MaxOutboxBacklog {
			e.stats.MaxOutboxBacklog = backlog
			if e.strict {
				e.strictViolation("outbox", v, backlog)
			}
		}
	}
}

// sendPhaseUnit is sendPhase for the paper's synchronous model. Most
// messages already went straight to their destination inboxes via Send's
// direct fast path; what remains in the outboxes is overflow past the
// round's send budget (and leftovers from earlier rounds), drained here
// up to whatever budget the direct sends left over.
//
//countq:hotpath
func (e *Env) sendPhaseUnit() {
	for v := range e.outbox {
		q := &e.outbox[v]
		if q.len() == 0 {
			continue
		}
		budget := e.capacity
		if e.sendStamp[v] == e.round {
			budget -= e.sendUsed[v]
		}
		take := q.len()
		if take > budget {
			take = budget
		}
		for k := 0; k < take; k++ {
			m := q.buf[q.head]
			q.head++
			m.sentAt = e.round
			e.insertNextRound(m)
		}
		e.queuedOut -= take
		e.stats.MessagesSent += take
		if q.head == len(q.buf) {
			q.buf = q.buf[:0]
			q.head = 0
		}
		if backlog := q.len(); backlog > e.stats.MaxOutboxBacklog {
			e.stats.MaxOutboxBacklog = backlog
			if e.strict {
				e.strictViolation("outbox", v, backlog)
			}
		}
	}
}

// schedule places m on the wheel for arrival round at, keeping the bucket
// in global sequence order. Within one send phase outboxes drain in node
// order and each outbox is already seq-sorted, so insertions arrive in
// ascending runs and the back-scan is O(1) amortized.
//
//countq:hotpath
func (e *Env) schedule(m Message, at int) {
	for at-e.round >= len(e.wheel) {
		e.growWheel()
	}
	b := &e.wheel[at&e.wheelMask]
	s := append(*b, m)
	for i := len(s) - 1; i > 0 && s[i-1].seq > s[i].seq; i-- {
		s[i-1], s[i] = s[i], s[i-1]
	}
	*b = s
	e.flying++
}

// growWheel doubles the wheel. Every in-flight message has an arrival in
// (round, round+len(wheel)], so each old bucket holds exactly one arrival
// round and moves wholesale to its new slot. Cold: runs at most
// log2(maxDelay) times per simulation.
func (e *Env) growWheel() {
	old := e.wheel
	oldMask := e.wheelMask
	grown := make([][]Message, 2*len(old))
	mask := len(grown) - 1
	for at := e.round + 1; at <= e.round+len(old); at++ {
		if b := old[at&oldMask]; len(b) > 0 {
			grown[at&mask] = b
		}
	}
	e.wheel = grown
	e.wheelMask = mask
}

// edgeRank returns the index of neighbor to in the sorted adjacency list
// nbrs — the dense column offset for the per-edge FIFO clamp.
//
//countq:hotpath
func edgeRank(nbrs []int, to int) int {
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nbrs[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Send queues a message from node from to an adjacent node to. It panics if
// from and to are not neighbors in the communication graph — protocols may
// only use real links.
//
//countq:hotpath
func (e *Env) Send(from, to int, m Message) {
	if from < 0 || from >= e.n {
		panic(fmt.Sprintf("sim: send from out-of-range node %d", from))
	}
	nbrs := e.adj[from]
	if r := edgeRank(nbrs, to); r >= len(nbrs) || nbrs[r] != to {
		panic(fmt.Sprintf("sim: send over non-edge (%d,%d)", from, to))
	}
	m.From = from
	m.To = to
	m.seq = e.seq
	e.seq++
	// Fast path (unit delay): a message inside the round's send budget
	// with no outbox leftovers ahead of it is transmitted this round and
	// arrives next round, unconditionally — skip the outbox and place it
	// in the destination inbox now. The receive phase's floor guard keeps
	// it invisible until it arrives; sendPhase drains only the remaining
	// budget. Everything else queues in the outbox as before.
	if e.unitDelay && e.outbox[from].len() == 0 {
		if e.sendStamp[from] != e.round {
			e.sendStamp[from] = e.round
			e.sendUsed[from] = 0
		}
		if e.sendUsed[from] < e.capacity {
			e.sendUsed[from]++
			m.sentAt = e.round
			e.insertNextRound(m)
			e.stats.MessagesSent++
			return
		}
	}
	e.outbox[from].push(m)
	e.queuedOut++
}

// insertNextRound places m, already stamped with sentAt, into its
// destination inbox for arrival in round round+1, keeping the upcoming
// round's slice region in global sequence order. Inserts arrive in
// near-ascending runs, so the bounded back-scan is O(1) amortized; the
// floor keeps it from ever crossing into messages that arrived earlier.
//
//countq:hotpath
func (e *Env) insertNextRound(m Message) {
	in := &e.inbox[m.To]
	floor := e.inFloor[m.To]
	if e.inStamp[m.To] != e.round+1 {
		e.inStamp[m.To] = e.round + 1
		floor = len(in.buf)
		e.inFloor[m.To] = floor
	}
	s := append(in.buf, m)
	for i := len(s) - 1; i > floor && s[i-1].seq > s[i].seq; i-- {
		s[i-1], s[i] = s[i], s[i-1]
	}
	in.buf = s
	e.queuedIn++
}

// Round reports the current round number. Start runs in round 0; the first
// deliveries happen in round 1.
func (e *Env) Round() int { return e.round }

// N reports the number of nodes.
func (e *Env) N() int { return e.g.N() }

// Graph exposes the communication graph.
func (e *Env) Graph() *graph.Graph { return e.g }

// Capacity reports the per-node per-round send/receive budget.
func (e *Env) Capacity() int { return e.capacity }

// Fail aborts the simulation with err; for protocols that detect internal
// inconsistencies.
func (e *Env) Fail(err error) { e.err = err }
