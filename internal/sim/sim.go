// Package sim is a deterministic synchronous message-passing network
// simulator implementing the machine model of Section 2.1 of Busch &
// Tirthapura: a connected undirected graph of processors with reliable FIFO
// links of delay one, where each processor sends at most c and receives at
// most c messages per time step (c = 1 in the paper's base model; c = deg
// reproduces the "expanded time step" device used for the arrow protocol).
//
// Each round proceeds as: deliver messages sent last round into per-node
// inbox queues; each node receives up to c queued messages (handler runs);
// optional per-round tick; each node sends up to c queued outgoing messages.
// A message received in round t can therefore be forwarded in round t, and
// arrives at the neighbor in round t+1 — information travels at most one hop
// per round, the speed assumed by the paper's latency lower bounds.
//
// Messages that arrive beyond the receive capacity queue up FIFO: the
// simulator measures contention rather than wishing it away, which is what
// makes the star-graph experiment come out Θ(n²) by measurement.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Message is a network message. From/To are set by Send; Kind and the
// integer payload fields are protocol-defined. Using plain ints keeps the
// hot loop allocation-free.
type Message struct {
	From, To int
	Kind     int
	A, B, C  int // protocol payload (e.g. operation id, origin, count)
	sentAt   int // round the message entered the wire
	seq      int // global sequence number, for deterministic ordering
}

// SentAt reports the round in which the message was transmitted.
func (m Message) SentAt() int { return m.sentAt }

// Protocol is the per-node behavior run by the simulator. Start runs once
// for every node before round 1 (the paper's "time zero", where one-shot
// operations are issued). Deliver runs when a node receives a message.
// Handlers communicate only through Env.
type Protocol interface {
	Start(env *Env, node int)
	Deliver(env *Env, node int, m Message)
}

// Ticker is an optional extension: Tick runs for every node each round after
// the receive phase, for protocols that act on timeouts rather than messages.
type Ticker interface {
	Tick(env *Env, node int)
}

// Scheduler is an optional extension for long-lived protocols that inject
// work at future times (usually from Tick): the network keeps running until
// PendingUntil even if it is momentarily quiescent. PendingUntil is
// re-polled every round, so protocols with internal timers (token holding,
// critical sections) can extend it as they run.
type Scheduler interface {
	// PendingUntil returns the last round at which the protocol will
	// spontaneously create work, as currently known.
	PendingUntil() int
}

// Config describes a simulation instance.
type Config struct {
	Graph    *graph.Graph
	Capacity int // per-node send and receive budget per round; 0 means 1
	// Strict makes Run fail if any message ever has to queue behind the
	// capacity limit — i.e. if the protocol violates the at-most-c model
	// of Section 2.1 instead of merely being slowed by it.
	Strict bool
	// MaxRounds bounds the simulation; 0 means a generous default
	// proportional to n². Run fails if the bound is hit before quiescence.
	MaxRounds int
	// Delay chooses the link-delay model; nil means UnitDelay (the
	// paper's synchronous model). FIFO order per directed link is
	// preserved under every model.
	Delay DelayModel
	// TrackPerNode enables the per-node received-message counts in Stats.
	TrackPerNode bool
}

// Stats summarizes a completed run.
type Stats struct {
	Rounds           int // rounds executed until quiescence
	MessagesSent     int
	MaxInboxBacklog  int // worst queue behind the receive capacity
	MaxOutboxBacklog int // worst queue behind the send capacity
	// Received counts messages delivered per node — the load profile
	// that exposes hot spots (e.g. the star hub, a counting root).
	// Populated only when Config.TrackPerNode is set.
	Received []int
}

// HottestNode returns the node with the most received messages and its
// count, or (-1, 0) when per-node tracking was off or nothing was received.
func (s Stats) HottestNode() (node, received int) {
	node = -1
	for v, r := range s.Received {
		if r > received {
			node, received = v, r
		}
	}
	return node, received
}

// Env is the interface handlers use to interact with the network.
type Env struct {
	g        *graph.Graph
	capacity int
	strict   bool
	delay    DelayModel
	round    int
	seq      int

	inbox    []msgQueue
	outbox   []msgQueue
	arrivals map[int][]Message // arrival round → messages in flight
	flying   int
	lastAt   map[int64]int // directed link → last scheduled arrival (FIFO)

	stats Stats
	err   error
}

// msgQueue is a FIFO of messages with an amortized O(1) pop.
type msgQueue struct {
	buf  []Message
	head int
}

func (q *msgQueue) push(m Message) { q.buf = append(q.buf, m) }

func (q *msgQueue) pop() (Message, bool) {
	if q.head >= len(q.buf) {
		return Message{}, false
	}
	m := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m, true
}

func (q *msgQueue) len() int { return len(q.buf) - q.head }

// New prepares a simulation of p on the configured graph.
func New(cfg Config, p Protocol) *Network {
	if cfg.Graph == nil {
		panic("sim: nil graph")
	}
	cap := cfg.Capacity
	if cap <= 0 {
		cap = 1
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		n := cfg.Graph.N()
		maxRounds = 100*n*n + 10000
	}
	delay := cfg.Delay
	if delay == nil {
		delay = UnitDelay{}
	}
	n := cfg.Graph.N()
	nw := &Network{
		proto:     p,
		maxRounds: maxRounds,
		env: Env{
			g:        cfg.Graph,
			capacity: cap,
			strict:   cfg.Strict,
			delay:    delay,
			inbox:    make([]msgQueue, n),
			outbox:   make([]msgQueue, n),
			arrivals: make(map[int][]Message),
			lastAt:   make(map[int64]int),
		},
	}
	if cfg.TrackPerNode {
		nw.env.stats.Received = make([]int, n)
	}
	return nw
}

// Network couples a Protocol with an Env and executes rounds — to
// quiescence with Run, or one round at a time with Begin/Step/Quiescent
// for drivers that advance the simulation on their own clock (the countq
// bridge maps each Step to a configurable wall-clock hop latency).
type Network struct {
	proto     Protocol
	maxRounds int
	env       Env
}

// Env exposes the environment, for protocols that need to inspect state
// after the run (e.g. to read rounds for delay accounting).
func (nw *Network) Env() *Env { return &nw.env }

// Begin runs round 0: the protocol's Start hook for every node, then the
// initial send phase. Run calls it implicitly; step-driven callers invoke
// it once before the first Step.
func (nw *Network) Begin() error {
	e := &nw.env
	for v := 0; v < e.g.N(); v++ {
		nw.proto.Start(e, v)
		if e.err != nil {
			return e.err
		}
	}
	e.sendPhase()
	return e.err
}

// Step executes one simulation round unconditionally: deliver messages
// whose flight ends this round, let each node receive up to capacity (the
// protocol's Deliver runs), tick, then send up to capacity per node. It
// reports a protocol failure or strict-mode violation; callers impose
// their own round bounds.
func (nw *Network) Step() error {
	e := &nw.env
	n := e.g.N()
	e.round++
	e.deliverPhase()
	// Receive phase: each node handles up to capacity messages.
	for v := 0; v < n; v++ {
		for k := 0; k < e.capacity; k++ {
			m, ok := e.inbox[v].pop()
			if !ok {
				break
			}
			if e.stats.Received != nil {
				e.stats.Received[v]++
			}
			nw.proto.Deliver(e, v, m)
			if e.err != nil {
				return e.err
			}
		}
		if backlog := e.inbox[v].len(); backlog > e.stats.MaxInboxBacklog {
			e.stats.MaxInboxBacklog = backlog
			if e.strict {
				e.err = fmt.Errorf("sim: strict violation: node %d inbox backlog %d in round %d", v, backlog, e.round)
				return e.err
			}
		}
	}
	if ticker, ok := nw.proto.(Ticker); ok {
		for v := 0; v < n; v++ {
			ticker.Tick(e, v)
			if e.err != nil {
				return e.err
			}
		}
	}
	e.sendPhase()
	return e.err
}

// Quiescent reports whether no message is queued or in flight.
func (nw *Network) Quiescent() bool { return nw.env.quiescent() }

// Run executes the protocol until the network is quiescent (no queued or
// in-flight messages). It returns the run statistics, or an error if the
// round bound was hit or a strict-mode violation occurred.
func (nw *Network) Run() (Stats, error) {
	e := &nw.env
	if err := nw.Begin(); err != nil {
		return e.stats, err
	}
	scheduler, hasSched := nw.proto.(Scheduler)
	pending := func() bool {
		return hasSched && e.round < scheduler.PendingUntil()
	}
	for !e.quiescent() || pending() {
		if e.round+1 > nw.maxRounds {
			return e.stats, fmt.Errorf("sim: round bound %d exceeded (livelock?)", nw.maxRounds)
		}
		if err := nw.Step(); err != nil {
			return e.stats, err
		}
	}
	e.stats.Rounds = e.round
	return e.stats, nil
}

// quiescent reports whether no message is queued or in flight.
func (e *Env) quiescent() bool {
	if e.flying > 0 {
		return false
	}
	for i := range e.inbox {
		if e.inbox[i].len() > 0 || e.outbox[i].len() > 0 {
			return false
		}
	}
	return true
}

// deliverPhase moves messages whose flight ends this round into inbox
// queues, in deterministic (sequence number) order.
func (e *Env) deliverPhase() {
	due := e.arrivals[e.round]
	if len(due) == 0 {
		return
	}
	delete(e.arrivals, e.round)
	sort.Slice(due, func(i, j int) bool { return due[i].seq < due[j].seq })
	for _, m := range due {
		e.inbox[m.To].push(m)
	}
	e.flying -= len(due)
}

// sendPhase moves up to capacity messages per node from outboxes onto the
// wire. Arrival rounds come from the delay model, clamped so that FIFO
// order per directed link is never violated.
func (e *Env) sendPhase() {
	n := int64(e.g.N())
	for v := range e.outbox {
		for k := 0; k < e.capacity; k++ {
			m, ok := e.outbox[v].pop()
			if !ok {
				break
			}
			m.sentAt = e.round
			at := e.round + e.delay.Delay(m.From, m.To, m.seq)
			link := int64(m.From)*n + int64(m.To)
			if prev := e.lastAt[link]; at < prev {
				at = prev // preserve per-link FIFO
			}
			e.lastAt[link] = at
			e.arrivals[at] = append(e.arrivals[at], m)
			e.flying++
			e.stats.MessagesSent++
		}
		if backlog := e.outbox[v].len(); backlog > e.stats.MaxOutboxBacklog {
			e.stats.MaxOutboxBacklog = backlog
			if e.strict {
				e.err = fmt.Errorf("sim: strict violation: node %d outbox backlog %d in round %d", v, backlog, e.round)
			}
		}
	}
}

// Send queues a message from node from to an adjacent node to. It panics if
// from and to are not neighbors in the communication graph — protocols may
// only use real links.
func (e *Env) Send(from, to int, m Message) {
	if !e.g.HasEdge(from, to) {
		panic(fmt.Sprintf("sim: send over non-edge (%d,%d)", from, to))
	}
	m.From = from
	m.To = to
	m.seq = e.seq
	e.seq++
	e.outbox[from].push(m)
}

// Round reports the current round number. Start runs in round 0; the first
// deliveries happen in round 1.
func (e *Env) Round() int { return e.round }

// N reports the number of nodes.
func (e *Env) N() int { return e.g.N() }

// Graph exposes the communication graph.
func (e *Env) Graph() *graph.Graph { return e.g }

// Capacity reports the per-node per-round send/receive budget.
func (e *Env) Capacity() int { return e.capacity }

// Fail aborts the simulation with err; for protocols that detect internal
// inconsistencies.
func (e *Env) Fail(err error) { e.err = err }
