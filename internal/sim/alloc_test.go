package sim_test

// The engine-v2 zero-allocation gates, mirroring countq/alloc_test.go:
// testing.AllocsPerRun over Network.Step and over the bridge's
// submit/complete paths. Every buffer the engine and bridge use — wheel
// buckets, inbox/outbox queues, the grant table's slot slice, the
// session's reply channel — is grown during warmup, so the measured
// window sees only steady-state reuse. AllocsPerRun reads global malloc
// counters, so the pump goroutine's per-op work is inside the gate too:
// a pass proves the whole op path allocation-free, not just the caller's
// half.

import (
	"context"
	"testing"

	"repro/countq"
	"repro/internal/graph"
	"repro/internal/sim"
)

// stepEcho is the microbench protocol: every leaf pings the hub each
// round, the hub echoes — a full-contention star with 2(n-1) messages per
// round and no termination.
type stepEcho struct{ hub int }

func (p stepEcho) Start(env *sim.Env, node int) {
	if node != p.hub {
		env.Send(node, p.hub, sim.Message{Kind: 1})
	}
}

func (p stepEcho) Deliver(env *sim.Env, node int, m sim.Message) {
	env.Send(node, m.From, sim.Message{Kind: 1})
}

// gate runs body under AllocsPerRun and fails on any per-op allocation.
func gate(t *testing.T, name string, runs int, body func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(runs, body); avg != 0 {
		t.Errorf("%s: %.4f allocs/op in steady state, want 0", name, avg)
	}
}

// TestStepAllocFree gates Network.Step at zero steady-state allocations,
// under unit delay (direct-delivery fast path) and under jitter (the
// timing-wheel path, whose buckets must recycle).
func TestStepAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name  string
		delay sim.DelayModel
	}{
		{"unit", nil},
		{"jitter3", sim.JitterDelay{Seed: 1, Max: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := 9
			nw := sim.New(sim.Config{Graph: graph.Star(n), Capacity: n - 1, Delay: tc.delay}, stepEcho{hub: 0})
			if err := nw.Begin(); err != nil {
				t.Fatal(err)
			}
			// Warmup: grow the wheel, every queue and every bucket to the
			// workload's high-water mark.
			for i := 0; i < 64; i++ {
				if err := nw.Step(); err != nil {
					t.Fatal(err)
				}
			}
			var stepErr error
			gate(t, "Network.Step/"+tc.name, 200, func() {
				if err := nw.Step(); err != nil {
					stepErr = err
				}
			})
			if stepErr != nil {
				t.Fatal(stepErr)
			}
		})
	}
}

// TestBridgeOpAllocFree gates the bridge's per-op paths: the synchronous
// round trip (reply-channel reuse), the batch grant, and the async
// submit/complete pipeline. The pump's issue → route → grant work runs
// inside the measured window.
func TestBridgeOpAllocFree(t *testing.T) {
	b, err := sim.NewBridge(sim.BridgeConfig{HopLat: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sess, err := b.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	// Warmup: grow the grant table, wheel and queues.
	for i := 0; i < 32; i++ {
		if _, err := sess.Inc(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var opErr error
	gate(t, "bridge.Inc", 100, func() {
		if _, err := sess.Inc(ctx); err != nil {
			opErr = err
		}
	})
	bs := sess.(countq.BatchSession)
	gate(t, "bridge.IncN", 100, func() {
		if _, err := bs.IncN(ctx, 8); err != nil {
			opErr = err
		}
	})
	as := sess.(countq.AsyncSession)
	// Prime the async path (first Submit may grow pump-side state for the
	// pipelined shape), then gate a submit+reap cycle.
	for i := 0; i < 32; i++ {
		if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
			t.Fatal(err)
		}
		<-as.Completions()
	}
	gate(t, "bridge.Submit+reap", 100, func() {
		if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
			opErr = err
		}
		c := <-as.Completions()
		if c.Err != nil {
			opErr = c.Err
		}
	})
	if opErr != nil {
		t.Fatal(opErr)
	}
}
