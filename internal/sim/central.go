package sim

import (
	"fmt"

	"repro/countq"
	"repro/internal/tree"
)

// The central bridge protocol: every operation routes to the spanning-tree
// root, which assigns counts (or remembers the queue tail) and routes
// grants back. It is the paper's naive baseline — the root's receive
// capacity serializes all n-1 leaves, so the star hub degrades as Θ(n²) —
// and the contrast target for the distributed protocols registered by
// internal/arrow and internal/counting.

const (
	bkReq   = 101 // A = token, B = origin node, C = block size or op id
	bkGrant = 102 // A = token, B = origin node, C = count or predecessor
)

// centralProto implements BridgeProtocol with a single point of
// serialization at the root.
type centralProto struct {
	router *tree.Router
	root   int
	queue  bool
	next   int64 // counter high-water mark at the root
	last   int64 // queue predecessor at the root
	grants Grants
}

func newCentralProto(tr *tree.Tree, queue bool, grants Grants) *centralProto {
	return &centralProto{
		router: tr.NewRouter(),
		root:   tr.Root(),
		queue:  queue,
		last:   countq.Head,
		grants: grants,
	}
}

func (p *centralProto) Start(*Env, int) {}

// Issue injects an operation at its session's node: root-adjacent state is
// never touched directly — even a root-co-located op would pay the message
// round trip, but sessions are only assigned to non-root nodes.
//
//countq:hotpath
func (p *centralProto) Issue(env *Env, node int, token int, op countq.Op) {
	payload := int(op.N)
	if p.queue {
		payload = int(op.ID)
	}
	env.Send(node, p.router.NextHop(node, p.root), Message{Kind: bkReq, A: token, B: node, C: payload})
}

//countq:hotpath
func (p *centralProto) Deliver(env *Env, node int, m Message) {
	switch m.Kind {
	case bkReq:
		if node != p.root {
			env.Send(node, p.router.NextHop(node, p.root), m)
			return
		}
		var val int64
		if p.queue {
			val = p.last
			p.last = int64(m.C)
		} else {
			n := int64(m.C)
			if n < 1 {
				n = 1
			}
			val = p.next + 1
			p.next += n
		}
		env.Send(node, p.router.NextHop(node, m.B), Message{Kind: bkGrant, A: m.A, B: m.B, C: int(val)})
	case bkGrant:
		if node != m.B {
			env.Send(node, p.router.NextHop(node, m.B), m)
			return
		}
		p.grants.Grant(m.A, int64(m.C))
	default:
		failUnexpectedKind(env, m.Kind)
	}
}

// failUnexpectedKind aborts the simulation on a message no protocol
// handler claims — kept out of line so annotated Deliver bodies stay free
// of cold fmt work.
func failUnexpectedKind(env *Env, kind int) {
	env.Fail(fmt.Errorf("sim: bridge got unexpected message kind %d", kind))
}
