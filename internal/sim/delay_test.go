package sim

import (
	"testing"

	"repro/internal/graph"
)

func TestUnitDelayDefault(t *testing.T) {
	if (UnitDelay{}).Delay(0, 1, 7) != 1 {
		t.Error("unit delay not 1")
	}
}

func TestEdgeWeightDelayRelay(t *testing.T) {
	// Path with the middle edge weighted 5: the relay token takes
	// 1 + 5 + 1 rounds to reach the end of a 4-node path.
	n := 4
	p := &relayProto{recvRound: make([]int, n)}
	weights := EdgeWeightDelay{Weight: func(u, v int) int {
		if (u == 1 && v == 2) || (u == 2 && v == 1) {
			return 5
		}
		return 1
	}}
	nw := New(Config{Graph: graph.Path(n), Delay: weights}, p)
	if _, err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if p.recvRound[1] != 1 || p.recvRound[2] != 6 || p.recvRound[3] != 7 {
		t.Errorf("recv rounds = %v, want [0 1 6 7]", p.recvRound)
	}
}

func TestEdgeWeightDelayClampsToOne(t *testing.T) {
	d := EdgeWeightDelay{Weight: func(u, v int) int { return -3 }}
	if d.Delay(0, 1, 0) != 1 {
		t.Error("non-positive weight not clamped")
	}
}

func TestJitterDelayDeterministicAndBounded(t *testing.T) {
	d := JitterDelay{Seed: 42, Max: 7}
	for seq := 0; seq < 1000; seq++ {
		v := d.Delay(3, 5, seq)
		if v < 1 || v > 7 {
			t.Fatalf("jitter delay %d out of [1,7]", v)
		}
		if v != d.Delay(3, 5, seq) {
			t.Fatal("jitter delay not deterministic")
		}
	}
	// Max ≤ 1 degenerates to unit delay.
	if (JitterDelay{Seed: 1, Max: 1}).Delay(0, 1, 0) != 1 {
		t.Error("Max=1 should give unit delay")
	}
	// Different seeds give different schedules somewhere.
	d2 := JitterDelay{Seed: 43, Max: 7}
	same := true
	for seq := 0; seq < 100 && same; seq++ {
		same = d.Delay(0, 1, seq) == d2.Delay(0, 1, seq)
	}
	if same {
		t.Error("different seeds produced identical delays")
	}
}

func TestJitterPreservesLinkFIFO(t *testing.T) {
	// Flood many messages over one link with jitter; the receiver must
	// see them in send order.
	type proto struct {
		silentProto
		got []int
	}
	p := &proto{}
	pr := protoFuncs{
		start: func(env *Env, node int) {
			if node == 0 {
				for i := 0; i < 50; i++ {
					env.Send(0, 1, Message{Kind: 1, A: i})
				}
			}
		},
		deliver: func(env *Env, node int, m Message) {
			if node == 1 {
				p.got = append(p.got, m.A)
			}
		},
	}
	nw := New(Config{Graph: graph.Path(2), Delay: JitterDelay{Seed: 9, Max: 6}}, pr)
	if _, err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if len(p.got) != 50 {
		t.Fatalf("received %d of 50", len(p.got))
	}
	for i, v := range p.got {
		if v != i {
			t.Fatalf("FIFO violated: position %d has message %d", i, v)
		}
	}
}

func TestJitterRelayStillCompletes(t *testing.T) {
	n := 12
	p := &relayProto{recvRound: make([]int, n)}
	nw := New(Config{Graph: graph.Path(n), Delay: JitterDelay{Seed: 5, Max: 4}}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesSent != n-1 {
		t.Errorf("messages = %d", stats.MessagesSent)
	}
	// Arrival times strictly increase along the chain and are at least
	// the hop count.
	for v := 1; v < n; v++ {
		if p.recvRound[v] <= p.recvRound[v-1] {
			t.Errorf("node %d received at %d, not after node %d (%d)", v, p.recvRound[v], v-1, p.recvRound[v-1])
		}
		if p.recvRound[v] < v {
			t.Errorf("node %d received impossibly early: %d", v, p.recvRound[v])
		}
	}
}

// protoFuncs adapts closures to the Protocol interface for tests.
type protoFuncs struct {
	start   func(*Env, int)
	deliver func(*Env, int, Message)
}

func (p protoFuncs) Start(env *Env, node int) { p.start(env, node) }
func (p protoFuncs) Deliver(env *Env, node int, m Message) {
	p.deliver(env, node, m)
}
