package sim

import (
	"time"

	"repro/countq"
)

// The bridge structures register with the public countq registry v3, so
// the message-passing protocols run under the same scenario engine,
// validation pass and campaign comparisons as the shared-memory zoo:
//
//	countq compare "sharded?shards=8,sim-counter?hoplat=1us" -scenario "ramp?gmax=8"
//
// They are native session structures — their coordination round is a
// routed message round trip, not a synchronous call — so they have no
// legacy Counter/Queuer view and are driven exclusively through sessions
// (which is the point: this backend is expressible only in the v2 API).
//
// This file registers the central-protocol bridges; the distributed
// protocols register their own specs (sim-arrow-queue in internal/arrow,
// sim-tree-counter in internal/counting) through BridgeConfig.Proto,
// declaring the same option vocabulary so `countq ls` reads uniformly.
func init() {
	params := []countq.ParamInfo{
		{Name: "hoplat", Default: "1us", Doc: "wall-clock cost of one simulated round (one message hop); 0 = free-running"},
		{Name: "nodes", Default: "9", Doc: "network size (root + leaves; sessions pin round-robin to non-root nodes)"},
		{Name: "topo", Default: "star", Doc: "topology: star (hub contention) | list (diameter) | mesh2d"},
		{Name: "cap", Default: "1", Doc: "per-node per-round send/receive capacity — the paper's c"},
		{Name: "jitter", Default: "0", Doc: "max per-message link delay in rounds (0 = deterministic unit delay)"},
		{Name: "seed", Default: "1", Doc: "seed for the jitter delay model (ignored when jitter=0)"},
		{Name: "pipeline", Default: "1024", Doc: "per-session transport depth: submit-lane capacity, completion buffer and outstanding-operation bound"},
	}
	parse := func(o countq.Options, queue bool) (countq.Structure, error) {
		cfg := BridgeConfig{
			Topo:     o.String("topo", "star"),
			Nodes:    o.Int("nodes", 0),
			HopLat:   o.Duration("hoplat", time.Microsecond),
			Capacity: o.Int("cap", 0),
			Pipeline: o.Int("pipeline", 0),
			Queue:    queue,
		}
		seed := o.Int("seed", 1)
		if jitter := o.Int("jitter", 0); jitter > 0 {
			cfg.Delay = JitterDelay{Seed: int64(seed), Max: jitter}
		}
		if err := o.Err(); err != nil {
			return nil, err
		}
		return NewBridge(cfg)
	}
	countq.RegisterStructure(countq.StructureInfo{
		Name:         "sim-counter",
		Summary:      "central counting over the simulated message-passing network (requests route to the root, grants route back; hop latency and root capacity are the coordination cost)",
		Kinds:        countq.KindCounter,
		Linearizable: true,
		Params:       params,
		Caps:         countq.CapBatch | countq.CapAsync,
		New: func(o countq.Options) (countq.Structure, error) {
			return parse(o, false)
		},
	})
	countq.RegisterStructure(countq.StructureInfo{
		Name:         "sim-queue",
		Summary:      "central queuing over the simulated message-passing network (the root remembers the tail and hands each request its predecessor)",
		Kinds:        countq.KindQueue,
		Linearizable: true,
		Params:       params,
		Caps:         countq.CapAsync,
		New: func(o countq.Options) (countq.Structure, error) {
			return parse(o, true)
		},
	})
}
