package sim

import (
	"testing"

	"repro/internal/graph"
)

func TestPerNodeStatsHotSpot(t *testing.T) {
	// Star fan-in: the hub must be the hottest node with n-1 receives.
	n := 9
	p := &fanInProto{}
	nw := New(Config{Graph: graph.Star(n), TrackPerNode: true}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	node, recv := stats.HottestNode()
	if node != 0 || recv != n-1 {
		t.Errorf("hottest = (%d, %d), want (0, %d)", node, recv, n-1)
	}
	for v := 1; v < n; v++ {
		if stats.Received[v] != 0 {
			t.Errorf("leaf %d received %d messages", v, stats.Received[v])
		}
	}
}

func TestPerNodeStatsOffByDefault(t *testing.T) {
	p := &fanInProto{}
	nw := New(Config{Graph: graph.Star(4)}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Received != nil {
		t.Error("per-node stats collected without opt-in")
	}
	if node, recv := stats.HottestNode(); node != -1 || recv != 0 {
		t.Errorf("HottestNode without tracking = (%d, %d)", node, recv)
	}
}

func TestPerNodeStatsRelayUniform(t *testing.T) {
	n := 6
	p := &relayProto{recvRound: make([]int, n)}
	nw := New(Config{Graph: graph.Path(n), TrackPerNode: true}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v++ {
		if stats.Received[v] != 1 {
			t.Errorf("node %d received %d, want 1", v, stats.Received[v])
		}
	}
	if stats.Received[0] != 0 {
		t.Errorf("source received %d, want 0", stats.Received[0])
	}
}
