package sim

// DelayModel assigns a transmission delay (in rounds, ≥ 1) to each message
// as it enters a link. Per-link FIFO order is preserved regardless of the
// delays returned: a message never overtakes an earlier message on the same
// directed link.
//
// The paper's base model is unit delays (Section 2.1); its lower bounds are
// claimed to carry over to asynchronous executions, and the heterogeneous
// models here let the experiments check that the measured separation is
// robust when links are slow or jittery.
type DelayModel interface {
	// Delay returns the flight time for a message from u to v; the
	// sequence number seq identifies the message (deterministic models
	// must return the same value for the same arguments).
	Delay(u, v, seq int) int
}

// UnitDelay is the paper's synchronous model: every link takes one round.
type UnitDelay struct{}

// Delay implements DelayModel.
func (UnitDelay) Delay(u, v, seq int) int { return 1 }

// EdgeWeightDelay gives each undirected edge a fixed integer delay.
type EdgeWeightDelay struct {
	// Weight returns the delay of edge {u, v}; values < 1 are clamped
	// to 1.
	Weight func(u, v int) int
}

// Delay implements DelayModel.
func (d EdgeWeightDelay) Delay(u, v, seq int) int {
	w := d.Weight(u, v)
	if w < 1 {
		return 1
	}
	return w
}

// JitterDelay draws an independent delay from {1, …, Max} per message,
// deterministically from the seed — the standard way to simulate an
// asynchronous adversary bounded by Max.
type JitterDelay struct {
	Seed int64
	Max  int
}

// Delay implements DelayModel.
func (d JitterDelay) Delay(u, v, seq int) int {
	if d.Max <= 1 {
		return 1
	}
	// A small splitmix-style hash of (u, v, seq, Seed) keeps the model
	// deterministic without shared state.
	x := uint64(u)*0x9E3779B97F4A7C15 ^ uint64(v)*0xC2B2AE3D27D4EB4F ^ uint64(seq)*0x165667B19E3779F9 ^ uint64(d.Seed)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return 1 + int(x%uint64(d.Max))
}
