package sim_test

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"repro/countq"
	"repro/internal/graph"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Keep the zoo registered for the driver tests (shm self-registers on
// import; the named use keeps the import intentional).
var _ = shm.VariantSpecs

// newTestBridge builds a free-running (hoplat=0) bridge and registers its
// cleanup.
func newTestBridge(t *testing.T, cfg sim.BridgeConfig) *sim.Bridge {
	t.Helper()
	b, err := sim.NewBridge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func TestBridgeCounterSync(t *testing.T) {
	b := newTestBridge(t, sim.BridgeConfig{})
	const workers, perWorker = 4, 50
	var mu sync.Mutex
	var counts []int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := b.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			local := make([]int64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				v, err := sess.Inc(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				local = append(local, v)
			}
			mu.Lock()
			counts = append(counts, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if err := countq.ValidateCounts(counts); err != nil {
		t.Fatalf("bridge counts invalid: %v", err)
	}
}

func TestBridgeCounterBatch(t *testing.T) {
	b := newTestBridge(t, sim.BridgeConfig{})
	sess, err := b.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	bs, ok := sess.(countq.BatchSession)
	if !ok {
		t.Fatal("bridge session is not a BatchSession")
	}
	var blocks []countq.CountRange
	for i := 0; i < 8; i++ {
		first, err := bs.IncN(context.Background(), 16)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, countq.CountRange{First: first, N: 16})
	}
	if err := countq.ValidateCountRanges(nil, blocks); err != nil {
		t.Fatalf("block grants invalid: %v", err)
	}
	if _, err := bs.IncN(context.Background(), 0); err == nil {
		t.Error("IncN(0) accepted")
	}
}

func TestBridgeQueueOrder(t *testing.T) {
	b := newTestBridge(t, sim.BridgeConfig{Queue: true, Topo: "list", Nodes: 5})
	const workers, perWorker = 3, 20
	var mu sync.Mutex
	var ids, preds []int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := b.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for i := 0; i < perWorker; i++ {
				id := int64(w*perWorker + i)
				pr, err := sess.Enqueue(context.Background(), id)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				ids = append(ids, id)
				preds = append(preds, pr)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := countq.ValidateOrder(ids, preds); err != nil {
		t.Fatalf("bridge order invalid: %v", err)
	}
}

func TestBridgeKindGating(t *testing.T) {
	c := newTestBridge(t, sim.BridgeConfig{})
	q := newTestBridge(t, sim.BridgeConfig{Queue: true})
	cs, _ := c.NewSession()
	qs, _ := q.NewSession()
	defer cs.Close()
	defer qs.Close()
	if _, err := cs.Enqueue(context.Background(), 1); err == nil {
		t.Error("Enqueue on the counter bridge accepted")
	}
	if _, err := qs.Inc(context.Background()); err == nil {
		t.Error("Inc on the queue bridge accepted")
	}
}

func TestBridgeAsyncPipeline(t *testing.T) {
	b := newTestBridge(t, sim.BridgeConfig{})
	sess, err := b.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	as, ok := sess.(countq.AsyncSession)
	if !ok {
		t.Fatal("bridge session is not an AsyncSession")
	}
	const K, total = 8, 64
	outstanding, submitted := 0, 0
	var counts []int64
	for submitted < total || outstanding > 0 {
		for outstanding < K && submitted < total {
			op := countq.Op{Kind: countq.OpInc, N: 1, Token: uint64(submitted), Submitted: time.Now()}
			if err := as.Submit(context.Background(), op); err != nil {
				t.Fatal(err)
			}
			submitted++
			outstanding++
		}
		c := <-as.Completions()
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		counts = append(counts, c.Value)
		outstanding--
	}
	if err := countq.ValidateCounts(counts); err != nil {
		t.Fatalf("async counts invalid: %v", err)
	}
}

func TestBridgeContextCancellation(t *testing.T) {
	b := newTestBridge(t, sim.BridgeConfig{})
	sess, err := b.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Inc(cancelled); err == nil {
		t.Error("Inc with a cancelled context accepted")
	}
	as := sess.(countq.AsyncSession)
	if err := as.Submit(cancelled, countq.Op{Kind: countq.OpInc, N: 1}); err == nil {
		t.Error("Submit with a cancelled context accepted")
	}
	// A live context still works after cancelled attempts.
	if _, err := sess.Inc(context.Background()); err != nil {
		t.Errorf("Inc after a cancelled attempt: %v", err)
	}
}

func TestBridgeClosedRejects(t *testing.T) {
	b, err := sim.NewBridge(sim.BridgeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := b.NewSession()
	b.Close()
	if _, err := sess.Inc(context.Background()); err == nil {
		t.Error("Inc on a closed bridge accepted")
	}
	if err := sess.Close(); err != nil {
		t.Errorf("session close after bridge close: %v", err)
	}
}

func TestBridgeConfigRejects(t *testing.T) {
	for _, cfg := range []sim.BridgeConfig{
		{Nodes: 1},
		{Topo: "torus"},
		{Topo: "mesh2d", Nodes: 12}, // not a perfect square: no silent truncation
		{HopLat: -time.Microsecond},
		{Capacity: -1},
		{Pipeline: -1},
		{Pipeline: 1 << 16}, // past maxPipeline
	} {
		if b, err := sim.NewBridge(cfg); err == nil {
			b.Close()
			t.Errorf("NewBridge(%+v) accepted", cfg)
		}
	}
}

// TestBridgeThroughDriver runs the registered sim structures end to end
// through the countq scenario engine — sync, batched, async, and the
// queue side — proving the bridge is a full citizen of the workload
// driver, its validation pass included.
func TestBridgeThroughDriver(t *testing.T) {
	for _, w := range []countq.Workload{
		{Counter: "sim-counter?hoplat=0", Goroutines: 4, Ops: 600, Seed: 1},
		{Counter: "sim-counter?hoplat=0&topo=list&nodes=5", Goroutines: 2, Ops: 300, Seed: 1},
		{Counter: "sim-counter?hoplat=0", Goroutines: 2, Ops: 512, Batch: 16, Seed: 1},
		{Counter: "sim-counter?hoplat=0", Goroutines: 4, Ops: 600, Inflight: 8, Seed: 1},
		{Queue: "sim-queue?hoplat=0", Goroutines: 4, Ops: 600, Seed: 1},
		{Queue: "sim-queue?hoplat=0", Goroutines: 4, Ops: 600, Inflight: 4, Seed: 1},
		{Counter: "sim-counter?hoplat=0", Queue: "sim-queue?hoplat=0", Mix: 0.5, Goroutines: 2, Ops: 400, Seed: 1},
	} {
		m, err := countq.Run(w)
		if err != nil {
			t.Errorf("%+v: %v", w, err)
			continue
		}
		if m.Aggregate.Ops != w.Ops {
			t.Errorf("%+v: ops = %d, want %d", w, m.Aggregate.Ops, w.Ops)
		}
		if w.Inflight > 1 {
			if m.Aggregate.CounterCorr == nil && m.Aggregate.QueueCorr == nil {
				t.Errorf("%+v: async run recorded no corrected latency", w)
			}
			if m.Phases[0].Inflight != w.Inflight {
				t.Errorf("%+v: phase inflight = %d", w, m.Phases[0].Inflight)
			}
		}
	}
	// The synchronous compatibility view is absent by design.
	if _, err := countq.NewCounter("sim-counter"); err == nil {
		t.Error("NewCounter(sim-counter) accepted; the bridge has no synchronous view")
	}
	// Inflight against a structure without CapAsync fails loudly.
	if _, err := countq.Run(countq.Workload{Counter: "sim-counter?hoplat=0", Queue: "mutex", Mix: 0.5, Ops: 200, Inflight: 4}); err == nil {
		t.Error("inflight pipelining against a sync-only queue accepted")
	}
}

// holdProto withholds the grant for the first issued operation until the
// next one arrives, then grants the straggler first and the live
// operation second — the exact arrival order that used to taint the old
// per-session reply channel. Later operations grant immediately.
type holdProto struct {
	grants  sim.Grants
	held    int
	holding bool
	first   bool
	n       int64
}

func (p *holdProto) Start(env *sim.Env, node int)                  {}
func (p *holdProto) Deliver(env *sim.Env, node int, m sim.Message) {}
func (p *holdProto) Issue(env *sim.Env, node int, token int, op countq.Op) {
	if !p.first {
		p.first = true
		p.holding = true
		p.held = token
		return
	}
	if p.holding {
		p.holding = false
		p.n++
		p.grants.Grant(p.held, p.n)
	}
	p.n++
	p.grants.Grant(token, p.n)
}

// TestBridgeCancelThenReuse is the straggler-grant regression test: a
// cancelled round trip's grant arrives only after the next round trip is
// live, and must be discarded — not handed to the wrong operation, and
// not left pinning transport state (the old reply-channel taint).
func TestBridgeCancelThenReuse(t *testing.T) {
	proto := &holdProto{}
	maker := func(g *graph.Graph, tr *tree.Tree, grants sim.Grants) (sim.BridgeProtocol, error) {
		proto.grants = grants
		return proto, nil
	}
	b := newTestBridge(t, sim.BridgeConfig{Proto: maker})
	sess, err := b.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sess.Inc(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the op reach the pump and park
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled Inc returned %v, want context.Canceled", err)
	}
	// The next round trip releases the held straggler (value 1) right
	// before its own grant (value 2); it must see only its own.
	v, err := sess.Inc(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("Inc after cancellation = %d, want 2 (the straggler's 1 must be discarded)", v)
	}
	for want := int64(3); want <= 5; want++ {
		v, err := sess.Inc(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("follow-up Inc = %d, want %d", v, want)
		}
	}
}

// TestBridgePipelineParam pins the pipeline= spec param end to end: it
// must reach the session's outstanding bound, and bad values must be
// rejected at construction.
func TestBridgePipelineParam(t *testing.T) {
	st, err := countq.NewStructure("sim-counter?hoplat=100ms&pipeline=2", countq.KindCounter)
	if err != nil {
		t.Fatal(err)
	}
	defer st.(io.Closer).Close()
	sess, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	as := sess.(countq.AsyncSession)
	ctx := context.Background()
	// With a 100ms hop nothing completes during the test, so the third
	// submit must trip the configured bound of 2.
	for i := 0; i < 2; i++ {
		if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
			t.Fatalf("submit %d within the pipeline bound: %v", i, err)
		}
	}
	if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err == nil {
		t.Error("third submit accepted past pipeline=2")
	}
	for _, spec := range []string{
		"sim-counter?pipeline=-1",
		"sim-counter?pipeline=1000000",
	} {
		if st, err := countq.NewStructure(spec, countq.KindCounter); err == nil {
			st.(io.Closer).Close()
			t.Errorf("NewStructure(%q) accepted", spec)
		}
	}
}

// TestBridgeCloseSubmitRace hammers Close against in-flight Submit across
// many sessions (run it with -race): every accepted submission must
// produce exactly one completion — granted or failed with the close error
// — and the final drain must terminate.
func TestBridgeCloseSubmitRace(t *testing.T) {
	const workers, opsPer, iters = 8, 100, 10
	for iter := 0; iter < iters; iter++ {
		b, err := sim.NewBridge(sim.BridgeConfig{HopLat: 0})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		sessions := make([]countq.AsyncSession, workers)
		for w := 0; w < workers; w++ {
			sess, err := b.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			sessions[w] = sess.(countq.AsyncSession)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(as countq.AsyncSession) {
				defer wg.Done()
				ctx := context.Background()
				accepted, reaped := 0, 0
				for i := 0; i < opsPer; i++ {
					if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
						break // closed underneath us: fine, nothing owed
					}
					accepted++
					for {
						select {
						case <-as.Completions():
							reaped++
							continue
						default:
						}
						break
					}
				}
				// One completion per accepted submit, granted or failed;
				// a lost one deadlocks here and fails the test timeout.
				for reaped < accepted {
					<-as.Completions()
					reaped++
				}
			}(sessions[w])
		}
		// Race the close against the submit storm.
		closed := make(chan struct{})
		go func() {
			b.Close()
			close(closed)
		}()
		wg.Wait()
		<-closed
		b.Close() // idempotent
	}
}
