package sim

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// relayProto forwards a single token along a path and records when each node
// receives it.
type relayProto struct {
	recvRound []int
}

func (p *relayProto) Start(env *Env, node int) {
	if node == 0 && env.N() > 1 {
		env.Send(0, 1, Message{Kind: 1})
	}
	p.recvRound[0] = 0
}

func (p *relayProto) Deliver(env *Env, node int, m Message) {
	p.recvRound[node] = env.Round()
	if node+1 < env.N() {
		env.Send(node, node+1, m)
	}
}

func TestRelaySpeedOneHopPerRound(t *testing.T) {
	n := 10
	p := &relayProto{recvRound: make([]int, n)}
	nw := New(Config{Graph: graph.Path(n)}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v++ {
		if p.recvRound[v] != v {
			t.Errorf("node %d received at round %d, want %d", v, p.recvRound[v], v)
		}
	}
	if stats.MessagesSent != n-1 {
		t.Errorf("messages sent = %d, want %d", stats.MessagesSent, n-1)
	}
	if stats.Rounds != n-1 {
		t.Errorf("rounds = %d, want %d", stats.Rounds, n-1)
	}
	if stats.MaxInboxBacklog != 0 || stats.MaxOutboxBacklog != 0 {
		t.Errorf("relay should have no backlog: %+v", stats)
	}
}

// fanInProto has every leaf of a star send one message to the center, which
// records arrival rounds.
type fanInProto struct {
	arrivals []int
}

func (p *fanInProto) Start(env *Env, node int) {
	if node != 0 {
		env.Send(node, 0, Message{Kind: 2, A: node})
	}
}

func (p *fanInProto) Deliver(env *Env, node int, m Message) {
	if node == 0 {
		p.arrivals = append(p.arrivals, env.Round())
	}
}

func TestFanInContentionSerializes(t *testing.T) {
	n := 9 // 8 senders
	p := &fanInProto{}
	nw := New(Config{Graph: graph.Star(n)}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.arrivals) != n-1 {
		t.Fatalf("center received %d messages, want %d", len(p.arrivals), n-1)
	}
	// The receive capacity is 1/round, so the i-th message (1-based) is
	// processed in round i.
	for i, r := range p.arrivals {
		if r != i+1 {
			t.Errorf("message %d processed at round %d, want %d", i, r, i+1)
		}
	}
	if stats.MaxInboxBacklog != n-2 {
		t.Errorf("max inbox backlog = %d, want %d", stats.MaxInboxBacklog, n-2)
	}
}

func TestFanInWithCapacityNoBacklog(t *testing.T) {
	n := 9
	p := &fanInProto{}
	nw := New(Config{Graph: graph.Star(n), Capacity: n - 1}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.arrivals {
		if r != 1 {
			t.Errorf("with capacity %d all messages should arrive in round 1, got %d", n-1, r)
		}
	}
	if stats.MaxInboxBacklog != 0 {
		t.Errorf("backlog = %d, want 0", stats.MaxInboxBacklog)
	}
}

func TestStrictModeRejectsContention(t *testing.T) {
	p := &fanInProto{}
	nw := New(Config{Graph: graph.Star(4), Strict: true}, p)
	if _, err := nw.Run(); err == nil || !strings.Contains(err.Error(), "strict violation") {
		t.Errorf("strict run error = %v, want strict violation", err)
	}
}

// echoProto: node 0 pings node 1, node 1 replies.
type echoProto struct {
	replyRound int
}

func (p *echoProto) Start(env *Env, node int) {
	if node == 0 {
		env.Send(0, 1, Message{Kind: 1})
	}
}

func (p *echoProto) Deliver(env *Env, node int, m Message) {
	switch node {
	case 1:
		env.Send(1, 0, Message{Kind: 2})
	case 0:
		p.replyRound = env.Round()
	}
}

func TestEchoRoundTrip(t *testing.T) {
	p := &echoProto{}
	nw := New(Config{Graph: graph.Path(2)}, p)
	if _, err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if p.replyRound != 2 {
		t.Errorf("round trip = %d rounds, want 2", p.replyRound)
	}
}

// silentProto sends nothing; the network must be immediately quiescent.
type silentProto struct{}

func (silentProto) Start(*Env, int)            {}
func (silentProto) Deliver(*Env, int, Message) {}

func TestQuiescentImmediately(t *testing.T) {
	nw := New(Config{Graph: graph.Ring(5)}, silentProto{})
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 || stats.MessagesSent != 0 {
		t.Errorf("silent run: %+v", stats)
	}
}

// pingPongProto bounces a message forever between nodes 0 and 1.
type pingPongProto struct{}

func (pingPongProto) Start(env *Env, node int) {
	if node == 0 {
		env.Send(0, 1, Message{})
	}
}

func (pingPongProto) Deliver(env *Env, node int, m Message) {
	env.Send(node, m.From, Message{})
}

func TestRoundBound(t *testing.T) {
	nw := New(Config{Graph: graph.Path(2), MaxRounds: 10}, pingPongProto{})
	if _, err := nw.Run(); err == nil || !strings.Contains(err.Error(), "round bound") {
		t.Errorf("error = %v, want round bound", err)
	}
}

func TestSendOverNonEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("send over non-edge did not panic")
		}
	}()
	nw := New(Config{Graph: graph.Path(3)}, silentProto{})
	nw.Env().Send(0, 2, Message{})
}

// tickerProto counts ticks on node 0 while a relay is in flight.
type tickerProto struct {
	relayProto
	ticks int
}

func (p *tickerProto) Tick(env *Env, node int) {
	if node == 0 {
		p.ticks++
	}
}

func TestTickerRunsEveryRound(t *testing.T) {
	n := 6
	p := &tickerProto{relayProto: relayProto{recvRound: make([]int, n)}}
	nw := New(Config{Graph: graph.Path(n)}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if p.ticks != stats.Rounds {
		t.Errorf("ticks = %d, rounds = %d", p.ticks, stats.Rounds)
	}
}

// outboxProto sends many messages from one node in a single round.
type outboxProto struct {
	sent int
}

func (p *outboxProto) Start(env *Env, node int) {
	if node == 0 {
		for _, w := range env.Graph().Neighbors(0) {
			env.Send(0, w, Message{})
		}
	}
}

func (p *outboxProto) Deliver(env *Env, node int, m Message) { p.sent++ }

func TestOutboxSerializes(t *testing.T) {
	// Node 0 of a star enqueues 7 sends at once; with capacity 1 they
	// trickle out one per round.
	p := &outboxProto{}
	nw := New(Config{Graph: graph.Star(8)}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if p.sent != 7 {
		t.Errorf("delivered %d, want 7", p.sent)
	}
	if stats.Rounds != 7 {
		t.Errorf("rounds = %d, want 7", stats.Rounds)
	}
	if stats.MaxOutboxBacklog != 6 {
		t.Errorf("max outbox backlog = %d, want 6", stats.MaxOutboxBacklog)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]int, Stats) {
		p := &fanInProto{}
		nw := New(Config{Graph: graph.Star(12)}, p)
		stats, err := nw.Run()
		if err != nil {
			t.Fatal(err)
		}
		return p.arrivals, stats
	}
	a1, s1 := run()
	a2, s2 := run()
	if s1.Rounds != s2.Rounds || s1.MessagesSent != s2.MessagesSent ||
		s1.MaxInboxBacklog != s2.MaxInboxBacklog || s1.MaxOutboxBacklog != s2.MaxOutboxBacklog {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival orders differ at %d", i)
		}
	}
}

func TestMessageSentAt(t *testing.T) {
	p := &relayProto{recvRound: make([]int, 3)}
	nw := New(Config{Graph: graph.Path(3)}, p)
	if _, err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	// Indirect: relay receive rounds already checked; SentAt is exercised
	// via the Message copy (sentAt = receive round - 1).
}
