package sim

import (
	"testing"

	"repro/internal/graph"
)

// Timing-wheel wrap-around coverage: the wheel starts at initialWheel
// buckets and doubles on demand, so delays at and beyond the current size
// exercise growWheel's re-bucketing and the masked indexing after it.

// fanDelay assigns each hub→leaf link a fixed per-destination delay —
// distinct links, so the per-link FIFO clamp never binds and every
// message must arrive exactly at its model delay.
type fanDelay struct{ byDest map[int]int }

func (d fanDelay) Delay(u, v, seq int) int {
	if w, ok := d.byDest[v]; ok {
		return w
	}
	return 1
}

// TestWheelGrowLongDelays sends one message per leaf with delays spanning
// the initial wheel size (16), including the exact boundary delay 16 (the
// first arrival the 16-bucket wheel cannot hold) and one at 40 that
// forces a second doubling (16 → 32 → 64). Every arrival round must match
// the model exactly — a mis-bucketed message after growWheel would arrive
// a wheel-length early or late.
func TestWheelGrowLongDelays(t *testing.T) {
	n := 10 // hub + 9 leaves
	delays := map[int]int{9: 40}
	for v := 1; v <= 8; v++ {
		delays[v] = 15 + v // 16..23
	}
	recv := make([]int, n)
	p := protoFuncs{
		start: func(env *Env, node int) {
			if node == 0 {
				for v := 1; v < env.N(); v++ {
					env.Send(0, v, Message{Kind: 1})
				}
			}
		},
		deliver: func(env *Env, node int, m Message) {
			recv[node] = env.Round()
		},
	}
	nw := New(Config{Graph: graph.Star(n), Capacity: n, Delay: fanDelay{byDest: delays}}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesSent != n-1 {
		t.Errorf("messages sent = %d, want %d", stats.MessagesSent, n-1)
	}
	for v := 1; v < n; v++ {
		if recv[v] != delays[v] {
			t.Errorf("leaf %d received at round %d, want %d", v, recv[v], delays[v])
		}
	}
	if stats.Rounds < 40 {
		t.Errorf("simulation ran %d rounds, want ≥ 40 (the longest delay)", stats.Rounds)
	}
}

// seqDelay delays exactly one message (global sequence 0) by Long; every
// other message takes a unit hop.
type seqDelay struct{ Long int }

func (d seqDelay) Delay(u, v, seq int) int {
	if seq == 0 {
		return d.Long
	}
	return 1
}

// TestWheelMixedArrivalSameRound lands a long wheel-scheduled message and
// a unit-hop message at the same node on the same round, from different
// links (same-link arrivals are FIFO-clamped, which would hide the case).
// Node 0 fires the long message (delay 21 > initialWheel, so the wheel
// grows mid-flight); nodes 1 and 2 bounce a unit-delay tick whose 11th
// arrival at node 1 is also round 21. Delivery within the round must
// follow global send-sequence order: the long message (sequence 0) before
// that round's tick (sent 20 rounds later).
func TestWheelMixedArrivalSameRound(t *testing.T) {
	const long = 21
	type arrival struct{ round, kind int }
	var got []arrival
	p := protoFuncs{
		start: func(env *Env, node int) {
			switch node {
			case 0:
				env.Send(0, 1, Message{Kind: 9}) // sequence 0: the wheel rider
			case 2:
				env.Send(2, 1, Message{Kind: 1}) // the first tick
			}
		},
		deliver: func(env *Env, node int, m Message) {
			switch node {
			case 1:
				got = append(got, arrival{env.Round(), m.Kind})
				if m.Kind == 1 && env.Round() < long-1 {
					env.Send(1, 2, m)
				}
			case 2:
				env.Send(2, 1, m)
			}
		},
	}
	nw := New(Config{Graph: graph.Path(3), Capacity: 4, Delay: seqDelay{Long: long}}, p)
	if _, err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	// Ticks reach node 1 every other round: 1, 3, …, 19, 21. The long
	// message arrives in round 21 too, and its sequence number orders it
	// first within that round.
	want := make([]arrival, 0, 12)
	for r := 1; r < long; r += 2 {
		want = append(want, arrival{r, 1})
	}
	want = append(want, arrival{long, 9}, arrival{long, 1})
	if len(got) != len(want) {
		t.Fatalf("node 1 saw %d arrivals %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival %d = %+v, want %+v (full: %v)", i, got[i], want[i], got)
		}
	}
}
