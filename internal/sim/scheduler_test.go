package sim

import (
	"testing"

	"repro/internal/graph"
)

// timerProto is quiescent from the start but schedules a send at a future
// round, then extends its own horizon once — exercising the per-round
// re-polling of Scheduler.PendingUntil.
type timerProto struct {
	fireAt    int
	extended  bool
	extendTo  int
	delivered []int
}

func (p *timerProto) Start(*Env, int) {}
func (p *timerProto) PendingUntil() int {
	if p.extended {
		return p.extendTo
	}
	return p.fireAt
}

func (p *timerProto) Tick(env *Env, node int) {
	if node != 0 {
		return
	}
	switch env.Round() {
	case p.fireAt:
		env.Send(0, 1, Message{Kind: 1})
		p.extended = true // horizon grows mid-run
	case p.extendTo:
		env.Send(0, 1, Message{Kind: 2})
	}
}

func (p *timerProto) Deliver(env *Env, node int, m Message) {
	p.delivered = append(p.delivered, m.Kind)
}

func TestSchedulerRePolledEachRound(t *testing.T) {
	p := &timerProto{fireAt: 5, extendTo: 12}
	nw := New(Config{Graph: graph.Path(2)}, p)
	stats, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.delivered) != 2 || p.delivered[0] != 1 || p.delivered[1] != 2 {
		t.Errorf("delivered = %v, want [1 2]", p.delivered)
	}
	if stats.Rounds < 12 {
		t.Errorf("rounds = %d; the extended horizon was not honored", stats.Rounds)
	}
}

// failProto aborts from the handler.
type failProto struct{}

func (failProto) Start(env *Env, node int) {
	if node == 0 {
		env.Send(0, 1, Message{})
	}
}

func (failProto) Deliver(env *Env, node int, m Message) {
	env.Fail(errSentinel)
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestEnvFailAbortsRun(t *testing.T) {
	nw := New(Config{Graph: graph.Path(2)}, failProto{})
	if _, err := nw.Run(); err != errSentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestCapacityTwoHalvesSerialization(t *testing.T) {
	run := func(capacity int) int {
		p := &fanInProto{}
		nw := New(Config{Graph: graph.Star(17), Capacity: capacity}, p)
		stats, err := nw.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats.Rounds
	}
	r1, r2 := run(1), run(2)
	if r2 >= r1 {
		t.Errorf("capacity 2 (%d rounds) not faster than capacity 1 (%d rounds)", r2, r1)
	}
	if r2 < r1/3 {
		t.Errorf("capacity 2 sped up more than 2×: %d vs %d", r2, r1)
	}
}
