package ring

import (
	"runtime"
	"testing"
)

func TestSPSCPushPop(t *testing.T) {
	r := New[int](3) // non-power-of-two: logical cap 3 on a 4-slot buffer
	if r.Cap() != 3 {
		t.Fatalf("Cap() = %d, want 3", r.Cap())
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring reported ok")
	}
	for i := 0; i < 3; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) failed below capacity", i)
		}
	}
	if r.Push(99) {
		t.Fatal("Push succeeded past the logical capacity")
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", r.Len())
	}
	for i := 0; i < 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on drained ring reported ok")
	}
}

// TestSPSCWrap cycles far past the buffer length so the masked cursors
// wrap many times, in mixed-size batches that are coprime with the
// capacity.
func TestSPSCWrap(t *testing.T) {
	r := New[int](8)
	next, got := 0, 0
	for round := 0; round < 1000; round++ {
		batch := round%7 + 1
		for i := 0; i < batch; i++ {
			if !r.Push(next) {
				break
			}
			next++
		}
		take := round%5 + 1
		for i := 0; i < take; i++ {
			v, ok := r.Pop()
			if !ok {
				break
			}
			if v != got {
				t.Fatalf("round %d: Pop = %d, want %d", round, v, got)
			}
			got++
		}
	}
	for {
		v, ok := r.Pop()
		if !ok {
			break
		}
		if v != got {
			t.Fatalf("final drain: Pop = %d, want %d", v, got)
		}
		got++
	}
	if got != next {
		t.Fatalf("consumed %d of %d pushed", got, next)
	}
}

// TestSPSCZeroesSlots proves consumed slots drop their references: a ring
// of pointers must hold only nils after a full drain, whichever consume
// path ran.
func TestSPSCZeroesSlots(t *testing.T) {
	for _, drain := range []bool{false, true} {
		r := New[*int](4)
		for i := 0; i < 4; i++ {
			v := i
			r.Push(&v)
		}
		if drain {
			out := r.DrainTo(nil)
			if len(out) != 4 {
				t.Fatalf("DrainTo returned %d entries, want 4", len(out))
			}
		} else {
			for i := 0; i < 4; i++ {
				r.Pop()
			}
		}
		for i, p := range r.buf {
			if p != nil {
				t.Fatalf("drain=%v: slot %d still pins a reference", drain, i)
			}
		}
	}
}

func TestDrainToAppends(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	buf := make([]int, 0, 8)
	buf = append(buf, -1)
	buf = r.DrainTo(buf)
	if len(buf) != 6 || buf[0] != -1 {
		t.Fatalf("DrainTo did not append: got %v", buf)
	}
	for i := 0; i < 5; i++ {
		if buf[i+1] != i {
			t.Fatalf("DrainTo order: buf[%d] = %d, want %d", i+1, buf[i+1], i)
		}
	}
	if got := r.DrainTo(buf[:0]); len(got) != 0 {
		t.Fatalf("second DrainTo returned %d entries, want 0", len(got))
	}
}

func TestLanesRegisterRemove(t *testing.T) {
	l := NewLanes[int]()
	a := l.NewLane(4)
	b := l.NewLane(4)
	c := l.NewLane(4)
	snap := l.Snapshot()
	if len(snap) != 3 || snap[0] != a || snap[1] != b || snap[2] != c {
		t.Fatalf("Snapshot not in registration order: %v", snap)
	}
	l.Remove(b)
	snap = l.Snapshot()
	if len(snap) != 2 || snap[0] != a || snap[1] != c {
		t.Fatal("Remove did not excise the lane, or disturbed the order")
	}
	// Entries left in a removed lane stay with the lane, not the set.
	b.Push(7)
	if v, ok := b.Pop(); !ok || v != 7 {
		t.Fatal("removed lane no longer usable by its owner")
	}
}

// TestEventParkWake hammers the park/wake protocol: one consumer sweeps a
// lane set, parking whenever a sweep comes up empty; producers push and
// Wake. Every pushed value must arrive exactly once and the consumer must
// terminate — a lost wakeup deadlocks the test (guarded by the -timeout
// the harness always sets). Run with -race this also checks the
// publication ordering.
func TestEventParkWake(t *testing.T) {
	const producers = 4
	const perProducer = 5000
	l := NewLanes[int]()
	lanes := make([]*SPSC[int], producers)
	for i := range lanes {
		lanes[i] = l.NewLane(64)
	}
	done := make(chan struct{})
	got := make(chan int, producers*perProducer)
	go func() {
		defer close(done)
		seen := 0
		var scratch []int
		for seen < producers*perProducer {
			swept := 0
			for _, lane := range l.Snapshot() {
				scratch = lane.DrainTo(scratch[:0])
				for _, v := range scratch {
					got <- v
				}
				swept += len(scratch)
			}
			seen += swept
			if swept > 0 || seen == producers*perProducer {
				continue
			}
			l.Prepare()
			work := false
			for _, lane := range l.Snapshot() {
				if lane.Len() > 0 {
					work = true
					break
				}
			}
			if work {
				l.Unpark()
				continue
			}
			<-l.WakeChan()
		}
	}()
	for p := 0; p < producers; p++ {
		go func(p int) {
			lane := lanes[p]
			for i := 0; i < perProducer; i++ {
				for !lane.Push(p*perProducer + i) {
					runtime.Gosched()
				}
				l.Wake()
			}
		}(p)
	}
	<-done
	counts := make(map[int]int)
	close(got)
	for v := range got {
		counts[v]++
	}
	if len(counts) != producers*perProducer {
		t.Fatalf("received %d distinct values, want %d", len(counts), producers*perProducer)
	}
	for v, n := range counts {
		if n != 1 {
			t.Fatalf("value %d delivered %d times", v, n)
		}
	}
}

// TestEventStaleToken walks the abandoned-park scenario the Prepare
// ordering exists for: a producer's token lands after the consumer
// unparked; the next Prepare must drain it so the stale token cannot
// satisfy (and so mask) the next park's genuine wait.
func TestEventStaleToken(t *testing.T) {
	var e Event
	e.Init()
	e.Prepare()
	e.Wake() // token for this park epoch
	e.Unpark()
	// The token is still buffered; a fresh Prepare discards it.
	e.Prepare()
	select {
	case <-e.WakeChan():
		t.Fatal("stale token survived Prepare")
	default:
	}
	e.Wake()
	select {
	case <-e.WakeChan():
	default:
		t.Fatal("Wake after Prepare did not signal")
	}
	e.Unpark()
}
