// Package ring provides the repo's one audited single-producer
// single-consumer ring implementation: a bounded, allocation-free SPSC
// ring (SPSC), a multi-lane one-lane-per-producer aggregate (Lanes) whose
// consumer sweeps every lane with a batched drain, and an eventcount-style
// park/wake protocol (Event) so that consumer can sleep on empty lanes
// without losing wakeups.
//
// The design follows the memory-bounded discipline of Aksenov et al.'s
// memory-optimal bounded queues (arXiv:2104.15003, PAPERS.md): every lane
// is a fixed circular buffer sized at construction, producers never
// allocate on the hot path, and consumed slots are zeroed so a drained
// ring pins no references for the garbage collector. Both transport
// layers in the repo ride this package: the sim bridge's session↔pump
// lanes (internal/sim/bridge.go) and the flat-combining slot array of the
// native-async shared-memory backends (internal/shm/async.go).
//
// Concurrency contract:
//
//   - SPSC: exactly one goroutine calls Push, exactly one calls Pop or
//     DrainTo, at any point in time. The roles may migrate (e.g. a pump
//     handing its consumer role to Close after it exits) as long as the
//     handoff itself synchronizes.
//   - Lanes: NewLane/Remove/Snapshot may be called from any goroutine
//     (registration is copy-on-write under a mutex); each returned lane
//     then follows the SPSC contract.
//   - Event: one consumer parks (Prepare/WakeChan/Unpark); any number of
//     producers call Wake. Wakeups are never lost if the consumer
//     re-checks for work between Prepare and blocking on WakeChan;
//     spurious wakeups are possible and must be tolerated.
package ring

import (
	"sync"
	"sync/atomic"
)

// SPSC is a bounded single-producer single-consumer ring. The buffer is
// rounded up to a power of two internally but the logical capacity is
// exactly the one requested. The zero value is not usable; call New.
type SPSC[T any] struct {
	buf  []T
	mask int64
	capv int64
	// The producer owns tail, the consumer owns head; the padding keeps
	// the two cursors (and neighbouring rings' cursors) off one cache
	// line so producer and consumer do not false-share.
	_    [64]byte
	head atomic.Int64
	_    [56]byte
	tail atomic.Int64
	_    [56]byte
}

// New builds a ring holding up to capacity entries. capacity must be ≥ 1.
func New[T any](capacity int) *SPSC[T] {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: int64(n - 1), capv: int64(capacity)}
}

// Push appends v; it reports false when the ring is full. Producer-side
// only.
//
//countq:hotpath
//countq:role=producer
func (r *SPSC[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= r.capv {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Pop removes and returns the oldest entry, zeroing its slot so the ring
// never pins consumed references. Consumer-side only.
//
//countq:hotpath
//countq:role=consumer
func (r *SPSC[T]) Pop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.tail.Load() {
		return zero, false
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	return v, true
}

// DrainTo appends every entry published before the call to buf and
// returns the extended slice, zeroing the consumed slots and advancing
// head once for the whole batch — the consumer's amortized sweep path.
// Consumer-side only.
//
//countq:hotpath
//countq:role=consumer
func (r *SPSC[T]) DrainTo(buf []T) []T {
	var zero T
	h, t := r.head.Load(), r.tail.Load()
	for i := h; i < t; i++ {
		buf = append(buf, r.buf[i&r.mask])
		r.buf[i&r.mask] = zero
	}
	if t != h {
		r.head.Store(t)
	}
	return buf
}

// Len reports how many entries are currently buffered. Racy by nature;
// exact only from the consumer side.
//
//countq:hotpath
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Cap reports the logical capacity.
func (r *SPSC[T]) Cap() int { return int(r.capv) }

// Event is an eventcount-style park/wake cell: a parked flag plus a
// one-slot signal channel. The consumer announces intent to sleep with
// Prepare, re-checks for work, then blocks on WakeChan; a producer that
// publishes work calls Wake, which signals only when a consumer is (or
// was) parked — the uncontended fast path is one atomic load.
//
// The ordering that makes wakeups lossless: Prepare drains a stale signal
// BEFORE setting the parked flag (draining after could eat the token a
// racing producer just sent for this very park), and Wake sends its token
// only after winning the CAS on the flag, so at most one token per park
// epoch is in flight and the channel's single slot never drops a needed
// signal.
type Event struct {
	parked atomic.Uint32
	ch     chan struct{}
}

// Init prepares the event's signal channel. Must be called once before
// use (Event is embedded by value in larger structs, so there is no
// constructor returning it by value).
func (e *Event) Init() {
	e.ch = make(chan struct{}, 1)
}

// Wake signals a parked consumer, if any. Producer-side; safe from many
// goroutines. The fast path — nobody parked — is a single atomic load.
//
//countq:hotpath
//countq:role=producer
func (e *Event) Wake() {
	if e.parked.Load() == 0 {
		return
	}
	if !e.parked.CompareAndSwap(1, 0) {
		return // another producer won this epoch's signal
	}
	select {
	case e.ch <- struct{}{}:
	default:
		// A stale token from an abandoned park is still buffered; it will
		// wake the consumer just the same.
	}
}

// Prepare announces the consumer's intent to park. After Prepare the
// consumer MUST re-check its work sources before blocking on WakeChan
// (work published before the parked flag was visible produced no signal),
// and call Unpark if it decides not to block.
//
//countq:role=consumer
func (e *Event) Prepare() {
	// Drain any stale token first: doing it after Store could consume the
	// signal a producer sends for this park (its CAS already flipped the
	// flag back, so no second signal would come).
	select {
	case <-e.ch:
	default:
	}
	e.parked.Store(1)
}

// WakeChan is the channel the prepared consumer blocks on, exposed so it
// can be combined in a select with shutdown or timeout channels.
//
//countq:role=consumer
func (e *Event) WakeChan() <-chan struct{} {
	return e.ch
}

// Unpark retracts a Prepare without blocking — the consumer found work on
// its re-check, or is leaving the wait for another reason. A token a
// producer sent meanwhile stays buffered and is drained by the next
// Prepare.
//
//countq:role=consumer
func (e *Event) Unpark() {
	e.parked.Store(0)
}

// Lanes is the one-lane-per-producer aggregate: each producer publishes
// into a private SPSC lane, and one consumer sweeps a copy-on-write
// snapshot of all lanes without taking the registration lock. The
// embedded Event lets the consumer park between sweeps; producers wake it
// after publishing.
type Lanes[T any] struct {
	regMu sync.Mutex
	set   atomic.Pointer[[]*SPSC[T]]
	ev    Event
}

// NewLanes builds an empty aggregate.
func NewLanes[T any]() *Lanes[T] {
	l := &Lanes[T]{}
	empty := make([]*SPSC[T], 0)
	l.set.Store(&empty)
	l.ev.Init()
	return l
}

// NewLane registers and returns a fresh lane of the given capacity.
// Lanes are swept in registration order, which is what makes a sweep
// deterministic for a fixed producer set.
func (l *Lanes[T]) NewLane(capacity int) *SPSC[T] {
	lane := New[T](capacity)
	l.regMu.Lock()
	old := *l.set.Load()
	next := make([]*SPSC[T], len(old)+1)
	copy(next, old)
	next[len(old)] = lane
	l.set.Store(&next)
	l.regMu.Unlock()
	return lane
}

// Remove unregisters a lane so producer after producer of a phased
// workload does not grow the sweep set without bound. Entries still
// buffered in the lane are the caller's to settle.
func (l *Lanes[T]) Remove(lane *SPSC[T]) {
	l.regMu.Lock()
	old := *l.set.Load()
	next := make([]*SPSC[T], 0, len(old))
	for _, s := range old {
		if s != lane {
			next = append(next, s)
		}
	}
	l.set.Store(&next)
	l.regMu.Unlock()
}

// Snapshot returns the current lane set. The slice is immutable — a
// registration replaces it wholesale — so the consumer iterates it with
// no lock and no copy.
//
//countq:hotpath
//countq:role=consumer
func (l *Lanes[T]) Snapshot() []*SPSC[T] {
	return *l.set.Load()
}

// Wake signals the parked consumer; producers call it after Push.
//
//countq:hotpath
//countq:role=producer
func (l *Lanes[T]) Wake() { l.ev.Wake() }

// Prepare announces the consumer's intent to park; see Event.Prepare.
//
//countq:role=consumer
func (l *Lanes[T]) Prepare() { l.ev.Prepare() }

// WakeChan is the parked consumer's signal channel; see Event.WakeChan.
//
//countq:role=consumer
func (l *Lanes[T]) WakeChan() <-chan struct{} { return l.ev.WakeChan() }

// Unpark retracts a Prepare; see Event.Unpark.
//
//countq:role=consumer
func (l *Lanes[T]) Unpark() { l.ev.Unpark() }
