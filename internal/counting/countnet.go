package counting

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tree"
)

// CountNet embeds a bitonic counting network on the communication graph:
// each balancer is hosted by a node, tokens travel hop-by-hop over a
// spanning tree between consecutive balancer hosts, and the host of each
// final-layer balancer assigns counts for its output wires using the
// standard rule count = logical-output-index + width·(tokens already out).
//
// A requester injects a token on input wire (origin mod width) — a locally
// computable assignment — and its delay is the round in which the grant
// carrying its count arrives back.
type CountNet struct {
	tree      *tree.Tree
	router    *tree.Router
	net       *BalancerNetwork
	requests  []bool
	shortcuts bool

	hosts      [][]int // hosts[layer][balancer index in layer]
	balAtWire  [][]int // balAtWire[layer][wire] = balancer index in layer
	toggle     [][]bool
	exitHostOf []int // per physical wire
	exited     []int // per physical wire, tokens already counted out
	logical    []int // physical wire → logical output index

	count []int
	delay []int
}

// HostFn assigns a host node to the balancer at (layer, index). The global
// sequence number g counts balancers in construction order.
type HostFn func(layer, index, global, n int) int

// RoundRobinHosts spreads balancers over nodes in construction order — the
// default embedding.
func RoundRobinHosts(layer, index, global, n int) int { return global % n }

// WithShortcuts makes tokens and grants take a direct graph edge to their
// destination whenever one exists, falling back to spanning-tree routing
// otherwise. On the complete graph this gives the counting network its
// fairest treatment (every hop is one round, as in the Wattenhofer–
// Widmayer setting, reference [11]); on sparse graphs it is a no-op for
// most hops.
func (cn *CountNet) WithShortcuts() *CountNet {
	cn.shortcuts = true
	return cn
}

// hop returns the next node on the way from node to target.
func (cn *CountNet) hop(env *sim.Env, node, target int) int {
	if cn.shortcuts && env.Graph().HasEdge(node, target) {
		return target
	}
	return cn.router.NextHop(node, target)
}

// NewCountNet prepares a bitonic counting-network run of the given width on
// spanning tree t. Width must be a power of two; hosts may be nil for the
// round-robin default. Width 1 degenerates to a central counter at the
// tree root.
func NewCountNet(t *tree.Tree, requests []bool, width int, hosts HostFn) (*CountNet, error) {
	net, err := Bitonic(width)
	if err != nil {
		return nil, err
	}
	return NewCountNetFrom(t, requests, net, hosts)
}

// NewCountNetFrom embeds an arbitrary balancer network (bitonic, periodic,
// or custom) on spanning tree t. The network must satisfy the step property
// for the run to validate.
func NewCountNetFrom(t *tree.Tree, requests []bool, net *BalancerNetwork, hosts HostFn) (*CountNet, error) {
	n := t.N()
	width := net.Width
	if len(requests) != n {
		return nil, fmt.Errorf("counting: request vector has %d entries, want %d", len(requests), n)
	}
	if hosts == nil {
		hosts = RoundRobinHosts
	}
	cn := &CountNet{
		tree:       t,
		router:     t.NewRouter(),
		net:        net,
		requests:   append([]bool(nil), requests...),
		hosts:      make([][]int, net.Depth()),
		balAtWire:  make([][]int, net.Depth()),
		toggle:     make([][]bool, net.Depth()),
		exitHostOf: make([]int, width),
		exited:     make([]int, width),
		logical:    make([]int, width),
		count:      make([]int, n),
		delay:      make([]int, n),
	}
	for i := range cn.delay {
		cn.delay[i] = -1
	}
	global := 0
	for li, layer := range net.Layers {
		cn.hosts[li] = make([]int, len(layer))
		cn.toggle[li] = make([]bool, len(layer))
		cn.balAtWire[li] = make([]int, width)
		for w := range cn.balAtWire[li] {
			cn.balAtWire[li][w] = -1
		}
		for bi, b := range layer {
			h := hosts(li, bi, global, n)
			if h < 0 || h >= n {
				return nil, fmt.Errorf("counting: host %d out of range", h)
			}
			cn.hosts[li][bi] = h
			cn.balAtWire[li][b.Top] = bi
			cn.balAtWire[li][b.Bottom] = bi
			global++
		}
	}
	for w := 0; w < width; w++ {
		cn.exitHostOf[w] = t.Root() // default (width 1, or untouched wire)
		for li := net.Depth() - 1; li >= 0; li-- {
			if bi := cn.balAtWire[li][w]; bi >= 0 {
				cn.exitHostOf[w] = cn.hosts[li][bi]
				break
			}
		}
	}
	for li, w := range net.OutPerm {
		cn.logical[w] = li
	}
	return cn, nil
}

// Width reports the network width.
func (cn *CountNet) Width() int { return cn.net.Width }

// Depth reports the number of balancer layers.
func (cn *CountNet) Depth() int { return cn.net.Depth() }

// Start injects node's token on its input wire.
func (cn *CountNet) Start(env *sim.Env, node int) {
	if !cn.requests[node] {
		return
	}
	cn.advance(env, node, node, 0, node%cn.net.Width)
}

// advance pushes origin's token through balancers hosted at node until it
// either completes or must travel to another host.
func (cn *CountNet) advance(env *sim.Env, node, origin, layer, wire int) {
	for {
		if layer == cn.net.Depth() {
			h := cn.exitHostOf[wire]
			if node != h {
				cn.forwardToken(env, node, origin, layer, wire, h)
				return
			}
			cn.exited[wire]++
			count := cn.logical[wire] + cn.net.Width*(cn.exited[wire]-1) + 1
			if origin == node {
				cn.count[origin] = count
				cn.delay[origin] = env.Round()
				return
			}
			env.Send(node, cn.hop(env, node, origin), sim.Message{Kind: kindGrant, A: origin, B: count})
			return
		}
		bi := cn.balAtWire[layer][wire]
		if bi < 0 {
			layer++ // wire untouched in this layer
			continue
		}
		h := cn.hosts[layer][bi]
		if node != h {
			cn.forwardToken(env, node, origin, layer, wire, h)
			return
		}
		b := cn.net.Layers[layer][bi]
		if !cn.toggle[layer][bi] {
			wire = b.Top
		} else {
			wire = b.Bottom
		}
		cn.toggle[layer][bi] = !cn.toggle[layer][bi]
		layer++
	}
}

// forwardToken sends the token one hop toward its next host.
func (cn *CountNet) forwardToken(env *sim.Env, node, origin, layer, wire, host int) {
	env.Send(node, cn.hop(env, node, host), sim.Message{Kind: kindToken, A: origin, B: layer, C: wire})
}

// Deliver routes tokens between hosts and grants back to origins.
func (cn *CountNet) Deliver(env *sim.Env, node int, m sim.Message) {
	switch m.Kind {
	case kindToken:
		layer, wire := m.B, m.C
		var target int
		if layer == cn.net.Depth() {
			target = cn.exitHostOf[wire]
		} else {
			target = cn.hosts[layer][cn.balAtWire[layer][wire]]
		}
		if node != target {
			cn.forwardToken(env, node, m.A, layer, wire, target)
			return
		}
		cn.advance(env, node, m.A, layer, wire)
	case kindGrant:
		if node != m.A {
			env.Send(node, cn.hop(env, node, m.A), m)
			return
		}
		cn.count[node] = m.B
		cn.delay[node] = env.Round()
	default:
		env.Fail(fmt.Errorf("counting: network got unexpected kind %d", m.Kind))
	}
}

// Count implements Results.
func (cn *CountNet) Count(v int) int { return cn.count[v] }

// Delay implements Results.
func (cn *CountNet) Delay(v int) int { return cn.delay[v] }

// Requests implements Results.
func (cn *CountNet) Requests() []bool { return cn.requests }
