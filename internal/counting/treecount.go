package counting

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tree"
)

// TreeCount is the aggregating spanning-tree counting protocol — the
// strongest one-shot counter in this package, and the natural competitor
// for the lower bounds. It runs in two phases on a rooted spanning tree:
//
//  1. Convergecast: every node reports its subtree's request total to its
//     parent once all children have reported (leaves report immediately).
//  2. Rank distribution: the root fixes the total order — root's own
//     operation first, then the children's subtrees in ascending order —
//     and sends each child the first rank of its block; interior nodes
//     recursively split their block among themselves and their children.
//
// Every requester learns its rank when its block message arrives. Total
// delay is Θ(Σ_v depth(v)) plus serialization at high-degree nodes; on a
// constant-degree tree of depth D it is O(n·D).
type TreeCount struct {
	tree     *tree.Tree
	requests []bool

	// childTotal[v][k] = requests in the subtree of Children(v)[k], or -1
	// until that child reports. Rank-indexed (not a map keyed by child id)
	// so the aggregation loops iterate in the tree's fixed child order —
	// the sim's golden traces must not depend on map iteration order.
	childTotal [][]int
	pendingUp  []int // children yet to report
	count      []int
	delay      []int
}

// NewTreeCount prepares an aggregating-counter run on spanning tree t.
func NewTreeCount(t *tree.Tree, requests []bool) (*TreeCount, error) {
	n := t.N()
	if len(requests) != n {
		return nil, fmt.Errorf("counting: request vector has %d entries, want %d", len(requests), n)
	}
	tc := &TreeCount{
		tree:       t,
		requests:   append([]bool(nil), requests...),
		childTotal: make([][]int, n),
		pendingUp:  make([]int, n),
		count:      make([]int, n),
		delay:      make([]int, n),
	}
	for v := 0; v < n; v++ {
		totals := make([]int, len(t.Children(v)))
		for k := range totals {
			totals[k] = -1
		}
		tc.childTotal[v] = totals
		tc.pendingUp[v] = len(t.Children(v))
		tc.delay[v] = -1
	}
	return tc, nil
}

// Start begins the convergecast at the leaves.
func (tc *TreeCount) Start(env *sim.Env, node int) {
	if tc.pendingUp[node] > 0 {
		return // interior node: waits for children
	}
	tc.reportUp(env, node)
}

// reportUp sends node's aggregate to its parent, or starts the down phase
// if node is the root.
func (tc *TreeCount) reportUp(env *sim.Env, node int) {
	total := tc.subtreeTotal(node)
	if node != tc.tree.Root() {
		env.Send(node, tc.tree.Parent(node), sim.Message{Kind: kindUp, A: total})
		return
	}
	tc.distribute(env, node, 1)
}

// subtreeTotal is node's own bit plus all reported child totals. Only
// called once every child has reported, so no -1 sentinel remains.
func (tc *TreeCount) subtreeTotal(node int) int {
	total := 0
	if tc.requests[node] {
		total = 1
	}
	for _, t := range tc.childTotal[node] {
		total += t
	}
	return total
}

// childRank finds c's position in node's child list, or -1 for a sender
// that is not a child — rank-indexing keeps every aggregation loop in
// the tree's fixed child order.
func (tc *TreeCount) childRank(node, c int) int {
	for k, ch := range tc.tree.Children(node) {
		if ch == c {
			return k
		}
	}
	return -1
}

// distribute hands out the rank block starting at base to node and its
// children's subtrees.
func (tc *TreeCount) distribute(env *sim.Env, node, base int) {
	if tc.requests[node] {
		tc.count[node] = base
		tc.delay[node] = env.Round()
		base++
	}
	for k, c := range tc.tree.Children(node) {
		t := tc.childTotal[node][k]
		if t <= 0 {
			continue
		}
		env.Send(node, c, sim.Message{Kind: kindDown, A: base})
		base += t
	}
}

// Deliver handles convergecast reports and rank blocks.
func (tc *TreeCount) Deliver(env *sim.Env, node int, m sim.Message) {
	switch m.Kind {
	case kindUp:
		k := tc.childRank(node, m.From)
		if k < 0 {
			env.Fail(fmt.Errorf("counting: node %d got a report from non-child %d", node, m.From))
			return
		}
		if tc.childTotal[node][k] >= 0 {
			env.Fail(fmt.Errorf("counting: child %d reported twice to %d", m.From, node))
			return
		}
		tc.childTotal[node][k] = m.A
		tc.pendingUp[node]--
		if tc.pendingUp[node] == 0 {
			tc.reportUp(env, node)
		}
	case kindDown:
		tc.distribute(env, node, m.A)
	default:
		env.Fail(fmt.Errorf("counting: tree counter got unexpected kind %d", m.Kind))
	}
}

// Count implements Results.
func (tc *TreeCount) Count(v int) int { return tc.count[v] }

// Delay implements Results.
func (tc *TreeCount) Delay(v int) int { return tc.delay[v] }

// Requests implements Results.
func (tc *TreeCount) Requests() []bool { return tc.requests }
