package counting

import "fmt"

// Periodic constructs the periodic counting network (Aspnes, Herlihy and
// Shavit, after the balanced periodic structure of Dowd, Perl, Rudolph and
// Saks): log w identical Block[w] stages in sequence. A Block[w] stage has
// log w layers; layer ℓ splits the wires into aligned groups of size w/2^ℓ
// and pairs each wire with its mirror image within its group (the first
// layer joins wire i with wire w−1−i, the next layer mirrors within each
// half, and so on down to adjacent pairs).
//
// Periodic[w] has the same Θ(log² w) depth as Bitonic[w] but a strictly
// repeating structure, which makes it attractive for hardware and for
// embedding on networks; the experiments compare both. A single Block[w]
// alone is NOT a counting network for w ≥ 4 — the tests demonstrate that
// too.
func Periodic(width int) (*BalancerNetwork, error) {
	if width < 1 || width&(width-1) != 0 {
		return nil, fmt.Errorf("counting: periodic width %d is not a power of two", width)
	}
	lg := 0
	for p := 1; p < width; p <<= 1 {
		lg++
	}
	bn := &BalancerNetwork{Width: width, OutPerm: make([]int, width)}
	for i := range bn.OutPerm {
		bn.OutPerm[i] = i
	}
	for block := 0; block < lg; block++ {
		bn.Layers = append(bn.Layers, blockLayers(width)...)
	}
	return bn, nil
}

// Block returns a single Block[w] stage as a standalone network, for
// demonstrating that one stage alone does not count.
func Block(width int) (*BalancerNetwork, error) {
	if width < 1 || width&(width-1) != 0 {
		return nil, fmt.Errorf("counting: block width %d is not a power of two", width)
	}
	bn := &BalancerNetwork{Width: width, OutPerm: make([]int, width)}
	for i := range bn.OutPerm {
		bn.OutPerm[i] = i
	}
	bn.Layers = blockLayers(width)
	return bn, nil
}

// blockLayers emits the log w reflection layers of one Block[w] stage.
func blockLayers(width int) [][]Balancer {
	var layers [][]Balancer
	for g := width; g >= 2; g /= 2 {
		layer := make([]Balancer, 0, width/2)
		for start := 0; start < width; start += g {
			for i := 0; i < g/2; i++ {
				layer = append(layer, Balancer{Top: start + i, Bottom: start + g - 1 - i})
			}
		}
		layers = append(layers, layer)
	}
	return layers
}
