package counting

import (
	"context"
	"sync"
	"testing"

	"repro/countq"
	"repro/internal/sim"
)

// newTestCounterBridge builds a free-running combining-tree bridge on the
// given topology.
func newTestCounterBridge(t *testing.T, topo string, nodes int, delay sim.DelayModel) *sim.Bridge {
	t.Helper()
	b, err := sim.NewBridge(sim.BridgeConfig{
		Topo:  topo,
		Nodes: nodes,
		Proto: newCounterBridge,
		Delay: delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// TestBridgeCounterCounts drives concurrent sessions through the
// combining-tree bridge and checks the counting correctness condition:
// the granted values are a permutation of 1..N. Exercised on the star
// (every leaf combines at the hub), the mesh (multi-level combining) and
// under jitter (UP/DOWN messages take variable delays; intervals must
// still tile exactly).
func TestBridgeCounterCounts(t *testing.T) {
	for _, tc := range []struct {
		name  string
		topo  string
		nodes int
		delay sim.DelayModel
	}{
		{"star9", "star", 9, nil},
		{"mesh16", "mesh2d", 16, nil},
		{"star9-jitter3", "star", 9, sim.JitterDelay{Seed: 5, Max: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := newTestCounterBridge(t, tc.topo, tc.nodes, tc.delay)
			const workers, perWorker = 4, 32
			values := make([][]int64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				sess, err := b.NewSession()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(w int, sess countq.Session) {
					defer wg.Done()
					defer sess.Close()
					for i := 0; i < perWorker; i++ {
						v, err := sess.Inc(context.Background())
						if err != nil {
							t.Error(err)
							return
						}
						values[w] = append(values[w], v)
					}
				}(w, sess)
			}
			wg.Wait()
			var all []int64
			for w := 0; w < workers; w++ {
				all = append(all, values[w]...)
			}
			if len(all) != workers*perWorker {
				t.Fatalf("completed %d ops, want %d", len(all), workers*perWorker)
			}
			if err := countq.ValidateCounts(all); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBridgeCounterBlocks checks IncN through the combining tree: block
// grants and single increments together must tile 1..total exactly — the
// interval the root hands out splits correctly through the batch layers.
func TestBridgeCounterBlocks(t *testing.T) {
	b := newTestCounterBridge(t, "star", 9, nil)
	const workers = 4
	values := make([][]int64, workers)
	blocks := make([][]countq.CountRange, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sess, err := b.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		bs := sess.(countq.BatchSession)
		wg.Add(1)
		go func(w int, sess countq.Session, bs countq.BatchSession) {
			defer wg.Done()
			defer sess.Close()
			for i := 0; i < 16; i++ {
				if i%4 == 3 {
					first, err := bs.IncN(context.Background(), 5)
					if err != nil {
						t.Error(err)
						return
					}
					blocks[w] = append(blocks[w], countq.CountRange{First: first, N: 5})
					continue
				}
				v, err := sess.Inc(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				values[w] = append(values[w], v)
			}
		}(w, sess, bs)
	}
	wg.Wait()
	var allValues []int64
	var allBlocks []countq.CountRange
	for w := 0; w < workers; w++ {
		allValues = append(allValues, values[w]...)
		allBlocks = append(allBlocks, blocks[w]...)
	}
	if err := countq.ValidateCountRanges(allValues, allBlocks); err != nil {
		t.Fatal(err)
	}
}

// TestBridgeCounterCombines checks the batching claim behind the
// structure: pipelined bursts from several sessions complete with far
// fewer protocol messages than one message per op-hop, because per-node
// batches merge on the way up and the root grants whole intervals.
func TestBridgeCounterCombines(t *testing.T) {
	b := newTestCounterBridge(t, "star", 9, nil)
	const workers, perWorker = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sess, err := b.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		as := sess.(countq.AsyncSession)
		wg.Add(1)
		go func(sess countq.Session, as countq.AsyncSession) {
			defer wg.Done()
			defer sess.Close()
			for i := 0; i < perWorker; i++ {
				if err := as.Submit(context.Background(), countq.Op{Kind: countq.OpInc, N: 1}); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < perWorker; i++ {
				if c := <-as.Completions(); c.Err != nil {
					t.Error(c.Err)
					return
				}
			}
		}(sess, as)
	}
	wg.Wait()
	ops := int64(workers * perWorker)
	_, msgs := b.SimStats()
	// The central protocol pays 2 messages per op on the star (request +
	// grant); combining must beat that under a pipelined burst.
	if msgs >= 2*ops {
		t.Errorf("combining tree sent %d messages for %d ops (central would send %d); batches are not combining", msgs, ops, 2*ops)
	}
}
