package counting

import "testing"

// FuzzBitonicStepProperty feeds arbitrary token distributions through the
// bitonic network and requires the step property — the defining invariant
// of a counting network — on every quiescent output.
func FuzzBitonicStepProperty(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 255})
	f.Add([]byte{})
	bn, err := Bitonic(8)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in := make([]int, 8)
		for i := range in {
			if i < len(data) {
				in[i] = int(data[i]) % 32
			}
		}
		out, err := bn.Quiescent(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckStepProperty(out); err != nil {
			t.Fatalf("input %v: %v", in, err)
		}
		sumIn, sumOut := 0, 0
		for _, x := range in {
			sumIn += x
		}
		for _, y := range out {
			sumOut += y
		}
		if sumIn != sumOut {
			t.Fatalf("token conservation violated: %d in, %d out", sumIn, sumOut)
		}
	})
}

// FuzzPeriodicStepProperty is the same invariant for the periodic network.
func FuzzPeriodicStepProperty(f *testing.F) {
	f.Add([]byte{9, 9, 9, 9, 0, 0, 0, 0})
	f.Add([]byte{1})
	bn, err := Periodic(8)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in := make([]int, 8)
		for i := range in {
			if i < len(data) {
				in[i] = int(data[i]) % 32
			}
		}
		out, err := bn.Quiescent(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckStepProperty(out); err != nil {
			t.Fatalf("input %v: %v", in, err)
		}
	})
}
