package counting

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitonicShape(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		bn, err := Bitonic(w)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if bn.Width != w {
			t.Errorf("width = %d", bn.Width)
		}
		// Depth of Bitonic[w] is log w · (log w + 1) / 2.
		lg := 0
		for p := 1; p < w; p <<= 1 {
			lg++
		}
		if want := lg * (lg + 1) / 2; bn.Depth() != want {
			t.Errorf("width %d: depth = %d, want %d", w, bn.Depth(), want)
		}
		// Every layer is a perfect matching: w/2 balancers covering all wires.
		for li, layer := range bn.Layers {
			if len(layer) != w/2 {
				t.Errorf("width %d layer %d: %d balancers, want %d", w, li, len(layer), w/2)
			}
			seen := make(map[int]bool)
			for _, b := range layer {
				if seen[b.Top] || seen[b.Bottom] || b.Top == b.Bottom {
					t.Errorf("width %d layer %d: wire reused", w, li)
				}
				seen[b.Top] = true
				seen[b.Bottom] = true
			}
		}
		// OutPerm is a permutation.
		seen := make(map[int]bool)
		for _, p := range bn.OutPerm {
			if p < 0 || p >= w || seen[p] {
				t.Fatalf("width %d: OutPerm not a permutation: %v", w, bn.OutPerm)
			}
			seen[p] = true
		}
	}
}

func TestBitonicRejectsNonPowers(t *testing.T) {
	for _, w := range []int{0, 3, 6, 12, -4} {
		if _, err := Bitonic(w); err == nil {
			t.Errorf("width %d accepted", w)
		}
	}
}

func TestStepPropertyUniformInput(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16} {
		bn, err := Bitonic(w)
		if err != nil {
			t.Fatal(err)
		}
		for _, tokens := range []int{1, w - 1, w, w + 1, 3*w + 2, 10 * w} {
			in := make([]int, w)
			for i := 0; i < tokens; i++ {
				in[i%w]++
			}
			out, err := bn.Quiescent(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckStepProperty(out); err != nil {
				t.Errorf("width %d tokens %d: %v (out=%v)", w, tokens, err, out)
			}
		}
	}
}

func TestStepPropertySkewedInput(t *testing.T) {
	// The counting-network guarantee holds for arbitrary input
	// distributions, including everything on one wire.
	rng := rand.New(rand.NewSource(31))
	for _, w := range []int{2, 4, 8, 16} {
		bn, err := Bitonic(w)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			in := make([]int, w)
			for i := range in {
				in[i] = rng.Intn(7)
			}
			if trial == 0 {
				in = make([]int, w)
				in[0] = 3*w + 1 // fully skewed
			}
			out, err := bn.Quiescent(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckStepProperty(out); err != nil {
				t.Errorf("width %d in %v: %v (out=%v)", w, in, err, out)
			}
			// Conservation.
			sumIn, sumOut := 0, 0
			for _, x := range in {
				sumIn += x
			}
			for _, y := range out {
				sumOut += y
			}
			if sumIn != sumOut {
				t.Errorf("width %d: %d tokens in, %d out", w, sumIn, sumOut)
			}
		}
	}
}

func TestStepPropertyQuick(t *testing.T) {
	bn, err := Bitonic(8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [8]uint8) bool {
		in := make([]int, 8)
		for i, x := range raw {
			in[i] = int(x % 9)
		}
		out, err := bn.Quiescent(in)
		if err != nil {
			return false
		}
		return CheckStepProperty(out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCheckStepPropertyRejects(t *testing.T) {
	if err := CheckStepProperty([]int{2, 0}); err == nil {
		t.Error("gap of 2 accepted")
	}
	if err := CheckStepProperty([]int{0, 1}); err == nil {
		t.Error("increasing step accepted")
	}
	if err := CheckStepProperty([]int{3, 3, 2, 2}); err != nil {
		t.Errorf("valid step rejected: %v", err)
	}
}

func TestBitonicWidthOne(t *testing.T) {
	bn, err := Bitonic(1)
	if err != nil {
		t.Fatal(err)
	}
	if bn.Depth() != 0 || bn.BalancerCount() != 0 {
		t.Errorf("width-1 network should be empty: depth=%d", bn.Depth())
	}
	out, err := bn.Quiescent([]int{5})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 {
		t.Errorf("width-1 output = %v", out)
	}
}

func TestLogicalOutput(t *testing.T) {
	bn, err := Bitonic(4)
	if err != nil {
		t.Fatal(err)
	}
	for li, w := range bn.OutPerm {
		if got := bn.LogicalOutput(w); got != li {
			t.Errorf("LogicalOutput(%d) = %d, want %d", w, got, li)
		}
	}
}
