package counting

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tree"
)

// Message kinds shared by the routed protocols in this package.
const (
	kindRequest = iota + 1 // A = origin
	kindGrant              // A = origin, B = count
	kindUp                 // A = subtree request count
	kindDown               // A = first rank for the receiving subtree
	kindToken              // A = origin, B = layer, C = wire
)

// Central is the naive counting protocol: every request is routed over a
// spanning tree to a central node, which assigns consecutive counts and
// routes a grant back. On the star graph this realizes the Θ(n²) behavior
// discussed in the paper's conclusions; on low-congestion trees it is
// bottlenecked by the root's receive capacity.
type Central struct {
	tree     *tree.Tree
	router   *tree.Router
	requests []bool

	next  int
	count []int
	delay []int
}

// NewCentral prepares a central-counter run on spanning tree t; the counter
// lives at the tree root.
func NewCentral(t *tree.Tree, requests []bool) (*Central, error) {
	if len(requests) != t.N() {
		return nil, fmt.Errorf("counting: request vector has %d entries, want %d", len(requests), t.N())
	}
	c := &Central{
		tree:     t,
		router:   t.NewRouter(),
		requests: append([]bool(nil), requests...),
		count:    make([]int, t.N()),
		delay:    make([]int, t.N()),
	}
	for i := range c.delay {
		c.delay[i] = -1
	}
	return c, nil
}

// Start issues node's counting operation at time zero.
func (c *Central) Start(env *sim.Env, node int) {
	if !c.requests[node] {
		return
	}
	root := c.tree.Root()
	if node == root {
		c.next++
		c.count[node] = c.next
		c.delay[node] = 0
		return
	}
	env.Send(node, c.router.NextHop(node, root), sim.Message{Kind: kindRequest, A: node})
}

// Deliver routes requests rootward and grants back to their origins.
func (c *Central) Deliver(env *sim.Env, node int, m sim.Message) {
	root := c.tree.Root()
	switch m.Kind {
	case kindRequest:
		if node != root {
			env.Send(node, c.router.NextHop(node, root), m)
			return
		}
		c.next++
		env.Send(node, c.router.NextHop(node, m.A), sim.Message{Kind: kindGrant, A: m.A, B: c.next})
	case kindGrant:
		if node != m.A {
			env.Send(node, c.router.NextHop(node, m.A), m)
			return
		}
		c.count[node] = m.B
		c.delay[node] = env.Round()
	default:
		env.Fail(fmt.Errorf("counting: central got unexpected kind %d", m.Kind))
	}
}

// Count implements Results.
func (c *Central) Count(v int) int { return c.count[v] }

// Delay implements Results.
func (c *Central) Delay(v int) int { return c.delay[v] }

// Requests implements Results.
func (c *Central) Requests() []bool { return c.requests }
