package counting

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/tree"
)

func TestPeriodicShape(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		bn, err := Periodic(w)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		lg := 0
		for p := 1; p < w; p <<= 1 {
			lg++
		}
		if want := lg * lg; bn.Depth() != want {
			t.Errorf("width %d: depth = %d, want %d", w, bn.Depth(), want)
		}
		for li, layer := range bn.Layers {
			if len(layer) != w/2 {
				t.Errorf("width %d layer %d: %d balancers", w, li, len(layer))
			}
			seen := make(map[int]bool)
			for _, b := range layer {
				if seen[b.Top] || seen[b.Bottom] || b.Top == b.Bottom {
					t.Errorf("width %d layer %d: wire reused", w, li)
				}
				seen[b.Top] = true
				seen[b.Bottom] = true
			}
		}
	}
	if _, err := Periodic(6); err == nil {
		t.Error("non-power width accepted")
	}
}

func TestPeriodicStepProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, w := range []int{2, 4, 8, 16, 32} {
		bn, err := Periodic(w)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			in := make([]int, w)
			for i := range in {
				in[i] = rng.Intn(7)
			}
			out, err := bn.Quiescent(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckStepProperty(out); err != nil {
				t.Errorf("width %d in %v: %v", w, in, err)
			}
		}
	}
}

func TestPeriodicStepPropertyQuick(t *testing.T) {
	bn, err := Periodic(8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [8]uint8) bool {
		in := make([]int, 8)
		for i, x := range raw {
			in[i] = int(x % 9)
		}
		out, err := bn.Quiescent(in)
		if err != nil {
			return false
		}
		return CheckStepProperty(out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSingleBlockIsNotACountingNetwork(t *testing.T) {
	// The periodic construction needs all log w stages: one Block alone
	// violates the step property on some input for w ≥ 8.
	bn, err := Block(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		in := make([]int, 8)
		for i := range in {
			in[i] = rng.Intn(5)
		}
		out, err := bn.Quiescent(in)
		if err != nil {
			t.Fatal(err)
		}
		if CheckStepProperty(out) != nil {
			return // found the expected counterexample
		}
	}
	t.Error("single Block[8] satisfied the step property on 2000 random inputs; it should not be a counting network")
}

func TestPeriodicDeeperThanBitonicBeyond4(t *testing.T) {
	// Both have depth lg², equal — the structural difference is the
	// repetition, not the depth. Pin both depths.
	for _, w := range []int{4, 16} {
		p, err := Periodic(w)
		if err != nil {
			t.Fatal(err)
		}
		bt, err := Bitonic(w)
		if err != nil {
			t.Fatal(err)
		}
		lg := 0
		for q := 1; q < w; q <<= 1 {
			lg++
		}
		if p.Depth() != lg*lg {
			t.Errorf("periodic depth %d, want %d", p.Depth(), lg*lg)
		}
		if bt.Depth() != lg*(lg+1)/2 {
			t.Errorf("bitonic depth %d, want %d", bt.Depth(), lg*(lg+1)/2)
		}
	}
}

func TestCountNetWithPeriodicNetwork(t *testing.T) {
	// The distributed embedding works with a periodic network too: swap
	// the network inside CountNet via NewCountNetFrom.
	g := graph.Complete(16)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Periodic(4)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := NewCountNetFrom(tr, reqAll(16), net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, cn, 1); err != nil {
		t.Errorf("periodic countnet: %v", err)
	}
}
