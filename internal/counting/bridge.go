package counting

import (
	"fmt"
	"time"

	"repro/countq"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

// The bridge adapter runs the combining-tree counter under the sim bridge,
// registering it as the `sim-tree-counter` structure — the counting side
// of the paper's separation made campaign-measurable. Where sim-counter
// ships one request per operation to the root (the star hub serializes all
// n-1 leaves), the combining tree batches: each node merges its own
// pending operations with its children's combined demands into a single
// upstream request per round (Raymond-style, one in flight per node), and
// the root grants whole intervals that split back down in batch order. Under
// bursts the root serves O(children) messages per round regardless of the
// operation rate — counting's classic escape from the hot spot, which has
// no queuing analogue (the paper's point). One
//
//	countq compare "sim-counter,sim-tree-counter" -scenario "ramp?gmax=8"
//
// prices that batching against the naive baseline under identical hop
// latency and capacity.

const (
	kindBridgeUp   = 131 // A = combined amount (child → parent)
	kindBridgeDown = 132 // A = exclusive start of interval, B = its width
)

// counterBridge implements sim.BridgeProtocol with an open-issuance
// combining tree: the authoritative counter lives at the root; per-node
// batches are double-buffered (pending accumulates while sent is in
// flight) so the steady-state op path recycles entry storage.
type counterBridge struct {
	tr     *tree.Tree
	grants sim.Grants
	root   int

	pending  [][]centry // batch accumulating at each node
	demand   []int      // total amount in pending
	inFlight []bool     // an UP is out and its DOWN has not returned
	sent     [][]centry // composition of the in-flight batch
	sum      int        // root's accumulator
}

// centry is one component of a batch: a locally issued operation
// (child == -1) or a child's combined request.
type centry struct {
	child  int // -1 for a local operation
	token  int
	amount int
}

func newCounterBridge(g *graph.Graph, tr *tree.Tree, grants sim.Grants) (sim.BridgeProtocol, error) {
	n := g.N()
	return &counterBridge{
		tr:       tr,
		grants:   grants,
		root:     tr.Root(),
		pending:  make([][]centry, n),
		demand:   make([]int, n),
		inFlight: make([]bool, n),
		sent:     make([][]centry, n),
	}, nil
}

func (p *counterBridge) Start(*sim.Env, int) {}

// Issue records the operation in its node's accumulating batch; the next
// Tick flushes it upward (combined with everything else that gathered).
// Sessions are only assigned to non-root nodes, so the batch always
// travels at least one hop — the root's counter is never touched directly.
//
//countq:hotpath
func (p *counterBridge) Issue(env *sim.Env, node int, token int, op countq.Op) {
	amt := int(op.N)
	if amt < 1 {
		amt = 1
	}
	p.pending[node] = append(p.pending[node], centry{child: -1, token: token, amount: amt})
	p.demand[node] += amt
}

// Deliver handles combined requests from children and interval grants from
// the parent.
//
//countq:hotpath
func (p *counterBridge) Deliver(env *sim.Env, node int, m sim.Message) {
	switch m.Kind {
	case kindBridgeUp:
		p.pending[node] = append(p.pending[node], centry{child: m.From, amount: m.A})
		p.demand[node] += m.A
		// Flushed by this round's Tick, so same-round arrivals combine.
	case kindBridgeDown:
		p.distribute(env, node, m.A, m.B)
	default:
		failBridgeKind(env, m.Kind)
	}
}

// Tick runs after the round's deliveries: each node flushes its
// accumulated batch — the root serves it, others send one combined UP if
// no batch of theirs is already in flight.
//
//countq:hotpath
func (p *counterBridge) Tick(env *sim.Env, node int) {
	if p.demand[node] == 0 {
		return
	}
	if node == p.root {
		batch := p.pending[node]
		p.pending[node] = batch[:0]
		p.demand[node] = 0
		p.sum = p.assign(env, node, p.sum, batch)
		return
	}
	if p.inFlight[node] {
		return // will flush when the grant returns
	}
	p.inFlight[node] = true
	amount := p.demand[node]
	// Double-buffer swap: the previous sent batch was fully distributed,
	// so its storage backs the next accumulation.
	p.sent[node], p.pending[node] = p.pending[node], p.sent[node][:0]
	p.demand[node] = 0
	env.Send(node, p.tr.Parent(node), sim.Message{Kind: kindBridgeUp, A: amount})
}

// assign walks a batch with the exclusive running sum start, granting
// local operations the first value of their block and children
// sub-intervals; it returns the running sum after the batch.
//
//countq:hotpath
func (p *counterBridge) assign(env *sim.Env, node, start int, batch []centry) int {
	running := start
	for _, e := range batch {
		if e.child == -1 {
			p.grants.Grant(e.token, int64(running+1))
		} else {
			env.Send(node, e.child, sim.Message{Kind: kindBridgeDown, A: running, B: e.amount})
		}
		running += e.amount
	}
	return running
}

// distribute splits a granted interval (start, start+width] over the
// node's in-flight batch.
//
//countq:hotpath
func (p *counterBridge) distribute(env *sim.Env, node, start, width int) {
	batch := p.sent[node]
	p.inFlight[node] = false
	total := 0
	for _, e := range batch {
		total += e.amount
	}
	if total != width {
		failBridgeGrant(env, node, width, total)
		return
	}
	p.assign(env, node, start, batch)
	// Demand accumulated while the batch was in flight is flushed by this
	// round's Tick (Deliver precedes Tick within the round).
}

// failBridgeKind aborts the simulation on a foreign message kind.
func failBridgeKind(env *sim.Env, kind int) {
	env.Fail(fmt.Errorf("counting: bridge got unexpected message kind %d", kind))
}

// failBridgeGrant aborts on an interval that does not match the in-flight
// batch — a protocol invariant violation, never expected.
func failBridgeGrant(env *sim.Env, node, got, want int) {
	env.Fail(fmt.Errorf("counting: node %d granted %d for in-flight batch of %d", node, got, want))
}

func init() {
	countq.RegisterStructure(countq.StructureInfo{
		Name:         "sim-tree-counter",
		Summary:      "combining-tree counting over the simulated network (per-node batches merge upward, the root grants intervals that split back down; the hot spot amortizes across the tree)",
		Kinds:        countq.KindCounter,
		Linearizable: true,
		Params: []countq.ParamInfo{
			{Name: "hoplat", Default: "1us", Doc: "wall-clock cost of one simulated round (one message hop); 0 = free-running"},
			{Name: "nodes", Default: "9", Doc: "network size (root + leaves; sessions pin round-robin to non-root nodes)"},
			{Name: "topo", Default: "star", Doc: "topology: star (hub contention) | list (diameter) | mesh2d"},
			{Name: "cap", Default: "1", Doc: "per-node per-round send/receive capacity — the paper's c"},
			{Name: "jitter", Default: "0", Doc: "max per-message link delay in rounds (0 = deterministic unit delay)"},
			{Name: "seed", Default: "1", Doc: "seed for the jitter delay model (ignored when jitter=0)"},
			{Name: "pipeline", Default: "1024", Doc: "per-session transport depth: submit-lane capacity, completion buffer and outstanding-operation bound"},
		},
		Caps: countq.CapBatch | countq.CapAsync,
		New: func(o countq.Options) (countq.Structure, error) {
			cfg := sim.BridgeConfig{
				Topo:     o.String("topo", "star"),
				Nodes:    o.Int("nodes", 0),
				HopLat:   o.Duration("hoplat", time.Microsecond),
				Capacity: o.Int("cap", 0),
				Pipeline: o.Int("pipeline", 0),
				Proto:    newCounterBridge,
			}
			seed := o.Int("seed", 1)
			if jitter := o.Int("jitter", 0); jitter > 0 {
				cfg.Delay = sim.JitterDelay{Seed: int64(seed), Max: jitter}
			}
			if err := o.Err(); err != nil {
				return nil, err
			}
			return sim.NewBridge(cfg)
		},
	})
}
