package counting

import "fmt"

// Balancer is one 2×2 balancer of a counting network: tokens arriving on
// either input wire leave alternately on Top then Bottom.
type Balancer struct {
	Top, Bottom int // physical wire indices
}

// BalancerNetwork is a layered balancer network of some width. Every layer
// is a perfect matching on the wires: each wire meets exactly one balancer
// per layer. Outputs are logically reordered: logical output i (the wire
// that receives tokens i, i+w, i+2w, … in a quiescent state) lives on
// physical wire OutPerm[i].
type BalancerNetwork struct {
	Width   int
	Layers  [][]Balancer
	OutPerm []int // logical output index → physical wire
}

// Bitonic constructs the bitonic counting network of Aspnes, Herlihy and
// Shavit: Bitonic[w] is two Bitonic[w/2] side by side followed by
// Merger[w]; Merger[2k] splits into two parallel Merger[k] on interleaved
// inputs plus a final layer of balancers. Width must be a power of two;
// width 1 yields the empty network (all tokens share one wire).
func Bitonic(width int) (*BalancerNetwork, error) {
	if width < 1 || width&(width-1) != 0 {
		return nil, fmt.Errorf("counting: bitonic width %d is not a power of two", width)
	}
	wires := make([]int, width)
	for i := range wires {
		wires[i] = i
	}
	layers, out := bitonicRec(wires)
	return &BalancerNetwork{Width: width, Layers: layers, OutPerm: out}, nil
}

// Depth reports the number of layers: Θ(log² w).
func (bn *BalancerNetwork) Depth() int { return len(bn.Layers) }

// BalancerCount reports the total number of balancers.
func (bn *BalancerNetwork) BalancerCount() int {
	total := 0
	for _, l := range bn.Layers {
		total += len(l)
	}
	return total
}

// LogicalOutput returns the logical output index of a physical wire after
// the final layer.
func (bn *BalancerNetwork) LogicalOutput(wire int) int {
	for li, w := range bn.OutPerm {
		if w == wire {
			return li
		}
	}
	panic(fmt.Sprintf("counting: wire %d not in output permutation", wire))
}

// bitonicRec builds Bitonic over the given physical wires. It returns the
// layers and the permutation mapping logical outputs to physical wires.
func bitonicRec(wires []int) ([][]Balancer, []int) {
	if len(wires) <= 1 {
		return nil, append([]int(nil), wires...)
	}
	k := len(wires) / 2
	topLayers, topOut := bitonicRec(wires[:k])
	botLayers, botOut := bitonicRec(wires[k:])
	layers := zipLayers(topLayers, botLayers)
	mergeIn := append(append([]int(nil), topOut...), botOut...)
	mergeLayers, out := mergerRec(mergeIn)
	return append(layers, mergeLayers...), out
}

// mergerRec builds Merger over the physical wires carrying logical inputs
// x0…x_{k-1}, y0…y_{k-1}.
func mergerRec(wires []int) ([][]Balancer, []int) {
	if len(wires) == 2 {
		return [][]Balancer{{{Top: wires[0], Bottom: wires[1]}}}, append([]int(nil), wires...)
	}
	k := len(wires) / 2
	xs, ys := wires[:k], wires[k:]
	// M1 merges x evens with y odds; M2 merges x odds with y evens.
	in1 := make([]int, 0, k)
	in2 := make([]int, 0, k)
	for i := 0; i < k; i += 2 {
		in1 = append(in1, xs[i])
	}
	for i := 1; i < k; i += 2 {
		in1 = append(in1, ys[i])
	}
	for i := 1; i < k; i += 2 {
		in2 = append(in2, xs[i])
	}
	for i := 0; i < k; i += 2 {
		in2 = append(in2, ys[i])
	}
	l1, out1 := mergerRec(in1)
	l2, out2 := mergerRec(in2)
	layers := zipLayers(l1, l2)
	// Final layer pairs the two mergers' logical outputs elementwise; the
	// overall logical order interleaves them.
	final := make([]Balancer, k)
	out := make([]int, 0, 2*k)
	for i := 0; i < k; i++ {
		final[i] = Balancer{Top: out1[i], Bottom: out2[i]}
		out = append(out, out1[i], out2[i])
	}
	return append(layers, final), out
}

// zipLayers merges two disjoint parallel sub-networks layer by layer. The
// sub-networks built by the recursion always have equal depth; zipLayers
// also tolerates unequal depths by letting the shorter side pass through.
func zipLayers(a, b [][]Balancer) [][]Balancer {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([][]Balancer, n)
	for i := 0; i < n; i++ {
		var layer []Balancer
		if i < len(a) {
			layer = append(layer, a[i]...)
		}
		if i < len(b) {
			layer = append(layer, b[i]...)
		}
		out[i] = layer
	}
	return out
}

// Quiescent runs tokens through the network sequentially (one token fully
// traverses before the next enters) starting from the given per-input-wire
// token counts, and returns the number of tokens leaving each logical
// output. Counting networks guarantee the step property on these outputs in
// any quiescent state; tests verify it.
func (bn *BalancerNetwork) Quiescent(tokensPerInput []int) ([]int, error) {
	if len(tokensPerInput) != bn.Width {
		return nil, fmt.Errorf("counting: %d input counts for width %d", len(tokensPerInput), bn.Width)
	}
	toggle := make([]map[int]*bool, len(bn.Layers))
	wireBalancer := make([]map[int]*Balancer, len(bn.Layers))
	toggles := make([]bool, bn.BalancerCount())
	ti := 0
	for li, layer := range bn.Layers {
		toggle[li] = make(map[int]*bool, 2*len(layer))
		wireBalancer[li] = make(map[int]*Balancer, 2*len(layer))
		for bi := range layer {
			b := &bn.Layers[li][bi]
			tg := &toggles[ti]
			ti++
			wireBalancer[li][b.Top] = b
			wireBalancer[li][b.Bottom] = b
			toggle[li][b.Top] = tg
			toggle[li][b.Bottom] = tg
		}
	}
	outPhysical := make(map[int]int, bn.Width)
	for in, k := range tokensPerInput {
		for t := 0; t < k; t++ {
			wire := in
			for li := range bn.Layers {
				b := wireBalancer[li][wire]
				if b == nil {
					continue // wire passes through this layer
				}
				tg := toggle[li][wire]
				if !*tg {
					wire = b.Top
				} else {
					wire = b.Bottom
				}
				*tg = !*tg
			}
			outPhysical[wire]++
		}
	}
	out := make([]int, bn.Width)
	for li, w := range bn.OutPerm {
		out[li] = outPhysical[w]
	}
	return out, nil
}

// CheckStepProperty verifies 0 ≤ y_i − y_j ≤ 1 for all i < j on a logical
// output vector — the defining property of counting networks.
func CheckStepProperty(y []int) error {
	for i := 0; i < len(y); i++ {
		for j := i + 1; j < len(y); j++ {
			d := y[i] - y[j]
			if d < 0 || d > 1 {
				return fmt.Errorf("counting: step property violated: y[%d]=%d y[%d]=%d", i, y[i], j, y[j])
			}
		}
	}
	return nil
}
