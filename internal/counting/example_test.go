package counting_test

import (
	"fmt"
	"log"

	"repro/internal/counting"
)

// ExampleBitonic builds the counting network of Aspnes, Herlihy and Shavit
// and checks the step property on a quiescent run.
func ExampleBitonic() {
	bn, err := counting.Bitonic(4)
	if err != nil {
		log.Fatal(err)
	}
	out, err := bn.Quiescent([]int{5, 0, 2, 0}) // 7 tokens, skewed input
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("outputs:", out)
	fmt.Println("step property:", counting.CheckStepProperty(out) == nil)
	// Output:
	// outputs: [2 2 2 1]
	// step property: true
}

// ExamplePeriodic shows the alternative periodic construction has the same
// width-4 depth (log² w = 4) and the same guarantee.
func ExamplePeriodic() {
	bn, err := counting.Periodic(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("depth:", bn.Depth())
	out, _ := bn.Quiescent([]int{7, 0, 0, 0})
	fmt.Println("step property:", counting.CheckStepProperty(out) == nil)
	// Output:
	// depth: 4
	// step property: true
}
