package counting

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

func runCombining(t *testing.T, g *graph.Graph, tr *tree.Tree, reqs []Request) *Combining {
	t.Helper()
	c, err := NewCombining(tr, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Graph: g}, c).Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCombiningSingleOpAtRoot(t *testing.T) {
	g := graph.Path(4)
	tr := identityPathTree(t, 4)
	c := runCombining(t, g, tr, []Request{{Node: 0, Time: 0}})
	if c.CountOf(0) != 1 || c.Latency(0) != 0 {
		t.Errorf("root op: count=%d latency=%d", c.CountOf(0), c.Latency(0))
	}
}

func TestCombiningSingleOpAtLeaf(t *testing.T) {
	g := graph.Path(5)
	tr := identityPathTree(t, 5)
	c := runCombining(t, g, tr, []Request{{Node: 4, Time: 0}})
	// Round trip to the root: 4 up + 4 down.
	if c.Latency(0) != 8 {
		t.Errorf("leaf latency = %d, want 8", c.Latency(0))
	}
}

func TestCombiningBurstCombines(t *testing.T) {
	// All ops at one leaf in one round: they travel as ONE message pair.
	g := graph.Path(5)
	tr := identityPathTree(t, 5)
	reqs := []Request{{4, 0}, {4, 0}, {4, 0}, {4, 0}}
	c, err := NewCombining(tr, reqs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.New(sim.Config{Graph: g}, c).Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 hops up + 4 hops down = 8 messages for all four ops together.
	if stats.MessagesSent != 8 {
		t.Errorf("messages = %d, want 8 (combining)", stats.MessagesSent)
	}
	// Counts arrive in issue order at the leaf.
	for op := 0; op < 4; op++ {
		if c.CountOf(op) != op+1 {
			t.Errorf("count(op%d) = %d, want %d", op, c.CountOf(op), op+1)
		}
	}
}

func TestCombiningPipelinesAcrossBatches(t *testing.T) {
	// A second wave issued while the first is in flight must still be
	// served (flush on grant return).
	g := graph.Path(6)
	tr := identityPathTree(t, 6)
	var reqs []Request
	for wave := 0; wave < 4; wave++ {
		for k := 0; k < 3; k++ {
			reqs = append(reqs, Request{Node: 5, Time: wave * 2})
		}
	}
	c := runCombining(t, g, tr, reqs)
	if c.TotalLatency() <= 0 {
		t.Error("no latency recorded")
	}
}

func TestCombiningMultiNodeAllTimeZero(t *testing.T) {
	g := graph.PerfectMAryTree(2, 5)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for v := 0; v < g.N(); v++ {
		reqs = append(reqs, Request{Node: v, Time: 0})
	}
	c := runCombining(t, g, tr, reqs)
	if c.TotalLatency() <= 0 {
		t.Error("no latency")
	}
}

func TestCombiningValidation(t *testing.T) {
	tr := identityPathTree(t, 4)
	if _, err := NewCombining(tr, []Request{{Node: 7, Time: 0}}); err == nil {
		t.Error("bad node accepted")
	}
	if _, err := NewCombining(tr, []Request{{Node: 1, Time: -1}}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestCombiningPropertyValidCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr := tree.MustFromParents(0, parent)
		b := graph.NewBuilder("rt", n)
		for v := 1; v < n; v++ {
			b.MustAddEdge(v, parent[v])
		}
		g := b.Build()
		var reqs []Request
		for k := 0; k < rng.Intn(40); k++ {
			reqs = append(reqs, Request{Node: rng.Intn(n), Time: rng.Intn(25)})
		}
		c, err := NewCombining(tr, reqs)
		if err != nil {
			return false
		}
		if _, err := sim.New(sim.Config{Graph: g}, c).Run(); err != nil {
			return false
		}
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCombiningUnderJitter(t *testing.T) {
	g := graph.Mesh(4, 4)
	tr, err := tree.BFSTree(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var reqs []Request
	for k := 0; k < 25; k++ {
		reqs = append(reqs, Request{Node: rng.Intn(16), Time: rng.Intn(20)})
	}
	c, err := NewCombining(tr, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Graph: g, Delay: sim.JitterDelay{Seed: 8, Max: 4}}
	if _, err := sim.New(cfg, c).Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}
