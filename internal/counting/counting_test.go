package counting

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/tree"
)

func reqAll(n int) []bool {
	r := make([]bool, n)
	for i := range r {
		r[i] = true
	}
	return r
}

func identityPathTree(t *testing.T, n int) *tree.Tree {
	t.Helper()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	tr, err := tree.PathTree(order)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCentralAllOnPath(t *testing.T) {
	n := 8
	g := graph.Path(n)
	tr := identityPathTree(t, n)
	c, err := NewCentral(tr, reqAll(n))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Root (node 0) counts instantly.
	if c.Count(0) != 1 || c.Delay(0) != 0 {
		t.Errorf("root: count=%d delay=%d", c.Count(0), c.Delay(0))
	}
	// Node 1's request arrives first (closest) and gets count 2.
	if c.Count(1) != 2 {
		t.Errorf("node 1 count = %d, want 2", c.Count(1))
	}
	if res.TotalDelay <= 0 {
		t.Error("no delay recorded")
	}
}

func TestCentralStarQuadratic(t *testing.T) {
	// On the star with the hub as root, n-1 requests serialize at the
	// hub: total delay = Σ (wait + 2 hops) ≈ n²/2 — the Θ(n²) behavior
	// from the paper's conclusions.
	n := 33
	g := graph.Star(n)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCentral(tr, reqAll(n))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := n - 1 // leaf requests
	// The i-th served leaf (1-based) is granted at round i+1... plus the
	// grant leaves the hub one per round: lower bound (k²/2) on total.
	if res.TotalDelay < k*k/2 {
		t.Errorf("star central total = %d, want ≥ %d", res.TotalDelay, k*k/2)
	}
	if res.TotalDelay > 3*k*k {
		t.Errorf("star central total = %d, unexpectedly high", res.TotalDelay)
	}
}

func TestTreeCountAllOnPath(t *testing.T) {
	n := 6
	g := graph.Path(n)
	tr := identityPathTree(t, n)
	tc, err := NewTreeCount(tr, reqAll(n))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, tc, 1); err != nil {
		t.Fatal(err)
	}
	// DFS-preorder ranks on a rooted path = positions 1..n.
	for v := 0; v < n; v++ {
		if tc.Count(v) != v+1 {
			t.Errorf("count(%d) = %d, want %d", v, tc.Count(v), v+1)
		}
	}
	// Convergecast up the path takes n-1 rounds; the root then knows at
	// round n-1, and node v's block arrives ~v rounds later.
	if tc.Delay(0) != n-1 {
		t.Errorf("root delay = %d, want %d", tc.Delay(0), n-1)
	}
	if tc.Delay(n-1) != 2*(n-1) {
		t.Errorf("far-end delay = %d, want %d", tc.Delay(n-1), 2*(n-1))
	}
}

func TestTreeCountPartialRequests(t *testing.T) {
	g := graph.PerfectMAryTree(2, 4)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := make([]bool, g.N())
	req[3] = true
	req[7] = true
	req[14] = true
	tc, err := NewTreeCount(tr, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, tc, 1); err != nil {
		t.Fatal(err)
	}
	// DFS-preorder: 3 before 7 (3 is 7's ancestor), 7 before 14.
	if tc.Count(3) != 1 || tc.Count(7) != 2 || tc.Count(14) != 3 {
		t.Errorf("counts: %d %d %d", tc.Count(3), tc.Count(7), tc.Count(14))
	}
}

func TestTreeCountSingleNodeGraph(t *testing.T) {
	g := graph.NewBuilder("one", 1).Build()
	tr := tree.MustFromParents(0, []int{0})
	tc, err := NewTreeCount(tr, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, tc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Count(0) != 1 || res.TotalDelay != 0 {
		t.Errorf("single node: count=%d total=%d", tc.Count(0), res.TotalDelay)
	}
}

func TestTreeCountNoRequests(t *testing.T) {
	g := graph.Path(5)
	tr := identityPathTree(t, 5)
	tc, err := NewTreeCount(tr, make([]bool, 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, tc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDelay != 0 {
		t.Errorf("empty run total = %d", res.TotalDelay)
	}
	// Convergecast still runs (the request set is unknown a priori) but
	// no rank blocks are sent.
	if res.Stats.MessagesSent != 4 {
		t.Errorf("messages = %d, want 4 up-reports", res.Stats.MessagesSent)
	}
}

func TestCountNetValidSmall(t *testing.T) {
	n := 16
	g := graph.Complete(n)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		cn, err := NewCountNet(tr, reqAll(n), w, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(g, cn, 1); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestCountNetHostValidation(t *testing.T) {
	tr := identityPathTree(t, 4)
	bad := func(layer, index, global, n int) int { return n + 3 }
	if _, err := NewCountNet(tr, reqAll(4), 4, bad); err == nil {
		t.Error("out-of-range host accepted")
	}
	if _, err := NewCountNet(tr, reqAll(3), 4, nil); err == nil {
		t.Error("short request vector accepted") // tree has 4 nodes
	}
}

func TestValidateRejectsBadResults(t *testing.T) {
	mk := func(counts []int, delays []int, req []bool) Results {
		return fakeResults{counts, delays, req}
	}
	// Count outside range.
	if err := Validate(mk([]int{3, 1}, []int{1, 1}, []bool{true, true})); err == nil {
		t.Error("count 3 of 2 accepted")
	}
	// Duplicate count.
	if err := Validate(mk([]int{1, 1}, []int{1, 1}, []bool{true, true})); err == nil {
		t.Error("duplicate accepted")
	}
	// Non-requester with count.
	if err := Validate(mk([]int{1, 1}, []int{1, 1}, []bool{true, false})); err == nil {
		t.Error("uninvited count accepted")
	}
	// Missing delay.
	if err := Validate(mk([]int{1, 2}, []int{1, -1}, []bool{true, true})); err == nil {
		t.Error("missing delay accepted")
	}
	// Valid.
	if err := Validate(mk([]int{2, 1}, []int{4, 4}, []bool{true, true})); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
}

type fakeResults struct {
	counts, delays []int
	req            []bool
}

func (f fakeResults) Count(v int) int  { return f.counts[v] }
func (f fakeResults) Delay(v int) int  { return f.delays[v] }
func (f fakeResults) Requests() []bool { return f.req }

func TestAllProtocolsValidProperty(t *testing.T) {
	// Property: on random connected graphs with random request sets, all
	// three protocols produce valid counts (the Validate call inside Run).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(24)
		// Random connected graph: random tree plus extra edges.
		b := graph.NewBuilder("randconn", n)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
			b.MustAddEdge(v, parent[v])
		}
		for e := 0; e < n/2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = b.AddEdge(u, v) // duplicates fine to ignore
			}
		}
		g := b.Build()
		root := rng.Intn(n)
		tr, err := tree.BFSTree(g, root)
		if err != nil {
			return false
		}
		req := make([]bool, n)
		for i := range req {
			req[i] = rng.Intn(2) == 0
		}
		cen, err := NewCentral(tr, req)
		if err != nil {
			return false
		}
		if _, err := Run(g, cen, 1); err != nil {
			return false
		}
		tc, err := NewTreeCount(tr, req)
		if err != nil {
			return false
		}
		if _, err := Run(g, tc, 1); err != nil {
			return false
		}
		width := 1 << uint(rng.Intn(4))
		cn, err := NewCountNet(tr, req, width, nil)
		if err != nil {
			return false
		}
		if _, err := Run(g, cn, 1); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTreeCountBeatsCentralOnPath(t *testing.T) {
	// The aggregating counter pipelines; the central counter pays the
	// full route per request. On the list the gap is decisive.
	n := 64
	g := graph.Path(n)
	tr := identityPathTree(t, n)
	cen, err := NewCentral(tr, reqAll(n))
	if err != nil {
		t.Fatal(err)
	}
	cenRes, err := Run(g, cen, 1)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewTreeCount(tr, reqAll(n))
	if err != nil {
		t.Fatal(err)
	}
	tcRes, err := Run(g, tc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tcRes.TotalDelay >= cenRes.TotalDelay {
		t.Errorf("tree %d not better than central %d", tcRes.TotalDelay, cenRes.TotalDelay)
	}
}
