// Package counting implements distributed counting protocols on the
// synchronous network simulator: a central counter, an aggregating
// spanning-tree counter, and a bitonic counting network (Aspnes, Herlihy,
// Shavit) embedded on the graph.
//
// In distributed counting, a set R of processors issue operations at time
// zero and the counts received must be exactly {1, …, |R|} (Section 2.2 of
// Busch & Tirthapura). The counting delay of an operation is the round in
// which the issuing processor receives its count; experiments compare the
// total delay of these protocols against the paper's lower bounds
// (Theorems 3.5 and 3.6).
package counting

import "fmt"

// Results is the read-side of a finished counting protocol run.
type Results interface {
	// Count returns the count received by v's operation, or 0 if v did
	// not issue one (counts are 1-based).
	Count(v int) int
	// Delay returns the round in which v received its count, or -1.
	Delay(v int) int
	// Requests reports the request vector the run was configured with.
	Requests() []bool
}

// Validate checks the correctness condition of distributed counting: the
// requests received exactly the counts {1, …, |R|}, and non-requesting nodes
// received none.
func Validate(r Results) error {
	req := r.Requests()
	total := 0
	for _, b := range req {
		if b {
			total++
		}
	}
	seen := make([]bool, total+1)
	for v, b := range req {
		c := r.Count(v)
		switch {
		case !b:
			if c != 0 {
				return fmt.Errorf("counting: non-requester %d received count %d", v, c)
			}
		case c < 1 || c > total:
			return fmt.Errorf("counting: node %d received count %d outside 1..%d", v, c, total)
		case seen[c]:
			return fmt.Errorf("counting: count %d received twice", c)
		default:
			seen[c] = true
			if r.Delay(v) < 0 {
				return fmt.Errorf("counting: node %d has count but no delay", v)
			}
		}
	}
	return nil
}

// TotalDelay sums the delays of all requests — the concurrent delay
// complexity realized on this request set.
func TotalDelay(r Results) int {
	total := 0
	for v, b := range r.Requests() {
		if b {
			total += r.Delay(v)
		}
	}
	return total
}

// MaxDelay returns the largest single-operation delay.
func MaxDelay(r Results) int {
	max := 0
	for v, b := range r.Requests() {
		if b && r.Delay(v) > max {
			max = r.Delay(v)
		}
	}
	return max
}

// countRequests is a helper shared by the protocol constructors.
func countRequests(requests []bool) int {
	n := 0
	for _, b := range requests {
		if b {
			n++
		}
	}
	return n
}
