package counting

import (
	"repro/internal/graph"
	"repro/internal/sim"
)

// Protocol is a counting protocol runnable on the simulator whose results
// can be read back after the run.
type Protocol interface {
	sim.Protocol
	Results
}

// RunResult summarizes a validated counting run.
type RunResult struct {
	Stats      sim.Stats
	TotalDelay int
	MaxDelay   int
}

// Run executes a counting protocol on graph g under the given per-round
// capacity (0 means 1), validates that the counts handed out are exactly
// {1, …, |R|}, and returns the realized delay complexity.
func Run(g *graph.Graph, p Protocol, capacity int) (*RunResult, error) {
	return RunConfig(g, p, sim.Config{Capacity: capacity})
}

// RunConfig is Run with full simulator configuration (link delay models,
// strict mode, round bounds); cfg.Graph is overridden by g.
func RunConfig(g *graph.Graph, p Protocol, cfg sim.Config) (*RunResult, error) {
	cfg.Graph = g
	nw := sim.New(cfg, p)
	stats, err := nw.Run()
	if err != nil {
		return nil, err
	}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return &RunResult{Stats: stats, TotalDelay: TotalDelay(p), MaxDelay: MaxDelay(p)}, nil
}
