package counting

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/tree"
)

// Request is one counting operation in a long-lived execution: node Node
// asks for a count at round Time. Operation identifiers are indices into
// the request slice.
type Request struct {
	Node, Time int
}

// AddRequest is one fetch-and-add operation: node Node adds Amount (≥ 1)
// to the shared accumulator at round Time and receives the inclusive prefix
// sum. Distributed addition is the open problem the paper closes with
// (Fatourou & Herlihy's adding networks, reference [5]); with all amounts
// equal to one it degenerates to counting.
type AddRequest struct {
	Node, Time, Amount int
}

// Combining is a long-lived combining-tree counter on a rooted spanning
// tree: the authoritative counter lives at the root; nodes batch their own
// pending operations together with their children's combined demands into a
// single upstream request, and split the granted interval back down in
// batch order. Each node keeps at most one request in flight toward the
// root (Raymond-style), so link bandwidth stays within the model's budget
// while concurrent bursts still combine.
//
// This is the message-passing form of software combining (the counting
// side's classic scalability technique), and the natural long-lived
// opponent for the long-lived arrow protocol.
type Combining struct {
	tree    *tree.Tree
	reqs    []Request
	amounts []int // per-op addend; all ones for pure counting

	byTime map[int][]int
	lastT  int

	// Per-node batching state.
	pending   [][]entry // composition of the batch being accumulated
	demand    []int     // total amount in pending
	inFlight  []bool    // an UP has been sent and no grant received yet
	sentBatch [][]entry // composition of the in-flight batch

	sum   int // root's accumulator
	value []int
	done  []int
}

// entry is one component of a batch: either amount ops issued locally
// (child == -1, ops listed) or a child's combined request.
type entry struct {
	child  int // -1 for local operations
	amount int
	ops    []int // local op ids (child == -1)
}

// NewCombining prepares a combining-counter run for the given request
// schedule (every operation adds one).
func NewCombining(t *tree.Tree, reqs []Request) (*Combining, error) {
	amounts := make([]int, len(reqs))
	for i := range amounts {
		amounts[i] = 1
	}
	return newCombining(t, reqs, amounts)
}

// NewAdder prepares a combining fetch-and-add run: a distributed addition
// per the paper's closing open question. Each operation's value is the
// inclusive prefix sum of the addends in the order the root serves them.
func NewAdder(t *tree.Tree, reqs []AddRequest) (*Combining, error) {
	plain := make([]Request, len(reqs))
	amounts := make([]int, len(reqs))
	for i, r := range reqs {
		if r.Amount < 1 {
			return nil, fmt.Errorf("counting: add request %d amount %d < 1", i, r.Amount)
		}
		plain[i] = Request{Node: r.Node, Time: r.Time}
		amounts[i] = r.Amount
	}
	return newCombining(t, plain, amounts)
}

func newCombining(t *tree.Tree, reqs []Request, amounts []int) (*Combining, error) {
	n := t.N()
	c := &Combining{
		tree:      t,
		reqs:      append([]Request(nil), reqs...),
		amounts:   amounts,
		byTime:    make(map[int][]int),
		pending:   make([][]entry, n),
		demand:    make([]int, n),
		inFlight:  make([]bool, n),
		sentBatch: make([][]entry, n),
		value:     make([]int, len(reqs)),
		done:      make([]int, len(reqs)),
	}
	for op, r := range c.reqs {
		if r.Node < 0 || r.Node >= n {
			return nil, fmt.Errorf("counting: request %d node %d out of range", op, r.Node)
		}
		if r.Time < 0 {
			return nil, fmt.Errorf("counting: request %d time %d negative", op, r.Time)
		}
		c.byTime[r.Time] = append(c.byTime[r.Time], op)
		if r.Time > c.lastT {
			c.lastT = r.Time
		}
		c.done[op] = -1
	}
	return c, nil
}

// PendingUntil implements sim.Scheduler.
func (c *Combining) PendingUntil() int { return c.lastT }

// Start issues round-zero requests and flushes them (round 0 has no Tick).
func (c *Combining) Start(env *sim.Env, node int) {
	c.issueDue(env, node)
	c.flush(env, node)
}

// Tick runs after the round's deliveries: it issues the requests scheduled
// for this round and flushes everything that accumulated — locally issued
// operations and children's combined demands batch into a single upstream
// message per node per round, at no latency cost (Tick precedes the send
// phase).
func (c *Combining) Tick(env *sim.Env, node int) {
	c.issueDue(env, node)
	c.flush(env, node)
}

func (c *Combining) issueDue(env *sim.Env, node int) {
	for _, op := range c.byTime[env.Round()] {
		if c.reqs[op].Node == node {
			c.addLocal(node, op)
		}
	}
}

// addLocal records a locally issued operation in the accumulating batch.
func (c *Combining) addLocal(node, op int) {
	amt := c.amounts[op]
	// Merge into an existing local entry if the batch tail is local.
	if k := len(c.pending[node]); k > 0 && c.pending[node][k-1].child == -1 {
		c.pending[node][k-1].amount += amt
		c.pending[node][k-1].ops = append(c.pending[node][k-1].ops, op)
	} else {
		c.pending[node] = append(c.pending[node], entry{child: -1, amount: amt, ops: []int{op}})
	}
	c.demand[node] += amt
}

// flush sends the pending batch upward (or serves it, at the root) when
// allowed: the root serves immediately; other nodes need a free slot.
func (c *Combining) flush(env *sim.Env, node int) {
	if c.demand[node] == 0 {
		return
	}
	if node == c.tree.Root() {
		batch := c.pending[node]
		c.pending[node] = nil
		c.demand[node] = 0
		c.serve(env, node, batch)
		return
	}
	if c.inFlight[node] {
		return // will flush when the grant returns
	}
	c.inFlight[node] = true
	c.sentBatch[node] = c.pending[node]
	amount := c.demand[node]
	c.pending[node] = nil
	c.demand[node] = 0
	env.Send(node, c.tree.Parent(node), sim.Message{Kind: kindUp, A: amount})
}

// serve hands out sums starting at the root's accumulator to a batch.
func (c *Combining) serve(env *sim.Env, node int, batch []entry) {
	c.sum = c.assign(env, node, c.sum, batch)
}

// assign walks a batch, giving local operations their inclusive prefix sums
// and children sub-intervals; start is the exclusive running sum before the
// batch. It returns the running sum after the batch.
func (c *Combining) assign(env *sim.Env, node, start int, batch []entry) int {
	running := start
	for _, e := range batch {
		if e.child == -1 {
			for _, op := range e.ops {
				running += c.amounts[op]
				c.value[op] = running
				c.done[op] = env.Round()
			}
			continue
		}
		env.Send(node, e.child, sim.Message{Kind: kindDown, A: running, B: e.amount})
		running += e.amount
	}
	return running
}

// distribute splits a granted sum interval (start, start+k] over the node's
// in-flight batch.
func (c *Combining) distribute(env *sim.Env, node, start, k int) {
	batch := c.sentBatch[node]
	c.sentBatch[node] = nil
	c.inFlight[node] = false
	total := 0
	for _, e := range batch {
		total += e.amount
	}
	if total != k {
		env.Fail(fmt.Errorf("counting: node %d granted %d for batch of %d", node, k, total))
		return
	}
	c.assign(env, node, start, batch)
	// Demand accumulated while the batch was in flight is flushed by this
	// round's Tick.
}

// Deliver handles combined requests from children and grants from parents.
func (c *Combining) Deliver(env *sim.Env, node int, m sim.Message) {
	switch m.Kind {
	case kindUp:
		c.pending[node] = append(c.pending[node], entry{child: m.From, amount: m.A})
		c.demand[node] += m.A
		// Flushed by this round's Tick, so same-round arrivals combine.
	case kindDown:
		c.distribute(env, node, m.A, m.B)
	default:
		env.Fail(fmt.Errorf("counting: combining got unexpected kind %d", m.Kind))
	}
}

// CountOf returns the count granted to op (1-based), or 0. For adder runs
// this is the inclusive prefix sum — see ValueOf.
func (c *Combining) CountOf(op int) int { return c.value[op] }

// ValueOf returns the inclusive prefix sum returned to op (fetch-and-add
// semantics: the accumulator value after op's addend took effect).
func (c *Combining) ValueOf(op int) int { return c.value[op] }

// CompletedAt returns the round op received its count, or -1.
func (c *Combining) CompletedAt(op int) int { return c.done[op] }

// Latency returns completion minus issue round for op, or -1.
func (c *Combining) Latency(op int) int {
	if c.done[op] < 0 {
		return -1
	}
	return c.done[op] - c.reqs[op].Time
}

// TotalLatency sums latencies over all operations.
func (c *Combining) TotalLatency() int {
	total := 0
	for op := range c.reqs {
		total += c.Latency(op)
	}
	return total
}

// Validate checks the counting correctness condition for unit amounts: the
// values granted are exactly {1, …, len(reqs)}. For adder runs use
// ValidateSums.
func (c *Combining) Validate() error {
	seen := make([]bool, len(c.reqs)+1)
	for op := range c.reqs {
		v := c.value[op]
		if v < 1 || v > len(c.reqs) {
			return fmt.Errorf("counting: op %d got count %d outside 1..%d", op, v, len(c.reqs))
		}
		if seen[v] {
			return fmt.Errorf("counting: count %d granted twice", v)
		}
		seen[v] = true
	}
	return nil
}

// ValidateSums checks the fetch-and-add correctness condition: there is a
// total order of the operations in which each returned value equals the
// inclusive prefix sum of the addends. Equivalently, sorting operations by
// returned value must reproduce value_i = value_{i-1} + amount_i.
func (c *Combining) ValidateSums() error {
	order := make([]int, len(c.reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return c.value[order[i]] < c.value[order[j]] })
	running := 0
	for _, op := range order {
		running += c.amounts[op]
		if c.value[op] != running {
			return fmt.Errorf("counting: op %d returned %d, want prefix sum %d", op, c.value[op], running)
		}
	}
	return nil
}
