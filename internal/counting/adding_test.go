package counting

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

func TestAdderSingleOp(t *testing.T) {
	g := graph.Path(4)
	tr := identityPathTree(t, 4)
	a, err := NewAdder(tr, []AddRequest{{Node: 3, Time: 0, Amount: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Graph: g}, a).Run(); err != nil {
		t.Fatal(err)
	}
	if a.ValueOf(0) != 7 {
		t.Errorf("value = %d, want 7", a.ValueOf(0))
	}
	if err := a.ValidateSums(); err != nil {
		t.Error(err)
	}
}

func TestAdderSequentialPrefixSums(t *testing.T) {
	g := graph.Path(3)
	tr := identityPathTree(t, 3)
	reqs := []AddRequest{
		{Node: 0, Time: 0, Amount: 5},
		{Node: 0, Time: 10, Amount: 3},
		{Node: 0, Time: 20, Amount: 2},
	}
	a, err := NewAdder(tr, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Graph: g}, a).Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{5, 8, 10}
	for op, w := range want {
		if a.ValueOf(op) != w {
			t.Errorf("value(op%d) = %d, want %d", op, a.ValueOf(op), w)
		}
	}
	if err := a.ValidateSums(); err != nil {
		t.Error(err)
	}
}

func TestAdderRejectsBadAmount(t *testing.T) {
	tr := identityPathTree(t, 3)
	if _, err := NewAdder(tr, []AddRequest{{Node: 0, Time: 0, Amount: 0}}); err == nil {
		t.Error("zero amount accepted")
	}
	if _, err := NewAdder(tr, []AddRequest{{Node: 0, Time: 0, Amount: -4}}); err == nil {
		t.Error("negative amount accepted")
	}
}

func TestAdderUnitAmountsMatchCounting(t *testing.T) {
	// With all amounts 1, the adder is a counter: Validate must pass.
	g := graph.PerfectMAryTree(2, 4)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []AddRequest
	for v := 0; v < g.N(); v++ {
		reqs = append(reqs, AddRequest{Node: v, Time: 0, Amount: 1})
	}
	a, err := NewAdder(tr, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Graph: g}, a).Run(); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
	if err := a.ValidateSums(); err != nil {
		t.Error(err)
	}
}

func TestAdderPropertyPrefixSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr := tree.MustFromParents(0, parent)
		b := graph.NewBuilder("rt", n)
		for v := 1; v < n; v++ {
			b.MustAddEdge(v, parent[v])
		}
		g := b.Build()
		var reqs []AddRequest
		for k := 0; k < rng.Intn(30); k++ {
			reqs = append(reqs, AddRequest{Node: rng.Intn(n), Time: rng.Intn(20), Amount: 1 + rng.Intn(9)})
		}
		a, err := NewAdder(tr, reqs)
		if err != nil {
			return false
		}
		if _, err := sim.New(sim.Config{Graph: g}, a).Run(); err != nil {
			return false
		}
		return a.ValidateSums() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateSumsRejectsCorruption(t *testing.T) {
	g := graph.Path(3)
	tr := identityPathTree(t, 3)
	a, err := NewAdder(tr, []AddRequest{{Node: 1, Time: 0, Amount: 2}, {Node: 2, Time: 0, Amount: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Graph: g}, a).Run(); err != nil {
		t.Fatal(err)
	}
	if err := a.ValidateSums(); err != nil {
		t.Fatal(err)
	}
	a.value[0]++ // corrupt
	if err := a.ValidateSums(); err == nil {
		t.Error("corrupted sums accepted")
	}
}
