package counting

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tree"
)

func TestCountNetCustomHosts(t *testing.T) {
	// Hosting ablation. Both embeddings must validate; under the model's
	// one-message-per-round budget the co-located embedding (all
	// balancers at the root) actually BEATS round-robin spreading at this
	// scale: a token traverses co-located balancers with local compute
	// (free) and pays only entry + grant, while the spread embedding pays
	// real tree hops between every layer. This is the same phenomenon as
	// the E12 width ablation — in this model, hop counts dominate
	// hot-spot contention until the hot spot saturates.
	g := graph.Complete(16)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rootOnly := func(layer, index, global, n int) int { return 0 }
	cn, err := NewCountNet(tr, reqAll(16), 4, rootOnly)
	if err != nil {
		t.Fatal(err)
	}
	central, err := Run(g, cn, 1)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := NewCountNet(tr, reqAll(16), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Run(g, spread, 1)
	if err != nil {
		t.Fatal(err)
	}
	if central.TotalDelay >= dist.TotalDelay {
		t.Errorf("co-located embedding (%d) lost to spread embedding (%d); the hop/hot-spot balance shifted — investigate",
			central.TotalDelay, dist.TotalDelay)
	}
	// The hot spot is visible in the backlog statistics (the initial
	// all-at-once token wave already queues 14 deep in both embeddings).
	if central.Stats.MaxInboxBacklog < dist.Stats.MaxInboxBacklog {
		t.Errorf("co-located backlog %d below spread backlog %d",
			central.Stats.MaxInboxBacklog, dist.Stats.MaxInboxBacklog)
	}
}

func TestCountNetOnStarSerializes(t *testing.T) {
	// Counting network embedded on a star: every inter-balancer hop
	// crosses the hub, so the hub's capacity dominates.
	n := 17
	g := graph.Star(n)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := NewCountNet(tr, reqAll(n), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, cn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxInboxBacklog == 0 {
		t.Error("expected hub contention on the star")
	}
}

func TestCountNetShortcutsOnCompleteGraph(t *testing.T) {
	// Direct-edge routing must remain valid and strictly cheaper than
	// spanning-tree routing on the complete graph.
	g := graph.Complete(32)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	viaTree, err := NewCountNet(tr, reqAll(32), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	treeRes, err := Run(g, viaTree, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewCountNet(tr, reqAll(32), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct.WithShortcuts()
	directRes, err := Run(g, direct, 1)
	if err != nil {
		t.Fatal(err)
	}
	if directRes.TotalDelay >= treeRes.TotalDelay {
		t.Errorf("shortcuts (%d) not cheaper than tree routing (%d)",
			directRes.TotalDelay, treeRes.TotalDelay)
	}
}

func TestCountNetShortcutsNoopOnSparseGraph(t *testing.T) {
	// On the list almost no host pair is adjacent; shortcut mode must
	// still validate (and routes mostly via the tree).
	g := graph.Path(16)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := NewCountNet(tr, reqAll(16), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	cn.WithShortcuts()
	if _, err := Run(g, cn, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTreeCountDelayFormulaOnPerfectBinary(t *testing.T) {
	// On a perfect binary tree with all nodes requesting: the up phase
	// ends at round = height (leaves report at 0... each level adds ≥1
	// round), and every node's delay is at least its depth (the block
	// message must travel down to it).
	g := graph.PerfectMAryTree(2, 5)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewTreeCount(tr, reqAll(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, tc, 1); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if tc.Delay(v) < tr.Depth(v) {
			t.Errorf("node %d delay %d below its depth %d", v, tc.Delay(v), tr.Depth(v))
		}
	}
	// Root's rank is fixed only after the convergecast: ≥ height rounds.
	if tc.Delay(0) < tr.Height() {
		t.Errorf("root delay %d below tree height %d", tc.Delay(0), tr.Height())
	}
}
