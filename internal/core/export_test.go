package core

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{ID: "X", Title: "sample", Ref: "ref", Columns: []string{"a", "b"}}
	t.AddRow("1", "two, with comma")
	t.AddRow("3", "four")
	t.AddNote("a note")
	return t
}

func TestCSVRoundTrips(t *testing.T) {
	out, err := sampleTable().CSV()
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 2 rows + note
		t.Fatalf("records = %d, want 4", len(records))
	}
	if records[1][1] != "two, with comma" {
		t.Errorf("comma cell mangled: %q", records[1][1])
	}
	if records[3][0] != "#note" {
		t.Errorf("note row = %v", records[3])
	}
}

func TestJSONWellFormed(t *testing.T) {
	out, err := sampleTable().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "X" || len(decoded.Rows) != 2 {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestMarkdown(t *testing.T) {
	out := sampleTable().Markdown()
	for _, want := range []string{"### X — sample (ref)", "| a | b |", "| --- | --- |", "> a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDispatch(t *testing.T) {
	tbl := sampleTable()
	for _, f := range []string{"", "text", "csv", "json", "markdown", "md"} {
		if _, err := tbl.Format(f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
	}
	if _, err := tbl.Format("yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestTraceDemoRenders(t *testing.T) {
	out, err := TraceDemo(15, 4, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"arrow one-shot", "raymond token algorithm", "queue order", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace demo missing %q", want)
		}
	}
}
