// Package core is the experiment harness that reproduces every theorem,
// figure and discussion point of Busch & Tirthapura, "Concurrent counting
// is harder than queuing", as a measurable experiment. Each experiment
// (E1–E16, see DESIGN.md) couples workload generation, protocol execution
// on the synchronous simulator, and the paper's symbolic bounds into one
// table of paper-versus-measured rows. Experiments self-register (see
// Register), and the shared-memory experiment enumerates its protocols
// from the public repro/countq registry.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/arrow"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/tree"
)

// Config controls an experiment run.
type Config struct {
	// Quick shrinks problem sizes so the whole suite runs in seconds
	// (used by tests); the full sizes are used by the CLI and benches.
	Quick bool
	// Seed drives all randomized workloads; runs are reproducible.
	Seed int64
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Ref     string // paper reference (theorem / figure)
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note shown under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", t.ID, t.Title, t.Ref)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len([]rune(cell)); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Spec describes one experiment.
type Spec struct {
	ID    string
	Title string
	Ref   string
	Run   func(cfg Config) (*Table, error)
}

var (
	specMu sync.RWMutex
	specs  = make(map[string]*Spec)
)

// Register records an experiment spec, keyed by ID. Each experiments_*.go
// file registers its own specs from init, so adding an experiment file is
// all it takes to extend the suite. Registering an empty ID, a nil Run, or
// an ID twice panics.
func Register(s *Spec) {
	specMu.Lock()
	defer specMu.Unlock()
	if s == nil || s.ID == "" || s.Run == nil {
		panic("core: Register with empty ID or nil Run")
	}
	key := strings.ToUpper(s.ID)
	if _, dup := specs[key]; dup {
		panic(fmt.Sprintf("core: experiment %s registered twice", s.ID))
	}
	specs[key] = s
}

// Experiments returns all registered experiment specs in suite order
// (numeric when IDs share a prefix, e.g. E2 before E10).
func Experiments() []*Spec {
	specMu.RLock()
	out := make([]*Spec, 0, len(specs))
	for _, s := range specs {
		out = append(out, s)
	}
	specMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return specLess(out[i].ID, out[j].ID) })
	return out
}

// specLess orders experiment IDs with numeric suffix awareness.
func specLess(a, b string) bool {
	pa, na := splitNum(a)
	pb, nb := splitNum(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

// splitNum splits a trailing decimal number off an ID ("E12" → "E", 12).
func splitNum(id string) (string, int) {
	i := len(id)
	for i > 0 && id[i-1] >= '0' && id[i-1] <= '9' {
		i--
	}
	if i == len(id) {
		return id, -1
	}
	n := 0
	for _, c := range id[i:] {
		n = n*10 + int(c-'0')
	}
	return id[:i], n
}

// Lookup returns the spec with the given ID (case-insensitive), or nil.
func Lookup(id string) *Spec {
	specMu.RLock()
	defer specMu.RUnlock()
	return specs[strings.ToUpper(id)]
}

// --- shared workload helpers ---

// allRequests marks every node as a requester (the paper's worst case for
// the lower bounds).
func allRequests(n int) []bool {
	r := make([]bool, n)
	for i := range r {
		r[i] = true
	}
	return r
}

// randomRequests marks each node independently with the given density.
func randomRequests(n int, density float64, rng *rand.Rand) []bool {
	r := make([]bool, n)
	for i := range r {
		r[i] = rng.Float64() < density
	}
	return r
}

func requestList(req []bool) []int {
	var out []int
	for v, b := range req {
		if b {
			out = append(out, v)
		}
	}
	return out
}

// heapTree returns the balanced binary "heap" tree on n vertices
// (parent(v) = ⌊(v-1)/2⌋) — a constant-degree, logarithmic-depth spanning
// tree of the complete graph.
func heapTree(n int) *tree.Tree {
	parent := make([]int, n)
	for v := 1; v < n; v++ {
		parent[v] = (v - 1) / 2
	}
	return tree.MustFromParents(0, parent)
}

// identityPathTree returns the path tree 0→1→…→n-1.
func identityPathTree(n int) *tree.Tree {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	t, err := tree.PathTree(order)
	if err != nil {
		panic(err)
	}
	return t
}

// hamiltonPathTree builds the spanning tree used by Theorem 4.5: the
// graph's Hamilton path, rooted at its first vertex.
func hamiltonPathTree(g *graph.Graph) (*tree.Tree, error) {
	order, err := graph.HamiltonPath(g)
	if err != nil {
		return nil, err
	}
	return tree.PathTree(order)
}

// countingPortfolio runs the counting protocols on (g, tr) and returns the
// name and total delay of the cheapest, plus all totals keyed by name.
// Counting-network widths adapt to n. All runs use capacity 1 (the model's
// base budget).
func countingPortfolio(g *graph.Graph, tr *tree.Tree, req []bool) (string, int, map[string]int, error) {
	totals := make(map[string]int)
	central, err := counting.NewCentral(tr, req)
	if err != nil {
		return "", 0, nil, err
	}
	if res, err := counting.Run(g, central, 1); err == nil {
		totals["central"] = res.TotalDelay
	} else {
		return "", 0, nil, fmt.Errorf("central: %w", err)
	}
	tc, err := counting.NewTreeCount(tr, req)
	if err != nil {
		return "", 0, nil, err
	}
	if res, err := counting.Run(g, tc, 1); err == nil {
		totals["treecount"] = res.TotalDelay
	} else {
		return "", 0, nil, fmt.Errorf("treecount: %w", err)
	}
	width := 8
	if g.N() < 16 {
		width = 2
	}
	cn, err := counting.NewCountNet(tr, req, width, nil)
	if err != nil {
		return "", 0, nil, err
	}
	cn.WithShortcuts() // free on sparse graphs, decisive on dense ones
	if res, err := counting.Run(g, cn, 1); err == nil {
		totals[fmt.Sprintf("countnet%d", width)] = res.TotalDelay
	} else {
		return "", 0, nil, fmt.Errorf("countnet: %w", err)
	}
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	best, bestTotal := "", -1
	for _, name := range names {
		if bestTotal < 0 || totals[name] < bestTotal {
			best, bestTotal = name, totals[name]
		}
	}
	return best, bestTotal, totals, nil
}

// runArrow executes the arrow protocol and returns its total delay.
func runArrow(g *graph.Graph, tr *tree.Tree, tail int, req []bool, capacity int) (int, error) {
	res, err := arrow.RunOneShot(g, tr, tail, req, capacity)
	if err != nil {
		return 0, err
	}
	return res.TotalDelay, nil
}
