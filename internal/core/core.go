// Package core is the experiment harness that reproduces every theorem,
// figure and discussion point of Busch & Tirthapura, "Concurrent counting
// is harder than queuing", as a measurable experiment. Each experiment
// (E1–E12, see DESIGN.md) couples workload generation, protocol execution
// on the synchronous simulator, and the paper's symbolic bounds into one
// table of paper-versus-measured rows.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/arrow"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/tree"
)

// Config controls an experiment run.
type Config struct {
	// Quick shrinks problem sizes so the whole suite runs in seconds
	// (used by tests); the full sizes are used by the CLI and benches.
	Quick bool
	// Seed drives all randomized workloads; runs are reproducible.
	Seed int64
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Ref     string // paper reference (theorem / figure)
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note shown under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", t.ID, t.Title, t.Ref)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len([]rune(cell)); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Spec describes one experiment.
type Spec struct {
	ID    string
	Title string
	Ref   string
	Run   func(cfg Config) (*Table, error)
}

// Experiments returns all experiment specs in order.
func Experiments() []*Spec {
	return []*Spec{
		{"E1", "Counting lower bound Ω(n log* n) on the complete graph", "Theorem 3.5", RunE1},
		{"E2", "Counting lower bound Ω(diameter²) on list and mesh", "Theorem 3.6", RunE2},
		{"E3", "Arrow total delay ≤ 2 × nearest-neighbour TSP", "Theorem 4.1", RunE3},
		{"E4", "Nearest-neighbour TSP on the list costs ≤ 3n", "Lemma 4.3 / Fig. 2", RunE4},
		{"E5", "Nearest-neighbour TSP on perfect trees costs O(n)", "Theorem 4.7 / Lemma 4.9 / Fig. 3", RunE5},
		{"E6", "Queuing beats counting on Hamilton-path graphs", "Theorem 4.5, Lemma 4.6", RunE6},
		{"E7", "Queuing beats counting on perfect m-ary trees", "Theorem 4.12", RunE7},
		{"E8", "Queuing beats counting on high-diameter graphs", "Theorem 4.13", RunE8},
		{"E9", "On the star both problems cost Θ(n²)", "Conclusions", RunE9},
		{"E10", "Counting and queuing semantics on the Fig. 1 example", "Figure 1", RunE10},
		{"E11", "Shared-memory analog: goroutine counters vs queues", "paper thesis on a real substrate", RunE11},
		{"E12", "Ablations: spanning tree, capacity, network width", "design choices", RunE12},
		{"E13", "Long-lived queuing vs counting under arrival schedules", "extension: reference [8] setting", RunE13},
		{"E14", "Separation under asynchronous (jittered) links", "extension: Section 2.1 remark", RunE14},
		{"E15", "Adversarial request sets via hill climbing", "extension: the max over R in Eq. (1)/(3)", RunE15},
		{"E16", "Distributed addition vs counting vs queuing", "extension: conclusions' open question", RunE16},
	}
}

// Lookup returns the spec with the given ID (case-insensitive), or nil.
func Lookup(id string) *Spec {
	for _, s := range Experiments() {
		if strings.EqualFold(s.ID, id) {
			return s
		}
	}
	return nil
}

// --- shared workload helpers ---

// allRequests marks every node as a requester (the paper's worst case for
// the lower bounds).
func allRequests(n int) []bool {
	r := make([]bool, n)
	for i := range r {
		r[i] = true
	}
	return r
}

// randomRequests marks each node independently with the given density.
func randomRequests(n int, density float64, rng *rand.Rand) []bool {
	r := make([]bool, n)
	for i := range r {
		r[i] = rng.Float64() < density
	}
	return r
}

func requestList(req []bool) []int {
	var out []int
	for v, b := range req {
		if b {
			out = append(out, v)
		}
	}
	return out
}

// heapTree returns the balanced binary "heap" tree on n vertices
// (parent(v) = ⌊(v-1)/2⌋) — a constant-degree, logarithmic-depth spanning
// tree of the complete graph.
func heapTree(n int) *tree.Tree {
	parent := make([]int, n)
	for v := 1; v < n; v++ {
		parent[v] = (v - 1) / 2
	}
	return tree.MustFromParents(0, parent)
}

// identityPathTree returns the path tree 0→1→…→n-1.
func identityPathTree(n int) *tree.Tree {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	t, err := tree.PathTree(order)
	if err != nil {
		panic(err)
	}
	return t
}

// hamiltonPathTree builds the spanning tree used by Theorem 4.5: the
// graph's Hamilton path, rooted at its first vertex.
func hamiltonPathTree(g *graph.Graph) (*tree.Tree, error) {
	order, err := graph.HamiltonPath(g)
	if err != nil {
		return nil, err
	}
	return tree.PathTree(order)
}

// countingPortfolio runs the counting protocols on (g, tr) and returns the
// name and total delay of the cheapest, plus all totals keyed by name.
// Counting-network widths adapt to n. All runs use capacity 1 (the model's
// base budget).
func countingPortfolio(g *graph.Graph, tr *tree.Tree, req []bool) (string, int, map[string]int, error) {
	totals := make(map[string]int)
	central, err := counting.NewCentral(tr, req)
	if err != nil {
		return "", 0, nil, err
	}
	if res, err := counting.Run(g, central, 1); err == nil {
		totals["central"] = res.TotalDelay
	} else {
		return "", 0, nil, fmt.Errorf("central: %w", err)
	}
	tc, err := counting.NewTreeCount(tr, req)
	if err != nil {
		return "", 0, nil, err
	}
	if res, err := counting.Run(g, tc, 1); err == nil {
		totals["treecount"] = res.TotalDelay
	} else {
		return "", 0, nil, fmt.Errorf("treecount: %w", err)
	}
	width := 8
	if g.N() < 16 {
		width = 2
	}
	cn, err := counting.NewCountNet(tr, req, width, nil)
	if err != nil {
		return "", 0, nil, err
	}
	cn.WithShortcuts() // free on sparse graphs, decisive on dense ones
	if res, err := counting.Run(g, cn, 1); err == nil {
		totals[fmt.Sprintf("countnet%d", width)] = res.TotalDelay
	} else {
		return "", 0, nil, fmt.Errorf("countnet: %w", err)
	}
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	best, bestTotal := "", -1
	for _, name := range names {
		if bestTotal < 0 || totals[name] < bestTotal {
			best, bestTotal = name, totals[name]
		}
	}
	return best, bestTotal, totals, nil
}

// runArrow executes the arrow protocol and returns its total delay.
func runArrow(g *graph.Graph, tr *tree.Tree, tail int, req []bool, capacity int) (int, error) {
	res, err := arrow.RunOneShot(g, tr, tail, req, capacity)
	if err != nil {
		return 0, err
	}
	return res.TotalDelay, nil
}
