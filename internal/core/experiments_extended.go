package core

import (
	"fmt"
	"math/rand"

	"repro/internal/arrow"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stat"
	"repro/internal/tree"
)

// RunE13 extends the one-shot comparison to the long-lived setting studied
// by Kuhn & Wattenhofer (the paper's reference [8]): operations arrive over
// time. The arrow protocol (queuing) runs against the combining-tree
// counter (counting) on the same spanning tree under identical request
// schedules; both are validated, and the total latency is compared across
// load levels.
func init() {
	Register(&Spec{ID: "E13", Title: "Long-lived queuing vs counting under arrival schedules", Ref: "extension: reference [8] setting", Run: RunE13})
	Register(&Spec{ID: "E14", Title: "Separation under asynchronous (jittered) links", Ref: "extension: Section 2.1 remark", Run: RunE14})
}

func RunE13(cfg Config) (*Table, error) {
	sizes := []int{63, 255}
	horizon := 200
	if cfg.Quick {
		sizes = []int{63}
		horizon = 80
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:      "E13",
		Title:   "long-lived queuing (arrow) vs counting (combining tree)",
		Ref:     "extension: Kuhn–Wattenhofer reference [8] setting",
		Columns: []string{"tree n", "ops", "arrival window", "queuing latency", "counting latency", "C/Q"},
	}
	for _, n := range sizes {
		g := graph.PerfectMAryTree(2, log2Levels(n))
		tr, err := tree.BFSTree(g, 0)
		if err != nil {
			return nil, err
		}
		for _, load := range []int{n / 2, n, 2 * n} {
			qReqs := make([]arrow.Request, load)
			cReqs := make([]counting.Request, load)
			for i := range qReqs {
				node := rng.Intn(g.N())
				when := rng.Intn(horizon)
				qReqs[i] = arrow.Request{Node: node, Time: when}
				cReqs[i] = counting.Request{Node: node, Time: when}
			}
			q, err := arrow.NewLongLived(tr, 0, qReqs)
			if err != nil {
				return nil, err
			}
			if _, err := sim.New(sim.Config{Graph: g}, q).Run(); err != nil {
				return nil, err
			}
			if err := q.VerifyRealTimeOrder(); err != nil {
				return nil, fmt.Errorf("E13: %w", err)
			}
			c, err := counting.NewCombining(tr, cReqs)
			if err != nil {
				return nil, err
			}
			if _, err := sim.New(sim.Config{Graph: g}, c).Run(); err != nil {
				return nil, err
			}
			if err := c.Validate(); err != nil {
				return nil, fmt.Errorf("E13: %w", err)
			}
			ql, cl := q.TotalLatency(), c.TotalLatency()
			if cl <= ql {
				return nil, fmt.Errorf("E13: counting latency %d not above queuing %d (n=%d load=%d)", cl, ql, n, load)
			}
			t.AddRow(fmt.Sprint(g.N()), fmt.Sprint(load), fmt.Sprintf("[0,%d)", horizon),
				fmt.Sprint(ql), fmt.Sprint(cl), stat.Ratio(float64(cl), float64(ql)))
		}
	}
	t.AddNote("the separation persists when requests arrive over time: counting must still round-trip to the aggregation root, queuing terminates at the nearest predecessor")
	return t, nil
}

// RunE14 checks robustness of the separation under asynchronous links —
// the paper claims its lower bounds carry over to the asynchronous model
// (Section 2.1). Links get independent per-message delays in {1..Max}
// (FIFO per link); the one-shot comparison is repeated for growing Max.
func RunE14(cfg Config) (*Table, error) {
	side := 12
	if cfg.Quick {
		side = 8
	}
	g := graph.Mesh(side, side)
	n := g.N()
	req := allRequests(n)
	hp, err := hamiltonPathTree(g)
	if err != nil {
		return nil, err
	}
	bfs, err := tree.BFSTree(g, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E14",
		Title:   fmt.Sprintf("asynchronous links on %s: separation vs jitter bound", g.Name()),
		Ref:     "extension: Section 2.1's asynchronous-model remark",
		Columns: []string{"max link delay", "C_Q arrow", "C_C treecount", "C_C/C_Q"},
	}
	var ratios []float64
	for _, max := range []int{1, 2, 4, 8} {
		delay := sim.DelayModel(sim.UnitDelay{})
		if max > 1 {
			delay = sim.JitterDelay{Seed: cfg.Seed, Max: max}
		}
		qRes, err := arrow.RunOneShotConfig(g, hp, hp.Root(), req, sim.Config{Delay: delay})
		if err != nil {
			return nil, err
		}
		tc, err := counting.NewTreeCount(bfs, req)
		if err != nil {
			return nil, err
		}
		cRes, err := counting.RunConfig(g, tc, sim.Config{Delay: delay})
		if err != nil {
			return nil, err
		}
		if cRes.TotalDelay <= qRes.TotalDelay {
			return nil, fmt.Errorf("E14: no separation at jitter %d", max)
		}
		ratio := float64(cRes.TotalDelay) / float64(qRes.TotalDelay)
		ratios = append(ratios, ratio)
		t.AddRow(fmt.Sprint(max), fmt.Sprint(qRes.TotalDelay), fmt.Sprint(cRes.TotalDelay),
			fmt.Sprintf("%.2f", ratio))
	}
	t.AddNote("counting stays an order of magnitude above queuing at every jitter bound (ratios %.1f–%.1f): the separation is not an artifact of synchrony", minF(ratios), maxF(ratios))
	return t, nil
}

// log2Levels returns the number of perfect-binary-tree levels giving ≈ n
// nodes (n of the form 2^k − 1).
func log2Levels(n int) int {
	levels := 0
	for size := 0; size < n; size = 2*size + 1 {
		levels++
	}
	return levels
}

func minF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
