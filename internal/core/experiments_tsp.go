package core

import (
	"fmt"
	"math/rand"

	"repro/internal/arrow"
	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/nntsp"
	"repro/internal/tree"
)

// RunE3 reproduces Theorem 4.1 empirically: with expanded time steps
// (capacity = max tree degree), the arrow protocol's total queuing delay is
// at most twice the cost of the nearest-neighbour TSP visiting the request
// set on the spanning tree, starting at the initial tail.
func init() {
	Register(&Spec{ID: "E3", Title: "Arrow total delay ≤ 2 × nearest-neighbour TSP", Ref: "Theorem 4.1", Run: RunE3})
	Register(&Spec{ID: "E4", Title: "Nearest-neighbour TSP on the list costs ≤ 3n", Ref: "Lemma 4.3 / Fig. 2", Run: RunE4})
	Register(&Spec{ID: "E5", Title: "Nearest-neighbour TSP on perfect trees costs O(n)", Ref: "Theorem 4.7 / Lemma 4.9 / Fig. 3", Run: RunE5})
}

func RunE3(cfg Config) (*Table, error) {
	trials := 40
	if cfg.Quick {
		trials = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:      "E3",
		Title:   "arrow total delay vs 2 × NN-TSP",
		Ref:     "Theorem 4.1",
		Columns: []string{"tree", "trials", "densities", "max arrow/2·NNTSP", "violations"},
	}
	shapes := []struct {
		name string
		g    *graph.Graph
		tr   *tree.Tree
	}{
		{"list(128)", graph.Path(128), identityPathTree(128)},
		{"perfect binary d=6", graph.PerfectMAryTree(2, 7), nil},
		{"perfect ternary d=4", graph.PerfectMAryTree(3, 5), nil},
	}
	densities := []float64{0.1, 0.3, 0.7, 1.0}
	for i := range shapes {
		if shapes[i].tr == nil {
			tr, err := tree.BFSTree(shapes[i].g, 0)
			if err != nil {
				return nil, err
			}
			shapes[i].tr = tr
		}
	}
	for _, sh := range shapes {
		n := sh.g.N()
		worst := 0.0
		violations := 0
		for trial := 0; trial < trials; trial++ {
			density := densities[trial%len(densities)]
			req := randomRequests(n, density, rng)
			reqs := requestList(req)
			if len(reqs) == 0 {
				continue
			}
			tail := rng.Intn(n)
			res, err := arrow.RunOneShot(sh.g, sh.tr, tail, req, sh.tr.MaxDegree())
			if err != nil {
				return nil, err
			}
			tour, err := nntsp.Greedy(sh.tr, reqs, tail)
			if err != nil {
				return nil, err
			}
			if tour.Cost == 0 {
				continue
			}
			ratio := float64(res.TotalDelay) / float64(2*tour.Cost)
			if ratio > worst {
				worst = ratio
			}
			if res.TotalDelay > 2*tour.Cost {
				violations++
			}
		}
		if violations > 0 {
			return nil, fmt.Errorf("E3: %d violations of Theorem 4.1 on %s", violations, sh.name)
		}
		t.AddRow(sh.name, fmt.Sprint(trials), "0.1–1.0", fmt.Sprintf("%.3f", worst), "0")
	}
	t.AddNote("ratio ≤ 1 everywhere confirms the Theorem 4.1 envelope on every tree family tested")
	return t, nil
}

// RunE4 reproduces Lemma 4.3 (and the Fig. 2 run decomposition): the
// nearest-neighbour tour on a list of n vertices costs at most 3n, for
// random and adversarial request sets, and the runs obey the Fibonacci-type
// growth x_i ≥ x_{i-1} + x_{i-2} of Lemma 4.4.
func RunE4(cfg Config) (*Table, error) {
	sizes := []int{64, 256, 1024, 4096}
	trials := 50
	if cfg.Quick {
		sizes = []int{64, 256}
		trials = 15
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:      "E4",
		Title:   "NN-TSP on the list: cost vs 3n, run structure",
		Ref:     "Lemma 4.3, Lemma 4.4, Fig. 2",
		Columns: []string{"n", "trials", "max cost", "3n", "max cost/n", "run-ineq violations"},
	}
	for _, n := range sizes {
		tr := identityPathTree(n)
		maxCost := 0
		violations := 0
		for trial := 0; trial < trials; trial++ {
			var reqs []int
			switch trial % 3 {
			case 0: // random density
				for v := 0; v < n; v++ {
					if rng.Float64() < 0.4 {
						reqs = append(reqs, v)
					}
				}
			case 1: // endpoints-heavy (adversarial for naive tours)
				for v := 0; v < n/8; v++ {
					reqs = append(reqs, v, n-1-v)
				}
			case 2: // sparse far-apart
				for v := 0; v < n; v += 1 + rng.Intn(7) {
					reqs = append(reqs, v)
				}
			}
			if len(reqs) == 0 {
				continue
			}
			start := rng.Intn(n)
			tour, err := nntsp.Greedy(tr, reqs, start)
			if err != nil {
				return nil, err
			}
			if tour.Cost > maxCost {
				maxCost = tour.Cost
			}
			rd := nntsp.DecomposeListTour(tour.Order, start)
			if err := rd.CheckLemma44(); err != nil {
				violations++
			}
			if tour.Cost > bounds.QueuingUpperBoundList(n) {
				return nil, fmt.Errorf("E4: tour cost %d exceeds 3n=%d at n=%d", tour.Cost, 3*n, n)
			}
		}
		if violations > 0 {
			return nil, fmt.Errorf("E4: %d run-inequality violations at n=%d", violations, n)
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(trials), fmt.Sprint(maxCost),
			fmt.Sprint(3*n), fmt.Sprintf("%.2f", float64(maxCost)/float64(n)), "0")
	}
	t.AddNote("max cost/n stays below 3 and the Lemma 4.4 run inequality holds in every trial")
	return t, nil
}

// RunE5 reproduces Theorem 4.7 (and Lemma 4.9 / Fig. 3): nearest-neighbour
// tours from the root of a perfect binary (and m-ary) tree cost O(n), with
// the per-depth budgets cost(ℓ) ≤ 4n·2^ℓ/2^d + 2d respected at every depth.
func RunE5(cfg Config) (*Table, error) {
	binaryLevels := []int{4, 6, 8, 10}
	trials := 30
	if cfg.Quick {
		binaryLevels = []int{4, 6}
		trials = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:      "E5",
		Title:   "NN-TSP on perfect trees: cost vs O(n) budget",
		Ref:     "Theorem 4.7, Lemma 4.9, Fig. 3",
		Columns: []string{"tree", "n", "max cost", "proof budget", "max cost/n", "depth-budget violations"},
	}
	for _, levels := range binaryLevels {
		tr := tree.Perfect(2, levels)
		n, d := tr.N(), tr.Height()
		maxCost := 0
		violations := 0
		for trial := 0; trial < trials; trial++ {
			var reqs []int
			density := 0.2 + 0.8*rng.Float64()
			for v := 0; v < n; v++ {
				if rng.Float64() < density {
					reqs = append(reqs, v)
				}
			}
			tour, err := nntsp.Greedy(tr, reqs, tr.Root())
			if err != nil {
				return nil, err
			}
			if tour.Cost > maxCost {
				maxCost = tour.Cost
			}
			if err := nntsp.CheckLemma49(tr, tour); err != nil {
				violations++
			}
		}
		budget := bounds.QueuingUpperBoundPerfectBinary(n, d)
		if maxCost > budget {
			return nil, fmt.Errorf("E5: binary levels=%d cost %d exceeds budget %d", levels, maxCost, budget)
		}
		if violations > 0 {
			return nil, fmt.Errorf("E5: %d depth-budget violations at levels=%d", violations, levels)
		}
		t.AddRow(fmt.Sprintf("binary d=%d", d), fmt.Sprint(n), fmt.Sprint(maxCost),
			fmt.Sprint(budget), fmt.Sprintf("%.2f", float64(maxCost)/float64(n)), "0")
	}
	// The m-ary extension (paper: "can easily be extended to any perfect
	// m-ary tree").
	for _, m := range []int{3, 4} {
		levels := 5
		if m == 4 {
			levels = 4
		}
		if cfg.Quick {
			levels--
		}
		tr := tree.Perfect(m, levels)
		n := tr.N()
		maxCost := 0
		for trial := 0; trial < trials; trial++ {
			var reqs []int
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.5 {
					reqs = append(reqs, v)
				}
			}
			tour, err := nntsp.Greedy(tr, reqs, tr.Root())
			if err != nil {
				return nil, err
			}
			if tour.Cost > maxCost {
				maxCost = tour.Cost
			}
		}
		// Generic linear budget with a conservative constant.
		if maxCost > 12*n {
			return nil, fmt.Errorf("E5: %d-ary cost %d not linear (n=%d)", m, maxCost, n)
		}
		t.AddRow(fmt.Sprintf("%d-ary d=%d", m, tr.Height()), fmt.Sprint(n),
			fmt.Sprint(maxCost), fmt.Sprint(12*n), fmt.Sprintf("%.2f", float64(maxCost)/float64(n)), "-")
	}
	t.AddNote("cost/n bounded by a constant on all perfect trees (Theorem 4.7 and its m-ary extension, Theorem 4.12's ingredient)")
	return t, nil
}
