package core

import (
	"fmt"

	"repro/internal/arrow"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

// RunE10 reproduces the semantics illustrated in Fig. 1 of the paper: on a
// small network where a subset of nodes issue operations, counting hands
// each requester the rank of its operation while queuing hands it the
// identity of its predecessor — and both agree on a single total order.
func init() {
	Register(&Spec{ID: "E10", Title: "Counting and queuing semantics on the Fig. 1 example", Ref: "Figure 1", Run: RunE10})
	Register(&Spec{ID: "E12", Title: "Ablations: spanning tree, capacity, network width", Ref: "design choices", Run: RunE12})
}

func RunE10(Config) (*Table, error) {
	// An 8-node graph shaped like Fig. 1's sketch; nodes a..h = 0..7,
	// requesters a, c, e (0, 2, 4).
	b := graph.NewBuilder("fig1", 8)
	edges := [][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 4}, {3, 5}, {5, 6}, {6, 7}, {2, 5}}
	for _, e := range edges {
		b.MustAddEdge(e[0], e[1])
	}
	g := b.Build()
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		return nil, err
	}
	req := make([]bool, 8)
	req[0], req[2], req[4] = true, true, true

	tc, err := counting.NewTreeCount(tr, req)
	if err != nil {
		return nil, err
	}
	if _, err := counting.Run(g, tc, 1); err != nil {
		return nil, err
	}
	ar, err := arrow.New(tr, 0, req)
	if err != nil {
		return nil, err
	}
	if _, err := sim.New(sim.Config{Graph: g}, ar).Run(); err != nil {
		return nil, err
	}
	order, err := ar.Order()
	if err != nil {
		return nil, err
	}

	name := func(v int) string { return string(rune('a' + v)) }
	t := &Table{
		ID:      "E10",
		Title:   "counting vs queuing semantics on the Fig. 1 example",
		Ref:     "Figure 1",
		Columns: []string{"node", "requests?", "count (rank)", "queuing pred"},
	}
	for v := 0; v < 8; v++ {
		reqs, count, pred := "no", "-", "-"
		if req[v] {
			reqs = "yes"
			count = fmt.Sprint(tc.Count(v))
			if p := ar.Pred(v); p == arrow.Head {
				pred = "HEAD"
			} else {
				pred = name(p)
			}
		}
		t.AddRow(name(v), reqs, count, pred)
	}
	queueOrder := ""
	for i, v := range order {
		if i > 0 {
			queueOrder += ", "
		}
		queueOrder += name(v)
	}
	t.AddNote("arrow total order: %s (counting ranks induce a total order too; the two protocols may order concurrent operations differently, as any correct implementations may)", queueOrder)
	return t, nil
}

// RunE12 measures the design choices the other experiments fix: the arrow
// protocol's spanning tree, the send/receive capacity (the paper's expanded
// time steps), the counting network width, and the aggregation root.
func RunE12(cfg Config) (*Table, error) {
	side := 12
	if cfg.Quick {
		side = 8
	}
	t := &Table{
		ID:      "E12",
		Title:   "ablations over spanning tree, capacity, width, and root",
		Ref:     "design choices called out in DESIGN.md",
		Columns: []string{"ablation", "variant", "total delay"},
	}

	// (a) Arrow spanning-tree choice on the mesh, all nodes request.
	mesh := graph.Mesh(side, side)
	req := allRequests(mesh.N())
	hp, err := hamiltonPathTree(mesh)
	if err != nil {
		return nil, err
	}
	corner, err := tree.BFSTree(mesh, 0)
	if err != nil {
		return nil, err
	}
	center, err := tree.BFSTree(mesh, mesh.N()/2+side/2)
	if err != nil {
		return nil, err
	}
	for _, v := range []struct {
		name string
		tr   *tree.Tree
	}{{"hamilton path", hp}, {"BFS corner", corner}, {"BFS center", center}} {
		total, err := runArrow(mesh, v.tr, v.tr.Root(), req, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow("arrow tree (mesh)", v.name, fmt.Sprint(total))
	}

	// (b) Arrow capacity: base model vs expanded time steps.
	pb := graph.PerfectMAryTree(2, 7)
	pbTree, err := tree.BFSTree(pb, 0)
	if err != nil {
		return nil, err
	}
	pbReq := allRequests(pb.N())
	for _, capacity := range []int{1, pbTree.MaxDegree()} {
		total, err := runArrow(pb, pbTree, 0, pbReq, capacity)
		if err != nil {
			return nil, err
		}
		t.AddRow("arrow capacity (perfect binary)", fmt.Sprintf("c=%d", capacity), fmt.Sprint(total))
	}

	// (c) Counting-network width on the complete graph.
	kn := graph.Complete(64)
	knTree := heapTree(64)
	knReq := allRequests(64)
	for _, width := range []int{2, 4, 8, 16} {
		cn, err := counting.NewCountNet(knTree, knReq, width, nil)
		if err != nil {
			return nil, err
		}
		res, err := counting.Run(kn, cn, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow("countnet width (K_64)", fmt.Sprintf("w=%d", width), fmt.Sprint(res.TotalDelay))
	}

	// (c') Counting-network construction: bitonic vs periodic at w=8.
	for _, variant := range []struct {
		name string
		mk   func(int) (*counting.BalancerNetwork, error)
	}{{"bitonic w=8", counting.Bitonic}, {"periodic w=8", counting.Periodic}} {
		net, err := variant.mk(8)
		if err != nil {
			return nil, err
		}
		cn, err := counting.NewCountNetFrom(knTree, knReq, net, nil)
		if err != nil {
			return nil, err
		}
		res, err := counting.Run(kn, cn, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow("countnet construction (K_64)",
			fmt.Sprintf("%s depth=%d", variant.name, net.Depth()), fmt.Sprint(res.TotalDelay))
	}

	// (c'') Counting-network routing: spanning-tree hops vs direct edges
	// (on the complete graph every host pair is adjacent).
	for _, shortcut := range []bool{false, true} {
		cn, err := counting.NewCountNet(knTree, knReq, 8, nil)
		if err != nil {
			return nil, err
		}
		name := "tree routing"
		if shortcut {
			cn.WithShortcuts()
			name = "direct edges"
		}
		res, err := counting.Run(kn, cn, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow("countnet routing (K_64)", name, fmt.Sprint(res.TotalDelay))
	}

	// (d) Aggregating counter root placement on the mesh.
	for _, v := range []struct {
		name string
		tr   *tree.Tree
	}{{"corner root", corner}, {"center root", center}} {
		tc, err := counting.NewTreeCount(v.tr, req)
		if err != nil {
			return nil, err
		}
		res, err := counting.Run(mesh, tc, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow("treecount root (mesh)", v.name, fmt.Sprint(res.TotalDelay))
	}
	t.AddNote("capacity c=deg(T) reproduces the paper's expanded-step accounting; c=1 is the base model (at most a constant factor apart on constant-degree trees)")
	return t, nil
}
