package core

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/stat"
	"repro/internal/tree"
)

// RunE1 reproduces Theorem 3.5: on the complete graph (the most favorable
// topology), every counting protocol's total delay must exceed the
// information-theoretic lower bound Ω(n log* n) when all n nodes count.
// The experiment measures the full counting portfolio on K_n with a
// balanced binary spanning tree and reports measured versus bound.
func init() {
	Register(&Spec{ID: "E1", Title: "Counting lower bound Ω(n log* n) on the complete graph", Ref: "Theorem 3.5", Run: RunE1})
	Register(&Spec{ID: "E2", Title: "Counting lower bound Ω(diameter²) on list and mesh", Ref: "Theorem 3.6", Run: RunE2})
}

func RunE1(cfg Config) (*Table, error) {
	sizes := []int{16, 64, 256, 1024}
	if cfg.Quick {
		sizes = []int{16, 64}
	}
	t := &Table{
		ID:      "E1",
		Title:   "counting on K_n: measured total delay vs Ω(n log* n) bound",
		Ref:     "Theorem 3.5",
		Columns: []string{"n", "best alg", "measured", "LB thm3.5", "LB exact", "measured/LBexact"},
	}
	var pts []stat.Point
	for _, n := range sizes {
		g := graph.Complete(n)
		tr := heapTree(n)
		best, total, _, err := countingPortfolio(g, tr, allRequests(n))
		if err != nil {
			return nil, err
		}
		lbThm := bounds.CountingLowerBoundTheorem35(n)
		lbExact := bounds.CountingLowerBoundExact(n)
		if total < lbThm {
			return nil, fmt.Errorf("E1: measured %d below theorem lower bound %d at n=%d", total, lbThm, n)
		}
		if total < lbExact {
			return nil, fmt.Errorf("E1: measured %d below exact lower bound %d at n=%d", total, lbExact, n)
		}
		t.AddRow(fmt.Sprint(n), best, fmt.Sprint(total), fmt.Sprint(lbThm),
			fmt.Sprint(lbExact), stat.Ratio(float64(total), float64(lbExact)))
		pts = append(pts, stat.Point{N: n, Cost: float64(total)})
	}
	t.AddNote("measured growth exponent (log-log slope): %.2f; the bound requires ≥ 1 (n·log* n is barely super-linear)", stat.LogLogSlope(pts))
	t.AddNote("every measured value dominates the computed lower bound, as Theorem 3.5 demands")
	return t, nil
}

// RunE2 reproduces Theorem 3.6: on a graph with diameter α the total
// counting delay is Ω(α²) — Ω(n²) on the list, Ω(n√n) on the √n×√n mesh.
// The strongest counter in the portfolio (the aggregating tree counter) is
// measured against the exact Σ_{j≤α/2} j bound.
func RunE2(cfg Config) (*Table, error) {
	listSizes := []int{32, 64, 128, 256}
	meshSides := []int{6, 8, 12, 16}
	if cfg.Quick {
		listSizes = []int{32, 64}
		meshSides = []int{6, 8}
	}
	t := &Table{
		ID:      "E2",
		Title:   "counting on high-diameter graphs vs Ω(diameter²) bound",
		Ref:     "Theorem 3.6",
		Columns: []string{"graph", "n", "diameter", "measured", "LB α²-form", "measured/LB"},
	}
	var listPts, meshPts []stat.Point
	for _, n := range listSizes {
		g := graph.Path(n)
		tr := identityPathTree(n)
		_, total, _, err := countingPortfolio(g, tr, allRequests(n))
		if err != nil {
			return nil, err
		}
		alpha := g.Diameter()
		lb := bounds.DiameterLowerBound(alpha)
		if total < lb {
			return nil, fmt.Errorf("E2: list n=%d measured %d below bound %d", n, total, lb)
		}
		t.AddRow(g.Name(), fmt.Sprint(n), fmt.Sprint(alpha), fmt.Sprint(total),
			fmt.Sprint(lb), stat.Ratio(float64(total), float64(lb)))
		listPts = append(listPts, stat.Point{N: n, Cost: float64(total)})
	}
	for _, side := range meshSides {
		g := graph.Mesh(side, side)
		tr, err := tree.BFSTree(g, 0)
		if err != nil {
			return nil, err
		}
		_, total, _, err := countingPortfolio(g, tr, allRequests(g.N()))
		if err != nil {
			return nil, err
		}
		alpha := g.Diameter()
		lb := bounds.DiameterLowerBound(alpha)
		if total < lb {
			return nil, fmt.Errorf("E2: mesh side=%d measured %d below bound %d", side, total, lb)
		}
		t.AddRow(g.Name(), fmt.Sprint(g.N()), fmt.Sprint(alpha), fmt.Sprint(total),
			fmt.Sprint(lb), stat.Ratio(float64(total), float64(lb)))
		meshPts = append(meshPts, stat.Point{N: g.N(), Cost: float64(total)})
	}
	t.AddNote("list growth exponent %.2f (paper: 2 ⇒ Ω(n²)); mesh growth exponent %.2f (paper: 1.5 ⇒ Ω(n√n))",
		stat.LogLogSlope(listPts), stat.LogLogSlope(meshPts))
	return t, nil
}
