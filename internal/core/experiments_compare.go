package core

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/stat"
	"repro/internal/tree"
)

// RunE6 reproduces Theorem 4.5 / Lemma 4.6: on every graph with a Hamilton
// path — complete graph, d-dimensional meshes, hypercubes — the arrow
// protocol on the Hamilton-path spanning tree yields C_Q = O(n), while any
// counting protocol pays Ω(n log* n); the measured portfolio pays strictly
// more. The experiment reports both sides plus their ratio as n grows.
func init() {
	Register(&Spec{ID: "E6", Title: "Queuing beats counting on Hamilton-path graphs", Ref: "Theorem 4.5, Lemma 4.6", Run: RunE6})
	Register(&Spec{ID: "E7", Title: "Queuing beats counting on perfect m-ary trees", Ref: "Theorem 4.12", Run: RunE7})
	Register(&Spec{ID: "E8", Title: "Queuing beats counting on high-diameter graphs", Ref: "Theorem 4.13", Run: RunE8})
	Register(&Spec{ID: "E9", Title: "On the star both problems cost Θ(n²)", Ref: "Conclusions", Run: RunE9})
}

func RunE6(cfg Config) (*Table, error) {
	type family struct {
		name string
		mk   func() []*graph.Graph
	}
	families := []family{
		{"complete", func() []*graph.Graph {
			if cfg.Quick {
				return []*graph.Graph{graph.Complete(32), graph.Complete(64)}
			}
			return []*graph.Graph{graph.Complete(64), graph.Complete(128), graph.Complete(256)}
		}},
		{"mesh2d", func() []*graph.Graph {
			if cfg.Quick {
				return []*graph.Graph{graph.Mesh(6, 6), graph.Mesh(8, 8)}
			}
			return []*graph.Graph{graph.Mesh(8, 8), graph.Mesh(12, 12), graph.Mesh(16, 16)}
		}},
		{"mesh3d", func() []*graph.Graph {
			if cfg.Quick {
				return []*graph.Graph{graph.Mesh(3, 3, 3), graph.Mesh(4, 4, 4)}
			}
			return []*graph.Graph{graph.Mesh(4, 4, 4), graph.Mesh(5, 5, 5), graph.Mesh(6, 6, 6)}
		}},
		{"hypercube", func() []*graph.Graph {
			if cfg.Quick {
				return []*graph.Graph{graph.Hypercube(5), graph.Hypercube(6)}
			}
			return []*graph.Graph{graph.Hypercube(6), graph.Hypercube(7), graph.Hypercube(8)}
		}},
	}
	t := &Table{
		ID:      "E6",
		Title:   "C_Q (arrow on Hamilton path) vs C_C (best counter), all nodes request",
		Ref:     "Theorem 4.5, Lemma 4.6",
		Columns: []string{"graph", "n", "C_Q arrow", "C_C best", "best alg", "C_C/C_Q", "count LB"},
	}
	for _, fam := range families {
		var ratios []float64
		for _, g := range fam.mk() {
			n := g.N()
			req := allRequests(n)
			hp, err := hamiltonPathTree(g)
			if err != nil {
				return nil, fmt.Errorf("E6 %s: %w", fam.name, err)
			}
			cq, err := runArrow(g, hp, hp.Root(), req, 1)
			if err != nil {
				return nil, err
			}
			// Counting gets its best tree: balanced binary on the
			// complete graph, BFS elsewhere.
			var ctr *tree.Tree
			if fam.name == "complete" {
				ctr = heapTree(n)
			} else {
				ctr, err = tree.BFSTree(g, 0)
				if err != nil {
					return nil, err
				}
			}
			bestName, cc, _, err := countingPortfolio(g, ctr, req)
			if err != nil {
				return nil, err
			}
			if cc <= cq {
				return nil, fmt.Errorf("E6 %s n=%d: counting %d not above queuing %d", fam.name, n, cc, cq)
			}
			lb := bounds.CountingLowerBoundTheorem35(n)
			ratio := float64(cc) / float64(cq)
			ratios = append(ratios, ratio)
			t.AddRow(g.Name(), fmt.Sprint(n), fmt.Sprint(cq), fmt.Sprint(cc),
				bestName, fmt.Sprintf("%.2f", ratio), fmt.Sprint(lb))
		}
		if last := len(ratios) - 1; last > 0 && ratios[last] < ratios[0] {
			t.AddNote("%s: C_C/C_Q ratio decreased across the sweep (%.2f → %.2f) — inspect", fam.name, ratios[0], ratios[last])
		}
	}
	t.AddNote("C_C exceeds C_Q on every Hamilton-path graph and the gap widens with n (Theorem 4.5's separation)")
	return t, nil
}

// RunE7 reproduces Theorem 4.12: on graphs whose spanning tree is a perfect
// m-ary tree, the arrow protocol on that tree costs O(n) total, below any
// counting protocol's cost.
func RunE7(cfg Config) (*Table, error) {
	type shape struct{ m, levels int }
	shapes := []shape{{2, 6}, {2, 8}, {3, 5}, {4, 4}}
	if cfg.Quick {
		shapes = []shape{{2, 5}, {3, 4}}
	}
	t := &Table{
		ID:      "E7",
		Title:   "C_Q vs C_C on perfect m-ary trees, all nodes request",
		Ref:     "Theorem 4.12",
		Columns: []string{"tree", "n", "C_Q arrow", "2×NNTSP bound", "C_C best", "best alg", "C_C/C_Q"},
	}
	for _, sh := range shapes {
		g := graph.PerfectMAryTree(sh.m, sh.levels)
		n := g.N()
		tr, err := tree.BFSTree(g, 0)
		if err != nil {
			return nil, err
		}
		req := allRequests(n)
		cq, err := runArrow(g, tr, 0, req, 1)
		if err != nil {
			return nil, err
		}
		bestName, cc, _, err := countingPortfolio(g, tr, req)
		if err != nil {
			return nil, err
		}
		if cc <= cq {
			return nil, fmt.Errorf("E7 m=%d: counting %d not above queuing %d", sh.m, cc, cq)
		}
		// Theorem 4.1 + Theorem 4.7 envelope (with the capacity-1 run the
		// envelope is multiplied by the tree degree at worst; report the
		// expanded-step bound for reference).
		envelope := 2 * bounds.QueuingUpperBoundPerfectBinary(n, tr.Height())
		t.AddRow(fmt.Sprintf("%d-ary d=%d", sh.m, tr.Height()), fmt.Sprint(n),
			fmt.Sprint(cq), fmt.Sprint(envelope), fmt.Sprint(cc), bestName,
			stat.Ratio(float64(cc), float64(cq)))
	}
	t.AddNote("queuing stays linear in n on perfect m-ary trees while counting pays the aggregation depth")
	return t, nil
}

// RunE8 reproduces Theorem 4.13: on high-diameter graphs (diameter
// Ω(n^{1/2+δ}) with a constant-degree spanning tree), counting pays
// Ω(diameter²) = Ω(n^{1+2δ}) while the arrow protocol pays O(n log n).
// The caterpillar family with spine ≈ n^{3/4} realizes δ = 1/4.
func RunE8(cfg Config) (*Table, error) {
	sizes := []int{256, 1024, 4096}
	if cfg.Quick {
		sizes = []int{256, 1024}
	}
	t := &Table{
		ID:      "E8",
		Title:   "C_Q vs C_C on the high-diameter caterpillar (spine ≈ n^{3/4})",
		Ref:     "Theorem 4.13",
		Columns: []string{"n", "diameter", "C_Q arrow", "UB O(n log n)", "C_C best", "count LB α²", "C_C/C_Q"},
	}
	var qPts, cPts []stat.Point
	for _, n := range sizes {
		g := graph.Caterpillar(n, 0.75)
		tr, err := tree.BFSTree(g, 0)
		if err != nil {
			return nil, err
		}
		req := allRequests(n)
		cq, err := runArrow(g, tr, 0, req, 1)
		if err != nil {
			return nil, err
		}
		bestName, cc, _, err := countingPortfolio(g, tr, req)
		if err != nil {
			return nil, err
		}
		_ = bestName
		alpha := g.DiameterDoubleSweep() // exact: the caterpillar is a tree
		lb := bounds.DiameterLowerBound(alpha)
		if cc < lb {
			return nil, fmt.Errorf("E8 n=%d: counting %d below diameter bound %d", n, cc, lb)
		}
		if cc <= cq {
			return nil, fmt.Errorf("E8 n=%d: counting %d not above queuing %d", n, cc, cq)
		}
		ub := 2 * bounds.QueuingUpperBoundGeneral(n) * tr.MaxDegree()
		t.AddRow(fmt.Sprint(n), fmt.Sprint(alpha), fmt.Sprint(cq), fmt.Sprint(ub),
			fmt.Sprint(cc), fmt.Sprint(lb), stat.Ratio(float64(cc), float64(cq)))
		qPts = append(qPts, stat.Point{N: n, Cost: float64(cq)})
		cPts = append(cPts, stat.Point{N: n, Cost: float64(cc)})
	}
	t.AddNote("growth exponents: queuing %.2f (paper: ≈1 up to log), counting %.2f (paper: 1+2δ = 1.5)",
		stat.LogLogSlope(qPts), stat.LogLogSlope(cPts))
	return t, nil
}

// RunE9 reproduces the conclusions' star-graph discussion: with all
// messages serialized at the hub, both counting and queuing cost Θ(n²) and
// the separation disappears.
func RunE9(cfg Config) (*Table, error) {
	sizes := []int{32, 64, 128, 256}
	if cfg.Quick {
		sizes = []int{32, 64}
	}
	t := &Table{
		ID:      "E9",
		Title:   "star graph: both problems cost Θ(n²)",
		Ref:     "Conclusions",
		Columns: []string{"n", "C_Q arrow", "C_C best", "C_C/C_Q", "n²"},
	}
	var qPts, cPts []stat.Point
	var ratios []float64
	for _, n := range sizes {
		g := graph.Star(n)
		tr, err := tree.BFSTree(g, 0) // the star itself
		if err != nil {
			return nil, err
		}
		req := allRequests(n)
		cq, err := runArrow(g, tr, 0, req, 1)
		if err != nil {
			return nil, err
		}
		_, cc, _, err := countingPortfolio(g, tr, req)
		if err != nil {
			return nil, err
		}
		ratio := float64(cc) / float64(cq)
		ratios = append(ratios, ratio)
		t.AddRow(fmt.Sprint(n), fmt.Sprint(cq), fmt.Sprint(cc),
			fmt.Sprintf("%.2f", ratio), fmt.Sprint(n*n))
		qPts = append(qPts, stat.Point{N: n, Cost: float64(cq)})
		cPts = append(cPts, stat.Point{N: n, Cost: float64(cc)})
	}
	qSlope := stat.LogLogSlope(qPts)
	cSlope := stat.LogLogSlope(cPts)
	if qSlope < 1.6 || cSlope < 1.6 {
		return nil, fmt.Errorf("E9: star growth exponents %.2f/%.2f below quadratic shape", qSlope, cSlope)
	}
	t.AddNote("growth exponents: queuing %.2f, counting %.2f — both ≈ 2 (contention dominates; no separation)", qSlope, cSlope)
	t.AddNote("the C_C/C_Q ratio stays bounded (%.2f → %.2f) instead of growing as on Hamilton-path graphs",
		ratios[0], ratios[len(ratios)-1])
	return t, nil
}
