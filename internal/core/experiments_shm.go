package core

import (
	"fmt"

	"repro/countq"
	"repro/internal/shm"
)

func init() {
	Register(&Spec{ID: "E11", Title: "Shared-memory analog: goroutine counters vs queues", Ref: "paper thesis on a real substrate", Run: RunE11})
}

// RunE11 checks the paper's thesis on a real parallel substrate: goroutines
// over shared memory. The counting structures that scale (combining,
// counting network, sharded) pay multi-location coordination per
// operation, while queuing — learning your predecessor — is a single
// atomic swap. Neither roster nor workload is hand-maintained: the
// experiment is two campaigns over the public countq registry — every
// registered counter (plus the canonical non-default variants) and every
// registered queuer — run through the canonical `ramp` scenario under
// byte-identical phase sequences and a shared seed, with deltas against a
// declared baseline (`atomic` fetch-add for counting, `swap` for queuing).
// Per-phase tail latency (p50/p99) and worker fairness are reported
// alongside the mean, because quiescently consistent counters hide their
// pathologies in averages. Every run is validated once across all phases
// (counts form a gap-free set after draining, block grants included;
// predecessors form a total order).
func RunE11(cfg Config) (*Table, error) {
	ops := 160000
	gmax := 8
	// Non-default parameterizations from the canonical per-structure
	// variant list (the coordination knobs at both ends of their ranges),
	// constructed through the public spec API. Iterating the sorted
	// registry keeps the table order deterministic.
	var variants []string
	allVariants := shm.VariantSpecs()
	for _, info := range countq.Counters() {
		variants = append(variants, allVariants[info.Name]...)
	}
	if cfg.Quick {
		ops = 8000
		gmax = 4
		variants = allVariants["sharded"]
	}
	base := countq.Workload{
		Scenario:   fmt.Sprintf("ramp?gmax=%d", gmax),
		Goroutines: gmax,
		Ops:        ops,
		Seed:       cfg.Seed,
	}
	counting := countq.Campaign{Base: base, Name: "counting"}
	for i, info := range countq.Counters() {
		if info.Name == "atomic" {
			counting.Baseline = i
		}
		counting.Entries = append(counting.Entries, countq.Entry{Counter: info.Name})
	}
	for _, spec := range variants {
		counting.Entries = append(counting.Entries, countq.Entry{Counter: spec})
	}
	queuing := countq.Campaign{Base: base, Name: "queuing"}
	for i, info := range countq.Queues() {
		if info.Name == "swap" {
			queuing.Baseline = i
		}
		queuing.Entries = append(queuing.Entries, countq.Entry{Queue: info.Name})
	}
	t := &Table{
		ID:      "E11",
		Title:   "goroutine counters vs queuing structures under the ramp scenario (validated)",
		Ref:     "paper thesis on shared memory",
		Columns: []string{"structure", "kind", "phase", "ns/op", "p50 ns", "p99 ns", "fairness", "p99 vs base"},
	}
	addRows := func(kind string, cmp *countq.Comparison) error {
		for i := range cmp.Results {
			r := &cmp.Results[i]
			for j := range r.Metrics.Phases {
				p := &r.Metrics.Phases[j]
				lat := p.CounterLat
				if kind == "queuing" {
					lat = p.QueueLat
				}
				if lat == nil {
					return fmt.Errorf("%s phase %q has no %s latency samples", r.Label, p.Name, kind)
				}
				delta := "-"
				if d := r.PhaseDeltas[j].P99Ratio; d > 0 {
					delta = fmt.Sprintf("%.2fx", d)
				}
				t.AddRow(r.Label, kind, p.Name,
					fmt.Sprintf("%.1f", p.NsPerOp()),
					fmt.Sprintf("%.0f", lat.P50Ns),
					fmt.Sprintf("%.0f", lat.P99Ns),
					fmt.Sprintf("%.2f", p.Fairness),
					delta)
			}
		}
		return nil
	}
	for _, kc := range []struct {
		kind string
		c    countq.Campaign
	}{{"counting", counting}, {"queuing", queuing}} {
		cmp, err := kc.c.Run()
		if err != nil {
			return nil, fmt.Errorf("E11 %s: %w", kc.kind, err)
		}
		if err := addRows(kc.kind, cmp); err != nil {
			return nil, fmt.Errorf("E11 %s: %w", kc.kind, err)
		}
	}
	t.AddNote("single-word counting (fetch-add) and queuing (swap) are equally cheap in shared memory; the paper's separation appears in the *scalable* structures: the counting network pays Θ(log² w) locked balancers per count and the sharded counter gives up linearizability for its throughput, while queuing never needs more than the one swap — and the ramp phases show the gap widening with contention in the tail (p99 vs base), not just the mean")
	return t, nil
}
