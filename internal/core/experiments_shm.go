package core

import (
	"fmt"

	"repro/internal/shm"
)

// RunE11 checks the paper's thesis on a real parallel substrate: goroutines
// over shared memory. The counting structures that scale (combining,
// counting network) pay multi-location coordination per operation, while
// queuing — learning your predecessor — is a single atomic swap. Every run
// is validated (counts form a permutation, predecessors form a total order).
func RunE11(cfg Config) (*Table, error) {
	opsPerG := 20000
	gs := []int{1, 2, 4, 8}
	if cfg.Quick {
		opsPerG = 2000
		gs = []int{1, 4}
	}
	t := &Table{
		ID:      "E11",
		Title:   "goroutine counters vs queuing structures (validated)",
		Ref:     "paper thesis on shared memory",
		Columns: []string{"structure", "kind", "goroutines", "ns/op"},
	}
	for _, g := range gs {
		nc, err := shm.NewNetworkCounter(8)
		if err != nil {
			return nil, err
		}
		dt, err := shm.NewDiffractingCounter(8, 0)
		if err != nil {
			return nil, err
		}
		counterRuns := []struct {
			name string
			c    shm.Counter
		}{
			{"atomic fetch-add", shm.NewAtomicCounter()},
			{"mutex counter", shm.NewMutexCounter()},
			{"flat combining", shm.NewCombiningCounter(64)},
			{"bitonic network w=8", nc},
			{"diffracting tree L=8", dt},
		}
		for _, cr := range counterRuns {
			m, err := shm.MeasureCounter(cr.name, cr.c, g, opsPerG)
			if err != nil {
				return nil, fmt.Errorf("E11 %s: %w", cr.name, err)
			}
			t.AddRow(cr.name, "counting", fmt.Sprint(g), fmt.Sprintf("%.1f", m.NsPerOp()))
		}
		queuerRuns := []struct {
			name string
			q    shm.Queuer
		}{
			{"atomic swap", shm.NewSwapQueue()},
			{"CLH-style list", shm.NewListQueue()},
			{"mutex queue", shm.NewMutexQueue()},
		}
		for _, qr := range queuerRuns {
			m, err := shm.MeasureQueuer(qr.name, qr.q, g, opsPerG)
			if err != nil {
				return nil, fmt.Errorf("E11 %s: %w", qr.name, err)
			}
			t.AddRow(qr.name, "queuing", fmt.Sprint(g), fmt.Sprintf("%.1f", m.NsPerOp()))
		}
	}
	t.AddNote("single-word counting (fetch-add) and queuing (swap) are equally cheap in shared memory; the paper's separation appears in the *scalable* structures: the counting network pays Θ(log² w) locked balancers per count, while queuing never needs more than the one swap")
	return t, nil
}
