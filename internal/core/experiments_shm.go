package core

import (
	"fmt"

	"repro/countq"
	"repro/internal/shm"
)

func init() {
	Register(&Spec{ID: "E11", Title: "Shared-memory analog: goroutine counters vs queues", Ref: "paper thesis on a real substrate", Run: RunE11})
}

// RunE11 checks the paper's thesis on a real parallel substrate: goroutines
// over shared memory. The counting structures that scale (combining,
// counting network, sharded) pay multi-location coordination per
// operation, while queuing — learning your predecessor — is a single
// atomic swap. The protocol roster is not hand-maintained: every
// implementation registered with the public countq registry (the whole
// internal/shm zoo, plus anything future packages register) is measured at
// its declared defaults, then a few non-default specs show how the
// tunables move the coordination cost. Every run is validated (counts form
// a gap-free set after draining, predecessors form a total order).
func RunE11(cfg Config) (*Table, error) {
	opsPerG := 20000
	gs := []int{1, 2, 4, 8}
	// Non-default parameterizations from the canonical per-structure
	// variant list (the coordination knobs at both ends of their ranges),
	// constructed through the public spec API. Iterating the sorted
	// registry keeps the table order deterministic.
	var variants []string
	allVariants := shm.VariantSpecs()
	for _, info := range countq.Counters() {
		variants = append(variants, allVariants[info.Name]...)
	}
	if cfg.Quick {
		opsPerG = 2000
		gs = []int{1, 4}
		variants = allVariants["sharded"]
	}
	t := &Table{
		ID:      "E11",
		Title:   "goroutine counters vs queuing structures (validated)",
		Ref:     "paper thesis on shared memory",
		Columns: []string{"structure", "kind", "goroutines", "ns/op"},
	}
	for _, g := range gs {
		for _, info := range countq.Counters() {
			c, err := info.New(countq.Options{})
			if err != nil {
				return nil, fmt.Errorf("E11 %s: %w", info.Name, err)
			}
			m, err := shm.MeasureCounter(info.Name, c, g, opsPerG)
			if err != nil {
				return nil, fmt.Errorf("E11 %s: %w", info.Name, err)
			}
			t.AddRow(info.Name, "counting", fmt.Sprint(g), fmt.Sprintf("%.1f", m.NsPerOp()))
		}
		for _, spec := range variants {
			c, err := countq.NewCounter(spec)
			if err != nil {
				return nil, fmt.Errorf("E11 %s: %w", spec, err)
			}
			m, err := shm.MeasureCounter(spec, c, g, opsPerG)
			if err != nil {
				return nil, fmt.Errorf("E11 %s: %w", spec, err)
			}
			t.AddRow(spec, "counting", fmt.Sprint(g), fmt.Sprintf("%.1f", m.NsPerOp()))
		}
		for _, info := range countq.Queues() {
			q, err := info.New(countq.Options{})
			if err != nil {
				return nil, fmt.Errorf("E11 %s: %w", info.Name, err)
			}
			m, err := shm.MeasureQueuer(info.Name, q, g, opsPerG)
			if err != nil {
				return nil, fmt.Errorf("E11 %s: %w", info.Name, err)
			}
			t.AddRow(info.Name, "queuing", fmt.Sprint(g), fmt.Sprintf("%.1f", m.NsPerOp()))
		}
	}
	t.AddNote("single-word counting (fetch-add) and queuing (swap) are equally cheap in shared memory; the paper's separation appears in the *scalable* structures: the counting network pays Θ(log² w) locked balancers per count and the sharded counter gives up linearizability for its throughput, while queuing never needs more than the one swap")
	return t, nil
}
