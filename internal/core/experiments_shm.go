package core

import (
	"fmt"

	"repro/countq"
	"repro/internal/shm"
)

func init() {
	Register(&Spec{ID: "E11", Title: "Shared-memory analog: goroutine counters vs queues", Ref: "paper thesis on a real substrate", Run: RunE11})
}

// RunE11 checks the paper's thesis on a real parallel substrate: goroutines
// over shared memory. The counting structures that scale (combining,
// counting network, sharded) pay multi-location coordination per
// operation, while queuing — learning your predecessor — is a single
// atomic swap. Neither roster nor workload is hand-maintained: every
// implementation registered with the public countq registry (the whole
// internal/shm zoo, plus anything future packages register) runs the
// canonical `ramp` scenario — contention doubling 1 → gmax through the
// phased driver — and a few non-default specs show how the tunables move
// the coordination cost. Per-phase tail latency (p50/p99) and worker
// fairness are reported alongside the mean, because quiescently
// consistent counters hide their pathologies in averages. Every run is
// validated once across all phases (counts form a gap-free set after
// draining, block grants included; predecessors form a total order).
func RunE11(cfg Config) (*Table, error) {
	ops := 160000
	gmax := 8
	// Non-default parameterizations from the canonical per-structure
	// variant list (the coordination knobs at both ends of their ranges),
	// constructed through the public spec API. Iterating the sorted
	// registry keeps the table order deterministic.
	var variants []string
	allVariants := shm.VariantSpecs()
	for _, info := range countq.Counters() {
		variants = append(variants, allVariants[info.Name]...)
	}
	if cfg.Quick {
		ops = 8000
		gmax = 4
		variants = allVariants["sharded"]
	}
	scenario := fmt.Sprintf("ramp?gmax=%d", gmax)
	t := &Table{
		ID:      "E11",
		Title:   "goroutine counters vs queuing structures under the ramp scenario (validated)",
		Ref:     "paper thesis on shared memory",
		Columns: []string{"structure", "kind", "phase", "ns/op", "p50 ns", "p99 ns", "fairness"},
	}
	run := func(kind string, w countq.Workload) error {
		w.Scenario, w.Goroutines, w.Ops, w.Seed = scenario, gmax, ops, cfg.Seed
		m, err := countq.Run(w)
		if err != nil {
			return err
		}
		for i := range m.Phases {
			p := &m.Phases[i]
			lat := p.CounterLat
			if kind == "queuing" {
				lat = p.QueueLat
			}
			if lat == nil {
				return fmt.Errorf("phase %q has no %s latency samples", p.Name, kind)
			}
			t.AddRow(w.Counter+w.Queue, kind, p.Name,
				fmt.Sprintf("%.1f", p.NsPerOp()),
				fmt.Sprintf("%.0f", lat.P50Ns),
				fmt.Sprintf("%.0f", lat.P99Ns),
				fmt.Sprintf("%.2f", p.Fairness))
		}
		return nil
	}
	for _, info := range countq.Counters() {
		if err := run("counting", countq.Workload{Counter: info.Name}); err != nil {
			return nil, fmt.Errorf("E11 %s: %w", info.Name, err)
		}
	}
	for _, spec := range variants {
		if err := run("counting", countq.Workload{Counter: spec}); err != nil {
			return nil, fmt.Errorf("E11 %s: %w", spec, err)
		}
	}
	for _, info := range countq.Queues() {
		if err := run("queuing", countq.Workload{Queue: info.Name}); err != nil {
			return nil, fmt.Errorf("E11 %s: %w", info.Name, err)
		}
	}
	t.AddNote("single-word counting (fetch-add) and queuing (swap) are equally cheap in shared memory; the paper's separation appears in the *scalable* structures: the counting network pays Θ(log² w) locked balancers per count and the sharded counter gives up linearizability for its throughput, while queuing never needs more than the one swap — and the ramp phases show the gap widening with contention in the tail (p99), not just the mean")
	return t, nil
}
