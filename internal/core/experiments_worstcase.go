package core

import (
	"fmt"
	"math/rand"

	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/tree"
)

// RunE15 approximates the max-over-request-sets in the paper's complexity
// definitions (Equations 1 and 3): C(alg, G) is the worst case over R ⊆ V,
// which no single workload exhibits. A seeded hill-climbing search flips
// membership bits to drive the total delay up, for both the arrow protocol
// and the tree counter, and reports how much worse the found sets are than
// the all-nodes workload the other experiments use.
func init() {
	Register(&Spec{ID: "E15", Title: "Adversarial request sets via hill climbing", Ref: "extension: the max over R in Eq. (1)/(3)", Run: RunE15})
}

func RunE15(cfg Config) (*Table, error) {
	iters := 400
	if cfg.Quick {
		iters = 80
	}
	t := &Table{
		ID:      "E15",
		Title:   "adversarial request sets: hill-climbed C(alg,G) vs all-request",
		Ref:     "extension: the max over R in Eq. (1)/(3)",
		Columns: []string{"graph", "alg", "all-request", "worst found", "|R| found", "worst/all"},
	}
	shapes := []struct {
		name string
		g    *graph.Graph
	}{
		{"path(32)", graph.Path(32)},
		{"mesh(6x6)", graph.Mesh(6, 6)},
	}
	worstRatio := 1.0
	for _, sh := range shapes {
		n := sh.g.N()
		var arrowTree *tree.Tree
		var err error
		if order, herr := graph.HamiltonPath(sh.g); herr == nil {
			arrowTree, err = tree.PathTree(order)
		} else {
			arrowTree, err = tree.BFSTree(sh.g, 0)
		}
		if err != nil {
			return nil, err
		}
		bfs, err := tree.BFSTree(sh.g, 0)
		if err != nil {
			return nil, err
		}

		// Start the queue tail in the middle of the spanning tree: with
		// the tail at a path endpoint every request set costs at most
		// n−1 (tours from an endpoint are monotone), so the adversarial
		// structure of Lemma 4.3 — zig-zag sets with Fibonacci-growing
		// legs — only exists for interior tails.
		tail := arrowTree.BFSOrder()[arrowTree.N()/2]
		evalArrow := func(req []bool) (int, error) {
			return runArrow(sh.g, arrowTree, tail, req, 1)
		}
		evalCount := func(req []bool) (int, error) {
			tc, err := counting.NewTreeCount(bfs, req)
			if err != nil {
				return 0, err
			}
			res, err := counting.Run(sh.g, tc, 1)
			if err != nil {
				return 0, err
			}
			return res.TotalDelay, nil
		}
		for _, alg := range []struct {
			name string
			eval func([]bool) (int, error)
		}{{"arrow", evalArrow}, {"treecount", evalCount}} {
			all, err := alg.eval(allRequests(n))
			if err != nil {
				return nil, err
			}
			req, worst, err := hillClimbRequests(n, iters, cfg.Seed, alg.eval)
			if err != nil {
				return nil, err
			}
			if worst < all {
				// The climber always evaluates the all-request start,
				// so it can never do worse.
				return nil, fmt.Errorf("E15: search result %d below all-request %d", worst, all)
			}
			size := 0
			for _, b := range req {
				if b {
					size++
				}
			}
			ratio := float64(worst) / float64(all)
			if ratio > worstRatio {
				worstRatio = ratio
			}
			t.AddRow(sh.name, alg.name, fmt.Sprint(all), fmt.Sprint(worst),
				fmt.Sprint(size), fmt.Sprintf("%.2f", ratio))
		}
	}
	t.AddNote("worst found/all-request reaches %.2f: sparse zig-zag sets around an interior tail force long nearest-neighbour legs (the structure behind Lemma 4.3's 3n bound), so all-request under-reports C_Q(alg,G)", worstRatio)
	return t, nil
}

// hillClimbRequests maximizes eval over request vectors by randomized
// single-bit hill climbing with restarts, starting from the all-request
// vector. Deterministic for a given seed.
func hillClimbRequests(n, iters int, seed int64, eval func([]bool) (int, error)) ([]bool, int, error) {
	rng := rand.New(rand.NewSource(seed))
	best := allRequests(n)
	bestScore, err := eval(best)
	if err != nil {
		return nil, 0, err
	}
	cur := append([]bool(nil), best...)
	curScore := bestScore
	sinceImprove := 0
	for i := 0; i < iters; i++ {
		cand := append([]bool(nil), cur...)
		// Flip one to three random bits.
		for f := 0; f <= rng.Intn(3); f++ {
			b := rng.Intn(n)
			cand[b] = !cand[b]
		}
		score, err := eval(cand)
		if err != nil {
			return nil, 0, err
		}
		if score >= curScore {
			cur, curScore = cand, score
			if score > bestScore {
				best = append([]bool(nil), cand...)
				bestScore = score
				sinceImprove = 0
				continue
			}
		}
		sinceImprove++
		if sinceImprove > iters/4 {
			// Restart from a random half-density vector.
			cur = make([]bool, n)
			for v := range cur {
				cur[v] = rng.Intn(2) == 0
			}
			if curScore, err = eval(cur); err != nil {
				return nil, 0, err
			}
			sinceImprove = 0
		}
	}
	return best, bestScore, nil
}
