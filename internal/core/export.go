package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strings"
)

// CSV renders the table as RFC-4180 CSV (columns, then rows; notes become
// trailing comment-style rows prefixed with "#note").
func (t *Table) CSV() (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write(t.Columns); err != nil {
		return "", err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	for _, n := range t.Notes {
		if err := w.Write([]string{"#note", n}); err != nil {
			return "", err
		}
	}
	w.Flush()
	return b.String(), w.Error()
}

// JSON renders the table as a single JSON object.
func (t *Table) JSON() (string, error) {
	out, err := json.MarshalIndent(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Ref     string     `json:"ref"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Ref, t.Columns, t.Rows, t.Notes}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Markdown renders the table as a GitHub-style markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s (%s)\n\n", t.ID, t.Title, t.Ref)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// Format renders the table in the named format: "text" (default), "csv",
// "json" or "markdown".
func (t *Table) Format(format string) (string, error) {
	switch format {
	case "", "text":
		return t.Render(), nil
	case "csv":
		return t.CSV()
	case "json":
		return t.JSON()
	case "markdown", "md":
		return t.Markdown(), nil
	default:
		return "", fmt.Errorf("core: unknown format %q", format)
	}
}
