package core

import (
	"fmt"
	"math/rand"

	"repro/internal/arrow"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stat"
	"repro/internal/tree"
)

// RunE16 takes up the paper's closing open question: "There are other
// coordination problems that require the formation of a total order, such
// as distributed addition [5]. It would be interesting to compare the
// inherent delays imposed by different coordination problems." The same
// request schedule is run through three coordination problems on the same
// spanning tree: queuing (arrow), counting (combining tree, unit amounts)
// and addition (combining tree, random amounts) — all validated.
func init() {
	Register(&Spec{ID: "E16", Title: "Distributed addition vs counting vs queuing", Ref: "extension: conclusions' open question", Run: RunE16})
}

func RunE16(cfg Config) (*Table, error) {
	levels := []int{5, 7}
	if cfg.Quick {
		levels = []int{5}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:      "E16",
		Title:   "queuing vs counting vs distributed addition, same schedules",
		Ref:     "extension: the conclusions' open question (reference [5])",
		Columns: []string{"tree n", "ops", "queuing latency", "counting latency", "addition latency", "add/count", "count/queue"},
	}
	for _, lv := range levels {
		g := graph.PerfectMAryTree(2, lv)
		tr, err := tree.BFSTree(g, 0)
		if err != nil {
			return nil, err
		}
		n := g.N()
		for _, load := range []int{n, 2 * n} {
			horizon := 100
			qReqs := make([]arrow.Request, load)
			cReqs := make([]counting.Request, load)
			aReqs := make([]counting.AddRequest, load)
			for i := 0; i < load; i++ {
				node := rng.Intn(n)
				when := rng.Intn(horizon)
				qReqs[i] = arrow.Request{Node: node, Time: when}
				cReqs[i] = counting.Request{Node: node, Time: when}
				aReqs[i] = counting.AddRequest{Node: node, Time: when, Amount: 1 + rng.Intn(9)}
			}
			q, err := arrow.NewLongLived(tr, 0, qReqs)
			if err != nil {
				return nil, err
			}
			if _, err := sim.New(sim.Config{Graph: g}, q).Run(); err != nil {
				return nil, err
			}
			if _, err := q.Order(); err != nil {
				return nil, err
			}
			c, err := counting.NewCombining(tr, cReqs)
			if err != nil {
				return nil, err
			}
			if _, err := sim.New(sim.Config{Graph: g}, c).Run(); err != nil {
				return nil, err
			}
			if err := c.Validate(); err != nil {
				return nil, err
			}
			a, err := counting.NewAdder(tr, aReqs)
			if err != nil {
				return nil, err
			}
			if _, err := sim.New(sim.Config{Graph: g}, a).Run(); err != nil {
				return nil, err
			}
			if err := a.ValidateSums(); err != nil {
				return nil, err
			}
			ql, cl, al := q.TotalLatency(), c.TotalLatency(), a.TotalLatency()
			if cl <= ql || al <= ql {
				return nil, fmt.Errorf("E16: queuing %d not below counting %d / addition %d", ql, cl, al)
			}
			t.AddRow(fmt.Sprint(n), fmt.Sprint(load), fmt.Sprint(ql), fmt.Sprint(cl),
				fmt.Sprint(al), stat.Ratio(float64(al), float64(cl)), stat.Ratio(float64(cl), float64(ql)))
		}
	}
	t.AddNote("addition costs the same as counting under identical schedules (the addends ride along for free in the combined messages); both stay well above queuing — evidence toward the open question's expected answer")
	return t, nil
}
