package core

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/tree"
)

// CompareOn runs the full queuing-versus-counting comparison on an
// arbitrary connected graph with all nodes requesting: the arrow protocol
// on the best spanning tree available (Hamilton path when one is known,
// BFS otherwise) against the counting portfolio, with the paper's bounds
// alongside. This is the library entry point behind `countq topo`
// (the campaign comparison of shared-memory structures lives behind
// `countq compare`).
func CompareOn(g *graph.Graph) (*Table, error) {
	if !g.IsConnected() {
		return nil, fmt.Errorf("core: graph %s is not connected", g.Name())
	}
	n := g.N()
	req := allRequests(n)

	arrowTree, arrowTreeName := chooseArrowTree(g)
	cq, err := runArrow(g, arrowTree, arrowTree.Root(), req, 1)
	if err != nil {
		return nil, err
	}
	countTree, err := chooseCountingTree(g)
	if err != nil {
		return nil, err
	}
	bestName, cc, totals, err := countingPortfolio(g, countTree, req)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "CMP",
		Title:   fmt.Sprintf("queuing vs counting on %s, all %d nodes request", g.Name(), n),
		Ref:     "Sections 3–4",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("C_Q arrow on "+arrowTreeName, fmt.Sprint(cq))
	for name, total := range totals {
		t.AddRow("C_C "+name, fmt.Sprint(total))
	}
	t.AddRow("C_C best ("+bestName+")", fmt.Sprint(cc))
	t.AddRow("counting LB (Thm 3.5)", fmt.Sprint(bounds.CountingLowerBoundTheorem35(n)))
	alpha := g.DiameterDoubleSweep()
	t.AddRow("counting LB (Thm 3.6, α≥"+fmt.Sprint(alpha)+")", fmt.Sprint(bounds.DiameterLowerBound(alpha)))
	t.AddRow("C_C/C_Q", fmt.Sprintf("%.2f", float64(cc)/float64(cq)))
	return t, nil
}

// chooseArrowTree prefers a Hamilton-path spanning tree (Theorem 4.5's
// choice) and falls back to BFS.
func chooseArrowTree(g *graph.Graph) (*tree.Tree, string) {
	if hp, err := hamiltonPathTree(g); err == nil {
		return hp, "hamilton path"
	}
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		panic(err) // connected graphs always have a BFS tree
	}
	return tr, "BFS tree"
}

// chooseCountingTree gives counting its best tree: balanced binary on
// complete graphs, BFS otherwise.
func chooseCountingTree(g *graph.Graph) (*tree.Tree, error) {
	n := g.N()
	complete := true
	for v := 0; v < n && complete; v++ {
		complete = g.Degree(v) == n-1
	}
	if complete && n > 1 {
		return heapTree(n), nil
	}
	return tree.BFSTree(g, 0)
}
