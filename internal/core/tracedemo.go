package core

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/raymond"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tree"
)

// TraceDemo runs a small arrow execution and a Raymond mutual-exclusion
// execution on the same tree and renders both as text timelines — the
// library entry point behind `countq trace`.
func TraceDemo(n, k, width int, seed int64) (string, error) {
	levels := 1
	for size := 1; size < n; size = size*2 + 1 {
		levels++
	}
	g := graph.PerfectMAryTree(2, levels)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(seed))
	if k > g.N() {
		k = g.N()
	}
	nodes := rng.Perm(g.N())[:k]

	var b strings.Builder

	// Arrow: all requests at time zero; span = issue..predecessor found.
	req := make([]bool, g.N())
	for _, v := range nodes {
		req[v] = true
	}
	ap, err := arrow.New(tr, 0, req)
	if err != nil {
		return "", err
	}
	if _, err := sim.New(sim.Config{Graph: g}, ap).Run(); err != nil {
		return "", err
	}
	atl := &trace.Timeline{Title: fmt.Sprintf("arrow one-shot on %s: queue message lifetimes", g.Name())}
	for _, v := range nodes {
		atl.Add(fmt.Sprintf("op@%d", v), 0, ap.Delay(v))
	}
	b.WriteString(atl.Render(width))
	order, err := ap.Order()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "queue order: %v\n\n", order)

	// Raymond: same requests as lock acquisitions; marks at acquire.
	var reqs []raymond.Request
	for _, v := range nodes {
		reqs = append(reqs, raymond.Request{Node: v, Time: 0})
	}
	rp, _, err := raymond.Run(g, tr, 0, 2, reqs)
	if err != nil {
		return "", err
	}
	rtl := &trace.Timeline{Title: "raymond token algorithm: request → critical section"}
	for op, r := range reqs {
		rtl.Add(fmt.Sprintf("op@%d", r.Node), r.Time, rp.Released(op),
			trace.Mark{Round: rp.Acquired(op), Rune: '█'})
	}
	b.WriteString(rtl.Render(width))
	b.WriteString("█ marks the critical-section entry; sections never overlap\n")
	return b.String(), nil
}
