package core

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs the entire experiment suite in quick mode.
// Each experiment validates its own paper-derived invariants internally
// (measured ≥ lower bound, arrow ≤ 2·NNTSP, counting > queuing on the
// separating topologies, quadratic star, …) and returns an error on any
// violation, so this is the end-to-end reproduction check.
func TestAllExperimentsQuick(t *testing.T) {
	for _, spec := range Experiments() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			tbl, err := spec.Run(Config{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", spec.ID)
			}
			if tbl.ID != spec.ID {
				t.Errorf("table ID %q != spec ID %q", tbl.ID, spec.ID)
			}
			out := tbl.Render()
			if !strings.Contains(out, spec.ID) {
				t.Errorf("render missing ID: %s", out)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("%s: row width %d != %d columns", spec.ID, len(row), len(tbl.Columns))
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if Lookup("e3") == nil || Lookup("E3") == nil {
		t.Error("case-insensitive lookup failed")
	}
	if Lookup("E99") != nil {
		t.Error("phantom experiment found")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID: "T", Title: "test", Ref: "ref",
		Columns: []string{"a", "long-column"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("wide-cell", "3")
	tbl.AddNote("note %d", 42)
	out := tbl.Render()
	for _, want := range []string{"T — test (ref)", "long-column", "wide-cell", "note: note 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadHelpers(t *testing.T) {
	req := allRequests(5)
	if len(requestList(req)) != 5 {
		t.Error("allRequests not all")
	}
	ht := heapTree(10)
	if ht.N() != 10 || ht.MaxDegree() > 3 {
		t.Errorf("heap tree shape: n=%d deg=%d", ht.N(), ht.MaxDegree())
	}
	pt := identityPathTree(6)
	if pt.Height() != 5 {
		t.Errorf("path tree height = %d", pt.Height())
	}
}
