package trace

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tl := &Timeline{Title: "demo"}
	tl.Add("op0", 0, 10)
	tl.Add("op1", 5, 20, Mark{Round: 15, Rune: '*'})
	out := tl.Render(40)
	for _, want := range []string{"demo (rounds 0–20)", "op0", "op1", "*", "├", "┤"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// op0 sorts first (earlier start).
	if strings.Index(out, "op0") > strings.Index(out, "op1") {
		t.Error("rows not sorted by start")
	}
}

func TestRenderZeroLengthSpan(t *testing.T) {
	tl := &Timeline{}
	tl.Add("instant", 3, 3)
	out := tl.Render(20)
	if !strings.Contains(out, "│") {
		t.Errorf("zero-length span should render as │:\n%s", out)
	}
}

func TestRenderEmptyTimeline(t *testing.T) {
	tl := &Timeline{Title: "empty"}
	out := tl.Render(20)
	if !strings.Contains(out, "0") {
		t.Errorf("ruler missing:\n%s", out)
	}
}

func TestRenderClampsWidth(t *testing.T) {
	tl := &Timeline{}
	tl.Add("x", 0, 100)
	out := tl.Render(1) // clamped to 10
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if n := len([]rune(lines[0])); n > 15 {
		t.Errorf("width clamp failed: %d columns in %q", n, lines[0])
	}
}

func TestMaxRoundIncludesMarks(t *testing.T) {
	tl := &Timeline{}
	tl.Add("x", 0, 5, Mark{Round: 9, Rune: '!'})
	if tl.MaxRound() != 9 {
		t.Errorf("MaxRound = %d, want 9", tl.MaxRound())
	}
}

func TestScaleMonotone(t *testing.T) {
	tl := &Timeline{}
	tl.Add("a", 0, 1000)
	tl.Add("b", 500, 700)
	out := tl.Render(60)
	// Column of b's start must be to the right of a's start and left of
	// the chart end; approximate by checking rune positions.
	lines := strings.Split(out, "\n")
	var aLine, bLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "a ") {
			aLine = l
		}
		if strings.HasPrefix(l, "b ") {
			bLine = l
		}
	}
	if aLine == "" || bLine == "" {
		t.Fatalf("rows missing:\n%s", out)
	}
	if strings.IndexRune(bLine, '├') <= strings.IndexRune(aLine, '├') {
		t.Error("later span does not start further right")
	}
}
