// Package trace renders execution timelines of simulator runs as text
// Gantt charts — one row per operation, scaled to rounds — so protocol
// behavior (chasing, batching, token serialisation) can be inspected
// directly from the terminal.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one operation's visible lifetime: issued at Start, completed at
// End (inclusive bounds in rounds), with optional phase marks in between.
type Span struct {
	Label      string
	Start, End int
	Marks      []Mark // optional instants inside the span
}

// Mark is a labeled instant within a span, drawn with its own rune.
type Mark struct {
	Round int
	Rune  rune
}

// Timeline is a collection of spans to be rendered together.
type Timeline struct {
	Title string
	Spans []Span
}

// Add appends a span.
func (tl *Timeline) Add(label string, start, end int, marks ...Mark) {
	tl.Spans = append(tl.Spans, Span{Label: label, Start: start, End: end, Marks: marks})
}

// MaxRound returns the largest round across all spans.
func (tl *Timeline) MaxRound() int {
	max := 0
	for _, s := range tl.Spans {
		if s.End > max {
			max = s.End
		}
		for _, m := range s.Marks {
			if m.Round > max {
				max = m.Round
			}
		}
	}
	return max
}

// Render draws the timeline with the given chart width in characters
// (minimum 10). Rows are sorted by start round; each row shows
// `label |––––█|` with '·' before issue, '─' during the span, and mark
// runes at their instants. A round ruler is printed underneath.
func (tl *Timeline) Render(width int) string {
	if width < 10 {
		width = 10
	}
	maxRound := tl.MaxRound()
	if maxRound == 0 {
		maxRound = 1
	}
	scale := func(round int) int {
		col := round * (width - 1) / maxRound
		if col >= width {
			col = width - 1
		}
		return col
	}
	spans := append([]Span(nil), tl.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })

	labelWidth := 0
	for _, s := range spans {
		if len(s.Label) > labelWidth {
			labelWidth = len(s.Label)
		}
	}
	var b strings.Builder
	if tl.Title != "" {
		fmt.Fprintf(&b, "%s (rounds 0–%d)\n", tl.Title, maxRound)
	}
	for _, s := range spans {
		row := make([]rune, width)
		for i := range row {
			row[i] = ' '
		}
		from, to := scale(s.Start), scale(s.End)
		for i := from; i <= to; i++ {
			row[i] = '─'
		}
		row[from] = '├'
		row[to] = '┤'
		if from == to {
			row[from] = '│'
		}
		for _, m := range s.Marks {
			row[scale(m.Round)] = m.Rune
		}
		fmt.Fprintf(&b, "%-*s %s\n", labelWidth, s.Label, string(row))
	}
	// Ruler.
	ruler := make([]rune, width)
	for i := range ruler {
		ruler[i] = '.'
	}
	b.WriteString(strings.Repeat(" ", labelWidth+1))
	b.WriteString(string(ruler))
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", labelWidth+1))
	fmt.Fprintf(&b, "0%*d\n", width-1, maxRound)
	return b.String()
}
