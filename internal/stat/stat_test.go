package stat

import (
	"math"
	"testing"
)

func TestSumMaxMean(t *testing.T) {
	xs := []int{3, 1, 4, 1, 5}
	if Sum(xs) != 14 {
		t.Errorf("Sum = %d", Sum(xs))
	}
	if Max(xs) != 5 {
		t.Errorf("Max = %d", Max(xs))
	}
	if Mean(xs) != 2.8 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Sum(nil) != 0 || Max(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty-slice defaults wrong")
	}
	if Max([]int{-3, -7}) != -3 {
		t.Errorf("Max of negatives = %d", Max([]int{-3, -7}))
	}
}

func TestLogLogSlopeRecoversExponent(t *testing.T) {
	cases := []struct {
		exp  float64
		name string
	}{
		{1.0, "linear"},
		{2.0, "quadratic"},
		{1.5, "n^1.5"},
	}
	for _, c := range cases {
		var pts []Point
		for _, n := range []int{16, 32, 64, 128, 256, 512} {
			pts = append(pts, Point{N: n, Cost: 3 * math.Pow(float64(n), c.exp)})
		}
		if got := LogLogSlope(pts); math.Abs(got-c.exp) > 1e-9 {
			t.Errorf("%s: slope = %v, want %v", c.name, got, c.exp)
		}
	}
}

func TestLogLogSlopeIgnoresBadPoints(t *testing.T) {
	pts := []Point{{0, 10}, {10, 0}, {-5, 3}}
	if got := LogLogSlope(pts); got != 0 {
		t.Errorf("slope from unusable points = %v", got)
	}
	pts = append(pts, Point{10, 100}, Point{100, 10000})
	if got := LogLogSlope(pts); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("slope = %v, want 2", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != "∞" {
		t.Error("divide by zero not flagged")
	}
	if Ratio(3, 2) != "1.50" {
		t.Errorf("Ratio = %s", Ratio(3, 2))
	}
}
