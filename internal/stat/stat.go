// Package stat provides the small statistical helpers the experiment
// harness uses: summaries, ratios, and log–log slope fits for estimating
// empirical growth exponents from (n, cost) series.
package stat

import (
	"fmt"
	"math"
)

// Sum returns the sum of xs.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	return float64(Sum(xs)) / float64(len(xs))
}

// Point is one (N, Cost) measurement of a sweep.
type Point struct {
	N    int
	Cost float64
}

// LogLogSlope fits cost ≈ c·n^slope by least squares on (log n, log cost)
// and returns the slope — the empirical growth exponent. Points with
// non-positive coordinates are skipped; fewer than two usable points give
// slope 0.
func LogLogSlope(points []Point) float64 {
	var xs, ys []float64
	for _, p := range points {
		if p.N > 0 && p.Cost > 0 {
			xs = append(xs, math.Log(float64(p.N)))
			ys = append(ys, math.Log(p.Cost))
		}
	}
	if len(xs) < 2 {
		return 0
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Ratio formats a/b with two decimals, or "∞" when b is zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.2f", a/b)
}
