package bounds_test

import (
	"fmt"

	"repro/internal/bounds"
)

// ExampleLogStar shows the iterated logarithm the Theorem 3.5 bound is
// built from.
func ExampleLogStar() {
	for _, k := range []int{2, 16, 65536} {
		fmt.Println(bounds.LogStarInt(k))
	}
	// Output:
	// 1
	// 3
	// 4
}

// ExampleMinRoundsForCount evaluates Lemma 3.1 with the exact influence
// recurrence: a processor announcing count k needs at least this many
// rounds.
func ExampleMinRoundsForCount() {
	fmt.Println(bounds.MinRoundsForCount(1000000))
	// Output:
	// 4
}

// ExampleDiameterLowerBound is the Theorem 3.6 bound for a list of 101
// vertices (diameter 100).
func ExampleDiameterLowerBound() {
	fmt.Println(bounds.DiameterLowerBound(100))
	// Output:
	// 1275
}
