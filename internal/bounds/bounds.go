// Package bounds evaluates the theoretical bounds of Busch & Tirthapura as
// executable arithmetic: the tower function and log*, the influence-set
// recurrences a(t), b(t) of Lemmas 3.2–3.4 (computed exactly with big.Int),
// the counting lower bounds of Theorems 3.5 and 3.6, and the queuing upper
// bounds of Section 4. Experiments compare measured protocol costs against
// these numbers.
package bounds

import (
	"math"
	"math/big"
)

// Tow returns tow(j) = 2^2^…^2 (j twos) as a big.Int. Tow(0) = 1.
// For j ≥ 6 the value does not fit in memory; Tow panics for j > 5.
func Tow(j int) *big.Int {
	if j < 0 {
		panic("bounds: tow of negative")
	}
	if j > 5 {
		panic("bounds: tow(j) for j > 5 is astronomically large")
	}
	v := big.NewInt(1)
	for i := 0; i < j; i++ {
		if !v.IsInt64() || v.Int64() > 1<<20 {
			panic("bounds: tower exponent too large")
		}
		v = new(big.Int).Lsh(big.NewInt(1), uint(v.Int64()))
	}
	return v
}

// LogStar returns log*(k): the minimum number of times log₂ must be
// iterated, starting from k, to reach a value ≤ 1. LogStar(k ≤ 1) = 0,
// LogStar(2) = 1, LogStar(4) = 2, LogStar(16) = 3, LogStar(65536) = 4.
func LogStar(k float64) int {
	n := 0
	for k > 1 {
		k = math.Log2(k)
		n++
	}
	return n
}

// LogStarInt is LogStar on an integer argument.
func LogStarInt(k int) int { return LogStar(float64(k)) }

// Recurrence holds the exact influence-set growth values of Lemmas 3.2 and
// 3.3: a(t) bounds how many processors can affect any single processor's
// state after t rounds, b(t) how many processors any single processor can
// have affected. Both start at 1 (Fact 1).
type Recurrence struct {
	A, B []*big.Int // A[t] = a(t), B[t] = b(t)
}

// NewRecurrence iterates the recurrences
//
//	a(t+1) = a(t) + a(t)²·b(t)
//	b(t+1) = b(t)·(1 + 2·a(t))
//
// for the given number of rounds, exactly.
func NewRecurrence(rounds int) *Recurrence {
	r := &Recurrence{
		A: make([]*big.Int, rounds+1),
		B: make([]*big.Int, rounds+1),
	}
	r.A[0] = big.NewInt(1)
	r.B[0] = big.NewInt(1)
	one := big.NewInt(1)
	two := big.NewInt(2)
	for t := 0; t < rounds; t++ {
		a, b := r.A[t], r.B[t]
		// a(t+1) = a + a²b
		a2b := new(big.Int).Mul(a, a)
		a2b.Mul(a2b, b)
		r.A[t+1] = new(big.Int).Add(a, a2b)
		// b(t+1) = b(1 + 2a)
		f := new(big.Int).Mul(two, a)
		f.Add(f, one)
		r.B[t+1] = new(big.Int).Mul(b, f)
	}
	return r
}

// MinRoundsForCount returns the smallest t with a(t) ≥ k: by Lemma 3.1, any
// processor that outputs a count of k must have delay at least that t. This
// is the exact (tightest) form of the paper's lower bound; the closed form
// log*(k)/2 of Theorem 3.5 follows from a(t) ≤ tow(2t).
func MinRoundsForCount(k int64) int {
	target := big.NewInt(k)
	a := big.NewInt(1)
	b := big.NewInt(1)
	one := big.NewInt(1)
	two := big.NewInt(2)
	t := 0
	for a.Cmp(target) < 0 {
		a2b := new(big.Int).Mul(a, a)
		a2b.Mul(a2b, b)
		na := new(big.Int).Add(a, a2b)
		f := new(big.Int).Mul(two, a)
		f.Add(f, one)
		nb := new(big.Int).Mul(b, f)
		a, b = na, nb
		t++
		if t > 64 {
			break // unreachable for any int64 k; safety net
		}
	}
	return t
}

// CountingLowerBoundTheorem35 returns the additive lower bound of
// Theorem 3.5 on the total counting delay when all n processors count:
// every processor that outputs count k needs at least log*(k)/2 rounds, so
// summing over the processors with counts above n/2 gives Ω(n·log* n).
// The value returned is ⌊(Σ_{k=⌈n/2⌉}^{n} log*(k))/2⌋ — a concrete number,
// not an asymptotic class, so measurements can be compared to it. (The
// division by two is applied once to the sum, which is tighter than
// flooring each term.)
func CountingLowerBoundTheorem35(n int) int {
	total := 0
	for k := (n + 1) / 2; k <= n; k++ {
		total += LogStarInt(k)
	}
	return total / 2
}

// CountingLowerBoundExact returns the stronger lower bound obtained by using
// the exact recurrence instead of the tower closed form: the total counting
// delay is at least Σ_{k=1}^{n} MinRoundsForCount(k).
func CountingLowerBoundExact(n int) int {
	total := 0
	// MinRoundsForCount is a step function of k; advance k in blocks.
	for k := 1; k <= n; k++ {
		total += MinRoundsForCount(int64(k))
	}
	return total
}

// DiameterLowerBound returns the Theorem 3.6 lower bound on the total
// counting delay for a graph of diameter alpha when all nodes count:
// Σ_{j=1}^{⌊alpha/2⌋} j = ⌊alpha/2⌋·(⌊alpha/2⌋+1)/2 = Ω(alpha²).
func DiameterLowerBound(alpha int) int {
	h := alpha / 2
	return h * (h + 1) / 2
}

// QueuingUpperBoundList returns the Lemma 4.3 bound on the nearest-neighbour
// TSP cost on a list of n vertices: 3n. Doubling it (Theorem 4.1) bounds the
// arrow protocol's total queuing delay on a Hamilton-path spanning tree.
func QueuingUpperBoundList(n int) int { return 3 * n }

// QueuingUpperBoundPerfectBinary returns the explicit constant version of
// the Theorem 4.7 bound on the nearest-neighbour TSP cost on a perfect
// binary tree of n vertices and height d: 2d(d+1) + 8n.
func QueuingUpperBoundPerfectBinary(n, d int) int { return 2*d*(d+1) + 8*n }

// QueuingUpperBoundGeneral returns the Corollary 4.2 style bound for a
// constant-degree spanning tree on n vertices: the Rosenkrantz–Stearns–Lewis
// nearest-neighbour approximation gives O(n log n); the explicit form used
// here is n·(⌈log₂ n⌉ + 1).
func QueuingUpperBoundGeneral(n int) int {
	if n <= 0 {
		return 0
	}
	return n * (ceilLog2(n) + 1)
}

func ceilLog2(n int) int {
	l := 0
	for p := 1; p < n; p <<= 1 {
		l++
	}
	return l
}
