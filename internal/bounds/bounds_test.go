package bounds

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestTow(t *testing.T) {
	want := []int64{1, 2, 4, 16, 65536}
	for j, w := range want {
		if got := Tow(j); got.Cmp(big.NewInt(w)) != 0 {
			t.Errorf("Tow(%d) = %v, want %d", j, got, w)
		}
	}
	// tow(5) = 2^65536: check bit length rather than value.
	if got := Tow(5); got.BitLen() != 65537 {
		t.Errorf("Tow(5) bit length = %d, want 65537", Tow(5).BitLen())
	}
}

func TestTowPanics(t *testing.T) {
	for _, j := range []int{-1, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Tow(%d) did not panic", j)
				}
			}()
			Tow(j)
		}()
	}
}

func TestLogStar(t *testing.T) {
	cases := map[int]int{
		0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 16: 3, 17: 4,
		65536: 4, 65537: 5, 1 << 30: 5,
	}
	for k, want := range cases {
		if got := LogStarInt(k); got != want {
			t.Errorf("LogStar(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestLogStarMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int(a%1000000), int(b%1000000)
		if x > y {
			x, y = y, x
		}
		return LogStarInt(x) <= LogStarInt(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecurrenceBase(t *testing.T) {
	r := NewRecurrence(4)
	if r.A[0].Int64() != 1 || r.B[0].Int64() != 1 {
		t.Fatalf("base case a(0)=%v b(0)=%v", r.A[0], r.B[0])
	}
	// a(1) = 1 + 1·1 = 2; b(1) = 1·(1+2) = 3.
	if r.A[1].Int64() != 2 || r.B[1].Int64() != 3 {
		t.Errorf("a(1)=%v b(1)=%v, want 2, 3", r.A[1], r.B[1])
	}
	// a(2) = 2 + 4·3 = 14; b(2) = 3·5 = 15.
	if r.A[2].Int64() != 14 || r.B[2].Int64() != 15 {
		t.Errorf("a(2)=%v b(2)=%v, want 14, 15", r.A[2], r.B[2])
	}
}

func TestRecurrenceBelowTower(t *testing.T) {
	// Lemma 3.4: a(t), b(t) ≤ tow(2t) for t ≥ 1 (and t=2 is the largest
	// tower we can compute exactly: tow(4) = 65536; at t=3, tow(6) is too
	// big to materialize but a(3) is tiny, so check against tow(5) too).
	r := NewRecurrence(3)
	for t1 := 0; t1 <= 2; t1++ {
		tw := Tow(2 * t1)
		if r.A[t1].Cmp(tw) > 0 {
			t.Errorf("a(%d) = %v exceeds tow(%d) = %v", t1, r.A[t1], 2*t1, tw)
		}
		if r.B[t1].Cmp(tw) > 0 {
			t.Errorf("b(%d) = %v exceeds tow(%d) = %v", t1, r.B[t1], 2*t1, tw)
		}
	}
	if r.A[3].Cmp(Tow(5)) > 0 {
		t.Errorf("a(3) = %v exceeds tow(5)", r.A[3])
	}
}

func TestMinRoundsForCount(t *testing.T) {
	cases := map[int64]int{
		1:   0,
		2:   1, // a(1) = 2
		3:   2, // a(2) = 14 ≥ 3
		14:  2,
		15:  3,
		100: 3, // a(3) = 14 + 196·15 = 2954
	}
	for k, want := range cases {
		if got := MinRoundsForCount(k); got != want {
			t.Errorf("MinRoundsForCount(%d) = %d, want %d", k, got, want)
		}
	}
	// Monotone in k.
	prev := 0
	for k := int64(1); k < 100000; k *= 3 {
		r := MinRoundsForCount(k)
		if r < prev {
			t.Errorf("MinRoundsForCount not monotone at %d", k)
		}
		prev = r
	}
}

func TestCountingLowerBoundTheorem35(t *testing.T) {
	// For n = 16: counts 8..16 all have log*(k) = 3, so the bound is
	// ⌊9·3/2⌋ = 13.
	if got := CountingLowerBoundTheorem35(16); got != 13 {
		t.Errorf("LB(16) = %d, want 13", got)
	}
	// Growth: LB is Ω(n): at least n/2 · 1 for n ≥ 4.
	for _, n := range []int{8, 64, 1024, 65536} {
		if got := CountingLowerBoundTheorem35(n); got < n/2 {
			t.Errorf("LB(%d) = %d below n/2", n, got)
		}
	}
	// Super-linear coefficient kicks in past tow(4): for n beyond 65536
	// the per-op bound is ⌊5/2⌋ = 2.
	lbSmall := CountingLowerBoundTheorem35(65536)
	lbBig := CountingLowerBoundTheorem35(131072)
	if lbBig-lbSmall < 60000 {
		t.Errorf("LB increment %d too small; log* step not applied", lbBig-lbSmall)
	}
}

func TestCountingLowerBoundExact(t *testing.T) {
	// Exact bound dominates: it sums over all k and uses the un-weakened
	// recurrence.
	for _, n := range []int{4, 16, 256, 4096} {
		exact := CountingLowerBoundExact(n)
		thm := CountingLowerBoundTheorem35(n)
		if exact < thm {
			t.Errorf("exact LB %d < theorem LB %d at n=%d", exact, thm, n)
		}
	}
	// Spot value: n=2 → MinRounds(1)+MinRounds(2) = 0+1.
	if got := CountingLowerBoundExact(2); got != 1 {
		t.Errorf("exact LB(2) = %d, want 1", got)
	}
}

func TestDiameterLowerBound(t *testing.T) {
	if got := DiameterLowerBound(10); got != 15 { // 1+2+3+4+5
		t.Errorf("DiameterLB(10) = %d, want 15", got)
	}
	if got := DiameterLowerBound(0); got != 0 {
		t.Errorf("DiameterLB(0) = %d, want 0", got)
	}
	// Quadratic shape: doubling alpha roughly quadruples the bound.
	r := float64(DiameterLowerBound(2000)) / float64(DiameterLowerBound(1000))
	if r < 3.5 || r > 4.5 {
		t.Errorf("diameter LB growth ratio = %v, want ≈4", r)
	}
}

func TestQueuingUpperBounds(t *testing.T) {
	if QueuingUpperBoundList(100) != 300 {
		t.Error("list bound wrong")
	}
	if QueuingUpperBoundPerfectBinary(15, 3) != 2*3*4+8*15 {
		t.Error("perfect binary bound wrong")
	}
	if QueuingUpperBoundGeneral(8) != 8*4 {
		t.Errorf("general bound = %d, want 32", QueuingUpperBoundGeneral(8))
	}
	if QueuingUpperBoundGeneral(0) != 0 {
		t.Error("general bound at 0 wrong")
	}
}

func TestAsymptoticSeparation(t *testing.T) {
	// The paper's headline: on Hamilton-path graphs the queuing upper
	// bound 2·3n is o(counting lower bound Ω(n log* n)). log* grows so
	// slowly that the ratio steps up only when n crosses a tower value;
	// within a plateau it is flat (up to a vanishing +1 term). Check the
	// shape: the per-operation bound log*(n)/2 never decreases, and the
	// total-ratio strictly grows across a tower boundary.
	ratio := func(n int) float64 {
		return float64(CountingLowerBoundTheorem35(n)) / float64(2*QueuingUpperBoundList(n))
	}
	if r16, rBig := ratio(16), ratio(1<<20); rBig <= r16 {
		t.Errorf("LB/UB ratio did not grow: %v at n=16, %v at n=2^20", r16, rBig)
	}
	// Crossing tow(4) = 65536 doubles the per-op bound from ⌊4/2⌋ to ⌊5/2⌋.
	if rA, rB := ratio(65536), ratio(1<<18); rB <= rA {
		t.Errorf("ratio flat across tower boundary: %v then %v", rA, rB)
	}
}
