// Package queuing provides distributed queuing baselines other than the
// arrow protocol (which lives in package arrow): a central queue server
// that routes every request to a hub over the spanning tree and returns the
// identity of the predecessor operation.
//
// Comparing the central queue with the arrow protocol isolates where
// arrow's advantage comes from: both solve queuing, but the central server
// pays routing to a fixed hub plus its serialization, while arrow's path
// reversal lets concurrent requests find their predecessors near where they
// were issued.
package queuing

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Message kinds.
const (
	kindRequest = iota + 1 // A = origin
	kindGrant              // A = origin, B = predecessor
)

// Head is the pseudo-identifier reported to the first queued operation.
const Head = -1

// None marks a node without a completed operation.
const None = -2

// Central is the hub-based queuing protocol: the root of the spanning tree
// remembers the last enqueued operation and serves requests in arrival
// order.
type Central struct {
	tree     *tree.Tree
	router   *tree.Router
	requests []bool

	last  int
	pred  []int
	delay []int
}

// NewCentral prepares a central-queue run on spanning tree t.
func NewCentral(t *tree.Tree, requests []bool) (*Central, error) {
	if len(requests) != t.N() {
		return nil, fmt.Errorf("queuing: request vector has %d entries, want %d", len(requests), t.N())
	}
	c := &Central{
		tree:     t,
		router:   t.NewRouter(),
		requests: append([]bool(nil), requests...),
		last:     Head,
		pred:     make([]int, t.N()),
		delay:    make([]int, t.N()),
	}
	for i := range c.pred {
		c.pred[i] = None
		c.delay[i] = -1
	}
	return c, nil
}

// Start issues node's queuing operation at time zero.
func (c *Central) Start(env *sim.Env, node int) {
	if !c.requests[node] {
		return
	}
	root := c.tree.Root()
	if node == root {
		c.pred[node] = c.last
		c.last = node
		c.delay[node] = 0
		return
	}
	env.Send(node, c.router.NextHop(node, root), sim.Message{Kind: kindRequest, A: node})
}

// Deliver routes requests to the hub and grants back.
func (c *Central) Deliver(env *sim.Env, node int, m sim.Message) {
	root := c.tree.Root()
	switch m.Kind {
	case kindRequest:
		if node != root {
			env.Send(node, c.router.NextHop(node, root), m)
			return
		}
		pred := c.last
		c.last = m.A
		env.Send(node, c.router.NextHop(node, m.A), sim.Message{Kind: kindGrant, A: m.A, B: pred})
	case kindGrant:
		if node != m.A {
			env.Send(node, c.router.NextHop(node, m.A), m)
			return
		}
		c.pred[node] = m.B
		c.delay[node] = env.Round()
	default:
		env.Fail(fmt.Errorf("queuing: unexpected kind %d", m.Kind))
	}
}

// Pred returns the predecessor of v's operation (Head for the first), or
// None.
func (c *Central) Pred(v int) int { return c.pred[v] }

// Delay returns the completion round of v's operation, or -1.
func (c *Central) Delay(v int) int { return c.delay[v] }

// Requests reports the configured request vector.
func (c *Central) Requests() []bool { return c.requests }

// TotalDelay sums the delays of all requests.
func (c *Central) TotalDelay() int {
	total := 0
	for v, b := range c.requests {
		if b {
			total += c.delay[v]
		}
	}
	return total
}

// VerifyOrder checks that the predecessor pointers form one total order.
func (c *Central) VerifyOrder() error {
	succ := make(map[int]int)
	count := 0
	for v, b := range c.requests {
		if !b {
			continue
		}
		count++
		p := c.pred[v]
		if p == None {
			return fmt.Errorf("queuing: operation %d incomplete", v)
		}
		if _, dup := succ[p]; dup {
			return fmt.Errorf("queuing: two operations claim predecessor %d", p)
		}
		succ[p] = v
	}
	seen := 0
	for cur, ok := succ[Head]; ok; cur, ok = succ[cur] {
		seen++
	}
	if seen != count {
		return fmt.Errorf("queuing: chain covers %d of %d operations", seen, count)
	}
	return nil
}

// Run executes the central queue on graph g and verifies the total order.
func Run(g *graph.Graph, t *tree.Tree, requests []bool, capacity int) (*Central, sim.Stats, error) {
	c, err := NewCentral(t, requests)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	nw := sim.New(sim.Config{Graph: g, Capacity: capacity}, c)
	stats, err := nw.Run()
	if err != nil {
		return nil, stats, err
	}
	if err := c.VerifyOrder(); err != nil {
		return nil, stats, err
	}
	return c, stats, nil
}
