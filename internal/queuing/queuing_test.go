package queuing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/tree"
)

func reqAll(n int) []bool {
	r := make([]bool, n)
	for i := range r {
		r[i] = true
	}
	return r
}

func TestCentralQueueOrder(t *testing.T) {
	n := 8
	g := graph.Star(n)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, stats, err := Run(g, tr, reqAll(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pred(0) != Head {
		t.Errorf("hub pred = %d, want Head", c.Pred(0))
	}
	if stats.MessagesSent == 0 {
		t.Error("no messages")
	}
	if c.TotalDelay() <= 0 {
		t.Error("no delay")
	}
}

func TestCentralQueueValidation(t *testing.T) {
	g := graph.Path(4)
	order := []int{0, 1, 2, 3}
	tr, err := tree.PathTree(order)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCentral(tr, make([]bool, 3)); err == nil {
		t.Error("short request vector accepted")
	}
	// No requests: empty order is valid.
	c, _, err := Run(g, tr, make([]bool, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalDelay() != 0 {
		t.Error("phantom delay")
	}
}

func TestCentralQueuePropertyOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		b := graph.NewBuilder("rt", n)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
			b.MustAddEdge(v, parent[v])
		}
		g := b.Build()
		tr := tree.MustFromParents(0, parent)
		req := make([]bool, n)
		for i := range req {
			req[i] = rng.Intn(2) == 0
		}
		_, _, err := Run(g, tr, req, 1)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCentralQueueStarQuadratic(t *testing.T) {
	n := 33
	g := graph.Star(n)
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := Run(g, tr, reqAll(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	k := n - 1
	if c.TotalDelay() < k*k/2 {
		t.Errorf("star queue total = %d, want ≥ %d (serialization)", c.TotalDelay(), k*k/2)
	}
}
