package nntsp_test

import (
	"fmt"
	"log"

	"repro/internal/nntsp"
	"repro/internal/tree"
)

// ExampleGreedy computes the nearest-neighbour tour Lemma 4.3 reasons
// about: on a list, from an interior start, the tour zig-zags but never
// costs more than 3n.
func ExampleGreedy() {
	tr, err := tree.PathTree([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		log.Fatal(err)
	}
	tour, err := nntsp.Greedy(tr, []int{1, 6, 3}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("visit order:", tour.Order)
	fmt.Println("cost:", tour.Cost)
	// Output:
	// visit order: [3 1 6]
	// cost: 8
}

// ExampleSteinerEdges shows the lower bound any tour must pay.
func ExampleSteinerEdges() {
	tr := tree.Perfect(2, 3)
	fmt.Println(nntsp.SteinerEdges(tr, []int{3, 4}, 0))
	// Output:
	// 3
}
