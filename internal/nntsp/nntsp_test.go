package nntsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/tree"
)

func listTree(t *testing.T, n int) *tree.Tree {
	t.Helper()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	tr, err := tree.PathTree(order)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGreedyVisitsAll(t *testing.T) {
	tr := tree.Perfect(2, 4)
	requests := []int{3, 7, 8, 14, 5}
	tour, err := Greedy(tr, requests, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tr, requests, tour); err != nil {
		t.Error(err)
	}
}

func TestGreedyEmptyRequests(t *testing.T) {
	tr := tree.Perfect(2, 3)
	tour, err := Greedy(tr, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tour.Cost != 0 || len(tour.Order) != 0 {
		t.Errorf("empty tour: %+v", tour)
	}
}

func TestGreedyStartIsRequest(t *testing.T) {
	tr := listTree(t, 10)
	tour, err := Greedy(tr, []int{0, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tour.Order[0] != 0 || tour.Legs[0] != 0 {
		t.Errorf("start should be visited first for free: %+v", tour)
	}
	if tour.Cost != 5 {
		t.Errorf("cost = %d, want 5", tour.Cost)
	}
}

func TestGreedyRejectsBadInput(t *testing.T) {
	tr := listTree(t, 4)
	if _, err := Greedy(tr, []int{7}, 0); err == nil {
		t.Error("out-of-range request accepted")
	}
	if _, err := Greedy(tr, []int{1}, -1); err == nil {
		t.Error("out-of-range start accepted")
	}
}

func TestGreedyDeduplicatesRequests(t *testing.T) {
	tr := listTree(t, 6)
	tour, err := Greedy(tr, []int{3, 3, 3, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Order) != 2 {
		t.Errorf("tour visits %d, want 2", len(tour.Order))
	}
}

func TestGreedyNearestChoice(t *testing.T) {
	// On a list from position 4, requests at 2 and 7: nearest is 2.
	tr := listTree(t, 10)
	tour, err := Greedy(tr, []int{2, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tour.Order[0] != 2 {
		t.Errorf("first visit = %d, want 2 (nearest)", tour.Order[0])
	}
	if tour.Cost != 2+5 {
		t.Errorf("cost = %d, want 7", tour.Cost)
	}
}

func TestGreedyTieBreaksLow(t *testing.T) {
	tr := listTree(t, 9)
	// From 4, requests 2 and 6 are both at distance 2: pick 2.
	tour, err := Greedy(tr, []int{2, 6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tour.Order[0] != 2 {
		t.Errorf("tie broken toward %d, want 2", tour.Order[0])
	}
}

func TestSteinerEdges(t *testing.T) {
	tr := tree.Perfect(2, 4)
	// Requests at two sibling leaves under node 3: subtree edges 3-7, 3-8
	// plus the path root-1-3 = 4 edges from the root.
	if got := SteinerEdges(tr, []int{7, 8}, 0); got != 4 {
		t.Errorf("Steiner edges = %d, want 4", got)
	}
	// Start not at root: from leaf 7 to leaf 8 the Steiner subtree is the
	// path 7-3-8.
	if got := SteinerEdges(tr, []int{8}, 7); got != 2 {
		t.Errorf("Steiner edges = %d, want 2", got)
	}
	// Single vertex, start == request: no edges.
	if got := SteinerEdges(tr, []int{5}, 5); got != 0 {
		t.Errorf("Steiner edges = %d, want 0", got)
	}
}

func TestGreedySandwichedBySteiner(t *testing.T) {
	// Steiner ≤ greedy ≤ 2·Steiner·(1+log n) is loose; the sharp generic
	// facts are: greedy ≥ Steiner (must cross every Steiner edge) and
	// greedy ≥ optimal. Check greedy ≥ Steiner on random instances.
	rng := rand.New(rand.NewSource(5))
	tr := tree.Perfect(3, 4)
	for trial := 0; trial < 50; trial++ {
		var reqs []int
		for v := 0; v < tr.N(); v++ {
			if rng.Intn(3) == 0 {
				reqs = append(reqs, v)
			}
		}
		tour, err := Greedy(tr, reqs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st := SteinerEdges(tr, reqs, 0); tour.Cost < st {
			t.Errorf("greedy %d below Steiner %d", tour.Cost, st)
		}
	}
}

func TestGreedyMatchesBruteForceSmall(t *testing.T) {
	// Nearest neighbour is not optimal, but must never beat the optimum
	// and must stay within the Rosenkrantz–Stearns–Lewis log factor.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(8)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr := tree.MustFromParents(0, parent)
		k := 2 + rng.Intn(5)
		reqs := rng.Perm(n)[:k]
		tour, err := Greedy(tr, reqs, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt := BruteForceOptimal(tr, reqs, 0)
		if tour.Cost < opt {
			t.Errorf("greedy %d beat optimum %d", tour.Cost, opt)
		}
		// Rosenkrantz–Stearns–Lewis: nearest neighbour is a log k
		// approximation; with k ≤ 6 a factor 4 is comfortably safe.
		if opt > 0 && tour.Cost > 4*opt {
			t.Errorf("greedy %d far above optimum %d", tour.Cost, opt)
		}
	}
}

func TestLemma43ListBound(t *testing.T) {
	// The headline of Lemma 4.3: any nearest-neighbour tour on a list of
	// n vertices costs at most 3n, for any request set and start.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 16, 64, 256} {
		tr := listTree(t, n)
		for trial := 0; trial < 20; trial++ {
			var reqs []int
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					reqs = append(reqs, v)
				}
			}
			start := rng.Intn(n)
			tour, err := Greedy(tr, reqs, start)
			if err != nil {
				t.Fatal(err)
			}
			if tour.Cost > bounds.QueuingUpperBoundList(n) {
				t.Errorf("n=%d: tour cost %d exceeds 3n=%d", n, tour.Cost, 3*n)
			}
		}
	}
}

func TestLemma44RunInequality(t *testing.T) {
	// Verify the Fibonacci-style run growth on nearest-neighbour tours
	// over lists (the content of Lemma 4.4 / Fig. 2).
	rng := rand.New(rand.NewSource(17))
	n := 128
	tr := listTree(t, n)
	for trial := 0; trial < 50; trial++ {
		var reqs []int
		for v := 0; v < n; v++ {
			if rng.Intn(4) == 0 {
				reqs = append(reqs, v)
			}
		}
		if len(reqs) == 0 {
			continue
		}
		start := rng.Intn(n)
		tour, err := Greedy(tr, reqs, start)
		if err != nil {
			t.Fatal(err)
		}
		// On the identity-ordered list tree, vertex id == list position.
		rd := DecomposeListTour(tour.Order, start)
		if err := rd.CheckLemma44(); err != nil {
			t.Errorf("trial %d: %v (order %v from %d)", trial, err, tour.Order, start)
		}
	}
}

func TestDecomposeListTour(t *testing.T) {
	rd := DecomposeListTour([]int{5, 6, 7, 2, 1, 9}, 5)
	if len(rd.Runs) != 3 {
		t.Fatalf("runs = %v, want 3 runs", rd.Runs)
	}
	// Runs: [5 6 7], [2 1], [9]; lasts: 7, 1, 9; x = |7-5|, |1-7|, |9-1|.
	wantX := []int{2, 6, 8}
	for i, w := range wantX {
		if rd.X[i] != w {
			t.Errorf("x[%d] = %d, want %d", i, rd.X[i], w)
		}
	}
	if rd.XSum() != 16 {
		t.Errorf("XSum = %d, want 16", rd.XSum())
	}
	// Empty tour.
	if rd := DecomposeListTour(nil, 0); len(rd.Runs) != 0 || rd.XSum() != 0 {
		t.Error("empty decomposition not empty")
	}
}

func TestTheorem47PerfectBinaryLinear(t *testing.T) {
	// Theorem 4.7: nearest-neighbour tours on perfect binary trees cost
	// O(n); the explicit constant from the proof is 2d(d+1) + 8n.
	rng := rand.New(rand.NewSource(23))
	for _, levels := range []int{3, 5, 7, 9} {
		tr := tree.Perfect(2, levels)
		n, d := tr.N(), tr.Height()
		for trial := 0; trial < 10; trial++ {
			var reqs []int
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					reqs = append(reqs, v)
				}
			}
			tour, err := Greedy(tr, reqs, tr.Root())
			if err != nil {
				t.Fatal(err)
			}
			if limit := bounds.QueuingUpperBoundPerfectBinary(n, d); tour.Cost > limit {
				t.Errorf("levels=%d: tour %d exceeds bound %d", levels, tour.Cost, limit)
			}
			if err := CheckLemma49(tr, tour); err != nil {
				t.Errorf("levels=%d: %v", levels, err)
			}
		}
	}
}

func TestCheckLemma49RequiresRootStart(t *testing.T) {
	tr := tree.Perfect(2, 3)
	tour, err := Greedy(tr, []int{4, 5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLemma49(tr, tour); err == nil {
		t.Error("non-root start accepted")
	}
}

func TestDepthCosts(t *testing.T) {
	tr := tree.Perfect(2, 3) // 7 vertices, height 2
	tour, err := Greedy(tr, []int{3, 4, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	costs := DepthCosts(tr, tour)
	if len(costs) != 3 {
		t.Fatalf("depth cost slice length %d, want 3", len(costs))
	}
	total := 0
	for _, c := range costs {
		total += c
	}
	// Sum of per-vertex successor distances equals tour cost minus the
	// initial leg (the first leg has no predecessor vertex paying it).
	if total != tour.Cost-tour.Legs[0] {
		t.Errorf("depth costs sum %d, want %d", total, tour.Cost-tour.Legs[0])
	}
}

func TestGreedyPropertyTourLegal(t *testing.T) {
	// Property: on random trees and request sets, Greedy produces a tour
	// that Verify accepts and whose cost ≥ Steiner bound.
	f := func(seed int64, reqMask uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr := tree.MustFromParents(0, parent)
		var reqs []int
		for v := 0; v < n; v++ {
			if reqMask&(1<<(uint(v)%16)) != 0 && rng.Intn(2) == 0 {
				reqs = append(reqs, v)
			}
		}
		start := rng.Intn(n)
		tour, err := Greedy(tr, reqs, start)
		if err != nil {
			return false
		}
		if Verify(tr, reqs, tour) != nil {
			return false
		}
		return tour.Cost >= SteinerEdges(tr, reqs, start) || len(reqs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
