package nntsp

import (
	"testing"

	"repro/internal/tree"
)

// FuzzGreedyTour derives a random tree shape and request set from the fuzz
// input and requires that the greedy tour is well-formed (visits each
// request once, legs match tree distances) and never beats the Steiner
// lower bound.
func FuzzGreedyTour(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 2 + int(data[0])%30
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			b := byte(v)
			if v < len(data) {
				b = data[v]
			}
			parent[v] = int(b) % v
		}
		tr, err := tree.FromParents(0, parent)
		if err != nil {
			t.Fatalf("parent construction must be valid: %v", err)
		}
		var reqs []int
		for v := 0; v < n; v++ {
			idx := v % len(data)
			if data[idx]&(1<<(uint(v)%8)) != 0 {
				reqs = append(reqs, v)
			}
		}
		start := int(data[len(data)-1]) % n
		tour, err := Greedy(tr, reqs, start)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(tr, reqs, tour); err != nil {
			t.Fatal(err)
		}
		if st := SteinerEdges(tr, reqs, start); tour.Cost < st {
			t.Fatalf("tour %d below Steiner bound %d", tour.Cost, st)
		}
	})
}
