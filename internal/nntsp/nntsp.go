// Package nntsp computes nearest-neighbour traveling-salesperson tours on
// tree metrics, the combinatorial object at the heart of the paper's queuing
// upper bound: Theorem 4.1 (after Herlihy, Tirthapura and Wattenhofer) bounds
// the one-shot concurrent cost of the arrow protocol on a spanning tree T by
// twice the cost of the nearest-neighbour TSP visiting the request set on T.
//
// The package also provides the analyses the paper performs on that tour:
// the Steiner-subtree lower bound, the run decomposition of Lemma 4.4 (used
// to show the tour on a list costs at most 3n), and the per-depth cost split
// of Lemma 4.9 (used to show the tour on a perfect binary tree costs O(n)).
package nntsp

import (
	"fmt"
	"sort"

	"repro/internal/tree"
)

// Tour is the result of a nearest-neighbour TSP computation.
type Tour struct {
	Start int   // starting vertex ("root" of the tour)
	Order []int // requested vertices in visit order
	Legs  []int // Legs[i] = tree distance from previous position to Order[i]
	Cost  int   // sum of Legs
}

// Greedy computes the nearest-neighbour tour on tree t that starts at start
// and visits every vertex in requests: repeatedly travel to the closest
// unvisited requested vertex, measuring distances along the tree, breaking
// ties toward the smaller vertex id. If start itself is requested it is
// visited first at distance zero (matching the paper's convention that the
// tour begins at the root and visits all of R).
//
// The implementation runs a truncated BFS over the tree from the current
// position to the nearest unvisited request, which costs O(|R|·n) overall —
// fine for the experiment sizes (n up to a few tens of thousands).
func Greedy(t *tree.Tree, requests []int, start int) (*Tour, error) {
	n := t.N()
	if start < 0 || start >= n {
		return nil, fmt.Errorf("nntsp: start %d out of range [0,%d)", start, n)
	}
	pending := make([]bool, n)
	count := 0
	for _, r := range requests {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("nntsp: request %d out of range [0,%d)", r, n)
		}
		if !pending[r] {
			pending[r] = true
			count++
		}
	}
	tour := &Tour{Start: start, Order: make([]int, 0, count), Legs: make([]int, 0, count)}
	cur := start
	// Reusable BFS scratch.
	dist := make([]int, n)
	queue := make([]int, 0, n)
	neighbors := treeAdjacency(t)
	for count > 0 {
		next, d := nearestPending(neighbors, pending, cur, dist, &queue)
		pending[next] = false
		count--
		tour.Order = append(tour.Order, next)
		tour.Legs = append(tour.Legs, d)
		tour.Cost += d
		cur = next
	}
	return tour, nil
}

// nearestPending runs a BFS from cur over the tree adjacency and returns the
// closest vertex with pending[v] set, breaking distance ties toward the
// smaller vertex id (BFS visits neighbors in ascending order, so the first
// pending vertex found at the minimal depth has the smallest id).
func nearestPending(neighbors [][]int, pending []bool, cur int, dist []int, queue *[]int) (vertex, d int) {
	if pending[cur] {
		return cur, 0
	}
	for i := range dist {
		dist[i] = -1
	}
	q := (*queue)[:0]
	dist[cur] = 0
	q = append(q, cur)
	best, bestDist := -1, -1
	for head := 0; head < len(q); head++ {
		u := q[head]
		if bestDist >= 0 && dist[u] >= bestDist {
			break // all remaining vertices are at least as far
		}
		for _, v := range neighbors[u] {
			if dist[v] >= 0 {
				continue
			}
			dist[v] = dist[u] + 1
			if pending[v] && (bestDist < 0 || dist[v] < bestDist || (dist[v] == bestDist && v < best)) {
				best, bestDist = v, dist[v]
			}
			q = append(q, v)
		}
	}
	*queue = q
	return best, bestDist
}

// treeAdjacency expands the tree into sorted adjacency lists.
func treeAdjacency(t *tree.Tree) [][]int {
	adj := make([][]int, t.N())
	for v := 0; v < t.N(); v++ {
		if v != t.Root() {
			p := t.Parent(v)
			adj[v] = append(adj[v], p)
			adj[p] = append(adj[p], v)
		}
	}
	for _, a := range adj {
		sort.Ints(a)
	}
	return adj
}

// SteinerEdges returns the number of tree edges in the minimal subtree
// spanning start and all requested vertices. Any tour visiting all requests
// from start must traverse every one of these edges at least once, and a
// depth-first traversal traverses each at most twice, so
//
//	SteinerEdges ≤ optimal tour ≤ 2·SteinerEdges.
//
// This is the comparison baseline for the greedy tour's quality.
func SteinerEdges(t *tree.Tree, requests []int, start int) int {
	n := t.N()
	marked := make([]bool, n)
	marked[start] = true
	for _, r := range requests {
		marked[r] = true
	}
	// Re-root the tree at start (conceptually): an edge belongs to the
	// Steiner subtree iff the side of the edge away from start contains a
	// marked vertex. Discover vertices by BFS from start over the
	// undirected tree; process them in reverse discovery order so children
	// (relative to start) are handled before their parents.
	adj := treeAdjacency(t)
	type frame struct{ v, parent int }
	order := make([]frame, 0, n)
	visited := make([]bool, n)
	visited[start] = true
	order = append(order, frame{start, -1})
	for head := 0; head < len(order); head++ {
		f := order[head]
		for _, w := range adj[f.v] {
			if !visited[w] {
				visited[w] = true
				order = append(order, frame{w, f.v})
			}
		}
	}
	contains := make([]bool, n)
	edges := 0
	for i := len(order) - 1; i >= 0; i-- {
		f := order[i]
		if marked[f.v] {
			contains[f.v] = true
		}
		if f.parent >= 0 && contains[f.v] {
			edges++
			contains[f.parent] = true
		}
	}
	return edges
}

// Verify checks that the tour visits each requested vertex exactly once and
// that each leg length matches the tree distance actually traveled.
func Verify(t *tree.Tree, requests []int, tour *Tour) error {
	want := make(map[int]bool, len(requests))
	for _, r := range requests {
		want[r] = true
	}
	if len(tour.Order) != len(want) {
		return fmt.Errorf("nntsp: tour visits %d vertices, want %d", len(tour.Order), len(want))
	}
	cur := tour.Start
	cost := 0
	for i, v := range tour.Order {
		if !want[v] {
			return fmt.Errorf("nntsp: tour visits %d twice or uninvited", v)
		}
		delete(want, v)
		if d := t.Dist(cur, v); d != tour.Legs[i] {
			return fmt.Errorf("nntsp: leg %d has length %d, recorded %d", i, d, tour.Legs[i])
		}
		cost += tour.Legs[i]
		cur = v
	}
	if cost != tour.Cost {
		return fmt.Errorf("nntsp: cost %d, recorded %d", cost, tour.Cost)
	}
	return nil
}

// BruteForceOptimal returns the cost of the cheapest order to visit all
// requests from start on the tree metric, by exhaustive permutation search.
// Exponential in |requests|; only for cross-checking tiny cases in tests.
func BruteForceOptimal(t *tree.Tree, requests []int, start int) int {
	uniq := uniqueInts(requests)
	best := -1
	perm := make([]int, len(uniq))
	copy(perm, uniq)
	var rec func(k, cur, cost int)
	rec = func(k, cur, cost int) {
		if best >= 0 && cost >= best {
			return
		}
		if k == len(perm) {
			if best < 0 || cost < best {
				best = cost
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k+1, perm[k], cost+t.Dist(cur, perm[k]))
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0, start, 0)
	if best < 0 {
		best = 0
	}
	return best
}

func uniqueInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}
