package nntsp

import (
	"fmt"

	"repro/internal/tree"
)

// RunDecomposition is the structure used in the proof of Lemma 4.3 (see
// Fig. 2 of the paper): the visit order of a nearest-neighbour tour on a
// list, written as a concatenation of maximal monotone "runs". X holds the
// quantities x_1 … x_m of the proof: x_1 is the distance from the start to
// the last vertex of the first run, and x_i (i > 1) the distance between the
// last vertices of runs i-1 and i.
type RunDecomposition struct {
	Runs [][]int // list positions of each run, in visit order
	X    []int
}

// DecomposeListTour splits a tour on a list into maximal monotone runs.
// positions holds the list position of each visited vertex in visit order,
// and startPos the position of the tour's starting vertex.
func DecomposeListTour(positions []int, startPos int) *RunDecomposition {
	rd := &RunDecomposition{}
	if len(positions) == 0 {
		return rd
	}
	cur := []int{positions[0]}
	dir := 0 // +1 right, -1 left, 0 undecided
	for i := 1; i < len(positions); i++ {
		step := sign(positions[i] - positions[i-1])
		switch {
		case dir == 0 || step == dir:
			dir = step
			cur = append(cur, positions[i])
		default:
			rd.Runs = append(rd.Runs, cur)
			cur = []int{positions[i]}
			dir = step
		}
	}
	rd.Runs = append(rd.Runs, cur)
	// x_1 = d(root, v_1); x_i = d(v_{i-1}, v_i) for i > 1, distances on the
	// list metric are absolute position differences.
	prevLast := startPos
	for _, run := range rd.Runs {
		last := run[len(run)-1]
		rd.X = append(rd.X, abs(last-prevLast))
		prevLast = last
	}
	return rd
}

// CheckLemma44 verifies the growth inequality of Lemma 4.4 on a
// nearest-neighbour run decomposition: x_i ≥ x_{i-1} + x_{i-2} for i ≥ 3
// (1-based as in the paper). A violation means the tour was not produced by
// the nearest-neighbour rule on a list.
func (rd *RunDecomposition) CheckLemma44() error {
	for i := 2; i < len(rd.X); i++ {
		if rd.X[i] < rd.X[i-1]+rd.X[i-2] {
			return fmt.Errorf("nntsp: run inequality violated at i=%d: x=%v", i+1, rd.X)
		}
	}
	return nil
}

// XSum returns x_1 + … + x_m, the tour-cost expression used in Lemma 4.3.
func (rd *RunDecomposition) XSum() int {
	s := 0
	for _, x := range rd.X {
		s += x
	}
	return s
}

// DepthCosts computes, for a tour on a rooted tree, the per-depth cost sums
// cost(ℓ) of Lemma 4.9: cost(v) is the tree distance from v to its successor
// in the visit order (0 for the final vertex), and cost(ℓ) sums cost(v) over
// visited vertices at depth ℓ. The returned slice has length Height()+1.
func DepthCosts(t *tree.Tree, tour *Tour) []int {
	costs := make([]int, t.Height()+1)
	for i, v := range tour.Order {
		var c int
		if i+1 < len(tour.Order) {
			c = tour.Legs[i+1]
		}
		costs[t.Depth(v)] += c
	}
	return costs
}

// CheckLemma49 verifies the per-depth budget of Lemma 4.9 for a
// nearest-neighbour tour that starts at the root of a perfect binary tree:
// cost(ℓ) ≤ 4·n·2^ℓ/2^d + 2d for every depth ℓ, where d is the tree height.
func CheckLemma49(t *tree.Tree, tour *Tour) error {
	if tour.Start != t.Root() {
		return fmt.Errorf("nntsp: Lemma 4.9 applies to tours starting at the root")
	}
	d := t.Height()
	n := t.N()
	costs := DepthCosts(t, tour)
	for l, c := range costs {
		budget := 4*n*(1<<uint(l))/(1<<uint(d)) + 2*d
		if c > budget {
			return fmt.Errorf("nntsp: depth %d cost %d exceeds budget %d", l, c, budget)
		}
	}
	return nil
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
