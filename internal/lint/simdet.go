package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SimDetAnalyzer proves the simulator's determinism claim structurally:
// the engine's correctness story is byte-identical golden traces, which
// holds only if nothing reachable from the round loop consults a clock,
// an unseeded random source, map iteration order, or the goroutine
// scheduler. Roots are Network.Step (when analyzing internal/sim itself)
// and every method of an in-package type implementing the protocol
// surfaces — sim.Protocol/Ticker Start/Deliver/Tick and
// sim.BridgeProtocol/BridgeTicker Start/Issue/Deliver/Tick — so each
// protocol package is audited where its code lives. Traversal follows
// the CHA call graph and stops at //countq:role-annotated functions:
// the role annotation marks the boundary where the deterministic core
// hands a result to the concurrent transport (grant rings, completion
// channels), and the transport's own discipline is ringrole's job.
//
// Banned inside the deterministic region:
//
//   - time.Now/Since/Until/Sleep/After/AfterFunc/Tick/NewTimer/NewTicker
//   - package-level math/rand and math/rand/v2 calls (the global source
//     is seeded per process; methods on an explicitly seeded *rand.Rand
//     are fine — the seed is part of the trace's identity)
//   - ranging over a map (iteration order is deliberately randomized)
//   - go statements, select statements, channel sends and receives
//     (scheduling order would leak into the trace)
var SimDetAnalyzer = &Analyzer{
	Name: "simdet",
	Doc: "functions reachable from Network.Step and the protocol methods " +
		"(Protocol/BridgeProtocol Start/Issue/Deliver/Tick) must be deterministic: no clock " +
		"reads, no unseeded rand, no map iteration, no go/select/channel operations — golden " +
		"traces must stay byte-identical by construction",
	Run: runSimDet,
}

// simRootSpecs maps each sim interface to the method names that enter
// the deterministic region through it.
var simRootSpecs = []struct {
	iface   string
	methods []string
}{
	{"Protocol", []string{"Start", "Deliver"}},
	{"Ticker", []string{"Tick"}},
	{"Scheduler", []string{"PendingUntil"}},
	{"BridgeProtocol", []string{"Start", "Issue", "Deliver"}},
	{"BridgeTicker", []string{"Tick"}},
}

func runSimDet(pass *Pass) error {
	sim := importedPkg(pass.Pkg, simPath)
	if sim == nil {
		return nil
	}
	g := packageCallGraph(pass)

	// Collect roots: interface-implementation methods declared in this
	// package, plus the engine's own Step when analyzing internal/sim.
	roots := make(map[*types.Func]string)
	for _, spec := range simRootSpecs {
		iface := scopeInterface(sim, spec.iface)
		if iface == nil {
			continue
		}
		for _, impl := range implementations(pass.Pkg, iface) {
			for _, m := range spec.methods {
				fn := methodOn(pass.Pkg, impl, m)
				if fn == nil || g.decls[fn] == nil {
					continue
				}
				if _, ok := roots[fn]; !ok {
					roots[fn] = implName(impl) + "." + m + " (sim." + spec.iface + ")"
				}
			}
		}
	}
	if pass.Pkg.Path() == simPath {
		if nw, ok := pass.Pkg.Scope().Lookup("Network").(*types.TypeName); ok {
			if step := methodOn(pass.Pkg, types.NewPointer(nw.Type()), "Step"); step != nil && g.decls[step] != nil {
				roots[step] = "Network.Step"
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// BFS the deterministic region: in-package declared functions
	// reachable from a root without crossing a //countq:role boundary.
	region := make(map[*types.Func]string) // fn -> root label
	var queue []*types.Func
	for fn, label := range roots {
		if g.roleAnnotated(fn) {
			continue
		}
		region[fn] = label
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range g.callees(fn) {
			if g.decls[callee] == nil {
				continue // cross-package: no body here; its own package audits it
			}
			if _, seen := region[callee]; seen {
				continue
			}
			if g.roleAnnotated(callee) {
				continue // transport boundary
			}
			region[callee] = region[fn]
			queue = append(queue, callee)
		}
	}

	for fn, root := range region {
		checkDeterministic(pass, g.decls[fn], root)
	}
	return nil
}

// nondetTimeFuncs are the package-level time functions that read the
// wall clock or arm runtime timers.
var nondetTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// checkDeterministic flags every nondeterministic construct in one
// declaration of the region.
func checkDeterministic(pass *Pass, fd *ast.FuncDecl, root string) {
	if fd == nil {
		return
	}
	name := fd.Name.Name
	info := pass.Info
	ast.Inspect(fd, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "%s: go statement in a function reachable from %s — goroutine interleaving would leak scheduling order into the golden trace", name, root)
		case *ast.SelectStmt:
			pass.Reportf(x.Pos(), "%s: select in a function reachable from %s — case choice is scheduler-dependent, so the trace stops being reproducible", name, root)
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "%s: channel send in a function reachable from %s — channel timing is scheduler-dependent; hand results across the //countq:role boundary instead", name, root)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pass.Reportf(x.Pos(), "%s: channel receive in a function reachable from %s — channel timing is scheduler-dependent; hand results across the //countq:role boundary instead", name, root)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "%s: map iteration in a function reachable from %s — Go randomizes map order per run, so the trace diverges; iterate a sorted or index-ordered slice instead", name, root)
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, x)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && nondetTimeFuncs[fn.Name()] {
					pass.Reportf(x.Pos(), "%s: time.%s in a function reachable from %s — the wall clock is nondeterministic; simulated time must come from the round counter", name, fn.Name(), root)
				}
			case "math/rand", "math/rand/v2":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					pass.Reportf(x.Pos(), "%s: %s.%s in a function reachable from %s — the global source's sequence is process-wide state; draw from an explicitly seeded *rand.Rand owned by the model", name, fn.Pkg().Name(), fn.Name(), root)
				}
			}
		}
		return true
	})
}
