// Package lint is countqlint: a suite of repo-specific static analyzers
// that prove, at compile time, the invariants the runtime gates
// (countq/alloc_test.go's AllocsPerRun checks, the registry conformance
// suite) can only spot-check — hot-path allocation freedom, registry
// param/capability declarations that match the constructors, atomics that
// are never mixed with plain access or copied by value, and context
// discipline on blocking session methods.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so each analyzer's Run is a drop-in go/analysis pass;
// the façade exists because this repository builds with the standard
// library alone. Packages are loaded the way unitchecker drives go vet:
// `go list -export -deps -json` enumerates the import graph and hands us
// gc export data for every dependency, and only the target packages are
// parsed and typechecked from source (see load.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant checker, shaped like
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and -analyzers selections.
	Name string
	// Doc is the one-paragraph description `countqlint -list` prints.
	Doc string
	// Run reports the analyzer's findings for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding before position resolution.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is one resolved finding, the unit of human-readable and -json
// output (file/line/analyzer/message, machine-consumable like the
// benchjson artifacts).
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzers returns the countqlint suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotPathAnalyzer,
		RegistryParamsAnalyzer,
		AtomicFieldAnalyzer,
		CtxDisciplineAnalyzer,
		RingRoleAnalyzer,
		GrantLifeAnalyzer,
		SimDetAnalyzer,
	}
}

// Run applies each analyzer to each package and returns every finding,
// sorted by file, line, column and analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				out = append(out, Finding{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
