package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// countqPath is the import path of the public registry package whose
// Register* calls the analyzer verifies.
const countqPath = "repro/countq"

// optionGetters are the countq.Options methods that read a parameter by
// key; their first argument is the spec key the constructor consumes.
var optionGetters = map[string]bool{
	"Int": true, "Int64": true, "Float64": true, "Duration": true,
	"String": true, "Bool": true, "Lookup": true,
}

// RegistryParamsAnalyzer proves the registry declarations honest: every
// RegisterStructure/RegisterCounter/RegisterQueue call's declared Params
// must exactly match the option keys its constructor reads through the
// Options getters (drift in either direction is an error — an undeclared
// key is rejected before New runs, a declared-but-unread key documents a
// knob that does nothing), and declared Caps must be backed by the session
// types the structure's NewSession actually returns.
var RegistryParamsAnalyzer = &Analyzer{
	Name: "registryparams",
	Doc: "Register{Structure,Counter,Queue} declarations must match reality: Params exactly the " +
		"option keys the constructor reads, Caps exactly the capability interfaces the returned " +
		"sessions implement (CapHandle is informational and exempt; a capability whose operation " +
		"kind the structure does not serve is exempt from the must-declare direction)",
	Run: runRegistryParams,
}

func runRegistryParams(pass *Pass) error {
	countq := importedPkg(pass.Pkg, countqPath)
	if countq == nil {
		return nil // package doesn't touch the registry
	}
	decls := funcDecls(pass.Files, pass.Info)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != countqPath {
				return true
			}
			switch fn.Name() {
			case "RegisterStructure", "RegisterCounter", "RegisterQueue":
			default:
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			info := resolveComposite(pass.Files, pass.Info, call.Args[0])
			if info == nil {
				pass.Reportf(call.Pos(), "%s argument is not statically resolvable to a composite literal; the analyzer cannot verify its Params/Caps declarations", fn.Name())
				return true
			}
			checkRegistration(pass, countq, decls, fn.Name(), call, info)
			return true
		})
	}
	return nil
}

// infoField finds a field's value in the (possibly positional) Info
// composite literal.
func infoField(pass *Pass, lit *ast.CompositeLit, name string) ast.Expr {
	st, ok := pass.Info.TypeOf(lit).Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
				return kv.Value
			}
		}
	}
	// Positional form: match by field index.
	for i, el := range lit.Elts {
		if _, ok := el.(*ast.KeyValueExpr); ok {
			return nil
		}
		if i < st.NumFields() && st.Field(i).Name() == name {
			return el
		}
	}
	return nil
}

func checkRegistration(pass *Pass, countq *types.Package, decls map[*types.Func]*ast.FuncDecl, regName string, call *ast.CallExpr, lit *ast.CompositeLit) {
	structName := "?"
	if nameExpr := infoField(pass, lit, "Name"); nameExpr != nil {
		if s, ok := constString(pass.Info, nameExpr); ok {
			structName = s
		}
	}

	// Declared params: the ParamInfo literals' Name fields.
	declared := make(map[string]ast.Expr)
	if paramsExpr := infoField(pass, lit, "Params"); paramsExpr != nil {
		plist := resolveComposite(pass.Files, pass.Info, paramsExpr)
		if plist == nil {
			pass.Reportf(paramsExpr.Pos(), "%s %q: Params is not statically resolvable to its []ParamInfo literal", regName, structName)
			return
		}
		for _, el := range plist.Elts {
			pl, ok := unparen(el).(*ast.CompositeLit)
			if !ok {
				continue
			}
			nameExpr := infoField(pass, pl, "Name")
			if nameExpr == nil {
				continue
			}
			if key, ok := constString(pass.Info, nameExpr); ok {
				declared[key] = nameExpr
			}
		}
	}

	// Keys read: walk the constructor, following same-package calls that
	// the Options value flows into (helper closures like parseCombine,
	// variadic key helpers like requireAtLeast1).
	newExpr := infoField(pass, lit, "New")
	if newExpr == nil {
		return
	}
	read := make(map[string]ast.Node)
	if body, param := constructorBody(pass, decls, newExpr); body != nil && param != nil {
		collectOptionKeys(pass, decls, body, param, make(map[types.Object]bool), read, make(map[ast.Node]bool), 4)
	}

	for key, site := range read {
		if _, ok := declared[key]; !ok {
			pass.Reportf(site.Pos(), "%s %q: constructor reads option key %q that Params does not declare (specs setting it are rejected before New runs)", regName, structName, key)
		}
	}
	var unread []string
	for key := range declared {
		if _, ok := read[key]; !ok {
			unread = append(unread, key)
		}
	}
	sort.Strings(unread)
	for _, key := range unread {
		pass.Reportf(declared[key].Pos(), "%s %q: declared param %q is never read by the constructor (drift: the knob does nothing)", regName, structName, key)
	}

	if regName == "RegisterStructure" {
		checkCaps(pass, countq, decls, structName, lit)
	}
}

// constructorBody resolves the New field to a function body plus its
// Options parameter object.
func constructorBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, newExpr ast.Expr) (*ast.BlockStmt, types.Object) {
	var typ *ast.FuncType
	var body *ast.BlockStmt
	if fl := resolveFuncLit(pass.Files, pass.Info, newExpr); fl != nil {
		typ, body = fl.Type, fl.Body
	} else if fn := calleeStaticFunc(pass.Info, newExpr); fn != nil {
		if fd := decls[fn]; fd != nil {
			typ, body = fd.Type, fd.Body
		}
	}
	if typ == nil || body == nil || len(typ.Params.List) == 0 {
		return nil, nil
	}
	for _, field := range typ.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil || !isOptionsType(t) {
			continue
		}
		if len(field.Names) > 0 {
			return body, pass.Info.Defs[field.Names[0]]
		}
	}
	return nil, nil
}

// calleeStaticFunc resolves an expression naming a declared function.
func calleeStaticFunc(info *types.Info, e ast.Expr) *types.Func {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		f, _ := info.Uses[x].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[x.Sel].(*types.Func)
		return f
	}
	return nil
}

// isOptionsType recognizes countq.Options and *countq.Options.
func isOptionsType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == countqPath && named.Obj().Name() == "Options"
}

// collectOptionKeys gathers every spec key the function reads from the
// options parameter: getter calls with constant keys directly, plus — one
// hop at a time, depth-bounded — any same-package function or local
// closure the options value is passed into. A helper that reads keys
// arriving through its own parameters (requireAtLeast1's variadic keys)
// reports them via the constant strings at its call site. getters holds
// method values peeled off the options parameter (`g := o.Int`, or o.Int
// passed into a helper's func-typed parameter) — calling one reads a key
// exactly like the selector form.
func collectOptionKeys(pass *Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, opts types.Object, getters map[types.Object]bool, read map[string]ast.Node, visited map[ast.Node]bool, depth int) bool {
	if depth == 0 || visited[body] {
		return false
	}
	visited[body] = true
	// isGetterValue recognizes an expression denoting a getter bound to
	// the options value: the method value o.Int itself, or a variable a
	// method value was assigned to.
	isGetterValue := func(e ast.Expr) bool {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			return optionGetters[x.Sel.Name] && opts != nil && exprObj(pass.Info, x.X) == opts
		case *ast.Ident:
			obj := exprObj(pass.Info, x)
			return obj != nil && getters[obj]
		}
		return false
	}
	dynamic := false
	ast.Inspect(body, func(n ast.Node) bool {
		// g := o.Int — bind the method value; calls through g below read
		// keys like the selector form does.
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				if !isGetterValue(rhs) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if obj := exprObj(pass.Info, id); obj != nil {
						getters[obj] = true
					} else if obj := pass.Info.Defs[id]; obj != nil {
						getters[obj] = true
					}
				}
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// o.Int("key", def) — a getter on the options parameter.
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && optionGetters[sel.Sel.Name] {
			if opts != nil && exprObj(pass.Info, sel.X) == opts && len(call.Args) > 0 {
				if key, ok := constString(pass.Info, call.Args[0]); ok {
					read[key] = call.Args[0]
				} else {
					dynamic = true
				}
				return true
			}
		}
		// g("key", def) — a call through a bound getter method value.
		if isGetterValue(call.Fun) {
			if _, isSel := unparen(call.Fun).(*ast.SelectorExpr); !isSel && len(call.Args) > 0 {
				if key, ok := constString(pass.Info, call.Args[0]); ok {
					read[key] = call.Args[0]
				} else {
					dynamic = true
				}
				return true
			}
		}
		// helper(o, ...) / helper(&o, "k1", "k2") / readAll(o.Int) —
		// follow the flow of the options value or a bound getter.
		passesOpts := false
		for _, arg := range call.Args {
			if (opts != nil && exprObj(pass.Info, arg) == opts) || isGetterValue(arg) {
				passesOpts = true
				break
			}
		}
		if !passesOpts {
			return true
		}
		calleeDynamic := true // unresolvable callee: assume keys flow via args
		var calleeBody *ast.BlockStmt
		var calleeType *ast.FuncType
		if fl := resolveFuncLit(pass.Files, pass.Info, call.Fun); fl != nil {
			calleeBody, calleeType = fl.Body, fl.Type
		} else if fn := calleeFunc(pass.Info, call); fn != nil {
			if fd := decls[fn]; fd != nil {
				calleeBody, calleeType = fd.Body, fd.Type
			}
		}
		if calleeBody != nil && calleeType != nil {
			var calleeOpts types.Object
			calleeGetters := make(map[types.Object]bool)
			// Flatten the parameter names so a func-typed parameter can be
			// matched positionally to the getter value flowing into it.
			var flat []*ast.Ident
			for _, field := range calleeType.Params.List {
				if t := pass.Info.TypeOf(field.Type); t != nil && isOptionsType(t) && len(field.Names) > 0 && calleeOpts == nil {
					calleeOpts = pass.Info.Defs[field.Names[0]]
				}
				flat = append(flat, field.Names...)
			}
			for i, arg := range call.Args {
				if i < len(flat) && isGetterValue(arg) {
					if obj := pass.Info.Defs[flat[i]]; obj != nil {
						calleeGetters[obj] = true
					}
				}
			}
			if calleeOpts != nil || len(calleeGetters) > 0 {
				calleeDynamic = collectOptionKeys(pass, decls, calleeBody, calleeOpts, calleeGetters, read, visited, depth-1)
			}
		}
		if calleeDynamic {
			// The callee reads keys it receives as arguments: the constant
			// strings at this call site are those keys.
			for _, arg := range call.Args {
				if key, ok := constString(pass.Info, arg); ok {
					read[key] = arg
				}
			}
		}
		return true
	})
	return dynamic
}

// checkCaps verifies RegisterStructure's declared Caps against the
// concrete session types the structure's NewSession returns. CapHandle is
// informational (every session has per-worker state and a Close) and never
// checked. A capability interface the session implements but whose
// operation kind the structure does not serve (BatchSession on a
// queue-only structure) is exempt from the must-declare direction, since
// declaring it would promise an operation the structure rejects.
func checkCaps(pass *Pass, countq *types.Package, decls map[*types.Func]*ast.FuncDecl, structName string, lit *ast.CompositeLit) {
	capsExpr := infoField(pass, lit, "Caps")
	kindsExpr := infoField(pass, lit, "Kinds")
	var caps, kinds int64
	if capsExpr != nil {
		caps, _ = constInt(pass.Info, capsExpr)
	}
	if kindsExpr != nil {
		kinds, _ = constInt(pass.Info, kindsExpr)
	}
	capBatch, ok1 := scopeConstInt(countq, "CapBatch")
	capAsync, ok2 := scopeConstInt(countq, "CapAsync")
	kindCounter, ok3 := scopeConstInt(countq, "KindCounter")
	if !ok1 || !ok2 || !ok3 {
		return
	}
	batchIface := scopeInterface(countq, "BatchSession")
	asyncIface := scopeInterface(countq, "AsyncSession")
	if batchIface == nil || asyncIface == nil {
		return
	}

	newExpr := infoField(pass, lit, "New")
	if newExpr == nil {
		return
	}
	structTypes := resolveReturnTypes(pass, decls, newExpr, make(map[ast.Node]bool), 4)
	var sessTypes []types.Type
	for _, st := range structTypes {
		ns := methodDecl(pass, decls, st, "NewSession")
		if ns == nil {
			continue
		}
		sessTypes = append(sessTypes, resolveReturnsOf(pass, decls, ns.Body, make(map[ast.Node]bool), 4)...)
	}
	if len(sessTypes) == 0 {
		return // not statically resolvable; the conformance suite covers it
	}
	pos := lit.Pos()
	if capsExpr != nil {
		pos = capsExpr.Pos()
	}
	for _, st := range sessTypes {
		implBatch := types.Implements(st, batchIface)
		implAsync := types.Implements(st, asyncIface)
		if caps&capBatch != 0 && !implBatch {
			pass.Reportf(pos, "structure %q declares CapBatch but its session type %s does not implement countq.BatchSession", structName, st)
		}
		if caps&capAsync != 0 && !implAsync {
			pass.Reportf(pos, "structure %q declares CapAsync but its session type %s does not implement countq.AsyncSession", structName, st)
		}
		if implBatch && caps&capBatch == 0 && kinds&kindCounter != 0 {
			pass.Reportf(pos, "structure %q: session type %s implements countq.BatchSession but CapBatch is not declared (the driver will reject batch workloads it could serve)", structName, st)
		}
		if implAsync && caps&capAsync == 0 {
			pass.Reportf(pos, "structure %q: session type %s implements countq.AsyncSession but CapAsync is not declared (the driver will reject pipelined workloads it could serve)", structName, st)
		}
	}
}

// resolveReturnTypes resolves the concrete type(s) a constructor
// expression can return: the static type of each return expression when
// concrete, recursing through same-package calls when the static type is
// an interface.
func resolveReturnTypes(pass *Pass, decls map[*types.Func]*ast.FuncDecl, fnExpr ast.Expr, visited map[ast.Node]bool, depth int) []types.Type {
	if fl := resolveFuncLit(pass.Files, pass.Info, fnExpr); fl != nil {
		return resolveReturnsOf(pass, decls, fl.Body, visited, depth)
	}
	if fn := calleeStaticFunc(pass.Info, fnExpr); fn != nil {
		if fd := decls[fn]; fd != nil {
			return resolveReturnsOf(pass, decls, fd.Body, visited, depth)
		}
	}
	return nil
}

// resolveReturnsOf collects the concrete types of a body's first return
// values, following same-package constructor calls through interface
// results.
func resolveReturnsOf(pass *Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, visited map[ast.Node]bool, depth int) []types.Type {
	if body == nil || depth == 0 || visited[body] {
		return nil
	}
	visited[body] = true
	var out []types.Type
	walkStack(body, func(n ast.Node, _ []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested closure's returns are not this body's
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) > 0 {
			out = append(out, resolveExprTypes(pass, decls, ret.Results[0], visited, depth)...)
		}
		return true
	})
	return out
}

// resolveExprTypes resolves the concrete type(s) an expression can
// evaluate to: its static type when concrete; for an interface-typed
// constructor call (or a `return f(...)` tuple whose first element is
// interface-typed), the types the callee's own returns resolve to.
func resolveExprTypes(pass *Pass, decls map[*types.Func]*ast.FuncDecl, e ast.Expr, visited map[ast.Node]bool, depth int) []types.Type {
	expr := unparen(e)
	if id, ok := expr.(*ast.Ident); ok && id.Name == "nil" {
		return nil
	}
	t := pass.Info.TypeOf(expr)
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return nil
		}
		t = tuple.At(0).Type()
	}
	if t == nil {
		return nil
	}
	if !types.IsInterface(t) {
		return []types.Type{t}
	}
	// Interface-typed: follow a constructor call one level in.
	if call, ok := expr.(*ast.CallExpr); ok {
		if fl := resolveFuncLit(pass.Files, pass.Info, call.Fun); fl != nil {
			return resolveReturnsOf(pass, decls, fl.Body, visited, depth-1)
		}
		if fn := calleeFunc(pass.Info, call); fn != nil {
			if fd := decls[fn]; fd != nil {
				return resolveReturnsOf(pass, decls, fd.Body, visited, depth-1)
			}
		}
	}
	return nil
}

// methodDecl finds the declaration of a method on a (possibly pointer)
// named type in the analyzed package.
func methodDecl(pass *Pass, decls map[*types.Func]*ast.FuncDecl, t types.Type, name string) *ast.FuncDecl {
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return decls[fn]
}
