// Package good mirrors the real hot-path idioms the analyzer must accept:
// appends into capacity reserved by a deliberately-unannotated amortized
// helper, fmt on the cold return/panic paths, an audited clock budget, and
// allocation-heavy code in functions that simply are not annotated.
package good

import (
	"errors"
	"fmt"
	"time"
)

type lane struct {
	buf []int
}

// reserve is the amortized slow path: unannotated on purpose, so it may
// allocate freely — the same split countq's laneRunner uses.
func (l *lane) reserve(n int) {
	if cap(l.buf)-len(l.buf) < n {
		grown := make([]int, len(l.buf), 2*cap(l.buf)+n)
		copy(grown, l.buf)
		l.buf = grown
	}
}

//countq:hotpath
func (l *lane) push(v int) error {
	if cap(l.buf) == len(l.buf) {
		return fmt.Errorf("lane full at %d", len(l.buf)) // cold path: feeds the return
	}
	l.buf = append(l.buf, v) // append into reserved capacity is fine
	return nil
}

//countq:hotpath
func (l *lane) at(i int) int {
	if i >= len(l.buf) {
		panic(fmt.Sprintf("index %d out of %d", i, len(l.buf))) // cold path: feeds a panic
	}
	return l.buf[i]
}

//countq:hotpath clocks=2
func (l *lane) stamp() time.Duration {
	begin := time.Now()
	l.buf = append(l.buf, 0)
	return time.Since(begin) // second clock site, declared by clocks=2
}

type point struct{ x, y int }

//countq:hotpath
func mid(a, b point) point {
	p := point{x: (a.x + b.x) / 2, y: (a.y + b.y) / 2} // stays concrete: no boxing
	return p
}

// unannotated code allocates however it likes.
func batch(vs []int) func() []lane {
	return func() []lane {
		out := make([]lane, 0, len(vs))
		for range vs {
			out = append(out, lane{})
		}
		return out
	}
}

// constJoin is folded at compile time: no runtime concatenation happens.
//
//countq:hotpath
func constJoin() string {
	const prefix = "count" + "q"
	return prefix
}

//countq:hotpath
func coldJoin(l *lane, what string) error {
	if cap(l.buf) == len(l.buf) {
		return errors.New("lane full: " + what) // cold path: feeds the return
	}
	l.buf = append(l.buf, 0)
	return nil
}

//countq:hotpath
func coldJoinPanic(l *lane, what string) {
	if cap(l.buf) == len(l.buf) {
		panic("lane full: " + what) // cold path: feeds a panic
	}
	l.buf = append(l.buf, 0)
}

// spreadCold batches however it likes — it is an unannotated amortized
// helper.
func spreadCold(l *lane, vals []int) {
	l.reserve(len(vals))
	l.buf = append(l.buf, vals...)
}
