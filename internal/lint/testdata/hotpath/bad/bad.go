// Package bad seeds one violation of every construct the hotpath analyzer
// bans, so the test proves each rule fires. Everything here typechecks —
// the point is that `go build` and vet accept all of it.
package bad

import (
	"fmt"
	"time"
)

type ring struct {
	buf  []int
	vals map[string]int
}

var sink interface{}

func work() {}

//countq:hotpath
func hotClosure() int {
	inc := func(x int) int { return x + 1 } // want "closure in a //countq:hotpath function"
	return inc(1)
}

//countq:hotpath
func hotDefer() {
	defer work() // want "defer in a //countq:hotpath function"
}

//countq:hotpath
func hotGo() {
	go work() // want "go statement in a //countq:hotpath function"
}

//countq:hotpath
func hotMapRange(r *ring) int {
	t := 0
	for _, v := range r.vals { // want "map iteration in a //countq:hotpath function"
		t += v
	}
	return t
}

//countq:hotpath
func hotMake() {
	c := make(chan int, 1) // want `make\(channel\) in a //countq:hotpath function`
	_ = c
	m := make(map[string]int) // want `make\(map\) in a //countq:hotpath function`
	_ = m
	s := make([]int, 8) // want `make\(slice\) in a //countq:hotpath function`
	_ = s
	p := new(ring) // want `new\(\.\.\.\) in a //countq:hotpath function`
	_ = p
}

//countq:hotpath
func hotAddr() *ring {
	return &ring{} // want "&composite literal in a //countq:hotpath function"
}

//countq:hotpath
func hotBox() {
	sink = ring{} // want "composite literal escapes to interface"
}

//countq:hotpath
func hotFmt(n int) string {
	s := fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf outside a return/panic`
	return s
}

//countq:hotpath
func hotClocks() time.Duration {
	a := time.Now()
	b := time.Now() // want `time\.Now call site 2 exceeds the //countq:hotpath clock budget of 1`
	return b.Sub(a)
}

//countq:hotpath clocks=2 spin=4
func hotBadArg() {} // want `unknown //countq:hotpath argument "spin=4"`

//countq:hotpath clocks=zero
func hotBadBudget() {} // want "malformed //countq:hotpath clock budget"

//countq:hotpath
func hotBodyless() int // want "//countq:hotpath on a bodyless declaration"

func cold() {
	//countq:hotpath want "misplaced //countq:hotpath"
	_ = 1
}

//countq:hotpath
func hotSpread(r *ring, vals []int) {
	r.buf = append(r.buf, vals...) // want `append\(s, v\.\.\.\) in a //countq:hotpath function`
}

//countq:hotpath
func hotConcat(a, b string) string {
	joined := a + b // want "string concatenation in a //countq:hotpath function"
	return joined
}

//countq:hotpath
func hotConcatChain(a, b, c string) string {
	joined := a + b + c // want "string concatenation in a //countq:hotpath function"
	return joined
}

//countq:hotpath
func hotConcatAssign(tag string) string {
	out := tag
	out += "!" // want `string \+= concatenation in a //countq:hotpath function`
	return out
}
