// Package good mirrors the context discipline the session backends
// actually use: selects guarded by ctx.Done(), Err prechecks before a
// blocking fast path, contexts forwarded downstream, blocking confined to
// internal goroutines with their own lifecycle, and producers closing
// their own completion channels.
package good

import (
	"context"
	"sync"
)

type session struct {
	reqs chan int64
	done chan int64
	stop chan struct{}
	wg   sync.WaitGroup
}

// Inc blocks, but every arm races ctx.Done — the bridge-session shape.
func (s *session) Inc(ctx context.Context) (int64, error) {
	select {
	case s.reqs <- 1:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	select {
	case v := <-s.done:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// TryInc prechecks the context, then uses a non-blocking select.
func (s *session) TryInc(ctx context.Context) (int64, bool) {
	if ctx.Err() != nil {
		return 0, false
	}
	select {
	case s.reqs <- 1:
		return <-s.done, true
	default:
		return 0, false
	}
}

// Forward consults ctx by handing it to the callee.
func (s *session) Forward(ctx context.Context) (int64, error) {
	return s.Inc(ctx)
}

// Pump blocks inside a goroutine it owns; the goroutine's lifecycle is the
// stop channel's, not the context's, so the method itself is clean.
func (s *session) Pump(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case v := <-s.reqs:
				s.done <- v + 1
			case <-s.stop:
				return
			}
		}
	}()
	return nil
}

// unexported helpers may block without a context ceremony.
func (s *session) drain() {
	for range s.done {
	}
}

// Close takes no context; its blocking wait is out of scope.
func (s *session) Close() error {
	close(s.stop)
	s.wg.Wait()
	return nil
}

type producer struct {
	out chan int64
}

func (p *producer) Completions() chan int64 { return p.out }

// shutdown is the producer side: closing its own field, not a channel
// fetched through Completions(), is the contract.
func (p *producer) shutdown() {
	close(p.out)
}
