// Package bad seeds the cancellation-contract violations: exported
// methods that accept a context and then block without ever consulting
// it, and a consumer closing a channel it obtained from Completions().
package bad

import (
	"context"
	"sync"
	"time"
)

type session struct {
	reqs chan int64
	done chan int64
	wg   sync.WaitGroup
}

// Inc ignores ctx entirely and parks on a full channel.
func (s *session) Inc(ctx context.Context) (int64, error) {
	s.reqs <- 1 // want "Inc takes a context.Context it never consults but blocks on a channel send"
	return <-s.done, nil
}

// Drain ignores ctx and blocks on a bare select.
func (s *session) Drain(ctx context.Context) {
	select { // want "Drain takes a context.Context it never consults but blocks on a select with no default"
	case <-s.done:
	case <-s.reqs:
	}
}

// Wait ignores ctx and blocks on the WaitGroup.
func (s *session) Wait(ctx context.Context) {
	s.wg.Wait() // want `Wait takes a context.Context it never consults but blocks on sync\.WaitGroup\.Wait`
}

// Sleep ignores ctx and stalls.
func (s *session) Sleep(ctx context.Context) {
	time.Sleep(time.Millisecond) // want `blocks on time\.Sleep`
}

// Collect ignores ctx and ranges over a channel.
func (s *session) Collect(ctx context.Context) int64 {
	var total int64
	for v := range s.done { // want "blocks on a range over a channel"
		total += v
	}
	return total
}

// producer owns a completion stream.
type producer struct {
	out chan completion
}

type completion struct{ v int64 }

func (p *producer) Completions() chan completion { return p.out }

// consumeAndClose closes a channel it does not own: the producer closes
// completion streams, never the consumer.
func consumeAndClose(p *producer) {
	ch := p.Completions()
	for range ch {
	}
	close(ch) // want "closing a channel obtained from Completions"
}

func closeDirect(p *producer) {
	close(p.Completions()) // want "closing a channel obtained from Completions"
}
