// Package good mirrors the legitimate atomics idioms: composite-literal
// initialization of an atomically-accessed field before the value is
// shared, uniform atomic access everywhere else, typed atomic wrappers,
// and sync state that always travels behind a pointer.
package good

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	n    int64
	gate atomic.Bool
	mu   sync.Mutex
}

// newCounter initializes n in the literal — the value is not shared yet,
// so the plain write is exempt.
func newCounter(start int64) *counter {
	return &counter{n: start}
}

func (c *counter) inc() int64 {
	return atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) open() {
	c.gate.Store(true) // typed wrapper: every access is atomic by construction
}

// byPointer moves the state behind a pointer, as it must.
func byPointer(c *counter) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.read()
}

// plainStruct has no sync state and may travel by value freely.
type plainStruct struct {
	a, b int64
}

func plainByValue(p plainStruct) plainStruct { return p }
