// Package bad seeds the atomics misuse the analyzer exists for: fields
// that are atomic in one place and plain in another (a data race vet has
// no checker for), and sync/atomic state smuggled across function
// boundaries by value.
package bad

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	n     int64
	hits  int64
	inner guarded
}

type guarded struct {
	mu  sync.Mutex
	val atomic.Int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.n // want `field n is accessed via sync/atomic .* but read or written directly here`
}

func (c *counter) reset() {
	c.hits = 0 // want `field hits is accessed via sync/atomic .* but read or written directly here`
}

// byValue copies the embedded mutex and atomic.Int64.
func byValue(g guarded) int64 { // want `parameter of type .*guarded travels by value but contains sync\.Mutex`
	return 0
}

// valueReceiver copies the whole counter, inner mutex included.
func (c counter) valueReceiver() {} // want `receiver of type .*counter travels by value but contains sync\.Mutex`

// returned copies the state out.
func returned() guarded { // want `result of type .*guarded travels by value but contains sync\.Mutex`
	var g guarded
	return g
}
