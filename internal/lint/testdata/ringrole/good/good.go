// Package good holds the transport idioms ringrole must accept: matching
// role annotations on each side, the cross-ring pivot (a consumer-side
// pump calling a producer-annotated settle path), the racy-read Len from
// either side, and the full lossless park shape — Prepare, re-check,
// Unpark on the early exit, then the blocking receive.
package good

import "repro/internal/ring"

type pipe struct {
	q *ring.SPSC[int]
	l *ring.Lanes[int]
}

// produce is the producer side: publish, then wake the sweeper.
//
//countq:role=producer
func produce(p *pipe, v int) bool {
	ok := p.q.Push(v)
	if ok {
		p.l.Wake()
	}
	return ok
}

// sweep is the consumer's batched drain across every lane.
//
//countq:role=consumer
func sweep(p *pipe, buf []int) []int {
	for _, lane := range p.l.Snapshot() {
		buf = lane.DrainTo(buf)
	}
	return buf
}

// pump parks losslessly: Prepare, re-check the lanes, Unpark on the
// early exit, and only then block on the wake channel.
//
//countq:role=consumer
func pump(p *pipe, buf []int) []int {
	for {
		buf = sweep(p, buf)
		if len(buf) > 0 {
			return buf
		}
		p.l.Prepare()
		buf = sweep(p, buf)
		if len(buf) > 0 {
			p.l.Unpark()
			return buf
		}
		select {
		case <-p.l.WakeChan():
		}
	}
}

// relayAcross pivots between rings: it consumes one ring and hands each
// value to the producer-annotated side of another — the annotated callee
// is a boundary, checked under its own role.
//
//countq:role=consumer
func relayAcross(p, out *pipe) {
	for {
		v, ok := p.q.Pop()
		if !ok {
			return
		}
		produce(out, v)
	}
}

// depth reads the racy length, legal from either side unannotated.
func depth(p *pipe) int { return p.q.Len() }

// orchestrate only calls annotated boundaries, so it needs no role of
// its own.
func orchestrate(p, out *pipe) {
	relayAcross(p, out)
}
