// Package bad seeds one violation of every rule the ringrole analyzer
// enforces: unannotated reachability (direct, transitive, and through an
// interface call), mixed-role access, annotations contradicted directly
// and transitively, dead and malformed and misplaced directives, and both
// park-discipline violations. Everything typechecks and races only under
// schedules -race may never produce — vet and staticcheck accept all of
// it.
package bad

import "repro/internal/ring"

type queues struct {
	in *ring.SPSC[int]
	l  *ring.Lanes[int]
}

// pushLoose calls a producer-only method with no role declaration.
func pushLoose(q *queues) {
	q.in.Push(1) // want "pushLoose reaches the producer-only ring method ring.SPSC.Push but carries no //countq:role annotation"
}

// pushOuter reaches the same primitive only through an unannotated
// callee; the finding lands on the declaration.
func pushOuter(q *queues) { // want "pushOuter reaches the producer-only ring method ring.SPSC.Push but carries no //countq:role annotation"
	pushLoose(q)
}

// mixed touches both cursors of one ring from a single function.
func mixed(q *queues) { // want "mixed reaches both producer-only \\(ring.SPSC.Push\\) and consumer-only \\(ring.SPSC.Pop\\) ring methods with no //countq:role annotation"
	q.in.Push(1)
	q.in.Pop()
}

// wrongSide declares the consumer side but pushes.
//
//countq:role=consumer
func wrongSide(q *queues) {
	q.in.Pop()
	q.in.Push(9) // want "wrongSide is annotated //countq:role=consumer but calls the producer-only method ring.SPSC.Push"
}

// relay declares producer but reaches Pop through an unannotated helper.
//
//countq:role=producer
func relay(q *queues) { // want "relay is annotated //countq:role=producer but reaches the consumer-only method ring.SPSC.Pop through unannotated callees"
	popHelper(q)
}

func popHelper(q *queues) {
	q.in.Pop() // want "popHelper reaches the consumer-only ring method ring.SPSC.Pop but carries no //countq:role annotation"
}

// idle carries a role but never touches a ring.
//
//countq:role=producer
func idle() { // want "idle carries //countq:role=producer but reaches no ring producer/consumer method"
}

// confused uses a role the grammar does not know.
//
//countq:role=driver
func confused(q *queues) { // want "confused: unknown //countq:role value \"driver\" \\(want producer or consumer\\)"
	q.in.Push(1)
}

// scratch hides the directive where it binds to nothing.
func scratch() {
	//countq:role=producer want "misplaced //countq:role: the directive must be in a function's doc comment"
}

// feeder erases the concrete producer behind an interface; CHA resolves
// the call back to it.
type feeder interface{ feed(int) }

type ringFeeder struct{ r *ring.SPSC[int] }

func (f *ringFeeder) feed(v int) {
	f.r.Push(v) // want "feed reaches the producer-only ring method ring.SPSC.Push but carries no //countq:role annotation"
}

func drive(fs feeder) { // want "drive reaches the producer-only ring method ring.SPSC.Push but carries no //countq:role annotation"
	fs.feed(1)
}

// parkNoPrepare blocks on the wake channel without ever setting the
// parked flag — Wake's CAS fails and the signal is skipped.
//
//countq:role=consumer
func parkNoPrepare(q *queues) {
	<-q.l.WakeChan() // want "parkNoPrepare parks on WakeChan with no preceding Prepare call"
}

// parkViaBinding does the same through a bound channel variable.
//
//countq:role=consumer
func parkViaBinding(q *queues) {
	ch := q.l.WakeChan()
	<-ch // want "parkViaBinding parks on WakeChan with no preceding Prepare call"
}

// parkNoRecheck sets the flag but skips the mandatory re-check, so work
// published just before Prepare is slept through.
//
//countq:role=consumer
func parkNoRecheck(q *queues) {
	q.l.Prepare()
	<-q.l.WakeChan() // want "parkNoRecheck parks on WakeChan immediately after Prepare with no re-check between"
}
