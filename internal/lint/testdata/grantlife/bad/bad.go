// Package bad seeds one violation of every grant-lifecycle rule: a token
// leaked on a fall-through path, a may-double grant, a discarded token
// parameter, a conditionally-settling helper that leaves the caller's
// guarantee open, and a store-then-grant that settles twice. Every method
// compiles and runs without panicking — Grant on a freed slot is a no-op
// by design, and a leaked token just blocks its session forever — so
// vet, staticcheck and -race all stay silent.
package bad

import (
	"repro/countq"
	"repro/internal/sim"
)

// leakProto grants on one branch and forgets the token on the other.
type leakProto struct{ grants sim.Grants }

func (p *leakProto) Start(env *sim.Env, node int)                  {}
func (p *leakProto) Deliver(env *sim.Env, node int, m sim.Message) {}

func (p *leakProto) Issue(env *sim.Env, node int, token int, op countq.Op) {
	if node == 0 {
		p.grants.Grant(token, op.N)
		return
	}
} // want "leakProto.Issue: the token reaches neither Grant nor an escape \\(store/send/helper\\) on a path ending here"

// doubleProto may grant the same token twice.
type doubleProto struct{ grants sim.Grants }

func (p *doubleProto) Start(env *sim.Env, node int)                  {}
func (p *doubleProto) Deliver(env *sim.Env, node int, m sim.Message) {}

func (p *doubleProto) Issue(env *sim.Env, node int, token int, op countq.Op) {
	p.grants.Grant(token, 0)
	if node > 0 {
		p.grants.Grant(token, 1) // want "doubleProto.Issue: the token may already be granted when this Grant runs"
	}
}

// discardProto never even binds the token.
type discardProto struct{ grants sim.Grants }

func (p *discardProto) Start(env *sim.Env, node int)                  {}
func (p *discardProto) Deliver(env *sim.Env, node int, m sim.Message) {}

func (p *discardProto) Issue(env *sim.Env, node int, _ int, op countq.Op) { // want "discardProto.Issue discards its token parameter"
	p.grants.Grant(0, op.N)
}

// maybeProto hands the token to a helper that stores it only sometimes;
// the helper's guarantee is conditional, so Issue's is too.
type maybeProto struct {
	grants  sim.Grants
	backlog []int
}

func (p *maybeProto) Start(env *sim.Env, node int)                  {}
func (p *maybeProto) Deliver(env *sim.Env, node int, m sim.Message) {}

func (p *maybeProto) stash(token int, keep bool) {
	if keep {
		p.backlog = append(p.backlog, token)
	}
}

func (p *maybeProto) Issue(env *sim.Env, node int, token int, op countq.Op) {
	p.stash(token, node > 0)
} // want "maybeProto.Issue: the token reaches neither Grant nor an escape \\(store/send/helper\\) on a path ending here"

// eagerProto stores the token for a later Deliver and then grants it
// anyway — two settles of one operation.
type eagerProto struct {
	grants  sim.Grants
	pending []int
}

func (p *eagerProto) Start(env *sim.Env, node int)                  {}
func (p *eagerProto) Deliver(env *sim.Env, node int, m sim.Message) {}

func (p *eagerProto) Issue(env *sim.Env, node int, token int, op countq.Op) {
	p.pending = append(p.pending, token)
	p.grants.Grant(token, 0) // want "eagerProto.Issue: the token was already stored or forwarded on this path; granting it again settles it twice"
}
