// Package good holds the legitimate Issue shapes grantlife must accept:
// the token granted immediately at the home node, forwarded inside a
// message on the remote path, stowed into protocol state for a later
// Deliver to resolve, and handed to a helper that stores it on every
// path.
package good

import (
	"repro/countq"
	"repro/internal/sim"
)

// centralProto settles at the root, forwards from everywhere else —
// the central-counter shape.
type centralProto struct{ grants sim.Grants }

func (p *centralProto) Start(env *sim.Env, node int)                  {}
func (p *centralProto) Deliver(env *sim.Env, node int, m sim.Message) {}

func (p *centralProto) Issue(env *sim.Env, node int, token int, op countq.Op) {
	if node == 0 {
		p.grants.Grant(token, op.N)
		return
	}
	env.Send(node, 0, sim.Message{Kind: 1, A: token})
}

// chaseProto picks a target per operation — grant locally or chase it
// across the network, the distributed-queue shape.
type chaseProto struct{ grants sim.Grants }

func (p *chaseProto) Start(env *sim.Env, node int)                  {}
func (p *chaseProto) Deliver(env *sim.Env, node int, m sim.Message) {}

func (p *chaseProto) Issue(env *sim.Env, node int, token int, op countq.Op) {
	target := int(op.ID) % 4
	if target == node {
		p.grants.Grant(token, 0)
		return
	}
	env.Send(node, target, sim.Message{Kind: 2, A: token, B: node})
}

// stashProto parks every token in protocol state; a later Deliver owns
// settling it.
type pendingOp struct {
	token  int
	amount int64
}

type stashProto struct {
	grants sim.Grants
	queue  []pendingOp
}

func (p *stashProto) Start(env *sim.Env, node int)                  {}
func (p *stashProto) Deliver(env *sim.Env, node int, m sim.Message) {}

func (p *stashProto) Issue(env *sim.Env, node int, token int, op countq.Op) {
	p.queue = append(p.queue, pendingOp{token: token, amount: op.N})
}

// helperProto routes the remote path through a helper that stores the
// token unconditionally, so the caller's guarantee holds.
type helperProto struct {
	grants sim.Grants
	queue  []pendingOp
}

func (p *helperProto) Start(env *sim.Env, node int)                  {}
func (p *helperProto) Deliver(env *sim.Env, node int, m sim.Message) {}

func (p *helperProto) enqueue(token int, amt int64) {
	p.queue = append(p.queue, pendingOp{token: token, amount: amt})
}

func (p *helperProto) Issue(env *sim.Env, node int, token int, op countq.Op) {
	if node == 0 {
		p.grants.Grant(token, op.N)
		return
	}
	p.enqueue(token, op.N)
}
