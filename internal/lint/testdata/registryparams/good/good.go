// Package good mirrors the registration idioms the real tree uses, all of
// which the analyzer must resolve without a false positive: Params bound
// to a shared identifier, option parsing delegated to a local closure, a
// variadic validation helper whose keys appear at the call site, and the
// kind-gate — a queue-only structure whose sessions happen to implement
// BatchSession need not (must not) declare CapBatch.
package good

import (
	"context"
	"fmt"

	"repro/countq"
)

type queueStructure struct{}

func (queueStructure) NewSession() (countq.Session, error) { return &queueSession{}, nil }

// queueSession serves Enqueue natively; IncN exists (kind-gated at
// runtime, like shm's elim queue) and Submit makes it async.
type queueSession struct {
	done chan countq.Completion
}

func (s *queueSession) Inc(ctx context.Context) (int64, error) {
	return 0, countq.ErrUnsupported
}

func (s *queueSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	return countq.Head, nil
}

func (s *queueSession) IncN(ctx context.Context, n int64) (int64, error) {
	return 0, countq.ErrUnsupported
}

func (s *queueSession) Submit(ctx context.Context, op countq.Op) error {
	return nil
}

func (s *queueSession) Completions() <-chan countq.Completion {
	return s.done
}

func (s *queueSession) Close() error { return nil }

// atLeast1 is the variadic validation-helper idiom: the keys it reads
// arrive as call-site constants.
func atLeast1(o *countq.Options, keys ...string) error {
	for _, k := range keys {
		if _, set := o.Lookup(k); set && o.Int64(k, 1) < 1 {
			return fmt.Errorf("param %s must be >= 1", k)
		}
	}
	return o.Err()
}

func register() {
	params := []countq.ParamInfo{
		{Name: "spin", Default: "8", Doc: "slot wait rounds"},
		{Name: "depth", Default: "2", Doc: "layer count"},
		{Name: "cap", Default: "1", Doc: "per-round capacity"},
	}
	parse := func(o countq.Options) (spin, depth int, err error) {
		spin = o.Int("spin", 8)
		depth = o.Int("depth", 2)
		if err := atLeast1(&o, "cap"); err != nil {
			return 0, 0, err
		}
		return spin, depth, o.Err()
	}
	countq.RegisterStructure(countq.StructureInfo{
		Name:   "honest-queue",
		Kinds:  countq.KindQueue,
		Params: params,
		Caps:   countq.CapAsync,
		New: func(o countq.Options) (countq.Structure, error) {
			if _, _, err := parse(o); err != nil {
				return nil, err
			}
			return queueStructure{}, nil
		},
	})
}

// readString reads one key through a getter method value handed in by
// the caller — the analyzer must follow the value into the func-typed
// parameter and credit the call-site key.
func readString(get func(string, string) string, key string) string {
	return get(key, "")
}

// newMulti reads its params through method values: one bound locally,
// one passed to a helper.
func newMulti(o countq.Options) (countq.Structure, error) {
	width := o.Int("width", 4)
	getInt := o.Int
	retry := getInt("retry", 2)
	label := readString(o.String, "label")
	_, _, _ = width, retry, label
	return queueStructure{}, o.Err()
}

// registerMulti serves both operation kinds, so the kind-gate does not
// apply: its sessions' BatchSession side must be declared.
func registerMulti() {
	countq.RegisterStructure(countq.StructureInfo{
		Name:  "multi-kind",
		Kinds: countq.KindCounter | countq.KindQueue,
		Params: []countq.ParamInfo{
			{Name: "width", Default: "4", Doc: "fanout"},
			{Name: "retry", Default: "2", Doc: "retry budget"},
			{Name: "label", Default: "", Doc: "trace label"},
		},
		Caps: countq.CapBatch | countq.CapAsync,
		New:  newMulti,
	})
}
