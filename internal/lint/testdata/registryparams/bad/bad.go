// Package bad seeds registry declarations that drifted from their
// constructors: params declared but never read, params read but never
// declared, and Caps that promise sessions the structure does not return
// (or hide ones it does). All of it typechecks and survives vet — only the
// registry's runtime probe or a live campaign would ever notice.
package bad

import (
	"context"

	"repro/countq"
)

// plainStructure's sessions implement only the base Session — no IncN, no
// Submit — yet the registration below declares CapBatch and CapAsync.
type plainStructure struct{}

func (plainStructure) NewSession() (countq.Session, error) { return plainSession{}, nil }

type plainSession struct{}

func (plainSession) Inc(ctx context.Context) (int64, error) { return 0, nil }
func (plainSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	return 0, countq.ErrUnsupported
}
func (plainSession) Close() error { return nil }

// richStructure's sessions implement BatchSession and AsyncSession, yet
// the registration below declares neither capability.
type richStructure struct{}

func (richStructure) NewSession() (countq.Session, error) { return &richSession{}, nil }

type richSession struct {
	done chan countq.Completion
}

func (s *richSession) Inc(ctx context.Context) (int64, error) { return 0, nil }
func (s *richSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	return 0, countq.ErrUnsupported
}
func (s *richSession) IncN(ctx context.Context, n int64) (int64, error) { return 0, nil }
func (s *richSession) Submit(ctx context.Context, op countq.Op) error   { return nil }
func (s *richSession) Completions() <-chan countq.Completion            { return s.done }
func (s *richSession) Close() error                                     { return nil }

func register() {
	countq.RegisterStructure(countq.StructureInfo{
		Name:  "overdeclared",
		Kinds: countq.KindCounter,
		Params: []countq.ParamInfo{
			{Name: "spin", Default: "8", Doc: "read below, fine"},
			{Name: "burst", Default: "4", Doc: "never read"}, // want `declared param "burst" is never read`
		},
		Caps: countq.CapBatch | countq.CapAsync, // want `declares CapBatch but its session type` `declares CapAsync but its session type`
		New: func(o countq.Options) (countq.Structure, error) {
			_ = o.Int("spin", 8)
			_ = o.Int("depth", 2) // want `reads option key "depth" that Params does not declare`
			if err := o.Err(); err != nil {
				return nil, err
			}
			return plainStructure{}, nil
		},
	})
	countq.RegisterStructure(countq.StructureInfo{
		Name:  "underdeclared",
		Kinds: countq.KindCounter,
		Caps:  countq.CapHandle, // want `implements countq.BatchSession but CapBatch is not declared` `implements countq.AsyncSession but CapAsync is not declared`
		New: func(o countq.Options) (countq.Structure, error) {
			return richStructure{}, nil
		},
	})
}

// readThrough reads one key through a handed-in getter method value.
func readThrough(get func(string, int) int, key string) int {
	return get(key, 0)
}

// registerSneaky reads two undeclared keys through method values — one
// bound locally, one routed through a helper — and declares a key the
// constructor never touches under either spelling.
func registerSneaky() {
	countq.RegisterStructure(countq.StructureInfo{
		Name:  "sneaky-multi",
		Kinds: countq.KindCounter | countq.KindQueue,
		Params: []countq.ParamInfo{
			{Name: "ghost", Default: "1", Doc: "never read"}, // want `declared param "ghost" is never read by the constructor`
		},
		Caps: countq.CapBatch | countq.CapAsync,
		New: func(o countq.Options) (countq.Structure, error) {
			getInt := o.Int
			burst := getInt("burst", 1)            // want `constructor reads option key "burst" that Params does not declare`
			window := readThrough(o.Int, "window") // want `constructor reads option key "window" that Params does not declare`
			_, _ = burst, window
			return richStructure{}, o.Err()
		},
	})
}
