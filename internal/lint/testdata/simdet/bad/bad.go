// Package bad seeds every nondeterminism the simdet analyzer bans inside
// the deterministic region: wall-clock reads, map iteration, spawned
// goroutines, channel operations, select, unseeded rand, and a runtime
// sleep — one per protocol method or reachable helper. All of it
// compiles, runs, and even produces correct counts most of the time;
// only the golden traces drift, which no test that checks final state
// can see.
package bad

import (
	"math/rand"
	"time"

	"repro/countq"
	"repro/internal/sim"
)

// clockProto timestamps its start and aggregates through a map range.
type clockProto struct {
	last time.Time
	seen map[int]int
}

func (p *clockProto) Start(env *sim.Env, node int) {
	p.last = time.Now() // want "Start: time.Now in a function reachable from clockProto.Start \\(sim.Protocol\\)"
}

func (p *clockProto) Deliver(env *sim.Env, node int, m sim.Message) {
	p.tally(m.A)
}

func (p *clockProto) tally(k int) {
	p.seen[k]++
	total := 0
	for _, v := range p.seen { // want "tally: map iteration in a function reachable from clockProto.Deliver \\(sim.Protocol\\)"
		total += v
	}
	_ = total
}

// spawnProto leaks scheduling order into the trace through a goroutine
// and raw channel traffic.
type spawnProto struct{ done chan int }

func (p *spawnProto) Start(env *sim.Env, node int) {
	go p.background(node) // want "Start: go statement in a function reachable from spawnProto.Start \\(sim.Protocol\\)"
}

func (p *spawnProto) background(node int) {
	p.done <- node // want "background: channel send in a function reachable from spawnProto.Start \\(sim.Protocol\\)"
}

func (p *spawnProto) Deliver(env *sim.Env, node int, m sim.Message) {
	select { // want "Deliver: select in a function reachable from spawnProto.Deliver \\(sim.Protocol\\)"
	case v := <-p.done: // want "Deliver: channel receive in a function reachable from spawnProto.Deliver \\(sim.Protocol\\)"
		_ = v
	default:
	}
}

// randTicker draws from the process-wide source each round.
type randTicker struct{ weights []int }

func (t *randTicker) Start(env *sim.Env, node int)                  {}
func (t *randTicker) Deliver(env *sim.Env, node int, m sim.Message) {}

func (t *randTicker) Tick(env *sim.Env, node int) {
	t.weights[node] = rand.Intn(10) // want "Tick: rand.Intn in a function reachable from randTicker.Tick \\(sim.Ticker\\)"
}

// stallBridge sleeps on the issue path — real time inside simulated
// time.
type stallBridge struct{ grants sim.Grants }

func (b *stallBridge) Start(env *sim.Env, node int)                  {}
func (b *stallBridge) Deliver(env *sim.Env, node int, m sim.Message) {}

func (b *stallBridge) Issue(env *sim.Env, node int, token int, op countq.Op) {
	time.Sleep(time.Millisecond) // want "Issue: time.Sleep in a function reachable from stallBridge.Issue \\(sim.BridgeProtocol\\)"
	b.grants.Grant(token, op.N)
}
