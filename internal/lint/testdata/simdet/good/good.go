// Package good holds the determinism-preserving idioms simdet must
// accept: draws from an explicitly seeded *rand.Rand (the seed is part
// of the trace's identity), keyed map reads and writes, slice ranges,
// simulated time from the round counter, and a channel send tucked
// behind a //countq:role boundary — the transport side ringrole audits.
package good

import (
	"math/rand"

	"repro/internal/sim"
)

type modelProto struct {
	rng   *rand.Rand
	seen  map[int]int
	order []int
	out   chan int
}

func newModelProto(seed int64) *modelProto {
	return &modelProto{
		rng:  rand.New(rand.NewSource(seed)),
		seen: make(map[int]int),
		out:  make(chan int, 1),
	}
}

func (p *modelProto) Start(env *sim.Env, node int) {
	if p.rng.Intn(2) == 1 {
		env.Send(node, 0, sim.Message{Kind: 1, A: node})
	}
}

func (p *modelProto) Deliver(env *sim.Env, node int, m sim.Message) {
	p.seen[m.From]++
	total := 0
	for _, v := range p.order {
		total += v
	}
	if p.seen[m.From] > total {
		p.publish(m.From)
	}
}

func (p *modelProto) Tick(env *sim.Env, node int) {
	if env.Round()%2 == 0 {
		p.order = append(p.order, node)
	}
}

// publish crosses into the concurrent transport; the role annotation is
// the boundary where simdet stops and ringrole takes over.
//
//countq:role=producer
func (p *modelProto) publish(v int) {
	p.out <- v
}
