package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxDisciplineAnalyzer enforces the session API's cancellation contract:
//
//  1. An exported method that accepts a context.Context and contains a
//     blocking construct (channel send/receive, select with no default,
//     WaitGroup/Cond Wait, time.Sleep) must consult the context — a
//     Submit or Inc that can park forever on a full channel while holding
//     a cancelled context strands the campaign driver's shutdown path.
//
//  2. A channel obtained from a Completions() method must never be closed
//     by the consumer: completion channels are closed producer-side when
//     the session drains (see countq.AsyncSession), and a consumer-side
//     close makes every in-flight producer send panic.
var CtxDisciplineAnalyzer = &Analyzer{
	Name: "ctxdiscipline",
	Doc: "exported methods taking a context.Context must consult it before blocking " +
		"(channel ops, bare selects, Waits, Sleeps), and channels obtained from " +
		"Completions() must only be closed by the producer",
	Run: runCtxDiscipline,
}

func runCtxDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			if ctxObj, pos := contextParam(pass.Info, fd); pos.IsValid() {
				checkCtxConsulted(pass, fd, ctxObj)
			}
		}
		checkCompletionsClose(pass, f)
	}
	return nil
}

// contextParam finds the method's context.Context parameter object (nil
// for a blank "_" name) and its position; an invalid position means the
// method takes no context.
func contextParam(info *types.Info, fd *ast.FuncDecl) (types.Object, token.Pos) {
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		if len(field.Names) == 0 || field.Names[0].Name == "_" {
			return nil, field.Pos()
		}
		return info.Defs[field.Names[0]], field.Pos()
	}
	return nil, token.NoPos
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// checkCtxConsulted reports the first blocking construct in a method whose
// context parameter is never referenced. Referencing the context anywhere
// — a Done() select case, an Err() precheck, forwarding it downstream —
// counts as consulting it; the analyzer draws the line at ignoring it
// entirely while blocking.
func checkCtxConsulted(pass *Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	if ctxObj != nil {
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == ctxObj {
				used = true
			}
			return !used
		})
		if used {
			return
		}
	}
	name := fd.Name.Name
	reported := false
	report := func(pos token.Pos, what string) {
		if reported {
			return
		}
		reported = true
		pass.Reportf(pos, "%s takes a context.Context it never consults but blocks on %s; a cancelled caller parks forever (select on ctx.Done() or check ctx.Err() first)", name, what)
	}
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if reported {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			// A closure's blocking belongs to whoever runs it (often a
			// goroutine with its own lifecycle), not to this method.
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				report(x.Pos(), "a select with no default")
			}
		case *ast.SendStmt:
			if !insideNonblockingSelect(x, stack) {
				report(x.Pos(), "a channel send")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !insideNonblockingSelect(x, stack) {
				report(x.Pos(), "a channel receive")
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					report(x.Pos(), "a range over a channel")
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, x); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "sync" && fn.Name() == "Wait":
					report(x.Pos(), "sync."+recvTypeName(fn)+".Wait")
				case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
					report(x.Pos(), "time.Sleep")
				}
			}
		}
		return true
	})
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// insideNonblockingSelect reports whether the send/receive is the comm
// operation of a select case — the select's own blocking semantics (with
// or without default) are judged at the SelectStmt, not per operation.
func insideNonblockingSelect(n ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.CommClause:
			return p.Comm != nil && containsNode(p.Comm, n)
		case ast.Stmt:
			if _, ok := p.(*ast.ExprStmt); ok {
				continue // <-ch as a bare statement
			}
			if _, ok := p.(*ast.AssignStmt); ok {
				continue // v := <-ch
			}
			return false
		}
	}
	return false
}

func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// checkCompletionsClose flags close(ch) where ch is (or was assigned from)
// the result of a Completions() call.
func checkCompletionsClose(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
			return true
		}
		if fromCompletions(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "closing a channel obtained from Completions(); completion channels are closed by the producing session, and a consumer-side close panics in-flight sends")
		}
		return true
	})
}

// fromCompletions reports whether the expression is a Completions() call
// or a variable whose single assignment is one.
func fromCompletions(pass *Pass, e ast.Expr) bool {
	if isCompletionsCall(pass.Info, e) {
		return true
	}
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := exprObj(pass.Info, id)
	if obj == nil {
		return false
	}
	from := false
	assigns := 0
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch a := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range a.Lhs {
					lid, ok := lhs.(*ast.Ident)
					if !ok || (pass.Info.Defs[lid] != obj && pass.Info.Uses[lid] != obj) {
						continue
					}
					assigns++
					if i < len(a.Rhs) && isCompletionsCall(pass.Info, a.Rhs[i]) {
						from = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range a.Names {
					if pass.Info.Defs[name] != obj {
						continue
					}
					assigns++
					if i < len(a.Values) && isCompletionsCall(pass.Info, a.Values[i]) {
						from = true
					}
				}
			}
			return true
		})
	}
	return from && assigns == 1
}

func isCompletionsCall(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "Completions"
}
