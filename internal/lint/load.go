package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one typechecked target package, ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir; "" means
// the current directory), typechecks each from source, and resolves every
// import — standard library and intra-module alike — from the gc export
// data the go tool produces, exactly as go vet's unitchecker does. Only
// non-test files are analyzed: the suite proves invariants of the shipped
// tree, while _test.go files are where violations are deliberately
// simulated.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Incomplete || p.Error != nil {
			msg := "unknown error"
			if p.Error != nil {
				msg = p.Error.Err
			}
			return nil, fmt.Errorf("lint: package %s does not compile: %s", p.ImportPath, msg)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := &exportImporter{inner: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, f := range t.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(t.Dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", f, err)
			}
			files = append(files, af)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typechecking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// exportImporter short-circuits "unsafe" (which has no export data) and
// delegates everything else to the gc export-data importer.
type exportImporter struct {
	inner types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.inner.Import(path)
}
