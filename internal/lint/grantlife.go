package lint

import (
	"go/ast"
	"go/types"
)

// simPath is the import path of the simulator package whose bridge
// contracts grantlife and simdet enforce.
const simPath = "repro/internal/sim"

// GrantLifeAnalyzer enforces the bridge token lifecycle: BridgeProtocol.
// Issue receives a token the pump has bound to a live operation, and the
// contract (sim.BridgeProtocol's doc) is that the protocol eventually
// grants it exactly once. Within Issue itself that means every path out
// of the method must settle the token exactly once — either granting it
// (Grants.Grant) or handing it onward (stored into protocol state, sent
// inside a message, passed to a function the analyzer cannot see into:
// the conservative escapes, after which a later Deliver owns it). A path
// that drops the token leaks the operation — its session blocks forever;
// a path that grants it twice corrupts the grant table's free list. Both
// are silent at runtime (Grant on a freed token is a no-op by design)
// and invisible to vet, staticcheck and -race.
//
// The pass is a lightweight must-reach walk over branch/return paths:
// if/switch arms fork the state, loop bodies may not run (a settle
// inside one never satisfies the must-settle direction), and in-package
// helper calls the token flows into are recursed depth-bounded to ask
// whether they settle their parameter on all paths.
var GrantLifeAnalyzer = &Analyzer{
	Name: "grantlife",
	Doc: "every path out of a BridgeProtocol.Issue must settle the grant token exactly once — " +
		"Grant it, store it into protocol state, or forward it in a message; dropping it leaks " +
		"the operation (the session blocks forever) and double-granting corrupts the token table",
	Run: runGrantLife,
}

func runGrantLife(pass *Pass) error {
	sim := importedPkg(pass.Pkg, simPath)
	if sim == nil {
		return nil
	}
	bpIface := scopeInterface(sim, "BridgeProtocol")
	grantsIface := scopeInterface(sim, "Grants")
	if bpIface == nil || grantsIface == nil {
		return nil
	}
	g := packageCallGraph(pass)
	for _, impl := range implementations(pass.Pkg, bpIface) {
		issue := methodOn(pass.Pkg, impl, "Issue")
		fd := g.decls[issue]
		if fd == nil || fd.Body == nil {
			continue
		}
		sig := issue.Type().(*types.Signature)
		if sig.Params().Len() < 3 {
			continue
		}
		tokenObj := tokenParam(pass, fd, 2)
		if tokenObj == nil {
			pass.Reportf(fd.Pos(), "%s.Issue discards its token parameter — the operation is never granted and its session blocks forever", implName(impl))
			continue
		}
		w := &grantWalker{
			pass:    pass,
			g:       g,
			grants:  grantsIface,
			name:    implName(impl) + ".Issue",
			settles: make(map[*types.Func]map[int]bool),
		}
		aliases := map[types.Object]bool{tokenObj: true}
		end := w.walkStmts(fd.Body.List, pathState{}, aliases, true, 3)
		if !end.terminated && end.minSettled == 0 {
			pass.Reportf(fd.Body.Rbrace, "%s: the token reaches neither Grant nor an escape (store/send/helper) on a path ending here — the operation leaks and its session blocks forever", w.name)
		}
	}
	return nil
}

// implName renders a pointer-to-named implementation type bare.
func implName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// tokenParam resolves the object of the decl's i-th (flattened)
// parameter; nil when it is blank or unnamed.
func tokenParam(pass *Pass, fd *ast.FuncDecl, i int) types.Object {
	idx := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			idx++
			continue
		}
		for _, name := range names {
			if idx == i {
				if name.Name == "_" {
					return nil
				}
				return pass.Info.Defs[name]
			}
			idx++
		}
	}
	return nil
}

// pathState is the walker's per-path summary. minSettled is the settle
// count guaranteed on every path reaching this point; maxGranted the
// Grant count possible on some path (for may-double-grant detection).
type pathState struct {
	minSettled int
	maxGranted int
	terminated bool
}

type grantWalker struct {
	pass   *Pass
	g      *callGraph
	grants *types.Interface
	name   string
	// settles caches helper verdicts: does fn settle its i-th parameter
	// on all paths?
	settles map[*types.Func]map[int]bool
}

// walkStmts threads the state through a statement list, forking at
// branches. report=false runs the walker silently (helper verdicts).
func (w *grantWalker) walkStmts(list []ast.Stmt, st pathState, aliases map[types.Object]bool, report bool, depth int) pathState {
	for _, s := range list {
		if st.terminated {
			return st
		}
		st = w.walkStmt(s, st, aliases, report, depth)
	}
	return st
}

func (w *grantWalker) walkStmt(s ast.Stmt, st pathState, aliases map[types.Object]bool, report bool, depth int) pathState {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(x.List, st, aliases, report, depth)
	case *ast.IfStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st, aliases, report, depth)
		}
		st = w.scanExpr(x.Cond, st, aliases, report, depth)
		thenSt := w.walkStmt(x.Body, st, copyAliases(aliases), report, depth)
		elseSt := st
		if x.Else != nil {
			elseSt = w.walkStmt(x.Else, st, copyAliases(aliases), report, depth)
		}
		return mergeStates(thenSt, elseSt)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranchy(s, st, aliases, report, depth)
	case *ast.ForStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st, aliases, report, depth)
		}
		if x.Cond != nil {
			st = w.scanExpr(x.Cond, st, aliases, report, depth)
		}
		// The body may run zero times: its settles never satisfy the
		// must-settle direction, but its grants count toward may-grant.
		bodySt := w.walkStmt(x.Body, st, copyAliases(aliases), report, depth)
		return pathState{minSettled: st.minSettled, maxGranted: bodySt.maxGranted, terminated: false}
	case *ast.RangeStmt:
		st = w.scanExpr(x.X, st, aliases, report, depth)
		bodySt := w.walkStmt(x.Body, st, copyAliases(aliases), report, depth)
		return pathState{minSettled: st.minSettled, maxGranted: bodySt.maxGranted, terminated: false}
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			st = w.scanExpr(res, st, aliases, report, depth)
		}
		if st.minSettled == 0 && report {
			w.pass.Reportf(x.Pos(), "%s: the token reaches neither Grant nor an escape (store/send/helper) on the path returning here — the operation leaks and its session blocks forever", w.name)
		}
		st.terminated = true
		return st
	case *ast.AssignStmt:
		// Alias propagation: `t := token` (or `t = token`) makes t carry
		// the token; any other RHS use is scanned for events, and an
		// aliased value stored through a selector/index escapes.
		for i, rhs := range x.Rhs {
			if i < len(x.Lhs) {
				if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if src, ok := unparen(rhs).(*ast.Ident); ok {
						if obj := exprObj(w.pass.Info, src); obj != nil && aliases[obj] {
							if lobj := w.objOf(id); lobj != nil {
								aliases[lobj] = true
							}
							continue
						}
					}
					st = w.scanExpr(rhs, st, aliases, report, depth)
					continue
				}
				// Store through a selector/index: an aliased RHS escapes
				// into reachable state.
				if w.usesAlias(rhs, aliases) {
					st.minSettled++
					st = w.scanGrantsOnly(rhs, st, aliases, report, depth)
					continue
				}
			}
			st = w.scanExpr(rhs, st, aliases, report, depth)
		}
		return st
	case *ast.ExprStmt:
		return w.scanExpr(x.X, st, aliases, report, depth)
	case *ast.SendStmt:
		if w.usesAlias(x.Value, aliases) {
			st.minSettled++
			return st
		}
		return w.scanExpr(x.Value, st, aliases, report, depth)
	case *ast.DeferStmt:
		return w.scanExpr(x.Call, st, aliases, report, depth)
	case *ast.GoStmt:
		return w.scanExpr(x.Call, st, aliases, report, depth)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						if src, ok := unparen(v).(*ast.Ident); ok && i < len(vs.Names) {
							if obj := exprObj(w.pass.Info, src); obj != nil && aliases[obj] {
								if lobj := w.pass.Info.Defs[vs.Names[i]]; lobj != nil {
									aliases[lobj] = true
								}
								continue
							}
						}
						st = w.scanExpr(v, st, aliases, report, depth)
					}
				}
			}
		}
		return st
	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, st, aliases, report, depth)
	default:
		return st
	}
}

// walkBranchy forks the state across a switch/select's clauses. Without
// a default clause the zero-clause fallthrough path is merged in too.
func (w *grantWalker) walkBranchy(s ast.Stmt, st pathState, aliases map[types.Object]bool, report bool, depth int) pathState {
	var body *ast.BlockStmt
	hasDefault := false
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st, aliases, report, depth)
		}
		if x.Tag != nil {
			st = w.scanExpr(x.Tag, st, aliases, report, depth)
		}
		body = x.Body
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st, aliases, report, depth)
		}
		body = x.Body
	case *ast.SelectStmt:
		body = x.Body
	}
	merged := pathState{minSettled: -1}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				st = w.scanExpr(e, st, aliases, report, depth)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				st = w.walkStmt(c.Comm, st, aliases, report, depth)
			}
			stmts = c.Body
		}
		cs := w.walkStmts(stmts, st, copyAliases(aliases), report, depth)
		merged = mergeStates(merged, cs)
	}
	if _, isSelect := s.(*ast.SelectStmt); !hasDefault && !isSelect {
		merged = mergeStates(merged, st) // no matching case: fall through unchanged
	}
	if merged.minSettled == -1 {
		return st
	}
	return merged
}

// scanExpr walks an expression for settle events on the aliased token:
// Grant calls, composite-literal captures, unresolvable-call escapes,
// and in-package helper flows (recursed for a must-settle verdict).
func (w *grantWalker) scanExpr(e ast.Expr, st pathState, aliases map[types.Object]bool, report bool, depth int) pathState {
	if e == nil {
		return st
	}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := unparen(e).(type) {
		case *ast.CallExpr:
			for _, arg := range x.Args {
				walk(arg)
			}
			if w.pass.Info.Types[x.Fun].IsType() {
				return // a conversion is transparent, not a consumer
			}
			if !w.callUsesAlias(x, aliases) {
				return
			}
			st = w.settleEvent(x, st, aliases, report, depth)
		case *ast.CompositeLit:
			if w.usesAlias(x, aliases) {
				// The token is captured into a value; whoever receives
				// the literal owns settling it.
				st.minSettled++
				return
			}
		case *ast.FuncLit:
			if w.usesAlias(x.Body, aliases) {
				st.minSettled++ // captured by a closure: escapes
			}
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X) // x.Index reading at the token's index is not a settle
		case *ast.SelectorExpr:
			walk(x.X)
		case *ast.StarExpr:
			walk(x.X)
		}
	}
	walk(e)
	return st
}

// scanGrantsOnly scans an already-escaping expression for Grant calls so
// `p.state[n] = grant(token)`-shaped code still counts its grants.
func (w *grantWalker) scanGrantsOnly(e ast.Expr, st pathState, aliases map[types.Object]bool, report bool, depth int) pathState {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w.isGrantCall(call) && w.callUsesAlias(call, aliases) {
			st.maxGranted++
		}
		return true
	})
	return st
}

// settleEvent classifies one alias-carrying call: Grant, an in-package
// helper (recursed for a verdict), or a blind call (conservative
// escape).
func (w *grantWalker) settleEvent(call *ast.CallExpr, st pathState, aliases map[types.Object]bool, report bool, depth int) pathState {
	if w.isGrantCall(call) {
		if st.maxGranted >= 1 && report {
			w.pass.Reportf(call.Pos(), "%s: the token may already be granted when this Grant runs — a double grant frees the token-table slot twice and completes a stranger's operation", w.name)
		} else if st.minSettled >= 1 && report {
			w.pass.Reportf(call.Pos(), "%s: the token was already stored or forwarded on this path; granting it again settles it twice", w.name)
		}
		st.minSettled++
		st.maxGranted++
		return st
	}
	// Builtin append/copy with the token inside a composite literal is
	// handled by the CompositeLit case; a bare `append(s, token)` treats
	// the append as a store-escape.
	callee := calleeFunc(w.pass.Info, call)
	if callee != nil {
		if fd := w.g.decls[origin(callee)]; fd != nil && fd.Body != nil && depth > 0 {
			if idx, ok := w.aliasArgIndex(call, callee, aliases); ok {
				if w.helperSettles(origin(callee), fd, idx, depth-1) {
					st.minSettled++
				}
				// A helper that does not always settle contributes
				// nothing: the leak (if any) is reported at this
				// function's own path ends.
				return st
			}
		}
	}
	// Blind call (cross-package, builtin, func value): assume the callee
	// settles the token it received.
	st.minSettled++
	return st
}

// isGrantCall recognizes a call to Grant on sim.Grants or any type
// implementing it.
func (w *grantWalker) isGrantCall(call *ast.CallExpr) bool {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil || fn.Name() != "Grant" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	return types.Implements(recv, w.grants) || types.Implements(types.NewPointer(recv), w.grants) ||
		types.Identical(recv.Underlying(), w.grants)
}

// aliasArgIndex finds which of the callee's parameters the aliased token
// flows into (first match).
func (w *grantWalker) aliasArgIndex(call *ast.CallExpr, callee *types.Func, aliases map[types.Object]bool) (int, bool) {
	sig := callee.Type().(*types.Signature)
	for i, arg := range call.Args {
		if !w.usesAlias(arg, aliases) {
			continue
		}
		idx := i
		if sig.Variadic() && idx >= sig.Params().Len() {
			idx = sig.Params().Len() - 1
		}
		if idx < sig.Params().Len() {
			return idx, true
		}
	}
	return 0, false
}

// helperSettles answers, memoized and depth-bounded, whether fn settles
// its idx-th parameter on all paths.
func (w *grantWalker) helperSettles(fn *types.Func, fd *ast.FuncDecl, idx, depth int) bool {
	if verdicts, ok := w.settles[fn]; ok {
		if v, ok := verdicts[idx]; ok {
			return v
		}
	} else {
		w.settles[fn] = make(map[int]bool)
	}
	w.settles[fn][idx] = false // cycle default: assume not settled
	obj := tokenParam(w.pass, fd, idx)
	if obj == nil {
		return false
	}
	end := w.walkStmts(fd.Body.List, pathState{}, map[types.Object]bool{obj: true}, false, depth)
	v := end.minSettled > 0
	w.settles[fn][idx] = v
	return v
}

// usesAlias reports whether any aliased identifier occurs under e.
func (w *grantWalker) usesAlias(n ast.Node, aliases map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if obj := w.pass.Info.Uses[id]; obj != nil && aliases[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// callUsesAlias reports whether an aliased identifier occurs in the
// call's arguments outside nested calls and composite literals (those
// account for their own events).
func (w *grantWalker) callUsesAlias(call *ast.CallExpr, aliases map[types.Object]bool) bool {
	for _, arg := range call.Args {
		if w.directUse(arg, aliases) {
			return true
		}
	}
	return false
}

// directUse finds an alias use not nested inside an inner call, literal
// or closure.
func (w *grantWalker) directUse(e ast.Expr, aliases map[types.Object]bool) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.Info.Uses[x]
		return obj != nil && aliases[obj]
	case *ast.BinaryExpr:
		return w.directUse(x.X, aliases) || w.directUse(x.Y, aliases)
	case *ast.UnaryExpr:
		return w.directUse(x.X, aliases)
	case *ast.StarExpr:
		return w.directUse(x.X, aliases)
	case *ast.IndexExpr:
		return w.directUse(x.X, aliases) || w.directUse(x.Index, aliases)
	case *ast.SelectorExpr:
		return w.directUse(x.X, aliases)
	case *ast.CallExpr:
		// A conversion is transparent; a real call accounts for itself.
		if w.pass.Info.Types[x.Fun].IsType() {
			for _, arg := range x.Args {
				if w.directUse(arg, aliases) {
					return true
				}
			}
		}
		return false
	}
	return false
}

func (w *grantWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.pass.Info.Uses[id]
}

func copyAliases(m map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func mergeStates(a, b pathState) pathState {
	switch {
	case a.minSettled == -1:
		return b
	case a.terminated && b.terminated:
		return pathState{minSettled: minInt(a.minSettled, b.minSettled), maxGranted: maxInt(a.maxGranted, b.maxGranted), terminated: true}
	case a.terminated:
		return b
	case b.terminated:
		return a
	default:
		return pathState{minSettled: minInt(a.minSettled, b.minSettled), maxGranted: maxInt(a.maxGranted, b.maxGranted)}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
