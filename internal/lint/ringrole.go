package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ringPath is the import path of the audited SPSC transport package whose
// producer/consumer discipline the analyzer enforces.
const ringPath = "repro/internal/ring"

// The //countq:role annotation contract: internal/ring's contract is
// positional — exactly one goroutine may call the producer-side methods
// of a ring and exactly one the consumer-side methods — but nothing in
// the type system records which functions run on which side, so a
// misplaced Push or Pop compiles, passes vet, and corrupts the ring only
// under a scheduling -race may never produce. A function that can reach
// a ring primitive (directly or through unannotated same-package
// callees, interface calls CHA-resolved) must therefore declare its side
// with //countq:role=producer or //countq:role=consumer; the analyzer
// verifies the declared side against the primitives actually reachable.
// Annotated functions are traversal boundaries: a consumer-side function
// may call a producer-annotated one (e.g. the pump settling grants into
// a different ring than the lanes it sweeps) — each annotated function
// is checked against its own role, and the pivot between rings is
// exactly what the annotation documents.
//
// The analyzer also enforces the park protocol on Event/Lanes: a receive
// from WakeChan() must be preceded, in the same function, by a Prepare
// call with at least one statement between them — the mandatory re-check
// for work published before the parked flag became visible. Parking
// without Prepare (or immediately after it) loses wakeups.
var RingRoleAnalyzer = &Analyzer{
	Name: "ringrole",
	Doc: "functions reaching ring.SPSC/Lanes/Event producer-only methods (Push, Wake) or " +
		"consumer-only methods (Pop, DrainTo, Snapshot, Prepare, WakeChan, Unpark) must carry a " +
		"matching //countq:role=producer|consumer annotation; mixed or unannotated reachability " +
		"is flagged, and WakeChan receives must be dominated by Prepare with a re-check between",
	Run: runRingRole,
}

// ringMethodRoles hardcodes each primitive's side. The names are
// Type.Method on internal/ring's exported types.
var ringMethodRoles = map[string]string{
	"SPSC.Push":  "producer",
	"Event.Wake": "producer",
	"Lanes.Wake": "producer",

	"SPSC.Pop":       "consumer",
	"SPSC.DrainTo":   "consumer",
	"SPSC.Len":       "", // racy-read; legal from either side, exact from the consumer
	"Event.Prepare":  "consumer",
	"Event.WakeChan": "consumer",
	"Event.Unpark":   "consumer",
	"Lanes.Snapshot": "consumer",
	"Lanes.Prepare":  "consumer",
	"Lanes.WakeChan": "consumer",
	"Lanes.Unpark":   "consumer",
}

// ringPrimitive classifies fn as one of internal/ring's role-carrying
// methods, returning its display name and side.
func ringPrimitive(fn *types.Func) (name, role string, ok bool) {
	fn = origin(fn)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != ringPath {
		return "", "", false
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil {
		return "", "", false
	}
	recv := sig.Recv().Type()
	if p, okPtr := recv.(*types.Pointer); okPtr {
		recv = p.Elem()
	}
	named, okNamed := recv.(*types.Named)
	if !okNamed {
		return "", "", false
	}
	name = named.Obj().Name() + "." + fn.Name()
	role, known := ringMethodRoles[name]
	if !known || role == "" {
		return "", "", false
	}
	return "ring." + name, role, true
}

func runRingRole(pass *Pass) error {
	if importedPkg(pass.Pkg, ringPath) == nil {
		return nil // package does not touch the transport
	}
	g := packageCallGraph(pass)

	// Reachable-role summaries: R(f) maps role -> witness primitive name,
	// unioned over f's callees, stopping at role-annotated callees (each
	// is checked under its own annotation). Memoized with a visiting set
	// so recursion terminates on cycles.
	reach := make(map[*types.Func]map[string]string)
	visiting := make(map[*types.Func]bool)
	var reachOf func(fn *types.Func) map[string]string
	reachOf = func(fn *types.Func) map[string]string {
		fn = origin(fn)
		if r, ok := reach[fn]; ok {
			return r
		}
		if visiting[fn] {
			return nil
		}
		visiting[fn] = true
		r := make(map[string]string)
		for _, callee := range g.callees(fn) {
			if name, role, ok := ringPrimitive(callee); ok {
				r[role] = name
				continue
			}
			if g.decls[callee] == nil {
				continue // cross-package: blind, and ring itself is fully classified above
			}
			if g.roleAnnotated(callee) {
				continue // boundary: callee is checked under its own role
			}
			for role, name := range reachOf(callee) {
				r[role] = name
			}
		}
		delete(visiting, fn)
		reach[fn] = r
		return r
	}

	// Functions whose declarations carry the directive, for the
	// misplaced-directive sweep below.
	attached := make(map[*ast.Comment]bool)
	type declInfo struct {
		fn *types.Func
		fd *ast.FuncDecl
	}
	var ordered []declInfo
	for fn, fd := range g.decls {
		ordered = append(ordered, declInfo{fn, fd})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].fd.Pos() < ordered[j].fd.Pos() })

	for _, d := range ordered {
		fn, fd := d.fn, d.fd
		role, bad, annotated := roleOf(fd)
		if annotated && fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), roleDirectivePrefix) {
					attached[c] = true
				}
			}
		}
		if annotated && bad != "" {
			pass.Reportf(fd.Pos(), "%s: %s", fd.Name.Name, bad)
			continue
		}

		// Direct primitive calls, with their sites.
		type site struct {
			pos  token.Pos
			name string
			role string
		}
		var direct []site
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(pass.Info, call); callee != nil {
				if name, r, ok := ringPrimitive(callee); ok {
					direct = append(direct, site{call.Pos(), name, r})
				}
			}
			return true
		})
		transitive := make(map[string]string)
		for _, callee := range g.callees(fn) {
			if _, _, ok := ringPrimitive(callee); ok {
				continue // counted as direct above
			}
			if g.decls[callee] == nil || g.roleAnnotated(callee) {
				continue
			}
			for r, name := range reachOf(callee) {
				transitive[r] = name
			}
		}

		if selfName, selfRole, isPrim := ringPrimitive(fn); isPrim {
			// ring's own primitives: the annotation, when present, must
			// restate the hardcoded side.
			if annotated && role != selfRole {
				pass.Reportf(fd.Pos(), "%s is the %s-side primitive %s but is annotated //countq:role=%s", fd.Name.Name, selfRole, selfName, role)
			}
			continue
		}

		switch {
		case annotated:
			opposite := "consumer"
			if role == "consumer" {
				opposite = "producer"
			}
			for _, s := range direct {
				if s.role == opposite {
					pass.Reportf(s.pos, "%s is annotated //countq:role=%s but calls the %s-only method %s (one side of an SPSC ring must never touch the other's cursor)", fd.Name.Name, role, opposite, s.name)
				}
			}
			if name, ok := transitive[opposite]; ok {
				pass.Reportf(fd.Pos(), "%s is annotated //countq:role=%s but reaches the %s-only method %s through unannotated callees (annotate the callee chain or move the call behind a role boundary)", fd.Name.Name, role, opposite, name)
			}
			if len(direct) == 0 && len(transitive) == 0 {
				pass.Reportf(fd.Pos(), "%s carries //countq:role=%s but reaches no ring producer/consumer method — dead annotation (drop it, or it will mask a future violation)", fd.Name.Name, role)
			}
		default:
			roles := make(map[string]string)
			for _, s := range direct {
				roles[s.role] = s.name
			}
			for r, name := range transitive {
				roles[r] = name
			}
			switch {
			case len(roles) == 2:
				pass.Reportf(fd.Pos(), "%s reaches both producer-only (%s) and consumer-only (%s) ring methods with no //countq:role annotation — mixed-role access on one ring races its cursors; split the function along the role boundary", fd.Name.Name, roles["producer"], roles["consumer"])
			case len(roles) == 1:
				for r, name := range roles {
					pos := fd.Pos()
					if len(direct) > 0 {
						pos = direct[0].pos
					}
					pass.Reportf(pos, "%s reaches the %s-only ring method %s but carries no //countq:role annotation (declare //countq:role=%s so the side is auditable)", fd.Name.Name, r, name, r)
				}
			}
		}

		checkParkDiscipline(pass, fd)
	}

	// A role directive anywhere but a function's doc comment is dead.
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), roleDirectivePrefix) && !attached[c] {
					pass.Reportf(c.Pos(), "misplaced //countq:role: the directive must be in a function's doc comment")
				}
			}
		}
	}
	return nil
}

// checkParkDiscipline enforces Prepare-dominates-park with a re-check
// between: every receive from a WakeChan() result needs a lexically
// preceding Prepare call in the same function, and at least one
// statement strictly between the Prepare and the receive (the work
// re-check that makes the park lossless).
func checkParkDiscipline(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	// Track ch := x.WakeChan() bindings so `<-ch` counts as a park.
	wakeChans := make(map[types.Object]bool)
	var prepares []token.Pos // End() of each Prepare call
	type recvSite struct{ pos token.Pos }
	var recvs []recvSite
	var stmts []ast.Stmt
	isWakeChanCall := func(e ast.Expr) bool {
		call, ok := unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return false
		}
		name, _, ok := ringPrimitive(fn)
		return ok && strings.HasSuffix(name, ".WakeChan")
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch x := n.(type) {
		case ast.Stmt:
			stmts = append(stmts, x)
			if a, ok := x.(*ast.AssignStmt); ok && len(a.Lhs) == len(a.Rhs) {
				for i, rhs := range a.Rhs {
					if isWakeChanCall(rhs) {
						if id, ok := a.Lhs[i].(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								wakeChans[obj] = true
							} else if obj := info.Uses[id]; obj != nil {
								wakeChans[obj] = true
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil {
				if name, _, ok := ringPrimitive(fn); ok && strings.HasSuffix(name, ".Prepare") {
					prepares = append(prepares, x.End())
				}
			}
		case *ast.UnaryExpr:
			if x.Op != token.ARROW {
				return true
			}
			operand := unparen(x.X)
			if isWakeChanCall(operand) {
				recvs = append(recvs, recvSite{x.Pos()})
				return true
			}
			if id, ok := operand.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && wakeChans[obj] {
					recvs = append(recvs, recvSite{x.Pos()})
				}
			}
		}
		return true
	})
	for _, rc := range recvs {
		var prep token.Pos // latest Prepare ending before the receive
		for _, p := range prepares {
			if p < rc.pos && p > prep {
				prep = p
			}
		}
		if prep == token.NoPos {
			pass.Reportf(rc.pos, "%s parks on WakeChan with no preceding Prepare call — the parked flag is never set, so a producer's Wake is skipped and this wait can hang", fd.Name.Name)
			continue
		}
		between := false
		for _, s := range stmts {
			if s.Pos() > prep && s.End() < rc.pos {
				between = true
				break
			}
		}
		if !between {
			pass.Reportf(rc.pos, "%s parks on WakeChan immediately after Prepare with no re-check between — work published before the parked flag became visible produced no signal, so this wait can miss it; re-check the work source (and Unpark) between Prepare and the receive", fd.Name.Name)
		}
	}
}
