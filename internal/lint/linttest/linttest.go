// Package linttest is the countqlint suite's analysistest: it typechecks
// a fixture directory against the real module (so fixtures may import
// repro/countq), runs one analyzer over it, and matches the diagnostics
// against trailing `// want "regexp"` comments in both directions — a
// missing diagnostic and an unexpected one both fail the test. It lives
// beside internal/lint rather than inside it so the shipped analyzers
// never link the testing package.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads the fixture package in dir, applies the analyzer, and
// reconciles findings with the fixture's want-comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkg)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.File), f.Line)
		matched := false
		for i, re := range wants[key] {
			if re != nil && re.MatchString(f.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, f.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, re := range wants[k] {
			if re != nil {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, re)
			}
		}
	}
}

// wantRE extracts the quoted regexps of a want comment; both Go string
// forms are accepted (`// want "..."` and backtick-raw for patterns full
// of escapes).
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants indexes the fixture's want-comments by "file:line".
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// A want clause usually is the whole comment, but may
				// trail other directive text (`//countq:hotpath want "…"`)
				// when the flagged line is the directive itself.
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("want "):]
				if !strings.HasPrefix(rest, `"`) && !strings.HasPrefix(rest, "`") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, q := range wantRE.FindAllString(rest, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// loadFixture typechecks the fixture directory as one package, resolving
// its imports (standard library and repro/... alike) from export data the
// go tool produces at the module root — the same pipeline lint.Load uses
// for real packages, pointed at a tree `go list ./...` ignores.
func loadFixture(dir string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, name := range names {
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
		for _, imp := range af.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path != "unsafe" {
				imports[path] = true
			}
		}
	}

	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	var patterns []string
	for path := range imports {
		patterns = append(patterns, path)
	}
	sort.Strings(patterns)
	exports := make(map[string]string)
	if len(patterns) > 0 {
		exports, err = exportData(root, patterns)
		if err != nil {
			return nil, err
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("linttest: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := unsafeAware{importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	path := "fixture/" + filepath.Base(dir)
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %s: %w", dir, err)
	}
	return &lint.Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// unsafeAware short-circuits "unsafe", which has no export data.
type unsafeAware struct{ inner types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.inner.Import(path)
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

// exportData maps import paths to gc export-data files via
// `go list -export -deps` at the module root.
func exportData(root string, patterns []string) (map[string]string, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	type listPkg struct {
		ImportPath string
		Export     string
		Incomplete bool
		Error      *struct{ Err string }
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Incomplete || p.Error != nil {
			msg := "unknown error"
			if p.Error != nil {
				msg = p.Error.Err
			}
			return nil, fmt.Errorf("package %s does not compile: %s", p.ImportPath, msg)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
