package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// The //countq:hotpath annotation contract: a function whose doc comment
// carries the directive is a steady-state hot path — a laneRunner per-op
// method, an shm Inc/Enqueue/Submit fast path, a combiner sweep — and must
// stay free of heap-allocating constructs. The analyzer is the
// compile-time twin of countq/alloc_test.go's AllocsPerRun gates: the
// runtime gate proves one workload shape allocates nothing, the analyzer
// proves no code path reintroduces an allocating construct at all.
//
// Banned inside an annotated function:
//
//   - closures (func literals capture by reference and escape)
//   - defer (the deferred record escapes on the unmeasured path variants)
//   - go statements (a goroutine launch allocates its stack)
//   - make/new of any kind, and &T{...} composite-literal addresses
//   - composite literals escaping into interface-typed contexts (boxing)
//   - map iteration (range over a map allocates its iterator)
//   - fmt.* calls, except feeding a return statement or a panic — the
//     cold error paths
//   - spread appends (append(s, v...) grows by a runtime-sized batch, so
//     the reserved-capacity argument that legitimizes plain appends does
//     not cover it)
//   - string concatenation that is not constant-folded (each + allocates
//     the joined result), with the same return/panic exemption as fmt
//   - clock reads (time.Now / time.Since) beyond the annotated budget:
//     `//countq:hotpath clocks=N` declares the audited number of call
//     sites (default 1), so extra reads are flagged until re-audited
//
// Plain single-element appends are allowed: the hot paths append into
// capacity reserved by the (deliberately unannotated) amortized helpers
// reserve/grow.
const hotPathDirective = "//countq:hotpath"

// HotPathAnalyzer enforces the //countq:hotpath annotation contract.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //countq:hotpath must not contain heap-allocating constructs " +
		"(closures, defer, make, interface-escaping composites, map ranges, non-cold fmt, " +
		"spread appends, non-constant string concatenation) or clock reads beyond the " +
		"clocks=N budget",
	Run: runHotPath,
}

// hotPathBudget parses the directive's arguments. ok is false when the
// doc group carries no countq:hotpath directive.
func hotPathBudget(doc *ast.CommentGroup) (clocks int, bad string, ok bool) {
	if doc == nil {
		return 0, "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text != hotPathDirective && !strings.HasPrefix(text, hotPathDirective+" ") {
			continue
		}
		clocks = 1
		for _, arg := range strings.Fields(strings.TrimPrefix(text, hotPathDirective)) {
			val, found := strings.CutPrefix(arg, "clocks=")
			if !found {
				return 0, fmt.Sprintf("unknown //countq:hotpath argument %q (supported: clocks=N)", arg), true
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, fmt.Sprintf("malformed //countq:hotpath clock budget %q (want clocks=N, N ≥ 0)", arg), true
			}
			clocks = n
		}
		return clocks, "", true
	}
	return 0, "", false
}

func runHotPath(pass *Pass) error {
	// Directives attached to function declarations define hot paths; the
	// same directive anywhere else is dead annotation and flagged, so a
	// mis-placed comment cannot silently disable the gate.
	attached := make(map[*ast.Comment]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			clocks, bad, ok := hotPathBudget(fd.Doc)
			if !ok {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), hotPathDirective) {
					attached[c] = true
				}
			}
			if bad != "" {
				pass.Reportf(fd.Pos(), "%s: %s", fd.Name.Name, bad)
				continue
			}
			if fd.Body == nil {
				pass.Reportf(fd.Pos(), "%s: //countq:hotpath on a bodyless declaration", fd.Name.Name)
				continue
			}
			checkHotFunc(pass, fd, clocks)
		}
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), hotPathDirective) && !attached[c] {
					pass.Reportf(c.Pos(), "misplaced //countq:hotpath: the directive must be in a function's doc comment")
				}
			}
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl, clockBudget int) {
	name := fd.Name.Name
	info := pass.Info
	clockSites := 0
	// Walk the declaration (not just the body) so return statements see
	// the enclosing FuncDecl on the stack when resolving result types.
	walkStack(fd, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "%s: closure in a //countq:hotpath function (func literals capture by reference and escape)", name)
			return false
		case *ast.DeferStmt:
			pass.Reportf(x.Pos(), "%s: defer in a //countq:hotpath function (the deferred record allocates)", name)
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "%s: go statement in a //countq:hotpath function (a goroutine launch allocates)", name)
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "%s: map iteration in a //countq:hotpath function (the hidden iterator allocates)", name)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(cl.Pos(), "%s: &composite literal in a //countq:hotpath function escapes to the heap", name)
				}
			}
		case *ast.CompositeLit:
			if iface := interfaceContext(info, x, stack); iface != "" {
				pass.Reportf(x.Pos(), "%s: composite literal escapes to interface %s in a //countq:hotpath function (boxing allocates)", name, iface)
			}
		case *ast.CallExpr:
			checkHotCall(pass, name, x, stack, clockBudget, &clockSites)
		case *ast.BinaryExpr:
			checkHotConcat(pass, name, x, stack)
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 {
				if t := info.TypeOf(x.Lhs[0]); t != nil && isStringType(t) && !coldPath(stack) {
					pass.Reportf(x.Pos(), "%s: string += concatenation in a //countq:hotpath function allocates the joined result (build into a reserved []byte instead)", name)
				}
			}
		}
		return true
	})
}

// checkHotConcat flags a runtime string concatenation. Constant-folded
// expressions cost nothing, a chain reports only at its outermost +, and
// the return/panic exemption matches fmt's: taking the error path ends
// the measured iteration anyway.
func checkHotConcat(pass *Pass, name string, x *ast.BinaryExpr, stack []ast.Node) {
	info := pass.Info
	if x.Op != token.ADD {
		return
	}
	tv, ok := info.Types[x]
	if !ok || tv.Value != nil || tv.Type == nil || !isStringType(tv.Type) {
		return
	}
	if len(stack) > 0 {
		if p, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok && p.Op == token.ADD {
			if pt, found := info.Types[p]; found && pt.Value == nil && pt.Type != nil && isStringType(pt.Type) {
				return // inner term of a chain; the outermost + reports
			}
		}
	}
	if coldPath(stack) {
		return
	}
	pass.Reportf(x.Pos(), "%s: string concatenation in a //countq:hotpath function allocates the joined result (build into a reserved []byte instead)", name)
}

// isStringType reports whether t's underlying type is a string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func checkHotCall(pass *Pass, name string, call *ast.CallExpr, stack []ast.Node, clockBudget int, clockSites *int) {
	info := pass.Info
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				kind := "slice"
				if len(call.Args) > 0 {
					if t := info.TypeOf(call.Args[0]); t != nil {
						switch t.Underlying().(type) {
						case *types.Chan:
							kind = "channel"
						case *types.Map:
							kind = "map"
						}
					}
				}
				pass.Reportf(call.Pos(), "%s: make(%s) in a //countq:hotpath function allocates", name, kind)
			case "new":
				pass.Reportf(call.Pos(), "%s: new(...) in a //countq:hotpath function allocates", name)
			case "append":
				if call.Ellipsis.IsValid() {
					pass.Reportf(call.Pos(), "%s: append(s, v...) in a //countq:hotpath function grows by a runtime-sized batch — the reserved-capacity argument that allows plain appends does not cover it", name)
				}
			}
			return
		}
	}
	if isPkgFunc(info, call, "fmt", "") && !coldPath(stack) {
		f := calleeFunc(info, call)
		pass.Reportf(call.Pos(), "%s: fmt.%s outside a return/panic in a //countq:hotpath function (formatting allocates on the measured path)", name, f.Name())
	}
	if isPkgFunc(info, call, "time", "Now") || isPkgFunc(info, call, "time", "Since") {
		*clockSites++
		if *clockSites > clockBudget {
			f := calleeFunc(info, call)
			pass.Reportf(call.Pos(), "%s: time.%s call site %d exceeds the //countq:hotpath clock budget of %d (declare clocks=%d after auditing)",
				name, f.Name(), *clockSites, clockBudget, *clockSites)
		}
	}
}

// coldPath reports whether the innermost statement context of the node at
// the top of stack is a return statement or a panic call — the error
// paths a hot function may format on, since taking them ends the
// measured iteration anyway.
func coldPath(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		case ast.Stmt:
			return false
		}
	}
	return false
}

// interfaceContext reports the interface type a composite literal is
// assigned, passed or returned into, or "" when it stays concrete. Only
// the literal's immediate use is inspected — the boxing site.
func interfaceContext(info *types.Info, lit *ast.CompositeLit, stack []ast.Node) string {
	if len(stack) == 0 {
		return ""
	}
	parent := stack[len(stack)-1]
	// &T{...} is reported separately; don't double-report the boxing.
	if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return ""
	}
	litType := info.TypeOf(lit)
	if litType == nil || types.IsInterface(litType) {
		return ""
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		sig, ok := info.TypeOf(p.Fun).(*types.Signature)
		if !ok {
			return ""
		}
		for i, arg := range p.Args {
			if arg != lit && unparen(arg) != lit {
				continue
			}
			var pt types.Type
			switch {
			case sig.Variadic() && i >= sig.Params().Len()-1:
				last := sig.Params().At(sig.Params().Len() - 1).Type()
				if sl, ok := last.(*types.Slice); ok {
					pt = sl.Elem()
				}
			case i < sig.Params().Len():
				pt = sig.Params().At(i).Type()
			}
			if pt != nil && types.IsInterface(pt) {
				return pt.String()
			}
		}
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if unparen(rhs) != lit || i >= len(p.Lhs) {
				continue
			}
			if lt := info.TypeOf(p.Lhs[i]); lt != nil && types.IsInterface(lt) {
				return lt.String()
			}
		}
	case *ast.ValueSpec:
		for i, v := range p.Values {
			if unparen(v) != lit || i >= len(p.Names) {
				continue
			}
			if def := info.Defs[p.Names[i]]; def != nil && types.IsInterface(def.Type()) {
				return def.Type().String()
			}
		}
	case *ast.ReturnStmt:
		sig := enclosingSignature(info, stack)
		if sig == nil {
			return ""
		}
		for i, res := range p.Results {
			if unparen(res) != lit || i >= sig.Results().Len() {
				continue
			}
			if rt := sig.Results().At(i).Type(); types.IsInterface(rt) {
				return rt.String()
			}
		}
	}
	return ""
}

// enclosingSignature finds the signature of the innermost function
// enclosing the node at the top of stack.
func enclosingSignature(info *types.Info, stack []ast.Node) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			sig, _ := info.TypeOf(f).(*types.Signature)
			return sig
		case *ast.FuncDecl:
			if obj, ok := info.Defs[f.Name].(*types.Func); ok {
				return obj.Type().(*types.Signature)
			}
			return nil
		}
	}
	return nil
}
