package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicFieldAnalyzer enforces the repo's two atomics invariants:
//
//  1. A struct field accessed through sync/atomic's function API anywhere
//     in the package must be accessed atomically everywhere — one plain
//     read racing one atomic write is still a data race, and -race only
//     catches it when the schedule cooperates. Composite-literal
//     initialization is exempt (the struct is not yet shared).
//
//  2. A value whose type (transitively, through struct fields and arrays)
//     contains a sync or sync/atomic state type must not travel by value:
//     no value receivers, parameters, or results. This is stronger than
//     vet's copylocks, which keys on Lock/Unlock method sets and so has
//     nothing to say about a struct embedding atomic.Int64 once the
//     noCopy sentinel is shed by an intermediate type.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc: "struct fields accessed via sync/atomic must be accessed atomically everywhere " +
		"(composite-literal init exempt), and types containing sync/atomic state must not " +
		"be passed, returned, or received by value",
	Run: runAtomicField,
}

// atomicFns is the sync/atomic function API: a field whose address feeds
// any of these is an atomic field.
func isAtomicFn(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runAtomicField(pass *Pass) error {
	atomicUse := collectAtomicFields(pass)
	if len(atomicUse) > 0 {
		reportPlainAccesses(pass, atomicUse)
	}
	reportByValueTraffic(pass)
	return nil
}

// collectAtomicFields finds every struct field whose address is passed to
// a sync/atomic function, mapping the field object to one representative
// atomic call site.
func collectAtomicFields(pass *Pass) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicFn(fn.Name()) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if v := addressedField(pass.Info, call.Args[0]); v != nil {
				if _, seen := out[v]; !seen {
					out[v] = call.Pos()
				}
			}
			return true
		})
	}
	return out
}

// addressedField resolves &x.f to the struct field f, or nil.
func addressedField(info *types.Info, e ast.Expr) *types.Var {
	u, ok := unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// reportPlainAccesses flags every use of an atomic field that is not the
// &x.f argument of a sync/atomic call and not a composite-literal key.
func reportPlainAccesses(pass *Pass, atomicUse map[*types.Var]token.Pos) {
	info := pass.Info
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			v, _ := s.Obj().(*types.Var)
			atomicPos, tracked := atomicUse[v]
			if !tracked {
				return true
			}
			if isAtomicArg(info, sel, stack) {
				return true
			}
			ap := pass.Fset.Position(atomicPos)
			pass.Reportf(sel.Pos(), "field %s is accessed via sync/atomic (e.g. %s:%d) but read or written directly here; mixed access races",
				v.Name(), ap.Filename, ap.Line)
			return true
		})
	}
}

// isAtomicArg reports whether the selector's enclosing &-expression is an
// argument of a sync/atomic call: parent is &sel, grandparent the call.
func isAtomicArg(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	u, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			fn := calleeFunc(info, p)
			return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && isAtomicFn(fn.Name())
		default:
			return false
		}
	}
	return false
}

// reportByValueTraffic flags value receivers, parameters, and results
// whose type transitively contains sync/atomic state.
func reportByValueTraffic(pass *Pass) {
	check := func(fname string, role string, field *ast.Field) {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			return
		}
		if leaf := syncStateIn(t, make(map[types.Type]bool)); leaf != "" {
			pass.Reportf(field.Pos(), "%s: %s of type %s travels by value but contains %s; pass a pointer (copies desynchronize the state)",
				fname, role, t, leaf)
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				for _, field := range fd.Recv.List {
					check(name, "receiver", field)
				}
			}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					check(name, "parameter", field)
				}
			}
			if fd.Type.Results != nil {
				for _, field := range fd.Type.Results.List {
					check(name, "result", field)
				}
			}
		}
	}
}

// syncStateIn reports the sync/sync-atomic state type a value of type t
// would copy, or "". Pointers, channels, maps, slices, funcs and
// interfaces are references — traversal stops there; structs and arrays
// are traversed.
func syncStateIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			path := pkg.Path()
			if (path == "sync" || path == "sync/atomic") && !types.IsInterface(t) {
				return path + "." + named.Obj().Name()
			}
		}
		return syncStateIn(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if leaf := syncStateIn(u.Field(i).Type(), seen); leaf != "" {
				return leaf
			}
		}
	case *types.Array:
		return syncStateIn(u.Elem(), seen)
	}
	return ""
}
