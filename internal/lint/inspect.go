package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// unparen strips any number of enclosing parentheses (ast.Unparen, inlined
// here because the module's language version predates it).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// walkStack visits every node under root in depth-first order, handing fn
// the chain of ancestors (outermost first, root's parent excluded). fn
// returning false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the function or method a call invokes, when it is a
// declared function (not a builtin, func value, or interface method whose
// concrete target is unknown — those return nil).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether the call invokes the named function (or any
// function when name is "") of the package with the given import path.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	return name == "" || f.Name() == name
}

// constString extracts the compile-time string value of an expression,
// reporting false for anything not constant-folded to a string.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// constInt extracts the compile-time integer value of an expression.
func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return v, true
}

// exprObj resolves an expression to the object it names, unwrapping parens
// and &x / *x so that `o`, `&o` and `*o` all land on o's object.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[x]; o != nil {
			return o
		}
		return info.Defs[x]
	case *ast.UnaryExpr:
		return exprObj(info, x.X)
	case *ast.StarExpr:
		return exprObj(info, x.X)
	}
	return nil
}

// funcDecls indexes a package's function declarations by their object, so
// analyzers can follow same-package calls into the callee's body.
func funcDecls(files []*ast.File, info *types.Info) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// resolveFuncLit resolves an expression to a function literal: the literal
// itself, or — for an identifier — the single `x := func(...){...}` /
// `var x = func(...){...}` assignment that defines it in the enclosing
// file set. Reassigned identifiers resolve to nil.
func resolveFuncLit(files []*ast.File, info *types.Info, e ast.Expr) *ast.FuncLit {
	switch x := unparen(e).(type) {
	case *ast.FuncLit:
		return x
	case *ast.Ident:
		obj := exprObj(info, x)
		if obj == nil {
			return nil
		}
		var lit *ast.FuncLit
		assigns := 0
		for _, f := range files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch a := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range a.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || (info.Defs[id] != obj && info.Uses[id] != obj) {
							continue
						}
						assigns++
						if i < len(a.Rhs) {
							if fl, ok := unparen(a.Rhs[i]).(*ast.FuncLit); ok {
								lit = fl
							}
						}
					}
				case *ast.ValueSpec:
					for i, name := range a.Names {
						if info.Defs[name] != obj {
							continue
						}
						assigns++
						if i < len(a.Values) {
							if fl, ok := unparen(a.Values[i]).(*ast.FuncLit); ok {
								lit = fl
							}
						}
					}
				}
				return true
			})
		}
		if assigns == 1 {
			return lit
		}
	}
	return nil
}

// resolveComposite resolves an expression to the composite literal that
// defines its value: the literal itself, or the single initialization of
// the named variable it refers to.
func resolveComposite(files []*ast.File, info *types.Info, e ast.Expr) *ast.CompositeLit {
	switch x := unparen(e).(type) {
	case *ast.CompositeLit:
		return x
	case *ast.Ident:
		obj := exprObj(info, x)
		if obj == nil {
			return nil
		}
		var lit *ast.CompositeLit
		assigns := 0
		for _, f := range files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch a := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range a.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || (info.Defs[id] != obj && info.Uses[id] != obj) {
							continue
						}
						assigns++
						if i < len(a.Rhs) {
							if cl, ok := unparen(a.Rhs[i]).(*ast.CompositeLit); ok {
								lit = cl
							}
						}
					}
				case *ast.ValueSpec:
					for i, name := range a.Names {
						if info.Defs[name] != obj {
							continue
						}
						assigns++
						if i < len(a.Values) {
							if cl, ok := unparen(a.Values[i]).(*ast.CompositeLit); ok {
								lit = cl
							}
						}
					}
				}
				return true
			})
		}
		if assigns == 1 {
			return lit
		}
	}
	return nil
}

// importedPkg finds an imported package by path, or nil.
func importedPkg(pkg *types.Package, path string) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return imp
		}
	}
	return nil
}

// scopeInterface looks an interface type up in a package scope.
func scopeInterface(pkg *types.Package, name string) *types.Interface {
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// scopeConstInt looks an integer constant up in a package scope.
func scopeConstInt(pkg *types.Package, name string) (int64, bool) {
	if pkg == nil {
		return 0, false
	}
	c, ok := pkg.Scope().Lookup(name).(*types.Const)
	if !ok {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(c.Val()))
	return v, exact
}
