package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
	"sync"
)

// The interprocedural core: a CHA-style call graph over one typechecked
// package, shared by the concurrency-protocol analyzers (ringrole,
// grantlife, simdet). Per-function summaries are cached per package so
// the three analyzers pay for one build.
//
// Resolution rules, chosen for the soundness direction the analyzers
// need (never miss a reachable callee; over-approximating is fine):
//
//   - Static calls resolve to the callee's *types.Func (Origin-
//     normalized, so instantiations of a generic function collapse onto
//     its declaration).
//   - Interface-method calls resolve, class-hierarchy-analysis style, to
//     every package-scope named type (or its pointer) implementing the
//     interface — the callee set any devirtualization could produce.
//   - Function literals are folded into the enclosing declared function:
//     a closure's calls are its host's calls. A closure that escapes may
//     in truth run elsewhere, which only widens the host's summary.
//   - A bare reference to a declared function (passed as a value, stored
//     in a struct) is an edge too: the reference can be called wherever
//     it flows, and the analyzers' questions ("does anything this
//     function can trigger touch a ring?") want that conservatism.
type callGraph struct {
	pkg *types.Package
	// edges maps each declared function to its callees in first-call
	// order (deduplicated). Keys and values are Origin-normalized.
	edges map[*types.Func][]*types.Func
	// decls indexes the package's function declarations.
	decls map[*types.Func]*ast.FuncDecl
}

var (
	callGraphMu    sync.Mutex
	callGraphCache = map[*types.Package]*callGraph{}
)

// packageCallGraph builds (or returns the cached) call graph for the
// pass's package.
func packageCallGraph(pass *Pass) *callGraph {
	callGraphMu.Lock()
	defer callGraphMu.Unlock()
	if g, ok := callGraphCache[pass.Pkg]; ok {
		return g
	}
	g := buildCallGraph(pass)
	callGraphCache[pass.Pkg] = g
	return g
}

// origin collapses an instantiated function or method onto its generic
// declaration, the identity funcDecls indexes by.
func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		pkg:   pass.Pkg,
		edges: make(map[*types.Func][]*types.Func),
		decls: funcDecls(pass.Files, pass.Info),
	}
	impls := implementerIndex(pass.Pkg)
	for fn, fd := range g.decls {
		g.edges[fn] = summarize(pass, fd, impls)
	}
	return g
}

// summarize collects one declaration's callee set: static callees,
// CHA-resolved interface callees, and referenced function values.
// Function literals inside the declaration are folded in.
func summarize(pass *Pass, fd *ast.FuncDecl, impls []types.Type) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	add := func(fn *types.Func) {
		fn = origin(fn)
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		out = append(out, fn)
	}
	// Identify call positions so bare references are distinguishable
	// from the Fun of a CallExpr (counted once, as a call).
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[unparen(call.Fun)] = true
		}
		return true
	})
	ast.Inspect(fd, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, x); fn != nil {
				if isInterfaceMethod(fn) {
					for _, impl := range chaResolve(pass.Pkg, fn, impls) {
						add(impl)
					}
				} else {
					add(fn)
				}
			}
		case *ast.Ident:
			if callFuns[ast.Expr(x)] {
				return true
			}
			if fn, ok := pass.Info.Uses[x].(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
				add(fn)
			}
		case *ast.SelectorExpr:
			if callFuns[ast.Expr(x)] {
				return true
			}
			if fn, ok := pass.Info.Uses[x.Sel].(*types.Func); ok {
				// Method value or qualified function reference.
				if isInterfaceMethod(fn) {
					for _, impl := range chaResolve(pass.Pkg, fn, impls) {
						add(impl)
					}
				} else {
					add(fn)
				}
			}
		}
		return true
	})
	return out
}

// isInterfaceMethod reports whether fn is declared on an interface (its
// concrete target is unknown statically).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implementerIndex lists every package-scope named (non-interface) type
// as a pointer type, the receiver form that carries a type's full method
// set. Built once per graph.
func implementerIndex(pkg *types.Package) []types.Type {
	var out []types.Type
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		out = append(out, types.NewPointer(named))
	}
	return out
}

// chaResolve finds the in-package concrete methods an interface-method
// call can dispatch to: for each package-scope type implementing the
// method's interface, the correspondingly named method.
func chaResolve(pkg *types.Package, ifaceMethod *types.Func, impls []types.Type) []*types.Func {
	recv := ifaceMethod.Type().(*types.Signature).Recv().Type()
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, t := range impls {
		if !types.Implements(t, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, ifaceMethod.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, origin(fn))
		}
	}
	return out
}

// callees returns fn's summary (nil for functions without a declaration
// in this package).
func (g *callGraph) callees(fn *types.Func) []*types.Func {
	return g.edges[origin(fn)]
}

// implementations lists the package-scope named types (as pointers)
// implementing iface, paired with the resolver analyzers use to find
// specific method declarations on them.
func implementations(pkg *types.Package, iface *types.Interface) []types.Type {
	if iface == nil {
		return nil
	}
	var out []types.Type
	for _, t := range implementerIndex(pkg) {
		if types.Implements(t, iface) {
			out = append(out, t)
		}
	}
	return out
}

// methodOn resolves a named method on a (possibly pointer) type to its
// Origin-normalized *types.Func, or nil.
func methodOn(pkg *types.Package, t types.Type, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, name)
	fn, _ := obj.(*types.Func)
	return origin(fn)
}

// roleDirectivePrefix is the shared directive marker for the role
// annotations ringrole verifies and simdet/ringrole traversal stops at.
const roleDirectivePrefix = "//countq:role="

// roleOf parses a declaration's //countq:role directive. ok reports
// whether any role directive is present; bad carries the complaint for a
// malformed one.
func roleOf(fd *ast.FuncDecl) (role string, bad string, ok bool) {
	if fd == nil || fd.Doc == nil {
		return "", "", false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, roleDirectivePrefix) {
			continue
		}
		role = strings.TrimPrefix(text, roleDirectivePrefix)
		switch role {
		case "producer", "consumer":
			return role, "", true
		}
		return "", fmt.Sprintf("unknown //countq:role value %q (want producer or consumer)", role), true
	}
	return "", "", false
}

// roleAnnotated reports whether fn's declaration carries a well-formed
// role directive — the traversal boundary between ring roles and between
// the deterministic sim core and its transport edges.
func (g *callGraph) roleAnnotated(fn *types.Func) bool {
	fd := g.decls[origin(fn)]
	if fd == nil {
		return false
	}
	_, bad, ok := roleOf(fd)
	return ok && bad == ""
}
