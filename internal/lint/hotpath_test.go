package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestHotPathBad proves every banned construct fires: closures, defer, go,
// map ranges, make/new, escaping composites, non-cold fmt, clock-budget
// overruns, malformed directives, misplaced directives. vet and
// staticcheck accept all of the fixture — the allocations are invisible to
// them because they are not bugs, just costs.
func TestHotPathBad(t *testing.T) {
	linttest.Run(t, "testdata/hotpath/bad", lint.HotPathAnalyzer)
}

// TestHotPathGood proves the real hot-path idioms stay clean: appends into
// reserved capacity, fmt feeding returns and panics, audited clocks=N
// budgets, and unannotated amortized helpers.
func TestHotPathGood(t *testing.T) {
	linttest.Run(t, "testdata/hotpath/good", lint.HotPathAnalyzer)
}
