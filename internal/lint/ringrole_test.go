package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestRingRoleBad proves every role-discipline rule fires: unannotated
// reachability (direct, transitive, and CHA-resolved through an
// interface), mixed-role access, contradicted annotations, dead and
// malformed and misplaced directives, and both park-protocol violations.
// All of it compiles and passes vet — the races need schedules -race may
// never produce.
func TestRingRoleBad(t *testing.T) {
	linttest.Run(t, "testdata/ringrole/bad", lint.RingRoleAnalyzer)
}

// TestRingRoleGood proves the legitimate transport idioms stay clean:
// matching annotations, the cross-ring consumer→producer pivot, racy Len
// reads, and the canonical Prepare/re-check/park loop.
func TestRingRoleGood(t *testing.T) {
	linttest.Run(t, "testdata/ringrole/good", lint.RingRoleAnalyzer)
}
