package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestAtomicFieldBad proves mixed atomic/plain access is caught — the
// data race vet has no checker for — along with sync state passed,
// returned, or received by value.
func TestAtomicFieldBad(t *testing.T) {
	linttest.Run(t, "testdata/atomicfield/bad", lint.AtomicFieldAnalyzer)
}

// TestAtomicFieldGood proves the exemptions: composite-literal
// initialization before sharing, typed atomic wrappers, pointer traffic,
// and sync-free structs traveling by value.
func TestAtomicFieldGood(t *testing.T) {
	linttest.Run(t, "testdata/atomicfield/good", lint.AtomicFieldAnalyzer)
}
