package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestRegistryParamsBad proves both drift directions (a read key Params
// does not declare, a declared key never read) and both Caps directions (a
// declared capability the sessions lack, an implemented capability the
// declaration hides) — including drift hidden behind getter method values
// (`g := o.Int; g("burst", 1)`, o.Int handed to a helper) in a multi-kind
// registration. The whole fixture compiles and passes vet — the
// registry's contract is invisible to generic tooling.
func TestRegistryParamsBad(t *testing.T) {
	linttest.Run(t, "testdata/registryparams/bad", lint.RegistryParamsAnalyzer)
}

// TestRegistryParamsGood proves the resolution machinery follows the
// tree's real idioms without false positives: Params via a shared
// identifier, parsing delegated to a local closure, variadic key helpers,
// the kind-gate for capabilities the structure's kind cannot serve, and a
// multi-kind registration whose constructor reads every param through
// getter method values (bound locally and passed into a helper).
func TestRegistryParamsGood(t *testing.T) {
	linttest.Run(t, "testdata/registryparams/good", lint.RegistryParamsAnalyzer)
}
