package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestGrantLifeBad proves the lifecycle rules fire: a branch that drops
// the token, a may-double grant, a discarded token parameter, a
// conditionally-settling helper, and a store-then-grant. None of these
// crash at runtime — Grant on a freed slot is a silent no-op and a
// leaked token just wedges its session — so the runtime gates, vet and
// -race never see them.
func TestGrantLifeBad(t *testing.T) {
	linttest.Run(t, "testdata/grantlife/bad", lint.GrantLifeAnalyzer)
}

// TestGrantLifeGood proves the real settle shapes pass: grant-at-home,
// forward-in-message, stow-into-state, and the always-settling helper.
func TestGrantLifeGood(t *testing.T) {
	linttest.Run(t, "testdata/grantlife/good", lint.GrantLifeAnalyzer)
}
