package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestCtxDisciplineBad proves an exported method that takes a context and
// blocks (sends, receives, bare selects, Waits, Sleeps, channel ranges)
// without consulting it is caught, as is a consumer closing a channel it
// obtained from Completions().
func TestCtxDisciplineBad(t *testing.T) {
	linttest.Run(t, "testdata/ctxdiscipline/bad", lint.CtxDisciplineAnalyzer)
}

// TestCtxDisciplineGood proves the real session shapes stay clean:
// ctx.Done-guarded selects, Err prechecks, forwarded contexts, blocking
// confined to owned goroutines, and producers closing their own channels.
func TestCtxDisciplineGood(t *testing.T) {
	linttest.Run(t, "testdata/ctxdiscipline/good", lint.CtxDisciplineAnalyzer)
}
