package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestSimDetBad proves every banned construct fires inside the
// deterministic region: clock reads, map ranges, go statements, channel
// sends and receives, select, package-level rand, and a sleep on the
// bridge's issue path. Each one keeps the final counts correct and only
// perturbs trace order — invisible to vet, staticcheck, -race, and any
// test asserting end state.
func TestSimDetBad(t *testing.T) {
	linttest.Run(t, "testdata/simdet/bad", lint.SimDetAnalyzer)
}

// TestSimDetGood proves the deterministic idioms pass: seeded *rand.Rand
// draws, keyed map access, slice ranges, round-counter time, and channel
// work hidden behind a //countq:role boundary.
func TestSimDetGood(t *testing.T) {
	linttest.Run(t, "testdata/simdet/good", lint.SimDetAnalyzer)
}
