// Distributed mutual exclusion on the message-passing simulator, two ways:
//
//  1. Raymond's token algorithm (the paper's reference [9]) run end to end:
//     requests travel toward the token over a spanning tree, the token
//     travels back, and the simulator verifies that no two critical
//     sections ever overlap.
//  2. The arrow protocol's one-shot queue, whose total order is exactly the
//     hand-off schedule a token would follow — showing how distributed
//     queuing and token-based locking are the same problem.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/raymond"
	"repro/internal/tree"
)

func main() {
	g := graph.PerfectMAryTree(2, 6) // 63 processors on a binary tree
	n := g.N()
	tr, err := tree.BFSTree(g, 0)
	if err != nil {
		log.Fatal(err)
	}

	// A third of the nodes request the lock; the token starts at the root.
	rng := rand.New(rand.NewSource(3))
	var reqs []raymond.Request
	requests := make([]bool, n)
	for v := 0; v < n; v++ {
		if rng.Intn(3) == 0 {
			requests[v] = true
			reqs = append(reqs, raymond.Request{Node: v, Time: 0})
		}
	}

	const csRounds = 2
	p, stats, err := raymond.Run(g, tr, 0, csRounds, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raymond: %d lock requests on %s, CS length %d rounds\n", len(reqs), g, csRounds)
	fmt.Printf("raymond: all served, mutual exclusion verified, %d messages, %d rounds\n",
		stats.MessagesSent, stats.Rounds)
	fmt.Println("op  node  requested  acquired  released")
	shown := 0
	for op, r := range reqs {
		if shown >= 8 {
			fmt.Printf("  … and %d more\n", len(reqs)-shown)
			break
		}
		fmt.Printf("%3d %5d %10d %9d %9d\n", op, r.Node, r.Time, p.Acquired(op), p.Released(op))
		shown++
	}

	// The same coordination via the arrow queue: the total order IS the
	// token hand-off schedule.
	res, err := arrow.RunOneShot(g, tr, 0, requests, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narrow queue order (first 10 of %d): %v\n", len(res.Order), res.Order[:min(10, len(res.Order))])
	fmt.Println("each node passes the token to its queue successor — queuing solves locking directly")

	// Aggregate comparison: Raymond's total acquisition latency includes
	// serial critical sections; the arrow queue formation cost is the
	// coordination-only part.
	totalRaymond := 0
	for op := range reqs {
		totalRaymond += p.Latency(op)
	}
	fmt.Printf("\ntotal acquisition latency (raymond, incl. serial CS): %d rounds\n", totalRaymond)
	fmt.Printf("total queue-formation delay (arrow):                  %d rounds\n", res.TotalDelay)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
