// Spec sweep: the parameterized-spec API end to end. Constructs counters
// from DSN-style specs, sweeps the sharded counter's lease batch size with
// Spec.With, and shows the two capability escape hatches — per-goroutine
// handles (HandleMaker) and block grants (BatchIncrementer) — moving the
// coordination cost the paper's lower bound prices per operation.
package main

import (
	"fmt"
	"log"

	"repro/countq"

	_ "repro/internal/shm" // register the shared-memory implementations
)

func main() {
	// Every registered structure documents its own tunables.
	fmt.Println("declared tunables:")
	for _, info := range countq.Counters() {
		for _, p := range info.Params {
			fmt.Printf("  %-12s %-8s default %-12s %s\n", info.Name, p.Name, p.Default, p.Doc)
		}
	}

	// Sweep the sharded counter's lease batch: one global fetch-and-add
	// per `batch` counts, so bigger batches amortize the hot word further.
	base, err := countq.ParseSpec("sharded?shards=4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsharded lease-batch sweep (8 goroutines, 200k ops):")
	for _, batch := range []string{"1", "16", "256"} {
		spec := base.With("batch", batch)
		res, err := countq.Run(countq.Workload{
			Counter:    spec.String(),
			Goroutines: 8,
			Ops:        200_000,
			Seed:       1,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Metrics carry the tail, not just the mean: a batch size that
		// wins on ns/op can still lose on p99 when the lease refill stalls.
		fmt.Printf("  %-28s %8.1f ns/op   p50 %6.0f   p99 %6.0f\n",
			spec, res.NsPerOp(), res.Aggregate.CounterLat.P50Ns, res.Aggregate.CounterLat.P99Ns)
	}

	// Capability interfaces, used directly: a handle owns a private lease
	// (the uncontended fast path), and IncN grants a whole block of counts
	// for one coordination round.
	c, err := countq.NewCounter("sharded?shards=2&batch=64")
	if err != nil {
		log.Fatal(err)
	}
	h := c.(countq.HandleMaker).NewHandle()
	a, b := h.Inc(), h.Inc()
	h.Close() // surrender the unused lease remainder
	first := c.(countq.BatchIncrementer).IncN(100)
	fmt.Printf("\nhandle counts: %d, %d; IncN(100) granted block [%d,%d]\n", a, b, first, first+99)

	// The queue side of the paper's contrast needs no tunables at all:
	// learning your predecessor is one atomic swap.
	q, err := countq.NewQueue("swap")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swap queue predecessors: %d, %d (Head = %d)\n", q.Enqueue(1), q.Enqueue(2), countq.Head)
}
