// Campaign walkthrough: cross-structure comparison under one scenario.
// The paper's claim is comparative — counting is harder than queuing, and
// scalable counters beat centralized ones only under the right load
// shapes — so the campaign layer runs several structure specs under a
// byte-identical phase sequence (same scenario expansion, same seed, same
// arrival schedule) and reports each structure's metrics plus delta
// ratios against a declared baseline. This example composes a scenario
// with the then-combinator, campaigns four counters over it, prints the
// aggregate deltas, and emits the Markdown export.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/countq"

	_ "repro/internal/shm" // register the shared-memory implementations
)

func main() {
	// Scenarios compose: "ramp?gmax=4;spike?cycles=2" in combinator form.
	// Reserved segment params: weight= splits the budget unevenly and
	// warmup= turns a whole segment into warmup.
	scenario := countq.Compose("ramp?gmax=4").Then("spike?cycles=2&weight=2")

	cmp, err := countq.Campaign{
		Base: countq.Workload{
			Scenario:   scenario.String(),
			Goroutines: 4,
			Ops:        200_000,
			Seed:       1,
		},
		Entries: []countq.Entry{
			{Counter: "atomic"}, // the baseline: hardware fetch-add
			{Counter: "mutex"},
			{Counter: "sharded?shards=64"},
			{Counter: "funnel"},
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Every entry ran the same phases op-for-op; the deltas are ratios
	// against the baseline's same phase (Δ < 1 on ns/op and p99 means
	// faster than atomic, Δ > 1 on throughput means more ops/sec).
	fmt.Printf("campaign over %q, baseline %s\n\n", cmp.Scenario, cmp.Baseline)
	fmt.Printf("%-22s %10s %10s %8s %8s\n", "structure", "ns/op", "p99 ns", "Δp99", "Δtput")
	for _, r := range cmp.Results {
		a := r.Metrics.Aggregate
		mark := ""
		if r.Baseline {
			mark = " (baseline)"
		}
		fmt.Printf("%-22s %10.1f %10.0f %7.2fx %7.2fx%s\n",
			r.Label, a.NsPerOp(), a.CounterLat.P99Ns,
			r.AggregateDelta.P99Ratio, r.AggregateDelta.ThroughputRatio, mark)
	}

	// The exports feed plots and PR comments: MarshalCSV loads straight
	// into a dataframe, MarshalMarkdown renders the per-phase delta table.
	md, err := cmp.MarshalMarkdown()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- Markdown export ---")
	os.Stdout.Write(md)
}
