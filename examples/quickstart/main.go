// Quickstart: build a topology, run distributed queuing (arrow protocol)
// and distributed counting (aggregating tree counter) on it, and compare
// the total delays — the paper's headline comparison in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/arrow"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/tree"
)

func main() {
	// A 6-dimensional hypercube: 64 processors, every one of them issues
	// an operation at time zero (the paper's worst case).
	g := graph.Hypercube(6)
	n := g.N()
	requests := make([]bool, n)
	for i := range requests {
		requests[i] = true
	}

	// Queuing: the arrow protocol on a Hamilton-path spanning tree
	// (Theorem 4.5's construction — the Gray-code path of the cube).
	order := graph.HypercubeHamiltonPath(6)
	pathTree, err := tree.PathTree(order)
	if err != nil {
		log.Fatal(err)
	}
	qRes, err := arrow.RunOneShot(g, pathTree, pathTree.Root(), requests, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Counting: the aggregating tree counter on a BFS spanning tree.
	bfsTree, err := tree.BFSTree(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	counter, err := counting.NewTreeCount(bfsTree, requests)
	if err != nil {
		log.Fatal(err)
	}
	cRes, err := counting.Run(g, counter, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("topology: %s\n", g)
	fmt.Printf("queuing  (arrow on Hamilton path): total delay %5d, max %3d, %d messages\n",
		qRes.TotalDelay, qRes.MaxDelay, qRes.Stats.MessagesSent)
	fmt.Printf("counting (tree counter on BFS):    total delay %5d, max %3d, %d messages\n",
		cRes.TotalDelay, cRes.MaxDelay, cRes.Stats.MessagesSent)
	fmt.Printf("counting / queuing = %.1f×  — counting is harder, as the paper proves\n",
		float64(cRes.TotalDelay)/float64(qRes.TotalDelay))

	// What each processor actually learned (first few):
	fmt.Println("\nfirst five operations in the arrow queue order:", qRes.Order[:5])
	for _, v := range qRes.Order[:5] {
		fmt.Printf("  node %2d: predecessor=%2d  count(rank from tree counter)=%d\n",
			v, pred(qRes, v), counter.Count(v))
	}
}

// pred extracts node v's predecessor from the order (Order[i-1], or HEAD).
func pred(r *arrow.Result, v int) int {
	for i, u := range r.Order {
		if u == v {
			if i == 0 {
				return arrow.Head
			}
			return r.Order[i-1]
		}
	}
	return arrow.None
}
