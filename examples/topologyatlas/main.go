// Topology atlas: sweep every topology family from the paper and print the
// queuing-versus-counting comparison for each — a one-screen summary of the
// paper's results, including the star-graph exception.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	topologies := []*graph.Graph{
		graph.Complete(128),
		graph.Path(128),
		graph.Ring(128),
		graph.Mesh(12, 12),
		graph.Mesh(5, 5, 5),
		graph.Hypercube(7),
		graph.PerfectMAryTree(2, 7),
		graph.PerfectMAryTree(3, 5),
		graph.Star(128),
		graph.Caterpillar(512, 0.75),
		graph.CubeConnectedCycles(5),
		graph.DeBruijn(7),
	}
	fmt.Println("graph                       n     C_Q      C_C      C_C/C_Q  verdict")
	fmt.Println("-----------------------------------------------------------------------")
	for _, g := range topologies {
		tbl, err := core.CompareOn(g)
		if err != nil {
			log.Fatalf("%s: %v", g.Name(), err)
		}
		var cq, cc float64
		var ratio string
		for _, row := range tbl.Rows {
			switch {
			case len(row) == 2 && hasPrefix(row[0], "C_Q"):
				fmt.Sscanf(row[1], "%f", &cq)
			case len(row) == 2 && hasPrefix(row[0], "C_C best"):
				fmt.Sscanf(row[1], "%f", &cc)
			case len(row) == 2 && row[0] == "C_C/C_Q":
				ratio = row[1]
			}
		}
		verdict := "counting harder"
		if cc < 1.5*cq {
			verdict = "no separation (contention-bound)"
		}
		fmt.Printf("%-27s %-5d %-8.0f %-8.0f %-8s %s\n", g.Name(), g.N(), cq, cc, ratio, verdict)
	}
	fmt.Println("\nsee `countq run all` for the full per-theorem tables")
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
