// Ordered multicast: the motivating application from Section 1 of the
// paper, implemented both ways.
//
// Totally ordered multicast requires every receiver to deliver the same
// messages in the same order. The counting-based solution attaches a rank
// from a distributed counter to each message; receivers deliver in rank
// order. The queuing-based solution (Herlihy et al.) attaches the identity
// of the predecessor message; receivers reconstruct the unique chain from
// the head. The paper proves the queuing-based coordination is inherently
// cheaper on most topologies — this example measures exactly that, then
// verifies both schemes deliver identically on every receiver.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/arrow"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/tree"
)

func main() {
	// A 12×12 mesh; a third of the nodes multicast one message each.
	g := graph.Mesh(12, 12)
	n := g.N()
	rng := rand.New(rand.NewSource(7))
	senders := make([]bool, n)
	for v := 0; v < n; v++ {
		senders[v] = rng.Intn(3) == 0
	}

	// --- Coordination step, counting flavor -------------------------
	bfs, err := tree.BFSTree(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	counter, err := counting.NewTreeCount(bfs, senders)
	if err != nil {
		log.Fatal(err)
	}
	cRes, err := counting.Run(g, counter, 1)
	if err != nil {
		log.Fatal(err)
	}

	// --- Coordination step, queuing flavor ---------------------------
	hp, err := tree.PathTree(graph.MeshHamiltonPath(12, 12))
	if err != nil {
		log.Fatal(err)
	}
	qRes, err := arrow.RunOneShot(g, hp, hp.Root(), senders, 1)
	if err != nil {
		log.Fatal(err)
	}

	// --- Delivery: receivers see messages in arbitrary arrival order;
	// they deliver by the coordination metadata. -----------------------
	var msgs []int
	for v := 0; v < n; v++ {
		if senders[v] {
			msgs = append(msgs, v)
		}
	}
	receivers := 5 // simulate a handful of receivers with shuffled arrivals
	countingDeliveries := make([][]int, receivers)
	queuingDeliveries := make([][]int, receivers)
	for r := 0; r < receivers; r++ {
		arrival := append([]int(nil), msgs...)
		rng.Shuffle(len(arrival), func(i, j int) { arrival[i], arrival[j] = arrival[j], arrival[i] })

		// Counting-based: sort the mailbox by attached rank.
		byRank := append([]int(nil), arrival...)
		sort.Slice(byRank, func(i, j int) bool {
			return counter.Count(byRank[i]) < counter.Count(byRank[j])
		})
		countingDeliveries[r] = byRank

		// Queuing-based: chain predecessors from the head.
		succ := make(map[int]int, len(arrival))
		for _, m := range arrival {
			succ[predOf(qRes, m)] = m
		}
		var chain []int
		for cur, ok := succ[arrow.Head]; ok; cur, ok = succ[cur] {
			chain = append(chain, cur)
		}
		queuingDeliveries[r] = chain
	}

	// --- Verify agreement across receivers, per scheme ---------------
	for r := 1; r < receivers; r++ {
		if !equal(countingDeliveries[0], countingDeliveries[r]) {
			log.Fatalf("counting-based delivery disagrees between receivers 0 and %d", r)
		}
		if !equal(queuingDeliveries[0], queuingDeliveries[r]) {
			log.Fatalf("queuing-based delivery disagrees between receivers 0 and %d", r)
		}
	}
	if len(queuingDeliveries[0]) != len(msgs) {
		log.Fatalf("queuing chain incomplete: %d of %d", len(queuingDeliveries[0]), len(msgs))
	}

	fmt.Printf("topology %s, %d senders, %d receivers\n", g, len(msgs), receivers)
	fmt.Println("both schemes delivered identically on every receiver ✓")
	fmt.Printf("coordination cost, counting flavor (tree counter): total delay %d\n", cRes.TotalDelay)
	fmt.Printf("coordination cost, queuing flavor (arrow):          total delay %d\n", qRes.TotalDelay)
	fmt.Printf("queuing-based ordered multicast is %.1f× cheaper to coordinate — the paper's Section 1 claim\n",
		float64(cRes.TotalDelay)/float64(qRes.TotalDelay))
}

// predOf reads a message's predecessor out of the arrow result order.
func predOf(r *arrow.Result, v int) int {
	for i, u := range r.Order {
		if u == v {
			if i == 0 {
				return arrow.Head
			}
			return r.Order[i-1]
		}
	}
	return arrow.None
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
