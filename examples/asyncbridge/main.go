// Command asyncbridge drives the message-passing sim bridge against a
// shared-memory counter in one campaign — the comparison only the session
// API can express: the bridge's coordination round is a routed message
// round trip with real per-hop latency, not a synchronous call, so it has
// no Counter view at all. The campaign puts both under the same goroutine
// ramp and seed, then deepens the bridge's async pipeline to show how
// much of the round-trip cost overlapping recovers — and what the
// corrected latency says it really costs under an open arrival schedule.
//
//	go run ./examples/asyncbridge
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/countq"
	_ "repro/internal/shm" // register the shared-memory zoo
	"repro/internal/sim"
)

func main() {
	// 1. The headline campaign: shared-memory sharded counter vs the
	// bridged central counter, byte-identical ramp phases, shared seed.
	cmp, err := countq.Campaign{
		Base: countq.Workload{Scenario: "ramp?gmax=8", Ops: 40000, Seed: 1},
		Entries: []countq.Entry{
			{Counter: "sharded?shards=8"},
			{Counter: "sim-counter?hoplat=1us"},
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	md, err := cmp.MarshalMarkdown()
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(md)

	// 2. Pipelining: the same bridge, synchronous vs 8 and 32 operations
	// in flight per worker. The per-entry Inflight override keeps the op
	// budgets equal, so the throughput delta is exactly what overlapping
	// the coordination round buys.
	async, err := countq.Campaign{
		Base: countq.Workload{Ops: 20000, Goroutines: 4, Seed: 1},
		Entries: []countq.Entry{
			{Counter: "sim-counter?hoplat=1us"},
			{Counter: "sim-counter?hoplat=1us", Inflight: 8},
			{Counter: "sim-counter?hoplat=1us", Inflight: 32},
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npipelining the coordination round (same budget, deeper pipelines):")
	for _, r := range async.Results {
		lat := r.Metrics.Aggregate.CounterLat
		corr := r.Metrics.Aggregate.CounterCorr
		line := fmt.Sprintf("  %-36s %8.2f Kops/s   service p99 %8.0f ns",
			r.Label, r.Metrics.Aggregate.OpsPerSec()/1e3, lat.P99Ns)
		if corr != nil {
			line += fmt.Sprintf("   corrected p99 %8.0f ns", corr.P99Ns)
		}
		if !r.Baseline && r.AggregateDelta.ThroughputRatio > 0 {
			line += fmt.Sprintf("   tput %0.2fx", r.AggregateDelta.ThroughputRatio)
		}
		fmt.Println(line)
	}

	// 3. The session API itself: a hand-driven async session against a
	// bridge with a deliberately slow, contended hub — Submit on the
	// arrival schedule, completions as they come.
	st, err := countq.NewStructure("sim-counter?hoplat=2us&nodes=5", countq.KindCounter)
	if err != nil {
		log.Fatal(err)
	}
	defer st.(interface{ Close() error }).Close()
	sess, err := st.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	as := sess.(countq.AsyncSession)
	ctx := context.Background()
	const inflight, total = 4, 16
	outstanding, next := 0, 0
	var got []int64
	for next < total || outstanding > 0 {
		for outstanding < inflight && next < total {
			if err := as.Submit(ctx, countq.Op{Kind: countq.OpInc, N: 1, Token: uint64(next)}); err != nil {
				log.Fatal(err)
			}
			next++
			outstanding++
		}
		c := <-as.Completions()
		if c.Err != nil {
			log.Fatal(c.Err)
		}
		got = append(got, c.Value)
		outstanding--
	}
	if err := countq.ValidateCounts(got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhand-driven AsyncSession: %d counts over a %d-deep pipeline, gap-free (first 8: %v)\n",
		len(got), inflight, got[:8])
	_ = sim.BridgeConfig{} // the bridge is also constructible directly — see internal/sim
}
