// Ticket office: the long-lived face of counting versus queuing.
//
// Customers arrive at random branch offices (nodes of a mesh network) over
// time. Two designs for serving them in a consistent global order:
//
//   - numbered tickets — each arrival gets the next global ticket number
//     (distributed counting via a combining tree, like a bakery counter);
//   - a service chain — each arrival just learns who is directly ahead of
//     it (distributed queuing via the long-lived arrow protocol).
//
// Both produce a valid global service order, but the coordination latency a
// customer pays differs by an order of magnitude — the paper's thesis, in
// its long-lived form (reference [8]).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/arrow"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

func main() {
	g := graph.Mesh(8, 8)
	tr, err := tree.BFSTree(g, 27) // head office near the center
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	// 200 customers over 150 rounds.
	const customers, window = 200, 150
	qReqs := make([]arrow.Request, customers)
	cReqs := make([]counting.Request, customers)
	for i := 0; i < customers; i++ {
		node := rng.Intn(g.N())
		when := rng.Intn(window)
		qReqs[i] = arrow.Request{Node: node, Time: when}
		cReqs[i] = counting.Request{Node: node, Time: when}
	}

	// Numbered tickets: combining-tree counter.
	tickets, err := counting.NewCombining(tr, cReqs)
	if err != nil {
		log.Fatal(err)
	}
	tStats, err := sim.New(sim.Config{Graph: g}, tickets).Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := tickets.Validate(); err != nil {
		log.Fatal(err)
	}

	// Service chain: long-lived arrow.
	chain, err := arrow.NewLongLived(tr, 27, qReqs)
	if err != nil {
		log.Fatal(err)
	}
	qStats, err := sim.New(sim.Config{Graph: g}, chain).Run()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := chain.Order(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ticket office on %s: %d customers over %d rounds\n\n", g, customers, window)
	fmt.Printf("%-28s %14s %14s %10s\n", "design", "total latency", "mean latency", "messages")
	fmt.Printf("%-28s %14d %14.1f %10d\n", "numbered tickets (counting)",
		tickets.TotalLatency(), float64(tickets.TotalLatency())/customers, tStats.MessagesSent)
	fmt.Printf("%-28s %14d %14.1f %10d\n", "service chain (queuing)",
		chain.TotalLatency(), float64(chain.TotalLatency())/customers, qStats.MessagesSent)
	fmt.Printf("\ncounting/queuing latency ratio: %.1f×\n",
		float64(tickets.TotalLatency())/float64(chain.TotalLatency()))

	// Spot-check a few customers.
	fmt.Println("\ncustomer  node  arrives  ticket#  (counting)   pred  (queuing)")
	for i := 0; i < 5; i++ {
		pred := "HEAD"
		if p := chain.Pred(i); p != arrow.Head {
			pred = fmt.Sprintf("cust%d", p)
		}
		fmt.Printf("%8d %5d %8d %8d %13s %6s\n",
			i, qReqs[i].Node, qReqs[i].Time, tickets.CountOf(i), "", pred)
	}
	fmt.Println("\nboth designs yield one consistent global order; the chain just costs less to build")
}
