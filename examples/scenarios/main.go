// Scenario engine walkthrough: phased workloads with first-class metrics.
// A flat closed-loop average is exactly the measurement that hides the
// counting-versus-queuing gap, so the driver runs named scenarios — phase
// sequences that ramp contention, alternate bursts, and shift the op mix —
// and reports latency quantiles, a windowed throughput timeline, and
// per-worker fairness for every phase. This example lists the scenario
// registry, ramps contention over two counters, and watches the mix shift
// from pure queuing to pure counting.
package main

import (
	"fmt"
	"log"

	"repro/countq"

	_ "repro/internal/shm" // register the shared-memory implementations
)

func main() {
	// Scenarios self-register like structures: declared params, unknown
	// keys rejected, the catalogue printed from the registry.
	fmt.Println("registered scenarios:")
	for _, info := range countq.Scenarios() {
		fmt.Printf("  %-10s %s\n", info.Name, info.Summary)
		for _, p := range info.Params {
			fmt.Printf("             %-8s default %-6s %s\n", p.Name, p.Default, p.Doc)
		}
	}

	// The ramp scenario doubles contention 1 → gmax. Tail latency (p99),
	// not the mean, is where the scalable counters give the game away.
	fmt.Println("\nramp 1→4 goroutines, 100k ops, pure counting:")
	for _, spec := range []string{"atomic", "sharded?shards=4&batch=64"} {
		m, err := countq.Run(countq.Workload{
			Counter:    spec,
			Scenario:   "ramp?gmax=4",
			Goroutines: 4,
			Ops:        100_000,
			Seed:       1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", spec)
		for _, p := range m.Phases {
			l := p.CounterLat
			fmt.Printf("    %-6s %8.1f ns/op   p50 %6.0f   p99 %7.0f   fairness %.2f\n",
				p.Name, p.NsPerOp(), l.P50Ns, l.P99Ns, p.Fairness)
		}
	}

	// The mixshift scenario walks the paper's contrast inside one run:
	// phase 1 is pure queuing (one atomic swap per op), the last phase is
	// pure counting on a quiescently consistent structure.
	fmt.Println("\nmixshift queue→counter (sharded vs swap), 50k ops:")
	m, err := countq.Run(countq.Workload{
		Counter:    "sharded",
		Queue:      "swap",
		Scenario:   "mixshift?steps=3",
		Goroutines: 4,
		Ops:        50_000,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range m.Phases {
		line := fmt.Sprintf("  %-10s %8.1f ns/op", p.Name, p.NsPerOp())
		if l := p.QueueLat; l != nil {
			line += fmt.Sprintf("   queue p99 %6.0f", l.P99Ns)
		}
		if l := p.CounterLat; l != nil {
			line += fmt.Sprintf("   count p99 %6.0f", l.P99Ns)
		}
		fmt.Println(line)
	}

	// The aggregate folds the measured phases: merged histograms and the
	// whole-run throughput timeline (one Window per slot — stalls show up
	// as empty windows instead of disappearing into an average).
	agg := m.Aggregate
	fmt.Printf("\naggregate: %d ops at %.1f ns/op, fairness %.2f, %d timeline windows\n",
		agg.Ops, agg.NsPerOp(), agg.Fairness, len(agg.Timeline))
	fmt.Println("every phase validated together: counts gap-free, predecessors one total order")
}
