package countq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram not zero: count %d, mean %v, max %d", h.Count(), h.Mean(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Stats() != nil {
		t.Error("empty histogram produced stats")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(137)
	if h.Count() != 1 || h.Max() != 137 || h.Mean() != 137 {
		t.Errorf("count %d, max %d, mean %v", h.Count(), h.Max(), h.Mean())
	}
	// Every quantile of a single sample is that sample, exactly: the rank
	// always lands in the highest populated bucket, which reports the max.
	for _, q := range []float64{0, 0.5, 0.9, 0.999, 1} {
		if got := h.Quantile(q); got != 137 {
			t.Errorf("Quantile(%v) = %v, want 137", q, got)
		}
	}
	s := h.Stats()
	if s == nil || s.Samples != 1 || s.P50Ns != 137 || s.MaxNs != 137 {
		t.Errorf("stats = %+v", s)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// The unit-bucket and geometric regimes must meet seamlessly: indexes
	// strictly increase across the seam and bounds invert the index.
	prev := -1
	for _, v := range []int64{0, 1, 14, 15, 16, 17, 31, 32, 33, 63, 64, 127, 128, 1 << 20, 1<<62 + 5} {
		i := histIndex(v)
		if i < prev {
			t.Errorf("histIndex(%d) = %d, below previous %d", v, i, prev)
		}
		prev = i
		lo, hi := histBounds(i)
		if v < lo || v >= hi {
			t.Errorf("value %d outside its bucket [%d,%d)", v, lo, hi)
		}
	}
	// Values below histSub land in exact unit buckets.
	for v := int64(0); v < histSub; v++ {
		lo, hi := histBounds(histIndex(v))
		if lo != v || hi != v+1 {
			t.Errorf("unit bucket for %d is [%d,%d)", v, lo, hi)
		}
	}
	// Bucket width stays within the declared relative resolution: the
	// width of any bucket is at most lo/histSub * 2.
	for _, v := range []int64{100, 1000, 1 << 30, 1 << 55} {
		lo, hi := histBounds(histIndex(v))
		if width := hi - lo; width > lo/(histSub/2) {
			t.Errorf("bucket [%d,%d) too wide for %d: width %d", lo, hi, v, width)
		}
	}
	// The extreme value maps inside the table.
	if i := histIndex(1<<63 - 1); i >= histBuckets {
		t.Fatalf("histIndex(max) = %d out of range %d", i, histBuckets)
	}
	// Negative samples clamp to zero instead of panicking.
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Errorf("negative record: count %d, max %d", h.Count(), h.Max())
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]int64, 5000)
	for i := range vals {
		// Mixed regimes: exact small values and heavy geometric tail.
		v := int64(rng.ExpFloat64() * 900)
		vals[i] = v
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	last := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < last {
			t.Fatalf("Quantile(%v) = %v below previous %v", q, got, last)
		}
		last = got
	}
	// Quantiles track the true order statistics within bucket resolution
	// (relative error bounded by 1/histSub per regime, plus the midpoint).
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		truth := float64(vals[int(q*float64(len(vals)-1))])
		lo, hi := truth/(1+2.0/histSub)-1, truth*(1+2.0/histSub)+1
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v, true order statistic %v (tolerance [%v,%v])", q, got, truth, lo, hi)
		}
	}
	if got := h.Quantile(1); got != float64(h.Max()) {
		t.Errorf("Quantile(1) = %v, want max %d", got, h.Max())
	}
}

func TestHistogramMergeAndRecordN(t *testing.T) {
	var a, b, whole Histogram
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
		whole.Record(i)
	}
	b.RecordN(1000, 50)
	for i := 0; i < 50; i++ {
		whole.Record(1000)
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Errorf("merge mismatch: count %d/%d mean %v/%v max %d/%d",
			a.Count(), whole.Count(), a.Mean(), whole.Mean(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("merge quantile %v: %v vs %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	// RecordN with a non-positive count is a no-op.
	n := a.Count()
	a.RecordN(5, 0)
	a.RecordN(5, -3)
	if a.Count() != n {
		t.Error("RecordN with non-positive count recorded samples")
	}
}

func TestHistogramAmortized(t *testing.T) {
	// A 500ns block covering 1024 counts: the bucketed quantiles quantize
	// to the 1ns floor (rounded per-count cost 0), but the mean keeps the
	// exact sub-nanosecond amortized value — large-batch IncN sweeps must
	// not record as free.
	var h Histogram
	h.recordAmortized(500, 1024)
	if h.Count() != 1024 {
		t.Fatalf("count = %d, want 1024", h.Count())
	}
	if want := 500.0 / 1024; h.Mean() != want {
		t.Errorf("amortized mean = %v, want %v", h.Mean(), want)
	}
	if h.Quantile(0.5) != 0 {
		t.Errorf("sub-ns amortized p50 = %v, want 0 (1ns quantization floor)", h.Quantile(0.5))
	}
	// Rounding, not truncation: 100ns over 8 counts is 12.5 → bucket 13.
	var r Histogram
	r.recordAmortized(100, 8)
	if r.Max() != 13 {
		t.Errorf("rounded amortized value = %d, want 13", r.Max())
	}
	if r.Mean() != 12.5 {
		t.Errorf("amortized mean = %v, want 12.5", r.Mean())
	}
	// A single-count block is an ordinary sample.
	var s, ref Histogram
	s.recordAmortized(137, 1)
	ref.Record(137)
	if s.Quantile(0.5) != ref.Quantile(0.5) || s.Mean() != ref.Mean() {
		t.Error("recordAmortized(v, 1) differs from Record(v)")
	}
}
