package countq

import (
	"math"
	"testing"
)

func TestValidateCounts(t *testing.T) {
	if err := ValidateCounts([]int64{3, 1, 2}); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	if err := ValidateCounts([]int64{1, 2, 2}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := ValidateCounts([]int64{1, 2, 4}); err == nil {
		t.Error("gap accepted")
	}
}

func TestValidateOrder(t *testing.T) {
	if err := ValidateOrder([]int64{0, 1, 2}, []int64{Head, 0, 1}); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	if err := ValidateOrder([]int64{0, 1}, []int64{Head, Head}); err == nil {
		t.Error("double head accepted")
	}
	if err := ValidateOrder([]int64{0, 1}, []int64{Head}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestValidateOrderDuplicateIDs: duplicate operation ids must be reported
// as an error — in particular the self-cycle {7,7}/{Head,7}, which once
// made the chain walk spin forever.
func TestValidateOrderDuplicateIDs(t *testing.T) {
	if err := ValidateOrder([]int64{7, 7}, []int64{Head, 7}); err == nil {
		t.Error("duplicated id forming a self-cycle accepted")
	}
	if err := ValidateOrder([]int64{3, 3}, []int64{Head, 3}); err == nil {
		t.Error("duplicated id accepted")
	}
}

// TestValidateOrderAdversarial covers the pathological orderings a buggy
// queuer could emit: predecessor cycles disjoint from the Head chain, and
// operations naming themselves as predecessor.
func TestValidateOrderAdversarial(t *testing.T) {
	// A 2-cycle disjoint from Head: 0 chains from Head, but 1 and 2 point
	// at each other. Every predecessor is distinct, so only the chain-walk
	// coverage check can catch it.
	if err := ValidateOrder([]int64{0, 1, 2}, []int64{Head, 2, 1}); err == nil {
		t.Error("predecessor 2-cycle disjoint from Head accepted")
	}
	// A longer disjoint cycle: 3 -> 4 -> 5 -> 3.
	if err := ValidateOrder(
		[]int64{0, 3, 4, 5},
		[]int64{Head, 5, 3, 4},
	); err == nil {
		t.Error("predecessor 3-cycle disjoint from Head accepted")
	}
	// A self-loop predecessor: operation 9 claims itself — distinct from
	// the Head chain, never reachable, and must not hang the walk.
	if err := ValidateOrder([]int64{0, 9}, []int64{Head, 9}); err == nil {
		t.Error("self-loop predecessor accepted")
	}
	// A self-loop as the only operation (no Head at all).
	if err := ValidateOrder([]int64{4}, []int64{4}); err == nil {
		t.Error("lone self-loop with no Head accepted")
	}
	// Empty histories are trivially valid.
	if err := ValidateOrder(nil, nil); err != nil {
		t.Errorf("empty history rejected: %v", err)
	}
}

func TestValidateCountRanges(t *testing.T) {
	// Singles and blocks tiling 1..9: {1} ∪ [2,5) ∪ {5} ∪ [6,10).
	ok := []int64{1, 5}
	blocks := []CountRange{{First: 2, N: 3}, {First: 6, N: 4}}
	if err := ValidateCountRanges(ok, blocks); err != nil {
		t.Errorf("valid tiling rejected: %v", err)
	}
	// Blocks alone.
	if err := ValidateCountRanges(nil, []CountRange{{First: 1, N: 4}}); err != nil {
		t.Errorf("pure block grant rejected: %v", err)
	}
	// A block overlapping a single.
	if err := ValidateCountRanges([]int64{2}, []CountRange{{First: 1, N: 2}}); err == nil {
		t.Error("block overlapping a single accepted")
	}
	// Two blocks overlapping each other.
	if err := ValidateCountRanges(nil, []CountRange{{First: 1, N: 3}, {First: 3, N: 2}}); err == nil {
		t.Error("overlapping blocks accepted")
	}
	// A gap: blocks [1,3) and [4,6) miss count 3.
	if err := ValidateCountRanges(nil, []CountRange{{First: 1, N: 2}, {First: 4, N: 2}}); err == nil {
		t.Error("gapped blocks accepted")
	}
	// A block reaching past the total.
	if err := ValidateCountRanges([]int64{1}, []CountRange{{First: 3, N: 2}}); err == nil {
		t.Error("block past the total accepted")
	}
	// Degenerate block sizes.
	if err := ValidateCountRanges(nil, []CountRange{{First: 1, N: 0}}); err == nil {
		t.Error("zero-length block accepted")
	}
	if err := ValidateCountRanges(nil, []CountRange{{First: 1, N: -2}}); err == nil {
		t.Error("negative-length block accepted")
	}
	// Adversarial totals must yield errors, not huge allocations or
	// overflow panics.
	huge := int64(math.MaxInt64)
	if err := ValidateCountRanges(nil, []CountRange{{First: 1, N: huge}, {First: 1, N: huge}}); err == nil {
		t.Error("overflowing block totals accepted")
	}
	if err := ValidateCountRanges(nil, []CountRange{{First: huge, N: 2}}); err == nil {
		t.Error("block whose end overflows accepted")
	}
	if err := ValidateCountRanges([]int64{huge}, nil); err == nil {
		t.Error("count at MaxInt64 accepted")
	}
	if err := ValidateCountRanges(nil, []CountRange{{First: 5, N: 1 << 40}}); err == nil {
		t.Error("trillion-count block claiming to start mid-range accepted")
	}
	// ValidateCounts delegates: a plain permutation still passes.
	if err := ValidateCounts([]int64{2, 1, 3}); err != nil {
		t.Errorf("ValidateCounts regression: %v", err)
	}
}
