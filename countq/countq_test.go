package countq

import "testing"

func TestValidateCounts(t *testing.T) {
	if err := ValidateCounts([]int64{3, 1, 2}); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	if err := ValidateCounts([]int64{1, 2, 2}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := ValidateCounts([]int64{1, 2, 4}); err == nil {
		t.Error("gap accepted")
	}
}

func TestValidateOrder(t *testing.T) {
	if err := ValidateOrder([]int64{0, 1, 2}, []int64{Head, 0, 1}); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	if err := ValidateOrder([]int64{0, 1}, []int64{Head, Head}); err == nil {
		t.Error("double head accepted")
	}
	if err := ValidateOrder([]int64{0, 1}, []int64{Head}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestValidateOrderDuplicateIDs: duplicate operation ids must be reported
// as an error — in particular the self-cycle {7,7}/{Head,7}, which once
// made the chain walk spin forever.
func TestValidateOrderDuplicateIDs(t *testing.T) {
	if err := ValidateOrder([]int64{7, 7}, []int64{Head, 7}); err == nil {
		t.Error("duplicated id forming a self-cycle accepted")
	}
	if err := ValidateOrder([]int64{3, 3}, []int64{Head, 3}); err == nil {
		t.Error("duplicated id accepted")
	}
}
