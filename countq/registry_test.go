package countq

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// testCounter and testQueue are minimal in-package implementations so the
// registry and driver can be tested without importing internal/shm (which
// would register its own entries and couple the tests to that set).
type testCounter struct{ v atomic.Int64 }

func (c *testCounter) Inc() int64 { return c.v.Add(1) }

type testQueue struct {
	mu   sync.Mutex
	tail int64
}

func (q *testQueue) Enqueue(id int64) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	p := q.tail
	q.tail = id
	return p
}

var registerTestImpls = sync.OnceFunc(func() {
	RegisterCounter(CounterInfo{
		Name: "test-zulu", Summary: "test counter z", Linearizable: true,
		New: func() (Counter, error) { return &testCounter{}, nil },
	})
	RegisterCounter(CounterInfo{
		Name: "test-alpha", Summary: "test counter a", Linearizable: true,
		New: func() (Counter, error) { return &testCounter{}, nil },
	})
	RegisterQueue(QueueInfo{
		Name: "test-queue", Summary: "test queue",
		New: func() (Queuer, error) { return &testQueue{tail: Head}, nil },
	})
})

func TestRegistryConstructs(t *testing.T) {
	registerTestImpls()
	c, err := NewCounter("test-alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Inc(); got != 1 {
		t.Errorf("first count = %d, want 1", got)
	}
	q, err := NewQueue("test-queue")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Enqueue(7); got != Head {
		t.Errorf("first pred = %d, want Head", got)
	}
	// Each New call must return a fresh instance, not shared state.
	c2, err := NewCounter("test-alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Inc(); got != 1 {
		t.Errorf("second instance first count = %d, want 1", got)
	}
}

func TestRegistryUnknownName(t *testing.T) {
	registerTestImpls()
	if _, err := NewCounter("no-such-counter"); err == nil {
		t.Error("unknown counter accepted")
	} else if !strings.Contains(err.Error(), "test-alpha") {
		t.Errorf("error does not name registered alternatives: %v", err)
	}
	if _, err := NewQueue("no-such-queue"); err == nil {
		t.Error("unknown queue accepted")
	} else if !strings.Contains(err.Error(), "test-queue") {
		t.Errorf("error does not name registered alternatives: %v", err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	registerTestImpls()
	mustPanic(t, "duplicate counter", func() {
		RegisterCounter(CounterInfo{
			Name: "test-alpha",
			New:  func() (Counter, error) { return &testCounter{}, nil },
		})
	})
	mustPanic(t, "duplicate queue", func() {
		RegisterQueue(QueueInfo{
			Name: "test-queue",
			New:  func() (Queuer, error) { return &testQueue{}, nil },
		})
	})
	mustPanic(t, "empty counter name", func() {
		RegisterCounter(CounterInfo{
			New: func() (Counter, error) { return &testCounter{}, nil },
		})
	})
	mustPanic(t, "nil queue constructor", func() {
		RegisterQueue(QueueInfo{Name: "test-nil"})
	})
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: registration did not panic", what)
		}
	}()
	f()
}

func TestRegistryDeterministicOrder(t *testing.T) {
	registerTestImpls()
	for round := 0; round < 5; round++ {
		names := CounterNames()
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Fatalf("counter names not sorted: %v", names)
			}
		}
	}
	// "test-alpha" sorts before "test-zulu" regardless of registration
	// order (zulu was registered first).
	names := CounterNames()
	ai, zi := -1, -1
	for i, n := range names {
		switch n {
		case "test-alpha":
			ai = i
		case "test-zulu":
			zi = i
		}
	}
	if ai < 0 || zi < 0 || ai > zi {
		t.Errorf("deterministic order violated: %v", names)
	}
	infos := Counters()
	if len(infos) != len(names) {
		t.Fatalf("Counters/CounterNames disagree: %d vs %d", len(infos), len(names))
	}
	for i := range infos {
		if infos[i].Name != names[i] {
			t.Errorf("Counters()[%d] = %q, CounterNames()[%d] = %q", i, infos[i].Name, i, names[i])
		}
	}
}
