package countq

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// testCounter and testQueue are minimal in-package implementations so the
// registry and driver can be tested without importing internal/shm (which
// would register its own entries and couple the tests to that set).
type testCounter struct{ v atomic.Int64 }

func (c *testCounter) Inc() int64 { return c.v.Add(1) }

// testParamCounter exercises the options path: "start" offsets the first
// count (useful only to observe that the parameter arrived).
type testParamCounter struct {
	start int64
	v     atomic.Int64
}

func (c *testParamCounter) Inc() int64 { return c.start + c.v.Add(1) }

// testBatchCounter implements BatchIncrementer.
type testBatchCounter struct{ v atomic.Int64 }

func (c *testBatchCounter) Inc() int64         { return c.v.Add(1) }
func (c *testBatchCounter) IncN(n int64) int64 { return c.v.Add(n) - n + 1 }

// testHandleCounter implements HandleMaker and Drainer in miniature: each
// handle leases blocks of testLease counts off the shared high-water mark,
// Close surrenders the remainder, Drain returns every surrendered count.
type testHandleCounter struct {
	next   atomic.Int64
	closes atomic.Int64
	mu     sync.Mutex
	free   []int64
}

const testLease = 4

func (c *testHandleCounter) Inc() int64 { return c.next.Add(1) }

func (c *testHandleCounter) NewHandle() CounterHandle { return &testHandle{c: c} }

func (c *testHandleCounter) Drain() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.free
	c.free = nil
	return out
}

type testHandle struct {
	c      *testHandleCounter
	lo, hi int64 // private lease: [lo, hi) remain
}

func (h *testHandle) Inc() int64 {
	if h.lo == h.hi {
		hi := h.c.next.Add(testLease)
		h.lo, h.hi = hi-testLease+1, hi+1
	}
	v := h.lo
	h.lo++
	return v
}

func (h *testHandle) Close() {
	h.c.closes.Add(1)
	h.c.mu.Lock()
	for v := h.lo; v < h.hi; v++ {
		h.c.free = append(h.c.free, v)
	}
	h.c.mu.Unlock()
	h.lo, h.hi = 0, 0
}

// lastHandleCounter is the most recent test-handle instance the registry
// constructed, so driver tests can observe handle lifecycle counts.
var lastHandleCounter atomic.Pointer[testHandleCounter]

type testQueue struct {
	mu   sync.Mutex
	tail int64
}

func (q *testQueue) Enqueue(id int64) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	p := q.tail
	q.tail = id
	return p
}

var registerTestImpls = sync.OnceFunc(func() {
	RegisterCounter(CounterInfo{
		Name: "test-zulu", Summary: "test counter z", Linearizable: true,
		New: func(Options) (Counter, error) { return &testCounter{}, nil },
	})
	RegisterCounter(CounterInfo{
		Name: "test-alpha", Summary: "test counter a", Linearizable: true,
		New: func(Options) (Counter, error) { return &testCounter{}, nil },
	})
	RegisterCounter(CounterInfo{
		Name: "test-param", Summary: "test counter with a declared param", Linearizable: true,
		Params: []ParamInfo{{Name: "start", Default: "0", Doc: "offset added to every count"}},
		New: func(o Options) (Counter, error) {
			start := o.Int64("start", 0)
			if err := o.Err(); err != nil {
				return nil, err
			}
			return &testParamCounter{start: start}, nil
		},
	})
	RegisterCounter(CounterInfo{
		Name: "test-batch", Summary: "test counter with IncN", Linearizable: true,
		New: func(Options) (Counter, error) { return &testBatchCounter{}, nil },
	})
	RegisterCounter(CounterInfo{
		Name: "test-handle", Summary: "test counter with per-goroutine handles", Linearizable: false,
		New: func(Options) (Counter, error) {
			c := &testHandleCounter{}
			lastHandleCounter.Store(c)
			return c, nil
		},
	})
	RegisterQueue(QueueInfo{
		Name: "test-queue", Summary: "test queue",
		New: func(Options) (Queuer, error) { return &testQueue{tail: Head}, nil },
	})
})

func TestRegistryConstructs(t *testing.T) {
	registerTestImpls()
	c, err := NewCounter("test-alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Inc(); got != 1 {
		t.Errorf("first count = %d, want 1", got)
	}
	q, err := NewQueue("test-queue")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Enqueue(7); got != Head {
		t.Errorf("first pred = %d, want Head", got)
	}
	// Each New call must return a fresh instance, not shared state.
	c2, err := NewCounter("test-alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Inc(); got != 1 {
		t.Errorf("second instance first count = %d, want 1", got)
	}
}

func TestRegistryParameterizedSpecs(t *testing.T) {
	registerTestImpls()
	// Parameter reaches the constructor.
	c, err := NewCounter("test-param?start=100")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Inc(); got != 101 {
		t.Errorf("parameterized first count = %d, want 101", got)
	}
	// Defaults when the spec omits the parameter.
	c, err = NewCounter("test-param")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Inc(); got != 1 {
		t.Errorf("default first count = %d, want 1", got)
	}
	// Unknown keys are rejected, naming the declared set.
	if _, err := NewCounter("test-param?strat=100"); err == nil {
		t.Error("unknown param key accepted")
	} else if !strings.Contains(err.Error(), "start") {
		t.Errorf("unknown-key error does not name declared params: %v", err)
	}
	// Structures with no declared params reject every key.
	if _, err := NewCounter("test-alpha?x=1"); err == nil {
		t.Error("param on a param-less counter accepted")
	}
	if _, err := NewQueue("test-queue?x=1"); err == nil {
		t.Error("param on a param-less queue accepted")
	}
	// Mistyped values surface the conversion error.
	if _, err := NewCounter("test-param?start=banana"); err == nil {
		t.Error("non-integer param value accepted")
	}
	// Malformed spec strings are rejected at parse time.
	if _, err := NewCounter("test-param?start"); err == nil {
		t.Error("key without value accepted")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	registerTestImpls()
	if _, err := NewCounter("no-such-counter"); err == nil {
		t.Error("unknown counter accepted")
	} else if !strings.Contains(err.Error(), "test-alpha") {
		t.Errorf("error does not name registered alternatives: %v", err)
	}
	if _, err := NewQueue("no-such-queue"); err == nil {
		t.Error("unknown queue accepted")
	} else if !strings.Contains(err.Error(), "test-queue") {
		t.Errorf("error does not name registered alternatives: %v", err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	registerTestImpls()
	mustPanic(t, "duplicate counter", func() {
		RegisterCounter(CounterInfo{
			Name: "test-alpha",
			New:  func(Options) (Counter, error) { return &testCounter{}, nil },
		})
	})
	mustPanic(t, "duplicate queue", func() {
		RegisterQueue(QueueInfo{
			Name: "test-queue",
			New:  func(Options) (Queuer, error) { return &testQueue{}, nil },
		})
	})
	mustPanic(t, "empty counter name", func() {
		RegisterCounter(CounterInfo{
			New: func(Options) (Counter, error) { return &testCounter{}, nil },
		})
	})
	mustPanic(t, "nil queue constructor", func() {
		RegisterQueue(QueueInfo{Name: "test-nil"})
	})
	mustPanic(t, "spec metacharacter in name", func() {
		RegisterCounter(CounterInfo{
			Name: "test?bad",
			New:  func(Options) (Counter, error) { return &testCounter{}, nil },
		})
	})
	mustPanic(t, "duplicate param declaration", func() {
		RegisterCounter(CounterInfo{
			Name:   "test-dup-param",
			Params: []ParamInfo{{Name: "x"}, {Name: "x"}},
			New:    func(Options) (Counter, error) { return &testCounter{}, nil },
		})
	})
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: registration did not panic", what)
		}
	}()
	f()
}

func TestRegistryDeterministicOrder(t *testing.T) {
	registerTestImpls()
	for round := 0; round < 5; round++ {
		names := CounterNames()
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Fatalf("counter names not sorted: %v", names)
			}
		}
	}
	// "test-alpha" sorts before "test-zulu" regardless of registration
	// order (zulu was registered first).
	names := CounterNames()
	ai, zi := -1, -1
	for i, n := range names {
		switch n {
		case "test-alpha":
			ai = i
		case "test-zulu":
			zi = i
		}
	}
	if ai < 0 || zi < 0 || ai > zi {
		t.Errorf("deterministic order violated: %v", names)
	}
	infos := Counters()
	if len(infos) != len(names) {
		t.Fatalf("Counters/CounterNames disagree: %d vs %d", len(infos), len(names))
	}
	for i := range infos {
		if infos[i].Name != names[i] {
			t.Errorf("Counters()[%d] = %q, CounterNames()[%d] = %q", i, infos[i].Name, i, names[i])
		}
	}
}
