package countq

import (
	"runtime/metrics"
	"time"
)

// Memory as a metric rides on runtime/metrics rather than ReadMemStats:
// reading the three counters below is a cheap sample (no stop-the-world),
// so the driver can take a before/after allocation delta around every
// phase and run a live-heap sampler *during* the phase without perturbing
// the measurement it is reporting on.
const (
	memAllocObjs  = "/gc/heap/allocs:objects"
	memAllocBytes = "/gc/heap/allocs:bytes"
	memLiveBytes  = "/memory/classes/heap/objects:bytes"
)

// memProbe holds a preallocated runtime/metrics sample set so repeated
// reads are allocation-free. A probe is not safe for concurrent use; the
// phase driver and the background sampler each own one.
type memProbe struct {
	samples []metrics.Sample
}

func newMemProbe() *memProbe {
	return &memProbe{samples: []metrics.Sample{
		{Name: memAllocObjs},
		{Name: memAllocBytes},
		{Name: memLiveBytes},
	}}
}

// read returns the cumulative allocated-object and allocated-byte counters
// and the current live-heap size. Metrics the runtime does not know (a
// hypothetical older toolchain) read as zero rather than panicking, which
// degrades the memory columns to zeros instead of taking the run down.
func (p *memProbe) read() (allocObjs, allocBytes, liveBytes uint64) {
	metrics.Read(p.samples)
	vals := [3]uint64{}
	for i := range p.samples {
		if p.samples[i].Value.Kind() == metrics.KindUint64 {
			vals[i] = p.samples[i].Value.Uint64()
		}
	}
	return vals[0], vals[1], vals[2]
}

// memPoint is one live-heap observation: bytes live at off nanoseconds
// after the phase started.
type memPoint struct {
	off   int64
	bytes int64
}

// memSamplerCap bounds the sampler's point buffer. When the buffer fills,
// the sampler thins it (keeping every other point) and doubles its
// interval — so a phase of any duration ends with at most memSamplerCap
// points and the sampler itself never allocates after construction.
const memSamplerCap = 256

// memSamplerInterval is the initial sampling cadence. With the adaptive
// thinning above it fully covers phases up to memSamplerCap×interval
// (~64ms) at this resolution and stretches gracefully beyond.
const memSamplerInterval = 250 * time.Microsecond

// memSampler records the live-heap timeline of one phase on an adaptive
// clock. Start it just before the phase's start barrier opens and stop it
// after the workers join; the folded windows share the phase's span with
// the throughput timeline.
type memSampler struct {
	probe    *memProbe
	start    time.Time
	interval time.Duration
	pts      []memPoint
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// startMemSampler takes one synchronous sample (so even a sub-interval
// phase gets a point) and then samples in the background until stopped.
func startMemSampler(start time.Time) *memSampler {
	s := &memSampler{
		probe:    newMemProbe(),
		start:    start,
		interval: memSamplerInterval,
		pts:      make([]memPoint, 0, memSamplerCap),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	s.sample()
	go s.loop()
	return s
}

func (s *memSampler) sample() {
	_, _, live := s.probe.read()
	s.pts = append(s.pts, memPoint{off: time.Since(s.start).Nanoseconds(), bytes: int64(live)})
}

func (s *memSampler) loop() {
	defer close(s.doneCh)
	t := time.NewTimer(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.sample()
			if len(s.pts) == cap(s.pts) {
				// Thin in place: keep every other point, halve the rate.
				kept := s.pts[:0]
				for i := 0; i < len(s.pts); i += 2 {
					kept = append(kept, s.pts[i])
				}
				s.pts = kept
				s.interval *= 2
			}
			t.Reset(s.interval)
		}
	}
}

// stop joins the sampling goroutine and folds the points into at most
// timelineWindows live-heap windows spanning [startNs, startNs+elapsedNs)
// — the same span and slot count as the phase's throughput timeline.
func (s *memSampler) stop(startNs, elapsedNs int64) []MemWindow {
	close(s.stopCh)
	<-s.doneCh
	return foldMemTimeline(s.pts, startNs, elapsedNs)
}

// foldMemTimeline buckets live-heap points into fixed windows, keeping the
// peak observation per window. Windows without a sample inherit the last
// observed value (live heap is a continuous quantity, so carrying forward
// is more honest than reporting zero), and leading empties take the first.
func foldMemTimeline(pts []memPoint, startNs, elapsedNs int64) []MemWindow {
	if elapsedNs <= 0 || len(pts) == 0 {
		return nil
	}
	n := int64(timelineWindows)
	dur := elapsedNs / n
	if dur <= 0 {
		n, dur = 1, elapsedNs
	}
	win := make([]MemWindow, n)
	seen := make([]bool, n)
	for i := range win {
		win[i].StartNs = startNs + int64(i)*dur
		win[i].EndNs = win[i].StartNs + dur
	}
	win[n-1].EndNs = startNs + elapsedNs
	for _, pt := range pts {
		idx := pt.off / dur
		if idx < 0 {
			idx = 0
		} else if idx >= n {
			idx = n - 1
		}
		if !seen[idx] || pt.bytes > win[idx].PeakBytes {
			win[idx].PeakBytes = pt.bytes
		}
		seen[idx] = true
	}
	first := int64(0)
	for i := range win {
		if seen[i] {
			first = win[i].PeakBytes
			break
		}
	}
	last := first
	for i := range win {
		if seen[i] {
			last = win[i].PeakBytes
		} else {
			win[i].PeakBytes = last
		}
	}
	return win
}

// peakMem returns the largest live-heap observation across windows.
func peakMem(win []MemWindow) int64 {
	var peak int64
	for _, w := range win {
		if w.PeakBytes > peak {
			peak = w.PeakBytes
		}
	}
	return peak
}
