package countq

import (
	"strings"
	"testing"
	"time"
)

// TestScenarioRegistryRoundTrip is the round-trip gate for the scenario
// registry: every registered scenario — the canonical library plus
// anything registered later — must expand against a real base workload,
// run at a tiny budget over registered structures, produce validated,
// structurally sound metrics, and do so under -race (CI runs this suite
// with the race detector on).
func TestScenarioRegistryRoundTrip(t *testing.T) {
	registerTestImpls()
	if len(Scenarios()) == 0 {
		t.Fatal("no scenarios registered")
	}
	for _, info := range Scenarios() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			// test-batch implements BatchIncrementer so the batched
			// scenario (and any future batching phase) can run.
			base := Workload{
				Counter:    "test-batch",
				Queue:      "test-queue",
				Scenario:   info.Name,
				Goroutines: 4,
				Ops:        4000,
				Mix:        0.5,
				Seed:       1,
			}
			sc, err := ExpandScenario(info.Name, base)
			if err != nil {
				t.Fatalf("expand: %v", err)
			}
			if sc.Spec != info.Name {
				t.Errorf("canonical spec = %q, want bare name", sc.Spec)
			}
			m, err := Run(base)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if m.Scenario != info.Name {
				t.Errorf("metrics scenario = %q", m.Scenario)
			}
			if len(m.Phases) != len(sc.Phases) {
				t.Fatalf("ran %d phases, expansion has %d", len(m.Phases), len(sc.Phases))
			}
			var totalOps, measuredOps int
			measured := 0
			for i, pm := range m.Phases {
				if pm.Name != sc.Phases[i].Name {
					t.Errorf("phase %d name %q, want %q", i, pm.Name, sc.Phases[i].Name)
				}
				totalOps += pm.Ops
				if !pm.Warmup {
					measured++
					measuredOps += pm.Ops
				}
				if pm.Ops > 0 && len(pm.Timeline) == 0 {
					t.Errorf("phase %q did %d ops but has no timeline", pm.Name, pm.Ops)
				}
				if pm.Fairness < 0 || pm.Fairness > 1 {
					t.Errorf("phase %q fairness %v outside [0,1]", pm.Name, pm.Fairness)
				}
				for _, l := range []*LatencyStats{pm.CounterLat, pm.QueueLat} {
					if l == nil {
						continue
					}
					if l.P50Ns > l.P99Ns || l.P99Ns > l.P999Ns || l.P999Ns > l.MaxNs {
						t.Errorf("phase %q quantiles not monotone: %+v", pm.Name, l)
					}
				}
			}
			if measured == 0 {
				t.Error("no measured phase ran")
			}
			if totalOps != 4000 {
				t.Errorf("phases did %d ops total, budget was 4000", totalOps)
			}
			if m.Aggregate.Ops != measuredOps {
				t.Errorf("aggregate ops %d, measured phases did %d", m.Aggregate.Ops, measuredOps)
			}
		})
	}
}

func TestScenarioRampShape(t *testing.T) {
	registerTestImpls()
	base := Workload{Counter: "test-alpha", Goroutines: 8, Ops: 8000}
	sc, err := ExpandScenario("ramp", base)
	if err != nil {
		t.Fatal(err)
	}
	wantG := []int{1, 2, 4, 8}
	if len(sc.Phases) != len(wantG) {
		t.Fatalf("ramp phases = %d, want %d", len(sc.Phases), len(wantG))
	}
	for i, p := range sc.Phases {
		if p.Goroutines != wantG[i] {
			t.Errorf("phase %d goroutines = %d, want %d", i, p.Goroutines, wantG[i])
		}
	}
	// A non-power-of-two ceiling still ends exactly at the ceiling.
	sc, err = ExpandScenario("ramp?gmax=6", base)
	if err != nil {
		t.Fatal(err)
	}
	last := sc.Phases[len(sc.Phases)-1]
	if last.Goroutines != 6 {
		t.Errorf("ramp?gmax=6 tops out at %d goroutines", last.Goroutines)
	}
}

func TestScenarioMixshiftShape(t *testing.T) {
	registerTestImpls()
	base := Workload{Counter: "test-alpha", Queue: "test-queue", Ops: 5000}
	sc, err := ExpandScenario("mixshift", base)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Phases) != 5 {
		t.Fatalf("mixshift phases = %d, want 5", len(sc.Phases))
	}
	if sc.Phases[0].Mix != 0 || sc.Phases[4].Mix != 1 {
		t.Errorf("mixshift endpoints %v..%v, want 0..1", sc.Phases[0].Mix, sc.Phases[4].Mix)
	}
	// mixshift without both structures fails at expansion, before any run.
	if _, err := ExpandScenario("mixshift", Workload{Counter: "test-alpha", Ops: 5000}); err == nil {
		t.Error("mixshift without a queue accepted")
	}
}

func TestScenarioSteadyWarmupExcluded(t *testing.T) {
	registerTestImpls()
	m, err := Run(Workload{
		Counter: "test-alpha", Scenario: "steady?warmup=0.25",
		Goroutines: 2, Ops: 4000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Phases) != 2 || !m.Phases[0].Warmup || m.Phases[1].Warmup {
		t.Fatalf("steady phases malformed: %+v", m.Phases)
	}
	if m.Phases[0].Ops != 1000 || m.Phases[1].Ops != 3000 {
		t.Errorf("warmup split %d/%d, want 1000/3000", m.Phases[0].Ops, m.Phases[1].Ops)
	}
	if m.Aggregate.Ops != 3000 {
		t.Errorf("aggregate includes warmup: %d ops, want 3000", m.Aggregate.Ops)
	}
	// warmup=0 drops the warmup phase entirely.
	m, err = Run(Workload{Counter: "test-alpha", Scenario: "steady?warmup=0", Ops: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Phases) != 1 || m.Phases[0].Warmup {
		t.Errorf("steady?warmup=0 phases: %+v", m.Phases)
	}
}

func TestScenarioBatchedRequiresCapability(t *testing.T) {
	registerTestImpls()
	// The batched scenario on a counter without IncN fails loudly, naming
	// the capability — the fail-loudly rule end to end through a scenario.
	_, err := Run(Workload{Counter: "test-alpha", Scenario: "batched", Ops: 2000})
	if err == nil {
		t.Fatal("batched scenario on a non-batching counter accepted")
	}
	if !strings.Contains(err.Error(), "BatchIncrementer") {
		t.Errorf("error does not name the missing capability: %v", err)
	}
	// On a batching counter the second phase actually batches.
	m, err := Run(Workload{Counter: "test-batch", Scenario: "batched?batch=32", Ops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Phases[0].Batch != 0 || m.Phases[1].Batch != 32 {
		t.Errorf("batched phases batch = %d/%d, want 0/32", m.Phases[0].Batch, m.Phases[1].Batch)
	}
}

func TestScenarioDurationBudgetSplits(t *testing.T) {
	registerTestImpls()
	start := time.Now()
	m, err := Run(Workload{
		Counter: "test-alpha", Scenario: "ramp?gmax=2",
		Duration: 30 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("duration scenario ran far past its budget")
	}
	if len(m.Phases) != 2 {
		t.Fatalf("ramp?gmax=2 phases = %d", len(m.Phases))
	}
	for _, p := range m.Phases {
		if p.Ops == 0 {
			t.Errorf("duration phase %q did no operations", p.Name)
		}
	}
}

func TestScenarioSpecErrors(t *testing.T) {
	registerTestImpls()
	base := Workload{Counter: "test-alpha", Ops: 1000}
	if _, err := ExpandScenario("no-such-scenario", base); err == nil {
		t.Error("unknown scenario accepted")
	} else if !strings.Contains(err.Error(), "ramp") {
		t.Errorf("unknown-scenario error does not list alternatives: %v", err)
	}
	if _, err := ExpandScenario("ramp?bogus=1", base); err == nil {
		t.Error("unknown scenario param accepted")
	}
	if _, err := ExpandScenario("ramp?gmax=banana", base); err == nil {
		t.Error("mistyped scenario param accepted")
	}
	if _, err := ExpandScenario("steady?warmup=0.99", base); err == nil {
		t.Error("out-of-range warmup fraction accepted")
	}
	if _, err := ExpandScenario("spike?cycles=0", base); err == nil {
		t.Error("zero spike cycles accepted")
	}
	// A budget too small to give every phase an op fails at expansion.
	if _, err := ExpandScenario("mixshift?steps=20", Workload{Counter: "test-alpha", Queue: "test-queue", Ops: 10}); err == nil {
		t.Error("10-op budget across 20 phases accepted")
	}
	// Run surfaces expansion errors too.
	if _, err := Run(Workload{Counter: "test-alpha", Scenario: "no-such-scenario", Ops: 100}); err == nil {
		t.Error("Run accepted an unknown scenario")
	}
}

func TestScenarioRegistryDuplicatePanics(t *testing.T) {
	mustPanic(t, "duplicate scenario", func() {
		RegisterScenario(ScenarioInfo{
			Name:   "ramp",
			Phases: func(Workload, Options) ([]Phase, error) { return nil, nil },
		})
	})
	mustPanic(t, "nil scenario expansion", func() {
		RegisterScenario(ScenarioInfo{Name: "test-nil-scenario"})
	})
	mustPanic(t, "scenario spec metacharacter", func() {
		RegisterScenario(ScenarioInfo{
			Name:   "bad?name",
			Phases: func(Workload, Options) ([]Phase, error) { return nil, nil },
		})
	})
}
