package countq

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Arrival selects how operations arrive at the shared structure.
type Arrival int

const (
	// Closed is a closed loop: every goroutine issues its next operation
	// the moment the previous one returns — maximum sustained contention.
	Closed Arrival = iota
	// Uniform spaces operations with small random think times, modelling
	// independent clients arriving roughly uniformly.
	Uniform
	// Bursty alternates dense bursts of back-to-back operations with
	// longer pauses, modelling synchronized arrival spikes.
	Bursty
)

// String returns the arrival pattern's registry name.
func (a Arrival) String() string {
	switch a {
	case Closed:
		return "closed"
	case Uniform:
		return "uniform"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// ParseArrival maps a name to an Arrival pattern.
func ParseArrival(name string) (Arrival, error) {
	switch name {
	case "", "closed":
		return Closed, nil
	case "uniform":
		return Uniform, nil
	case "bursty":
		return Bursty, nil
	default:
		return 0, fmt.Errorf("countq: unknown arrival pattern %q (closed|uniform|bursty)", name)
	}
}

// Workload configures one mixed counting/queuing run.
type Workload struct {
	// Counter and Queue name registered implementations. At least one
	// must be set; leaving one empty runs a pure workload of the other
	// kind.
	Counter string
	Queue   string
	// Goroutines is the number of concurrent workers (default
	// GOMAXPROCS).
	Goroutines int
	// Ops is the total operation budget across all goroutines (default
	// 65536 when Duration is also zero).
	Ops int
	// Duration, when positive, replaces Ops: goroutines issue operations
	// until the deadline passes.
	Duration time.Duration
	// CounterFrac is the fraction of operations sent to the counter
	// (the rest enqueue). It is forced to 1 when Queue is empty and 0
	// when Counter is empty; with both set, zero means an even 50/50
	// split unless PureQueue is set.
	CounterFrac float64
	// PureQueue forces CounterFrac = 0 even though both names are set.
	PureQueue bool
	// Arrival selects the arrival pattern (default Closed).
	Arrival Arrival
	// Seed drives the per-goroutine mix and arrival randomness; runs
	// with the same seed and goroutine count draw identical op
	// sequences.
	Seed int64
}

// Result reports one driver run. Counts and predecessor chains have
// already been validated when Run returns it.
type Result struct {
	Counter    string        `json:"counter,omitempty"`
	Queue      string        `json:"queue,omitempty"`
	Arrival    string        `json:"arrival"`
	Goroutines int           `json:"goroutines"`
	Ops        int           `json:"ops"`
	CounterOps int           `json:"counter_ops"`
	QueueOps   int           `json:"queue_ops"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	CounterNs  float64       `json:"counter_ns_per_op"`
	QueueNs    float64       `json:"queue_ns_per_op"`
}

// NsPerOp reports average wall nanoseconds per operation.
func (r *Result) NsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Ops)
}

// Run executes the workload against freshly constructed instances of the
// named implementations, validates the outcome (counts distinct and
// gap-free after draining leased remainders, predecessors a single total
// order), and reports throughput per kind.
func Run(w Workload) (*Result, error) {
	if w.Counter == "" && w.Queue == "" {
		return nil, fmt.Errorf("countq: workload names neither a counter nor a queue")
	}
	var (
		c   Counter
		q   Queuer
		err error
	)
	if w.Counter != "" {
		if c, err = NewCounter(w.Counter); err != nil {
			return nil, err
		}
	}
	if w.Queue != "" {
		if q, err = NewQueue(w.Queue); err != nil {
			return nil, err
		}
	}
	frac := w.CounterFrac
	switch {
	case q == nil:
		frac = 1
	case c == nil || w.PureQueue:
		frac = 0
	case frac == 0:
		frac = 0.5
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("countq: counter fraction %v outside [0,1]", frac)
	}
	goroutines := w.Goroutines
	if goroutines <= 0 {
		goroutines = runtime.GOMAXPROCS(0)
	}
	ops := w.Ops
	if w.Duration > 0 {
		ops = 0 // a positive Duration replaces the ops budget
	} else if ops <= 0 {
		ops = 1 << 16
	}

	type lane struct {
		counts     []int64
		ids, preds []int64
		counterNs  int64
		queueNs    int64
	}
	lanes := make([]lane, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(w.Duration)
	for gi := 0; gi < goroutines; gi++ {
		budget := 0
		if ops > 0 {
			budget = ops / goroutines
			if gi < ops%goroutines {
				budget++
			}
		}
		wg.Add(1)
		go func(gi, budget int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(w.Seed + int64(gi)*7919))
			ln := &lanes[gi]
			burst := 0
			for i := 0; ; i++ {
				if budget > 0 {
					if i >= budget {
						break
					}
				} else if i%64 == 0 && !time.Now().Before(deadline) {
					break
				}
				pause(w.Arrival, rng, &burst)
				if frac == 1 || (frac > 0 && rng.Float64() < frac) {
					t0 := time.Now()
					v := c.Inc()
					ln.counterNs += time.Since(t0).Nanoseconds()
					ln.counts = append(ln.counts, v)
				} else {
					id := int64(gi)<<32 | int64(i)
					t0 := time.Now()
					p := q.Enqueue(id)
					ln.queueNs += time.Since(t0).Nanoseconds()
					ln.ids = append(ln.ids, id)
					ln.preds = append(ln.preds, p)
				}
			}
		}(gi, budget)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var counts, ids, preds []int64
	var counterNs, queueNs int64
	for gi := range lanes {
		counts = append(counts, lanes[gi].counts...)
		ids = append(ids, lanes[gi].ids...)
		preds = append(preds, lanes[gi].preds...)
		counterNs += lanes[gi].counterNs
		queueNs += lanes[gi].queueNs
	}
	counterOps, queueOps := len(counts), len(ids)
	if d, ok := c.(Drainer); ok {
		counts = append(counts, d.Drain()...)
	}
	if err := ValidateCounts(counts); err != nil {
		return nil, fmt.Errorf("countq: %s failed validation: %w", w.Counter, err)
	}
	if err := ValidateOrder(ids, preds); err != nil {
		return nil, fmt.Errorf("countq: %s failed validation: %w", w.Queue, err)
	}

	res := &Result{
		Counter:    w.Counter,
		Queue:      w.Queue,
		Arrival:    w.Arrival.String(),
		Goroutines: goroutines,
		Ops:        counterOps + queueOps,
		CounterOps: counterOps,
		QueueOps:   queueOps,
		Elapsed:    elapsed,
	}
	if counterOps > 0 {
		res.CounterNs = float64(counterNs) / float64(counterOps)
	}
	if queueOps > 0 {
		res.QueueNs = float64(queueNs) / float64(queueOps)
	}
	return res, nil
}

// pause realizes the arrival pattern's think time between operations.
func pause(a Arrival, rng *rand.Rand, burst *int) {
	switch a {
	case Uniform:
		for n := rng.Intn(8); n > 0; n-- {
			runtime.Gosched()
		}
	case Bursty:
		if *burst <= 0 {
			*burst = 1 + rng.Intn(32)
			for n := 16 + rng.Intn(64); n > 0; n-- {
				runtime.Gosched()
			}
		}
		*burst--
	}
}
