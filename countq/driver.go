package countq

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Arrival selects how operations arrive at the shared structure.
type Arrival int

const (
	// Closed is a closed loop: every goroutine issues its next operation
	// the moment the previous one returns — maximum sustained contention.
	Closed Arrival = iota
	// Uniform spaces operations with small random think times, modelling
	// independent clients arriving roughly uniformly.
	Uniform
	// Bursty alternates dense bursts of back-to-back operations with
	// longer pauses, modelling synchronized arrival spikes.
	Bursty
)

// String returns the arrival pattern's registry name.
func (a Arrival) String() string {
	switch a {
	case Closed:
		return "closed"
	case Uniform:
		return "uniform"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// ParseArrival maps a name to an Arrival pattern.
func ParseArrival(name string) (Arrival, error) {
	switch name {
	case "", "closed":
		return Closed, nil
	case "uniform":
		return Uniform, nil
	case "bursty":
		return Bursty, nil
	default:
		return 0, fmt.Errorf("countq: unknown arrival pattern %q (closed|uniform|bursty)", name)
	}
}

// Workload configures one mixed counting/queuing run.
type Workload struct {
	// Counter and Queue are structure specs — a registered name, optionally
	// with parameters ("sharded?shards=4&batch=16"). At least one must be
	// set; leaving one empty runs a pure workload of the other kind.
	Counter string
	Queue   string
	// Goroutines is the number of concurrent workers (default
	// GOMAXPROCS).
	Goroutines int
	// Ops is the total operation budget across all goroutines (default
	// 65536 when Duration is also zero).
	Ops int
	// Duration, when positive, replaces Ops: goroutines issue operations
	// until the deadline passes.
	Duration time.Duration
	// Mix is the fraction of operations sent to the counter (the rest
	// enqueue), and means exactly what it says: the zero value sends every
	// operation to the queue, so a mixed run must set Mix explicitly.
	// It is forced to 1 when Queue is empty and 0 when Counter is empty;
	// with both set it must lie in [0,1].
	Mix float64
	// Batch, when > 1 and the counter implements BatchIncrementer, issues
	// counter operations as IncN(Batch) block grants — one coordination
	// round per Batch counts — and validation covers the granted ranges.
	// Ignored (single Incs) when the counter lacks the capability.
	Batch int
	// LatencySample controls per-operation timing: every Kth operation of
	// each kind is timed (default 64; 1 times every operation). Sampling
	// keeps the timing overhead from distorting ns/op for fast structures;
	// operation totals and wall-clock elapsed stay exact regardless.
	LatencySample int
	// Arrival selects the arrival pattern (default Closed).
	Arrival Arrival
	// Seed drives the per-goroutine mix and arrival randomness; runs
	// with the same seed and goroutine count draw identical op
	// sequences.
	Seed int64
}

// Result reports one driver run. Counts (including block grants) and
// predecessor chains have already been validated when Run returns it.
type Result struct {
	Counter    string        `json:"counter,omitempty"`
	Queue      string        `json:"queue,omitempty"`
	Arrival    string        `json:"arrival"`
	Goroutines int           `json:"goroutines"`
	Batch      int           `json:"batch,omitempty"`
	Ops        int           `json:"ops"`
	CounterOps int           `json:"counter_ops"`
	QueueOps   int           `json:"queue_ops"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	// CounterNs and QueueNs are per-operation latencies from the sampled
	// timings (see Workload.LatencySample); batched counter operations
	// report the per-count amortized cost of their IncN call.
	CounterNs float64 `json:"counter_ns_per_op"`
	QueueNs   float64 `json:"queue_ns_per_op"`
}

// NsPerOp reports average wall nanoseconds per operation.
func (r *Result) NsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Ops)
}

// Run executes the workload against freshly constructed instances of the
// specified implementations, validates the outcome (counts distinct and
// gap-free after draining leased remainders — block grants included —
// predecessors a single total order), and reports throughput per kind.
//
// Capability interfaces are exploited when present: a HandleMaker counter
// serves each worker through its own handle (closed when the worker
// finishes), and with Workload.Batch > 1 a BatchIncrementer counter takes
// block grants instead of single increments.
func Run(w Workload) (*Result, error) {
	if w.Counter == "" && w.Queue == "" {
		return nil, fmt.Errorf("countq: workload names neither a counter nor a queue")
	}
	var (
		c   Counter
		q   Queuer
		err error
	)
	if w.Counter != "" {
		if c, err = NewCounter(w.Counter); err != nil {
			return nil, err
		}
	}
	if w.Queue != "" {
		if q, err = NewQueue(w.Queue); err != nil {
			return nil, err
		}
	}
	mix := w.Mix
	switch {
	case q == nil:
		mix = 1
	case c == nil:
		mix = 0
	}
	if mix < 0 || mix > 1 {
		return nil, fmt.Errorf("countq: counter mix %v outside [0,1]", mix)
	}
	goroutines := w.Goroutines
	if goroutines <= 0 {
		goroutines = runtime.GOMAXPROCS(0)
	}
	ops := w.Ops
	if w.Duration > 0 {
		ops = 0 // a positive Duration replaces the ops budget
	} else if ops <= 0 {
		ops = 1 << 16
	}
	batch := 0
	var batcher BatchIncrementer
	if w.Batch > 1 {
		if b, ok := c.(BatchIncrementer); ok {
			batch, batcher = w.Batch, b
		}
	}
	// Each batched draw grants `batch` counter operations at once, so the
	// per-draw counter probability must shrink for Mix to stay the
	// fraction of *operations* that count: solving
	// p·batch / (p·batch + (1-p)) = mix for p.
	drawMix := mix
	if batcher != nil && mix > 0 && mix < 1 {
		drawMix = mix / (float64(batch)*(1-mix) + mix)
	}
	sample := w.LatencySample
	if sample <= 0 {
		sample = 64
	}
	maker, _ := c.(HandleMaker)

	type lane struct {
		counts     []int64
		blocks     []CountRange
		ids, preds []int64
		counterNs  int64 // sampled
		queueNs    int64 // sampled
		counterSam int64 // counter ops covered by the sampled timings
		queueSam   int64
	}
	lanes := make([]lane, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(w.Duration)
	for gi := 0; gi < goroutines; gi++ {
		budget := 0
		if ops > 0 {
			budget = ops / goroutines
			if gi < ops%goroutines {
				budget++
			}
		}
		wg.Add(1)
		go func(gi, budget int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(w.Seed + int64(gi)*7919))
			ln := &lanes[gi]
			inc := func() int64 { return c.Inc() } // c may be nil in pure-queue runs
			if maker != nil {
				h := maker.NewHandle()
				defer h.Close()
				inc = h.Inc
			}
			burst := 0
			issued := 0 // operations completed (block grants count as N)
			for iter := 0; ; iter++ {
				if budget > 0 {
					if issued >= budget {
						break
					}
				} else if iter%64 == 0 && !time.Now().Before(deadline) {
					break
				}
				pause(w.Arrival, rng, &burst)
				if mix == 1 || (mix > 0 && rng.Float64() < drawMix) {
					if batcher != nil {
						n := int64(batch)
						if budget > 0 && issued+batch > budget {
							n = int64(budget - issued)
						}
						if len(ln.blocks)%sample == 0 {
							t0 := time.Now()
							first := batcher.IncN(n)
							ln.counterNs += time.Since(t0).Nanoseconds()
							ln.counterSam += n
							ln.blocks = append(ln.blocks, CountRange{First: first, N: n})
						} else {
							ln.blocks = append(ln.blocks, CountRange{First: batcher.IncN(n), N: n})
						}
						issued += int(n)
						continue
					}
					if len(ln.counts)%sample == 0 {
						t0 := time.Now()
						v := inc()
						ln.counterNs += time.Since(t0).Nanoseconds()
						ln.counterSam++
						ln.counts = append(ln.counts, v)
					} else {
						ln.counts = append(ln.counts, inc())
					}
				} else {
					id := int64(gi)<<32 | int64(iter)
					if len(ln.ids)%sample == 0 {
						t0 := time.Now()
						p := q.Enqueue(id)
						ln.queueNs += time.Since(t0).Nanoseconds()
						ln.queueSam++
						ln.ids = append(ln.ids, id)
						ln.preds = append(ln.preds, p)
					} else {
						ln.ids = append(ln.ids, id)
						ln.preds = append(ln.preds, q.Enqueue(id))
					}
				}
				issued++
			}
		}(gi, budget)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var counts, ids, preds []int64
	var blocks []CountRange
	var counterNs, queueNs, counterSam, queueSam int64
	counterOps := 0
	for gi := range lanes {
		counts = append(counts, lanes[gi].counts...)
		blocks = append(blocks, lanes[gi].blocks...)
		ids = append(ids, lanes[gi].ids...)
		preds = append(preds, lanes[gi].preds...)
		counterNs += lanes[gi].counterNs
		queueNs += lanes[gi].queueNs
		counterSam += lanes[gi].counterSam
		queueSam += lanes[gi].queueSam
	}
	counterOps = len(counts)
	for _, b := range blocks {
		counterOps += int(b.N)
	}
	queueOps := len(ids)
	if d, ok := c.(Drainer); ok {
		counts = append(counts, d.Drain()...)
	}
	if err := ValidateCountRanges(counts, blocks); err != nil {
		return nil, fmt.Errorf("countq: %s failed validation: %w", w.Counter, err)
	}
	if err := ValidateOrder(ids, preds); err != nil {
		return nil, fmt.Errorf("countq: %s failed validation: %w", w.Queue, err)
	}

	res := &Result{
		Counter:    w.Counter,
		Queue:      w.Queue,
		Arrival:    w.Arrival.String(),
		Goroutines: goroutines,
		Batch:      batch,
		Ops:        counterOps + queueOps,
		CounterOps: counterOps,
		QueueOps:   queueOps,
		Elapsed:    elapsed,
	}
	if counterSam > 0 {
		res.CounterNs = float64(counterNs) / float64(counterSam)
	}
	if queueSam > 0 {
		res.QueueNs = float64(queueNs) / float64(queueSam)
	}
	return res, nil
}

// pause realizes the arrival pattern's think time between operations.
func pause(a Arrival, rng *rand.Rand, burst *int) {
	switch a {
	case Uniform:
		for n := rng.Intn(8); n > 0; n-- {
			runtime.Gosched()
		}
	case Bursty:
		if *burst <= 0 {
			*burst = 1 + rng.Intn(32)
			for n := 16 + rng.Intn(64); n > 0; n-- {
				runtime.Gosched()
			}
		}
		*burst--
	}
}
