package countq

import (
	"testing"
	"time"
)

func TestDriverMixedWorkload(t *testing.T) {
	registerTestImpls()
	for _, arrival := range []Arrival{Closed, Uniform, Bursty} {
		res, err := Run(Workload{
			Counter:     "test-alpha",
			Queue:       "test-queue",
			Goroutines:  4,
			Ops:         4000,
			CounterFrac: 0.5,
			Arrival:     arrival,
			Seed:        1,
		})
		if err != nil {
			t.Fatalf("%v: %v", arrival, err)
		}
		if res.Ops != 4000 {
			t.Errorf("%v: ops = %d, want 4000", arrival, res.Ops)
		}
		if res.CounterOps+res.QueueOps != res.Ops {
			t.Errorf("%v: op split %d+%d != %d", arrival, res.CounterOps, res.QueueOps, res.Ops)
		}
		// A 50/50 mix over 4000 draws should not be wildly lopsided.
		if res.CounterOps < 1000 || res.QueueOps < 1000 {
			t.Errorf("%v: mix lopsided: %d counter, %d queue", arrival, res.CounterOps, res.QueueOps)
		}
		if res.Arrival != arrival.String() {
			t.Errorf("arrival = %q, want %q", res.Arrival, arrival)
		}
		if res.NsPerOp() <= 0 {
			t.Errorf("%v: ns/op = %v", arrival, res.NsPerOp())
		}
	}
}

func TestDriverPureWorkloads(t *testing.T) {
	registerTestImpls()
	res, err := Run(Workload{Counter: "test-alpha", Goroutines: 2, Ops: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterOps != 500 || res.QueueOps != 0 {
		t.Errorf("pure counter split: %d/%d", res.CounterOps, res.QueueOps)
	}
	res, err = Run(Workload{Queue: "test-queue", Goroutines: 2, Ops: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueOps != 500 || res.CounterOps != 0 {
		t.Errorf("pure queue split: %d/%d", res.CounterOps, res.QueueOps)
	}
	res, err = Run(Workload{Counter: "test-alpha", Queue: "test-queue", PureQueue: true, Ops: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueOps != 300 {
		t.Errorf("PureQueue split: %d/%d", res.CounterOps, res.QueueOps)
	}
}

func TestDriverDurationBudget(t *testing.T) {
	registerTestImpls()
	res, err := Run(Workload{
		Counter:  "test-alpha",
		Duration: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Error("duration-budget run performed no operations")
	}
	// A positive Duration replaces the ops budget, per the field doc: a
	// huge Ops value must not outlive the deadline.
	start := time.Now()
	res, err = Run(Workload{
		Counter:  "test-alpha",
		Ops:      1 << 40,
		Duration: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Duration did not replace Ops: run took %v", elapsed)
	}
	if res.Ops >= 1<<40 {
		t.Errorf("run honored Ops (%d) instead of Duration", res.Ops)
	}
}

func TestDriverRejectsBadConfig(t *testing.T) {
	registerTestImpls()
	if _, err := Run(Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Run(Workload{Counter: "no-such-counter"}); err == nil {
		t.Error("unknown counter accepted")
	}
	if _, err := Run(Workload{Queue: "no-such-queue"}); err == nil {
		t.Error("unknown queue accepted")
	}
	if _, err := Run(Workload{Counter: "test-alpha", Queue: "test-queue", CounterFrac: 1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := ParseArrival("fractal"); err == nil {
		t.Error("unknown arrival pattern accepted")
	}
}
