package countq

import (
	"testing"
	"time"
)

func TestDriverMixedWorkload(t *testing.T) {
	registerTestImpls()
	for _, arrival := range []Arrival{Closed, Uniform, Bursty} {
		res, err := Run(Workload{
			Counter:    "test-alpha",
			Queue:      "test-queue",
			Goroutines: 4,
			Ops:        4000,
			Mix:        0.5,
			Arrival:    arrival,
			Seed:       1,
		})
		if err != nil {
			t.Fatalf("%v: %v", arrival, err)
		}
		if res.Ops != 4000 {
			t.Errorf("%v: ops = %d, want 4000", arrival, res.Ops)
		}
		if res.CounterOps+res.QueueOps != res.Ops {
			t.Errorf("%v: op split %d+%d != %d", arrival, res.CounterOps, res.QueueOps, res.Ops)
		}
		// A 50/50 mix over 4000 draws should not be wildly lopsided.
		if res.CounterOps < 1000 || res.QueueOps < 1000 {
			t.Errorf("%v: mix lopsided: %d counter, %d queue", arrival, res.CounterOps, res.QueueOps)
		}
		if res.Arrival != arrival.String() {
			t.Errorf("arrival = %q, want %q", res.Arrival, arrival)
		}
		if res.NsPerOp() <= 0 {
			t.Errorf("%v: ns/op = %v", arrival, res.NsPerOp())
		}
	}
}

func TestDriverPureWorkloads(t *testing.T) {
	registerTestImpls()
	res, err := Run(Workload{Counter: "test-alpha", Goroutines: 2, Ops: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterOps != 500 || res.QueueOps != 0 {
		t.Errorf("pure counter split: %d/%d", res.CounterOps, res.QueueOps)
	}
	res, err = Run(Workload{Queue: "test-queue", Goroutines: 2, Ops: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueOps != 500 || res.CounterOps != 0 {
		t.Errorf("pure queue split: %d/%d", res.CounterOps, res.QueueOps)
	}
	// Mix means what it says: the zero value with both structures set is a
	// pure-queue run — no silent 50/50, no escape-hatch field.
	res, err = Run(Workload{Counter: "test-alpha", Queue: "test-queue", Ops: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueOps != 300 || res.CounterOps != 0 {
		t.Errorf("zero Mix split: %d/%d, want pure queue", res.CounterOps, res.QueueOps)
	}
	// And Mix 1 with both set is a pure-counter run.
	res, err = Run(Workload{Counter: "test-alpha", Queue: "test-queue", Mix: 1, Ops: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterOps != 300 || res.QueueOps != 0 {
		t.Errorf("Mix=1 split: %d/%d, want pure counter", res.CounterOps, res.QueueOps)
	}
}

func TestDriverParameterizedSpecs(t *testing.T) {
	registerTestImpls()
	// Workload.Counter is a spec: parameters flow through the registry.
	// start=0 is required for validation (counts must cover 1..n), so this
	// exercises the parse-and-construct path end to end.
	res, err := Run(Workload{Counter: "test-param?start=0", Goroutines: 2, Ops: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter != "test-param?start=0" {
		t.Errorf("result spec = %q", res.Counter)
	}
	// Bad specs fail before any goroutine runs.
	if _, err := Run(Workload{Counter: "test-param?bogus=1"}); err == nil {
		t.Error("unknown param accepted by the driver")
	}
}

func TestDriverBatchGrants(t *testing.T) {
	registerTestImpls()
	// A BatchIncrementer counter with Batch > 1 takes IncN block grants;
	// validation proves the granted ranges tile 1..ops with no overlap.
	res, err := Run(Workload{Counter: "test-batch", Goroutines: 4, Ops: 4096, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterOps != 4096 {
		t.Errorf("batched counter ops = %d, want 4096", res.CounterOps)
	}
	if res.Batch != 64 {
		t.Errorf("result batch = %d, want 64", res.Batch)
	}
	// An uneven budget forces a short final block per goroutine.
	res, err = Run(Workload{Counter: "test-batch", Goroutines: 3, Ops: 1000, Batch: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterOps != 1000 {
		t.Errorf("uneven batched ops = %d, want 1000", res.CounterOps)
	}
	// Mix still means the fraction of operations when batching: block
	// draws are down-weighted so a 50/50 mix stays near 50/50 in ops.
	res, err = Run(Workload{
		Counter: "test-batch", Queue: "test-queue",
		Goroutines: 2, Ops: 20000, Mix: 0.5, Batch: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.CounterOps) / float64(res.Ops)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("batched mix drifted: counter fraction %.2f (split %d/%d)", frac, res.CounterOps, res.QueueOps)
	}
	// Batch on a counter without the capability falls back to single Incs.
	res, err = Run(Workload{Counter: "test-alpha", Ops: 200, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch != 0 {
		t.Errorf("incapable counter reported batch %d", res.Batch)
	}
	if res.CounterOps != 200 {
		t.Errorf("fallback ops = %d, want 200", res.CounterOps)
	}
}

func TestDriverHandles(t *testing.T) {
	registerTestImpls()
	// A HandleMaker counter serves each worker through its own handle.
	// Validation passing proves the handles' leases plus Close/Drain close
	// the range; the close count proves every worker got (and closed) one.
	res, err := Run(Workload{Counter: "test-handle", Goroutines: 4, Ops: 1002})
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterOps != 1002 {
		t.Errorf("handle ops = %d, want 1002", res.CounterOps)
	}
	c := lastHandleCounter.Load()
	if c == nil {
		t.Fatal("registry did not construct the test-handle counter")
	}
	if got := c.closes.Load(); got != 4 {
		t.Errorf("handle closes = %d, want 4 (one per goroutine)", got)
	}
}

func TestDriverLatencySampling(t *testing.T) {
	registerTestImpls()
	// With a sampling interval larger than 1 the per-kind latencies still
	// come out positive (the first op of each kind is always sampled) and
	// op totals stay exact.
	res, err := Run(Workload{
		Counter: "test-alpha", Queue: "test-queue",
		Goroutines: 2, Ops: 2000, Mix: 0.5, LatencySample: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 {
		t.Errorf("sampled run ops = %d, want 2000", res.Ops)
	}
	if res.CounterNs <= 0 || res.QueueNs <= 0 {
		t.Errorf("sampled latencies not positive: counter %v, queue %v", res.CounterNs, res.QueueNs)
	}
	// Sampling every op still works.
	res, err = Run(Workload{Counter: "test-alpha", Ops: 100, LatencySample: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterNs <= 0 {
		t.Errorf("per-op sampling latency = %v", res.CounterNs)
	}
}

func TestDriverDurationBudget(t *testing.T) {
	registerTestImpls()
	res, err := Run(Workload{
		Counter:  "test-alpha",
		Duration: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Error("duration-budget run performed no operations")
	}
	// A positive Duration replaces the ops budget, per the field doc: a
	// huge Ops value must not outlive the deadline.
	start := time.Now()
	res, err = Run(Workload{
		Counter:  "test-alpha",
		Ops:      1 << 40,
		Duration: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Duration did not replace Ops: run took %v", elapsed)
	}
	if res.Ops >= 1<<40 {
		t.Errorf("run honored Ops (%d) instead of Duration", res.Ops)
	}
}

func TestDriverRejectsBadConfig(t *testing.T) {
	registerTestImpls()
	if _, err := Run(Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Run(Workload{Counter: "no-such-counter"}); err == nil {
		t.Error("unknown counter accepted")
	}
	if _, err := Run(Workload{Queue: "no-such-queue"}); err == nil {
		t.Error("unknown queue accepted")
	}
	if _, err := Run(Workload{Counter: "test-alpha", Queue: "test-queue", Mix: 1.5}); err == nil {
		t.Error("mix > 1 accepted")
	}
	if _, err := Run(Workload{Counter: "test-alpha", Queue: "test-queue", Mix: -0.5}); err == nil {
		t.Error("mix < 0 accepted")
	}
	if _, err := Run(Workload{Counter: "?x=1"}); err == nil {
		t.Error("nameless spec accepted")
	}
	if _, err := ParseArrival("fractal"); err == nil {
		t.Error("unknown arrival pattern accepted")
	}
}
