package countq

import (
	"strings"
	"testing"
	"time"
)

func TestDriverMixedWorkload(t *testing.T) {
	registerTestImpls()
	for _, arrival := range []Arrival{Closed, Uniform, Bursty} {
		res, err := Run(Workload{
			Counter:    "test-alpha",
			Queue:      "test-queue",
			Goroutines: 4,
			Ops:        4000,
			Mix:        0.5,
			Arrival:    arrival,
			Seed:       1,
		})
		if err != nil {
			t.Fatalf("%v: %v", arrival, err)
		}
		agg := res.Aggregate
		if agg.Ops != 4000 {
			t.Errorf("%v: ops = %d, want 4000", arrival, agg.Ops)
		}
		if agg.CounterOps+agg.QueueOps != agg.Ops {
			t.Errorf("%v: op split %d+%d != %d", arrival, agg.CounterOps, agg.QueueOps, agg.Ops)
		}
		// A 50/50 mix over 4000 draws should not be wildly lopsided.
		if agg.CounterOps < 1000 || agg.QueueOps < 1000 {
			t.Errorf("%v: mix lopsided: %d counter, %d queue", arrival, agg.CounterOps, agg.QueueOps)
		}
		if len(res.Phases) != 1 {
			t.Fatalf("%v: flat run has %d phases, want 1", arrival, len(res.Phases))
		}
		if res.Phases[0].Arrival != arrival.String() {
			t.Errorf("arrival = %q, want %q", res.Phases[0].Arrival, arrival)
		}
		if res.NsPerOp() <= 0 {
			t.Errorf("%v: ns/op = %v", arrival, res.NsPerOp())
		}
	}
}

func TestDriverPureWorkloads(t *testing.T) {
	registerTestImpls()
	res, err := Run(Workload{Counter: "test-alpha", Goroutines: 2, Ops: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.CounterOps != 500 || res.Aggregate.QueueOps != 0 {
		t.Errorf("pure counter split: %d/%d", res.Aggregate.CounterOps, res.Aggregate.QueueOps)
	}
	res, err = Run(Workload{Queue: "test-queue", Goroutines: 2, Ops: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.QueueOps != 500 || res.Aggregate.CounterOps != 0 {
		t.Errorf("pure queue split: %d/%d", res.Aggregate.CounterOps, res.Aggregate.QueueOps)
	}
	// Mix means what it says: the zero value with both structures set is a
	// pure-queue run — no silent 50/50, no escape-hatch field.
	res, err = Run(Workload{Counter: "test-alpha", Queue: "test-queue", Ops: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.QueueOps != 300 || res.Aggregate.CounterOps != 0 {
		t.Errorf("zero Mix split: %d/%d, want pure queue", res.Aggregate.CounterOps, res.Aggregate.QueueOps)
	}
	// And Mix 1 with both set is a pure-counter run.
	res, err = Run(Workload{Counter: "test-alpha", Queue: "test-queue", Mix: 1, Ops: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.CounterOps != 300 || res.Aggregate.QueueOps != 0 {
		t.Errorf("Mix=1 split: %d/%d, want pure counter", res.Aggregate.CounterOps, res.Aggregate.QueueOps)
	}
}

func TestDriverParameterizedSpecs(t *testing.T) {
	registerTestImpls()
	// Workload.Counter is a spec: parameters flow through the registry.
	// start=0 is required for validation (counts must cover 1..n), so this
	// exercises the parse-and-construct path end to end.
	res, err := Run(Workload{Counter: "test-param?start=0", Goroutines: 2, Ops: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter != "test-param?start=0" {
		t.Errorf("result spec = %q", res.Counter)
	}
	// Bad specs fail before any goroutine runs.
	if _, err := Run(Workload{Counter: "test-param?bogus=1"}); err == nil {
		t.Error("unknown param accepted by the driver")
	}
}

func TestDriverBatchGrants(t *testing.T) {
	registerTestImpls()
	// A BatchIncrementer counter with Batch > 1 takes IncN block grants;
	// validation proves the granted ranges tile 1..ops with no overlap.
	res, err := Run(Workload{Counter: "test-batch", Goroutines: 4, Ops: 4096, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.CounterOps != 4096 {
		t.Errorf("batched counter ops = %d, want 4096", res.Aggregate.CounterOps)
	}
	if res.Phases[0].Batch != 64 {
		t.Errorf("result batch = %d, want 64", res.Phases[0].Batch)
	}
	// An uneven budget forces a short final block per goroutine.
	res, err = Run(Workload{Counter: "test-batch", Goroutines: 3, Ops: 1000, Batch: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.CounterOps != 1000 {
		t.Errorf("uneven batched ops = %d, want 1000", res.Aggregate.CounterOps)
	}
	// Mix still means the fraction of operations when batching: block
	// draws are down-weighted so a 50/50 mix stays near 50/50 in ops.
	res, err = Run(Workload{
		Counter: "test-batch", Queue: "test-queue",
		Goroutines: 2, Ops: 20000, Mix: 0.5, Batch: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Aggregate.CounterOps) / float64(res.Aggregate.Ops)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("batched mix drifted: counter fraction %.2f (split %d/%d)", frac, res.Aggregate.CounterOps, res.Aggregate.QueueOps)
	}
	// Batch on a counter without the capability is rejected loudly, and
	// the error names the missing capability.
	_, err = Run(Workload{Counter: "test-alpha", Ops: 200, Batch: 64})
	if err == nil {
		t.Fatal("batch on a non-batching counter accepted")
	}
	if !strings.Contains(err.Error(), "BatchIncrementer") {
		t.Errorf("batch error does not name the missing capability: %v", err)
	}
	// Batch on a pure-queue run (mix forced to 0) never touches the
	// counter path and is not an error.
	if _, err := Run(Workload{Counter: "test-alpha", Queue: "test-queue", Mix: 0, Ops: 200, Batch: 64}); err != nil {
		t.Errorf("batch on a pure-queue mix rejected: %v", err)
	}
}

func TestDriverHandles(t *testing.T) {
	registerTestImpls()
	// A HandleMaker counter serves each worker through its own handle.
	// Validation passing proves the handles' leases plus Close/Drain close
	// the range; the close count proves every worker got (and closed) one.
	res, err := Run(Workload{Counter: "test-handle", Goroutines: 4, Ops: 1002})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.CounterOps != 1002 {
		t.Errorf("handle ops = %d, want 1002", res.Aggregate.CounterOps)
	}
	c := lastHandleCounter.Load()
	if c == nil {
		t.Fatal("registry did not construct the test-handle counter")
	}
	if got := c.closes.Load(); got != 4 {
		t.Errorf("handle closes = %d, want 4 (one per goroutine)", got)
	}
}

func TestDriverLatencyMetrics(t *testing.T) {
	registerTestImpls()
	// With a sampling interval larger than 1 the per-kind latency
	// distributions still come out populated (the first op of each kind is
	// always sampled) and op totals stay exact.
	res, err := Run(Workload{
		Counter: "test-alpha", Queue: "test-queue",
		Goroutines: 2, Ops: 2000, Mix: 0.5, LatencySample: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Ops != 2000 {
		t.Errorf("sampled run ops = %d, want 2000", res.Aggregate.Ops)
	}
	cl, ql := res.Aggregate.CounterLat, res.Aggregate.QueueLat
	if cl == nil || ql == nil {
		t.Fatalf("sampled latencies missing: counter %v, queue %v", cl, ql)
	}
	for _, l := range []*LatencyStats{cl, ql} {
		if l.Samples <= 0 || l.MeanNs < 0 {
			t.Errorf("degenerate latency stats: %+v", l)
		}
		if l.P50Ns > l.P90Ns || l.P90Ns > l.P99Ns || l.P99Ns > l.P999Ns || l.P999Ns > l.MaxNs {
			t.Errorf("quantiles not monotone: %+v", l)
		}
	}
	// Sampling every op still works.
	res, err = Run(Workload{Counter: "test-alpha", Ops: 100, LatencySample: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Aggregate.CounterLat.Samples; got != 100 {
		t.Errorf("per-op sampling covered %d ops, want 100", got)
	}
	// A negative sampling interval is rejected, not silently defaulted.
	if _, err := Run(Workload{Counter: "test-alpha", Ops: 100, LatencySample: -3}); err == nil {
		t.Error("negative LatencySample accepted")
	}
}

func TestDriverTimelineAndFairness(t *testing.T) {
	registerTestImpls()
	// A mixed run: the timeline must account for every operation of both
	// kinds, sampled or not.
	res, err := Run(Workload{
		Counter: "test-alpha", Queue: "test-queue",
		Goroutines: 4, Ops: 20000, Mix: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Phases[0]
	if len(p.Timeline) == 0 {
		t.Fatal("no throughput timeline recorded")
	}
	var tlOps int64
	for i, w := range p.Timeline {
		if w.EndNs <= w.StartNs {
			t.Errorf("window %d empty span [%d,%d)", i, w.StartNs, w.EndNs)
		}
		if i > 0 && w.StartNs != p.Timeline[i-1].EndNs {
			t.Errorf("window %d not contiguous: starts %d, previous ends %d", i, w.StartNs, p.Timeline[i-1].EndNs)
		}
		tlOps += w.Ops
	}
	if tlOps != int64(p.Ops) {
		t.Errorf("timeline accounts for %d ops, phase did %d", tlOps, p.Ops)
	}
	if len(p.WorkerOps) != 4 {
		t.Fatalf("worker op counts = %v, want 4 entries", p.WorkerOps)
	}
	var sum int64
	for _, w := range p.WorkerOps {
		sum += w
	}
	if sum != int64(p.Ops) {
		t.Errorf("worker ops sum to %d, phase did %d", sum, p.Ops)
	}
	if p.Fairness < 0 || p.Fairness > 1 {
		t.Errorf("fairness %v outside [0,1]", p.Fairness)
	}
	// A single worker is trivially fair.
	res, err = Run(Workload{Counter: "test-alpha", Goroutines: 1, Ops: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases[0].Fairness != 1 {
		t.Errorf("single-worker fairness = %v, want 1", res.Phases[0].Fairness)
	}
}

func TestDriverDurationBudget(t *testing.T) {
	registerTestImpls()
	res, err := Run(Workload{
		Counter:  "test-alpha",
		Duration: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Ops == 0 {
		t.Error("duration-budget run performed no operations")
	}
	// A positive Duration replaces the ops budget, per the field doc: a
	// huge Ops value must not outlive the deadline.
	start := time.Now()
	res, err = Run(Workload{
		Counter:  "test-alpha",
		Ops:      1 << 40,
		Duration: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Duration did not replace Ops: run took %v", elapsed)
	}
	if res.Aggregate.Ops >= 1<<40 {
		t.Errorf("run honored Ops (%d) instead of Duration", res.Aggregate.Ops)
	}
}

func TestDriverRejectsBadConfig(t *testing.T) {
	registerTestImpls()
	if _, err := Run(Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Run(Workload{Counter: "no-such-counter"}); err == nil {
		t.Error("unknown counter accepted")
	}
	if _, err := Run(Workload{Queue: "no-such-queue"}); err == nil {
		t.Error("unknown queue accepted")
	}
	if _, err := Run(Workload{Counter: "test-alpha", Queue: "test-queue", Mix: 1.5}); err == nil {
		t.Error("mix > 1 accepted")
	}
	if _, err := Run(Workload{Counter: "test-alpha", Queue: "test-queue", Mix: -0.5}); err == nil {
		t.Error("mix < 0 accepted")
	}
	if _, err := Run(Workload{Counter: "?x=1"}); err == nil {
		t.Error("nameless spec accepted")
	}
	if _, err := Run(Workload{Counter: "test-alpha", Batch: -2, Queue: "test-queue", Mix: 0.5}); err == nil {
		t.Error("negative batch accepted")
	}
	if _, err := ParseArrival("fractal"); err == nil {
		t.Error("unknown arrival pattern accepted")
	}
}
