package countq

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// The zero-allocation gates: testing.AllocsPerRun over the runner's
// per-op methods, with the structure side reduced to an atomic word so
// any allocation the gate sees belongs to the measurement harness
// itself. The laneRunner is built exactly the way runPhase builds it —
// all allocation (rng, evidence reservation, session assertions) before
// the measured window — and each gate pre-reserves evidence for every
// measured iteration, mirroring the pool-claim reservation that keeps
// steady-state appends inside existing capacity.

// allocCounter is the minimal legacy counter: one atomic word, batch-
// capable, allocation-free by construction.
type allocCounter struct{ v atomic.Int64 }

func (c *allocCounter) Inc() int64         { return c.v.Add(1) }
func (c *allocCounter) IncN(n int64) int64 { return c.v.Add(n) - n + 1 }

// allocAsyncSession is the minimal AsyncSession: Submit applies the op
// to the atomic word and completes it on the preallocated channel
// immediately, so the gate isolates the runner's submit/reap path.
type allocAsyncSession struct {
	v   atomic.Int64
	out chan Completion
}

func (s *allocAsyncSession) Inc(ctx context.Context) (int64, error) { return s.v.Add(1), nil }
func (s *allocAsyncSession) Enqueue(ctx context.Context, id int64) (int64, error) {
	return 0, ErrUnsupported
}
func (s *allocAsyncSession) Close() error { return nil }
func (s *allocAsyncSession) Submit(ctx context.Context, op Op) error {
	n := op.N
	if n < 1 {
		n = 1
	}
	s.out <- Completion{Op: op, Value: s.v.Add(n) - n + 1}
	return nil
}
func (s *allocAsyncSession) Completions() <-chan Completion { return s.out }

// newAllocRunner assembles a laneRunner over sess the way runPhase does,
// with an effectively unbounded op pool and evidence pre-reserved for
// `runs` measured iterations (AllocsPerRun adds one warmup call, and the
// sampled path logs a timeline event every sample'th op — reserve covers
// both).
func newAllocRunner(p *Phase, sess Session, runs int64) *laneRunner {
	ln := &lane{}
	pool := &atomic.Int64{}
	pool.Store(1 << 40)
	r := &laneRunner{
		ln:       ln,
		p:        p,
		csess:    sess,
		ctx:      context.Background(),
		batch:    p.Batch,
		drawMix:  p.Mix,
		sample:   p.LatencySample,
		chunk:    opsChunk,
		hasPool:  true,
		pool:     pool,
		runStart: time.Now(),
		rng:      rand.New(rand.NewSource(1)),
	}
	if p.Batch > 1 {
		r.bsess = sess.(BatchSession)
	}
	if as, ok := sess.(AsyncSession); ok {
		r.cas, r.cch = as, as.Completions()
	}
	r.reserve(2*runs + 2*opsChunk)
	r.begin(time.Now())
	return r
}

// gate runs body under AllocsPerRun and fails on any per-op allocation.
func gate(t *testing.T, name string, runs int, body func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(runs, body); avg != 0 {
		t.Errorf("%s: %.4f allocs/op in steady state, want 0", name, avg)
	}
}

// TestSyncCounterLoopZeroAlloc is the acceptance gate for the runner's
// synchronous hot path: claim → issueSync → consume at 0 allocs/op,
// sampled ops (histogram + timeline event) included.
func TestSyncCounterLoopZeroAlloc(t *testing.T) {
	const runs = 4096
	st := &counterStructure{c: &allocCounter{}}
	sess, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p := &Phase{Name: "steady", Goroutines: 1, Mix: 1, LatencySample: 64, Ops: 1 << 30}
	r := newAllocRunner(p, sess, runs)
	gate(t, "sync counter loop", runs, func() {
		if !r.claim() {
			t.Fatal("op pool exhausted")
		}
		granted, err := r.issueSync()
		if err != nil {
			t.Fatal(err)
		}
		r.ln.issued += granted
		r.consume(granted)
		r.iter++
	})
}

// TestBatchCounterLoopZeroAlloc gates the IncN block-grant path.
func TestBatchCounterLoopZeroAlloc(t *testing.T) {
	const runs = 2048
	st := &counterStructure{c: &allocCounter{}}
	sess, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p := &Phase{Name: "steady", Goroutines: 1, Mix: 1, Batch: 16, LatencySample: 64, Ops: 1 << 30}
	r := newAllocRunner(p, sess, runs*16)
	gate(t, "batch counter loop", runs, func() {
		if !r.claim() {
			t.Fatal("op pool exhausted")
		}
		granted, err := r.issueSync()
		if err != nil {
			t.Fatal(err)
		}
		r.ln.issued += granted
		r.consume(granted)
		r.iter++
	})
}

// TestAsyncLoopZeroAlloc gates the pipelined path: submitOne carries the
// Op by value into the session and reap folds the Completion back — no
// per-op boxing anywhere in between.
func TestAsyncLoopZeroAlloc(t *testing.T) {
	const runs = 4096
	sess := &allocAsyncSession{out: make(chan Completion, 16)}
	p := &Phase{Name: "steady", Goroutines: 1, Mix: 1, Inflight: 8, LatencySample: 64, Ops: 1 << 30}
	r := newAllocRunner(p, sess, runs)
	gate(t, "async submit/reap loop", runs, func() {
		ok, err := r.submitOne()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("op pool exhausted")
		}
		r.reap(<-r.cch)
	})
}

// TestOpenArrivalLoopZeroAlloc gates the open-loop variant: the arrival
// pause, the intended-clock bookkeeping and the corrected-latency
// histogram must not add allocations either.
func TestOpenArrivalLoopZeroAlloc(t *testing.T) {
	const runs = 2048
	st := &counterStructure{c: &allocCounter{}}
	sess, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p := &Phase{Name: "steady", Goroutines: 1, Mix: 1, Arrival: Uniform, LatencySample: 64, Ops: 1 << 30}
	r := newAllocRunner(p, sess, runs)
	r.open = true
	gate(t, "open-loop sync counter", runs, func() {
		if !r.claim() {
			t.Fatal("op pool exhausted")
		}
		r.arrive()
		granted, err := r.issueSync()
		if err != nil {
			t.Fatal(err)
		}
		r.ln.issued += granted
		r.consume(granted)
		r.iter++
	})
}

// TestSteadyPhaseReportsZeroAllocs closes the loop end to end: a real
// driver run over the allocation-free atomic session path must *report*
// ≈ 0 allocs/op through the new memory metric — the measurement and the
// measured agree. The threshold leaves room for the handful of runtime-
// internal allocations (timer resets, GC bookkeeping) that land in the
// whole-process counters but amortize to well under one per op.
func TestSteadyPhaseReportsZeroAllocs(t *testing.T) {
	RegisterCounter(CounterInfo{
		Name:    "alloc-test-atomic",
		Summary: "test-only allocation-free counter",
		New:     func(o Options) (Counter, error) { return &allocCounter{}, nil },
	})
	res, err := Run(Workload{Counter: "alloc-test-atomic", Goroutines: 2, Ops: 200000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Aggregate
	if a.AllocsPerOp > 0.05 {
		t.Errorf("steady phase reports %.4f allocs/op over the atomic path, want ≈ 0", a.AllocsPerOp)
	}
	if len(a.MemTimeline) == 0 || a.LivePeakBytes <= 0 {
		t.Errorf("memory timeline missing: %d windows, live peak %d", len(a.MemTimeline), a.LivePeakBytes)
	}
}
