package countq

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("sharded")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "sharded" || s.Options.Len() != 0 {
		t.Errorf("bare name parsed as %+v", s)
	}

	s, err = ParseSpec("sharded?shards=64&batch=256")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "sharded" {
		t.Errorf("name = %q", s.Name)
	}
	if v, ok := s.Options.Lookup("shards"); !ok || v != "64" {
		t.Errorf("shards = %q, %v", v, ok)
	}
	if v, ok := s.Options.Lookup("batch"); !ok || v != "256" {
		t.Errorf("batch = %q, %v", v, ok)
	}

	// A trailing "?" with no parameters is the bare spec.
	s, err = ParseSpec("swap?")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "swap" || s.Options.Len() != 0 {
		t.Errorf("empty query parsed as %+v", s)
	}

	for _, bad := range []string{"", "?shards=4", "a?x", "a?=4", "a?x=1&x=2", "a?x=1&"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, in := range []string{"sharded", "sharded?batch=256&shards=64", "funnel?depth=3&spin=8&width=4"} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.String(); got != in {
			t.Errorf("round trip %q -> %q", in, got)
		}
		again, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", s.String(), err)
		}
		if again.String() != s.String() {
			t.Errorf("re-parse changed canonical form: %q vs %q", again.String(), s.String())
		}
	}
	// Keys render sorted regardless of input order.
	s, err := ParseSpec("sharded?shards=64&batch=256")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "sharded?batch=256&shards=64" {
		t.Errorf("canonical form not sorted: %q", got)
	}
}

func TestSpecWith(t *testing.T) {
	base, err := ParseSpec("sharded?shards=4")
	if err != nil {
		t.Fatal(err)
	}
	a := base.With("batch", "16")
	b := base.With("batch", "256")
	if got := a.String(); got != "sharded?batch=16&shards=4" {
		t.Errorf("a = %q", got)
	}
	if got := b.String(); got != "sharded?batch=256&shards=4" {
		t.Errorf("b = %q", got)
	}
	// The base spec is untouched — With copies.
	if got := base.String(); got != "sharded?shards=4" {
		t.Errorf("base mutated by With: %q", got)
	}
	// With replaces an existing key.
	if got := a.With("batch", "32").String(); got != "sharded?batch=32&shards=4" {
		t.Errorf("replace = %q", got)
	}
}

func TestOptionsTypedGetters(t *testing.T) {
	var o Options
	o.Set("i", "42")
	o.Set("i64", "99")
	o.Set("f", "0.25")
	o.Set("b", "true")
	if got := o.Int("i", 0); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := o.Int64("i64", 0); got != 99 {
		t.Errorf("Int64 = %d", got)
	}
	if got := o.Float64("f", 0); got != 0.25 {
		t.Errorf("Float64 = %v", got)
	}
	if got := o.Bool("b", false); got != true {
		t.Errorf("Bool = %v", got)
	}
	// Absent keys yield the default with no error.
	if got := o.Int("missing", 7); got != 7 {
		t.Errorf("default Int = %d", got)
	}
	if err := o.Err(); err != nil {
		t.Fatalf("well-typed reads errored: %v", err)
	}
	// The zero Options is usable and all-defaults.
	var zero Options
	if got := zero.Int("x", 3); got != 3 || zero.Err() != nil {
		t.Errorf("zero Options: %d, %v", got, zero.Err())
	}
}

func TestOptionsConversionErrors(t *testing.T) {
	var o Options
	o.Set("n", "banana")
	o.Set("m", "7")
	if got := o.Int("n", 5); got != 5 {
		t.Errorf("failed conversion returned %d, want default 5", got)
	}
	err := o.Err()
	if err == nil {
		t.Fatal("conversion failure not recorded")
	}
	if !strings.Contains(err.Error(), "banana") {
		t.Errorf("error does not name the bad value: %v", err)
	}
	// The first error wins; later good reads don't clear it.
	if got := o.Int("m", 0); got != 7 {
		t.Errorf("later read = %d", got)
	}
	if o.Err() == nil {
		t.Error("error cleared by a later read")
	}
	// Bool and Float64 record failures too.
	var o2 Options
	o2.Set("b", "maybe")
	o2.Bool("b", false)
	if o2.Err() == nil {
		t.Error("bad bool not recorded")
	}
	var o3 Options
	o3.Set("f", "fast")
	o3.Float64("f", 0)
	if o3.Err() == nil {
		t.Error("bad float not recorded")
	}
}
