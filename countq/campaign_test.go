package countq

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

// TestCampaignRoundTrip is the campaign analogue of the scenario
// round-trip: several structures through one composed scenario, identical
// phase sequences asserted op-for-op, deltas well-formed, and the whole
// thing holds under -race (CI runs this suite with the race detector on).
func TestCampaignRoundTrip(t *testing.T) {
	registerTestImpls()
	cmp, err := Campaign{
		Base: Workload{
			Scenario:   "ramp?gmax=2;spike?cycles=1",
			Goroutines: 2,
			Ops:        6000,
			Seed:       1,
		},
		Entries: []Entry{{Counter: "test-alpha"}, {Counter: "test-batch"}, {Counter: "test-handle"}},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline != "test-alpha" {
		t.Errorf("baseline = %q, want the first entry", cmp.Baseline)
	}
	if len(cmp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(cmp.Results))
	}
	base := cmp.Results[0]
	if !base.Baseline || cmp.Results[1].Baseline {
		t.Error("baseline flag misplaced")
	}
	for _, r := range cmp.Results {
		if r.Metrics.Scenario != "ramp?gmax=2;spike?cycles=1" {
			t.Errorf("%s scenario = %q", r.Label, r.Metrics.Scenario)
		}
		if len(r.Metrics.Phases) != len(base.Metrics.Phases) {
			t.Fatalf("%s ran %d phases, baseline ran %d", r.Label, len(r.Metrics.Phases), len(base.Metrics.Phases))
		}
		total := 0
		for i, p := range r.Metrics.Phases {
			bp := base.Metrics.Phases[i]
			if p.Name != bp.Name {
				t.Errorf("%s phase %d = %q, baseline %q", r.Label, i, p.Name, bp.Name)
			}
			// The identical-phase-sequence guarantee, op for op: every
			// structure ran exactly the same per-phase budget.
			if p.Ops != bp.Ops {
				t.Errorf("%s phase %q did %d ops, baseline did %d", r.Label, p.Name, p.Ops, bp.Ops)
			}
			if p.Goroutines != bp.Goroutines {
				t.Errorf("%s phase %q ran %d goroutines, baseline %d", r.Label, p.Name, p.Goroutines, bp.Goroutines)
			}
			total += p.Ops
		}
		if total != 6000 {
			t.Errorf("%s ran %d ops total, budget was 6000", r.Label, total)
		}
		if len(r.PhaseDeltas) != len(r.Metrics.Phases) {
			t.Errorf("%s has %d phase deltas for %d phases", r.Label, len(r.PhaseDeltas), len(r.Metrics.Phases))
		}
	}
	// Baseline deltas are self-ratios: exactly 1 wherever defined.
	for _, d := range append(append([]Delta(nil), base.PhaseDeltas...), base.AggregateDelta) {
		for what, v := range map[string]float64{
			"ns/op": d.NsPerOpRatio, "tput": d.ThroughputRatio,
			"p50": d.P50Ratio, "p99": d.P99Ratio, "fairness": d.FairnessRatio,
		} {
			if v != 0 && v != 1 {
				t.Errorf("baseline %s delta in phase %q = %v, want 1", what, d.Phase, v)
			}
		}
		if d.NsPerOpRatio != 1 || d.ThroughputRatio != 1 {
			t.Errorf("baseline core deltas in phase %q = %+v, want 1", d.Phase, d)
		}
	}
	// Non-baseline deltas are positive wherever both sides measured.
	for _, r := range cmp.Results[1:] {
		if r.AggregateDelta.NsPerOpRatio <= 0 || r.AggregateDelta.ThroughputRatio <= 0 {
			t.Errorf("%s aggregate deltas not computed: %+v", r.Label, r.AggregateDelta)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	registerTestImpls()
	shape := Workload{Goroutines: 2, Ops: 1000, Seed: 1}
	for _, tc := range []struct {
		name string
		c    Campaign
		want string
	}{
		{"no entries", Campaign{Base: shape}, "no entries"},
		{"base names structures", Campaign{
			Base:    Workload{Counter: "test-alpha", Ops: 1000},
			Entries: []Entry{{Counter: "test-alpha"}},
		}, "come from Entries"},
		{"baseline out of range", Campaign{
			Base: shape, Entries: []Entry{{Counter: "test-alpha"}}, Baseline: 1,
		}, "baseline index"},
		{"empty entry", Campaign{
			Base: shape, Entries: []Entry{{Counter: "test-alpha"}, {}},
		}, "neither a counter nor a queue"},
		{"mixed vs pure mismatch", Campaign{
			Base: shape, Entries: []Entry{{Counter: "test-alpha"}, {Counter: "test-batch", Queue: "test-queue"}},
		}, "kind shape"},
		{"pure vs mixed mismatch", Campaign{
			Base: shape, Entries: []Entry{{Counter: "test-alpha", Queue: "test-queue"}, {Counter: "test-batch"}},
		}, "kind shape"},
		{"duplicate entry", Campaign{
			Base: shape, Entries: []Entry{{Counter: "test-alpha"}, {Counter: "test-alpha"}},
		}, "twice"},
		{"unknown structure", Campaign{
			Base: shape, Entries: []Entry{{Counter: "no-such-counter"}},
		}, "unknown counter"},
		{"bad scenario", Campaign{
			Base:    Workload{Scenario: "no-such-scenario", Ops: 1000},
			Entries: []Entry{{Counter: "test-alpha"}},
		}, "unknown scenario"},
	} {
		_, err := tc.c.Run()
		if err == nil {
			t.Errorf("%s: campaign accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCampaignCrossKind compares a pure counter entry against a pure
// queue entry: both run the identical phase sequence and budget with their
// own operation kind — the paper's counting-versus-queuing question as a
// campaign. Core ratios (ns/op, throughput) are computed; latency ratios,
// which would compare different op kinds, are omitted.
func TestCampaignCrossKind(t *testing.T) {
	registerTestImpls()
	cmp, err := Campaign{
		Base:    Workload{Goroutines: 2, Ops: 2000, Seed: 1},
		Entries: []Entry{{Counter: "test-alpha"}, {Queue: "test-queue"}},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(cmp.Results))
	}
	c, q := cmp.Results[0], cmp.Results[1]
	if c.Metrics.Aggregate.Ops != q.Metrics.Aggregate.Ops {
		t.Errorf("cross-kind budgets diverged: counter ran %d ops, queue ran %d", c.Metrics.Aggregate.Ops, q.Metrics.Aggregate.Ops)
	}
	if q.AggregateDelta.NsPerOpRatio <= 0 || q.AggregateDelta.ThroughputRatio <= 0 {
		t.Errorf("cross-kind core deltas not computed: %+v", q.AggregateDelta)
	}
	if q.AggregateDelta.P99Ratio != 0 {
		t.Errorf("cross-kind p99 ratio = %v, want omitted (0): the sides measured different op kinds", q.AggregateDelta.P99Ratio)
	}
}

func TestCampaignMixedEntries(t *testing.T) {
	registerTestImpls()
	// Mixed entries share the queue's schedule too; mixshift requires both
	// kinds and expands once for all entries.
	cmp, err := Campaign{
		Base: Workload{Scenario: "mixshift?steps=3", Goroutines: 2, Ops: 3000, Mix: 0.5, Seed: 1},
		Entries: []Entry{
			{Counter: "test-alpha", Queue: "test-queue"},
			{Counter: "test-batch", Queue: "test-queue"},
		},
		Baseline: 1,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline != "test-batch+test-queue" {
		t.Errorf("baseline label = %q", cmp.Baseline)
	}
	if !cmp.Results[1].Baseline || cmp.Results[0].Baseline {
		t.Error("declared baseline not flagged")
	}
	for _, r := range cmp.Results {
		for i, p := range r.Metrics.Phases {
			if bp := cmp.Results[1].Metrics.Phases[i]; p.Ops != bp.Ops {
				t.Errorf("%s phase %q ops %d != baseline %d", r.Label, p.Name, p.Ops, bp.Ops)
			}
		}
	}
}

func TestComparisonExports(t *testing.T) {
	registerTestImpls()
	cmp, err := Campaign{
		Base:    Workload{Scenario: "steady?warmup=0.25", Goroutines: 2, Ops: 2000, Seed: 1},
		Entries: []Entry{{Counter: "test-alpha"}, {Counter: "test-batch"}},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	// CSV: header plus (phases + aggregate) rows per structure, parseable
	// by a real CSV reader with a uniform column count.
	out, err := cmp.MarshalCSV()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	wantRows := 1 + 2*(2+1) // header + 2 structures × (2 phases + aggregate)
	if len(rows) != wantRows {
		t.Errorf("CSV rows = %d, want %d", len(rows), wantRows)
	}
	for i, r := range rows {
		if len(r) != len(csvHeader) {
			t.Errorf("CSV row %d has %d columns, header has %d", i, len(r), len(csvHeader))
		}
	}
	if rows[0][0] != "structure" || rows[1][0] != "test-alpha" {
		t.Errorf("CSV rows misordered: %v / %v", rows[0], rows[1])
	}
	// The warmup phase is flagged in its column.
	if rows[1][1] != "warmup" || rows[1][2] != "true" {
		t.Errorf("warmup row misrendered: %v", rows[1])
	}
	// Markdown: a table with one line per CSV data row plus the caveat
	// footnote (single-core fairness, baseline semantics).
	md, err := cmp.MarshalMarkdown()
	if err != nil {
		t.Fatal(err)
	}
	s := string(md)
	for _, want := range []string{"| structure |", "`test-alpha` (baseline)", "`test-batch`", "**aggregate**", "GOMAXPROCS", "warmup"} {
		if !strings.Contains(s, want) {
			t.Errorf("markdown missing %q in:\n%s", want, s)
		}
	}
	// JSON: the Comparison marshals as-is with the delta records inline.
	data, err := json.Marshal(cmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"phase_deltas"`, `"aggregate_delta"`, `"baseline"`, `"p99_ns"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("comparison JSON missing %s", want)
		}
	}
}

// TestCampaignMemoryMetricsRoundTrip pins memory as a first-class
// campaign metric: allocs/op, alloc bytes/op and the live-heap timeline
// populate every structure's metrics, survive the JSON round trip, and
// land in their CSV and Markdown columns.
func TestCampaignMemoryMetricsRoundTrip(t *testing.T) {
	registerTestImpls()
	cmp, err := Campaign{
		Base:    Workload{Goroutines: 2, Ops: 4000, Seed: 1},
		Entries: []Entry{{Counter: "test-alpha"}, {Counter: "test-batch"}},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cmp.Results {
		r := &cmp.Results[i]
		a := &r.Metrics.Aggregate
		if a.AllocsPerOp < 0 || a.AllocBytesPerOp < 0 {
			t.Errorf("%s: negative memory metrics: %v allocs/op, %v B/op", r.Label, a.AllocsPerOp, a.AllocBytesPerOp)
		}
		if a.LivePeakBytes <= 0 {
			t.Errorf("%s: live peak %d, want > 0 (a live Go heap is never empty)", r.Label, a.LivePeakBytes)
		}
		if len(a.MemTimeline) == 0 {
			t.Errorf("%s: empty live-heap timeline", r.Label)
		}
		for _, win := range a.MemTimeline {
			if win.PeakBytes <= 0 || win.EndNs <= win.StartNs {
				t.Errorf("%s: malformed mem window %+v", r.Label, win)
			}
		}
	}
	// JSON round trip: the memory fields survive marshal → unmarshal.
	data, err := json.Marshal(cmp)
	if err != nil {
		t.Fatal(err)
	}
	var back Comparison
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	a, b := &cmp.Results[0].Metrics.Aggregate, &back.Results[0].Metrics.Aggregate
	if a.AllocsPerOp != b.AllocsPerOp || a.LivePeakBytes != b.LivePeakBytes || len(a.MemTimeline) != len(b.MemTimeline) {
		t.Errorf("memory metrics changed across the JSON round trip: %v/%d/%d vs %v/%d/%d",
			a.AllocsPerOp, a.LivePeakBytes, len(a.MemTimeline), b.AllocsPerOp, b.LivePeakBytes, len(b.MemTimeline))
	}
	// CSV: the memory columns exist and every aggregate row fills them.
	out, err := cmp.MarshalCSV()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, name := range []string{"allocs_per_op", "alloc_bytes_per_op", "live_peak_bytes", "allocs_ratio", "live_peak_ratio"} {
		if _, ok := col[name]; !ok {
			t.Fatalf("CSV header missing %q: %v", name, rows[0])
		}
	}
	for _, row := range rows[1:] {
		if row[1] != "aggregate" {
			continue
		}
		if row[col["allocs_per_op"]] == "" || row[col["live_peak_bytes"]] == "" || row[col["live_peak_bytes"]] == "0" {
			t.Errorf("aggregate row leaves memory cells empty: %v", row)
		}
	}
	// Markdown: the memory columns render with the footnote explaining them.
	md, err := cmp.MarshalMarkdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"allocs/op", "live peak", "Δalloc"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("markdown missing %q in:\n%s", want, md)
		}
	}
}

// TestCampaignSharedSchedule pins the shared-seed guarantee the campaign
// documents: the same entry run twice under the same campaign base
// reproduces its per-phase op totals exactly.
func TestCampaignSharedSchedule(t *testing.T) {
	registerTestImpls()
	run := func() *Comparison {
		cmp, err := Campaign{
			Base:    Workload{Scenario: "spike?cycles=2", Goroutines: 2, Ops: 4000, Seed: 7},
			Entries: []Entry{{Counter: "test-alpha"}, {Counter: "test-zulu"}},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return cmp
	}
	a, b := run(), run()
	for i := range a.Results {
		for j := range a.Results[i].Metrics.Phases {
			pa, pb := a.Results[i].Metrics.Phases[j], b.Results[i].Metrics.Phases[j]
			if pa.Ops != pb.Ops || pa.CounterOps != pb.CounterOps {
				t.Errorf("%s phase %q not reproducible: %d/%d vs %d/%d ops",
					a.Results[i].Label, pa.Name, pa.Ops, pa.CounterOps, pb.Ops, pb.CounterOps)
			}
		}
	}
}
