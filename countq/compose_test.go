package countq

import (
	"strings"
	"sync"
	"testing"
)

// registerComposeTestScenario registers a one-phase scenario whose phase
// can be forced to warmup (measure=false) — inexpressible through the
// canonical library, needed to exercise the all-warmup composition check
// without the reserved warmup key. The tag param keeps phase names
// distinct across segments; the measured default keeps the scenario
// standalone-expandable for the registry round-trip test.
var registerComposeTestScenario = sync.OnceFunc(func() {
	RegisterScenario(ScenarioInfo{
		Name:    "test-allwarm",
		Summary: "test scenario expanding to a single, optionally-warmup phase",
		Params: []ParamInfo{
			{Name: "tag", Default: "w", Doc: "phase name"},
			{Name: "measure", Default: "true", Doc: "false marks the phase warmup"},
		},
		Phases: func(base Workload, o Options) ([]Phase, error) {
			tag, _ := o.Lookup("tag")
			if tag == "" {
				tag = "w"
			}
			measure := o.Bool("measure", true)
			if err := o.Err(); err != nil {
				return nil, err
			}
			p := basePhase(base, tag)
			p.Warmup = !measure
			p.Ops = base.Ops
			p.Duration = base.Duration
			return []Phase{p}, nil
		},
	})
})

func TestComposeCombinator(t *testing.T) {
	spec := Compose("ramp?gmax=8").Then("spike").String()
	if spec != "ramp?gmax=8;spike" {
		t.Errorf("composed spec = %q", spec)
	}
	// The combinator and the spec syntax expand identically.
	registerTestImpls()
	base := Workload{Counter: "test-alpha", Goroutines: 4, Ops: 8000}
	viaString, err := ExpandScenario("ramp?gmax=4;spike?cycles=1", base)
	if err != nil {
		t.Fatal(err)
	}
	viaCombinator, err := Compose("ramp?gmax=4").Then("spike?cycles=1").Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	if viaString.Spec != viaCombinator.Spec {
		t.Errorf("specs diverge: %q vs %q", viaString.Spec, viaCombinator.Spec)
	}
	if len(viaString.Phases) != len(viaCombinator.Phases) {
		t.Fatalf("phase counts diverge: %d vs %d", len(viaString.Phases), len(viaCombinator.Phases))
	}
	for i := range viaString.Phases {
		if viaString.Phases[i] != viaCombinator.Phases[i] {
			t.Errorf("phase %d diverges: %+v vs %+v", i, viaString.Phases[i], viaCombinator.Phases[i])
		}
	}
}

func TestCompositionSequencesSegments(t *testing.T) {
	registerTestImpls()
	base := Workload{Counter: "test-alpha", Goroutines: 4, Ops: 8000}
	sc, err := ExpandScenario("ramp?gmax=4;spike?cycles=1", base)
	if err != nil {
		t.Fatal(err)
	}
	// ramp?gmax=4 → g=1, g=2, g=4; spike?cycles=1 → spike-1, calm-1.
	wantNames := []string{"g=1", "g=2", "g=4", "spike-1", "calm-1"}
	if len(sc.Phases) != len(wantNames) {
		t.Fatalf("composition phases = %d, want %d", len(sc.Phases), len(wantNames))
	}
	total := 0
	for i, p := range sc.Phases {
		if p.Name != wantNames[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Name, wantNames[i])
		}
		total += p.Ops
	}
	if total != 8000 {
		t.Errorf("composition phases carry %d ops, budget was 8000", total)
	}
	if sc.Name != "ramp;spike" {
		t.Errorf("composition name = %q", sc.Name)
	}
	if sc.Spec != "ramp?gmax=4;spike?cycles=1" {
		t.Errorf("canonical spec = %q", sc.Spec)
	}
	// The composed spec runs end to end and reports itself in the metrics.
	m, err := Run(Workload{Counter: "test-alpha", Scenario: "ramp?gmax=2;spike?cycles=1", Goroutines: 2, Ops: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Scenario != "ramp?gmax=2;spike?cycles=1" {
		t.Errorf("metrics scenario = %q", m.Scenario)
	}
	if len(m.Phases) != 4 {
		t.Errorf("ran %d phases, want 4", len(m.Phases))
	}
}

func TestCompositionWeights(t *testing.T) {
	registerTestImpls()
	base := Workload{Counter: "test-alpha", Goroutines: 2, Ops: 4000}
	// weight is a reserved segment key: ramp?gmax=1 is one phase, so the
	// 3:1 split is visible directly in the phase budgets.
	sc, err := ExpandScenario("ramp?gmax=1&weight=3;spike?cycles=1", base)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(sc.Phases))
	}
	if sc.Phases[0].Ops != 3000 {
		t.Errorf("weighted segment got %d ops, want 3000", sc.Phases[0].Ops)
	}
	if got := sc.Phases[1].Ops + sc.Phases[2].Ops; got != 1000 {
		t.Errorf("unit-weight segment got %d ops, want 1000", got)
	}
	// The canonical form keeps the non-default weight.
	if sc.Spec != "ramp?gmax=1&weight=3;spike?cycles=1" {
		t.Errorf("canonical spec = %q", sc.Spec)
	}
	// A scenario that declares a reserved name keeps its own parameter:
	// steady's warmup stays a fraction, not a segment marker.
	sc, err = ExpandScenario("steady?warmup=0.5;spike?cycles=1", Workload{Counter: "test-alpha", Ops: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Phases[0].Warmup || sc.Phases[1].Warmup {
		t.Errorf("steady's own warmup fraction misapplied: %+v", sc.Phases)
	}
}

func TestCompositionSegmentWarmup(t *testing.T) {
	registerTestImpls()
	base := Workload{Counter: "test-alpha", Goroutines: 2, Ops: 4000}
	// The reserved warmup key marks a whole segment as warmup.
	sc, err := ExpandScenario("ramp?gmax=2&warmup=true;spike?cycles=1", base)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sc.Phases[:2] {
		if !p.Warmup {
			t.Errorf("ramp phase %d not marked warmup", i)
		}
	}
	for i, p := range sc.Phases[2:] {
		if p.Warmup {
			t.Errorf("spike phase %d marked warmup", i)
		}
	}
	m, err := Run(Workload{Counter: "test-alpha", Scenario: "ramp?gmax=2&warmup=true;spike?cycles=1", Goroutines: 2, Ops: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var warm int
	for _, p := range m.Phases {
		if p.Warmup {
			warm += p.Ops
		}
	}
	if m.Aggregate.Ops != 4000-warm {
		t.Errorf("aggregate %d ops with %d warmup, budget 4000", m.Aggregate.Ops, warm)
	}
}

func TestCompositionEdgeCases(t *testing.T) {
	registerTestImpls()
	registerComposeTestScenario()
	base := Workload{Counter: "test-alpha", Goroutines: 2, Ops: 4000}
	for _, tc := range []struct {
		spec string
		want string // substring of the error
	}{
		{"ramp;;spike", "empty"},
		{";ramp", "empty"},
		{"ramp;", "empty"},
		{"ramp;ramp", "twice"},                             // duplicate phase names across segments
		{"ramp;no-such-scenario", "unknown"},               // unknown segment scenario
		{"ramp?bogus=1;spike", "bogus"},                    // undeclared segment param
		{"ramp?weight=0;spike", "positive"},                // non-positive weight
		{"ramp?weight=banana;spike", "weight"},             // mistyped weight
		{"ramp?warmup=banana;spike", "boolean"},            // mistyped segment warmup
		{"ramp?warmup=true;spike?warmup=true", "measured"}, // all-warmup via reserved keys
		{"test-allwarm?measure=false&tag=a;test-allwarm?measure=false&tag=b", "measured"}, // all-warmup scenarios composed
		{"test-allwarm?tag=x;test-allwarm?tag=x", "twice"},                                // duplicate names across segments
		{"mixshift?steps=3;spike", "both a counter and a queue"},                          // segment expansion errors surface
		{"ramp?gmax=1;spike?cycles=2000", "cannot cover"},                                 // a segment's share too small for its phases
		{"steady?warmup=0.25&weight=2;steady?warmup=0.25", "twice"},                       // same scenario twice still collides
	} {
		_, err := ExpandScenario(tc.spec, base)
		if err == nil {
			t.Errorf("ExpandScenario(%q) accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ExpandScenario(%q) error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
	// The budget must cover every segment.
	if _, err := ExpandScenario("ramp;spike;mixshift", Workload{Counter: "test-alpha", Queue: "test-queue", Ops: 2}); err == nil {
		t.Error("2-op budget across 3 segments accepted")
	}
	// A single all-warmup scenario is rejected on the single-segment path
	// too — the measured check holds with and without composition.
	if _, err := ExpandScenario("test-allwarm?measure=false", base); err == nil {
		t.Error("single all-warmup scenario accepted")
	}
}

func TestCompositionDurationBudget(t *testing.T) {
	registerTestImpls()
	m, err := Run(Workload{
		Counter: "test-alpha", Scenario: "ramp?gmax=2&weight=2;spike?cycles=1",
		Duration: 40_000_000, // 40ms
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(m.Phases))
	}
	for _, p := range m.Phases {
		if p.Ops == 0 {
			t.Errorf("duration phase %q did no operations", p.Name)
		}
	}
}
